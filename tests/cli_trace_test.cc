/**
 * @file
 * End-to-end CLI observability test: runs a short padsim campaign
 * through the real binary (path injected as PADSIM_BIN at compile
 * time) with --trace / --stats-json / --manifest, then validates
 * that every artifact is well-formed JSON carrying the required
 * fields. This is the ctest-level guarantee that the flags survive
 * refactors of the binary's plumbing.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "util/json.h"

using namespace pad;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

int
runPadsim(const std::string &args)
{
    const std::string cmd =
        std::string(PADSIM_BIN) + " " + args + " > /dev/null 2>&1";
    return std::system(cmd.c_str());
}

// Every test uses its own file names so the cases stay independent
// when ctest runs them concurrently.
using CliTraceTest = ::testing::Test;

TEST_F(CliTraceTest, ChromeTraceStatsAndManifest)
{
    ASSERT_EQ(runPadsim("--scheme PAD --duration 30 --quiet"
                        " --trace cli_a_trace.json --trace-format chrome"
                        " --stats-json cli_a_stats.json"
                        " --manifest cli_a_manifest.json"),
              0);

    // Chrome trace: one well-formed document with a traceEvents
    // array whose entries carry name/ph/ts.
    std::string error;
    const auto trace = parseJson(slurp("cli_a_trace.json"), &error);
    ASSERT_TRUE(trace.has_value()) << error;
    const JsonValue *events = trace->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_GT(events->array.size(), 0u);
    for (const JsonValue &e : events->array) {
        EXPECT_TRUE(e.contains("name"));
        EXPECT_TRUE(e.contains("ph"));
        const std::string &ph = e.find("ph")->str;
        if (ph != "M") {
            EXPECT_TRUE(e.contains("ts"));
            EXPECT_TRUE(e.contains("pid"));
            EXPECT_TRUE(e.contains("tid"));
        }
    }

    // Stats export: a JSON object with the attack scalars padsim
    // always registers.
    const auto stats = parseJson(slurp("cli_a_stats.json"), &error);
    ASSERT_TRUE(stats.has_value()) << error;
    const JsonValue *scalars = stats->find("scalars");
    ASSERT_NE(scalars, nullptr);
    EXPECT_TRUE(scalars->contains("attack.survival_sec"));
    EXPECT_TRUE(scalars->contains("attack.throughput"));
    ASSERT_NE(stats->find("counters"), nullptr);
    EXPECT_TRUE(
        stats->find("counters")->contains("attack.spikes_launched"));

    // Manifest: tool/seed/version/config plus pointers to the other
    // artifacts and the inline stats copy.
    const auto manifest = parseJson(slurp("cli_a_manifest.json"), &error);
    ASSERT_TRUE(manifest.has_value()) << error;
    EXPECT_EQ(manifest->find("tool")->str, "padsim");
    EXPECT_TRUE(manifest->contains("version"));
    EXPECT_TRUE(manifest->contains("seed"));
    EXPECT_EQ(manifest->find("config")->find("scheme")->str, "PAD");
    const JsonValue *artifacts = manifest->find("artifacts");
    ASSERT_NE(artifacts, nullptr);
    EXPECT_EQ(artifacts->find("trace")->str, "cli_a_trace.json");
    EXPECT_EQ(artifacts->find("trace_format")->str, "chrome");
    EXPECT_EQ(artifacts->find("stats_json")->str, "cli_a_stats.json");
    EXPECT_TRUE(manifest->find("stats")->contains("scalars"));
    EXPECT_GE(manifest->find("wall_seconds")->number, 0.0);
}

TEST_F(CliTraceTest, JsonlTraceLinesParse)
{
    ASSERT_EQ(runPadsim("--scheme uDEB --duration 30 --quiet"
                        " --trace cli_b_trace.jsonl"),
              0);
    std::ifstream in("cli_b_trace.jsonl");
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        std::string error;
        const auto doc = parseJson(line, &error);
        ASSERT_TRUE(doc.has_value()) << error << ": " << line;
        EXPECT_TRUE(doc->contains("ts"));
        EXPECT_TRUE(doc->contains("component"));
        EXPECT_TRUE(doc->contains("name"));
        ++lines;
    }
    EXPECT_GT(lines, 0);
}

TEST_F(CliTraceTest, RejectsUnknownTraceFormat)
{
    EXPECT_NE(runPadsim("--scheme PAD --duration 30"
                        " --trace cli_c_trace.json --trace-format xml"),
              0);
}

TEST_F(CliTraceTest, TracingDoesNotChangeTableOutput)
{
    const std::string base = std::string(PADSIM_BIN) +
                             " --scheme PAD --duration 30 --quiet";
    ASSERT_EQ(std::system((base + " > cli_out_a.txt 2>&1").c_str()), 0);
    ASSERT_EQ(std::system((base + " --trace cli_d_trace.json"
                                  " --trace-format chrome"
                                  " > cli_out_b.txt 2>&1")
                              .c_str()),
              0);
    EXPECT_EQ(slurp("cli_out_a.txt"), slurp("cli_out_b.txt"));
    std::remove("cli_out_a.txt");
    std::remove("cli_out_b.txt");
}

} // namespace
