/**
 * @file
 * Tests for the parallel sweep engine: the determinism contract
 * (parallel == serial, bit for bit), seed derivation, and the generic
 * pool loops.
 */

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace_sink.h"
#include "runner/experiment.h"
#include "runner/sweep_runner.h"

namespace pad {
namespace {

using runner::Experiment;
using runner::ExperimentResult;
using runner::SweepRunner;

/** Exact (bitwise, via ==) comparison of two RackLab results. */
void
expectSameLabResult(const ExperimentResult &a,
                    const ExperimentResult &b)
{
    EXPECT_EQ(a.lab().effectiveAttacks, b.lab().effectiveAttacks);
    EXPECT_EQ(a.lab().spikesLaunched, b.lab().spikesLaunched);
    EXPECT_EQ(a.lab().spikeWindows, b.lab().spikeWindows);
    EXPECT_EQ(a.lab().drawPerSecond, b.lab().drawPerSecond);
    EXPECT_EQ(a.lab().batteryOutSec, b.lab().batteryOutSec);
    EXPECT_EQ(a.lab().firstOverloadSec, b.lab().firstOverloadSec);
    EXPECT_EQ(a.lab().budget, b.lab().budget);
    EXPECT_EQ(a.lab().limit, b.lab().limit);
}

/** A small mixed mini-rack grid, cheap enough for a unit test. */
std::vector<Experiment>
labGrid()
{
    std::vector<Experiment> grid;
    for (int nodes : {1, 2}) {
        for (bool battery : {false, true}) {
            runner::RackLabSpec spec;
            spec.maliciousNodes = nodes;
            spec.batteryCharged = battery;
            spec.train = attack::SpikeTrain{2.0, 6.0, 1.0};
            grid.push_back(Experiment::rackLab(spec, 120.0));
        }
    }
    return grid;
}

TEST(SweepRunner, ThreadCountResolution)
{
    EXPECT_GE(SweepRunner().threadCount(), 1);
    EXPECT_EQ(SweepRunner({.jobs = 3}).threadCount(), 3);
    EXPECT_EQ(SweepRunner({.jobs = 1}).threadCount(), 1);
}

TEST(SweepRunner, JobSeedIsAPureFunctionOfBaseAndIndex)
{
    EXPECT_EQ(SweepRunner::jobSeed(7, 0), SweepRunner::jobSeed(7, 0));
    EXPECT_EQ(SweepRunner::jobSeed(7, 41),
              SweepRunner::jobSeed(7, 41));
    EXPECT_NE(SweepRunner::jobSeed(7, 0), SweepRunner::jobSeed(8, 0));

    // Distinct indices must give distinct, never-sentinel seeds.
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 4096; ++i) {
        const std::uint64_t s = SweepRunner::jobSeed(1234, i);
        EXPECT_NE(s, runner::kSpecSeed);
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 4096u);
}

TEST(SweepRunner, AssignSeedsRespectsExplicitSeeds)
{
    auto grid = labGrid();
    grid[2].seed = 555; // explicitly chosen by the bench
    SweepRunner::assignSeeds(grid, 99);

    EXPECT_EQ(grid[0].seed, SweepRunner::jobSeed(99, 0));
    EXPECT_EQ(grid[1].seed, SweepRunner::jobSeed(99, 1));
    EXPECT_EQ(grid[2].seed, 555u);
    EXPECT_EQ(grid[3].seed, SweepRunner::jobSeed(99, 3));
}

TEST(SweepRunner, SeedsTravelWithJobsUnderReordering)
{
    // The contract: seeds are assigned from stable job indices and
    // become part of the Experiment values, so reordering the list
    // afterwards permutes (job, seed) pairs together.
    auto grid = labGrid();
    SweepRunner::assignSeeds(grid, 2026);
    auto shuffled = grid;
    std::reverse(shuffled.begin(), shuffled.end());

    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto &moved = shuffled[grid.size() - 1 - i];
        EXPECT_EQ(moved.seed, grid[i].seed);
        EXPECT_EQ(moved.lab.maliciousNodes, grid[i].lab.maliciousNodes);
        EXPECT_EQ(moved.lab.batteryCharged, grid[i].lab.batteryCharged);
    }

    // And the reordered list reproduces the same per-job results,
    // just permuted.
    const auto a = SweepRunner({.jobs = 1}).run(grid);
    const auto b = SweepRunner({.jobs = 2}).run(shuffled);
    for (std::size_t i = 0; i < a.size(); ++i)
        expectSameLabResult(a[i], b[a.size() - 1 - i]);
}

TEST(SweepRunner, ParallelRackLabSweepIsBitIdenticalToSerial)
{
    auto grid = labGrid();
    SweepRunner::assignSeeds(grid, 7);

    const auto serial = SweepRunner({.jobs = 1}).run(grid);
    for (int jobs : {2, 4, 8}) {
        const auto parallel = SweepRunner({.jobs = jobs}).run(grid);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            expectSameLabResult(serial[i], parallel[i]);
    }
}

TEST(SweepRunner, ParallelClusterSweepIsBitIdenticalToSerial)
{
    const auto cw = runner::makeClusterWorkload(1.0);

    // Coarse runs sharing one read-only workload.
    std::vector<Experiment> grid;
    for (double fraction : {0.70, 0.80, -1.0}) {
        runner::ClusterCoarseSpec spec;
        spec.clusterBudgetFraction = fraction;
        spec.untilHours = 6.0;
        spec.recordHistory = true;
        grid.push_back(Experiment::clusterCoarse(spec, cw));
    }

    const auto serial = SweepRunner({.jobs = 1}).run(grid);
    const auto parallel = SweepRunner({.jobs = 3}).run(grid);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].cluster().socs, parallel[i].cluster().socs);
        EXPECT_EQ(serial[i].cluster().socStdDevPercent,
                  parallel[i].cluster().socStdDevPercent);
        EXPECT_EQ(serial[i].cluster().socHistory,
                  parallel[i].cluster().socHistory);
        EXPECT_EQ(serial[i].cluster().shedHistory,
                  parallel[i].cluster().shedHistory);
        EXPECT_FALSE(serial[i].cluster().socs.empty());
    }
}

TEST(SweepRunner, ForEachVisitsEverySlotExactlyOnce)
{
    std::vector<std::atomic<int>> visits(257);
    SweepRunner({.jobs = 4}).forEach(visits.size(), [&](std::size_t i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto &v : visits)
        EXPECT_EQ(v.load(), 1);
}

TEST(SweepRunner, MapReturnsResultsInIndexOrder)
{
    const auto out =
        SweepRunner({.jobs = 4}).map(100, [](std::size_t i) {
            return static_cast<int>(i * i);
        });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(SweepRunner, WorkerExceptionsPropagateToCaller)
{
    EXPECT_THROW(
        SweepRunner({.jobs = 2}).forEach(16,
                                         [](std::size_t i) {
                                             if (i == 9)
                                                 throw std::runtime_error(
                                                     "job 9 failed");
                                         }),
        std::runtime_error);
}

TEST(SweepRunner, TracingDoesNotPerturbResults)
{
    // The observability acceptance bar: with a sink bound around
    // every job, parallel results stay bit-identical to a traced
    // serial run AND to an untraced run.
    auto grid = labGrid();
    SweepRunner::assignSeeds(grid, 7);

    const auto plain = SweepRunner({.jobs = 1}).run(grid);

    obs::CountingTraceSink serialSink;
    const auto serial =
        SweepRunner({.jobs = 1, .trace = &serialSink}).run(grid);
    obs::CountingTraceSink parallelSink;
    const auto parallel =
        SweepRunner({.jobs = 4, .trace = &parallelSink}).run(grid);

    ASSERT_EQ(serial.size(), plain.size());
    ASSERT_EQ(parallel.size(), plain.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        expectSameLabResult(plain[i], serial[i]);
        expectSameLabResult(plain[i], parallel[i]);
    }
    // Same jobs emit the same events no matter the worker count.
    EXPECT_EQ(serialSink.count(), parallelSink.count());
}

TEST(SweepRunner, ReportMergesStatsDeterministically)
{
    const auto cw = runner::makeClusterWorkload(1.0);
    std::vector<Experiment> grid;
    for (core::SchemeKind scheme :
         {core::SchemeKind::Conv, core::SchemeKind::Pad}) {
        runner::ClusterAttackSpec spec;
        spec.scheme = scheme;
        spec.durationSec = 120.0;
        grid.push_back(Experiment::clusterAttack(spec, cw));
    }
    SweepRunner::assignSeeds(grid, 3);

    const auto serial =
        SweepRunner({.jobs = 1}).runWithReport(grid);
    const auto parallel =
        SweepRunner({.jobs = 2}).runWithReport(grid);

    ASSERT_EQ(serial.results.size(), grid.size());
    ASSERT_EQ(parallel.results.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        ASSERT_NE(serial.results[i].stats, nullptr);
        EXPECT_EQ(serial.results[i].attack().survivalSec,
                  parallel.results[i].attack().survivalSec);
    }

    // The merged registry is byte-identical across worker counts;
    // wall-clock profiling lives outside it by design.
    EXPECT_EQ(serial.stats.dumpJsonString(),
              parallel.stats.dumpJsonString());
    EXPECT_GT(serial.stats.lookup("attack.survival_sec"), 0.0);
    EXPECT_EQ(serial.stats.lookupCounter("attack.spikes_launched"),
              parallel.stats.lookupCounter("attack.spikes_launched"));
    EXPECT_EQ(serial.jobWallSeconds.size(), grid.size());
    EXPECT_GE(serial.wallSeconds, 0.0);
}

} // namespace
} // namespace pad
