/**
 * @file
 * Tests for the engine self-profiling layer (obs::EngineProfiler):
 * phase accounting under a deterministic fake clock, fine-tick
 * sampling, counter monotonicity, the zero-cost-when-disabled
 * contract (no allocations, no clock reads, bit-identical
 * simulation outputs), deterministic parallel-vs-serial sweep
 * merges of the engine.* stats, Prometheus exposition validity of
 * the pad_engine_* metrics, and Chrome counter-event rendering.
 */

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/prof_stats.h"
#include "obs/prof.h"
#include "obs/trace_sink.h"
#include "obs/tracer.h"
#include "runner/experiment.h"
#include "runner/sweep_runner.h"
#include "sim/stats_registry.h"
#include "telemetry/prom.h"
#include "util/json.h"

using namespace pad;

// ---------------------------------------------------------------------
// Allocation counting for the zero-cost-when-disabled contract
// (same global-new idiom as obs_test).
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> gAllocations{0};
}

void *
operator new(std::size_t size)
{
    gAllocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using Phase = obs::EngineProfiler::Phase;

/**
 * Deterministic fake clock: every read advances time by exactly
 * 1 µs. Thread-local, so parallel sweep workers each see their own
 * monotonic sequence — and since PhaseScope only records *deltas*
 * (reads-between x 1 µs, a pure function of the simulation), the
 * recorded seconds are identical whichever worker runs the job.
 */
thread_local double tlsFakeClock = 0.0;

double
tickingClock()
{
    return tlsFakeClock += 1.0e-6;
}

/** Clock that counts how often anyone reads it. */
std::atomic<std::uint64_t> gClockReads{0};

double
countingClock()
{
    gClockReads.fetch_add(1, std::memory_order_relaxed);
    return 0.0;
}

// ---------------------------------------------------------------------
// Phase accounting and sampling
// ---------------------------------------------------------------------

TEST(EngineProfiler, PhaseScopeRecordsOneClockDeltaPerLap)
{
    obs::EngineProfiler prof(/*samplePeriod=*/1);
    prof.setClock(&tickingClock);
    prof.beginStep(/*fine=*/false);
    ASSERT_TRUE(prof.sampling());
    {
        const obs::PhaseScope scope(&prof, Phase::KibamBatch);
    }
    const auto &t = prof.phase(Phase::KibamBatch);
    EXPECT_EQ(t.laps, 1u);
    // Exactly two reads, one tick apart.
    EXPECT_NEAR(t.seconds, 1.0e-6, 1.0e-12);
    EXPECT_DOUBLE_EQ(prof.totalPhaseSeconds(), t.seconds);
    EXPECT_EQ(prof.phase(Phase::Detector).laps, 0u);
}

TEST(EngineProfiler, FineTicksSampleEveryNthCoarseAlways)
{
    obs::EngineProfiler prof(/*samplePeriod=*/4);
    prof.setClock(&tickingClock);
    int sampled = 0;
    for (int i = 0; i < 16; ++i) {
        prof.beginStep(/*fine=*/true);
        if (prof.sampling())
            ++sampled;
        const obs::PhaseScope scope(&prof, Phase::Detector);
    }
    EXPECT_EQ(sampled, 4);
    EXPECT_EQ(prof.steps(), 16u);
    EXPECT_EQ(prof.sampledSteps(), 4u);
    // Only sampled steps lap the phase timer.
    EXPECT_EQ(prof.phase(Phase::Detector).laps, 4u);

    prof.beginStep(/*fine=*/false);
    EXPECT_TRUE(prof.sampling());
    EXPECT_EQ(prof.sampledSteps(), 5u);
}

TEST(EngineProfiler, CountersAreMonotonicAndAggregate)
{
    obs::EngineProfiler prof;
    std::uint64_t lastHits = 0, lastMisses = 0;
    for (int i = 0; i < 10; ++i) {
        if (i % 2 == 0)
            prof.demandHit();
        else
            prof.demandMiss();
        if (i % 3 == 0)
            prof.malMemoHit();
        else
            prof.malMemoMiss();
        EXPECT_GE(prof.cacheHits(), lastHits);
        EXPECT_GE(prof.cacheMisses(), lastMisses);
        lastHits = prof.cacheHits();
        lastMisses = prof.cacheMisses();
    }
    EXPECT_EQ(prof.cacheHits(),
              prof.demandHits() + prof.malMemoHits());
    EXPECT_EQ(prof.cacheMisses(),
              prof.demandMisses() + prof.malMemoMisses());
    EXPECT_EQ(prof.demandHits(), 5u);
    EXPECT_EQ(prof.malMemoHits(), 4u);

    // Queue depth keeps the high-water mark, not the last value.
    prof.observeQueueDepth(3);
    prof.observeQueueDepth(7);
    prof.observeQueueDepth(5);
    EXPECT_EQ(prof.queueDepthHighWater(), 7u);

    // Out-of-range shard indices are ignored, not UB.
    prof.setShardCount(2);
    prof.shardTick(0);
    prof.shardTick(1);
    prof.shardTick(5);
    EXPECT_EQ(prof.shardTicks()[0], 1u);
    EXPECT_EQ(prof.shardTicks()[1], 1u);

    prof.reset();
    EXPECT_EQ(prof.cacheHits(), 0u);
    EXPECT_EQ(prof.cacheMisses(), 0u);
    EXPECT_EQ(prof.queueDepthHighWater(), 0u);
    EXPECT_EQ(prof.steps(), 0u);
}

TEST(EngineProfiler, UnsampledAndDetachedScopesCostNothing)
{
    // Null profiler: the scope is a pointer test, no clock, no heap.
    gAllocations.store(0);
    for (int i = 0; i < 1000; ++i) {
        const obs::PhaseScope scope(nullptr, Phase::DemandEval);
    }
    EXPECT_EQ(gAllocations.load(), 0u);

    // Unsampled step: attached profiler, but no clock reads either.
    obs::EngineProfiler prof(/*samplePeriod=*/1 << 20);
    prof.setClock(&countingClock);
    prof.beginStep(/*fine=*/true); // tick 0 samples...
    prof.beginStep(/*fine=*/true); // ...tick 1 does not
    ASSERT_FALSE(prof.sampling());
    gClockReads.store(0);
    gAllocations.store(0);
    for (int i = 0; i < 1000; ++i) {
        const obs::PhaseScope scope(&prof, Phase::KibamBatch);
        prof.demandHit();
        prof.observeQueueDepth(1);
    }
    EXPECT_EQ(gClockReads.load(), 0u);
    EXPECT_EQ(gAllocations.load(), 0u);
    EXPECT_EQ(prof.phase(Phase::KibamBatch).laps, 0u);
}

// ---------------------------------------------------------------------
// Engine integration: observational purity and determinism
// ---------------------------------------------------------------------

class ProfiledRuns : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workload_ = new runner::ClusterWorkload(
            runner::makeClusterWorkload(2.0));
    }

    static void
    TearDownTestSuite()
    {
        delete workload_;
        workload_ = nullptr;
    }

    static runner::ClusterWorkload *workload_;
};

runner::ClusterWorkload *ProfiledRuns::workload_ = nullptr;

TEST_F(ProfiledRuns, AttachingProfilerLeavesOutputsBitIdentical)
{
    runner::ClusterAttackSpec spec;
    spec.durationSec = 120.0;
    runner::Experiment e =
        runner::Experiment::clusterAttack(spec, *workload_);

    runner::Experiment profiled = e;
    profiled.profileEngine = true;

    const runner::ExperimentResult plain = runner::runExperiment(e);
    const runner::ExperimentResult prof =
        runner::runExperiment(profiled);

    EXPECT_EQ(prof.attackOutcome.survivalSec,
              plain.attackOutcome.survivalSec);
    EXPECT_EQ(prof.attackOutcome.throughput,
              plain.attackOutcome.throughput);
    EXPECT_EQ(prof.attackOutcome.spikesLaunched,
              plain.attackOutcome.spikesLaunched);
    ASSERT_EQ(prof.telemetry.socs.size(), plain.telemetry.socs.size());
    for (std::size_t r = 0; r < plain.telemetry.socs.size(); ++r)
        EXPECT_EQ(prof.telemetry.socs[r], plain.telemetry.socs[r])
            << "rack " << r;

    // The profiled run exports engine.* stats; the plain one must
    // not even register them.
    EXPECT_TRUE(
        prof.stats->contains("engine.phase.kibam_batch.seconds"));
    EXPECT_GT(prof.stats->lookupCounter("engine.prof.steps"), 0u);
    EXPECT_FALSE(
        plain.stats->contains("engine.phase.kibam_batch.seconds"));
    EXPECT_FALSE(plain.stats->contains("engine.prof.steps"));

    // Laps and counters are simulation-determined; wall seconds per
    // phase are bounded by what a run can physically spend.
    EXPECT_GT(prof.stats->lookupCounter(
                  "engine.phase.kibam_batch.laps"),
              0u);
}

TEST_F(ProfiledRuns, ParallelAndSerialSweepsMergeIdentically)
{
    std::vector<runner::Experiment> grid;
    for (int i = 0; i < 4; ++i) {
        runner::ClusterAttackSpec spec;
        spec.durationSec = 60.0;
        runner::Experiment e =
            runner::Experiment::clusterAttack(spec, *workload_);
        e.seed = static_cast<std::uint64_t>(i + 1);
        e.profileEngine = true;
        e.profileClock = &tickingClock;
        grid.push_back(e);
    }

    const runner::SweepReport serial =
        runner::SweepRunner({.jobs = 1}).runWithReport(grid);
    const runner::SweepReport parallel =
        runner::SweepRunner({.jobs = 4}).runWithReport(grid);

    std::ostringstream a, b;
    serial.stats.dump(a);
    parallel.stats.dump(b);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find("engine.phase."), std::string::npos);
    EXPECT_NE(a.str().find("engine.prof.steps"), std::string::npos);
}

// ---------------------------------------------------------------------
// Exports: Prometheus exposition and Chrome counter events
// ---------------------------------------------------------------------

/** A profiler with one sampled lap in every phase plus counters. */
obs::EngineProfiler
populatedProfiler()
{
    obs::EngineProfiler prof(/*samplePeriod=*/1);
    prof.setClock(&tickingClock);
    prof.beginStep(/*fine=*/false);
    for (std::size_t i = 0; i < obs::EngineProfiler::kPhaseCount; ++i) {
        const obs::PhaseScope scope(&prof, static_cast<Phase>(i));
    }
    prof.demandHit();
    prof.demandMiss();
    prof.malMemoHit();
    prof.observeQueueDepth(12);
    prof.setArenaBytes(4096);
    prof.setScratchBytes(512);
    prof.setShardCount(2);
    prof.shardTick(0);
    prof.shardTick(1);
    return prof;
}

TEST(ProfilerExport, PromExpositionValidatesAndNamesMetrics)
{
    const obs::EngineProfiler prof = populatedProfiler();
    sim::StatsRegistry stats;
    engine::exportProfilerStats(prof, stats);

    const std::string text =
        telemetry::PromWriter().render(&stats, nullptr);
    std::string error;
    EXPECT_TRUE(telemetry::validatePromExposition(text, &error))
        << error;
    EXPECT_NE(text.find("pad_engine_phase_seconds"),
              std::string::npos);
    EXPECT_NE(text.find("pad_engine_cache_hits_total"),
              std::string::npos);
    EXPECT_NE(text.find("pad_engine_phase_kibam_batch_seconds"),
              std::string::npos);
    EXPECT_NE(text.find("pad_engine_queue_depth_highwater"),
              std::string::npos);
    EXPECT_NE(text.find("pad_engine_shard_ticks"), std::string::npos);
}

TEST(ProfilerExport, StatsRegistryCarriesEveryPhaseAndGauge)
{
    const obs::EngineProfiler prof = populatedProfiler();
    sim::StatsRegistry stats;
    engine::exportProfilerStats(prof, stats);

    for (std::size_t i = 0; i < obs::EngineProfiler::kPhaseCount;
         ++i) {
        const std::string base =
            "engine.phase." +
            std::string(obs::EngineProfiler::phaseName(i));
        EXPECT_TRUE(stats.contains(base + ".seconds")) << base;
        EXPECT_EQ(stats.lookupCounter(base + ".laps"), 1u) << base;
        EXPECT_GT(stats.lookup(base + ".seconds"), 0.0) << base;
    }
    EXPECT_EQ(stats.lookupCounter("engine.cache_hits"), 2u);
    EXPECT_EQ(stats.lookupCounter("engine.cache_misses"), 1u);
    EXPECT_EQ(stats.lookup("engine.queue.depth_highwater"), 12.0);
    EXPECT_EQ(stats.lookup("engine.arena.bytes"), 4096.0);
    EXPECT_EQ(stats.lookup("engine.scratch.bytes"), 512.0);
    EXPECT_EQ(stats.lookup("engine.prof.sample_period"), 1.0);
}

TEST(ProfilerExport, ChromeCounterEventsAreValidAndTyped)
{
    std::ostringstream chrome, jsonl;
    {
        obs::ChromeTraceSink sink(chrome);
        const obs::TraceScope scope(&sink);
        obs::setTraceClock(500);
        const obs::EngineProfiler prof = populatedProfiler();
        prof.emitTraceCounters();
        sink.finish();
    }
    const auto doc = parseJson(chrome.str());
    ASSERT_TRUE(doc.has_value());
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    std::size_t counters = 0;
    for (const JsonValue &ev : events->array) {
        const JsonValue *ph = ev.find("ph");
        if (ph && ph->isString() && ph->str == "C")
            ++counters;
    }
    // Phase-ms, cache, and queue-depth counter tracks.
    EXPECT_EQ(counters, 3u);

    {
        obs::JsonlTraceSink sink(jsonl);
        const obs::TraceScope scope(&sink);
        const obs::EngineProfiler prof = populatedProfiler();
        prof.emitTraceCounters();
    }
    EXPECT_NE(jsonl.str().find("\"kind\":\"counter\""),
              std::string::npos);
}

} // namespace
