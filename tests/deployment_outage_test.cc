/**
 * @file
 * Unit tests for the Fig. 3 deployment-option characteristics and
 * the Fig. 1 outage-cost model.
 */

#include <gtest/gtest.h>

#include "core/outage_cost.h"
#include "power/deployment.h"

namespace pad {
namespace {

using power::DeploymentOption;

TEST(Deployment, EfficiencyOrderingFavorsDcCoupling)
{
    const double central =
        power::deploymentSpec(DeploymentOption::CentralizedUps)
            .pathEfficiency;
    const double row =
        power::deploymentSpec(DeploymentOption::EndOfRowUps)
            .pathEfficiency;
    const double rack =
        power::deploymentSpec(DeploymentOption::TopOfRackBbu)
            .pathEfficiency;
    const double node =
        power::deploymentSpec(DeploymentOption::PerNodeBattery)
            .pathEfficiency;
    EXPECT_LT(central, row);
    EXPECT_LT(row, rack);
    EXPECT_LT(rack, node);
}

TEST(Deployment, OnlyDcCoupledOptionsShaveFractionally)
{
    // "A central UPS system cannot be used to support a fraction of
    // data center servers" (paper SS II-A).
    for (DeploymentOption opt : power::kAllDeployments) {
        const auto spec = power::deploymentSpec(opt);
        EXPECT_EQ(spec.fractionalShaving, spec.dcCoupled);
    }
}

TEST(Deployment, ConversionLossScalesWithLoad)
{
    const double at40 = power::annualConversionLoss(
        DeploymentOption::CentralizedUps, 40.0e3);
    const double at80 = power::annualConversionLoss(
        DeploymentOption::CentralizedUps, 80.0e3);
    EXPECT_NEAR(at80, 2.0 * at40, 1e-6);
    EXPECT_GT(at40, 0.0);
}

TEST(Deployment, DistributedSavesMostOfConversionLoss)
{
    // Paper refs [3, 4]: DC-coupled distributed backup cuts the
    // double-conversion loss by well over half.
    const double central = power::annualConversionLoss(
        DeploymentOption::CentralizedUps, 80.0e3);
    const double rack = power::annualConversionLoss(
        DeploymentOption::TopOfRackBbu, 80.0e3);
    EXPECT_LT(rack, 0.5 * central);
}

TEST(Deployment, CentralUpsIsTheMassOutageRisk)
{
    // The SPOF signature: for a central UPS, any unit failure takes
    // backup away from the whole cluster; for distributed units the
    // probability that >25% of the cluster is uncovered is tiny.
    const double central = power::probMassOutage(
        DeploymentOption::CentralizedUps, 0.25);
    const double rack = power::probMassOutage(
        DeploymentOption::TopOfRackBbu, 0.25);
    const double node = power::probMassOutage(
        DeploymentOption::PerNodeBattery, 0.25);
    EXPECT_GT(central, 100.0 * rack);
    EXPECT_GT(central, 100.0 * node);
    // For a single unit the mass-outage probability equals its
    // unavailability.
    EXPECT_NEAR(central,
                power::backupUnavailability(
                    DeploymentOption::CentralizedUps),
                1e-12);
}

TEST(Deployment, MassOutageProbabilityDecreasesWithThreshold)
{
    double prev = 1.0;
    for (double f : {0.0, 0.1, 0.3, 0.6, 0.9}) {
        const double p = power::probMassOutage(
            DeploymentOption::TopOfRackBbu, f);
        EXPECT_LE(p, prev + 1e-15);
        prev = p;
    }
}

TEST(Deployment, NamesAreDistinct)
{
    EXPECT_NE(power::deploymentName(DeploymentOption::CentralizedUps),
              power::deploymentName(DeploymentOption::PerNodeBattery));
}

// --------------------------------------------------------------------
// Outage cost (Fig. 1)
// --------------------------------------------------------------------

TEST(OutageCost, CdfMatchesPaperAnchor)
{
    // "over $10 per square meter per minute for 40% of the
    // benchmarked data centers".
    core::OutageCostModel model;
    EXPECT_NEAR(model.fractionAbove(10.0), 0.40, 0.02);
    EXPECT_DOUBLE_EQ(model.cdf(0.0), 0.0);
    EXPECT_GT(model.cdf(100.0), 0.9);
}

TEST(OutageCost, CdfIsMonotone)
{
    core::OutageCostModel model;
    double prev = 0.0;
    for (double usd = 1.0; usd <= 100.0; usd += 5.0) {
        const double p = model.cdf(usd);
        EXPECT_GE(p, prev);
        prev = p;
    }
}

TEST(OutageCost, QuantileInvertsCdf)
{
    core::OutageCostModel model;
    for (double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
        const double usd = model.quantile(p);
        EXPECT_NEAR(model.cdf(usd), p, 1e-6);
    }
}

TEST(OutageCost, IncidentLossIncludesRemediationTail)
{
    // A zero-minute outage still costs the 2-hour investigation at
    // the average rate — the paper's million-dollar argument.
    core::OutageCostModel model;
    EXPECT_NEAR(model.expectedIncidentLossUsd(0.0),
                2.0 * 60.0 * 7900.0, 1e-6);
    EXPECT_GT(model.expectedIncidentLossUsd(5.0), 9.5e5);
}

TEST(OutageCost, AreaLossScalesLinearly)
{
    core::OutageCostModel model;
    const double small = model.lossUsd(10.0, 100.0, 0.5);
    const double large = model.lossUsd(10.0, 200.0, 0.5);
    EXPECT_NEAR(large, 2.0 * small, 1e-9);
}

} // namespace
} // namespace pad
