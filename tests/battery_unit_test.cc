/**
 * @file
 * Unit tests for the DEB battery unit: LVD behaviour, discharge rate
 * limiting, autonomy estimation, and lifetime bookkeeping; plus the
 * super-capacitor model and the charge policies.
 */

#include <gtest/gtest.h>

#include "battery/battery_unit.h"
#include "battery/charge_policy.h"
#include "battery/supercap.h"

namespace pad::battery {
namespace {

BatteryUnitConfig
rackDeb()
{
    BatteryUnitConfig cfg;
    cfg.capacityWh = 120.6; // delivers ~50 s at 5210 W full rack load
    cfg.maxDischargePower = 6252.0;
    cfg.maxChargePower = 1300.0;
    cfg.lvdDisconnectSoc = 0.125;
    cfg.lvdReconnectSoc = 0.25;
    return cfg;
}

TEST(BatteryUnit, DeliversRequestedPowerWhenHealthy)
{
    BatteryUnit deb("t.deb", rackDeb());
    const Joules got = deb.discharge(1000.0, 10.0);
    EXPECT_NEAR(got, 10000.0, 1e-6);
    EXPECT_LT(deb.soc(), 1.0);
}

TEST(BatteryUnit, RespectsMaxDischargePower)
{
    BatteryUnit deb("t.deb", rackDeb());
    const Joules got = deb.discharge(50000.0, 1.0);
    EXPECT_LE(got, rackDeb().maxDischargePower * 1.0 + 1e-6);
}

TEST(BatteryUnit, SustainsRoughlyFiftySecondsAtFullRackLoad)
{
    BatteryUnit deb("t.deb", rackDeb());
    // The paper sizes the cabinet for 50 s at full rack load; with
    // the LVD floor at 12.5% SOC usable time is a bit lower.
    const double autonomy = deb.estimateAutonomySeconds(5210.0, 0.5);
    EXPECT_GT(autonomy, 40.0);
    EXPECT_LT(autonomy, 60.0);
}

TEST(BatteryUnit, LvdTripsAtThresholdAndBlocksDischarge)
{
    BatteryUnit deb("t.deb", rackDeb());
    deb.setSoc(0.13);
    deb.discharge(3000.0, 10.0);
    EXPECT_TRUE(deb.disconnected());
    EXPECT_EQ(deb.lvdTrips(), 1);
    // Further discharge is refused.
    EXPECT_DOUBLE_EQ(deb.discharge(3000.0, 10.0), 0.0);
    // SOC never fell materially below the disconnect floor.
    EXPECT_GE(deb.soc(), rackDeb().lvdDisconnectSoc - 0.01);
}

TEST(BatteryUnit, LvdReconnectsAfterRecharge)
{
    BatteryUnit deb("t.deb", rackDeb());
    deb.setSoc(0.126);
    deb.discharge(2000.0, 60.0);
    ASSERT_TRUE(deb.disconnected());
    // Charge it back above the reconnect threshold.
    for (int i = 0; i < 600 && deb.disconnected(); ++i)
        deb.charge(1300.0, 60.0);
    EXPECT_FALSE(deb.disconnected());
    EXPECT_GE(deb.soc(), rackDeb().lvdReconnectSoc - 0.02);
    EXPECT_GT(deb.discharge(1000.0, 1.0), 0.0);
}

TEST(BatteryUnit, AvailablePowerZeroWhenDisconnected)
{
    BatteryUnit deb("t.deb", rackDeb());
    deb.setSoc(0.10);
    EXPECT_TRUE(deb.disconnected());
    EXPECT_DOUBLE_EQ(deb.availablePower(1.0), 0.0);
}

TEST(BatteryUnit, LifetimeCountersAccumulate)
{
    BatteryUnit deb("t.deb", rackDeb());
    deb.discharge(2000.0, 30.0);
    deb.charge(1000.0, 30.0);
    EXPECT_NEAR(deb.lifetimeDischarged(), 60000.0, 1e-6);
    EXPECT_NEAR(deb.lifetimeCharged(), 30000.0, 1e-6);
    EXPECT_NEAR(deb.equivalentFullCycles(),
                60000.0 / deb.capacity(), 1e-9);
}

TEST(SuperCap, EnergyFollowsHalfCVSquared)
{
    SuperCapConfig cfg;
    cfg.capacitanceF = 2.0;
    cfg.vMax = 48.0;
    cfg.vMin = 24.0;
    SuperCapacitor cap("t.cap", cfg);
    EXPECT_NEAR(cap.usableCapacity(), 0.5 * 2.0 * (48.0 * 48.0 - 24.0 * 24.0),
                1e-9);
    EXPECT_DOUBLE_EQ(cap.soc(), 1.0);
}

TEST(SuperCap, DischargeLowersVoltageAndDeliversEnergy)
{
    SuperCapConfig cfg;
    cfg.capacitanceF = 2.0;
    cfg.efficiency = 1.0;
    SuperCapacitor cap("t.cap", cfg);
    const Joules got = cap.discharge(500.0, 1.0);
    EXPECT_NEAR(got, 500.0, 1e-6);
    EXPECT_LT(cap.voltage(), cfg.vMax);
}

TEST(SuperCap, StopsAtCutoffVoltage)
{
    SuperCapConfig cfg;
    cfg.capacitanceF = 0.5;
    cfg.efficiency = 1.0;
    SuperCapacitor cap("t.cap", cfg);
    const Joules cap0 = cap.usableCapacity();
    const Joules got = cap.discharge(1.0e6, 10.0);
    EXPECT_NEAR(got, cap0, 1e-6);
    EXPECT_TRUE(cap.depleted());
    EXPECT_NEAR(cap.voltage(), cfg.vMin, 1e-9);
}

TEST(SuperCap, PowerBoundRespected)
{
    SuperCapConfig cfg;
    cfg.maxPower = 1000.0;
    cfg.efficiency = 1.0;
    SuperCapacitor cap("t.cap", cfg);
    const Joules got = cap.discharge(5000.0, 0.5);
    EXPECT_LE(got, 1000.0 * 0.5 + 1e-9);
}

TEST(SuperCap, RechargeRestoresSoc)
{
    SuperCapConfig cfg;
    cfg.efficiency = 1.0;
    SuperCapacitor cap("t.cap", cfg);
    cap.discharge(400.0, 2.0);
    const double low = cap.soc();
    cap.charge(400.0, 2.0);
    EXPECT_GT(cap.soc(), low);
    cap.charge(1.0e9, 10.0);
    EXPECT_NEAR(cap.soc(), 1.0, 1e-9);
}

TEST(ChargePolicy, NamesRoundTrip)
{
    EXPECT_EQ(chargePolicyFromName("online"), ChargePolicyKind::Online);
    EXPECT_EQ(chargePolicyFromName("offline"), ChargePolicyKind::Offline);
    EXPECT_EQ(chargePolicyName(ChargePolicyKind::Online), "online");
}

TEST(ChargePolicy, OnlineTopsUpAnyNonFullUnit)
{
    ChargeControllerConfig cfg;
    cfg.kind = ChargePolicyKind::Online;
    ChargeController ctl(cfg);
    BatteryUnit a("a", rackDeb());
    BatteryUnit b("b", rackDeb());
    a.setSoc(0.90);
    b.setSoc(0.95);
    std::vector<BatteryUnit *> units{&a, &b};
    const Joules absorbed = ctl.recharge(units, 2000.0, 60.0);
    EXPECT_GT(absorbed, 0.0);
    EXPECT_GT(a.soc(), 0.90);
}

TEST(ChargePolicy, OfflineWaitsForThreshold)
{
    ChargeControllerConfig cfg;
    cfg.kind = ChargePolicyKind::Offline;
    cfg.offlineStartSoc = 0.40;
    ChargeController ctl(cfg);
    BatteryUnit a("a", rackDeb());
    a.setSoc(0.60); // above the recharge-start threshold
    std::vector<BatteryUnit *> units{&a};
    EXPECT_DOUBLE_EQ(ctl.recharge(units, 2000.0, 60.0), 0.0);
    a.setSoc(0.35); // below: now it charges, and keeps charging
    EXPECT_GT(ctl.recharge(units, 2000.0, 60.0), 0.0);
    EXPECT_GT(ctl.recharge(units, 2000.0, 60.0), 0.0);
}

TEST(ChargePolicy, LowestSocChargedFirstWhenHeadroomScarce)
{
    ChargeControllerConfig cfg;
    cfg.kind = ChargePolicyKind::Online;
    ChargeController ctl(cfg);
    BatteryUnit low("low", rackDeb());
    BatteryUnit high("high", rackDeb());
    low.setSoc(0.20);
    high.setSoc(0.80);
    std::vector<BatteryUnit *> units{&high, &low};
    // Headroom covers only one unit's max charge rate.
    ctl.recharge(units, rackDeb().maxChargePower, 60.0);
    EXPECT_GT(low.soc(), 0.20);
    EXPECT_NEAR(high.soc(), 0.80, 1e-6);
}

} // namespace
} // namespace pad::battery
