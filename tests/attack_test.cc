/**
 * @file
 * Unit tests for the attack substrate: virus signatures, spike-train
 * geometry, the Fig. 12 trace synthesizer, the two-phase attacker
 * state machine, and effective-attack bookkeeping.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "attack/attack_stats.h"
#include "attack/attacker.h"
#include "attack/power_virus.h"
#include "attack/virus_trace.h"

namespace pad::attack {
namespace {

TEST(PowerVirus, SignatureOrderingMatchesCharacterization)
{
    // CPU viruses reach the highest peaks with the sharpest edges;
    // IO viruses are weakest and slowest (paper Fig. 8 discussion).
    const auto cpu = virusSignature(VirusKind::CpuIntensive);
    const auto mem = virusSignature(VirusKind::MemIntensive);
    const auto io = virusSignature(VirusKind::IoIntensive);
    EXPECT_GT(cpu.maxUtil, mem.maxUtil);
    EXPECT_GT(mem.maxUtil, io.maxUtil);
    EXPECT_LT(cpu.riseTimeSec, io.riseTimeSec);
    EXPECT_LT(cpu.jitter, io.jitter);
}

TEST(PowerVirus, PhaseOneIsSustainedMax)
{
    PowerVirus v(VirusKind::CpuIntensive, SpikeTrain{1.0, 2.0, 1.0});
    EXPECT_DOUBLE_EQ(v.phaseOneUtil(), 1.0);
}

TEST(PowerVirus, PhaseTwoSpikesReachTopAndReturnToPressure)
{
    const SpikeTrain train{2.0, 1.0, 1.0}; // 2 s wide, 1/min
    PowerVirus v(VirusKind::CpuIntensive, train);
    const double base = v.signature().phaseTwoPressure;

    // Mid-spike sample: find the first spike and probe its plateau.
    const double s0 = v.spikeStart(0);
    const double mid = s0 + v.signature().riseTimeSec + 1.0;
    EXPECT_GT(v.phaseTwoUtil(mid), 0.95);

    // Far from any spike: back to the drain-pressure baseline.
    const double far = s0 + 30.0;
    EXPECT_NEAR(v.phaseTwoUtil(far), base, 1e-9);
}

TEST(PowerVirus, SpikeCadenceMatchesFrequency)
{
    const SpikeTrain train{1.0, 6.0, 1.0}; // 6 per minute
    PowerVirus v(VirusKind::CpuIntensive, train);
    EXPECT_EQ(v.spikesWithin(60.0), 6);
    EXPECT_EQ(v.spikesWithin(600.0), 60);
    // Starts are spaced by ~periodSec with bounded jitter.
    for (int i = 0; i + 1 < 10; ++i) {
        const double gap = v.spikeStart(i + 1) - v.spikeStart(i);
        EXPECT_GT(gap, 0.5 * train.periodSec());
        EXPECT_LT(gap, 1.5 * train.periodSec());
    }
}

TEST(PowerVirus, IoVirusCannotReachNameplate)
{
    PowerVirus v(VirusKind::IoIntensive, SpikeTrain{2.0, 2.0, 1.0});
    double top = 0.0;
    for (double t = 0.0; t < 120.0; t += 0.05)
        top = std::max(top, v.phaseTwoUtil(t));
    EXPECT_LT(top, 0.75);
}

TEST(PowerVirus, DeterministicForSeed)
{
    PowerVirus a(VirusKind::MemIntensive, SpikeTrain{1.0, 2.0, 1.0}, 5);
    PowerVirus b(VirusKind::MemIntensive, SpikeTrain{1.0, 2.0, 1.0}, 5);
    for (double t = 0.0; t < 60.0; t += 0.37)
        EXPECT_DOUBLE_EQ(a.phaseTwoUtil(t), b.phaseTwoUtil(t));
}

TEST(VirusTrace, DenseHasHigherDutyCycleThanSparse)
{
    const auto dense = synthesizeVirusTrace(VirusKind::CpuIntensive,
                                            AttackStyle::Dense, 300);
    const auto sparse = synthesizeVirusTrace(VirusKind::CpuIntensive,
                                             AttackStyle::Sparse, 300);
    auto meanOf = [](const std::vector<double> &v) {
        double acc = 0.0;
        for (double x : v)
            acc += x;
        return acc / static_cast<double>(v.size());
    };
    EXPECT_GT(meanOf(dense), meanOf(sparse));
    EXPECT_LE(*std::max_element(dense.begin(), dense.end()), 100.0 + 1e-9);
}

TEST(VirusTrace, StyleNames)
{
    EXPECT_EQ(attackStyleName(AttackStyle::Dense), "Dense Attack");
    EXPECT_EQ(attackStyleName(AttackStyle::Sparse), "Sparse Attack");
}

TEST(Attacker, PreparesThenDrains)
{
    AttackerConfig cfg;
    cfg.prepareSec = 10.0;
    TwoPhaseAttacker atk(cfg);
    EXPECT_EQ(atk.phase(), TwoPhaseAttacker::Phase::Prepare);
    // Low profile while preparing.
    EXPECT_LT(atk.demandedUtil(0, 0.0), 0.5);
    atk.advance(10.0);
    EXPECT_EQ(atk.phase(), TwoPhaseAttacker::Phase::Drain);
    EXPECT_DOUBLE_EQ(atk.demandedUtil(0, 12.0), 1.0);
}

TEST(Attacker, SideChannelThrottlingTriggersPhaseTwo)
{
    AttackerConfig cfg;
    cfg.prepareSec = 0.0;
    cfg.cappingConfirmSec = 3.0;
    TwoPhaseAttacker atk(cfg);
    atk.advance(0.0);
    ASSERT_EQ(atk.phase(), TwoPhaseAttacker::Phase::Drain);
    // Healthy performance: stay in Phase I.
    for (double t = 0.0; t < 50.0; t += 1.0) {
        atk.advance(t);
        atk.observePerformance(t, 1.0, 1.0);
    }
    EXPECT_EQ(atk.phase(), TwoPhaseAttacker::Phase::Drain);
    // DVFS throttling appears (executed fraction 0.8): after the
    // confirmation window the attacker learns autonomy and strikes.
    for (double t = 50.0; t < 60.0; t += 1.0) {
        atk.advance(t);
        atk.observePerformance(t, 0.8, 1.0);
    }
    EXPECT_EQ(atk.phase(), TwoPhaseAttacker::Phase::Spike);
    EXPECT_NEAR(atk.learnedAutonomySec(), 50.0, 1.5);
    EXPECT_GE(atk.phaseTwoStartSec(), 50.0);
}

TEST(Attacker, BlipsDoNotTriggerPhaseTwo)
{
    AttackerConfig cfg;
    cfg.prepareSec = 0.0;
    cfg.cappingConfirmSec = 5.0;
    TwoPhaseAttacker atk(cfg);
    atk.advance(0.0);
    // Alternating one-second throttle blips never confirm.
    for (double t = 0.0; t < 100.0; t += 1.0) {
        atk.advance(t);
        atk.observePerformance(t, (static_cast<int>(t) % 2) ? 0.8 : 1.0,
                               1.0);
    }
    EXPECT_EQ(atk.phase(), TwoPhaseAttacker::Phase::Drain);
    EXPECT_LT(atk.learnedAutonomySec(), 0.0);
}

TEST(Attacker, FallbackAfterMaxDrain)
{
    AttackerConfig cfg;
    cfg.prepareSec = 5.0;
    cfg.maxDrainSec = 60.0;
    TwoPhaseAttacker atk(cfg);
    atk.advance(5.0);
    atk.advance(64.9);
    EXPECT_EQ(atk.phase(), TwoPhaseAttacker::Phase::Drain);
    atk.advance(65.0);
    EXPECT_EQ(atk.phase(), TwoPhaseAttacker::Phase::Spike);
    // Never observed throttling: no learned autonomy.
    EXPECT_LT(atk.learnedAutonomySec(), 0.0);
}

TEST(AttackStats, CountsOverloadCrossingsNotDuration)
{
    AttackStats stats;
    stats.setAttackStart(0);
    // One long overload: a single effective attack.
    stats.observe(0, 900.0, 1000.0, false);
    stats.observe(100, 1100.0, 1000.0, false);
    stats.observe(200, 1100.0, 1000.0, false);
    stats.observe(300, 900.0, 1000.0, false);
    // A second crossing.
    stats.observe(400, 1200.0, 1000.0, false);
    EXPECT_EQ(stats.effectiveAttacks(), 2);
    EXPECT_EQ(stats.firstOverloadTick(), 100);
    EXPECT_EQ(stats.overloadOnsets().size(), 2u);
}

TEST(AttackStats, SurvivalTimeFromAttackStart)
{
    AttackStats stats;
    stats.setAttackStart(10 * kTicksPerSecond);
    stats.observe(25 * kTicksPerSecond, 1100.0, 1000.0, false);
    EXPECT_NEAR(stats.survivalSeconds(999.0), 15.0, 1e-9);
}

TEST(AttackStats, NoOverloadMeansHorizonSurvival)
{
    AttackStats stats;
    stats.setAttackStart(0);
    stats.observe(100, 900.0, 1000.0, false);
    EXPECT_DOUBLE_EQ(stats.survivalSeconds(1500.0), 1500.0);
    EXPECT_EQ(stats.firstOverloadTick(), kTickNever);
}

TEST(AttackStats, RecordsFirstBreakerTrip)
{
    AttackStats stats;
    stats.observe(50, 900.0, 1000.0, false);
    stats.observe(60, 1200.0, 1000.0, true);
    stats.observe(70, 1200.0, 1000.0, true);
    EXPECT_EQ(stats.firstTripTick(), 60);
}

} // namespace
} // namespace pad::attack
