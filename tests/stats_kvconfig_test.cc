/**
 * @file
 * Unit tests for the stats registry, the key=value configuration
 * parser, and the DataCenter stats export.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/datacenter.h"
#include "sim/stats_registry.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"
#include "util/kv_config.h"

namespace pad {
namespace {

TEST(StatsRegistry, ScalarHandlesUpdateStorage)
{
    sim::StatsRegistry stats;
    auto counter = stats.registerScalar("a.count", "events");
    counter.inc();
    counter.add(2.0);
    EXPECT_DOUBLE_EQ(stats.lookup("a.count"), 3.0);
    counter.set(7.0);
    EXPECT_DOUBLE_EQ(counter.value(), 7.0);
    EXPECT_TRUE(stats.contains("a.count"));
    EXPECT_FALSE(stats.contains("a.missing"));
}

TEST(StatsRegistry, ReRegisteringSharesStorage)
{
    sim::StatsRegistry stats;
    auto a = stats.registerScalar("x", "first");
    auto b = stats.registerScalar("x", "second");
    a.add(1.0);
    b.add(1.0);
    EXPECT_DOUBLE_EQ(stats.lookup("x"), 2.0);
    EXPECT_EQ(stats.size(), 1u);
}

TEST(StatsRegistry, DumpRendersSortedWithDescriptions)
{
    sim::StatsRegistry stats;
    stats.registerScalar("b.second", "later").set(2.0);
    stats.registerScalar("a.first", "earlier").set(1.0);
    stats.setVector("c.vec", "a vector", {1.0, 2.5});
    std::ostringstream out;
    stats.dump(out);
    const std::string s = out.str();
    EXPECT_LT(s.find("a.first"), s.find("b.second"));
    EXPECT_NE(s.find("# earlier"), std::string::npos);
    EXPECT_NE(s.find("[1 2.5]"), std::string::npos);
}

TEST(StatsRegistry, ResetZeroesEverything)
{
    sim::StatsRegistry stats;
    auto x = stats.registerScalar("x", "");
    x.set(5.0);
    stats.setVector("v", "", {1.0});
    stats.reset();
    EXPECT_DOUBLE_EQ(stats.lookup("x"), 0.0);
}

TEST(KvConfig, ParsesTypesAndComments)
{
    const auto cfg = KvConfig::fromString(
        "# header comment\n"
        "scheme = PAD   # trailing comment\n"
        "nodes  = 4\n"
        "budget = 0.75\n"
        "quiet  = yes\n"
        "\n");
    EXPECT_EQ(cfg.getString("scheme"), "PAD");
    EXPECT_EQ(cfg.getInt("nodes", 0), 4);
    EXPECT_DOUBLE_EQ(cfg.getDouble("budget", 0.0), 0.75);
    EXPECT_TRUE(cfg.getBool("quiet", false));
    EXPECT_EQ(cfg.keys().size(), 4u);
}

TEST(KvConfig, FallbacksForMissingKeys)
{
    const auto cfg = KvConfig::fromString("a = 1\n");
    EXPECT_EQ(cfg.getString("missing", "dflt"), "dflt");
    EXPECT_DOUBLE_EQ(cfg.getDouble("missing", 3.5), 3.5);
    EXPECT_EQ(cfg.getInt("missing", -2), -2);
    EXPECT_FALSE(cfg.getBool("missing", false));
    EXPECT_FALSE(cfg.has("missing"));
}

TEST(KvConfig, LaterAssignmentsWin)
{
    const auto cfg = KvConfig::fromString("k = 1\nk = 2\n");
    EXPECT_EQ(cfg.getInt("k", 0), 2);
}

TEST(KvConfig, SetOverrides)
{
    auto cfg = KvConfig::fromString("k = 1\n");
    cfg.set("k", "9");
    EXPECT_EQ(cfg.getInt("k", 0), 9);
}

TEST(DataCenterStats, DumpContainsFleetTelemetry)
{
    trace::SyntheticTraceConfig tc;
    tc.machines = 220;
    tc.days = 0.5;
    const auto events = trace::SyntheticGoogleTrace(tc).generate();
    trace::Workload workload(events, tc.machines, kTicksPerDay / 2);

    core::DataCenterConfig cfg;
    cfg.scheme = core::SchemeKind::PS;
    cfg.deb = core::defaultDebConfig(cfg.rackNameplate());
    core::DataCenter dc(cfg, &workload);
    dc.runCoarseUntil(6 * kTicksPerHour);

    std::ostringstream out;
    dc.dumpStats(out);
    const std::string s = out.str();
    EXPECT_NE(s.find("perf.throughput"), std::string::npos);
    EXPECT_NE(s.find("deb.soc"), std::string::npos);
    EXPECT_NE(s.find("deb.lvd_trips"), std::string::npos);
    EXPECT_NE(s.find("breaker.trips"), std::string::npos);
    EXPECT_NE(s.find("sim.seconds"), std::string::npos);
}

} // namespace
} // namespace pad
