/**
 * @file
 * Unit tests for the util module: formatting, statistics, CSV, RNG,
 * tables and unit conversions.
 */

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/json.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/types.h"

namespace pad {
namespace {

TEST(Types, TickConversionsRoundTrip)
{
    EXPECT_EQ(secondsToTicks(1.0), kTicksPerSecond);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kTicksPerMinute), 60.0);
    EXPECT_EQ(secondsToTicks(0.1), 100);
    EXPECT_DOUBLE_EQ(wattHoursToJoules(1.0), 3600.0);
    EXPECT_DOUBLE_EQ(joulesToWattHours(7200.0), 2.0);
    EXPECT_EQ(kTicksPerDay, 24 * 60 * 60 * 1000);
}

TEST(Logging, FormatSubstitutesPlaceholders)
{
    EXPECT_EQ(detail::formatMessage("a {} c {}", 1, "b"), "a 1 c b");
    EXPECT_EQ(detail::formatMessage("no args"), "no args");
    EXPECT_EQ(detail::formatMessage("extra {} {}", 7), "extra 7 {}");
}

TEST(Logging, FormatBraceEscapes)
{
    EXPECT_EQ(detail::formatMessage("{{}}"), "{}");
    EXPECT_EQ(detail::formatMessage("{{{}}}", 5), "{5}");
    EXPECT_EQ(detail::formatMessage("json: {{\"k\": {}}}", 1),
              "json: {\"k\": 1}");
    EXPECT_EQ(detail::formatMessage("lone { and } stay"),
              "lone { and } stay");
    // A starved placeholder is kept verbatim, not dropped.
    EXPECT_EQ(detail::formatMessage("{{literal}} then {}"),
              "{literal} then {}");
}

TEST(Logging, LevelNamesRoundTrip)
{
    EXPECT_EQ(logLevelFromName("debug"), LogLevel::Debug);
    EXPECT_EQ(logLevelFromName("WARN"), LogLevel::Warn);
    EXPECT_EQ(logLevelFromName("warning"), LogLevel::Warn);
    EXPECT_EQ(logLevelFromName("Info"), LogLevel::Info);
    EXPECT_EQ(logLevelFromName("silent"), LogLevel::Silent);
    EXPECT_FALSE(logLevelFromName("loud").has_value());
    for (LogLevel level : {LogLevel::Silent, LogLevel::Error,
                           LogLevel::Warn, LogLevel::Info,
                           LogLevel::Debug})
        EXPECT_EQ(logLevelFromName(logLevelName(level)), level);
}

TEST(RunningStats, MeanVarianceExtrema)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_NEAR(s.mean(), 5.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeEqualsConcatenation)
{
    RunningStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = 0.37 * i - 3.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Percentile, InterpolatesLinearly)
{
    std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 25.0), 7.0);
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);
    h.add(9.9);
    h.add(-100.0); // clamped into first bin
    h.add(100.0);  // clamped into last bin
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(4), 2u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.binLeft(1), 2.0);
}

TEST(Csv, ParseHandlesQuotingAndEscapes)
{
    const auto f = parseCsvLine("a,\"b,c\",\"d\"\"e\",f");
    ASSERT_EQ(f.size(), 4u);
    EXPECT_EQ(f[0], "a");
    EXPECT_EQ(f[1], "b,c");
    EXPECT_EQ(f[2], "d\"e");
    EXPECT_EQ(f[3], "f");
}

TEST(Csv, FormatQuotesWhenNeeded)
{
    EXPECT_EQ(formatCsvLine({"a", "b,c", "d\"e"}),
              "a,\"b,c\",\"d\"\"e\"");
}

TEST(Csv, RoundTripThroughFile)
{
    char path[] = "/tmp/pad_csv_XXXXXX";
    const int fd = mkstemp(path);
    ASSERT_GE(fd, 0);
    ::close(fd);
    {
        CsvWriter w(path);
        w.write({"x", "y"});
        w.writeNumbers({1.5, -2.0});
        w.flush();
    }
    CsvReader r(path);
    std::vector<std::string> fields;
    ASSERT_TRUE(r.next(fields));
    EXPECT_EQ(fields[0], "x");
    ASSERT_TRUE(r.next(fields));
    EXPECT_EQ(fields[0], "1.5");
    EXPECT_FALSE(r.next(fields));
    std::remove(path);
}

TEST(Rng, DeterministicAndForkable)
{
    Rng a(7), b(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    Rng child = a.fork();
    EXPECT_NE(child.uniform(), a.uniform());
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, BoundedParetoStaysInBounds)
{
    Rng rng(11);
    double mean = 0.0;
    for (int i = 0; i < 5000; ++i) {
        const double v = rng.boundedPareto(1.5, 1.0, 100.0);
        EXPECT_GE(v, 1.0 - 1e-9);
        EXPECT_LE(v, 100.0 + 1e-9);
        mean += v;
    }
    mean /= 5000.0;
    // Heavy tail pulls the mean well above the minimum.
    EXPECT_GT(mean, 1.5);
    EXPECT_LT(mean, 20.0);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow("beta", {2.5, 3.25}, 2);
    std::ostringstream out;
    t.print(out);
    const std::string s = out.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("2.50"), std::string::npos);
    EXPECT_NE(s.find("3.25"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatPercent(0.431, 1), "43.1%");
}

// The JSON parser is the read side of every padtrace input; these
// tests pin the behaviors the forensics path depends on.

TEST(Json, DeeplyNestedDocumentsParse)
{
    // 64 levels of alternating object/array nesting, the shape a
    // pathological-but-legal trace args blob could take.
    std::string text;
    for (int i = 0; i < 32; ++i)
        text += "{\"a\":[";
    text += "42";
    for (int i = 0; i < 32; ++i)
        text += "]}";
    std::string error;
    const auto doc = parseJson(text, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const JsonValue *node = &*doc;
    for (int i = 0; i < 32; ++i) {
        ASSERT_TRUE(node->isObject());
        node = node->find("a");
        ASSERT_NE(node, nullptr);
        ASSERT_TRUE(node->isArray());
        ASSERT_EQ(node->array.size(), 1u);
        node = &node->array[0];
    }
    EXPECT_DOUBLE_EQ(node->number, 42.0);
}

TEST(Json, UnicodeEscapesDecodeToUtf8)
{
    std::string error;
    const auto doc = parseJson(
        "{\"ascii\":\"\\u0041\",\"latin\":\"\\u00e9\","
        "\"bmp\":\"\\u20ac\",\"controls\":\"\\n\\t\\\\\\\"\"}",
        &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->find("ascii")->str, "A");
    EXPECT_EQ(doc->find("latin")->str, "\xC3\xA9");   // é
    EXPECT_EQ(doc->find("bmp")->str, "\xE2\x82\xAC"); // €
    EXPECT_EQ(doc->find("controls")->str, "\n\t\\\"");

    // Truncated \u escape is a syntax error, not a crash.
    EXPECT_FALSE(parseJson("{\"x\":\"\\u12\"}", &error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST(Json, TruncatedAndCorruptInputsFailCleanly)
{
    // Exactly the shapes a killed run leaves at the end of a JSONL
    // trace: cut-off objects, strings and numbers, plus raw garbage.
    const char *broken[] = {
        "{\"ts\":1000,\"name\":\"po",
        "{\"ts\":1000,",
        "{\"ts\":",
        "{",
        "[1, 2,",
        "\"unterminated",
        "{\"a\":1}trailing",
        "nul",
        "\x01\x02\x03",
    };
    for (const char *text : broken) {
        std::string error;
        EXPECT_FALSE(parseJson(text, &error).has_value()) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(Json, WriterOutputRoundTripsThroughParser)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.key("name").value("padtrace \"report\"\nline2");
        w.key("survival").value(740.0625);
        w.key("count").value(std::int64_t{-3});
        w.key("flags").beginArray();
        w.value(true).value(false).null();
        w.endArray();
        w.key("nested").beginObject();
        w.key("unicode").value("é€");
        w.endObject();
        w.endObject();
    }
    std::string error;
    const auto doc = parseJson(os.str(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->find("name")->str, "padtrace \"report\"\nline2");
    // formatDouble guarantees bit-exact double round-trips.
    EXPECT_EQ(doc->find("survival")->number, 740.0625);
    EXPECT_DOUBLE_EQ(doc->find("count")->number, -3.0);
    ASSERT_EQ(doc->find("flags")->array.size(), 3u);
    EXPECT_TRUE(doc->find("flags")->array[2].isNull());
    EXPECT_EQ(doc->find("nested")->find("unicode")->str, "é€");
}

} // namespace
} // namespace pad
