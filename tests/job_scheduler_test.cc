/**
 * @file
 * Unit tests for the job scheduler (paper Fig. 11-B's dispatcher):
 * placement policies, load tracking with task expiry, and the
 * event/job round trip.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "sched/job_scheduler.h"

namespace pad::sched {
namespace {

Job
oneTask(Tick arrival, Tick duration, double cpu)
{
    Job job;
    job.arrival = arrival;
    job.tasks.push_back(JobTask{duration, cpu});
    return job;
}

TEST(JobScheduler, RoundRobinCycles)
{
    JobScheduler sched(4, 2, PlacementPolicy::RoundRobin);
    std::vector<Job> jobs;
    for (int i = 0; i < 6; ++i)
        jobs.push_back(oneTask(i, 100, 0.1));
    const auto events = sched.schedule(jobs);
    ASSERT_EQ(events.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(events[static_cast<std::size_t>(i)].machine, i % 4);
}

TEST(JobScheduler, LeastLoadedSpreadsConcurrentTasks)
{
    JobScheduler sched(3, 3, PlacementPolicy::LeastLoaded);
    std::vector<Job> jobs;
    for (int i = 0; i < 3; ++i)
        jobs.push_back(oneTask(0, 1000, 0.5));
    const auto events = sched.schedule(jobs);
    std::vector<int> machines;
    for (const auto &ev : events)
        machines.push_back(ev.machine);
    std::sort(machines.begin(), machines.end());
    EXPECT_EQ(machines, (std::vector<int>{0, 1, 2}));
}

TEST(JobScheduler, ExpiredTasksFreeTheMachine)
{
    JobScheduler sched(2, 2, PlacementPolicy::LeastLoaded);
    std::vector<Job> jobs;
    jobs.push_back(oneTask(0, 10, 0.9));   // machine 0, ends at 10
    jobs.push_back(oneTask(0, 1000, 0.1)); // machine 1
    jobs.push_back(oneTask(50, 100, 0.5)); // machine 0 is free again
    const auto events = sched.schedule(jobs);
    EXPECT_EQ(events[2].machine, 0);
    EXPECT_NEAR(sched.projectedLoad(0), 0.5, 1e-12);
}

TEST(JobScheduler, PowerAwareAvoidsHotRacks)
{
    // 2 racks x 2 machines; pre-load rack 0 heavily.
    JobScheduler sched(4, 2, PlacementPolicy::PowerAware);
    std::vector<Job> jobs;
    jobs.push_back(oneTask(0, 1000, 0.9)); // lands somewhere
    jobs.push_back(oneTask(1, 1000, 0.9)); // other rack
    const auto events = sched.schedule(jobs);
    const int rack0 = events[0].machine / 2;
    const int rack1 = events[1].machine / 2;
    EXPECT_NE(rack0, rack1);
}

TEST(JobScheduler, RandomIsDeterministicPerSeed)
{
    std::vector<Job> jobs;
    for (int i = 0; i < 20; ++i)
        jobs.push_back(oneTask(i, 50, 0.2));
    JobScheduler a(8, 4, PlacementPolicy::Random, 5);
    JobScheduler b(8, 4, PlacementPolicy::Random, 5);
    const auto ea = a.schedule(jobs);
    const auto eb = b.schedule(jobs);
    for (std::size_t i = 0; i < ea.size(); ++i)
        EXPECT_EQ(ea[i].machine, eb[i].machine);
}

TEST(JobScheduler, JobsSortedByArrival)
{
    JobScheduler sched(2, 2, PlacementPolicy::RoundRobin);
    std::vector<Job> jobs{oneTask(100, 10, 0.1), oneTask(0, 10, 0.1)};
    const auto events = sched.schedule(jobs);
    EXPECT_LT(events[0].start, events[1].start);
}

TEST(JobScheduler, MultiTaskJobsKeepArrival)
{
    Job job;
    job.arrival = 42;
    job.tasks.push_back(JobTask{10, 0.1});
    job.tasks.push_back(JobTask{20, 0.2});
    JobScheduler sched(4, 2, PlacementPolicy::RoundRobin);
    const auto events = sched.schedule({job});
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].start, 42);
    EXPECT_EQ(events[1].start, 42);
    EXPECT_EQ(events[1].end, 62);
}

TEST(JobScheduler, JobsFromEventsRoundTrip)
{
    std::vector<trace::TaskEvent> events;
    events.push_back(trace::TaskEvent{0, 100, 7, 0.3});
    events.push_back(trace::TaskEvent{50, 250, 2, 0.6});
    const auto jobs = jobsFromEvents(events);
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].arrival, 0);
    EXPECT_EQ(jobs[0].tasks[0].duration, 100);
    EXPECT_DOUBLE_EQ(jobs[1].tasks[0].cpuRate, 0.6);
    // Re-placing keeps timing and demand, only machines change.
    JobScheduler sched(4, 2, PlacementPolicy::RoundRobin);
    const auto replaced = sched.schedule(jobs);
    EXPECT_EQ(replaced[1].start, 50);
    EXPECT_EQ(replaced[1].end, 250);
}

TEST(JobScheduler, PolicyNames)
{
    EXPECT_EQ(placementPolicyName(PlacementPolicy::PowerAware),
              "power-aware");
    EXPECT_EQ(placementPolicyName(PlacementPolicy::RoundRobin),
              "round-robin");
}

} // namespace
} // namespace pad::sched
