/**
 * @file
 * Unit tests for the metering detector (Table I mechanism) and the
 * scheduling substrate (throughput accounting, load shedding).
 */

#include <gtest/gtest.h>

#include "metering/detector.h"
#include "sched/load_shedding.h"
#include "sched/perf_monitor.h"

namespace pad {
namespace {

using metering::DetectorConfig;
using metering::SpikeDetector;

TEST(SpikeDetector, FlagsIntervalLiftedBySpike)
{
    DetectorConfig cfg;
    cfg.interval = 5 * kTicksPerSecond;
    cfg.relativeMargin = 0.04;
    SpikeDetector det("t.det", cfg, 400.0);
    // A 1 s spike to 600 W inside a 5 s interval lifts the average
    // to 440 W: 10% over baseline, detected.
    det.observe(400.0, 4 * kTicksPerSecond);
    det.observe(600.0, 1 * kTicksPerSecond);
    EXPECT_EQ(det.flags().size(), 1u);
}

TEST(SpikeDetector, CoarseIntervalMissesNarrowSpike)
{
    DetectorConfig cfg;
    cfg.interval = 60 * kTicksPerSecond;
    cfg.relativeMargin = 0.04;
    SpikeDetector det("t.det", cfg, 400.0);
    // The same 1 s spike diluted into a minute: +0.8%, invisible.
    det.observe(400.0, 59 * kTicksPerSecond);
    det.observe(600.0, 1 * kTicksPerSecond);
    EXPECT_TRUE(det.flags().empty());
}

TEST(SpikeDetector, HighDutyCycleDetectedEvenAtCoarseInterval)
{
    DetectorConfig cfg;
    cfg.interval = 60 * kTicksPerSecond;
    cfg.relativeMargin = 0.04;
    SpikeDetector det("t.det", cfg, 400.0);
    // 40% duty cycle of 600 W spikes: average 480 W, +20%.
    for (int i = 0; i < 6; ++i) {
        det.observe(600.0, 4 * kTicksPerSecond);
        det.observe(400.0, 6 * kTicksPerSecond);
    }
    EXPECT_EQ(det.flags().size(), 1u);
}

TEST(SpikeDetector, DetectionRateOverSpikeWindows)
{
    DetectorConfig cfg;
    cfg.interval = 10 * kTicksPerSecond;
    cfg.relativeMargin = 0.04;
    SpikeDetector det("t.det", cfg, 400.0);
    // Interval 1: big spike (detected); interval 2: quiet.
    det.observe(400.0, 8 * kTicksPerSecond);
    det.observe(900.0, 2 * kTicksPerSecond);
    det.observe(400.0, 10 * kTicksPerSecond);
    std::vector<std::pair<Tick, Tick>> spikes = {
        {8 * kTicksPerSecond, 10 * kTicksPerSecond},  // inside flagged
        {15 * kTicksPerSecond, 16 * kTicksPerSecond}, // quiet interval
    };
    EXPECT_NEAR(det.detectionRate(spikes), 0.5, 1e-9);
}

TEST(SpikeDetector, ThresholdAndFlaggedAt)
{
    DetectorConfig cfg;
    cfg.interval = kTicksPerSecond;
    cfg.relativeMargin = 0.10;
    SpikeDetector det("t.det", cfg, 100.0);
    EXPECT_NEAR(det.threshold(), 110.0, 1e-9);
    det.observe(150.0, kTicksPerSecond);
    det.observe(100.0, kTicksPerSecond);
    EXPECT_TRUE(det.flaggedAt(500));
    EXPECT_FALSE(det.flaggedAt(1500));
}

TEST(PerfMonitor, ThroughputRatio)
{
    sched::PerfMonitor perf;
    perf.record(1.0, 0.8, 10.0);
    perf.record(0.5, 0.5, 10.0);
    EXPECT_NEAR(perf.normalizedThroughput(), 13.0 / 15.0, 1e-9);
    EXPECT_NEAR(perf.demandedWork(), 15.0, 1e-9);
    EXPECT_NEAR(perf.executedWork(), 13.0, 1e-9);
}

TEST(PerfMonitor, ShedChargesFullLoss)
{
    sched::PerfMonitor perf;
    perf.recordShed(0.6, 10.0);
    EXPECT_NEAR(perf.normalizedThroughput(), 0.0, 1e-9);
}

TEST(PerfMonitor, EmptyIsPerfect)
{
    sched::PerfMonitor perf;
    EXPECT_DOUBLE_EQ(perf.normalizedThroughput(), 1.0);
    perf.record(1.0, 1.0, 5.0);
    perf.reset();
    EXPECT_DOUBLE_EQ(perf.normalizedThroughput(), 1.0);
}

TEST(LoadShedder, ClosesDeficitWithFewestLowPriorityServers)
{
    sched::LoadShedder shedder;
    std::vector<sched::ShedCandidate> candidates = {
        {0, 300.0, 2}, // high priority: shed last
        {1, 300.0, 0},
        {2, 200.0, 0},
        {3, 350.0, 1},
    };
    const auto d = shedder.plan(candidates, 450.0);
    // Priority-0 servers go first, biggest release first.
    ASSERT_EQ(d.serversToSleep.size(), 2u);
    EXPECT_EQ(d.serversToSleep[0], 1);
    EXPECT_EQ(d.serversToSleep[1], 2);
    EXPECT_NEAR(d.releasedPower, 500.0, 1e-9);
    EXPECT_NEAR(d.shedRatio, 0.5, 1e-9);
}

TEST(LoadShedder, NoDeficitNoShedding)
{
    sched::LoadShedder shedder;
    std::vector<sched::ShedCandidate> candidates = {{0, 300.0, 0}};
    EXPECT_TRUE(shedder.plan(candidates, 0.0).serversToSleep.empty());
    EXPECT_TRUE(shedder.plan(candidates, -5.0).serversToSleep.empty());
}

TEST(LoadShedder, ShedsEverythingWhenDeficitHuge)
{
    sched::LoadShedder shedder;
    std::vector<sched::ShedCandidate> candidates = {
        {0, 300.0, 0}, {1, 300.0, 0}, {2, 300.0, 0}};
    const auto d = shedder.plan(candidates, 1.0e9);
    EXPECT_EQ(d.serversToSleep.size(), 3u);
    EXPECT_NEAR(d.shedRatio, 1.0, 1e-9);
}

TEST(LoadShedder, TracksLifetimeTotal)
{
    sched::LoadShedder shedder;
    std::vector<sched::ShedCandidate> candidates = {{0, 300.0, 0},
                                                    {1, 300.0, 0}};
    shedder.plan(candidates, 400.0);
    shedder.plan(candidates, 100.0);
    EXPECT_EQ(shedder.totalShed(), 3u);
}

} // namespace
} // namespace pad
