/**
 * @file
 * Tests for the observability layer: trace sinks (JSONL golden
 * output, Chrome-trace JSON validity), the thread-local tracer
 * binding, histogram/timer/counter statistics and their merge
 * semantics, run manifests, and the JSON parser that closes the
 * write-then-validate loop.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/manifest.h"
#include "obs/trace_sink.h"
#include "obs/tracer.h"
#include "obs/version.h"
#include "sim/stats_registry.h"
#include "util/json.h"

using namespace pad;

// ---------------------------------------------------------------------
// Allocation counting for the zero-cost-when-disabled contract.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> gAllocations{0};
}

void *
operator new(std::size_t size)
{
    gAllocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

// ---------------------------------------------------------------------
// Tracer binding
// ---------------------------------------------------------------------

TEST(Tracer, DisabledByDefault)
{
    EXPECT_FALSE(obs::traceEnabled());
}

TEST(Tracer, ScopeBindsAndRestores)
{
    obs::CountingTraceSink sink;
    EXPECT_FALSE(obs::traceEnabled());
    {
        const obs::TraceScope scope(&sink);
        EXPECT_TRUE(obs::traceEnabled());
        obs::emit("test", "event");
        {
            // Nested scope with nullptr disables tracing again.
            const obs::TraceScope inner(nullptr);
            EXPECT_FALSE(obs::traceEnabled());
            obs::emit("test", "dropped");
        }
        EXPECT_TRUE(obs::traceEnabled());
        obs::emit("test", "event");
    }
    EXPECT_FALSE(obs::traceEnabled());
    EXPECT_EQ(sink.count(), 2u);
}

TEST(Tracer, ScopeRestoresClock)
{
    obs::CountingTraceSink sink;
    const obs::TraceScope outer(&sink);
    obs::setTraceClock(500);
    {
        const obs::TraceScope inner(&sink);
        EXPECT_EQ(obs::traceClock(), 0);
        obs::setTraceClock(99);
    }
    EXPECT_EQ(obs::traceClock(), 500);
}

TEST(Tracer, DisabledEmitIsAllocationFree)
{
    ASSERT_FALSE(obs::traceEnabled());
    const std::uint64_t before =
        gAllocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        if (obs::traceEnabled())
            obs::emit("test", "event",
                      {obs::TraceField::integer("i", i),
                       obs::TraceField::num("x", 1.5)});
    }
    EXPECT_EQ(gAllocations.load(std::memory_order_relaxed), before);
}

TEST(Tracer, NullSinkEmitIsAllocationFree)
{
    obs::NullTraceSink sink;
    const obs::TraceScope scope(&sink);
    // Warm any lazy TLS/stream state.
    obs::emit("test", "warmup", {obs::TraceField::integer("i", 0)});
    const std::uint64_t before =
        gAllocations.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        if (obs::traceEnabled())
            obs::emit("test", "event",
                      {obs::TraceField::integer("i", i),
                       obs::TraceField::str("k", "v")});
    }
    EXPECT_EQ(gAllocations.load(std::memory_order_relaxed), before);
}

// ---------------------------------------------------------------------
// JSONL sink
// ---------------------------------------------------------------------

TEST(JsonlSink, GoldenLines)
{
    std::ostringstream out;
    obs::JsonlTraceSink sink(out);
    const obs::TraceScope scope(&sink);

    obs::setTraceClock(1500);
    obs::emit("policy", "policy.transition",
              {obs::TraceField::str("from", "L1"),
               obs::TraceField::str("to", "L2"),
               obs::TraceField::integer("transitions", 3)});
    obs::emitSpan(1000, 2500, "sim", "sim.run",
                  {obs::TraceField::integer("events", 42)});
    obs::emit("detector", "detector.anomaly");

    EXPECT_EQ(out.str(),
              "{\"ts\":1500,\"component\":\"policy\","
              "\"name\":\"policy.transition\",\"args\":{\"from\":\"L1\","
              "\"to\":\"L2\",\"transitions\":3}}\n"
              "{\"ts\":1000,\"dur\":1500,\"component\":\"sim\","
              "\"name\":\"sim.run\",\"args\":{\"events\":42}}\n"
              "{\"ts\":1500,\"component\":\"detector\","
              "\"name\":\"detector.anomaly\"}\n");
}

TEST(JsonlSink, JobIndexAndFieldKinds)
{
    std::ostringstream out;
    obs::JsonlTraceSink sink(out);
    const obs::TraceScope scope(&sink, /*job=*/7);

    obs::emitAt(10, "udeb", "udeb.shave",
                {obs::TraceField::num("soc", 0.5),
                 obs::TraceField::boolean("engaged", true)});

    EXPECT_EQ(out.str(),
              "{\"ts\":10,\"job\":7,\"component\":\"udeb\","
              "\"name\":\"udeb.shave\",\"args\":{\"soc\":0.5,"
              "\"engaged\":true}}\n");
}

TEST(JsonlSink, EveryLineParses)
{
    std::ostringstream out;
    obs::JsonlTraceSink sink(out);
    const obs::TraceScope scope(&sink, 2);
    for (int i = 0; i < 10; ++i) {
        obs::setTraceClock(i * 100);
        obs::emit("comp", "ev",
                  {obs::TraceField::integer("i", i),
                   obs::TraceField::str("quote", "a\"b\\c\n")});
    }
    std::istringstream in(out.str());
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        const auto doc = parseJson(line);
        ASSERT_TRUE(doc.has_value()) << line;
        EXPECT_TRUE(doc->isObject());
        EXPECT_TRUE(doc->contains("ts"));
        EXPECT_TRUE(doc->contains("component"));
        EXPECT_TRUE(doc->contains("name"));
        EXPECT_EQ(doc->find("job")->number, 2.0);
        ++lines;
    }
    EXPECT_EQ(lines, 10);
}

// ---------------------------------------------------------------------
// Chrome-trace sink
// ---------------------------------------------------------------------

TEST(ChromeSink, ProducesValidChromeTraceJson)
{
    std::ostringstream out;
    {
        obs::ChromeTraceSink sink(out);
        const obs::TraceScope scope(&sink, /*job=*/0);
        obs::setTraceClock(250);
        obs::emit("detector", "detector.anomaly",
                  {obs::TraceField::num("avg_w", 120.5)});
        obs::emitSpan(100, 400, "datacenter", "attack.window",
                      {obs::TraceField::num("survival_sec", 0.3)});
        sink.finish();
    }

    const auto doc = parseJson(out.str());
    ASSERT_TRUE(doc.has_value());
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    // thread_name metadata for each distinct component + 2 events.
    ASSERT_EQ(events->array.size(), 4u);

    const JsonValue &meta = events->array[0];
    EXPECT_EQ(meta.find("ph")->str, "M");
    EXPECT_EQ(meta.find("name")->str, "thread_name");
    EXPECT_EQ(meta.find("args")->find("name")->str, "detector");

    const JsonValue &instant = events->array[1];
    EXPECT_EQ(instant.find("ph")->str, "i");
    EXPECT_EQ(instant.find("name")->str, "detector.anomaly");
    // Sim ms -> trace us.
    EXPECT_EQ(instant.find("ts")->number, 250000.0);
    EXPECT_EQ(instant.find("pid")->number, 1.0);
    EXPECT_EQ(instant.find("s")->str, "t");

    const JsonValue &span = events->array[3];
    EXPECT_EQ(span.find("ph")->str, "X");
    EXPECT_EQ(span.find("ts")->number, 100000.0);
    EXPECT_EQ(span.find("dur")->number, 300000.0);
    EXPECT_EQ(span.find("args")->find("survival_sec")->number, 0.3);
}

TEST(ChromeSink, PerJobProcessesAndStableThreadIds)
{
    std::ostringstream out;
    {
        obs::ChromeTraceSink sink(out);
        for (int job = 0; job < 2; ++job) {
            const obs::TraceScope scope(&sink, job);
            obs::emit("vdeb", "vdeb.assign");
            obs::emit("vdeb", "vdeb.assign");
        }
        sink.finish();
    }
    const auto doc = parseJson(out.str());
    ASSERT_TRUE(doc.has_value());
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    // 2 jobs x (1 metadata + 2 events).
    ASSERT_EQ(events->array.size(), 6u);
    // Same component in different jobs gets different pid and tid.
    int pids[2] = {0, 0};
    int n = 0;
    for (const JsonValue &e : events->array)
        if (e.find("ph")->str == "M")
            pids[n++] = static_cast<int>(e.find("pid")->number);
    ASSERT_EQ(n, 2);
    EXPECT_EQ(pids[0], 1);
    EXPECT_EQ(pids[1], 2);
}

TEST(FileSink, WritesAndCompletesChromeFile)
{
    const std::string path = "obs_test_trace.json";
    {
        auto sink = obs::FileTraceSink::open(
            path, obs::FileTraceSink::Format::Chrome);
        ASSERT_NE(sink, nullptr);
        const obs::TraceScope scope(sink.get());
        obs::emit("comp", "ev");
        sink->close();
    }
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    const auto doc = parseJson(buf.str());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("traceEvents")->array.size(), 2u);
    std::remove(path.c_str());
}

TEST(FileSink, FormatNames)
{
    EXPECT_EQ(obs::traceFormatFromName("jsonl"),
              obs::FileTraceSink::Format::Jsonl);
    EXPECT_EQ(obs::traceFormatFromName("chrome"),
              obs::FileTraceSink::Format::Chrome);
    EXPECT_FALSE(obs::traceFormatFromName("xml").has_value());
}

// ---------------------------------------------------------------------
// Histograms / timers / counters
// ---------------------------------------------------------------------

TEST(StatsHistogram, DeterministicBucketing)
{
    sim::StatsRegistry reg;
    auto h = reg.registerHistogram("soc", "state of charge",
                                   {0.0, 1.0, 4});
    h.record(-0.1); // underflow
    h.record(0.0);  // bucket 0
    h.record(0.24); // bucket 0
    h.record(0.25); // bucket 1
    h.record(0.5);  // bucket 2
    h.record(0.99); // bucket 3
    h.record(1.0);  // overflow (hi is exclusive)
    h.record(2.0);  // overflow

    EXPECT_EQ(h.count(), 8u);
    std::ostringstream dump;
    reg.dump(dump);
    EXPECT_NE(dump.str().find("count=8"), std::string::npos);
    EXPECT_NE(dump.str().find("under=1"), std::string::npos);
    EXPECT_NE(dump.str().find("over=2"), std::string::npos);
    EXPECT_NE(dump.str().find("[2 1 1 1]"), std::string::npos);
}

TEST(StatsHistogram, MergeAddsCounts)
{
    sim::StatsRegistry a, b;
    const sim::HistogramSpec spec{0.0, 10.0, 5};
    auto ha = a.registerHistogram("h", "d", spec);
    auto hb = b.registerHistogram("h", "d", spec);
    ha.record(1.0);
    ha.record(9.0);
    hb.record(1.0);
    hb.record(-5.0);
    a.mergeFrom(b);
    EXPECT_EQ(ha.count(), 4u);

    // A histogram present only in the source is created wholesale.
    sim::StatsRegistry c;
    c.mergeFrom(a);
    EXPECT_TRUE(c.contains("h"));
    std::ostringstream ja, jc;
    a.dumpJson(ja);
    c.dumpJson(jc);
    EXPECT_EQ(ja.str(), jc.str());
}

TEST(StatsTimer, AccumulatesAndMerges)
{
    sim::StatsRegistry a, b;
    auto ta = a.registerTimer("job.wall", "per-job wall time");
    auto tb = b.registerTimer("job.wall", "per-job wall time");
    ta.record(1.0);
    ta.record(3.0);
    tb.record(0.5);
    a.mergeFrom(b);
    EXPECT_EQ(ta.count(), 3u);
    EXPECT_DOUBLE_EQ(ta.totalSeconds(), 4.5);

    std::ostringstream dump;
    a.dump(dump);
    EXPECT_NE(dump.str().find("count=3"), std::string::npos);
    EXPECT_NE(dump.str().find("min_s=0.5"), std::string::npos);
    EXPECT_NE(dump.str().find("max_s=3"), std::string::npos);
}

TEST(StatsCounter, MergeAndLookup)
{
    sim::StatsRegistry a, b;
    a.registerCounter("events", "e").add(5);
    b.registerCounter("events", "e").add(7);
    b.registerCounter("only_b", "o").inc();
    a.mergeFrom(b);
    EXPECT_EQ(a.lookupCounter("events"), 12u);
    EXPECT_EQ(a.lookupCounter("only_b"), 1u);
    EXPECT_EQ(a.lookupCounter("missing"), 0u);
}

TEST(StatsRegistry, TextDumpUnchangedWithoutNewKinds)
{
    // The historical text dump must be byte-identical whether or not
    // the registry *class* knows about counters/histograms/timers, as
    // long as none are registered — new kinds may only append.
    sim::StatsRegistry reg;
    reg.registerScalar("b.scalar", "second").set(2.5);
    reg.registerScalar("a.scalar", "first").set(1.0);
    reg.setVector("v.vec", "values", {1.0, 2.0});
    std::ostringstream dump;
    reg.dump(dump);
    const std::string text = dump.str();
    // Banner-framed, sorted, one `name value # desc` line each, and
    // nothing after the vectors (no empty new-kind sections).
    EXPECT_EQ(text.find("---------- begin stats ----------"), 0u);
    EXPECT_LT(text.find("a.scalar"), text.find("b.scalar"));
    EXPECT_LT(text.find("b.scalar"), text.find("v.vec"));
    EXPECT_NE(text.find("# first"), std::string::npos);
    EXPECT_NE(text.find("[1 2]"), std::string::npos);
    const std::size_t end =
        text.find("---------- end stats ----------");
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(text.substr(end),
              "---------- end stats ----------\n");
}

TEST(StatsRegistry, DumpJsonRoundTrips)
{
    sim::StatsRegistry reg;
    reg.registerScalar("s", "scalar").set(1.25);
    reg.registerCounter("c", "counter").add(3);
    reg.registerHistogram("h", "hist", {0.0, 1.0, 2}).record(0.75);
    reg.registerTimer("t", "timer").record(0.125);
    reg.setVector("v", "vec", {1.0, 2.5});

    const auto doc = parseJson(reg.dumpJsonString());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("scalars")->find("s")->number, 1.25);
    EXPECT_EQ(doc->find("counters")->find("c")->number, 3.0);
    const JsonValue *h = doc->find("histograms")->find("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->find("count")->number, 1.0);
    ASSERT_NE(h->find("buckets"), nullptr);
    EXPECT_EQ(h->find("buckets")->array.size(), 2u);
    EXPECT_EQ(h->find("buckets")->array[1].number, 1.0);
    EXPECT_EQ(h->find("underflow")->number, 0.0);
    const JsonValue *t = doc->find("timers")->find("t");
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->find("total_seconds")->number, 0.125);
    EXPECT_EQ(doc->find("vectors")->find("v")->array[1].number, 2.5);
}

// ---------------------------------------------------------------------
// Manifests
// ---------------------------------------------------------------------

TEST(Manifest, RendersAllSections)
{
    obs::RunManifest m;
    m.tool = "padsim";
    m.experiment = "PAD";
    m.seed = 42;
    m.config = {{"scheme", "PAD"}, {"duration_sec", "60.0"}};
    m.argv = {"padsim", "--scheme", "PAD"};
    m.traceFile = "run.json";
    m.traceFormat = "chrome";
    m.statsJsonFile = "stats.json";
    m.statsJson = "{\"scalars\":{\"x\":1}}";
    m.wallSeconds = 1.5;

    std::ostringstream out;
    obs::writeManifest(out, m);
    const auto doc = parseJson(out.str());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("tool")->str, "padsim");
    EXPECT_EQ(doc->find("experiment")->str, "PAD");
    EXPECT_EQ(doc->find("seed")->number, 42.0);
    EXPECT_EQ(doc->find("version")->str, obs::versionString());
    EXPECT_EQ(doc->find("config")->find("scheme")->str, "PAD");
    EXPECT_EQ(doc->find("argv")->array.size(), 3u);
    const JsonValue *artifacts = doc->find("artifacts");
    ASSERT_NE(artifacts, nullptr);
    EXPECT_EQ(artifacts->find("trace")->str, "run.json");
    EXPECT_EQ(artifacts->find("trace_format")->str, "chrome");
    EXPECT_EQ(artifacts->find("stats_json")->str, "stats.json");
    EXPECT_EQ(doc->find("stats")->find("scalars")->find("x")->number,
              1.0);
    EXPECT_EQ(doc->find("wall_seconds")->number, 1.5);
}

TEST(Manifest, OmitsEmptySections)
{
    obs::RunManifest m;
    m.tool = "bench";
    std::ostringstream out;
    obs::writeManifest(out, m);
    const auto doc = parseJson(out.str());
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE(doc->contains("experiment"));
    EXPECT_FALSE(doc->contains("argv"));
    EXPECT_FALSE(doc->contains("stats"));
    EXPECT_FALSE(doc->contains("wall_seconds"));
    EXPECT_FALSE(doc->find("artifacts")->contains("trace"));
}

TEST(Manifest, VersionStringNonEmpty)
{
    EXPECT_FALSE(obs::versionString().empty());
}

// ---------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------

TEST(JsonParser, ParsesScalarsAndEscapes)
{
    auto doc = parseJson(
        "{\"a\":-1.5e2,\"b\":true,\"c\":null,\"d\":\"x\\n\\\"\\u0041\"}");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("a")->number, -150.0);
    EXPECT_TRUE(doc->find("b")->boolean);
    EXPECT_TRUE(doc->find("c")->isNull());
    EXPECT_EQ(doc->find("d")->str, "x\n\"A");
}

TEST(JsonParser, RejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(parseJson("{", &error).has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseJson("{\"a\":1,}").has_value());
    EXPECT_FALSE(parseJson("01").has_value());
    EXPECT_FALSE(parseJson("{} trailing").has_value());
    EXPECT_FALSE(parseJson("\"unterminated").has_value());
    EXPECT_FALSE(parseJson("").has_value());
}

TEST(JsonParser, RejectsExcessiveNesting)
{
    std::string deep;
    for (int i = 0; i < 500; ++i)
        deep += "[";
    EXPECT_FALSE(parseJson(deep).has_value());
}

// ---------------------------------------------------------------------
// Sink thread safety
// ---------------------------------------------------------------------

TEST(Sinks, ConcurrentWritersProduceValidChromeJson)
{
    std::ostringstream out;
    {
        obs::ChromeTraceSink sink(out);
        std::vector<std::thread> workers;
        for (int w = 0; w < 4; ++w) {
            workers.emplace_back([&sink, w] {
                const obs::TraceScope scope(&sink, w);
                for (int i = 0; i < 50; ++i) {
                    obs::setTraceClock(i);
                    obs::emit("worker", "tick",
                              {obs::TraceField::integer("i", i)});
                }
            });
        }
        for (auto &t : workers)
            t.join();
        sink.finish();
    }
    const auto doc = parseJson(out.str());
    ASSERT_TRUE(doc.has_value());
    // 4 metadata + 200 events, interleaving nondeterministic.
    EXPECT_EQ(doc->find("traceEvents")->array.size(), 204u);
}

} // namespace
