/**
 * @file
 * Property-based sweeps over the simulator's invariants, using
 * parameterized gtest over seeds and operating points:
 *
 *  - Algorithm 1: assignment conservation, cap respect, permutation
 *    equivariance, monotonicity in SOC across random inputs;
 *  - server power model: monotone in utilization and frequency;
 *  - breaker: analytic trip time agrees with the stepped simulation;
 *  - security policy: random input streams keep the automaton in
 *    valid states with adjacent-level moves only;
 *  - data center: per-step power accounting (draw + shaved = demand)
 *    and budget-headroom charge exclusivity.
 */

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "core/security_policy.h"
#include "core/vdeb.h"
#include "power/circuit_breaker.h"
#include "power/server_power_model.h"
#include "util/random.h"

namespace pad {
namespace {

// --------------------------------------------------------------------
// Algorithm 1 under random inputs
// --------------------------------------------------------------------

class VdebProperty : public ::testing::TestWithParam<std::uint64_t>
{};

std::vector<Joules>
randomSoc(Rng &rng, std::size_t n)
{
    std::vector<Joules> soc(n);
    for (auto &s : soc)
        s = rng.uniform(0.0, 500000.0);
    return soc;
}

TEST_P(VdebProperty, ConservationAndCaps)
{
    Rng rng(GetParam());
    core::VdebConfig cfg;
    cfg.idealDischargePower = rng.uniform(100.0, 2000.0);
    core::VdebController ctl(cfg);

    const auto n = static_cast<std::size_t>(rng.uniformInt(2, 40));
    const auto soc = randomSoc(rng, n);
    const double budget = rng.uniform(50000.0, 120000.0);
    const double total = budget + rng.uniform(-5000.0, 30000.0);

    const auto plan = ctl.assign(soc, total, budget);
    const double sum = std::accumulate(plan.power.begin(),
                                       plan.power.end(), 0.0);
    const double want = std::max(0.0, total - budget);
    EXPECT_NEAR(sum, want, 1e-6 * std::max(want, 1.0));
    for (double p : plan.power) {
        EXPECT_GE(p, -1e-9);
        if (!plan.even)
            EXPECT_LE(p, cfg.idealDischargePower + 1e-9);
    }
}

TEST_P(VdebProperty, PermutationEquivariance)
{
    Rng rng(GetParam() ^ 0xabcd);
    core::VdebController ctl(core::VdebConfig{600.0});
    const auto soc = randomSoc(rng, 12);
    const double budget = 80000.0;
    const double total = budget + rng.uniform(500.0, 8000.0);
    const auto plan = ctl.assign(soc, total, budget);

    // Reverse the input; the assignment must follow the units.
    std::vector<Joules> reversed(soc.rbegin(), soc.rend());
    const auto planRev = ctl.assign(reversed, total, budget);
    for (std::size_t i = 0; i < soc.size(); ++i)
        EXPECT_NEAR(plan.power[i],
                    planRev.power[soc.size() - 1 - i], 1e-6);
}

TEST_P(VdebProperty, MonotoneInSoc)
{
    Rng rng(GetParam() ^ 0x1234);
    core::VdebController ctl(core::VdebConfig{800.0});
    auto soc = randomSoc(rng, 10);
    std::sort(soc.begin(), soc.end(), std::greater<>());
    const auto plan = ctl.assign(soc, 86000.0, 80000.0);
    for (std::size_t i = 0; i + 1 < soc.size(); ++i)
        EXPECT_GE(plan.power[i], plan.power[i + 1] - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VdebProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// --------------------------------------------------------------------
// Server power model monotonicity
// --------------------------------------------------------------------

class PowerModelProperty : public ::testing::TestWithParam<double>
{};

TEST_P(PowerModelProperty, MonotoneInUtilAtFixedDvfs)
{
    const double dvfs = GetParam();
    power::ServerPowerModel m(power::ServerPowerConfig{});
    double prev = -1.0;
    for (double u = 0.0; u <= 1.0; u += 0.02) {
        const double p = m.power(u, dvfs);
        EXPECT_GE(p, prev);
        EXPECT_LE(m.executed(u, dvfs), u + 1e-12);
        prev = p;
    }
}

TEST_P(PowerModelProperty, MonotoneInDvfsAtFixedUtil)
{
    const double util = GetParam();
    power::ServerPowerModel m(power::ServerPowerConfig{});
    double prevPower = -1.0;
    double prevExec = -1.0;
    for (double f = 0.2; f <= 1.0; f += 0.05) {
        EXPECT_GE(m.power(util, f), prevPower);
        EXPECT_GE(m.executed(util, f), prevExec);
        prevPower = m.power(util, f);
        prevExec = m.executed(util, f);
    }
}

INSTANTIATE_TEST_SUITE_P(Points, PowerModelProperty,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 1.0));

// --------------------------------------------------------------------
// Breaker: analytic vs stepped trip time
// --------------------------------------------------------------------

class BreakerProperty : public ::testing::TestWithParam<double>
{};

TEST_P(BreakerProperty, AnalyticTripTimeMatchesSimulation)
{
    const double ratio = GetParam();
    power::CircuitBreakerConfig cfg;
    cfg.ratedPower = 1000.0;
    power::CircuitBreaker cb("p.cb", cfg);
    const double predicted = cb.timeToTrip(ratio * 1000.0);
    double elapsed = 0.0;
    while (!cb.tripped() && elapsed < predicted * 2.0 + 10.0) {
        cb.observe(ratio * 1000.0, 0.01);
        elapsed += 0.01;
    }
    ASSERT_TRUE(cb.tripped());
    EXPECT_NEAR(elapsed, predicted, 0.05 + predicted * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Overloads, BreakerProperty,
                         ::testing::Values(1.10, 1.25, 1.5, 2.0, 3.0,
                                           4.5));

// --------------------------------------------------------------------
// Security policy fuzzing
// --------------------------------------------------------------------

class PolicyProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(PolicyProperty, RandomInputsKeepAutomatonSane)
{
    Rng rng(GetParam());
    core::SecurityPolicy policy(rng.chance(0.5));
    int prev = -1;
    for (int step = 0; step < 5000; ++step) {
        const core::PolicyInputs in{rng.chance(0.8), rng.chance(0.7),
                                    rng.chance(0.3)};
        const auto level = policy.update(in);
        const int lv = static_cast<int>(level);
        EXPECT_GE(lv, 1);
        EXPECT_LE(lv, 3);
        if (prev >= 0)
            EXPECT_LE(std::abs(lv - prev), 1)
                << "levels must move one step at a time";
        // Both backups live and no VP must never keep us in L3.
        prev = lv;
    }
}

TEST_P(PolicyProperty, HealthyInputsConvergeToNormal)
{
    Rng rng(GetParam() ^ 0x77);
    core::SecurityPolicy policy(true);
    // Start from the worst state.
    policy.reset(core::PolicyInputs{false, false, true});
    const core::PolicyInputs healthy{true, true, false};
    policy.update(healthy);
    policy.update(healthy);
    EXPECT_EQ(policy.update(healthy), core::SecurityLevel::Normal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

} // namespace
} // namespace pad
