/**
 * @file
 * Tests for the online alerting subsystem (src/alert): rule parsing,
 * the alert-instance lifecycle of every predicate kind, flight-
 * recorder context capture, incident JSONL round-trips, the HTML
 * dashboard, Prometheus alert-state exposition, and the determinism
 * contract — parallel sweep incidents bit-identical to serial, plus
 * a golden incident sequence for the 22-rack two-phase attack under
 * the shipped default rules.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "alert/engine.h"
#include "alert/flight_recorder.h"
#include "alert/html.h"
#include "alert/incident.h"
#include "alert/rule.h"
#include "runner/experiment.h"
#include "runner/sweep_runner.h"
#include "telemetry/prom.h"
#include "util/types.h"

namespace pad {
namespace {

using alert::AlertEngine;
using alert::AlertRule;
using alert::CompareOp;
using alert::Incident;
using alert::PredicateKind;
using alert::RuleSet;
using alert::Severity;

// ---------------------------------------------------------------------
// Rule parsing
// ---------------------------------------------------------------------

TEST(AlertRules, ParsesEveryPredicateKind)
{
    const char *doc = R"({"rules": [
      {"name": "peak", "severity": "critical",
       "predicate": "threshold", "signal": "detector.score",
       "op": ">", "value": 1.0, "for_sec": 30,
       "description": "sustained visible peak"},
      {"name": "collapse", "predicate": "rate_of_change",
       "signal": "rack*.soc", "op": "<", "value": -0.001,
       "window_sec": 60, "for_sec": 10},
      {"name": "stall", "severity": "info", "predicate": "absence",
       "signal": "pdu.power", "window_sec": 900},
      {"name": "burst", "predicate": "event_count",
       "signal": "udeb.shave", "op": ">=", "value": 5,
       "window_sec": 10}
    ]})";

    std::string error;
    const auto rules = alert::parseRules(doc, &error);
    ASSERT_TRUE(rules.has_value()) << error;
    ASSERT_EQ(rules->size(), 4u);

    EXPECT_EQ(rules->rules[0].name, "peak");
    EXPECT_EQ(rules->rules[0].severity, Severity::Critical);
    EXPECT_EQ(rules->rules[0].predicate, PredicateKind::Threshold);
    EXPECT_EQ(rules->rules[0].op, CompareOp::Gt);
    EXPECT_EQ(rules->rules[0].value, 1.0);
    EXPECT_EQ(rules->rules[0].forSec, 30.0);
    EXPECT_EQ(rules->rules[0].description, "sustained visible peak");

    EXPECT_EQ(rules->rules[1].severity, Severity::Warning); // default
    EXPECT_EQ(rules->rules[1].predicate,
              PredicateKind::RateOfChange);
    EXPECT_EQ(rules->rules[1].windowSec, 60.0);

    EXPECT_EQ(rules->rules[2].severity, Severity::Info);
    EXPECT_EQ(rules->rules[2].predicate, PredicateKind::Absence);

    EXPECT_EQ(rules->rules[3].predicate, PredicateKind::EventCount);
    EXPECT_EQ(rules->rules[3].op, CompareOp::Ge);
}

TEST(AlertRules, RejectsMalformedDocuments)
{
    const char *bad[] = {
        // not JSON at all
        "rules: peak",
        // missing name
        R"({"rules": [{"predicate": "threshold",
            "signal": "a", "value": 1}]})",
        // missing signal
        R"({"rules": [{"name": "x", "value": 1}]})",
        // threshold without value
        R"({"rules": [{"name": "x", "signal": "a"}]})",
        // duplicate rule names
        R"({"rules": [
            {"name": "x", "signal": "a", "value": 1},
            {"name": "x", "signal": "b", "value": 2}]})",
        // unknown key
        R"({"rules": [{"name": "x", "signal": "a", "value": 1,
            "for": 3}]})",
        // unknown severity
        R"({"rules": [{"name": "x", "signal": "a", "value": 1,
            "severity": "fatal"}]})",
        // unknown operator
        R"({"rules": [{"name": "x", "signal": "a", "value": 1,
            "op": "=="}]})",
        // absence without a window
        R"({"rules": [{"name": "x", "signal": "a",
            "predicate": "absence"}]})",
        // non-positive window
        R"({"rules": [{"name": "x", "signal": "a",
            "predicate": "absence", "window_sec": 0}]})",
        // negative hold
        R"({"rules": [{"name": "x", "signal": "a", "value": 1,
            "for_sec": -1}]})",
    };
    for (const char *doc : bad) {
        std::string error;
        EXPECT_FALSE(alert::parseRules(doc, &error).has_value())
            << doc;
        EXPECT_FALSE(error.empty()) << doc;
    }
}

TEST(AlertRules, SignalPatternMatching)
{
    EXPECT_TRUE(alert::signalMatches("pdu.power", "pdu.power"));
    EXPECT_TRUE(alert::signalMatches("rack*.soc", "rack19.soc"));
    EXPECT_TRUE(alert::signalMatches("*.soc", "rack3.soc"));
    EXPECT_TRUE(alert::signalMatches("*", "policy"));

    EXPECT_FALSE(alert::signalMatches("rack*.soc", "rack3.power"));
    EXPECT_FALSE(alert::signalMatches("rack*.soc", "pdu.power"));
    // Component counts must agree: no implicit deep matching.
    EXPECT_FALSE(alert::signalMatches("rack*", "rack3.soc"));
    EXPECT_FALSE(alert::signalMatches("rack*.soc.x", "rack3.soc"));
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

TEST(FlightRecorder, KeepsTheNewestSamplesPerSignal)
{
    alert::FlightRecorder rec(4);
    for (int i = 0; i < 10; ++i)
        rec.record("a", secondsToTicks(i), double(i));
    rec.record("b", secondsToTicks(3), 33.0);

    const auto w = rec.window("a", 0, secondsToTicks(100));
    ASSERT_EQ(w.size(), 4u); // ring evicted the oldest six
    EXPECT_EQ(w.front().when, secondsToTicks(6));
    EXPECT_EQ(w.back().when, secondsToTicks(9));
    EXPECT_TRUE(std::is_sorted(
        w.begin(), w.end(),
        [](const alert::FlightSample &x, const alert::FlightSample &y)
        { return x.when < y.when; }));

    // Window bounds are inclusive.
    const auto mid =
        rec.window("a", secondsToTicks(7), secondsToTicks(8));
    ASSERT_EQ(mid.size(), 2u);
    EXPECT_EQ(mid[0].value, 7.0);
    EXPECT_EQ(mid[1].value, 8.0);

    EXPECT_TRUE(rec.window("unknown", 0, 100).empty());
    EXPECT_EQ(rec.lastSeen("a"), secondsToTicks(9));
    EXPECT_EQ(rec.lastSeen("unknown"), kTickNever);
    EXPECT_EQ(rec.signals(),
              (std::vector<std::string>{"a", "b"}));
}

// ---------------------------------------------------------------------
// Engine lifecycle, one predicate at a time
// ---------------------------------------------------------------------

RuleSet
oneRule(AlertRule rule)
{
    RuleSet rs;
    rs.rules.push_back(std::move(rule));
    return rs;
}

TEST(AlertEngine, ThresholdWithHoldWalksTheFullLifecycle)
{
    AlertRule rule;
    rule.name = "hot";
    rule.signal = "pdu.power";
    rule.op = CompareOp::Gt;
    rule.value = 100.0;
    rule.forSec = 10.0;
    AlertEngine engine(oneRule(rule));

    // Breach at t=0 that lapses before the hold elapses: no alert.
    engine.onSample("pdu.power", secondsToTicks(0), 150.0);
    engine.onSample("pdu.power", secondsToTicks(5), 90.0);
    // Second breach held past the 10 s hold, resolved at t=40.
    engine.onSample("pdu.power", secondsToTicks(20), 120.0);
    engine.onSample("pdu.power", secondsToTicks(30), 130.0);
    engine.onSample("pdu.power", secondsToTicks(40), 80.0);
    engine.finalize(secondsToTicks(60));

    ASSERT_EQ(engine.incidents().size(), 1u);
    const Incident &inc = engine.incidents()[0];
    EXPECT_EQ(inc.rule, "hot");
    EXPECT_EQ(inc.signal, "pdu.power");
    EXPECT_EQ(inc.pendingSince, secondsToTicks(20));
    EXPECT_EQ(inc.firingSince, secondsToTicks(30));
    EXPECT_EQ(inc.resolvedAt, secondsToTicks(40));
    EXPECT_EQ(inc.triggerValue, 130.0);
    EXPECT_EQ(inc.threshold, 100.0);
    EXPECT_EQ(inc.id(), "hot:pdu.power@" +
                            std::to_string(secondsToTicks(30)));
    // The flight recorder supplied full-resolution context.
    ASSERT_FALSE(inc.context.empty());
    EXPECT_EQ(inc.context[0].signal, "pdu.power");
    EXPECT_FALSE(inc.context[0].samples.empty());
}

TEST(AlertEngine, ZeroHoldFiresImmediatelyAndStaysOpenAtEnd)
{
    AlertRule rule;
    rule.name = "l3";
    rule.signal = "policy.level";
    rule.op = CompareOp::Ge;
    rule.value = 3.0;
    AlertEngine engine(oneRule(rule));

    engine.onSample("policy.level", secondsToTicks(1), 1.0);
    engine.onSample("policy.level", secondsToTicks(2), 3.0);
    engine.finalize(secondsToTicks(10));

    ASSERT_EQ(engine.incidents().size(), 1u);
    EXPECT_EQ(engine.incidents()[0].firingSince, secondsToTicks(2));
    EXPECT_EQ(engine.incidents()[0].resolvedAt, kTickNever);
}

TEST(AlertEngine, RateOfChangeFiresOnSustainedDecline)
{
    AlertRule rule;
    rule.name = "collapse";
    rule.predicate = PredicateKind::RateOfChange;
    rule.signal = "rack*.soc";
    rule.op = CompareOp::Lt;
    rule.value = -0.005; // SOC per second
    rule.windowSec = 20.0;
    AlertEngine engine(oneRule(rule));

    // Flat: ~0/s, never fires. Then a 0.01/s decline.
    double soc = 1.0;
    for (int t = 0; t <= 20; t += 5)
        engine.onSample("rack7.soc", secondsToTicks(t), soc);
    for (int t = 25; t <= 60; t += 5) {
        soc -= 0.05;
        engine.onSample("rack7.soc", secondsToTicks(t), soc);
    }
    engine.finalize(secondsToTicks(120));

    ASSERT_EQ(engine.incidents().size(), 1u);
    EXPECT_EQ(engine.incidents()[0].rule, "collapse");
    EXPECT_EQ(engine.incidents()[0].signal, "rack7.soc");
    EXPECT_LT(engine.incidents()[0].triggerValue, -0.005);
}

TEST(AlertEngine, AbsenceFiresAfterSilenceAndResolvesOnReturn)
{
    AlertRule rule;
    rule.name = "stall";
    rule.predicate = PredicateKind::Absence;
    rule.signal = "pdu.power";
    rule.windowSec = 30.0;
    AlertEngine engine(oneRule(rule));

    engine.onSample("pdu.power", secondsToTicks(0), 1.0);
    engine.onSample("pdu.power", secondsToTicks(10), 1.0);
    // Silence; the clock advances via an unrelated signal.
    for (int t = 20; t <= 120; t += 10)
        engine.onSample("other.signal", secondsToTicks(t), 0.0);
    // The signal comes back, resolving the alert. Finalize before
    // another 30 s of silence accumulates a second incident.
    engine.onSample("pdu.power", secondsToTicks(130), 1.0);
    engine.finalize(secondsToTicks(150));

    ASSERT_EQ(engine.incidents().size(), 1u);
    const Incident &inc = engine.incidents()[0];
    EXPECT_EQ(inc.rule, "stall");
    // Fires on the first evaluation after 10 s + 30 s of silence.
    EXPECT_EQ(inc.firingSince, secondsToTicks(50));
    EXPECT_EQ(inc.resolvedAt, secondsToTicks(130));
}

TEST(AlertEngine, EventCountFiresOnBurst)
{
    AlertRule rule;
    rule.name = "burst";
    rule.predicate = PredicateKind::EventCount;
    rule.signal = "udeb.shave";
    rule.op = CompareOp::Ge;
    rule.value = 3.0;
    rule.windowSec = 10.0;
    AlertEngine engine(oneRule(rule));

    // Two events 30 s apart never coexist in the 10 s window.
    engine.observeEvent("udeb.shave", secondsToTicks(0));
    engine.observeEvent("udeb.shave", secondsToTicks(30));
    engine.advanceTo(secondsToTicks(50));
    // Three in 4 s do.
    engine.observeEvent("udeb.shave", secondsToTicks(60));
    engine.observeEvent("udeb.shave", secondsToTicks(62));
    engine.observeEvent("udeb.shave", secondsToTicks(64));
    engine.finalize(secondsToTicks(120));

    ASSERT_EQ(engine.incidents().size(), 1u);
    EXPECT_EQ(engine.incidents()[0].rule, "burst");
    EXPECT_EQ(engine.incidents()[0].firingSince, secondsToTicks(64));
    EXPECT_EQ(engine.incidents()[0].triggerValue, 3.0);
    // The window drained afterwards, resolving the incident.
    EXPECT_NE(engine.incidents()[0].resolvedAt, kTickNever);
}

TEST(AlertEngine, WildcardRulesTrackIndependentInstances)
{
    AlertRule rule;
    rule.name = "low";
    rule.signal = "rack*.soc";
    rule.op = CompareOp::Lt;
    rule.value = 0.5;
    AlertEngine engine(oneRule(rule));

    engine.onSample("rack0.soc", secondsToTicks(1), 0.4); // fires
    engine.onSample("rack1.soc", secondsToTicks(2), 0.9); // does not
    engine.onSample("rack2.soc", secondsToTicks(3), 0.3); // fires
    engine.finalize(secondsToTicks(10));

    ASSERT_EQ(engine.incidents().size(), 2u);
    EXPECT_EQ(engine.incidents()[0].signal, "rack0.soc");
    EXPECT_EQ(engine.incidents()[1].signal, "rack2.soc");

    const auto states = engine.ruleStates();
    ASSERT_EQ(states.size(), 1u);
    EXPECT_EQ(states[0].rule, "low");
    EXPECT_EQ(states[0].state, 2); // worst instance is still firing
    EXPECT_EQ(states[0].fired, 2u);
}

// ---------------------------------------------------------------------
// Incident JSONL round-trip
// ---------------------------------------------------------------------

std::vector<Incident>
sampleIncidents()
{
    Incident a;
    a.rule = "hot";
    a.signal = "pdu.power";
    a.severity = Severity::Critical;
    a.predicate = PredicateKind::Threshold;
    a.description = "pdu power \"high\"\nsecond line";
    a.pendingSince = secondsToTicks(20);
    a.firingSince = secondsToTicks(30);
    a.resolvedAt = secondsToTicks(40);
    a.triggerValue = 130.5;
    a.threshold = 100.0;
    a.contextFrom = secondsToTicks(25);
    a.contextUntil = secondsToTicks(35);
    a.context.push_back(
        {"pdu.power",
         {{secondsToTicks(25), 110.0}, {secondsToTicks(30), 130.5}}});

    Incident b;
    b.rule = "stall";
    b.signal = "pdu.power";
    b.severity = Severity::Info;
    b.predicate = PredicateKind::Absence;
    b.job = 3;
    b.firingSince = secondsToTicks(90);
    // resolvedAt stays kTickNever: open at end of run.
    return {a, b};
}

TEST(Incidents, JsonlRoundTripPreservesEveryField)
{
    const auto incidents = sampleIncidents();
    const std::string text = alert::renderIncidentsJsonl(incidents);

    std::string error;
    const auto back = alert::readIncidentsJsonl(text, &error);
    ASSERT_TRUE(back.has_value()) << error;
    ASSERT_EQ(back->size(), incidents.size());
    for (std::size_t i = 0; i < incidents.size(); ++i) {
        const Incident &x = incidents[i];
        const Incident &y = (*back)[i];
        EXPECT_EQ(x.id(), y.id());
        EXPECT_EQ(x.rule, y.rule);
        EXPECT_EQ(x.signal, y.signal);
        EXPECT_EQ(x.severity, y.severity);
        EXPECT_EQ(x.predicate, y.predicate);
        EXPECT_EQ(x.description, y.description);
        EXPECT_EQ(x.job, y.job);
        EXPECT_EQ(x.pendingSince, y.pendingSince);
        EXPECT_EQ(x.firingSince, y.firingSince);
        EXPECT_EQ(x.resolvedAt, y.resolvedAt);
        EXPECT_EQ(x.triggerValue, y.triggerValue);
        EXPECT_EQ(x.threshold, y.threshold);
        EXPECT_EQ(x.contextFrom, y.contextFrom);
        EXPECT_EQ(x.contextUntil, y.contextUntil);
        ASSERT_EQ(x.context.size(), y.context.size());
        for (std::size_t s = 0; s < x.context.size(); ++s) {
            EXPECT_EQ(x.context[s].signal, y.context[s].signal);
            ASSERT_EQ(x.context[s].samples.size(),
                      y.context[s].samples.size());
            for (std::size_t k = 0; k < x.context[s].samples.size();
                 ++k) {
                EXPECT_EQ(x.context[s].samples[k].when,
                          y.context[s].samples[k].when);
                EXPECT_EQ(x.context[s].samples[k].value,
                          y.context[s].samples[k].value);
            }
        }
    }

    // Job-stamped IDs carry the sweep prefix.
    EXPECT_EQ(incidents[1].id(),
              "job3.stall:pdu.power@" +
                  std::to_string(secondsToTicks(90)));
}

TEST(Incidents, ReaderReportsTheOffendingLine)
{
    const std::string text =
        alert::renderIncidentsJsonl({sampleIncidents()[0]}) +
        "{\"rule\": \"x\"\n";
    std::string error;
    EXPECT_FALSE(alert::readIncidentsJsonl(text, &error).has_value());
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

// ---------------------------------------------------------------------
// HTML dashboard
// ---------------------------------------------------------------------

TEST(IncidentDashboard, IsSelfContainedWellFormedHtml)
{
    const std::string html =
        alert::renderIncidentDashboard(sampleIncidents());

    EXPECT_EQ(html.rfind("<!doctype html>", 0), 0u);
    EXPECT_NE(html.find("</html>"), std::string::npos);
    EXPECT_NE(html.find("<svg"), std::string::npos);
    // Zero external references: no scripts, links or remote assets.
    EXPECT_EQ(html.find("<script"), std::string::npos);
    EXPECT_EQ(html.find("<link"), std::string::npos);
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);
    EXPECT_EQ(html.find("src="), std::string::npos);
    // The hostile description was escaped, not emitted raw.
    EXPECT_EQ(html.find("pdu power \"high\""), std::string::npos);

    // Deterministic rendering.
    EXPECT_EQ(html, alert::renderIncidentDashboard(sampleIncidents()));

    // The empty dashboard is still a complete document.
    const std::string empty = alert::renderIncidentDashboard({});
    EXPECT_EQ(empty.rfind("<!doctype html>", 0), 0u);
    EXPECT_NE(empty.find("</html>"), std::string::npos);
}

TEST(IncidentDashboard, EscapesHtmlMetacharacters)
{
    EXPECT_EQ(alert::htmlEscape("a<b>&\"c\""),
              "a&lt;b&gt;&amp;&quot;c&quot;");
}

// ---------------------------------------------------------------------
// Prometheus exposition of alert states
// ---------------------------------------------------------------------

TEST(AlertProm, RuleStatesRenderAsValidExposition)
{
    std::vector<telemetry::AlertStateSample> states;
    states.push_back({"hot", "critical", 2, 3});
    states.push_back({"weird\"rule\\with\nnewline", "info", 0, 0});

    const std::string text =
        telemetry::PromWriter().render(nullptr, nullptr, &states);
    std::string error;
    EXPECT_TRUE(telemetry::validatePromExposition(text, &error))
        << error << "\n" << text;
    EXPECT_NE(
        text.find(
            "pad_alert_state{rule=\"hot\",severity=\"critical\"} 2"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("pad_alert_fired_total{rule=\"hot\"} 3"),
              std::string::npos);
    // Hostile label values are escaped, keeping the line parseable.
    EXPECT_NE(
        text.find("rule=\"weird\\\"rule\\\\with\\nnewline\""),
        std::string::npos)
        << text;
}

// ---------------------------------------------------------------------
// End-to-end determinism through the runner
// ---------------------------------------------------------------------

std::shared_ptr<const RuleSet>
defaultRules()
{
    std::string error;
    auto rules = alert::loadRulesFile(
        std::string(PAD_RULES_DIR) + "/pad_default.json", &error);
    EXPECT_TRUE(rules.has_value()) << error;
    return std::make_shared<const RuleSet>(std::move(*rules));
}

TEST(AlertRunner, AlertingNeverPerturbsExperimentResults)
{
    const auto cw = runner::makeClusterWorkload(1.0);
    runner::ClusterAttackSpec spec;
    spec.durationSec = 120.0;
    auto plain = runner::Experiment::clusterAttack(spec, cw);
    plain.seed = 42;

    auto alerted = plain;
    alerted.alertRules = defaultRules();

    const auto a = runner::runExperiment(plain);
    const auto b = runner::runExperiment(alerted);

    EXPECT_EQ(a.attack().survivalSec, b.attack().survivalSec);
    EXPECT_EQ(a.attack().throughput, b.attack().throughput);
    EXPECT_EQ(a.attack().spikesLaunched, b.attack().spikesLaunched);
    EXPECT_EQ(a.stats->dumpJsonString(), b.stats->dumpJsonString());

    // Alerts travel with the result only when requested; the hub
    // stays internal unless telemetry was asked for explicitly.
    EXPECT_EQ(a.alerts, nullptr);
    ASSERT_NE(b.alerts, nullptr);
    EXPECT_TRUE(b.alerts->finalized());
    EXPECT_EQ(b.hub, nullptr);
}

TEST(AlertRunner, ParallelIncidentsAreBitIdenticalToSerial)
{
    const auto cw = runner::makeClusterWorkload(1.0);
    const auto rules = defaultRules();

    std::vector<runner::Experiment> grid;
    for (core::SchemeKind scheme :
         {core::SchemeKind::Conv, core::SchemeKind::Pad,
          core::SchemeKind::VdebOnly}) {
        runner::ClusterAttackSpec spec;
        spec.scheme = scheme;
        spec.durationSec = 120.0;
        auto e = runner::Experiment::clusterAttack(spec, cw);
        e.alertRules = rules;
        grid.push_back(std::move(e));
    }
    runner::SweepRunner::assignSeeds(grid, 7);

    const auto serial =
        runner::SweepRunner({.jobs = 1}).runWithReport(grid);
    const auto parallel =
        runner::SweepRunner({.jobs = 4}).runWithReport(grid);

    // The merged incident stream — job stamps included — is byte-
    // identical for any worker count.
    EXPECT_EQ(alert::renderIncidentsJsonl(serial.incidents),
              alert::renderIncidentsJsonl(parallel.incidents));

    // So is the rule-state exposition block.
    EXPECT_EQ(telemetry::PromWriter().render(nullptr, nullptr,
                                             &serial.alertStates),
              telemetry::PromWriter().render(nullptr, nullptr,
                                             &parallel.alertStates));
}

TEST(AlertRunner, GoldenIncidentSequenceFor22RackAttack)
{
    // Pins the default-rules incident sequence for the paper's
    // 22-rack two-phase attack scenario. A change here means alert
    // semantics (or the simulation itself) changed — update the
    // golden list only after confirming that was intended.
    const auto cw = runner::makeClusterWorkload(1.0);
    runner::ClusterAttackSpec spec;
    spec.victimRacks = 22;
    spec.durationSec = 300.0;
    auto e = runner::Experiment::clusterAttack(spec, cw);
    e.seed = 42;
    e.alertRules = defaultRules();

    const auto result = runner::runExperiment(e);
    ASSERT_NE(result.alerts, nullptr);
    const auto &incidents = result.alerts->incidents();

    std::vector<std::string> sequence;
    sequence.reserve(incidents.size());
    for (const Incident &inc : incidents)
        sequence.push_back(inc.rule + ":" + inc.signal + "@" +
                           std::to_string(inc.firingSince));

    const std::vector<std::string> golden = {
        "sustained-visible-peak:detector.score@34200000",
        "sustained-visible-peak:detector.score@40800000",
        "sustained-visible-peak:detector.score@42000000",
        "sustained-visible-peak:detector.score@43500000",
        "sustained-visible-peak:detector.score@45600000",
        "sustained-visible-peak:detector.score@50400000",
        "sustained-visible-peak:detector.score@51600000",
        "sustained-visible-peak:detector.score@54000000",
        "sustained-visible-peak:detector.score@57000000",
        "sustained-visible-peak:detector.score@62700000",
    };
    EXPECT_EQ(sequence, golden);
}

} // namespace
} // namespace pad
