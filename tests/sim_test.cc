/**
 * @file
 * Unit tests for the discrete-event engine: ordering, cancellation,
 * periodic scheduling, and the time-series recorder.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/time_series.h"

namespace pad::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(30, [&] { fired.push_back(3); });
    q.schedule(10, [&] { fired.push_back(1); });
    q.schedule(20, [&] { fired.push_back(2); });
    q.runUntil(100);
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(5, [&] { fired.push_back(2); }, EventPriority::Observe);
    q.schedule(5, [&] { fired.push_back(0); }, EventPriority::Physical);
    q.schedule(5, [&] { fired.push_back(1); }, EventPriority::Physical);
    q.runUntil(5);
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    int count = 0;
    auto h = q.schedule(10, [&] { ++count; });
    q.schedule(20, [&] { ++count; });
    q.cancel(h);
    q.runUntil(100);
    EXPECT_EQ(count, 1);
    // Double-cancel and stale cancel are harmless.
    q.cancel(h);
    q.cancel(EventHandle{});
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    std::vector<Tick> fired;
    q.schedule(10, [&] {
        fired.push_back(q.now());
        q.schedule(15, [&] { fired.push_back(q.now()); });
    });
    q.runUntil(20);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 15}));
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&] { ++count; });
    q.schedule(11, [&] { ++count; });
    EXPECT_EQ(q.runUntil(10), 1u);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.nextEventTick(), 11);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue q;
    EXPECT_FALSE(q.step());
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextEventTick(), kTickNever);
}

TEST(Simulator, PeriodicActivityRepeats)
{
    Simulator sim;
    int ticks = 0;
    sim.every(10, [&] { ++ticks; });
    sim.run(100);
    EXPECT_EQ(ticks, 10);
}

TEST(Simulator, CancelPeriodicStops)
{
    Simulator sim;
    int ticks = 0;
    const std::size_t id = sim.every(10, [&] { ++ticks; });
    sim.run(50);
    sim.cancelPeriodic(id);
    sim.run(200);
    EXPECT_EQ(ticks, 5);
}

TEST(Simulator, PeriodicCanCancelItself)
{
    Simulator sim;
    int ticks = 0;
    std::size_t id = 0;
    id = sim.every(10, [&] {
        if (++ticks == 3)
            sim.cancelPeriodic(id);
    });
    sim.run(500);
    EXPECT_EQ(ticks, 3);
}

TEST(Simulator, ComponentsInitialized)
{
    struct Probe : Component {
        bool *flag;
        Probe(std::string n, bool *f) : Component(std::move(n)), flag(f) {}
        void
        init(Simulator &s) override
        {
            Component::init(s);
            *flag = true;
        }
    };
    Simulator sim;
    bool initialized = false;
    sim.add<Probe>("probe", &initialized);
    sim.run(1);
    EXPECT_TRUE(initialized);
}

TEST(TimeSeries, RecordsAndReduces)
{
    TimeSeries ts("sig");
    ts.record(0, 10.0);
    ts.record(10, 20.0);
    ts.record(20, 30.0);
    EXPECT_EQ(ts.size(), 3u);
    EXPECT_DOUBLE_EQ(ts.lastValue(), 30.0);
    EXPECT_DOUBLE_EQ(ts.maxValue(), 30.0);
    EXPECT_DOUBLE_EQ(ts.minValue(), 10.0);
    // Step interpolation: value holds until the next sample.
    EXPECT_DOUBLE_EQ(ts.valueAt(5), 10.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(10), 20.0);
    EXPECT_DOUBLE_EQ(ts.valueAt(999), 30.0);
}

TEST(TimeSeries, TimeWeightedMean)
{
    TimeSeries ts;
    ts.record(0, 100.0);
    ts.record(90, 200.0); // 100 held for 90 ticks
    ts.record(100, 300.0); // 200 held for 10 ticks
    EXPECT_NEAR(ts.timeWeightedMean(), (100.0 * 90 + 200.0 * 10) / 100.0,
                1e-9);
}

TEST(TimeSeries, ResampleFillsEmptyWindows)
{
    TimeSeries ts;
    ts.record(0, 1.0);
    ts.record(35, 5.0);
    const auto out = ts.resample(0, 40, 10);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_DOUBLE_EQ(out[0], 1.0);
    EXPECT_DOUBLE_EQ(out[1], 1.0); // carried forward
    EXPECT_DOUBLE_EQ(out[2], 1.0);
    EXPECT_DOUBLE_EQ(out[3], 5.0);
}

} // namespace
} // namespace pad::sim
