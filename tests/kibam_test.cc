/**
 * @file
 * Unit tests for the kinetic battery model: conservation of charge,
 * the rate-capacity effect, recovery after load removal, and the
 * closed-form sustainable-power solution.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "battery/kibam.h"

namespace pad::battery {
namespace {

KibamParams
smallBattery()
{
    KibamParams p;
    p.capacity = 3600.0; // 1 Wh
    p.c = 0.625;
    p.k = 4.5e-4;
    return p;
}

TEST(Kibam, StartsFull)
{
    Kibam b(smallBattery());
    EXPECT_DOUBLE_EQ(b.soc(), 1.0);
    EXPECT_TRUE(b.full());
    EXPECT_FALSE(b.depleted());
    EXPECT_NEAR(b.stored(), 3600.0, 1e-9);
}

TEST(Kibam, WellSplitMatchesC)
{
    Kibam b(smallBattery());
    EXPECT_NEAR(b.available(), 0.625 * 3600.0, 1e-9);
    EXPECT_NEAR(b.bound(), 0.375 * 3600.0, 1e-9);
}

TEST(Kibam, DischargeConservesEnergy)
{
    Kibam b(smallBattery());
    const Joules before = b.stored();
    const Joules delivered = b.step(10.0, 30.0);
    EXPECT_NEAR(delivered, 300.0, 1e-6);
    EXPECT_NEAR(before - b.stored(), delivered, 1e-6);
}

TEST(Kibam, ManySmallStepsMatchOneBigStep)
{
    Kibam a(smallBattery());
    Kibam b(smallBattery());
    a.step(5.0, 100.0);
    for (int i = 0; i < 100; ++i)
        b.step(5.0, 1.0);
    EXPECT_NEAR(a.stored(), b.stored(), 1e-6);
    EXPECT_NEAR(a.available(), b.available(), 1e-3);
}

TEST(Kibam, RateCapacityEffect)
{
    // Draining at a high rate extracts less total energy before the
    // available well empties than draining gently.
    Kibam fast(smallBattery());
    Kibam slow(smallBattery());

    Joules fastTotal = 0.0;
    while (!fast.depleted() && fastTotal < 10000.0)
        fastTotal += fast.step(300.0, 1.0);

    Joules slowTotal = 0.0;
    for (int i = 0; i < 100000 && !slow.depleted(); ++i)
        slowTotal += slow.step(2.0, 1.0);

    EXPECT_LT(fastTotal, slowTotal);
    EXPECT_LT(fastTotal, smallBattery().capacity);
}

TEST(Kibam, RecoveryAfterRest)
{
    // After a hard drain empties the available well, resting lets
    // bound charge flow back and the battery can deliver again.
    Kibam b(smallBattery());
    while (!b.depleted())
        b.step(400.0, 1.0);
    EXPECT_TRUE(b.depleted());
    const Joules boundBefore = b.bound();
    b.step(0.0, 600.0);
    EXPECT_FALSE(b.depleted());
    EXPECT_GT(b.available(), 0.0);
    EXPECT_LT(b.bound(), boundBefore);
}

TEST(Kibam, MaxSustainablePowerIsExact)
{
    Kibam b(smallBattery());
    b.step(200.0, 5.0); // partially drain first
    const double dt = 20.0;
    const Watts pmax = b.maxSustainablePower(dt);
    ASSERT_GT(pmax, 0.0);

    Kibam probe = b;
    probe.step(pmax, dt);
    EXPECT_NEAR(probe.available(), 0.0, 1e-6 * b.params().capacity);

    Kibam probe2 = b;
    const Joules got = probe2.step(pmax * 0.99, dt);
    EXPECT_NEAR(got, pmax * 0.99 * dt, 1e-6);
}

TEST(Kibam, OverdrawTruncatesDelivery)
{
    Kibam b(smallBattery());
    // Demand far more than the battery can give in one long step:
    // delivery truncates at the available-well crossing and the rest
    // of the step lets the bound well partially refill it.
    const Joules got = b.step(10000.0, 3600.0);
    EXPECT_LT(got, b.params().capacity + 1e-9);
    EXPECT_GT(got, 0.0);
    EXPECT_NEAR(b.stored(), b.params().capacity - got, 1e-3);
}

TEST(Kibam, ChargeRefills)
{
    Kibam b(smallBattery());
    b.step(100.0, 10.0);
    const Joules before = b.stored();
    const Joules absorbed = b.step(-50.0, 10.0);
    EXPECT_NEAR(absorbed, -500.0, 1e-6);
    EXPECT_NEAR(b.stored() - before, 500.0, 1e-6);
}

TEST(Kibam, ChargeStopsAtFull)
{
    Kibam b(smallBattery());
    b.step(100.0, 5.0); // remove 500 J
    const Joules absorbed = b.step(-1000.0, 10.0); // offer 10 kJ
    EXPECT_NEAR(-absorbed, 500.0, 1e-3);
    EXPECT_TRUE(b.full());
}

TEST(Kibam, SetSocRoundTrips)
{
    Kibam b(smallBattery());
    b.setSoc(0.3);
    EXPECT_NEAR(b.soc(), 0.3, 1e-12);
    b.setSoc(0.0);
    EXPECT_TRUE(b.depleted());
    b.setSoc(1.0);
    EXPECT_TRUE(b.full());
}

TEST(Kibam, IdleEqualizesWells)
{
    Kibam b(smallBattery());
    b.step(500.0, 2.0); // hit the available well hard
    const double headAvail = b.available() / b.params().c;
    const double headBound = b.bound() / (1.0 - b.params().c);
    EXPECT_LT(headAvail, headBound);
    b.step(0.0, 20000.0); // long rest (several equalization taus)
    const double headAvail2 = b.available() / b.params().c;
    const double headBound2 = b.bound() / (1.0 - b.params().c);
    EXPECT_NEAR(headAvail2, headBound2, 1.0);
}

/** Property sweep: conservation holds across rates and durations. */
class KibamConservation
    : public ::testing::TestWithParam<std::tuple<double, double>>
{};

TEST_P(KibamConservation, StoredPlusDeliveredConstant)
{
    const auto [power, dt] = GetParam();
    Kibam b(smallBattery());
    b.setSoc(0.8);
    const Joules before = b.stored();
    const Joules delivered = b.step(power, dt);
    EXPECT_NEAR(before - b.stored(), delivered,
                1e-6 * b.params().capacity + 1e-6);
    EXPECT_GE(b.stored(), -1e-9);
    EXPECT_LE(b.stored(), b.params().capacity + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KibamConservation,
    ::testing::Combine(::testing::Values(0.5, 5.0, 50.0, 500.0, 5000.0),
                       ::testing::Values(0.1, 1.0, 10.0, 100.0, 1000.0)));

} // namespace
} // namespace pad::battery
