/**
 * @file
 * Property tests for the splittable counter-based RNG (util/random.h):
 * the split/seek stream contract the SoA engine's sharded demand
 * refresh relies on, the equivalence of the workload jitter stream
 * with its historical file-local hash, and the BasicRng seam over
 * each sequential engine.
 */

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "trace/workload.h"
#include "util/random.h"

using namespace pad;

namespace {

// ---------------------------------------------------------------------
// CounterRng: seek / split / layout independence
// ---------------------------------------------------------------------

TEST(CounterRng, SeekEqualsSequential)
{
    // A stream seeked to position n continues bit-identically to a
    // stream that drew n values sequentially: there is no hidden
    // state beyond the counter.
    for (const std::uint64_t key : {0ULL, 42ULL, 0xdeadbeefULL}) {
        CounterRng sequential(key);
        std::vector<std::uint64_t> drawn;
        for (int i = 0; i < 100; ++i)
            drawn.push_back(sequential.next());

        for (const std::uint64_t n : {0ULL, 1ULL, 17ULL, 99ULL}) {
            CounterRng seeked(key);
            seeked.seek(n);
            EXPECT_EQ(seeked.position(), n);
            for (std::uint64_t i = n; i < 100; ++i)
                EXPECT_EQ(seeked.next(), drawn[i])
                    << "key " << key << " draw " << i;
        }
    }
}

TEST(CounterRng, AtIsPositionIndependent)
{
    // at(n) is a pure function of (key, n): query order, interleaved
    // sequential draws and the current position never change it.
    CounterRng a(7);
    const std::uint64_t probe = a.at(12345);
    a.next();
    a.next();
    a.seek(999);
    EXPECT_EQ(a.at(12345), probe);
    const CounterRng b(7, 555);
    EXPECT_EQ(b.at(12345), probe);
}

TEST(CounterRng, SplitProducesIndependentStreams)
{
    const CounterRng parent(42);

    // split() never advances the parent and derives distinct keys
    // per lane (including vs the parent itself).
    std::set<std::uint64_t> keys{parent.key()};
    for (std::uint64_t lane = 0; lane < 64; ++lane) {
        const CounterRng child = parent.split(lane);
        EXPECT_TRUE(keys.insert(child.key()).second)
            << "lane " << lane << " collided";
    }
    EXPECT_EQ(parent.position(), 0u);

    // Statistical independence across sibling lanes: the mean of
    // each lane's unit outputs is near 1/2 and the average product
    // of paired lanes is near 1/4 (uncorrelated).
    const int draws = 4096;
    const CounterRng left = parent.split(1);
    const CounterRng right = parent.split(2);
    double meanL = 0.0, meanR = 0.0, cross = 0.0;
    for (int i = 0; i < draws; ++i) {
        const double l = left.unitAt(static_cast<std::uint64_t>(i));
        const double r = right.unitAt(static_cast<std::uint64_t>(i));
        meanL += l;
        meanR += r;
        cross += l * r;
    }
    meanL /= draws;
    meanR /= draws;
    cross /= draws;
    EXPECT_NEAR(meanL, 0.5, 0.02);
    EXPECT_NEAR(meanR, 0.5, 0.02);
    EXPECT_NEAR(cross, 0.25, 0.02);
}

TEST(CounterRng, ShardedWalkMatchesSerialWalk)
{
    // Layout independence, the property the SoA engine's sharded
    // demand refresh is built on: partitioning the index space across
    // shards draws exactly the bytes of a serial walk.
    const CounterRng stream(0x5eedULL);
    const int total = 1000;
    std::vector<std::uint64_t> serial;
    serial.reserve(total);
    for (int i = 0; i < total; ++i)
        serial.push_back(stream.at(static_cast<std::uint64_t>(i)));

    for (const int shards : {2, 3, 7}) {
        std::vector<std::uint64_t> sharded(total);
        for (int s = 0; s < shards; ++s) {
            const int lo = total * s / shards;
            const int hi = total * (s + 1) / shards;
            CounterRng worker(stream.key());
            worker.seek(static_cast<std::uint64_t>(lo)); // O(1)
            for (int i = lo; i < hi; ++i)
                sharded[static_cast<std::size_t>(i)] = worker.next();
        }
        EXPECT_EQ(sharded, serial) << shards << " shards";
    }
}

TEST(CounterRng, UnitMappingsStayInRange)
{
    const CounterRng rng(123);
    for (std::uint64_t n = 0; n < 2000; ++n) {
        const double u = rng.unitAt(n);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        const double s = rng.signedUnitAt(n);
        EXPECT_GE(s, -1.0);
        EXPECT_LE(s, 1.0);
    }
}

// ---------------------------------------------------------------------
// Workload jitter: the counter-based stream is the historical hash
// ---------------------------------------------------------------------

TEST(CounterRng, WorkloadJitterMatchesHistoricalHash)
{
    // Workload::jitterAt has always been
    // splitmix64((machine << 40) ^ second) mapped to [-1, 1]; the
    // CounterRng delegation must keep that output bit for bit.
    for (const int machine : {0, 1, 17, 219}) {
        const CounterRng stream(static_cast<std::uint64_t>(machine)
                                << 40);
        for (const std::uint64_t second :
             {0ULL, 1ULL, 3600ULL, 86399ULL}) {
            const double direct = toSignedUnitDouble(splitmix64(
                (static_cast<std::uint64_t>(machine) << 40) ^ second));
            EXPECT_EQ(trace::Workload::jitterAt(machine, second),
                      direct);
            EXPECT_EQ(stream.signedUnitAt(second), direct);
        }
    }
}

// ---------------------------------------------------------------------
// BasicRng: the distribution mixin works over every engine
// ---------------------------------------------------------------------

template <typename Engine>
void
exerciseBasicRng()
{
    BasicRng<Engine> rng(42);
    BasicRng<Engine> same(42);
    for (int i = 0; i < 100; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        EXPECT_EQ(u, same.uniform()) << "determinism broke at " << i;
    }
    const std::int64_t k = rng.uniformInt(3, 9);
    EXPECT_GE(k, 3);
    EXPECT_LE(k, 9);
    // fork() derives a stream that does not mirror the parent.
    BasicRng<Engine> child = rng.fork();
    bool diverged = false;
    for (int i = 0; i < 10 && !diverged; ++i)
        diverged = child.uniform() != rng.uniform();
    EXPECT_TRUE(diverged);
}

TEST(BasicRng, WorksOverEveryEngine)
{
    exerciseBasicRng<std::mt19937_64>();
    exerciseBasicRng<SplitMix64>();
    exerciseBasicRng<Xoshiro256pp>();
    exerciseBasicRng<CounterRng>();
}

TEST(BasicRng, SplitMixHashMatchesEngineStep)
{
    // Hashing x equals advancing a SplitMix64 engine seeded with x by
    // one step — the documented relationship between the stateless
    // hash and the sequential engine.
    for (const std::uint64_t x : {0ULL, 1ULL, 42ULL, ~0ULL}) {
        SplitMix64 engine(x);
        EXPECT_EQ(engine(), splitmix64(x));
    }
}

} // namespace
