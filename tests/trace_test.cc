/**
 * @file
 * Unit tests for the trace substrate: CSV round-trip, the synthetic
 * Google-style generator's statistical properties, and the workload
 * utilization grid.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "trace/google_trace.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"

namespace pad::trace {
namespace {

class TempFile
{
  public:
    TempFile()
    {
        char buf[] = "/tmp/pad_trace_XXXXXX";
        const int fd = mkstemp(buf);
        EXPECT_GE(fd, 0);
        ::close(fd);
        path_ = buf;
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(GoogleTrace, CsvRoundTrip)
{
    std::vector<TaskEvent> events;
    events.push_back(TaskEvent{0, 300 * kTicksPerSecond, 3, 0.25});
    events.push_back(
        TaskEvent{600 * kTicksPerSecond, 900 * kTicksPerSecond, 7, 0.5});
    TempFile file;
    writeTaskTraceCsv(file.path(), events);
    const auto loaded = readTaskTraceCsv(file.path());
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].start, events[0].start);
    EXPECT_EQ(loaded[0].end, events[0].end);
    EXPECT_EQ(loaded[0].machine, 3);
    EXPECT_NEAR(loaded[0].cpuRate, 0.25, 1e-6);
    EXPECT_EQ(loaded[1].machine, 7);
}

TEST(GoogleTrace, ReaderSortsAndSkipsComments)
{
    TempFile file;
    {
        std::ofstream out(file.path());
        out << "# a comment\n";
        out << "start_seconds,end_seconds,machine_id,cpu_rate\n";
        out << "600,900,1,0.1\n";
        out << "0,300,2,0.2\n";
    }
    const auto loaded = readTaskTraceCsv(file.path());
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].machine, 2); // earliest start first
}

TEST(TaskEvent, ActiveAtAndDuration)
{
    TaskEvent ev{100, 200, 0, 0.5};
    EXPECT_EQ(ev.duration(), 100);
    EXPECT_TRUE(ev.activeAt(100));
    EXPECT_TRUE(ev.activeAt(199));
    EXPECT_FALSE(ev.activeAt(200));
    EXPECT_FALSE(ev.activeAt(99));
}

TEST(SyntheticTrace, DeterministicForSameSeed)
{
    SyntheticTraceConfig cfg;
    cfg.machines = 20;
    cfg.days = 0.5;
    const auto a = SyntheticGoogleTrace(cfg).generate();
    const auto b = SyntheticGoogleTrace(cfg).generate();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].start, b[i].start);
        EXPECT_EQ(a[i].machine, b[i].machine);
        EXPECT_DOUBLE_EQ(a[i].cpuRate, b[i].cpuRate);
    }
}

TEST(SyntheticTrace, DifferentSeedsDiffer)
{
    SyntheticTraceConfig cfg;
    cfg.machines = 20;
    cfg.days = 0.5;
    const auto a = SyntheticGoogleTrace(cfg).generate();
    cfg.seed = 777;
    const auto b = SyntheticGoogleTrace(cfg).generate();
    EXPECT_NE(a.size(), b.size());
}

TEST(SyntheticTrace, MeanUtilizationInPlausibleBand)
{
    SyntheticTraceConfig cfg;
    cfg.machines = 220;
    cfg.days = 2.0;
    const auto events = SyntheticGoogleTrace(cfg).generate();
    Workload w(events, cfg.machines,
               static_cast<Tick>(cfg.days * kTicksPerDay));
    // Calibrated for a Google-2010-like cluster: ~15-30% mean CPU.
    EXPECT_GT(w.overallMeanUtil(), 0.12);
    EXPECT_LT(w.overallMeanUtil(), 0.32);
}

TEST(SyntheticTrace, DiurnalPatternPresent)
{
    SyntheticTraceConfig cfg;
    cfg.machines = 100;
    cfg.days = 3.0;
    const auto events = SyntheticGoogleTrace(cfg).generate();
    Workload w(events, cfg.machines,
               static_cast<Tick>(cfg.days * kTicksPerDay));
    // Afternoon (day 2, 14h) should be busier than pre-dawn (4h).
    const double peak =
        w.clusterUtilAt(kTicksPerDay + 14 * kTicksPerHour);
    const double trough =
        w.clusterUtilAt(kTicksPerDay + 4 * kTicksPerHour);
    EXPECT_GT(peak, trough * 1.3);
}

TEST(SyntheticTrace, SurgeInjectionRaisesLoad)
{
    SyntheticTraceConfig cfg;
    cfg.machines = 50;
    cfg.days = 1.0;
    cfg.surgePeriodHours = 6.0;
    cfg.surgeDurationMin = 30.0;
    cfg.surgeCpuRate = 0.4;
    const auto events = SyntheticGoogleTrace(cfg).generate();
    Workload w(events, cfg.machines, kTicksPerDay);
    // Mid-surge vs just before the surge window.
    const Tick surge = 6 * kTicksPerHour + 10 * kTicksPerMinute;
    const Tick before = 6 * kTicksPerHour - 20 * kTicksPerMinute;
    EXPECT_GT(w.clusterUtilAt(surge), w.clusterUtilAt(before) + 0.2);
}

TEST(Workload, GridAccumulatesOverlappingTasks)
{
    std::vector<TaskEvent> events;
    events.push_back(TaskEvent{0, kTraceSlotTicks, 0, 0.3});
    events.push_back(TaskEvent{0, kTraceSlotTicks, 0, 0.4});
    Workload w(events, 2, kTraceSlotTicks);
    EXPECT_NEAR(w.utilAt(0, 0), 0.7, 1e-9);
    EXPECT_NEAR(w.utilAt(1, 0), 0.0, 1e-9);
}

TEST(Workload, UtilizationClampedAtOne)
{
    std::vector<TaskEvent> events;
    for (int i = 0; i < 10; ++i)
        events.push_back(TaskEvent{0, kTraceSlotTicks, 0, 0.5});
    Workload w(events, 1, kTraceSlotTicks);
    EXPECT_DOUBLE_EQ(w.utilAt(0, 0), 1.0);
}

TEST(Workload, PartialSlotOverlapProRated)
{
    std::vector<TaskEvent> events;
    // Task covers exactly half of slot 0.
    events.push_back(TaskEvent{0, kTraceSlotTicks / 2, 0, 0.8});
    Workload w(events, 1, kTraceSlotTicks);
    EXPECT_NEAR(w.utilAt(0, 0), 0.4, 1e-9);
}

TEST(Workload, OutOfRangeMachinesDropped)
{
    std::vector<TaskEvent> events;
    events.push_back(TaskEvent{0, kTraceSlotTicks, 99, 0.5});
    events.push_back(TaskEvent{0, kTraceSlotTicks, 0, 0.5});
    Workload w(events, 2, kTraceSlotTicks);
    EXPECT_NEAR(w.utilAt(0, 0), 0.5, 1e-9);
}

TEST(Workload, FineJitterDeterministicAndBounded)
{
    std::vector<TaskEvent> events;
    events.push_back(TaskEvent{0, kTraceSlotTicks, 0, 0.4});
    Workload w(events, 1, kTraceSlotTicks);
    const double a = w.utilFine(0, 12345, 0.15);
    const double b = w.utilFine(0, 12345, 0.15);
    EXPECT_DOUBLE_EQ(a, b);
    // Bounded by the relative amplitude.
    for (Tick t = 0; t < kTraceSlotTicks; t += kTicksPerSecond) {
        const double v = w.utilFine(0, t, 0.15);
        EXPECT_GE(v, 0.4 * 0.85 - 1e-9);
        EXPECT_LE(v, 0.4 * 1.15 + 1e-9);
    }
}

TEST(Workload, FineJitterVariesAcrossSecondsNotWithin)
{
    std::vector<TaskEvent> events;
    events.push_back(TaskEvent{0, kTraceSlotTicks, 0, 0.4});
    Workload w(events, 1, kTraceSlotTicks);
    // Same second, different milliseconds: identical.
    EXPECT_DOUBLE_EQ(w.utilFine(0, 5000), w.utilFine(0, 5999));
    // Different seconds: almost surely different.
    bool varied = false;
    for (int s = 0; s < 10 && !varied; ++s)
        varied = w.utilFine(0, s * 1000) != w.utilFine(0, (s + 1) * 1000);
    EXPECT_TRUE(varied);
}

TEST(Workload, MachineMeanAndOverallMean)
{
    std::vector<TaskEvent> events;
    events.push_back(TaskEvent{0, 2 * kTraceSlotTicks, 0, 0.5});
    Workload w(events, 2, 2 * kTraceSlotTicks);
    EXPECT_NEAR(w.machineMeanUtil(0), 0.5, 1e-9);
    EXPECT_NEAR(w.machineMeanUtil(1), 0.0, 1e-9);
    EXPECT_NEAR(w.overallMeanUtil(), 0.25, 1e-9);
}

} // namespace
} // namespace pad::trace
