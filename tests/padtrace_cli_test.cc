/**
 * @file
 * End-to-end forensics test: runs the real padsim binary with
 * tracing, telemetry and the detector response enabled, then runs
 * the real padtrace binary over the produced JSONL and checks that
 * the reconstructed incident agrees EXACTLY with the simulator's own
 * stats export — survival time, time-to-detection and first policy
 * escalation are recomputed from event timestamps and must match the
 * registry values bit-for-bit. Also covers padtrace's tolerance of
 * corrupt/truncated traces and the --prom exposition grammar.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "telemetry/prom.h"
#include "util/json.h"

using namespace pad;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

int
runCmd(const std::string &bin, const std::string &args)
{
    const std::string cmd = bin + " " + args + " > /dev/null 2>&1";
    return std::system(cmd.c_str());
}

/** runCmd() but with stderr captured into @p errPath. */
int
runCmdErr(const std::string &bin, const std::string &args,
          const std::string &errPath)
{
    const std::string cmd =
        bin + " " + args + " > /dev/null 2> " + errPath;
    return std::system(cmd.c_str());
}

double
scalarOf(const JsonValue &stats, const std::string &name)
{
    // Stats JSON maps each dotted name directly onto its number.
    const JsonValue *scalars = stats.find("scalars");
    const JsonValue *entry = scalars ? scalars->find(name) : nullptr;
    return entry ? entry->number : -1e9;
}

/**
 * The fixture runs one traced 22-rack attack through padsim once and
 * shares the artifacts across tests (SetUpTestSuite keeps the suite
 * fast; every file is suite-unique so concurrent ctest binaries
 * cannot collide).
 */
class PadtraceForensics : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        ran_ = runCmd(PADSIM_BIN,
                      "--scheme PAD --racks 22 --duration 120"
                      " --detector --quiet"
                      " --trace ptr_run.jsonl"
                      " --stats-json ptr_stats.json"
                      " --prom ptr_metrics.prom");
    }

    static int ran_;
};

int PadtraceForensics::ran_ = -1;

} // namespace

TEST_F(PadtraceForensics, ReportAgreesExactlyWithSimulatorStats)
{
    ASSERT_EQ(ran_, 0);
    ASSERT_EQ(runCmd(PADTRACE_BIN,
                     "report --format json ptr_run.jsonl"
                     " --out ptr_report.json"),
              0);

    std::string error;
    const auto stats = parseJson(slurp("ptr_stats.json"), &error);
    ASSERT_TRUE(stats.has_value()) << error;
    const auto report = parseJson(slurp("ptr_report.json"), &error);
    ASSERT_TRUE(report.has_value()) << error;

    // Survival: padtrace recomputes it from the first attack.overload
    // event timestamp (or takes the recorded full-window value when
    // nothing overloaded); either way it must equal the registry
    // scalar exactly.
    const JsonValue *window = report->find("window");
    ASSERT_NE(window, nullptr);
    EXPECT_TRUE(window->find("found")->boolean);
    EXPECT_EQ(window->find("survival_sec")->number,
              scalarOf(*stats, "attack.survival_sec"));

    // Time-to-detection: first detector.anomaly event timestamp in
    // absolute sim seconds, against detector.first_flag_sec.
    const JsonValue *defender = report->find("defender");
    ASSERT_NE(defender, nullptr);
    EXPECT_EQ(defender->find("time_to_detection_sec")->number,
              scalarOf(*stats, "detector.first_flag_sec"));

    // First escalation out of L1, against policy.first_escalation_sec
    // (-1 on both sides when the policy never escalated).
    EXPECT_EQ(defender->find("first_escalation_sec")->number,
              scalarOf(*stats, "policy.first_escalation_sec"));

    // Spike count recorded in the attack.window span must match the
    // attack.spikes_launched counter.
    const JsonValue *attacker = report->find("attacker");
    ASSERT_NE(attacker, nullptr);
    const JsonValue *counters = stats->find("counters");
    ASSERT_NE(counters, nullptr);
    const JsonValue *spikes =
        counters->find("attack.spikes_launched");
    ASSERT_NE(spikes, nullptr);
    EXPECT_EQ(attacker->find("spikes_recorded")->number,
              spikes->number);

    // The attacker's ground-truth phase timeline came through.
    EXPECT_GT(attacker->find("phases")->array.size(), 0u);
    EXPECT_EQ(report->find("skipped")->number, 0.0);
}

TEST_F(PadtraceForensics, PromExpositionPassesGrammarCheck)
{
    ASSERT_EQ(ran_, 0);
    const std::string text = slurp("ptr_metrics.prom");
    ASSERT_FALSE(text.empty());
    std::string error;
    EXPECT_TRUE(telemetry::validatePromExposition(text, &error))
        << error;
    // Both stats-derived and telemetry-derived metrics are present.
    EXPECT_NE(text.find("pad_attack_survival_sec"),
              std::string::npos);
    EXPECT_NE(text.find("pad_series_last{series=\"pdu.power\"}"),
              std::string::npos);
}

TEST_F(PadtraceForensics, CorruptTrailingLinesAreSkippedNotFatal)
{
    ASSERT_EQ(ran_, 0);
    // Clean-run baseline.
    ASSERT_EQ(runCmd(PADTRACE_BIN,
                     "summary --format json ptr_run.jsonl"
                     " --out ptr_clean_summary.json"),
              0);

    // Corrupt copy: truncate the final line mid-JSON and append a
    // non-record object plus binary garbage.
    const std::string full = slurp("ptr_run.jsonl");
    ASSERT_GT(full.size(), 100u);
    {
        std::ofstream out("ptr_corrupt.jsonl",
                          std::ios::binary | std::ios::trunc);
        out << full.substr(0, full.size() - 40);
        out << "\n{\"not\":\"a record\"}\n\x01\x02 broken {{{\n";
    }
    ASSERT_EQ(runCmd(PADTRACE_BIN,
                     "summary --format json ptr_corrupt.jsonl"
                     " --out ptr_corrupt_summary.json"),
              0);

    std::string error;
    const auto clean =
        parseJson(slurp("ptr_clean_summary.json"), &error);
    ASSERT_TRUE(clean.has_value()) << error;
    const auto corrupt =
        parseJson(slurp("ptr_corrupt_summary.json"), &error);
    ASSERT_TRUE(corrupt.has_value()) << error;

    // The skipped tally is also echoed on stderr (one line), so it
    // is visible even when the report body goes to --out.
    ASSERT_EQ(runCmdErr(PADTRACE_BIN,
                        "summary --format json ptr_corrupt.jsonl"
                        " --out ptr_corrupt_summary2.json",
                        "ptr_corrupt_err.txt"),
              0);
    const std::string stderrText = slurp("ptr_corrupt_err.txt");
    EXPECT_NE(stderrText.find("padtrace: skipped"),
              std::string::npos)
        << stderrText;
    EXPECT_NE(stderrText.find("corrupt line"), std::string::npos);

    EXPECT_GE(corrupt->find("skipped")->number, 1.0);
    // The dropped tail doesn't change the incident headline numbers
    // (the attack.window span sits before the corrupted region only
    // if it was not the very last lines — so compare the detection
    // time, which derives from early events).
    EXPECT_EQ(corrupt->find("time_to_detection_sec")->number,
              clean->find("time_to_detection_sec")->number);
}

TEST_F(PadtraceForensics, TimelineAndMarkdownFormatsWork)
{
    ASSERT_EQ(ran_, 0);
    EXPECT_EQ(runCmd(PADTRACE_BIN,
                     "timeline --format csv ptr_run.jsonl"
                     " --out ptr_timeline.csv"),
              0);
    const std::string csv = slurp("ptr_timeline.csv");
    EXPECT_NE(csv.find("t_sec,event,detail"), std::string::npos);
    EXPECT_NE(csv.find("attacker.phase"), std::string::npos);

    EXPECT_EQ(runCmd(PADTRACE_BIN,
                     "report ptr_run.jsonl --out ptr_report.md"),
              0);
    const std::string md = slurp("ptr_report.md");
    EXPECT_NE(md.find("# padtrace incident report"),
              std::string::npos);
    EXPECT_NE(md.find("Attacker forensics"), std::string::npos);
    EXPECT_NE(md.find("DEB depletion"), std::string::npos);
}

TEST(PadtraceCli, UsageErrorsExitTwo)
{
    EXPECT_EQ(WEXITSTATUS(runCmd(PADTRACE_BIN, "")), 2);
    EXPECT_EQ(WEXITSTATUS(runCmd(
                  PADTRACE_BIN, "--format yaml trace.jsonl")),
              2);
    // Missing file is a runtime error (1), not a usage error.
    EXPECT_EQ(WEXITSTATUS(runCmd(PADTRACE_BIN,
                                 "report /does/not/exist.jsonl")),
              1);
    // incidents accepts md/json only, and --html is incidents-only.
    EXPECT_EQ(WEXITSTATUS(runCmd(
                  PADTRACE_BIN, "incidents --format csv x.jsonl")),
              2);
    EXPECT_EQ(WEXITSTATUS(runCmd(
                  PADTRACE_BIN, "report --html x.html x.jsonl")),
              2);
}

TEST(PadtraceCli, MissingTraceIsAOneLineErrorOnStderr)
{
    // Regression (hard error contract): a missing or unreadable
    // input produces exactly one explanatory line on stderr and a
    // nonzero exit — never a stack trace, never silence.
    ASSERT_EQ(WEXITSTATUS(runCmdErr(PADTRACE_BIN,
                                    "report /does/not/exist.jsonl",
                                    "ptr_missing_err.txt")),
              1);
    const std::string text = slurp("ptr_missing_err.txt");
    EXPECT_EQ(text.rfind("padtrace: ", 0), 0u) << text;
    EXPECT_NE(text.find("/does/not/exist.jsonl"), std::string::npos)
        << text;
    // Exactly one line (one trailing newline, no embedded ones).
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1) << text;
}

TEST(PadtraceCli, IncidentsSubcommandRendersArtifacts)
{
    // End-to-end: padsim evaluates the shipped default rules online
    // and streams incidents; padtrace re-renders them as a table,
    // JSONL and the standalone HTML dashboard.
    ASSERT_EQ(runCmd(PADSIM_BIN,
                     "--scheme PAD --racks 22 --duration 120"
                     " --detector --quiet"
                     " --alerts " PAD_RULES_DIR "/pad_default.json"
                     " --incidents ptr_incidents.jsonl"),
              0);

    ASSERT_EQ(runCmd(PADTRACE_BIN,
                     "incidents ptr_incidents.jsonl"
                     " --out ptr_incidents.md"
                     " --html ptr_incidents.html"),
              0);
    const std::string md = slurp("ptr_incidents.md");
    EXPECT_NE(md.find("# padtrace incidents"), std::string::npos);
    EXPECT_NE(md.find("incident(s)"), std::string::npos);

    const std::string html = slurp("ptr_incidents.html");
    EXPECT_EQ(html.rfind("<!doctype html>", 0), 0u);
    EXPECT_NE(html.find("</html>"), std::string::npos);
    EXPECT_EQ(html.find("<script"), std::string::npos);
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);

    // JSON mode re-emits the JSONL stream byte-identically.
    ASSERT_EQ(runCmd(PADTRACE_BIN,
                     "incidents --format json ptr_incidents.jsonl"
                     " --out ptr_incidents_back.jsonl"),
              0);
    EXPECT_EQ(slurp("ptr_incidents_back.jsonl"),
              slurp("ptr_incidents.jsonl"));

    // A missing incidents file is the same hard-error contract.
    EXPECT_EQ(WEXITSTATUS(runCmd(PADTRACE_BIN,
                                 "incidents /does/not/exist.jsonl")),
              1);
}
