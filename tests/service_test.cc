/**
 * @file
 * padd service-layer tests: the session record codec, the local
 * control channel, and the live daemon end to end — including the
 * PR's headline guarantee, that replaying a recorded live session
 * reproduces the incidents stream, the stats dump and the
 * Prometheus exposition byte for byte.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "service/control.h"
#include "service/daemon.h"
#include "service/session.h"
#include "telemetry/prom.h"
#include "util/json.h"

using namespace pad;
using namespace pad::service;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string
defaultRulesText()
{
    return slurp(std::string(PAD_RULES_DIR) + "/pad_default.json");
}

/** Minimal HTTP GET against 127.0.0.1:port; returns the raw reply. */
std::string
httpGet(int port, const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return {};
    }
    const std::string req =
        "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
    (void)::send(fd, req.data(), req.size(), 0);
    std::string reply;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        reply.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return reply;
}

bool
responseOk(const std::string &line)
{
    std::string error;
    const auto node = parseJson(line, &error);
    if (!node || !node->isObject())
        return false;
    const JsonValue *ok = node->find("ok");
    return ok && ok->isBool() && ok->boolean;
}

} // namespace

// ---------------------------------------------------------------------
// Session codec
// ---------------------------------------------------------------------

TEST(SessionCodec, WriterParserRoundTrip)
{
    const std::string path = "svc_roundtrip_session.jsonl";
    ServiceConfig config;
    config.scheme = core::SchemeKind::Conv;
    config.backend = engine::BackendKind::Soa;
    config.budget = 0.8;
    config.hour = 9.5;
    config.durationSec = 1234.0;
    config.seed = 7;
    config.detector = true;

    AttackSpec spec;
    spec.virus = attack::VirusKind::MemIntensive;
    spec.style = attack::AttackStyle::Sparse;
    spec.nodes = 2;
    spec.racks = 3;
    spec.durationSec = 600.0;
    spec.victimPct = 75.0;
    spec.seed = 99;

    {
        SessionWriter writer(path);
        ASSERT_TRUE(writer.ok());
        writer.writeHeader(config, "{\"rules\": []}");
        SessionCommand pause;
        pause.seq = 0;
        pause.tick = 1000;
        pause.name = "pause";
        writer.writeCommand(pause);
        SessionCommand inject;
        inject.seq = 1;
        inject.tick = 2000;
        inject.name = "inject-attack";
        inject.spec = spec;
        writer.writeCommand(inject);
        SessionCommand speed;
        speed.seq = 2;
        speed.tick = 2000;
        speed.name = "set-speed";
        speed.speed = 120.0;
        writer.writeCommand(speed);
        writer.writeEnd(5000);
    }

    std::string error;
    const auto log = readSessionFile(path, &error);
    ASSERT_TRUE(log.has_value()) << error;
    EXPECT_EQ(log->config.scheme, core::SchemeKind::Conv);
    EXPECT_EQ(log->config.backend, engine::BackendKind::Soa);
    EXPECT_DOUBLE_EQ(log->config.budget, 0.8);
    EXPECT_DOUBLE_EQ(log->config.hour, 9.5);
    EXPECT_DOUBLE_EQ(log->config.durationSec, 1234.0);
    EXPECT_EQ(log->config.seed, 7u);
    EXPECT_TRUE(log->config.detector);
    EXPECT_EQ(log->rules, "{\"rules\": []}");
    ASSERT_EQ(log->commands.size(), 3u);
    EXPECT_EQ(log->commands[0].name, "pause");
    EXPECT_EQ(log->commands[0].tick, 1000);
    ASSERT_TRUE(log->commands[1].spec.has_value());
    EXPECT_EQ(log->commands[1].spec->virus,
              attack::VirusKind::MemIntensive);
    EXPECT_EQ(log->commands[1].spec->style,
              attack::AttackStyle::Sparse);
    EXPECT_EQ(log->commands[1].spec->nodes, 2);
    EXPECT_EQ(log->commands[1].spec->racks, 3);
    EXPECT_DOUBLE_EQ(log->commands[1].spec->victimPct, 75.0);
    EXPECT_EQ(log->commands[1].spec->seed, 99u);
    EXPECT_DOUBLE_EQ(log->commands[2].speed, 120.0);
    EXPECT_EQ(log->endTick, 5000);
    std::remove(path.c_str());
}

TEST(SessionCodec, ParserRejectsMalformedSessions)
{
    const char *header =
        "{\"type\":\"header\",\"version\":1,\"tool\":\"padd\","
        "\"config\":{},\"rules\":\"\"}\n";
    const struct {
        std::string text;
        const char *why;
    } cases[] = {
        {"{\"type\":\"cmd\",\"seq\":0,\"tick\":1,\"name\":"
         "\"pause\"}\n",
         "command before header"},
        {std::string(header) + "{\"type\":\"cmd\",\"seq\":0,"
                               "\"tick\":1,\"name\":\"nonsense\"}\n",
         "unknown command"},
        {std::string(header) +
             "{\"type\":\"cmd\",\"seq\":0,\"tick\":1,\"name\":"
             "\"inject-attack\"}\n",
         "inject-attack without a spec"},
        {std::string(header) +
             "{\"type\":\"cmd\",\"seq\":0,\"tick\":5,\"name\":"
             "\"pause\"}\n"
             "{\"type\":\"cmd\",\"seq\":2,\"tick\":6,\"name\":"
             "\"resume\"}\n",
         "seq gap"},
        {std::string(header) +
             "{\"type\":\"cmd\",\"seq\":0,\"tick\":5,\"name\":"
             "\"pause\"}\n"
             "{\"type\":\"cmd\",\"seq\":1,\"tick\":4,\"name\":"
             "\"resume\"}\n",
         "ticks going backwards"},
        {std::string(header) + "{\"type\":\"end\",\"tick\":9}\n" +
             "{\"type\":\"end\",\"tick\":10}\n",
         "record after end"},
        {"{\"type\":\"header\",\"version\":2,\"config\":{}}\n",
         "unsupported version"},
    };
    for (const auto &c : cases) {
        std::string error;
        EXPECT_FALSE(parseSession(c.text, &error).has_value())
            << c.why;
        EXPECT_FALSE(error.empty()) << c.why;
        EXPECT_EQ(error.find('\n'), std::string::npos) << c.why;
    }
}

TEST(SessionCodec, MissingEndIsReplayableUpToLastCommand)
{
    const std::string text =
        "{\"type\":\"header\",\"version\":1,\"config\":{},"
        "\"rules\":\"\"}\n"
        "{\"type\":\"cmd\",\"seq\":0,\"tick\":777,\"name\":"
        "\"shutdown\"}\n";
    std::string error;
    const auto log = parseSession(text, &error);
    ASSERT_TRUE(log.has_value()) << error;
    EXPECT_EQ(log->endTick, 777);
}

TEST(SessionCodec, AttackSpecDefaultsAndValidation)
{
    std::string error;
    const auto defaults = parseAttackSpec("{}", &error);
    ASSERT_TRUE(defaults.has_value()) << error;
    EXPECT_EQ(defaults->nodes, 4);
    EXPECT_EQ(defaults->racks, 8);
    EXPECT_DOUBLE_EQ(defaults->durationSec, 1500.0);

    EXPECT_FALSE(
        parseAttackSpec("{\"racks\": 23}", &error).has_value());
    EXPECT_FALSE(
        parseAttackSpec("{\"nodes\": 0}", &error).has_value());
    EXPECT_FALSE(
        parseAttackSpec("{\"virus\": \"gpu\"}", &error).has_value());
    EXPECT_FALSE(
        parseAttackSpec("{\"bogus\": 1}", &error).has_value());

    const auto spec = parseAttackSpec(
        "{\"virus\":\"io\",\"style\":\"sparse\",\"racks\":22}",
        &error);
    ASSERT_TRUE(spec.has_value()) << error;
    const auto again = parseAttackSpec(renderAttackSpec(*spec));
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->virus, attack::VirusKind::IoIntensive);
    EXPECT_EQ(again->style, attack::AttackStyle::Sparse);
    EXPECT_EQ(again->racks, 22);
}

// ---------------------------------------------------------------------
// Control channel
// ---------------------------------------------------------------------

TEST(ControlChannel, RequestsAreServedInOrder)
{
    ControlServer server(0, [](const std::string &line) {
        return "ack:" + line;
    });
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ASSERT_GT(server.port(), 0);

    ControlClient client;
    ASSERT_TRUE(client.connect(server.port(), &error)) << error;
    for (int i = 0; i < 5; ++i) {
        const auto response =
            client.request("{\"n\":" + std::to_string(i) + "}");
        ASSERT_TRUE(response.has_value());
        EXPECT_EQ(*response,
                  "ack:{\"n\":" + std::to_string(i) + "}");
    }
    client.close();

    // Connections are served one after another; a new client works.
    ControlClient second;
    ASSERT_TRUE(second.connect(server.port(), &error)) << error;
    const auto response = second.request("ping");
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(*response, "ack:ping");
    server.stop();
}

TEST(ControlChannel, BindFailureIsAOneLineError)
{
    ControlServer first(0, [](const std::string &) {
        return std::string("{}");
    });
    std::string error;
    ASSERT_TRUE(first.start(&error)) << error;

    ControlServer second(first.port(), [](const std::string &) {
        return std::string("{}");
    });
    EXPECT_FALSE(second.start(&error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(error.find('\n'), std::string::npos) << error;
    EXPECT_FALSE(second.running());
    first.stop();
}

// ---------------------------------------------------------------------
// Daemon end to end: live session, then byte-identical replay
// ---------------------------------------------------------------------

TEST(ServiceDaemon, LiveSessionReplaysByteIdentically)
{
    DaemonOptions opts;
    opts.config.durationSec = 0.0; // run until shutdown
    opts.speed = 0.0;              // max
    opts.rulesText = defaultRulesText();
    ASSERT_FALSE(opts.rulesText.empty());
    opts.sessionPath = "svc_e2e_session.jsonl";
    opts.incidentsPath = "svc_e2e_live_incidents.jsonl";
    opts.statsJsonPath = "svc_e2e_live_stats.json";
    opts.promPath = "svc_e2e_live.prom";

    ServiceDaemon daemon(std::move(opts));
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;
    ASSERT_GT(daemon.controlPort(), 0);
    ASSERT_GT(daemon.metricsPort(), 0);

    std::thread sim([&daemon] { daemon.run(); });

    ControlClient client;
    ASSERT_TRUE(client.connect(daemon.controlPort(), &error))
        << error;

    auto roundTrip = [&](const std::string &line) {
        const auto response = client.request(line);
        EXPECT_TRUE(response.has_value()) << line;
        EXPECT_TRUE(responseOk(*response))
            << line << " -> " << response.value_or("(none)");
        return response.value_or("{}");
    };

    const std::string status = roundTrip("{\"cmd\":\"status\"}");
    EXPECT_NE(status.find("\"scheme\":\"PAD\""), std::string::npos)
        << status;

    // Scrape the live endpoint while the sim thread is stepping —
    // the exposition must parse under the in-tree grammar checker.
    const std::string scrape =
        httpGet(daemon.metricsPort(), "/metrics");
    EXPECT_NE(scrape.find("pad_service_up 1"), std::string::npos);
    const auto split = scrape.find("\r\n\r\n");
    ASSERT_NE(split, std::string::npos);
    std::string verror;
    EXPECT_TRUE(telemetry::validatePromExposition(
        scrape.substr(split + 4), &verror))
        << verror;

    roundTrip("{\"cmd\":\"pause\"}");
    EXPECT_NE(roundTrip("{\"cmd\":\"status\"}")
                  .find("\"paused\":true"),
              std::string::npos);
    roundTrip("{\"cmd\":\"set-speed\",\"speed\":3600}");
    roundTrip("{\"cmd\":\"resume\"}");
    roundTrip("{\"cmd\":\"set-speed\",\"speed\":\"max\"}");
    const std::string attack = roundTrip(
        "{\"cmd\":\"inject-attack\",\"spec\":{\"racks\":2,"
        "\"duration_sec\":300}}");
    EXPECT_NE(attack.find("\"victim_rack\""), std::string::npos)
        << attack;

    // Malformed commands are rejected without being recorded.
    const auto bad = client.request("{\"cmd\":\"inject-attack\","
                                    "\"spec\":{\"racks\":99}}");
    ASSERT_TRUE(bad.has_value());
    EXPECT_FALSE(responseOk(*bad)) << *bad;
    const auto unknown = client.request("{\"cmd\":\"warp\"}");
    ASSERT_TRUE(unknown.has_value());
    EXPECT_FALSE(responseOk(*unknown)) << *unknown;

    roundTrip("{\"cmd\":\"shutdown\"}");
    sim.join();

    // After shutdown the command path answers with an error instead
    // of hanging.
    EXPECT_FALSE(
        responseOk(daemon.submitCommand("{\"cmd\":\"status\"}")));

    const DaemonResult &live = daemon.result();
    EXPECT_EQ(live.commands, 6u); // pause, 2x set-speed, resume,
                                  // inject-attack, shutdown
    EXPECT_EQ(live.attacks, 1u);
    EXPECT_GT(live.incidents, 0u);

    // The recorded session carries exactly the applied commands.
    const auto log = readSessionFile("svc_e2e_session.jsonl", &error);
    ASSERT_TRUE(log.has_value()) << error;
    ASSERT_EQ(log->commands.size(), 6u);
    EXPECT_EQ(log->commands[0].name, "pause");
    EXPECT_EQ(log->commands[1].name, "set-speed");
    EXPECT_EQ(log->commands[2].name, "resume");
    EXPECT_EQ(log->commands[3].name, "set-speed");
    EXPECT_EQ(log->commands[4].name, "inject-attack");
    EXPECT_EQ(log->commands[5].name, "shutdown");
    EXPECT_EQ(log->endTick, live.endTick);

    // The determinism contract: replay writes the same bytes.
    ReplayArtifacts artifacts;
    artifacts.incidentsPath = "svc_e2e_replay_incidents.jsonl";
    artifacts.statsJsonPath = "svc_e2e_replay_stats.json";
    artifacts.promPath = "svc_e2e_replay.prom";
    DaemonResult replayed;
    ASSERT_TRUE(replaySession(*log, artifacts, &error, &replayed))
        << error;
    EXPECT_EQ(replayed.endTick, live.endTick);
    EXPECT_EQ(replayed.attacks, live.attacks);
    EXPECT_EQ(replayed.incidents, live.incidents);
    EXPECT_EQ(slurp("svc_e2e_replay_incidents.jsonl"),
              slurp("svc_e2e_live_incidents.jsonl"));
    EXPECT_EQ(slurp("svc_e2e_replay_stats.json"),
              slurp("svc_e2e_live_stats.json"));
    EXPECT_EQ(slurp("svc_e2e_replay.prom"),
              slurp("svc_e2e_live.prom"));

    // A crash-cut session (end record lost) still replays, through
    // its last recorded input.
    std::string cut = slurp("svc_e2e_session.jsonl");
    const auto lastLine = cut.rfind("{\"type\":\"end\"");
    ASSERT_NE(lastLine, std::string::npos);
    cut.resize(lastLine);
    const auto cutLog = parseSession(cut, &error);
    ASSERT_TRUE(cutLog.has_value()) << error;
    EXPECT_EQ(cutLog->endTick, log->commands.back().tick);
    ASSERT_TRUE(replaySession(*cutLog, ReplayArtifacts{}, &error))
        << error;

    for (const char *path :
         {"svc_e2e_session.jsonl", "svc_e2e_live_incidents.jsonl",
          "svc_e2e_live_stats.json", "svc_e2e_live.prom",
          "svc_e2e_replay_incidents.jsonl",
          "svc_e2e_replay_stats.json", "svc_e2e_replay.prom"})
        std::remove(path);
}

TEST(ServiceDaemon, DurationLimitStopsWithoutEndpoints)
{
    DaemonOptions opts;
    opts.config.durationSec = 1800.0;
    opts.speed = 0.0;
    opts.metricsPort = -1;
    opts.controlPort = -1;
    opts.statsJsonPath = "svc_duration_a.json";

    ServiceDaemon daemon(std::move(opts));
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;
    EXPECT_EQ(daemon.controlPort(), -1);
    EXPECT_EQ(daemon.metricsPort(), -1);
    daemon.run();

    const Tick warmupEnd =
        kTicksPerDay + static_cast<Tick>(11.0 * kTicksPerHour);
    EXPECT_GE(daemon.result().endTick,
              warmupEnd + secondsToTicks(1800.0));
    EXPECT_EQ(daemon.result().commands, 0u);

    // Headless service runs are plain batch runs: a second identical
    // daemon produces the identical stats dump.
    DaemonOptions again;
    again.config.durationSec = 1800.0;
    again.speed = 0.0;
    again.metricsPort = -1;
    again.controlPort = -1;
    again.statsJsonPath = "svc_duration_b.json";
    ServiceDaemon twin(std::move(again));
    ASSERT_TRUE(twin.start(&error)) << error;
    twin.run();
    EXPECT_EQ(slurp("svc_duration_a.json"),
              slurp("svc_duration_b.json"));
    std::remove("svc_duration_a.json");
    std::remove("svc_duration_b.json");
}

TEST(ServiceDaemon, StartFailsCleanlyOnBadInputs)
{
    // Occupied control port.
    ControlServer squatter(0, [](const std::string &) {
        return std::string("{}");
    });
    std::string error;
    ASSERT_TRUE(squatter.start(&error)) << error;
    DaemonOptions taken;
    taken.controlPort = squatter.port();
    ServiceDaemon daemon(std::move(taken));
    EXPECT_FALSE(daemon.start(&error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(error.find('\n'), std::string::npos) << error;
    squatter.stop();

    // Incidents stream without rules is a configuration error.
    DaemonOptions incidents;
    incidents.incidentsPath = "svc_never_written.jsonl";
    ServiceDaemon noRules(std::move(incidents));
    EXPECT_FALSE(noRules.start(&error));
    EXPECT_FALSE(error.empty());

    // Malformed rules fail before anything runs.
    DaemonOptions badRules;
    badRules.rulesText = "{\"rules\": [{\"name\": \"x\"}]}";
    ServiceDaemon bad(std::move(badRules));
    EXPECT_FALSE(bad.start(&error));
    EXPECT_NE(error.find("alert rules"), std::string::npos) << error;
}

TEST(ServiceDaemon, RequestShutdownStopsALiveLoop)
{
    DaemonOptions opts;
    opts.speed = 3600.0; // paced, so the loop is actually waiting
    opts.metricsPort = -1;
    opts.controlPort = -1;
    ServiceDaemon daemon(std::move(opts));
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;
    std::thread sim([&daemon] { daemon.run(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    daemon.requestShutdown();
    sim.join();
    EXPECT_GT(daemon.result().endTick, 0);
}
