/**
 * @file
 * Unit tests for PAD's core mechanisms: the Fig. 9 security policy
 * automaton, the Algorithm-1 vDEB controller, the µDEB spike shaver,
 * the scheme traits table, and the cost model.
 */

#include <numeric>

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/schemes.h"
#include "core/security_policy.h"
#include "core/udeb.h"
#include "core/vdeb.h"

namespace pad::core {
namespace {

// --------------------------------------------------------------------
// Security policy (Fig. 9)
// --------------------------------------------------------------------

TEST(SecurityPolicy, InitialStateTableMatchesFig9)
{
    // Rows are [vDEB, µDEB, VP] -> level, per the paper's table.
    struct Row {
        bool vdeb, udeb, vp;
        SecurityLevel strictLevel;
        SecurityLevel lenientLevel;
    };
    const Row rows[] = {
        {false, false, false, SecurityLevel::Emergency,
         SecurityLevel::Emergency},
        {false, false, true, SecurityLevel::Emergency,
         SecurityLevel::Emergency},
        {false, true, false, SecurityLevel::MinorIncident,
         SecurityLevel::MinorIncident},
        {false, true, true, SecurityLevel::Emergency,
         SecurityLevel::Emergency},
        {true, false, false, SecurityLevel::MinorIncident,
         SecurityLevel::Normal},
        {true, false, true, SecurityLevel::MinorIncident,
         SecurityLevel::Normal},
        {true, true, false, SecurityLevel::Normal,
         SecurityLevel::Normal},
        {true, true, true, SecurityLevel::Normal, SecurityLevel::Normal},
    };
    for (const auto &row : rows) {
        const PolicyInputs in{row.vdeb, row.udeb, row.vp};
        EXPECT_EQ(initialLevel(in, true), row.strictLevel)
            << row.vdeb << row.udeb << row.vp;
        EXPECT_EQ(initialLevel(in, false), row.lenientLevel)
            << row.vdeb << row.udeb << row.vp;
    }
}

TEST(SecurityPolicy, EscalatesOneLevelPerUpdate)
{
    SecurityPolicy p(true);
    p.reset(PolicyInputs{true, true, false});
    ASSERT_EQ(p.level(), SecurityLevel::Normal);
    // Everything dies at once: L1 -> L2 -> L3 over two updates.
    const PolicyInputs dead{false, false, false};
    EXPECT_EQ(p.update(dead), SecurityLevel::MinorIncident);
    EXPECT_EQ(p.update(dead), SecurityLevel::Emergency);
    EXPECT_EQ(p.emergencies(), 1u);
}

TEST(SecurityPolicy, RecoversThroughLevelsAsBackupRecharges)
{
    SecurityPolicy p(true);
    p.reset(PolicyInputs{false, false, false});
    ASSERT_EQ(p.level(), SecurityLevel::Emergency);
    // vDEB recharged: L3 -> L2.
    EXPECT_EQ(p.update(PolicyInputs{true, false, false}),
              SecurityLevel::MinorIncident);
    // µDEB recharged too: L2 -> L1.
    EXPECT_EQ(p.update(PolicyInputs{true, true, false}),
              SecurityLevel::Normal);
}

TEST(SecurityPolicy, UdebLossMovesNormalToMinorIncident)
{
    SecurityPolicy p(true);
    p.reset(PolicyInputs{true, true, false});
    EXPECT_EQ(p.update(PolicyInputs{true, false, false}),
              SecurityLevel::MinorIncident);
    // µDEB recharged: back to L1.
    EXPECT_EQ(p.update(PolicyInputs{true, true, false}),
              SecurityLevel::Normal);
}

TEST(SecurityPolicy, StableWhenInputsUnchanged)
{
    SecurityPolicy p(true);
    p.reset(PolicyInputs{true, true, true});
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(p.update(PolicyInputs{true, true, true}),
                  SecurityLevel::Normal);
    EXPECT_EQ(p.transitions(), 0u);
}

TEST(SecurityPolicy, LevelNames)
{
    EXPECT_EQ(securityLevelName(SecurityLevel::Normal), "L1-Normal");
    EXPECT_EQ(securityLevelName(SecurityLevel::Emergency),
              "L3-Emergency");
}

// --------------------------------------------------------------------
// vDEB controller (Algorithm 1)
// --------------------------------------------------------------------

VdebConfig
vcfg(Watts ideal = 800.0)
{
    VdebConfig c;
    c.idealDischargePower = ideal;
    return c;
}

TEST(Vdeb, NoShaveWhenUnderBudget)
{
    VdebController ctl(vcfg());
    const auto plan = ctl.assign({1000.0, 1000.0}, 5000.0, 6000.0);
    EXPECT_DOUBLE_EQ(plan.shaveTarget, 0.0);
    for (double p : plan.power)
        EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(Vdeb, AssignmentSumsToShaveTarget)
{
    VdebController ctl(vcfg());
    const std::vector<Joules> soc{5000.0, 3000.0, 2000.0, 100.0};
    const auto plan = ctl.assign(soc, 11000.0, 10000.0);
    const double sum = std::accumulate(plan.power.begin(),
                                       plan.power.end(), 0.0);
    EXPECT_NEAR(sum, 1000.0, 1e-9);
    EXPECT_FALSE(plan.even);
}

TEST(Vdeb, ProportionalToSocWhenUncapped)
{
    VdebController ctl(vcfg(1.0e9)); // effectively no cap
    const std::vector<Joules> soc{6000.0, 3000.0, 1000.0};
    const auto plan = ctl.assign(soc, 10500.0, 10000.0);
    EXPECT_NEAR(plan.power[0], 500.0 * 0.6, 1e-9);
    EXPECT_NEAR(plan.power[1], 500.0 * 0.3, 1e-9);
    EXPECT_NEAR(plan.power[2], 500.0 * 0.1, 1e-9);
}

TEST(Vdeb, HighSocUnitsPinnedAtIdealCap)
{
    VdebController ctl(vcfg(300.0));
    const std::vector<Joules> soc{10000.0, 100.0, 100.0, 100.0};
    const auto plan = ctl.assign(soc, 10600.0, 10000.0);
    // The dominant unit is capped; the rest split the remainder.
    EXPECT_NEAR(plan.power[0], 300.0, 1e-9);
    const double rest = plan.power[1] + plan.power[2] + plan.power[3];
    EXPECT_NEAR(rest, 300.0, 1e-9);
    EXPECT_NEAR(plan.power[1], 100.0, 1e-9);
    EXPECT_FALSE(plan.even);
}

TEST(Vdeb, NonEvenAssignmentsNeverExceedCap)
{
    VdebController ctl(vcfg(250.0));
    const std::vector<Joules> soc{9000.0, 7000.0, 100.0, 50.0, 10.0};
    const auto plan = ctl.assign(soc, 10700.0, 10000.0);
    ASSERT_FALSE(plan.even);
    for (double p : plan.power)
        EXPECT_LE(p, 250.0 + 1e-9);
    EXPECT_NEAR(std::accumulate(plan.power.begin(), plan.power.end(),
                                0.0),
                700.0, 1e-9);
}

TEST(Vdeb, MonotoneInSoc)
{
    VdebController ctl(vcfg());
    const std::vector<Joules> soc{8000.0, 4000.0, 2000.0, 500.0};
    const auto plan = ctl.assign(soc, 10900.0, 10000.0);
    for (std::size_t i = 0; i + 1 < soc.size(); ++i)
        EXPECT_GE(plan.power[i], plan.power[i + 1] - 1e-9);
}

TEST(Vdeb, EvenBranchWhenDeficitExceedsCappedCapacity)
{
    VdebController ctl(vcfg(100.0));
    const std::vector<Joules> soc{100.0, 5000.0, 2500.0};
    // Deficit 600 W > 3 x 100 W cap: fall back to even split.
    const auto plan = ctl.assign(soc, 10600.0, 10000.0);
    EXPECT_TRUE(plan.even);
    for (double p : plan.power)
        EXPECT_NEAR(p, 200.0, 1e-9);
}

TEST(Vdeb, ZeroSocUnitsGetNothing)
{
    VdebController ctl(vcfg());
    const std::vector<Joules> soc{4000.0, 0.0, 4000.0};
    const auto plan = ctl.assign(soc, 10400.0, 10000.0);
    EXPECT_DOUBLE_EQ(plan.power[1], 0.0);
    EXPECT_NEAR(plan.power[0] + plan.power[2], 400.0, 1e-9);
}

// --------------------------------------------------------------------
// µDEB
// --------------------------------------------------------------------

MicroDebConfig
ucfg()
{
    MicroDebConfig c;
    c.cap.capacitanceF = 2.0;
    c.cap.efficiency = 1.0;
    c.maxEngagementSec = 3.0;
    c.rechargePower = 300.0;
    return c;
}

TEST(MicroDeb, ShavesSpikeAutomatically)
{
    MicroDeb u("t.udeb", ucfg());
    const Watts shaved = u.shave(600.0, 0.5);
    EXPECT_NEAR(shaved, 600.0, 1e-6);
    EXPECT_EQ(u.engagements(), 1);
    EXPECT_LT(u.soc(), 1.0);
}

TEST(MicroDeb, EngagementGuardStopsSustainedPeaks)
{
    MicroDeb u("t.udeb", ucfg());
    double total = 0.0;
    for (int i = 0; i < 100; ++i)
        total += u.shave(200.0, 0.5) * 0.5;
    // Only the first 3 seconds are served (guard), 200 W x 3 s.
    EXPECT_NEAR(total, 600.0, 1e-6);
}

TEST(MicroDeb, RechargeResetsGuardAndRefills)
{
    MicroDeb u("t.udeb", ucfg());
    for (int i = 0; i < 10; ++i)
        u.shave(200.0, 0.5); // exhaust the guard window
    EXPECT_DOUBLE_EQ(u.shave(200.0, 0.5), 0.0);
    u.recharge(300.0, 5.0);
    EXPECT_GT(u.shave(200.0, 0.5), 0.0);
}

TEST(MicroDeb, DepletesWhenSpikeOutlastsEnergy)
{
    MicroDebConfig cfg = ucfg();
    cfg.cap.capacitanceF = 0.05; // tiny bank
    MicroDeb u("t.udeb", cfg);
    u.shave(5000.0, 2.0);
    EXPECT_TRUE(u.depleted());
}

// --------------------------------------------------------------------
// Schemes table & cost model
// --------------------------------------------------------------------

TEST(Schemes, TraitsMatchTableIII)
{
    EXPECT_FALSE(schemeTraits(SchemeKind::Conv).peakShaving);
    EXPECT_TRUE(schemeTraits(SchemeKind::PS).peakShaving);
    EXPECT_FALSE(schemeTraits(SchemeKind::PS).dvfsCapping);
    EXPECT_TRUE(schemeTraits(SchemeKind::PSPC).dvfsCapping);
    EXPECT_TRUE(schemeTraits(SchemeKind::VdebOnly).vdebSharing);
    EXPECT_FALSE(schemeTraits(SchemeKind::VdebOnly).udebSpikes);
    EXPECT_TRUE(schemeTraits(SchemeKind::UdebOnly).udebSpikes);
    EXPECT_FALSE(schemeTraits(SchemeKind::UdebOnly).vdebSharing);
    const auto pad = schemeTraits(SchemeKind::Pad);
    EXPECT_TRUE(pad.vdebSharing && pad.udebSpikes && pad.shedding);
}

TEST(Schemes, NamesRoundTrip)
{
    for (SchemeKind k : kAllSchemes) {
        const auto parsed = schemeFromName(schemeName(k));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, k);
    }
}

TEST(CostModel, UdebCostScalesLinearlyWithCapacitance)
{
    CostModel cm;
    MicroDebConfig a;
    a.cap.capacitanceF = 2.0;
    MicroDebConfig b;
    b.cap.capacitanceF = 4.0;
    EXPECT_NEAR(cm.udebCost(b, 1), 2.0 * cm.udebCost(a, 1), 1e-9);
}

TEST(CostModel, SmallUdebIsMinorCostOverhead)
{
    // The paper's headline: a useful µDEB costs a few percent of the
    // battery investment the data center already made.
    CostModel cm;
    MicroDebConfig udeb;
    udeb.cap.capacitanceF = 2.0;
    battery::BatteryUnitConfig deb;
    deb.capacityWh = 72.4;
    EXPECT_LT(cm.costRatio(udeb, deb), 0.10);
    EXPECT_GT(cm.costRatio(udeb, deb), 0.005);
}

} // namespace
} // namespace pad::core
