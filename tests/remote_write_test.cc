/**
 * @file
 * Push-pipeline tests: the pad-rw-v1 codec, the RemoteWriteShipper's
 * failure envelope (bounded queue, backoff, disk spool, drain
 * deadline), the ReceiverServer merge semantics, and the PR's
 * headline guarantee — a replayed padd session ships the exact batch
 * stream the live run shipped, so two receivers fed from two replays
 * dump byte-identically.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "service/daemon.h"
#include "service/session.h"
#include "sim/stats_registry.h"
#include "telemetry/hub.h"
#include "telemetry/prom.h"
#include "telemetry/remote_write.h"
#include "telemetry/receiver.h"

using namespace pad;
using namespace pad::telemetry;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Names of the *.jsonl spool files under @p dir, sorted. */
std::vector<std::string>
spoolListing(const std::string &dir)
{
    std::vector<std::string> names;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return names;
    while (const dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name.size() > 6 &&
            name.compare(name.size() - 6, 6, ".jsonl") == 0)
            names.push_back(name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
}

void
removeSpoolDir(const std::string &dir)
{
    for (const auto &name : spoolListing(dir))
        std::remove((dir + "/" + name).c_str());
    ::rmdir(dir.c_str());
}

/** Poll @p pred at 1 ms until true or ~5 s elapsed. */
bool
eventually(const std::function<bool()> &pred)
{
    for (int i = 0; i < 5000; ++i) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pred();
}

RwBatch
sampleBatch(const std::string &source, std::uint64_t seq, Tick tick)
{
    RwBatch b;
    b.source = source;
    b.seq = seq;
    b.tick = tick;
    RwSeriesChunk chunk;
    chunk.name = "rack0.power";
    chunk.samples.push_back({tick - 1000, 50000.0});
    chunk.samples.push_back({tick, 50125.5});
    b.series.push_back(chunk);
    RwSeriesChunk second;
    second.name = "rack1.power";
    second.samples.push_back({tick, 49000.25});
    b.series.push_back(second);
    return b;
}

} // namespace

// ---------------------------------------------------------------------
// pad-rw-v1 codec
// ---------------------------------------------------------------------

TEST(RwCodec, BatchLineRoundTrip)
{
    const RwBatch b = sampleBatch("nodeA", 7, 123000);
    const std::string line = renderRwBatchLine(b);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    std::string error;
    const auto back = parseRwBatchLine(line, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->type, "batch");
    EXPECT_EQ(back->source, "nodeA");
    EXPECT_EQ(back->seq, 7u);
    EXPECT_EQ(back->tick, 123000);
    ASSERT_EQ(back->series.size(), 2u);
    EXPECT_EQ(back->series[0].name, "rack0.power");
    ASSERT_EQ(back->series[0].samples.size(), 2u);
    EXPECT_EQ(back->series[0].samples[0].when, 122000);
    EXPECT_DOUBLE_EQ(back->series[0].samples[1].value, 50125.5);
    EXPECT_EQ(back->sampleCount(), 3u);

    // A second render of the parsed batch is byte-identical: the
    // codec is canonical, which the replay determinism tests rely on.
    EXPECT_EQ(renderRwBatchLine(*back), line);
}

TEST(RwCodec, StatsLineRoundTrip)
{
    RwBatch b;
    b.type = "stats";
    b.source = "padd";
    b.seq = 42;
    b.tick = 9000;
    b.scalars.emplace_back("attack.survival_sec", 123.5);
    b.scalars.emplace_back("deb.min_soc", 0.25);
    b.counters.emplace_back("detector.flags", 17);

    std::string error;
    const auto back = parseRwBatchLine(renderRwBatchLine(b), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->type, "stats");
    ASSERT_EQ(back->scalars.size(), 2u);
    EXPECT_EQ(back->scalars[0].first, "attack.survival_sec");
    EXPECT_DOUBLE_EQ(back->scalars[1].second, 0.25);
    ASSERT_EQ(back->counters.size(), 1u);
    EXPECT_EQ(back->counters[0].second, 17u);
    EXPECT_EQ(back->sampleCount(), 0u);
}

TEST(RwCodec, ParserRejectsMalformedLines)
{
    const char *cases[] = {
        "not json at all",
        "{}",
        "{\"v\":2,\"type\":\"batch\",\"source\":\"a\",\"seq\":0,"
        "\"tick\":0}",
        "{\"v\":1,\"type\":\"frob\",\"source\":\"a\",\"seq\":0,"
        "\"tick\":0}",
        "{\"v\":1,\"type\":\"batch\",\"source\":\"\",\"seq\":0,"
        "\"tick\":0}",
        "{\"v\":1,\"type\":\"batch\",\"source\":\"a\",\"seq\":-1,"
        "\"tick\":0}",
        "{\"v\":1,\"type\":\"batch\",\"source\":\"a\",\"seq\":0,"
        "\"tick\":0,\"series\":[{\"name\":\"x\","
        "\"samples\":[[1]]}]}",
    };
    for (const char *bad : cases) {
        std::string error;
        EXPECT_FALSE(parseRwBatchLine(bad, &error).has_value())
            << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(RwCodec, ValidatesFramedAndBareStreams)
{
    const std::string l0 =
        renderRwBatchLine(sampleBatch("a", 0, 1000));
    const std::string l1 =
        renderRwBatchLine(sampleBatch("a", 1, 2000));
    const std::string l2 =
        renderRwBatchLine(sampleBatch("b", 0, 1500));

    // Framed wire capture.
    std::string error;
    RwStreamInfo info;
    ASSERT_TRUE(validateRwStream(
        frameRwLine(l0) + frameRwLine(l1) + frameRwLine(l2), &error,
        &info))
        << error;
    EXPECT_TRUE(info.framed);
    EXPECT_EQ(info.batches, 3u);
    EXPECT_EQ(info.samples, 9u);
    ASSERT_EQ(info.sources.size(), 2u);
    EXPECT_EQ(info.sources[0], "a");
    EXPECT_EQ(info.firstTick, 1000);
    EXPECT_EQ(info.lastTick, 1500); // stream order, not the max
    EXPECT_FALSE(info.truncatedTail);

    // Bare JSONL spool.
    RwStreamInfo bare;
    ASSERT_TRUE(validateRwStream(l0 + "\n" + l1 + "\n", &error, &bare))
        << error;
    EXPECT_FALSE(bare.framed);
    EXPECT_EQ(bare.batches, 2u);

    // A crash-cut tail — half a record, no terminator — is reported
    // but tolerated, in both formats.
    RwStreamInfo cut;
    ASSERT_TRUE(validateRwStream(
        l0 + "\n" + l1.substr(0, l1.size() / 2), &error, &cut))
        << error;
    EXPECT_TRUE(cut.truncatedTail);
    EXPECT_EQ(cut.batches, 1u);
    RwStreamInfo cutFramed;
    ASSERT_TRUE(validateRwStream(
        frameRwLine(l0) + frameRwLine(l1).substr(0, 8), &error,
        &cutFramed))
        << error;
    EXPECT_TRUE(cutFramed.truncatedTail);

    // Sequence regressions and gaps are hard errors: a stream that
    // validates must merge without duplicates.
    EXPECT_FALSE(validateRwStream(l1 + "\n" + l0 + "\n", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(validateRwStream(l0 + "\n" + l0 + "\n", &error));
    // A corrupt record in the *middle* is a hard error, not a
    // tolerated tail.
    EXPECT_FALSE(
        validateRwStream(l0.substr(4) + "\n" + l1 + "\n", &error));
}

TEST(RwCodec, ParseHostPortValidation)
{
    std::string error;
    const auto ok = parseHostPort("localhost:9009", &error);
    ASSERT_TRUE(ok.has_value()) << error;
    EXPECT_EQ(ok->first, "localhost");
    EXPECT_EQ(ok->second, 9009);

    for (const char *bad : {"", "nohost", ":123", "host:", "host:0",
                            "host:65536", "host:abc"}) {
        error.clear();
        EXPECT_FALSE(parseHostPort(bad, &error).has_value()) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

// ---------------------------------------------------------------------
// Shipper <-> receiver happy path
// ---------------------------------------------------------------------

TEST(RemoteWrite, ShipsToReceiverAndMerges)
{
    ReceiverServer rx(0);
    std::string error;
    ASSERT_TRUE(rx.start(&error)) << error;

    TelemetryHub hub;
    RemoteWriteOptions opts;
    opts.port = rx.port();
    opts.source = "padd0";
    opts.intervalS = 1.0;
    RemoteWriteShipper shipper(opts, &hub);
    ASSERT_TRUE(shipper.start(&error)) << error;

    // Two interval snapshots plus the final flush.
    hub.record("rack0.power", 100, 51000.0);
    hub.record("rack0.soc", 100, 0.99);
    shipper.observe(100); // anchors the interval clock
    hub.record("rack0.power", 600, 52000.0);
    shipper.observe(600); // within the interval: no batch
    hub.record("rack0.power", 1200, 53000.0);
    shipper.observe(1200); // interval elapsed: batch 0
    hub.record("rack0.soc", 1800, 0.97);

    sim::StatsRegistry stats;
    stats.registerScalar("attack.survival_sec", "t").set(42.5);
    stats.registerCounter("detector.flags", "n").add(3);
    shipper.finish(2000, &stats);

    const auto sc = shipper.counters();
    EXPECT_EQ(sc.batchesDropped, 0u);
    EXPECT_EQ(sc.samplesLost, 0u);
    EXPECT_EQ(sc.batchesSent, sc.batchesEnqueued);
    EXPECT_EQ(sc.samplesShipped, 5u);
    EXPECT_GE(sc.reconnects, 1u);

    // finish() drains stop-and-wait, so once it returns the receiver
    // has merged (ack follows merge) — no polling needed.
    const auto rc = rx.counters();
    EXPECT_EQ(rc.samples, 5u);
    EXPECT_EQ(rc.statsBatches, 1u);
    EXPECT_EQ(rc.duplicates, 0u);
    EXPECT_EQ(rc.protocolErrors, 0u);
    EXPECT_EQ(rx.sourceCount(), 1u);
    EXPECT_EQ(rx.maxTick(), 2000);

    const std::string dump = rx.dumpMerged();
    EXPECT_NE(dump.find("series fleet.padd0.rack0.power count 3"),
              std::string::npos)
        << dump;
    EXPECT_NE(dump.find("series fleet.padd0.rack0.soc count 2"),
              std::string::npos);
    EXPECT_NE(dump.find("scalar fleet.padd0.attack.survival_sec"),
              std::string::npos);
    EXPECT_NE(dump.find("counter fleet.padd0.detector.flags 3"),
              std::string::npos);

    // The aggregate exposition passes the in-tree grammar check and
    // carries the receiver self-metrics.
    const std::string metrics = rx.renderMetrics();
    EXPECT_TRUE(validatePromExposition(metrics, &error)) << error;
    EXPECT_NE(metrics.find("pad_rx_sources 1"), std::string::npos);
    EXPECT_NE(metrics.find(
                  "pad_series_last{series=\"fleet.padd0.rack0.power\"}"),
              std::string::npos);

    rx.stop();

    // The shipper's self-metric exposition is grammar-clean too.
    EXPECT_TRUE(validatePromExposition(
        RemoteWriteShipper::renderPromCounters(sc), &error))
        << error;
    EXPECT_NE(RemoteWriteShipper::renderPromCounters(sc).find(
                  "pad_rw_dropped_total 0"),
              std::string::npos);
}

TEST(RemoteWrite, ReceiverSkipsButAcksDuplicateSeq)
{
    ReceiverServer rx(0);
    std::string error;
    ASSERT_TRUE(rx.start(&error)) << error;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(rx.port()));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);

    // The same frame twice — a resend after a lost ack. Both must be
    // acked, the second skipped.
    const std::string frame =
        frameRwLine(renderRwBatchLine(sampleBatch("dup", 0, 5000)));
    for (int round = 0; round < 2; ++round) {
        ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
                  static_cast<ssize_t>(frame.size()));
        std::string ack;
        char c = 0;
        while (ack.find('\n') == std::string::npos &&
               ::recv(fd, &c, 1, 0) == 1)
            ack.push_back(c);
        EXPECT_NE(ack.find("\"ok\":true"), std::string::npos) << ack;
        EXPECT_NE(ack.find("\"seq\":0"), std::string::npos) << ack;
    }
    ::close(fd);

    EXPECT_TRUE(eventually([&] { return rx.counters().batches == 1; }));
    EXPECT_EQ(rx.counters().duplicates, 1u);
    EXPECT_EQ(rx.counters().samples, 3u);
    rx.stop();
}

// ---------------------------------------------------------------------
// Failure envelope
// ---------------------------------------------------------------------

TEST(RemoteWrite, ReceiverNeverUpStaysBoundedAndCountsDrops)
{
    // Grab a port that is definitely closed: bind, resolve, close.
    ReceiverServer probe(0);
    std::string error;
    ASSERT_TRUE(probe.start(&error)) << error;
    const int deadPort = probe.port();
    probe.stop();

    TelemetryHub hub;
    RemoteWriteOptions opts;
    opts.port = deadPort;
    opts.source = "lonely";
    opts.queueLimit = 2; // tiny on purpose: force the drop policy
    opts.drainDeadlineS = 0.2;
    opts.backoffBaseMs = 1;
    opts.backoffCapMs = 5;
    opts.ackTimeoutMs = 50;
    RemoteWriteShipper shipper(opts, &hub);
    ASSERT_TRUE(shipper.start(&error)) << error;

    shipper.observe(0);
    for (int i = 1; i <= 6; ++i) {
        hub.record("rack0.power", i * 1000, 50000.0 + i);
        shipper.snapshotNow(i * 1000);
    }

    const auto start = std::chrono::steady_clock::now();
    shipper.finish(7000);
    const double waited =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    // The drain deadline is hard: a dead receiver cannot stall
    // shutdown (generous margin for slow CI machines).
    EXPECT_LT(waited, 3.0);

    const auto c = shipper.counters();
    // batchesEnqueued counts batches the bounded queue accepted.
    // With the receiver down and queueLimit 2 the first two fit; the
    // sender may additionally pop one into flight (where it retries
    // until the hard stop), freeing exactly one more slot.
    EXPECT_GE(c.batchesEnqueued, 2u);
    EXPECT_LE(c.batchesEnqueued, 3u);
    EXPECT_EQ(c.batchesSent, 0u);
    EXPECT_EQ(c.batchesSpooled, 0u);
    // Every batch is accounted for: what the bounded queue shed plus
    // what the deadline abandoned equals the six cut.
    EXPECT_EQ(c.batchesDropped, 6u);
    EXPECT_GE(c.sendFailures, 1u);
}

TEST(RemoteWrite, SpoolsAcrossOutageAndReplaysInOrder)
{
    const std::string spool = "rw_outage_spool";
    removeSpoolDir(spool);

    // Phase 1: receiver up; first batch delivered live.
    auto rx = std::make_unique<ReceiverServer>(0);
    std::string error;
    ASSERT_TRUE(rx->start(&error)) << error;
    const int port = rx->port();

    TelemetryHub hub;
    RemoteWriteOptions opts;
    opts.port = port;
    opts.source = "survivor";
    opts.spoolDir = spool;
    opts.backoffBaseMs = 1;
    opts.backoffCapMs = 5;
    RemoteWriteShipper shipper(opts, &hub);
    ASSERT_TRUE(shipper.start(&error)) << error;

    shipper.observe(0);
    hub.record("rack0.power", 1000, 51000.0);
    shipper.snapshotNow(1000);
    ASSERT_TRUE(eventually(
        [&] { return shipper.counters().batchesSent == 1; }));

    // Phase 2: receiver dies mid-stream. Batches cut during the
    // outage land in the write-ahead spool, in order.
    rx->stop();
    rx.reset();
    for (int i = 2; i <= 4; ++i) {
        hub.record("rack0.power", i * 1000, 50000.0 + i);
        shipper.snapshotNow(i * 1000);
    }
    ASSERT_TRUE(eventually(
        [&] { return shipper.counters().batchesSpooled == 3; }));
    const auto files = spoolListing(spool);
    ASSERT_FALSE(files.empty());
    // The spool is a valid bare pad-rw-v1 stream (what padtrace rw
    // checks), with the outage batches in sequence order.
    std::string spooled;
    for (const auto &f : files)
        spooled += slurp(spool + "/" + f);
    RwStreamInfo info;
    ASSERT_TRUE(validateRwStream(spooled, &error, &info)) << error;
    EXPECT_FALSE(info.framed);
    EXPECT_EQ(info.batches, 3u);

    // Phase 3: receiver back on the same port; reconnect replays the
    // spool first, then live delivery resumes. Nothing lost, nothing
    // duplicated, order preserved.
    ReceiverServer rx2(port);
    ASSERT_TRUE(rx2.start(&error)) << error;
    hub.record("rack0.power", 5000, 50005.0);
    shipper.snapshotNow(5000);
    shipper.finish(5000);

    const auto c = shipper.counters();
    EXPECT_EQ(c.spoolReplayed, 3u);
    EXPECT_EQ(c.batchesDropped, 0u);
    // Receiver 2 missed the live batch (seq 0) but merged the spool
    // replay and everything after, gap-free from seq 1.
    const auto rc = rx2.counters();
    EXPECT_EQ(rc.batches, 4u);
    EXPECT_EQ(rc.duplicates, 0u);
    EXPECT_EQ(rc.protocolErrors, 0u);
    const std::string dump = rx2.dumpMerged();
    EXPECT_NE(dump.find("source survivor last_seq 4"),
              std::string::npos)
        << dump;
    // Replayed spool files are consumed.
    EXPECT_TRUE(spoolListing(spool).empty());

    rx2.stop();
    removeSpoolDir(spool);
}

TEST(RemoteWrite, CrashCutSpoolReplaysCompleteRecords)
{
    const std::string spool = "rw_crashcut_spool";
    removeSpoolDir(spool);
    ASSERT_EQ(::mkdir(spool.c_str(), 0755), 0);

    // A spool left behind by a crashed run: two whole batches and a
    // torn third record (the crash cut the write mid-line).
    const std::string l0 =
        renderRwBatchLine(sampleBatch("crashed", 0, 1000));
    const std::string l1 =
        renderRwBatchLine(sampleBatch("crashed", 1, 2000));
    {
        std::ofstream f(spool + "/rw_spool-0000.jsonl");
        f << l0 << "\n" << l1 << "\n"
          << l1.substr(0, l1.size() / 2);
    }

    ReceiverServer rx(0);
    std::string error;
    ASSERT_TRUE(rx.start(&error)) << error;

    // A fresh shipper adopting the crashed run's spool dir. Its own
    // source label differs, so the receiver tracks both runs'
    // sequence spaces independently.
    TelemetryHub hub;
    RemoteWriteOptions opts;
    opts.port = rx.port();
    opts.source = "fresh";
    opts.spoolDir = spool;
    RemoteWriteShipper shipper(opts, &hub);
    ASSERT_TRUE(shipper.start(&error)) << error;
    shipper.observe(0);
    hub.record("rack0.power", 1000, 51000.0);
    shipper.snapshotNow(1000);
    shipper.finish(1000);

    EXPECT_EQ(shipper.counters().spoolReplayed, 2u);
    EXPECT_EQ(shipper.counters().batchesDropped, 0u);
    const auto rc = rx.counters();
    EXPECT_EQ(rc.batches, 3u); // 2 replayed + 1 live
    EXPECT_EQ(rc.protocolErrors, 0u);
    EXPECT_EQ(rx.sourceCount(), 2u);
    const std::string dump = rx.dumpMerged();
    EXPECT_NE(dump.find("source crashed last_seq 1"),
              std::string::npos)
        << dump;
    EXPECT_NE(dump.find("source fresh last_seq 0"),
              std::string::npos);
    EXPECT_TRUE(spoolListing(spool).empty());

    rx.stop();
    removeSpoolDir(spool);
}

// ---------------------------------------------------------------------
// Concurrency (run under TSan in CI)
// ---------------------------------------------------------------------

TEST(RemoteWrite, ConcurrentSnapshotWhileSimSteps)
{
    ReceiverServer rx(0);
    std::string error;
    ASSERT_TRUE(rx.start(&error)) << error;

    TelemetryHub hub;
    RemoteWriteOptions opts;
    opts.port = rx.port();
    opts.source = "busy";
    RemoteWriteShipper shipper(opts, &hub);
    ASSERT_TRUE(shipper.start(&error)) << error;

    // A scrape thread hammers the cross-thread read paths while the
    // "sim thread" below records and cuts snapshots and the sender
    // and receiver threads move batches — the full four-thread
    // picture a live padd with --push-to runs.
    std::atomic<bool> done{false};
    std::thread scraper([&] {
        while (!done.load(std::memory_order_relaxed)) {
            (void)shipper.counters();
            (void)rx.renderMetrics();
            (void)rx.counters();
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
        }
    });

    shipper.observe(0);
    for (int step = 1; step <= 400; ++step) {
        const Tick now = step * 100;
        for (int r = 0; r < 4; ++r)
            hub.record("rack" + std::to_string(r) + ".power", now,
                       50000.0 + step + r);
        if (step % 25 == 0)
            shipper.snapshotNow(now);
        else
            shipper.observe(now);
    }
    sim::StatsRegistry stats;
    stats.registerScalar("demo.scalar", "d").set(1.0);
    shipper.finish(40000, &stats);
    done.store(true, std::memory_order_relaxed);
    scraper.join();

    EXPECT_EQ(shipper.counters().batchesDropped, 0u);
    EXPECT_EQ(rx.counters().samples, 1600u);
    EXPECT_EQ(rx.counters().protocolErrors, 0u);
    rx.stop();
}

// ---------------------------------------------------------------------
// Replay determinism through the push pipeline
// ---------------------------------------------------------------------

TEST(RemoteWrite, ReplayedSessionShipsIdenticalStream)
{
    using namespace pad::service;

    // Record a short headless daemon session that pushes while
    // running.
    ReceiverServer liveRx(0);
    std::string error;
    ASSERT_TRUE(liveRx.start(&error)) << error;

    DaemonOptions opts;
    opts.config.durationSec = 900.0;
    opts.config.seed = 11;
    opts.speed = 0.0;
    opts.metricsPort = -1;
    opts.controlPort = -1;
    opts.sessionPath = "rw_replay_session.jsonl";
    opts.pushTo = "127.0.0.1:" + std::to_string(liveRx.port());
    opts.pushIntervalS = 120.0;
    ServiceDaemon daemon(std::move(opts));
    ASSERT_TRUE(daemon.start(&error)) << error;
    daemon.run();
    EXPECT_EQ(daemon.result().commands, 0u);

    const auto log = readSessionFile("rw_replay_session.jsonl", &error);
    ASSERT_TRUE(log.has_value()) << error;

    // Replay the session twice, each into its own fresh receiver.
    auto replayInto = [&](ReceiverServer &rx) {
        ReplayArtifacts out;
        out.pushTo = "127.0.0.1:" + std::to_string(rx.port());
        out.pushIntervalS = 120.0;
        ASSERT_TRUE(replaySession(*log, out, &error)) << error;
    };
    ReceiverServer rxA(0), rxB(0);
    ASSERT_TRUE(rxA.start(&error)) << error;
    ASSERT_TRUE(rxB.start(&error)) << error;
    replayInto(rxA);
    replayInto(rxB);
    rxA.stop();
    rxB.stop();

    // Byte-identical merged state across the two replays — and
    // against the live run: batches are cut at sim-tick boundaries,
    // never wall-clock ones.
    const std::string a = rxA.dumpMerged();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, rxB.dumpMerged());
    liveRx.stop();
    EXPECT_EQ(a, liveRx.dumpMerged());
    EXPECT_EQ(rxA.counters().samples, liveRx.counters().samples);

    std::remove("rw_replay_session.jsonl");
}
