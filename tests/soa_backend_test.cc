/**
 * @file
 * SoA backend tests: the EngineBackend selection API (names, plans,
 * unsupported-configuration fallback) and the SoA engine's headline
 * determinism guarantee — sharding the per-second demand refresh
 * across worker threads is bit-identical to its own serial execution,
 * for coarse operation and for the fine-grained attack loop alike.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "attack/attacker.h"
#include "engine/backend.h"
#include "engine/soa_engine.h"
#include "runner/experiment.h"

using namespace pad;
using engine::BackendKind;

namespace {

// ---------------------------------------------------------------------
// Backend selection API
// ---------------------------------------------------------------------

TEST(EngineBackendApi, NamesRoundTrip)
{
    for (const BackendKind kind :
         {BackendKind::Baseline, BackendKind::Optimized,
          BackendKind::Soa}) {
        const auto parsed =
            engine::backendFromName(engine::backendName(kind));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, kind);
    }
    EXPECT_FALSE(engine::backendFromName("both").has_value());
    EXPECT_FALSE(engine::backendFromName("").has_value());
    EXPECT_FALSE(engine::backendFromName("SOA").has_value());
}

TEST(EngineBackendApi, PlansSizeTheRun)
{
    const core::DataCenterConfig cfg =
        runner::clusterConfig(core::SchemeKind::Pad);
    for (const BackendKind kind :
         {BackendKind::Baseline, BackendKind::Optimized,
          BackendKind::Soa}) {
        const engine::EnginePlan plan =
            engine::backendFor(kind).prepare(cfg);
        EXPECT_TRUE(plan.supported);
        EXPECT_EQ(plan.racks, cfg.racks);
        EXPECT_EQ(plan.servers, cfg.racks * cfg.serversPerRack);
        EXPECT_GE(plan.eventQueueCapacity,
                  static_cast<std::size_t>(cfg.racks));
    }
}

TEST(EngineBackendApi, PerServerPlacementFallsBackToScalar)
{
    core::DataCenterConfig cfg =
        runner::clusterConfig(core::SchemeKind::Pad);
    cfg.debPlacement =
        core::DataCenterConfig::DebPlacement::PerServer;

    const engine::EnginePlan plan =
        engine::backendFor(BackendKind::Soa).prepare(cfg);
    EXPECT_FALSE(plan.supported);
    EXPECT_FALSE(plan.note.empty());

    // makeClusterEngine degrades to the scalar Optimized engine
    // instead of failing the run.
    const runner::ClusterWorkload cw =
        runner::makeClusterWorkload(1.0);
    const auto engine = engine::makeClusterEngine(
        BackendKind::Soa, cfg, cw.workload.get());
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->kind(), BackendKind::Optimized);
}

TEST(EngineBackendApi, FactoriesBuildTheirKind)
{
    const core::DataCenterConfig cfg =
        runner::clusterConfig(core::SchemeKind::Pad);
    const runner::ClusterWorkload cw =
        runner::makeClusterWorkload(1.0);
    for (const BackendKind kind :
         {BackendKind::Baseline, BackendKind::Optimized,
          BackendKind::Soa}) {
        const auto engine =
            engine::makeClusterEngine(kind, cfg, cw.workload.get());
        ASSERT_NE(engine, nullptr);
        EXPECT_EQ(engine->kind(), kind);
        EXPECT_EQ(engine->now(), 0);
        EXPECT_EQ(engine->allSocs().size(),
                  static_cast<std::size_t>(cfg.racks));
    }
}

// ---------------------------------------------------------------------
// Sharded vs serial bit-identity
// ---------------------------------------------------------------------

class SoaSharding : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workload_ = new runner::ClusterWorkload(
            runner::makeClusterWorkload(2.0));
    }

    static void
    TearDownTestSuite()
    {
        delete workload_;
        workload_ = nullptr;
    }

    static std::unique_ptr<engine::SoaEngine>
    makeEngine(int shards)
    {
        const core::DataCenterConfig cfg =
            runner::clusterConfig(core::SchemeKind::Pad);
        const engine::EnginePlan plan =
            engine::backendFor(BackendKind::Soa).prepare(cfg);
        auto engine = std::make_unique<engine::SoaEngine>(
            cfg, workload_->workload.get(), plan.eventQueueCapacity);
        engine->setShards(shards);
        return engine;
    }

    static runner::ClusterWorkload *workload_;
};

runner::ClusterWorkload *SoaSharding::workload_ = nullptr;

TEST_F(SoaSharding, CoarseRunBitIdentical)
{
    auto serial = makeEngine(1);
    serial->setRecordHistory(true);
    serial->runCoarseUntil(12 * kTicksPerHour);

    for (const int shards : {2, 4, 7}) {
        auto sharded = makeEngine(shards);
        sharded->setRecordHistory(true);
        sharded->runCoarseUntil(12 * kTicksPerHour);
        EXPECT_EQ(sharded->allSocs(), serial->allSocs())
            << shards << " shards";
        EXPECT_EQ(sharded->socHistory(), serial->socHistory())
            << shards << " shards";
        EXPECT_EQ(sharded->shedHistory(), serial->shedHistory())
            << shards << " shards";
        EXPECT_EQ(sharded->socStdDevPercent(),
                  serial->socStdDevPercent())
            << shards << " shards";
    }
}

/** Warm up, attack, and capture everything comparable. */
struct AttackRun {
    core::AttackOutcome outcome;
    std::vector<double> socs;
    std::uint64_t detections = 0;
};

AttackRun
runShardedAttack(engine::SoaEngine &engine)
{
    engine.runCoarseUntil(kTicksPerDay +
                          static_cast<Tick>(11.0 * kTicksPerHour));
    attack::AttackerConfig ac;
    ac.controlledNodes = 4;
    attack::TwoPhaseAttacker attacker(ac);
    core::AttackScenario sc;
    sc.targetPolicy = core::TargetPolicy::MostVulnerable;
    sc.durationSec = 240.0;
    AttackRun run;
    run.outcome = engine.runAttack(attacker, sc);
    run.socs = engine.allSocs();
    run.detections = engine.detectionsFlagged();
    return run;
}

TEST_F(SoaSharding, AttackRunBitIdentical)
{
    auto serialEngine = makeEngine(1);
    const AttackRun serial = runShardedAttack(*serialEngine);

    for (const int shards : {3, 8}) {
        auto shardedEngine = makeEngine(shards);
        const AttackRun sharded = runShardedAttack(*shardedEngine);
        EXPECT_EQ(sharded.outcome.survivalSec,
                  serial.outcome.survivalSec)
            << shards << " shards";
        EXPECT_EQ(sharded.outcome.throughput,
                  serial.outcome.throughput)
            << shards << " shards";
        EXPECT_EQ(sharded.outcome.spikesLaunched,
                  serial.outcome.spikesLaunched)
            << shards << " shards";
        EXPECT_EQ(sharded.outcome.maxShedRatio,
                  serial.outcome.maxShedRatio)
            << shards << " shards";
        EXPECT_EQ(sharded.socs, serial.socs) << shards << " shards";
        EXPECT_EQ(sharded.detections, serial.detections)
            << shards << " shards";
    }
}

TEST_F(SoaSharding, ShardCountClampsToRacks)
{
    auto engine = makeEngine(10000);
    const core::DataCenterConfig cfg =
        runner::clusterConfig(core::SchemeKind::Pad);
    EXPECT_LE(engine->shards(), cfg.racks);
    EXPECT_GE(engine->shards(), 1);
    // Even the clamped maximum stays bit-identical to serial.
    engine->runCoarseUntil(4 * kTicksPerHour);
    auto serial = makeEngine(1);
    serial->runCoarseUntil(4 * kTicksPerHour);
    EXPECT_EQ(engine->allSocs(), serial->allSocs());
}

// ---------------------------------------------------------------------
// setAllSoc: scenario setup applies uniformly
// ---------------------------------------------------------------------

TEST_F(SoaSharding, SetAllSocAppliesUniformly)
{
    auto engine = makeEngine(1);
    engine->setAllSoc(0.5);
    for (const double soc : engine->allSocs())
        EXPECT_NEAR(soc, 0.5, 1e-12);
    EXPECT_NEAR(engine->socStdDevPercent(), 0.0, 1e-9);
}

} // namespace
