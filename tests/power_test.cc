/**
 * @file
 * Unit tests for the power substrate: server power model, circuit
 * breaker inverse-time curve, PDU budget enforcement, and the
 * interval-averaging power meter.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "power/circuit_breaker.h"
#include "power/pdu.h"
#include "power/power_meter.h"
#include "power/server_power_model.h"

namespace pad::power {
namespace {

ServerPowerConfig
dl585()
{
    return ServerPowerConfig{}; // paper defaults: 299 W / 521 W
}

TEST(ServerPowerModel, EndpointsMatchSpecpower)
{
    ServerPowerModel m(dl585());
    EXPECT_NEAR(m.power(0.0), 299.0, 1e-9);
    EXPECT_NEAR(m.power(1.0), 521.0, 1e-9);
}

TEST(ServerPowerModel, MonotonicInUtilization)
{
    ServerPowerModel m(dl585());
    double prev = -1.0;
    for (double u = 0.0; u <= 1.0; u += 0.05) {
        const double p = m.power(u);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(ServerPowerModel, CurveIsConcave)
{
    // SPECpower curves for this class rise faster at low load.
    ServerPowerModel m(dl585());
    const double low = m.power(0.25) - m.power(0.0);
    const double high = m.power(1.0) - m.power(0.75);
    EXPECT_GT(low, high);
}

TEST(ServerPowerModel, DvfsCapsPowerAndThroughput)
{
    ServerPowerModel m(dl585());
    EXPECT_LT(m.power(1.0, 0.8), m.power(1.0, 1.0));
    // A 20% frequency cut removes 20% of the dynamic range at full load.
    EXPECT_NEAR(m.power(1.0, 0.8), 299.0 + 0.8 * 222.0, 1e-9);
    // ... and slows all work proportionally.
    EXPECT_DOUBLE_EQ(m.executed(1.0, 0.8), 0.8);
    EXPECT_DOUBLE_EQ(m.executed(0.5, 0.8), 0.4);
}

TEST(ServerPowerModel, InverseMappingRoundTrips)
{
    ServerPowerModel m(dl585());
    for (double u : {0.1, 0.33, 0.5, 0.9}) {
        const double p = m.power(u);
        EXPECT_NEAR(m.utilizationFor(p), u, 1e-9);
    }
}

TEST(CircuitBreaker, HoldsIndefinitelyBelowHoldRatio)
{
    CircuitBreakerConfig cfg;
    cfg.ratedPower = 1000.0;
    CircuitBreaker cb("t.cb", cfg);
    for (int i = 0; i < 10000; ++i)
        EXPECT_FALSE(cb.observe(1040.0, 1.0));
    EXPECT_FALSE(cb.tripped());
    EXPECT_TRUE(std::isinf(cb.timeToTrip(1040.0)));
}

TEST(CircuitBreaker, TwentyFivePercentOverloadTripsInSeconds)
{
    CircuitBreakerConfig cfg;
    cfg.ratedPower = 1000.0;
    CircuitBreaker cb("t.cb", cfg);
    double elapsed = 0.0;
    while (!cb.tripped() && elapsed < 60.0) {
        cb.observe(1250.0, 0.1);
        elapsed += 0.1;
    }
    EXPECT_TRUE(cb.tripped());
    EXPECT_GT(elapsed, 2.0);
    EXPECT_LT(elapsed, 10.0);
    EXPECT_NEAR(cb.timeToTrip(1250.0), elapsed, 0.2);
}

TEST(CircuitBreaker, InverseTimeMonotonic)
{
    CircuitBreakerConfig cfg;
    cfg.ratedPower = 1000.0;
    CircuitBreaker cb("t.cb", cfg);
    double prev = std::numeric_limits<double>::infinity();
    for (double p = 1100.0; p < 4500.0; p += 200.0) {
        const double t = cb.timeToTrip(p);
        EXPECT_LT(t, prev);
        prev = t;
    }
}

TEST(CircuitBreaker, MagneticTripIsInstant)
{
    CircuitBreakerConfig cfg;
    cfg.ratedPower = 1000.0;
    CircuitBreaker cb("t.cb", cfg);
    EXPECT_TRUE(cb.observe(5000.0, 0.001));
    EXPECT_TRUE(cb.tripped());
    EXPECT_EQ(cb.tripCount(), 1);
}

TEST(CircuitBreaker, BriefOverloadsAreToleratedWithCooldown)
{
    CircuitBreakerConfig cfg;
    cfg.ratedPower = 1000.0;
    CircuitBreaker cb("t.cb", cfg);
    // A 1-second 40% overload once a minute never trips: the element
    // cools off fully in between.
    for (int i = 0; i < 60; ++i) {
        EXPECT_FALSE(cb.observe(1400.0, 1.0));
        cb.observe(800.0, 59.0);
    }
    EXPECT_FALSE(cb.tripped());
}

TEST(CircuitBreaker, ResetClearsState)
{
    CircuitBreakerConfig cfg;
    cfg.ratedPower = 1000.0;
    CircuitBreaker cb("t.cb", cfg);
    cb.observe(5000.0, 0.1);
    ASSERT_TRUE(cb.tripped());
    cb.reset();
    EXPECT_FALSE(cb.tripped());
    EXPECT_DOUBLE_EQ(cb.heat(), 0.0);
    EXPECT_EQ(cb.tripCount(), 1);
}

TEST(Pdu, OutletLimitsAndFeasibility)
{
    PduConfig cfg;
    cfg.budget = 10000.0;
    cfg.outlets = 4;
    Pdu pdu("t.pdu", cfg);
    for (std::size_t i = 0; i < 4; ++i)
        pdu.setOutletLimit(i, 2500.0);
    EXPECT_NEAR(pdu.totalOutletLimit(), 10000.0, 1e-9);
    EXPECT_TRUE(pdu.budgetFeasible(16000.0));
    // Eq. 2 violated when nameplate is below the budget.
    EXPECT_FALSE(pdu.budgetFeasible(9000.0));
}

TEST(Pdu, CountsSoftLimitViolations)
{
    PduConfig cfg;
    cfg.budget = 10000.0;
    cfg.outlets = 2;
    Pdu pdu("t.pdu", cfg);
    pdu.setOutletLimit(0, 3000.0);
    pdu.setOutletLimit(1, 3000.0);
    pdu.observe({3500.0, 2000.0}, 1.0);
    EXPECT_EQ(pdu.softLimitViolations(), 1u);
    EXPECT_NEAR(pdu.lastAggregateDraw(), 5500.0, 1e-9);
}

TEST(Pdu, AggregateOverloadTripsBreaker)
{
    PduConfig cfg;
    cfg.budget = 5000.0;
    cfg.outlets = 2;
    Pdu pdu("t.pdu", cfg);
    bool tripped = false;
    for (int i = 0; i < 100 && !tripped; ++i)
        tripped = pdu.observe({3500.0, 3500.0}, 0.5);
    EXPECT_TRUE(tripped);
    EXPECT_TRUE(pdu.breaker().tripped());
}

TEST(PowerMeter, AveragesOverInterval)
{
    PowerMeter meter("t.m", 10 * kTicksPerSecond);
    meter.observe(100.0, 5 * kTicksPerSecond);
    meter.observe(300.0, 5 * kTicksPerSecond);
    ASSERT_EQ(meter.readings().size(), 1u);
    EXPECT_NEAR(meter.readings()[0].average, 200.0, 1e-9);
}

TEST(PowerMeter, NarrowSpikeDilutesIntoLongInterval)
{
    PowerMeter meter("t.m", 60 * kTicksPerSecond);
    meter.observe(400.0, 59 * kTicksPerSecond);
    meter.observe(1000.0, 1 * kTicksPerSecond); // 1 s spike
    ASSERT_EQ(meter.readings().size(), 1u);
    EXPECT_NEAR(meter.readings()[0].average, 410.0, 1e-9);
}

TEST(PowerMeter, SplitsLongObservationsAcrossIntervals)
{
    PowerMeter meter("t.m", kTicksPerSecond);
    meter.observe(500.0, 5 * kTicksPerSecond + 500);
    EXPECT_EQ(meter.readings().size(), 5u);
    for (const auto &r : meter.readings())
        EXPECT_NEAR(r.average, 500.0, 1e-9);
    EXPECT_EQ(meter.now(), 5 * kTicksPerSecond + 500);
}

} // namespace
} // namespace pad::power
