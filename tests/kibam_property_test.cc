/**
 * @file
 * Randomized property tests for the KiBaM hot path, pinning the
 * physics invariants and — critically for the engine-tuning work —
 * the bit-identity contract between the optimized code paths
 * (coefficient cache, copy-free scalar crossing) and the original
 * formulas they replaced.
 */

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "battery/kibam.h"
#include "util/engine_tuning.h"

using namespace pad;
using battery::Kibam;
using battery::KibamParams;

namespace {

constexpr double kCapacity = 260640.0;

KibamParams
params()
{
    return KibamParams{kCapacity, 0.625, 4.5e-4};
}

/** Deterministic (soc, power, dt) sample grid for the property runs. */
struct Sample {
    double soc;
    Watts power;
    double dt;
};

std::vector<Sample>
randomSamples(std::size_t n, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> soc(0.01, 1.0);
    std::uniform_real_distribution<double> logPower(0.0, 4.0);
    std::vector<double> dts{0.1, 0.1, 0.1, 1.0, 300.0};
    std::uniform_int_distribution<std::size_t> dtPick(0,
                                                      dts.size() - 1);
    std::vector<Sample> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(Sample{soc(rng),
                             std::pow(10.0, logPower(rng)),
                             dts[dtPick(rng)]});
    return out;
}

// ---------------------------------------------------------------------
// Physics invariants (run under the default Optimized profile).
// ---------------------------------------------------------------------

TEST(KibamProperty, EnergyConservationAcrossStep)
{
    for (const Sample &s : randomSamples(500, 7)) {
        Kibam model(params());
        model.setSoc(s.soc);
        const Joules before = model.stored();
        const Joules delivered = model.step(s.power, s.dt);
        const Joules after = model.stored();
        // stored_before == stored_after + delivered, to within a
        // relative epsilon of the magnitudes involved.
        const double scale =
            std::max({std::abs(before), std::abs(after), 1.0});
        EXPECT_NEAR(before - after, delivered, 1e-9 * scale)
            << "soc=" << s.soc << " power=" << s.power
            << " dt=" << s.dt;
    }
}

TEST(KibamProperty, SocMonotoneNonIncreasingUnderDischarge)
{
    for (const Sample &s : randomSamples(200, 11)) {
        Kibam model(params());
        model.setSoc(s.soc);
        double prev = model.soc();
        for (int i = 0; i < 20; ++i) {
            model.step(s.power, s.dt);
            const double cur = model.soc();
            EXPECT_LE(cur, prev + 1e-12)
                << "soc=" << s.soc << " power=" << s.power
                << " dt=" << s.dt << " iter=" << i;
            prev = cur;
        }
    }
}

TEST(KibamProperty, MaxSustainablePowerIsSustainable)
{
    for (const Sample &s : randomSamples(300, 13)) {
        Kibam model(params());
        model.setSoc(s.soc);
        const Watts msp = model.maxSustainablePower(s.dt);
        ASSERT_GE(msp, 0.0);
        if (msp == 0.0)
            continue;
        // Drawing exactly the sustainable power must deliver the full
        // power * dt (no truncation) and leave the available well at
        // (numerically) zero: the step ends exactly at depletion.
        const Joules delivered = model.step(msp, s.dt);
        EXPECT_NEAR(delivered, msp * s.dt,
                    1e-6 * std::max(1.0, msp * s.dt));
        EXPECT_NEAR(model.available(), 0.0, 1e-6 * kCapacity);
    }
}

// ---------------------------------------------------------------------
// Bit-identity between tuned and original code paths.
// ---------------------------------------------------------------------

/** Run one full trajectory and collect exact state+delivery values. */
std::vector<double>
trajectory(const Sample &s)
{
    Kibam model(params());
    model.setSoc(s.soc);
    std::vector<double> out;
    for (int i = 0; i < 50; ++i) {
        out.push_back(model.step(s.power, s.dt));
        out.push_back(model.available());
        out.push_back(model.bound());
        out.push_back(model.maxSustainablePower(s.dt));
    }
    return out;
}

TEST(KibamBitIdentity, CachedCoefficientsMatchUncached)
{
    for (const Sample &s : randomSamples(300, 17)) {
        std::vector<double> tuned;
        std::vector<double> reference;
        {
            ScopedEngineProfile scope(EngineProfile::Optimized);
            tuned = trajectory(s);
        }
        {
            ScopedEngineProfile scope(EngineProfile::Baseline);
            reference = trajectory(s);
        }
        ASSERT_EQ(tuned.size(), reference.size());
        for (std::size_t i = 0; i < tuned.size(); ++i)
            ASSERT_EQ(tuned[i], reference[i])
                << "index " << i << " soc=" << s.soc
                << " power=" << s.power << " dt=" << s.dt;
    }
}

TEST(KibamBitIdentity, ScalarCrossingMatchesProbeBisection)
{
    // Overdraw cases: force the boundary-crossing branch of step()
    // and compare the copy-free scalar bisection against the original
    // whole-object probe loop.
    std::mt19937_64 rng(23);
    std::uniform_real_distribution<double> soc(0.02, 0.4);
    std::uniform_real_distribution<double> overdraw(1.5, 50.0);
    for (int i = 0; i < 300; ++i) {
        const double s = soc(rng);
        Kibam probe(params());
        probe.setSoc(s);
        const double dt = 300.0;
        const Watts power =
            overdraw(rng) * std::max(1.0, probe.maxSustainablePower(dt));

        Kibam tunedModel(params());
        tunedModel.setSoc(s);
        Kibam refModel(params());
        refModel.setSoc(s);

        double tunedDelivered;
        double refDelivered;
        {
            ScopedEngineProfile scope(EngineProfile::Optimized);
            tunedDelivered = tunedModel.step(power, dt);
        }
        {
            ScopedEngineProfile scope(EngineProfile::Baseline);
            refDelivered = refModel.step(power, dt);
        }
        ASSERT_EQ(tunedDelivered, refDelivered)
            << "soc=" << s << " power=" << power;
        ASSERT_EQ(tunedModel.available(), refModel.available());
        ASSERT_EQ(tunedModel.bound(), refModel.bound());
    }
}

TEST(KibamBitIdentity, NewtonCrossingWithinTolerance)
{
    // The opt-in Newton crossing may differ from the bisection only
    // by the golden tolerance (1 ns of crossing time), which bounds
    // the delivered-energy difference by power * tol.
    std::mt19937_64 rng(29);
    std::uniform_real_distribution<double> soc(0.02, 0.4);
    std::uniform_real_distribution<double> overdraw(1.5, 50.0);
    for (int i = 0; i < 200; ++i) {
        const double s = soc(rng);
        Kibam probe(params());
        probe.setSoc(s);
        const double dt = 300.0;
        const Watts power =
            overdraw(rng) * std::max(1.0, probe.maxSustainablePower(dt));

        Kibam newtonModel(params());
        newtonModel.setSoc(s);
        Kibam bisectModel(params());
        bisectModel.setSoc(s);

        double newtonDelivered;
        double bisectDelivered;
        {
            ScopedEngineProfile scope(EngineProfile::Optimized);
            engineTuning().kibamNewtonCrossing = true;
            newtonDelivered = newtonModel.step(power, dt);
        }
        {
            ScopedEngineProfile scope(EngineProfile::Optimized);
            bisectDelivered = bisectModel.step(power, dt);
        }
        const double tolJoules = power * 1e-9 + 1e-9;
        EXPECT_NEAR(newtonDelivered, bisectDelivered, tolJoules)
            << "soc=" << s << " power=" << power;
    }
}

} // namespace
