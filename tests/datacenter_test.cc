/**
 * @file
 * Integration tests for the full data-center simulation: normal
 * operation stays within budget, batteries engage at peaks, charge
 * policies differ, and attack outcomes order the schemes the way the
 * paper's evaluation does.
 */

#include <gtest/gtest.h>

#include "attack/attacker.h"
#include "core/config.h"
#include "core/datacenter.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"

namespace pad::core {
namespace {

/** Shared fixture: one synthetic workload reused across tests. */
class DataCenterTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        trace::SyntheticTraceConfig tc;
        tc.machines = 220;
        tc.days = 2.0;
        events_ = new std::vector<trace::TaskEvent>(
            trace::SyntheticGoogleTrace(tc).generate());
        workload_ = new trace::Workload(
            *events_, tc.machines,
            static_cast<Tick>(tc.days * kTicksPerDay));
    }

    static void
    TearDownTestSuite()
    {
        delete workload_;
        delete events_;
        workload_ = nullptr;
        events_ = nullptr;
    }

    static DataCenterConfig
    baseConfig(SchemeKind scheme)
    {
        DataCenterConfig cfg;
        cfg.scheme = scheme;
        cfg.deb = defaultDebConfig(cfg.rackNameplate());
        return cfg;
    }

    static AttackScenario
    scenario(const DataCenter &dc, double durationSec = 1200.0)
    {
        AttackScenario sc;
        sc.targetPolicy = TargetPolicy::Fixed;
        sc.targetRack = rackByLoadPercentile(
            *workload_, dc.config(), dc.now(), dc.now() + kTicksPerHour,
            80.0);
        sc.durationSec = durationSec;
        return sc;
    }

    static std::vector<trace::TaskEvent> *events_;
    static trace::Workload *workload_;
};

std::vector<trace::TaskEvent> *DataCenterTest::events_ = nullptr;
trace::Workload *DataCenterTest::workload_ = nullptr;

TEST_F(DataCenterTest, NormalOperationKeepsBatteriesMostlyCharged)
{
    DataCenter dc(baseConfig(SchemeKind::PS), workload_);
    dc.runCoarseUntil(kTicksPerDay);
    const auto socs = dc.allSocs();
    int healthy = 0;
    for (double s : socs)
        healthy += s > 0.5;
    // The large majority of racks never discharge deeply in a day.
    EXPECT_GE(healthy, static_cast<int>(socs.size()) - 4);
}

TEST_F(DataCenterTest, ConvNeverTouchesBatteries)
{
    DataCenter dc(baseConfig(SchemeKind::Conv), workload_);
    dc.runCoarseUntil(kTicksPerDay);
    for (double s : dc.allSocs())
        EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST_F(DataCenterTest, PeakShavingDrainsHotRacks)
{
    DataCenter dc(baseConfig(SchemeKind::PS), workload_);
    // Sample at the diurnal peak: overnight trickle charging would
    // otherwise have refilled the cabinets.
    dc.runCoarseUntil(15 * kTicksPerHour);
    double minSoc = 1.0;
    for (double s : dc.allSocs())
        minSoc = std::min(minSoc, s);
    // At least one rack had to shave its diurnal peak.
    EXPECT_LT(minSoc, 0.999);
}

TEST_F(DataCenterTest, VdebBalancesBatteryUsage)
{
    auto psCfg = baseConfig(SchemeKind::PS);
    auto vdCfg = baseConfig(SchemeKind::VdebOnly);
    DataCenter ps(psCfg, workload_);
    DataCenter vd(vdCfg, workload_);
    ps.runCoarseUntil(kTicksPerDay);
    vd.runCoarseUntil(kTicksPerDay);
    // Load sharing spreads discharge: the across-rack SOC variation
    // shrinks, which is exactly Fig. 13's claim.
    EXPECT_LE(vd.socStdDevPercent(), ps.socStdDevPercent() + 1e-9);
}

TEST_F(DataCenterTest, OfflineChargingIncreasesSocVariation)
{
    auto onCfg = baseConfig(SchemeKind::PS);
    onCfg.charge.kind = battery::ChargePolicyKind::Online;
    auto offCfg = baseConfig(SchemeKind::PS);
    offCfg.charge.kind = battery::ChargePolicyKind::Offline;
    DataCenter on(onCfg, workload_);
    DataCenter off(offCfg, workload_);
    on.setRecordHistory(true);
    off.setRecordHistory(true);
    on.runCoarseUntil(2 * kTicksPerDay);
    off.runCoarseUntil(2 * kTicksPerDay);

    // Time-averaged SOC spread (paper Fig. 5: offline charging
    // roughly doubles the variation).
    auto meanSpread = [](const DataCenter &dc) {
        double acc = 0.0;
        for (const auto &row : dc.socHistory()) {
            double mean = 0.0, var = 0.0;
            for (double s : row)
                mean += s;
            mean /= row.size();
            for (double s : row)
                var += (s - mean) * (s - mean);
            acc += std::sqrt(var / row.size());
        }
        return acc / dc.socHistory().size();
    };
    EXPECT_GT(meanSpread(off), meanSpread(on));
}

TEST_F(DataCenterTest, AttackSurvivalOrdersSchemes)
{
    // The paper's headline (Fig. 15): Conv dies first, PS/PSPC last
    // longer, PAD survives longest.
    double conv, ps, pad;
    {
        DataCenter dc(baseConfig(SchemeKind::Conv), workload_);
        dc.runCoarseUntil(kTicksPerDay + 13 * kTicksPerHour);
        attack::AttackerConfig ac;
        ac.controlledNodes = 4;
        attack::TwoPhaseAttacker atk(ac);
        conv = dc.runAttack(atk, scenario(dc)).survivalSec;
    }
    {
        DataCenter dc(baseConfig(SchemeKind::PS), workload_);
        dc.runCoarseUntil(kTicksPerDay + 13 * kTicksPerHour);
        attack::AttackerConfig ac;
        ac.controlledNodes = 4;
        attack::TwoPhaseAttacker atk(ac);
        ps = dc.runAttack(atk, scenario(dc)).survivalSec;
    }
    {
        DataCenter dc(baseConfig(SchemeKind::Pad), workload_);
        dc.runCoarseUntil(kTicksPerDay + 13 * kTicksPerHour);
        attack::AttackerConfig ac;
        ac.controlledNodes = 4;
        attack::TwoPhaseAttacker atk(ac);
        pad = dc.runAttack(atk, scenario(dc)).survivalSec;
    }
    EXPECT_LE(conv, ps);
    EXPECT_LE(ps, pad);
    EXPECT_LT(conv, pad);
}

TEST_F(DataCenterTest, AttackOutcomeRecordsSeries)
{
    DataCenter dc(baseConfig(SchemeKind::PS), workload_);
    dc.runCoarseUntil(kTicksPerDay + 13 * kTicksPerHour);
    attack::AttackerConfig ac;
    attack::TwoPhaseAttacker atk(ac);
    auto sc = scenario(dc, 300.0);
    const auto out = dc.runAttack(atk, sc);
    EXPECT_GT(out.rackPower.size(), 200u);
    EXPECT_GT(out.rackPower.maxValue(), dc.config().rackBudget());
    EXPECT_LE(out.rackSoc.maxValue(), 1.0 + 1e-9);
    EXPECT_GE(out.rackSoc.minValue(), 0.0);
}

TEST_F(DataCenterTest, PhaseTwoSpikeWindowsEnumerated)
{
    DataCenter dc(baseConfig(SchemeKind::PS), workload_);
    dc.runCoarseUntil(kTicksPerDay + 13 * kTicksPerHour);
    attack::AttackerConfig ac;
    ac.maxDrainSec = 100.0; // force an early Phase II
    ac.train = attack::SpikeTrain{1.0, 4.0, 1.0};
    attack::TwoPhaseAttacker atk(ac);
    auto sc = scenario(dc, 600.0);
    const auto out = dc.runAttack(atk, sc);
    ASSERT_GE(out.phaseTwoStartSec, 0.0);
    // ~4 spikes/min over the remaining ~490 s.
    EXPECT_GT(out.spikesLaunched, 20);
    EXPECT_LT(out.spikesLaunched, 40);
    for (const auto &[s, e] : out.spikeWindows)
        EXPECT_LT(s, e);
}

TEST_F(DataCenterTest, DutyCycleReducesAttackExposure)
{
    DataCenter a(baseConfig(SchemeKind::PS), workload_);
    DataCenter b(baseConfig(SchemeKind::PS), workload_);
    a.runCoarseUntil(kTicksPerDay + 13 * kTicksPerHour);
    b.runCoarseUntil(kTicksPerDay + 13 * kTicksPerHour);
    attack::AttackerConfig ac;
    attack::TwoPhaseAttacker atkFull(ac), atkDuty(ac);
    auto full = scenario(a, 600.0);
    auto duty = scenario(b, 600.0);
    duty.dutyCycle = 0.25;
    const auto outFull = a.runAttack(atkFull, full);
    const auto outDuty = b.runAttack(atkDuty, duty);
    EXPECT_LE(outFull.survivalSec, outDuty.survivalSec + 1e-9);
}

TEST_F(DataCenterTest, SetAllSocAndVulnerableRack)
{
    DataCenter dc(baseConfig(SchemeKind::PS), workload_);
    dc.setAllSoc(0.9);
    for (double s : dc.allSocs())
        EXPECT_NEAR(s, 0.9, 1e-9);
    EXPECT_NEAR(dc.socStdDevPercent(), 0.0, 1e-9);
    EXPECT_EQ(dc.medianSocRack() >= 0, true);
}

TEST_F(DataCenterTest, HistoryRecordingAlignsWithSteps)
{
    DataCenter dc(baseConfig(SchemeKind::PS), workload_);
    dc.setRecordHistory(true);
    dc.runCoarseUntil(2 * kTicksPerHour);
    EXPECT_EQ(dc.socHistory().size(), 24u); // 2 h / 5 min
    EXPECT_EQ(dc.shedHistory().size(), 24u);
    for (const auto &row : dc.socHistory())
        EXPECT_EQ(row.size(), 22u);
}

TEST_F(DataCenterTest, RackByLoadPercentileOrdersByPower)
{
    const auto cfg = baseConfig(SchemeKind::PS);
    const int cool = rackByLoadPercentile(*workload_, cfg, 0,
                                          kTicksPerDay, 0.0);
    const int hot = rackByLoadPercentile(*workload_, cfg, 0,
                                         kTicksPerDay, 100.0);
    EXPECT_NE(cool, hot);
    // Verify the hot rack really demands more on average.
    double coolP = 0.0, hotP = 0.0;
    for (int s = 0; s < 10; ++s) {
        coolP += workload_->machineMeanUtil(cool * 10 + s);
        hotP += workload_->machineMeanUtil(hot * 10 + s);
    }
    EXPECT_GT(hotP, coolP);
}

} // namespace
} // namespace pad::core
