/**
 * @file
 * Engine-backend parity tests. Two contracts, two strengths:
 *
 *  - Baseline vs Optimized (scalar engine, tuning switches off/on):
 *    bit-identical. Every optimization gated on EngineTuning is
 *    value-preserving, so the same experiment run under both
 *    backends must produce exactly equal results — plus event-queue
 *    ordering stability under the pooled allocator.
 *  - Scalar vs SoA: physically equivalent, not bit-identical. The
 *    SoA engine sums rack power benign-first and accounts throughput
 *    per rack, so floating-point folds reorder by design; the tests
 *    assert the physical invariants instead (SoC bounds, SoC / shed
 *    trajectories within tight tolerance, survival-time and
 *    throughput agreement within tolerance).
 *
 * Backends are selected through the explicit Experiment::backend
 * field — the API that replaced the deprecated process-global
 * setEngineProfile() switch.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "engine/backend.h"
#include "runner/experiment.h"
#include "sim/event_queue.h"
#include "util/engine_tuning.h"

using namespace pad;

namespace {

// ---------------------------------------------------------------------
// EventQueue: pooled vs heap allocation
// ---------------------------------------------------------------------

/**
 * Drive one deterministic schedule/cancel/reschedule script and
 * record the firing order. Same-tick events carry distinct ids so
 * the order exposes any instability.
 */
std::vector<int>
eventScript()
{
    sim::EventQueue q;
    std::vector<int> fired;
    std::vector<sim::EventHandle> handles;

    // A burst of same-timestamp events across priorities.
    for (int i = 0; i < 40; ++i)
        handles.push_back(q.schedule(
            10, [&fired, i] { fired.push_back(i); },
            static_cast<sim::EventPriority>(i % 4)));
    // Cancel a few mid-burst (forces pooled entries back to the free
    // list before anything fires).
    q.cancel(handles[3]);
    q.cancel(handles[17]);
    q.cancel(handles[36]);
    // Reschedule on the same tick: pooled mode recycles the freed
    // entries; order must still be insertion order within priority.
    for (int i = 100; i < 106; ++i)
        q.schedule(10, [&fired, i] { fired.push_back(i); });
    // Self-rescheduling callback, exercising allocation while firing.
    q.schedule(5, [&] {
        q.schedule(10, [&fired] { fired.push_back(-1); });
    });
    q.runUntil(20);
    EXPECT_TRUE(q.empty());
    return fired;
}

TEST(EngineParity, EventQueueOrderingStableUnderPooling)
{
    std::vector<int> pooled;
    std::vector<int> heaped;
    {
        ScopedEngineProfile scope(EngineProfile::Optimized);
        pooled = eventScript();
    }
    {
        ScopedEngineProfile scope(EngineProfile::Baseline);
        heaped = eventScript();
    }
    EXPECT_EQ(pooled, heaped);

    // Within one priority class, same-tick events fire in insertion
    // order; the cancelled ids never fire.
    std::vector<int> controlOrder;
    for (int id : pooled)
        if (id >= 0 && id < 40 && id % 4 == 1)
            controlOrder.push_back(id);
    std::vector<int> expected;
    for (int i = 1; i < 40; i += 4)
        if (i != 17)
            expected.push_back(i);
    EXPECT_EQ(controlOrder, expected);
    for (int id : pooled)
        EXPECT_TRUE(id != 3 && id != 17 && id != 36);
}

TEST(EngineParity, EventQueueReserveAndBoundsSurviveReuse)
{
    ScopedEngineProfile scope(EngineProfile::Optimized);
    sim::EventQueue q;
    q.reserve(4096);
    int sink = 0;
    // Several generations through the free list, far past one block.
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 2000; ++i)
            q.schedule(q.now() + 1 + i % 7,
                       [&sink] { ++sink; });
        q.runUntil(q.now() + 10);
        EXPECT_TRUE(q.empty());
    }
    EXPECT_EQ(sink, 8000);
    EXPECT_EQ(q.executed(), 8000u);
}

// ---------------------------------------------------------------------
// DataCenter: Baseline vs Optimized full-simulation parity
// ---------------------------------------------------------------------

class DataCenterParity : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workload_ = new runner::ClusterWorkload(
            runner::makeClusterWorkload(2.0));
    }

    static void
    TearDownTestSuite()
    {
        delete workload_;
        workload_ = nullptr;
    }

    static runner::ClusterWorkload *workload_;
};

runner::ClusterWorkload *DataCenterParity::workload_ = nullptr;

/** Run one experiment on an explicit backend. */
runner::ExperimentResult
runOn(runner::Experiment e, engine::BackendKind backend)
{
    e.backend = backend;
    return runner::runExperiment(e);
}

TEST_F(DataCenterParity, AttackRunBitIdentical)
{
    runner::ClusterAttackSpec spec;
    spec.durationSec = 120.0;
    const runner::Experiment e =
        runner::Experiment::clusterAttack(spec, *workload_);

    const runner::ExperimentResult tuned =
        runOn(e, engine::BackendKind::Optimized);
    const runner::ExperimentResult reference =
        runOn(e, engine::BackendKind::Baseline);

    EXPECT_EQ(tuned.attackOutcome.survivalSec,
              reference.attackOutcome.survivalSec);
    EXPECT_EQ(tuned.attackOutcome.throughput,
              reference.attackOutcome.throughput);
    EXPECT_EQ(tuned.attackOutcome.spikesLaunched,
              reference.attackOutcome.spikesLaunched);
    EXPECT_EQ(tuned.attackOutcome.spikeWindows,
              reference.attackOutcome.spikeWindows);
    EXPECT_EQ(tuned.telemetry.detections, reference.telemetry.detections);
    EXPECT_EQ(tuned.telemetry.socStdDevPercent,
              reference.telemetry.socStdDevPercent);
    ASSERT_EQ(tuned.telemetry.socs.size(),
              reference.telemetry.socs.size());
    for (std::size_t i = 0; i < tuned.telemetry.socs.size(); ++i)
        EXPECT_EQ(tuned.telemetry.socs[i], reference.telemetry.socs[i])
            << "rack " << i;
}

TEST_F(DataCenterParity, CoarseHistoryBitIdentical)
{
    runner::ClusterCoarseSpec spec;
    spec.untilHours = 8.0;
    spec.recordHistory = true;
    const runner::Experiment e =
        runner::Experiment::clusterCoarse(spec, *workload_);

    const runner::ExperimentResult tuned =
        runOn(e, engine::BackendKind::Optimized);
    const runner::ExperimentResult reference =
        runOn(e, engine::BackendKind::Baseline);

    EXPECT_EQ(tuned.telemetry.socHistory,
              reference.telemetry.socHistory);
    EXPECT_EQ(tuned.telemetry.shedHistory,
              reference.telemetry.shedHistory);
}

// ---------------------------------------------------------------------
// Scalar vs SoA: physical-invariant parity
// ---------------------------------------------------------------------

TEST_F(DataCenterParity, SoaCoarseTrajectoriesMatchScalar)
{
    runner::ClusterCoarseSpec spec;
    spec.untilHours = 8.0;
    spec.recordHistory = true;
    const runner::Experiment e =
        runner::Experiment::clusterCoarse(spec, *workload_);

    const runner::ExperimentResult scalar =
        runOn(e, engine::BackendKind::Baseline);
    const runner::ExperimentResult soa =
        runOn(e, engine::BackendKind::Soa);

    // SoC stays physical everywhere.
    for (const double soc : soa.telemetry.socs) {
        EXPECT_GE(soc, 0.0);
        EXPECT_LE(soc, 1.0 + 1e-12);
    }

    // The SoA engine walks the same physics with reordered rack
    // sums, so coarse SOC/shed trajectories track the scalar ones to
    // floating-point noise, step by step.
    ASSERT_EQ(soa.telemetry.socHistory.size(),
              scalar.telemetry.socHistory.size());
    for (std::size_t step = 0;
         step < scalar.telemetry.socHistory.size(); ++step) {
        const auto &a = soa.telemetry.socHistory[step];
        const auto &b = scalar.telemetry.socHistory[step];
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t r = 0; r < a.size(); ++r)
            EXPECT_NEAR(a[r], b[r], 1e-6)
                << "step " << step << " rack " << r;
    }
    ASSERT_EQ(soa.telemetry.shedHistory.size(),
              scalar.telemetry.shedHistory.size());
    for (std::size_t step = 0;
         step < scalar.telemetry.shedHistory.size(); ++step)
        EXPECT_NEAR(soa.telemetry.shedHistory[step],
                    scalar.telemetry.shedHistory[step], 1e-6)
            << "step " << step;
}

TEST_F(DataCenterParity, SoaAttackOutcomePhysicallyEquivalent)
{
    runner::ClusterAttackSpec spec;
    spec.durationSec = 240.0;
    const runner::Experiment e =
        runner::Experiment::clusterAttack(spec, *workload_);

    const runner::ExperimentResult scalar =
        runOn(e, engine::BackendKind::Optimized);
    const runner::ExperimentResult soa =
        runOn(e, engine::BackendKind::Soa);

    // SoC bounds after the attack window.
    ASSERT_EQ(soa.telemetry.socs.size(),
              scalar.telemetry.socs.size());
    for (const double soc : soa.telemetry.socs) {
        EXPECT_GE(soc, 0.0);
        EXPECT_LE(soc, 1.0 + 1e-12);
    }

    // The attack schedule is attacker-side state, independent of the
    // engine's floating-point fold order.
    EXPECT_EQ(soa.attackOutcome.spikesLaunched,
              scalar.attackOutcome.spikesLaunched);
    EXPECT_EQ(soa.attackOutcome.spikeWindows,
              scalar.attackOutcome.spikeWindows);
    EXPECT_EQ(soa.attackOutcome.phaseTwoStartSec,
              scalar.attackOutcome.phaseTwoStartSec);

    // Survival and throughput agree within tolerance: the reordered
    // sums can shift a threshold crossing by a tick or two, not by
    // whole phases.
    const double window = spec.durationSec;
    EXPECT_NEAR(soa.attackOutcome.survivalSec,
                scalar.attackOutcome.survivalSec, 0.05 * window);
    EXPECT_NEAR(soa.attackOutcome.throughput,
                scalar.attackOutcome.throughput, 0.02);
    EXPECT_NEAR(soa.attackOutcome.maxShedRatio,
                scalar.attackOutcome.maxShedRatio, 0.02);

    // Per-rack end state tracks the scalar engine tightly.
    for (std::size_t r = 0; r < soa.telemetry.socs.size(); ++r)
        EXPECT_NEAR(soa.telemetry.socs[r], scalar.telemetry.socs[r],
                    1e-3)
            << "rack " << r;
}

TEST_F(DataCenterParity, SoaWearMatchesScalarPerRack)
{
    runner::ClusterAttackSpec spec;
    spec.durationSec = 240.0;
    const runner::Experiment e =
        runner::Experiment::clusterAttack(spec, *workload_);

    const runner::ExperimentResult scalar =
        runOn(e, engine::BackendKind::Optimized);
    const runner::ExperimentResult soa =
        runOn(e, engine::BackendKind::Soa);

    const auto wearOf = [](const runner::ExperimentResult &r) {
        std::vector<double> wear;
        r.stats->forEachVector(
            [&](const std::string &name,
                const std::vector<double> &values, const std::string &) {
                if (name == "deb.wear")
                    wear = values;
            });
        return wear;
    };
    const std::vector<double> a = wearOf(scalar);
    const std::vector<double> b = wearOf(soa);

    // The SoA engine replicates the scalar AgingModel arithmetic per
    // rack (it has no BatteryUnit objects), so deb.wear must agree
    // to floating-point noise — and must not be the all-zero vector
    // the SoA backend exported before aging was wired in.
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    double totalWear = 0.0;
    for (std::size_t r = 0; r < a.size(); ++r) {
        EXPECT_NEAR(b[r], a[r], 1e-6) << "rack " << r;
        totalWear += b[r];
    }
    EXPECT_GT(totalWear, 0.0);
}

} // namespace
