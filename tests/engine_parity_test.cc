/**
 * @file
 * Engine-profile parity tests: every optimization gated on
 * EngineTuning must leave simulation results bit-identical to the
 * Baseline (pre-optimization) code paths. These tests run the same
 * experiments under both profiles and require exact equality, plus
 * event-queue ordering stability under the pooled allocator.
 */

#include <vector>

#include <gtest/gtest.h>

#include "runner/experiment.h"
#include "sim/event_queue.h"
#include "util/engine_tuning.h"

using namespace pad;

namespace {

// ---------------------------------------------------------------------
// EventQueue: pooled vs heap allocation
// ---------------------------------------------------------------------

/**
 * Drive one deterministic schedule/cancel/reschedule script and
 * record the firing order. Same-tick events carry distinct ids so
 * the order exposes any instability.
 */
std::vector<int>
eventScript()
{
    sim::EventQueue q;
    std::vector<int> fired;
    std::vector<sim::EventHandle> handles;

    // A burst of same-timestamp events across priorities.
    for (int i = 0; i < 40; ++i)
        handles.push_back(q.schedule(
            10, [&fired, i] { fired.push_back(i); },
            static_cast<sim::EventPriority>(i % 4)));
    // Cancel a few mid-burst (forces pooled entries back to the free
    // list before anything fires).
    q.cancel(handles[3]);
    q.cancel(handles[17]);
    q.cancel(handles[36]);
    // Reschedule on the same tick: pooled mode recycles the freed
    // entries; order must still be insertion order within priority.
    for (int i = 100; i < 106; ++i)
        q.schedule(10, [&fired, i] { fired.push_back(i); });
    // Self-rescheduling callback, exercising allocation while firing.
    q.schedule(5, [&] {
        q.schedule(10, [&fired] { fired.push_back(-1); });
    });
    q.runUntil(20);
    EXPECT_TRUE(q.empty());
    return fired;
}

TEST(EngineParity, EventQueueOrderingStableUnderPooling)
{
    std::vector<int> pooled;
    std::vector<int> heaped;
    {
        ScopedEngineProfile scope(EngineProfile::Optimized);
        pooled = eventScript();
    }
    {
        ScopedEngineProfile scope(EngineProfile::Baseline);
        heaped = eventScript();
    }
    EXPECT_EQ(pooled, heaped);

    // Within one priority class, same-tick events fire in insertion
    // order; the cancelled ids never fire.
    std::vector<int> controlOrder;
    for (int id : pooled)
        if (id >= 0 && id < 40 && id % 4 == 1)
            controlOrder.push_back(id);
    std::vector<int> expected;
    for (int i = 1; i < 40; i += 4)
        if (i != 17)
            expected.push_back(i);
    EXPECT_EQ(controlOrder, expected);
    for (int id : pooled)
        EXPECT_TRUE(id != 3 && id != 17 && id != 36);
}

TEST(EngineParity, EventQueueReserveAndBoundsSurviveReuse)
{
    ScopedEngineProfile scope(EngineProfile::Optimized);
    sim::EventQueue q;
    q.reserve(4096);
    int sink = 0;
    // Several generations through the free list, far past one block.
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 2000; ++i)
            q.schedule(q.now() + 1 + i % 7,
                       [&sink] { ++sink; });
        q.runUntil(q.now() + 10);
        EXPECT_TRUE(q.empty());
    }
    EXPECT_EQ(sink, 8000);
    EXPECT_EQ(q.executed(), 8000u);
}

// ---------------------------------------------------------------------
// DataCenter: Baseline vs Optimized full-simulation parity
// ---------------------------------------------------------------------

class DataCenterParity : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workload_ = new runner::ClusterWorkload(
            runner::makeClusterWorkload(2.0));
    }

    static void
    TearDownTestSuite()
    {
        delete workload_;
        workload_ = nullptr;
    }

    static runner::ClusterWorkload *workload_;
};

runner::ClusterWorkload *DataCenterParity::workload_ = nullptr;

TEST_F(DataCenterParity, AttackRunBitIdentical)
{
    runner::ClusterAttackSpec spec;
    spec.durationSec = 120.0;
    const runner::Experiment e =
        runner::Experiment::clusterAttack(spec, *workload_);

    runner::ExperimentResult tuned;
    runner::ExperimentResult reference;
    {
        ScopedEngineProfile scope(EngineProfile::Optimized);
        tuned = runner::runExperiment(e);
    }
    {
        ScopedEngineProfile scope(EngineProfile::Baseline);
        reference = runner::runExperiment(e);
    }

    EXPECT_EQ(tuned.attackOutcome.survivalSec,
              reference.attackOutcome.survivalSec);
    EXPECT_EQ(tuned.attackOutcome.throughput,
              reference.attackOutcome.throughput);
    EXPECT_EQ(tuned.attackOutcome.spikesLaunched,
              reference.attackOutcome.spikesLaunched);
    EXPECT_EQ(tuned.attackOutcome.spikeWindows,
              reference.attackOutcome.spikeWindows);
    EXPECT_EQ(tuned.telemetry.detections, reference.telemetry.detections);
    EXPECT_EQ(tuned.telemetry.socStdDevPercent,
              reference.telemetry.socStdDevPercent);
    ASSERT_EQ(tuned.telemetry.socs.size(),
              reference.telemetry.socs.size());
    for (std::size_t i = 0; i < tuned.telemetry.socs.size(); ++i)
        EXPECT_EQ(tuned.telemetry.socs[i], reference.telemetry.socs[i])
            << "rack " << i;
}

TEST_F(DataCenterParity, CoarseHistoryBitIdentical)
{
    runner::ClusterCoarseSpec spec;
    spec.untilHours = 8.0;
    spec.recordHistory = true;
    const runner::Experiment e =
        runner::Experiment::clusterCoarse(spec, *workload_);

    runner::ExperimentResult tuned;
    runner::ExperimentResult reference;
    {
        ScopedEngineProfile scope(EngineProfile::Optimized);
        tuned = runner::runExperiment(e);
    }
    {
        ScopedEngineProfile scope(EngineProfile::Baseline);
        reference = runner::runExperiment(e);
    }

    EXPECT_EQ(tuned.telemetry.socHistory,
              reference.telemetry.socHistory);
    EXPECT_EQ(tuned.telemetry.shedHistory,
              reference.telemetry.shedHistory);
}

} // namespace
