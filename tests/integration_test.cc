/**
 * @file
 * Cross-module integration tests: attacker learning rounds against
 * the full data center, power-accounting invariants inside attack
 * windows, breaker-trip outages, and ablation trait overrides.
 */

#include <gtest/gtest.h>

#include "attack/attacker.h"
#include "core/config.h"
#include "core/datacenter.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"

namespace pad::core {
namespace {

class IntegrationTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        trace::SyntheticTraceConfig tc;
        tc.machines = 220;
        tc.days = 2.0;
        events_ = new std::vector<trace::TaskEvent>(
            trace::SyntheticGoogleTrace(tc).generate());
        workload_ = new trace::Workload(*events_, tc.machines,
                                        2 * kTicksPerDay);
    }

    static void
    TearDownTestSuite()
    {
        delete workload_;
        delete events_;
        workload_ = nullptr;
        events_ = nullptr;
    }

    static DataCenterConfig
    config(SchemeKind scheme)
    {
        DataCenterConfig cfg;
        cfg.scheme = scheme;
        cfg.clusterBudgetFraction = 0.70;
        cfg.deb = defaultDebConfig(cfg.rackNameplate());
        return cfg;
    }

    static AttackScenario
    scenario(const DataCenter &dc, double durationSec)
    {
        AttackScenario sc;
        sc.targetPolicy = TargetPolicy::Fixed;
        sc.targetRack = rackByLoadPercentile(
            *workload_, dc.config(), dc.now(),
            dc.now() + kTicksPerHour, 85.0);
        sc.durationSec = durationSec;
        return sc;
    }

    static std::vector<trace::TaskEvent> *events_;
    static trace::Workload *workload_;
};

std::vector<trace::TaskEvent> *IntegrationTest::events_ = nullptr;
trace::Workload *IntegrationTest::workload_ = nullptr;

TEST_F(IntegrationTest, AttackerLearnsThroughCappingSideChannel)
{
    // Against a capping (PSPC) data center the attacker's Phase-I
    // drain produces an observable throttle: Phase II must begin
    // well before the maxDrain fallback.
    DataCenter dc(config(SchemeKind::PSPC), workload_);
    dc.runCoarseUntil(kTicksPerDay + 10 * kTicksPerHour);
    attack::AttackerConfig ac;
    ac.controlledNodes = 4;
    ac.prepareSec = 30.0;
    ac.maxDrainSec = 1500.0;
    attack::TwoPhaseAttacker attacker(ac);
    // The hottest rack: its drain excess is large enough that the
    // runtime-estimate capping fires well inside the window.
    auto sc = scenario(dc, 2000.0);
    sc.targetRack = rackByLoadPercentile(
        *workload_, dc.config(), dc.now(), dc.now() + kTicksPerHour,
        100.0);
    dc.runAttack(attacker, sc);
    ASSERT_EQ(attacker.phase(), attack::TwoPhaseAttacker::Phase::Spike);
    EXPECT_LT(attacker.phaseTwoStartSec(), 1500.0);
    EXPECT_GT(attacker.learnedAutonomySec(), 0.0);
    EXPECT_EQ(attacker.autonomySamples().size(), 1u);
}

TEST_F(IntegrationTest, MultiRoundLearningCollectsSamples)
{
    DataCenter dc(config(SchemeKind::PSPC), workload_);
    dc.runCoarseUntil(kTicksPerDay + 10 * kTicksPerHour);
    attack::AttackerConfig ac;
    ac.controlledNodes = 4;
    ac.prepareSec = 30.0;
    ac.maxDrainSec = 900.0;
    ac.learnRounds = 3;
    ac.recoverSec = 120.0;
    attack::TwoPhaseAttacker attacker(ac);
    dc.runAttack(attacker, scenario(dc, 4000.0));
    // All rounds completed (by signal or fallback) and at least the
    // first one yielded a measurement.
    EXPECT_EQ(attacker.phase(), attack::TwoPhaseAttacker::Phase::Spike);
    EXPECT_GE(attacker.autonomySamples().size(), 1u);
    EXPECT_LE(attacker.autonomySamples().size(), 3u);
}

TEST_F(IntegrationTest, AttackerRecoverPhaseGoesQuiet)
{
    attack::AttackerConfig ac;
    ac.prepareSec = 0.0;
    ac.learnRounds = 2;
    ac.recoverSec = 100.0;
    ac.cappingConfirmSec = 2.0;
    attack::TwoPhaseAttacker attacker(ac);
    attacker.advance(0.0);
    // Confirmed throttling ends round 1 -> Recover.
    attacker.observePerformance(10.0, 0.8, 1.0);
    attacker.observePerformance(11.0, 0.8, 1.0);
    ASSERT_EQ(attacker.phase(),
              attack::TwoPhaseAttacker::Phase::Recover);
    EXPECT_LT(attacker.demandedUtil(0, 15.0), 0.5);
    // After the pause the drain resumes.
    attacker.advance(120.0);
    EXPECT_EQ(attacker.phase(), attack::TwoPhaseAttacker::Phase::Drain);
    EXPECT_DOUBLE_EQ(attacker.demandedUtil(0, 121.0), 1.0);
}

TEST_F(IntegrationTest, DrawNeverExceedsDemand)
{
    // Batteries can only subtract power: utility draw <= demand at
    // every recorded control period, for every scheme.
    for (SchemeKind scheme :
         {SchemeKind::Conv, SchemeKind::PS, SchemeKind::Pad}) {
        DataCenter dc(config(scheme), workload_);
        dc.runCoarseUntil(kTicksPerDay + 11 * kTicksPerHour);
        attack::AttackerConfig ac;
        ac.controlledNodes = 4;
        attack::TwoPhaseAttacker attacker(ac);
        const auto out = dc.runAttack(attacker, scenario(dc, 300.0));
        for (const auto &s : out.rackDraw.samples()) {
            EXPECT_LE(s.value, out.rackPower.valueAt(s.when) + 1e-6)
                << schemeName(scheme);
        }
    }
}

TEST_F(IntegrationTest, ConvDrawEqualsDemand)
{
    DataCenter dc(config(SchemeKind::Conv), workload_);
    dc.runCoarseUntil(kTicksPerDay + 11 * kTicksPerHour);
    attack::AttackerConfig ac;
    attack::TwoPhaseAttacker attacker(ac);
    const auto out = dc.runAttack(attacker, scenario(dc, 120.0));
    for (const auto &s : out.rackDraw.samples())
        EXPECT_NEAR(s.value, out.rackPower.valueAt(s.when), 1e-6);
}

TEST_F(IntegrationTest, BreakerTripCausesOutageAndThroughputLoss)
{
    // Force trips fast: a hair-trigger breaker on a Conv cluster
    // under full attack.
    DataCenterConfig cfg = config(SchemeKind::Conv);
    cfg.rackBreaker.thermalCapacity = 0.05;
    cfg.outageRecoverySec = 120.0;
    DataCenter dc(cfg, workload_);
    dc.runCoarseUntil(kTicksPerDay + 11 * kTicksPerHour);
    attack::AttackerConfig ac;
    ac.controlledNodes = 4;
    ac.prepareSec = 5.0;
    attack::TwoPhaseAttacker attacker(ac);
    const auto out = dc.runAttack(attacker, scenario(dc, 600.0));
    ASSERT_NE(out.rack.firstTripTick(), kTickNever);
    // The dark rack loses benign work.
    EXPECT_LT(out.throughput, 0.999);
    // While dark, the victim's draw collapses.
    EXPECT_LT(out.rackDraw.minValue(), 100.0);
}

TEST_F(IntegrationTest, TraitsOverrideChangesBehaviour)
{
    // PSPC with sharing bolted on (no Table III scheme) must engage
    // the pool: the victim's own battery drains less than under
    // plain PSPC.
    DataCenterConfig plain = config(SchemeKind::PSPC);
    DataCenterConfig hybrid = config(SchemeKind::PSPC);
    hybrid.overrideTraits = true;
    hybrid.traits = schemeTraits(SchemeKind::PSPC);
    hybrid.traits.vdebSharing = true;

    auto run = [&](const DataCenterConfig &cfg) {
        DataCenter dc(cfg, workload_);
        dc.runCoarseUntil(kTicksPerDay + 10 * kTicksPerHour);
        attack::AttackerConfig ac;
        ac.controlledNodes = 4;
        attack::TwoPhaseAttacker attacker(ac);
        const auto sc = scenario(dc, 400.0);
        const auto out = dc.runAttack(attacker, sc);
        return out.rackSoc.lastValue();
    };
    EXPECT_GT(run(hybrid), run(plain));
}

TEST_F(IntegrationTest, MultiVictimAttackTracksWorstRack)
{
    DataCenter dc(config(SchemeKind::Conv), workload_);
    dc.runCoarseUntil(kTicksPerDay + 11 * kTicksPerHour);
    attack::AttackerConfig ac;
    ac.controlledNodes = 4;
    ac.prepareSec = 5.0;
    attack::TwoPhaseAttacker attacker(ac);
    auto sc = scenario(dc, 300.0);
    // Add a couple of cooler extra victims.
    for (double pct : {60.0, 40.0}) {
        const int rack = rackByLoadPercentile(
            *workload_, dc.config(), dc.now(),
            dc.now() + kTicksPerHour, pct);
        if (rack != sc.targetRack)
            sc.extraVictimRacks.push_back(rack);
    }
    const auto out = dc.runAttack(attacker, sc);
    // The hot primary victim dominates the outcome: survival is no
    // longer than a single-victim attack on the same rack.
    EXPECT_LE(out.survivalSec, 300.0);
}

TEST_F(IntegrationTest, ShedServersRestartWhenDemandFits)
{
    DataCenterConfig cfg = config(SchemeKind::Pad);
    DataCenter dc(cfg, workload_);
    dc.runCoarseUntil(kTicksPerDay + 11 * kTicksPerHour);
    attack::AttackerConfig ac;
    ac.controlledNodes = 4;
    attack::TwoPhaseAttacker attacker(ac);
    auto sc = scenario(dc, 900.0);
    dc.runAttack(attacker, sc);
    // Continue normal (coarse) operation after the attack: demand
    // drops and every shed server must come back.
    dc.runCoarseUntil(dc.now() + 2 * kTicksPerHour);
    EXPECT_EQ(dc.sheddedServers(), 0);
}

} // namespace
} // namespace pad::core
