/**
 * @file
 * Tests for the attack-campaign driver: ordering, state persistence
 * across strikes, horizon handling, and aggregate reporting.
 */

#include <gtest/gtest.h>

#include "core/campaign.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"

namespace pad::core {
namespace {

class CampaignTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        trace::SyntheticTraceConfig tc;
        tc.machines = 220;
        tc.days = 2.0;
        events_ = new std::vector<trace::TaskEvent>(
            trace::SyntheticGoogleTrace(tc).generate());
        workload_ = new trace::Workload(*events_, tc.machines,
                                        2 * kTicksPerDay);
    }

    static void
    TearDownTestSuite()
    {
        delete workload_;
        delete events_;
        workload_ = nullptr;
        events_ = nullptr;
    }

    static DataCenterConfig
    config(SchemeKind scheme)
    {
        DataCenterConfig cfg;
        cfg.scheme = scheme;
        cfg.clusterBudgetFraction = 0.70;
        cfg.deb = defaultDebConfig(cfg.rackNameplate());
        return cfg;
    }

    static CampaignAttack
    strike(Tick at, double durationSec = 600.0)
    {
        CampaignAttack s;
        s.startAt = at;
        s.attacker.controlledNodes = 4;
        s.attacker.prepareSec = 30.0;
        s.attacker.maxDrainSec = 300.0;
        s.scenario.targetPolicy = TargetPolicy::MostVulnerable;
        s.scenario.durationSec = durationSec;
        return s;
    }

    static std::vector<trace::TaskEvent> *events_;
    static trace::Workload *workload_;
};

std::vector<trace::TaskEvent> *CampaignTest::events_ = nullptr;
trace::Workload *CampaignTest::workload_ = nullptr;

TEST_F(CampaignTest, RunsStrikesInTimeOrder)
{
    DataCenter dc(config(SchemeKind::PS), workload_);
    // Deliberately unsorted input.
    std::vector<CampaignAttack> plan{
        strike(kTicksPerDay + 12 * kTicksPerHour),
        strike(kTicksPerDay + 6 * kTicksPerHour),
    };
    CampaignDriver driver(dc, std::move(plan));
    const auto report = driver.run(2 * kTicksPerDay);
    ASSERT_EQ(report.strikes.size(), 2u);
    EXPECT_LT(report.strikes[0].startedAt,
              report.strikes[1].startedAt);
    // The day finished: the clock advanced to the horizon.
    EXPECT_GE(dc.now(), 2 * kTicksPerDay);
}

TEST_F(CampaignTest, StrikesPastHorizonAreSkipped)
{
    DataCenter dc(config(SchemeKind::PS), workload_);
    std::vector<CampaignAttack> plan{
        strike(kTicksPerDay + 6 * kTicksPerHour),
        strike(10 * kTicksPerDay), // never happens
    };
    CampaignDriver driver(dc, std::move(plan));
    const auto report = driver.run(2 * kTicksPerDay);
    EXPECT_EQ(report.strikes.size(), 1u);
}

TEST_F(CampaignTest, PeakStrikeBeatsIdleStrike)
{
    DataCenter dc(config(SchemeKind::PS), workload_);
    std::vector<CampaignAttack> plan{
        strike(kTicksPerDay + 4 * kTicksPerHour, 900.0),
        strike(kTicksPerDay + 13 * kTicksPerHour, 900.0),
    };
    CampaignDriver driver(dc, std::move(plan));
    const auto report = driver.run(2 * kTicksPerDay);
    ASSERT_EQ(report.strikes.size(), 2u);
    // Pre-dawn: headroom everywhere, the attack rides out the
    // window; peak: the victim overloads.
    EXPECT_FALSE(report.strikes[0].overloaded);
    EXPECT_TRUE(report.strikes[1].overloaded);
    EXPECT_EQ(report.successfulStrikes, 1);
}

TEST_F(CampaignTest, PadResistsWherePsFails)
{
    auto runCampaign = [&](SchemeKind scheme) {
        DataCenter dc(config(scheme), workload_);
        std::vector<CampaignAttack> plan{
            strike(kTicksPerDay + 10 * kTicksPerHour, 900.0),
            strike(kTicksPerDay + 14 * kTicksPerHour, 900.0),
        };
        CampaignDriver driver(dc, std::move(plan));
        return driver.run(2 * kTicksPerDay).successfulStrikes;
    };
    EXPECT_GT(runCampaign(SchemeKind::PS),
              runCampaign(SchemeKind::Pad));
}

TEST_F(CampaignTest, EmptyCampaignIsJustNormalOperation)
{
    DataCenter dc(config(SchemeKind::PS), workload_);
    CampaignDriver driver(dc, {});
    const auto report = driver.run(kTicksPerDay);
    EXPECT_TRUE(report.strikes.empty());
    EXPECT_EQ(report.successfulStrikes, 0);
    EXPECT_NEAR(report.overallThroughput, 1.0, 1e-9);
    EXPECT_GE(dc.now(), kTicksPerDay);
}

} // namespace
} // namespace pad::core
