/**
 * @file
 * Unit tests for the terminal-voltage model and the cycle/calendar
 * aging model, plus their integration into BatteryUnit.
 */

#include <gtest/gtest.h>

#include "battery/aging_model.h"
#include "battery/battery_unit.h"
#include "battery/kibam.h"
#include "battery/voltage_model.h"

namespace pad::battery {
namespace {

KibamParams
pack()
{
    return KibamParams{3600.0 * 12.0, 0.625, 4.5e-4}; // 12 Wh
}

TEST(VoltageModel, FullPackSitsAtFullCellVoltage)
{
    Kibam b(pack());
    VoltageModel vm;
    EXPECT_NEAR(vm.openCircuitVoltage(b), 2.10 * 6, 1e-9);
    EXPECT_NEAR(vm.cellVoltage(b, 0.0), 2.10, 1e-9);
}

TEST(VoltageModel, VoltageFallsWithAvailableHead)
{
    Kibam b(pack());
    VoltageModel vm;
    const double vFull = vm.openCircuitVoltage(b);
    b.step(500.0, 30.0);
    const double vUsed = vm.openCircuitVoltage(b);
    EXPECT_LT(vUsed, vFull);
    b.setSoc(0.0);
    EXPECT_NEAR(vm.openCircuitVoltage(b), 1.70 * 6, 1e-9);
}

TEST(VoltageModel, OhmicDropScalesWithLoad)
{
    Kibam b(pack());
    VoltageModelConfig cfg;
    cfg.internalResistanceOhm = 0.05;
    cfg.nominalVoltage = 12.0;
    VoltageModel vm(cfg);
    const double voc = vm.terminalVoltage(b, 0.0);
    const double v100 = vm.terminalVoltage(b, 100.0);
    const double v200 = vm.terminalVoltage(b, 200.0);
    EXPECT_NEAR(voc - v100, (100.0 / 12.0) * 0.05, 1e-9);
    EXPECT_NEAR(voc - v200, 2.0 * (voc - v100), 1e-9);
}

TEST(VoltageModel, CutoffPowerShrinksAsBatteryDrains)
{
    Kibam b(pack());
    VoltageModel vm;
    const double fresh = vm.powerAtCellCutoff(b, 1.75);
    b.step(800.0, 20.0);
    const double drained = vm.powerAtCellCutoff(b, 1.75);
    EXPECT_LT(drained, fresh);
    EXPECT_GE(drained, 0.0);
}

TEST(VoltageModel, CutoffConsistentWithTerminalVoltage)
{
    Kibam b(pack());
    b.step(300.0, 15.0);
    VoltageModel vm;
    const double p = vm.powerAtCellCutoff(b, 1.80);
    if (p > 0.0)
        EXPECT_NEAR(vm.cellVoltage(b, p), 1.80, 1e-9);
}

TEST(AgingModel, ReferenceRateConsumesOneCycleLifePerThroughput)
{
    AgingModelConfig cfg;
    cfg.cycleLife = 100.0;
    cfg.referenceRateC = 1.0;
    AgingModel aging(cfg, 3600.0); // 1 Wh
    // Discharge exactly one full capacity at the reference rate.
    aging.onDischarge(1.0, 3600.0); // 1 W for 1 h = 3600 J = 1 C rate
    EXPECT_NEAR(aging.cycleWear(), 1.0 / 100.0, 1e-12);
}

TEST(AgingModel, HighRateDischargeWearsFaster)
{
    AgingModelConfig cfg;
    cfg.referenceRateC = 0.2;
    cfg.stressExponent = 1.0;
    AgingModel slow(cfg, 3600.0);
    AgingModel fast(cfg, 3600.0);
    slow.onDischarge(0.2, 100.0); // at reference rate
    fast.onDischarge(2.0, 10.0);  // same energy, 10x the rate
    EXPECT_NEAR(fast.cycleWear(), 10.0 * slow.cycleWear(), 1e-12);
}

TEST(AgingModel, BelowReferenceRateNoExtraStress)
{
    AgingModelConfig cfg;
    cfg.referenceRateC = 0.2;
    AgingModel gentle(cfg, 3600.0);
    AgingModel reference(cfg, 3600.0);
    gentle.onDischarge(0.05, 400.0);
    reference.onDischarge(0.2, 100.0);
    EXPECT_NEAR(gentle.cycleWear(), reference.cycleWear(), 1e-12);
}

TEST(AgingModel, CalendarAgingAccrues)
{
    AgingModelConfig cfg;
    cfg.calendarLifeHours = 100.0;
    AgingModel aging(cfg, 3600.0);
    aging.onElapsed(50.0 * 3600.0);
    EXPECT_NEAR(aging.calendarWear(), 0.5, 1e-12);
    EXPECT_FALSE(aging.endOfLife());
    aging.onElapsed(60.0 * 3600.0);
    EXPECT_TRUE(aging.endOfLife());
}

TEST(AgingModel, CapacityFadesToEightyPercentAtEol)
{
    AgingModelConfig cfg;
    cfg.calendarLifeHours = 10.0;
    AgingModel aging(cfg, 3600.0);
    EXPECT_DOUBLE_EQ(aging.capacityFactor(), 1.0);
    aging.onElapsed(5.0 * 3600.0);
    EXPECT_NEAR(aging.capacityFactor(), 0.9, 1e-12);
    aging.onElapsed(100.0 * 3600.0);
    EXPECT_DOUBLE_EQ(aging.capacityFactor(), 0.8);
}

TEST(BatteryUnit, TracksWearAndVoltage)
{
    BatteryUnitConfig cfg;
    cfg.capacityWh = 120.6;
    cfg.maxDischargePower = 6252.0;
    BatteryUnit deb("t.deb", cfg);
    EXPECT_DOUBLE_EQ(deb.wear(), 0.0);
    const double vFull = deb.cellVoltage(0.0);
    deb.discharge(3000.0, 30.0);
    EXPECT_GT(deb.wear(), 0.0);
    EXPECT_LT(deb.cellVoltage(0.0), vFull);
    // Terminal voltage under load is lower than open circuit.
    EXPECT_LT(deb.terminalVoltage(3000.0), deb.terminalVoltage(0.0));
}

TEST(BatteryUnit, HarderDrainingWearsMore)
{
    BatteryUnitConfig cfg;
    cfg.capacityWh = 10.0;
    cfg.maxDischargePower = 10000.0;
    BatteryUnit gentle("g.deb", cfg);
    BatteryUnit harsh("h.deb", cfg);
    // Same energy, 20x the rate.
    gentle.discharge(100.0, 200.0);
    harsh.discharge(2000.0, 10.0);
    EXPECT_GT(harsh.wear(), gentle.wear());
}

/** Property sweep: voltage is monotone in state of charge. */
class VoltageMonotonicity : public ::testing::TestWithParam<double>
{};

TEST_P(VoltageMonotonicity, HigherSocNeverLowersVoltage)
{
    const double load = GetParam();
    VoltageModel vm;
    double prev = -1.0;
    for (double soc = 0.0; soc <= 1.0; soc += 0.1) {
        Kibam b(pack());
        b.setSoc(soc);
        const double v = vm.terminalVoltage(b, load);
        EXPECT_GE(v, prev - 1e-12);
        prev = v;
    }
}

INSTANTIATE_TEST_SUITE_P(Loads, VoltageMonotonicity,
                         ::testing::Values(0.0, 50.0, 200.0, 1000.0));

} // namespace
} // namespace pad::battery
