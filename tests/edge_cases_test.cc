/**
 * @file
 * Edge cases and failure-path tests: fatal() on bad user input
 * (death tests), boundary conditions in parsers and models, and
 * zero-size corner cases.
 */

#include <gtest/gtest.h>

#include "attack/power_virus.h"
#include "battery/charge_policy.h"
#include "core/schemes.h"
#include "power/power_meter.h"
#include "trace/google_trace.h"
#include "util/csv.h"
#include "util/kv_config.h"

namespace pad {
namespace {

using DeathTest = ::testing::Test;

TEST(SchemeParsing, UnknownSchemeNameIsNullopt)
{
    EXPECT_FALSE(core::schemeFromName("NotAScheme").has_value());
    EXPECT_FALSE(core::schemeFromName("").has_value());
    // Parsing is case-sensitive, as printed in the paper's figures.
    EXPECT_FALSE(core::schemeFromName("pad").has_value());
}

TEST(DeathTest, UnknownChargePolicyIsFatal)
{
    EXPECT_EXIT(battery::chargePolicyFromName("sometimes"),
                ::testing::ExitedWithCode(1),
                "unknown charge policy");
}

TEST(DeathTest, MissingCsvFileIsFatal)
{
    EXPECT_EXIT(CsvReader("/nonexistent/path/to.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(DeathTest, MalformedKvConfigLineIsFatal)
{
    EXPECT_EXIT(KvConfig::fromString("this line has no equals\n"),
                ::testing::ExitedWithCode(1), "expected");
}

TEST(DeathTest, NonNumericKvValueIsFatal)
{
    const auto cfg = KvConfig::fromString("n = abc\n");
    EXPECT_EXIT(cfg.getDouble("n", 0.0),
                ::testing::ExitedWithCode(1), "not a number");
}

TEST(DeathTest, MalformedTraceRecordIsFatal)
{
    char path[] = "/tmp/pad_badtrace_XXXXXX";
    const int fd = mkstemp(path);
    ASSERT_GE(fd, 0);
    ::close(fd);
    {
        std::ofstream out(path);
        out << "0,300,1,not_a_rate\n";
    }
    EXPECT_EXIT(trace::readTaskTraceCsv(path),
                ::testing::ExitedWithCode(1), "bad cpu_rate");
    std::remove(path);
}

TEST(DeathTest, NegativeTraceDurationIsFatal)
{
    char path[] = "/tmp/pad_badtrace_XXXXXX";
    const int fd = mkstemp(path);
    ASSERT_GE(fd, 0);
    ::close(fd);
    {
        std::ofstream out(path);
        out << "300,100,1,0.5\n";
    }
    EXPECT_EXIT(trace::readTaskTraceCsv(path),
                ::testing::ExitedWithCode(1), "end before start");
    std::remove(path);
}

TEST(EdgeCases, CsvEmptyFieldsSurvive)
{
    const auto f = parseCsvLine(",,");
    ASSERT_EQ(f.size(), 3u);
    for (const auto &s : f)
        EXPECT_TRUE(s.empty());
}

TEST(EdgeCases, CsvCarriageReturnsStripped)
{
    const auto f = parseCsvLine("a,b\r");
    ASSERT_EQ(f.size(), 2u);
    EXPECT_EQ(f[1], "b");
}

TEST(EdgeCases, MeterExactBoundaryPublishesOnce)
{
    power::PowerMeter meter("edge.m", kTicksPerSecond);
    meter.observe(100.0, kTicksPerSecond);
    EXPECT_EQ(meter.readings().size(), 1u);
    meter.observe(100.0, 0);
    EXPECT_EQ(meter.readings().size(), 1u);
}

TEST(EdgeCases, SpikeTrainPeriodArithmetic)
{
    attack::SpikeTrain train{1.0, 3.0, 1.0};
    EXPECT_DOUBLE_EQ(train.periodSec(), 20.0);
}

TEST(EdgeCases, VirusZeroWindowLaunchesNothing)
{
    attack::PowerVirus v(attack::VirusKind::CpuIntensive,
                         attack::SpikeTrain{1.0, 6.0, 1.0});
    EXPECT_EQ(v.spikesWithin(0.0), 0);
}

TEST(EdgeCases, KvConfigEmptyStringIsEmpty)
{
    const auto cfg = KvConfig::fromString("");
    EXPECT_TRUE(cfg.keys().empty());
    EXPECT_FALSE(cfg.has("anything"));
}

} // namespace
} // namespace pad
