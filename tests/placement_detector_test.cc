/**
 * @file
 * Tests for the DEB placement granularity (Fig. 3 options 3 vs 4)
 * and the detection-triggered capping response (paper §III-B).
 */

#include <gtest/gtest.h>

#include "attack/attacker.h"
#include "core/config.h"
#include "core/datacenter.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"

namespace pad::core {
namespace {

class PlacementDetectorTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        trace::SyntheticTraceConfig tc;
        tc.machines = 220;
        tc.days = 2.0;
        events_ = new std::vector<trace::TaskEvent>(
            trace::SyntheticGoogleTrace(tc).generate());
        workload_ = new trace::Workload(*events_, tc.machines,
                                        2 * kTicksPerDay);
    }

    static void
    TearDownTestSuite()
    {
        delete workload_;
        delete events_;
        workload_ = nullptr;
        events_ = nullptr;
    }

    static DataCenterConfig
    config(SchemeKind scheme)
    {
        DataCenterConfig cfg;
        cfg.scheme = scheme;
        cfg.clusterBudgetFraction = 0.70;
        cfg.deb = defaultDebConfig(cfg.rackNameplate());
        return cfg;
    }

    static AttackOutcome
    attack(DataCenter &dc, double durationSec = 900.0)
    {
        dc.runCoarseUntil(kTicksPerDay + 11 * kTicksPerHour);
        attack::AttackerConfig ac;
        ac.controlledNodes = 4;
        ac.prepareSec = 30.0;
        ac.maxDrainSec = 400.0;
        attack::TwoPhaseAttacker attacker(ac);
        AttackScenario sc;
        sc.targetPolicy = TargetPolicy::Fixed;
        sc.targetRack = rackByLoadPercentile(
            *workload_, dc.config(), dc.now(),
            dc.now() + kTicksPerHour, 90.0);
        sc.durationSec = durationSec;
        return dc.runAttack(attacker, sc);
    }

    static std::vector<trace::TaskEvent> *events_;
    static trace::Workload *workload_;
};

std::vector<trace::TaskEvent> *PlacementDetectorTest::events_ = nullptr;
trace::Workload *PlacementDetectorTest::workload_ = nullptr;

TEST_F(PlacementDetectorTest, PerServerPlacementSplitsCapacity)
{
    DataCenterConfig cfg = config(SchemeKind::PS);
    cfg.debPlacement = DataCenterConfig::DebPlacement::PerServer;
    DataCenter dc(cfg, workload_);
    // Same rated rack capacity either way.
    DataCenterConfig cab = config(SchemeKind::PS);
    DataCenter dcCab(cab, workload_);
    EXPECT_NEAR(dc.rackSoc(0), dcCab.rackSoc(0), 1e-9);
    dc.setAllSoc(0.5);
    EXPECT_NEAR(dc.rackSoc(3), 0.5, 1e-9);
}

TEST_F(PlacementDetectorTest, PerServerDiesSoonerUnderTargetedAttack)
{
    // The attacker's own servers exhaust exactly the BBUs backing
    // them; neighbors' stranded capacity cannot help (Fig. 3 option
    // 4 vs option 3).
    DataCenterConfig cab = config(SchemeKind::PS);
    DataCenterConfig per = config(SchemeKind::PS);
    per.debPlacement = DataCenterConfig::DebPlacement::PerServer;
    DataCenter a(cab, workload_);
    DataCenter b(per, workload_);
    const double cabinet = attack(a).survivalSec;
    const double perServer = attack(b).survivalSec;
    EXPECT_LT(perServer, cabinet);
}

TEST_F(PlacementDetectorTest, VdebPoolingEqualizesPlacements)
{
    DataCenterConfig cab = config(SchemeKind::VdebOnly);
    DataCenterConfig per = config(SchemeKind::VdebOnly);
    per.debPlacement = DataCenterConfig::DebPlacement::PerServer;
    DataCenter a(cab, workload_);
    DataCenter b(per, workload_);
    const double cabinet = attack(a).survivalSec;
    const double perServer = attack(b).survivalSec;
    // Sharing across the PDU recovers (most of) the fragmentation
    // loss: within 20% of each other.
    EXPECT_NEAR(perServer, cabinet, 0.2 * cabinet + 1.0);
}

TEST_F(PlacementDetectorTest, DetectorFlagsAttackAndCapsCluster)
{
    DataCenterConfig cfg = config(SchemeKind::PS);
    cfg.detectorResponse = true;
    cfg.detectorInterval = 10 * kTicksPerSecond;
    DataCenter dc(cfg, workload_);
    const auto out = attack(dc);
    EXPECT_GT(dc.detectionsFlagged(), 0u);
    // Blanket capping costs benign throughput.
    EXPECT_LT(out.throughput, 0.999);
}

TEST_F(PlacementDetectorTest, CoarseDetectorSeesLessThanFine)
{
    DataCenterConfig fine = config(SchemeKind::PS);
    fine.detectorResponse = true;
    fine.detectorInterval = 5 * kTicksPerSecond;
    DataCenterConfig coarse = fine;
    coarse.detectorInterval = 5 * kTicksPerMinute;
    DataCenter a(fine, workload_);
    DataCenter b(coarse, workload_);
    attack(a);
    attack(b);
    EXPECT_GT(a.detectionsFlagged(), b.detectionsFlagged());
}

TEST_F(PlacementDetectorTest, DetectorOffByDefault)
{
    DataCenter dc(config(SchemeKind::PS), workload_);
    attack(dc);
    EXPECT_EQ(dc.detectionsFlagged(), 0u);
}

} // namespace
} // namespace pad::core
