/**
 * @file
 * Unit tests for the telemetry subsystem: multi-resolution time
 * series, the TelemetryHub, the tracer-event feed, Prometheus
 * exposition (writer and grammar validator), the scrape HTTP
 * endpoint, the JSONL trace reader, the Simulator probe, and the
 * StatsRegistry histogram-quantile boundary contract the exposition
 * relies on.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace_sink.h"
#include "obs/tracer.h"
#include "sim/simulator.h"
#include "sim/stats_registry.h"
#include "telemetry/http.h"
#include "telemetry/hub.h"
#include "telemetry/prom.h"
#include "telemetry/sim_probe.h"
#include "telemetry/time_series.h"
#include "telemetry/trace_feed.h"
#include "telemetry/trace_reader.h"

using namespace pad;
using namespace pad::telemetry;

// ---------------------------------------------------------------------
// TimeSeries
// ---------------------------------------------------------------------

TEST(TimeSeries, EmptySeriesIsWellDefined)
{
    const TimeSeries ts;
    EXPECT_TRUE(ts.empty());
    EXPECT_EQ(ts.totalSamples(), 0u);
    EXPECT_EQ(ts.rawSize(), 0u);
    EXPECT_EQ(ts.overallMin(), 0.0);
    EXPECT_EQ(ts.overallMax(), 0.0);
    EXPECT_EQ(ts.overallMean(), 0.0);
    EXPECT_TRUE(ts.raw().empty());
    EXPECT_TRUE(ts.minuteBuckets().empty());
    EXPECT_TRUE(ts.fiveMinuteBuckets().empty());
}

TEST(TimeSeries, MinuteRollupAggregates)
{
    TimeSeries ts;
    // Three samples in minute 0, one in minute 1.
    ts.record(0, 10.0);
    ts.record(20 * kTicksPerSecond, 30.0);
    ts.record(40 * kTicksPerSecond, 20.0);
    ts.record(kTicksPerMinute + 1, 5.0);

    const auto minutes = ts.minuteBuckets();
    ASSERT_EQ(minutes.size(), 2u);
    EXPECT_EQ(minutes[0].start, 0);
    EXPECT_EQ(minutes[0].width, kTicksPerMinute);
    EXPECT_EQ(minutes[0].count, 3u);
    EXPECT_DOUBLE_EQ(minutes[0].min, 10.0);
    EXPECT_DOUBLE_EQ(minutes[0].max, 30.0);
    EXPECT_DOUBLE_EQ(minutes[0].mean(), 20.0);
    EXPECT_DOUBLE_EQ(minutes[0].last, 20.0);
    // The still-open second bucket is included.
    EXPECT_EQ(minutes[1].start, kTicksPerMinute);
    EXPECT_EQ(minutes[1].count, 1u);
    EXPECT_DOUBLE_EQ(minutes[1].last, 5.0);

    // All four samples land in a single open 5-minute bucket.
    const auto fives = ts.fiveMinuteBuckets();
    ASSERT_EQ(fives.size(), 1u);
    EXPECT_EQ(fives[0].count, 4u);
    EXPECT_DOUBLE_EQ(fives[0].min, 5.0);
    EXPECT_DOUBLE_EQ(fives[0].max, 30.0);

    EXPECT_DOUBLE_EQ(ts.overallMean(), 65.0 / 4.0);
    EXPECT_EQ(ts.last().when, kTicksPerMinute + 1);
}

TEST(TimeSeries, RingEvictionKeepsAggregatesExact)
{
    TimeSeriesOptions opts;
    opts.rawCapacity = 4;
    TimeSeries ts(opts);
    for (int i = 0; i < 10; ++i)
        ts.record(i * kTicksPerSecond, static_cast<double>(i));

    EXPECT_EQ(ts.totalSamples(), 10u);
    EXPECT_EQ(ts.rawSize(), 4u);
    const auto raw = ts.raw();
    ASSERT_EQ(raw.size(), 4u);
    // Chronological order, newest four survive.
    EXPECT_DOUBLE_EQ(raw.front().value, 6.0);
    EXPECT_DOUBLE_EQ(raw.back().value, 9.0);
    // Whole-series aggregates still cover evicted samples.
    EXPECT_DOUBLE_EQ(ts.overallMin(), 0.0);
    EXPECT_DOUBLE_EQ(ts.overallMax(), 9.0);
    EXPECT_DOUBLE_EQ(ts.overallMean(), 4.5);
}

TEST(TimeSeries, BucketStartsAreAligned)
{
    TimeSeries ts;
    ts.record(kTicksPerMinute + 1234, 1.0);
    const auto minutes = ts.minuteBuckets();
    ASSERT_EQ(minutes.size(), 1u);
    EXPECT_EQ(minutes[0].start, kTicksPerMinute);
    EXPECT_EQ(minutes[0].start % kTicksPerMinute, 0);
}

TEST(TimeSeries, BoundarySampleOpensTheNextBucket)
{
    // Regression: buckets are [start, start + width), so a sample at
    // exactly the boundary belongs to the NEW bucket, never to the
    // closing one.
    TimeSeries ts;
    ts.record(kTicksPerMinute - 1, 1.0);
    ts.record(kTicksPerMinute, 2.0);

    const auto minutes = ts.minuteBuckets();
    ASSERT_EQ(minutes.size(), 2u);
    EXPECT_EQ(minutes[0].start, 0);
    EXPECT_EQ(minutes[0].count, 1u);
    EXPECT_DOUBLE_EQ(minutes[0].last, 1.0);
    EXPECT_EQ(minutes[1].start, kTicksPerMinute);
    EXPECT_EQ(minutes[1].count, 1u);
    EXPECT_DOUBLE_EQ(minutes[1].min, 2.0);
    EXPECT_DOUBLE_EQ(minutes[1].max, 2.0);

    // Same contract at the 5-minute resolution.
    TimeSeries five;
    five.record(5 * kTicksPerMinute - 1, 1.0);
    five.record(5 * kTicksPerMinute, 2.0);
    const auto fives = five.fiveMinuteBuckets();
    ASSERT_EQ(fives.size(), 2u);
    EXPECT_EQ(fives[1].start, 5 * kTicksPerMinute);
    EXPECT_EQ(fives[1].count, 1u);
}

// ---------------------------------------------------------------------
// TelemetryHub
// ---------------------------------------------------------------------

TEST(TelemetryHub, LazyCreationAndSortedNames)
{
    TelemetryHub hub;
    EXPECT_TRUE(hub.empty());
    hub.record("zeta", 0, 1.0);
    hub.record("alpha", 0, 2.0);
    hub.record("zeta", 1, 3.0);
    EXPECT_EQ(hub.size(), 2u);
    const auto names = hub.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "zeta");
    ASSERT_NE(hub.find("zeta"), nullptr);
    EXPECT_EQ(hub.find("zeta")->totalSamples(), 2u);
    EXPECT_EQ(hub.find("missing"), nullptr);
}

TEST(TelemetryHub, SummaryDigest)
{
    TelemetryHub hub;
    hub.record("s", 0, 1.0);
    hub.record("s", kTicksPerSecond, 3.0);
    const auto digest = hub.summary();
    ASSERT_EQ(digest.size(), 1u);
    EXPECT_EQ(digest[0].name, "s");
    EXPECT_EQ(digest[0].count, 2u);
    EXPECT_DOUBLE_EQ(digest[0].min, 1.0);
    EXPECT_DOUBLE_EQ(digest[0].max, 3.0);
    EXPECT_DOUBLE_EQ(digest[0].mean, 2.0);
    EXPECT_DOUBLE_EQ(digest[0].last.value, 3.0);
}

TEST(TelemetryHub, MergeFromPrefixesAndIsIdempotent)
{
    TelemetryHub job;
    job.record("rack0.power", 0, 100.0);
    job.record("policy.level", 0, 1.0);

    TelemetryHub merged;
    merged.mergeFrom(job, "job0.");
    merged.mergeFrom(job, "job0."); // idempotent replace
    EXPECT_EQ(merged.size(), 2u);
    ASSERT_NE(merged.find("job0.rack0.power"), nullptr);
    EXPECT_EQ(merged.find("job0.rack0.power")->totalSamples(), 1u);
    EXPECT_EQ(merged.find("rack0.power"), nullptr);
}

TEST(TelemetryHub, MergeFromSkipsEmptySeries)
{
    // Regression: merging must never create sample-less series in
    // the target — they would render as zero-valued rows in
    // summaries and Prometheus expositions.
    TelemetryHub empty;
    TelemetryHub merged;
    merged.record("real", 0, 1.0);
    merged.mergeFrom(empty, "job0.");
    EXPECT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged.names(), std::vector<std::string>{"real"});
    for (const auto &s : merged.summary())
        EXPECT_GT(s.count, 0u);
}

TEST(TelemetryHub, ListenerSeesEverySampleAndDetaches)
{
    struct Capture : telemetry::SampleListener {
        std::vector<std::string> seen;
        void
        onSample(std::string_view name, Tick when,
                 double value) override
        {
            seen.push_back(std::string(name) + "@" +
                           std::to_string(when) + "=" +
                           std::to_string(static_cast<int>(value)));
        }
    };

    TelemetryHub hub;
    Capture capture;
    hub.record("a", 0, 1.0); // before attach: unseen
    hub.setListener(&capture);
    hub.record("a", 1, 2.0);
    hub.record("b", 2, 3.0);
    hub.setListener(nullptr);
    hub.record("a", 3, 4.0); // after detach: unseen

    EXPECT_EQ(capture.seen,
              (std::vector<std::string>{"a@1=2", "b@2=3"}));
}

TEST(TelemetryHub, ConcurrentRecordingIsSafe)
{
    TelemetryHub hub;
    constexpr int kPer = 2000;
    std::thread a([&] {
        for (int i = 0; i < kPer; ++i)
            hub.record("a", i, 1.0);
    });
    std::thread b([&] {
        for (int i = 0; i < kPer; ++i)
            hub.record("b", i, 2.0);
    });
    a.join();
    b.join();
    EXPECT_EQ(hub.size(), 2u);
    EXPECT_EQ(hub.find("a")->totalSamples(),
              static_cast<std::uint64_t>(kPer));
    EXPECT_EQ(hub.find("b")->totalSamples(),
              static_cast<std::uint64_t>(kPer));
}

// ---------------------------------------------------------------------
// TelemetryTraceSink
// ---------------------------------------------------------------------

TEST(TraceFeed, NameHelpers)
{
    EXPECT_EQ(securityLevelFromName("L1-Normal"), 1);
    EXPECT_EQ(securityLevelFromName("L2-MinorIncident"), 2);
    EXPECT_EQ(securityLevelFromName("L3-Emergency"), 3);
    EXPECT_EQ(securityLevelFromName("garbage"), 0);
    EXPECT_EQ(securityLevelFromName(""), 0);

    EXPECT_EQ(attackerPhaseFromName("Prepare"), 0);
    EXPECT_EQ(attackerPhaseFromName("Drain"), 1);
    EXPECT_EQ(attackerPhaseFromName("Recover"), 2);
    EXPECT_EQ(attackerPhaseFromName("Spike"), 3);
    EXPECT_EQ(attackerPhaseFromName("???"), -1);
}

TEST(TraceFeed, CuratedEventsBecomeSeries)
{
    TelemetryHub hub;
    obs::CountingTraceSink inner;
    TelemetryTraceSink sink(hub, &inner);
    const obs::TraceScope scope(&sink);
    obs::setTraceClock(kTicksPerSecond);

    obs::emit("policy", "policy.transition",
              {obs::TraceField::str("from", "L1-Normal"),
               obs::TraceField::str("to", "L3-Emergency"),
               obs::TraceField::integer("transitions", 1)});
    obs::emit("detector", "detector.anomaly",
              {obs::TraceField::integer("rack", 3)});
    obs::emit("detector", "detector.anomaly",
              {obs::TraceField::integer("rack", 4)});
    obs::emit("rack3.udeb", "udeb.shave",
              {obs::TraceField::num("excess_w", 50.0),
               obs::TraceField::num("shaved_w", 42.0),
               obs::TraceField::num("soc", 0.8),
               obs::TraceField::num("engaged_sec", 1.0)});
    obs::emit("attacker", "attacker.phase",
              {obs::TraceField::str("from", "Drain"),
               obs::TraceField::str("to", "Spike"),
               obs::TraceField::num("at_sec", 1.0)});
    obs::emit("attacker", "attacker.spike_launch",
              {obs::TraceField::integer("index", 0)});
    obs::emit("telemetry", "soc.sample",
              {obs::TraceField::integer("rack", 7),
               obs::TraceField::num("soc", 0.9),
               obs::TraceField::num("udeb_soc", 0.7),
               obs::TraceField::num("power_w", 1000.0),
               obs::TraceField::num("draw_w", 1100.0),
               obs::TraceField::integer("level", 2)});
    obs::emit("other", "unrelated.event", {});

    ASSERT_NE(hub.find("policy.level"), nullptr);
    EXPECT_DOUBLE_EQ(hub.find("policy.level")->last().value, 3.0);
    EXPECT_EQ(hub.find("policy.level")->last().when, kTicksPerSecond);

    ASSERT_NE(hub.find("detector.anomalies"), nullptr);
    EXPECT_DOUBLE_EQ(hub.find("detector.anomalies")->last().value,
                     2.0);

    ASSERT_NE(hub.find("rack3.udeb.soc"), nullptr);
    EXPECT_DOUBLE_EQ(hub.find("rack3.udeb.soc")->last().value, 0.8);
    ASSERT_NE(hub.find("rack3.udeb.shaved_w"), nullptr);
    EXPECT_DOUBLE_EQ(hub.find("rack3.udeb.shaved_w")->last().value,
                     42.0);

    ASSERT_NE(hub.find("attacker.phase"), nullptr);
    EXPECT_DOUBLE_EQ(hub.find("attacker.phase")->last().value, 3.0);
    ASSERT_NE(hub.find("attacker.spikes"), nullptr);
    EXPECT_DOUBLE_EQ(hub.find("attacker.spikes")->last().value, 1.0);

    ASSERT_NE(hub.find("rack7.soc"), nullptr);
    ASSERT_NE(hub.find("rack7.udeb_soc"), nullptr);
    ASSERT_NE(hub.find("rack7.power"), nullptr);
    ASSERT_NE(hub.find("rack7.draw"), nullptr);
    EXPECT_DOUBLE_EQ(hub.find("rack7.draw")->last().value, 1100.0);

    // The unrelated event produced no series but passed through.
    EXPECT_EQ(hub.find("unrelated.event"), nullptr);
    EXPECT_EQ(inner.count(), 8u);
}

// ---------------------------------------------------------------------
// PromWriter + validator
// ---------------------------------------------------------------------

namespace {

/** A registry exercising every stat kind. */
sim::StatsRegistry
makeRegistry()
{
    sim::StatsRegistry stats;
    stats.registerScalar("attack.survival_sec", "survival").set(740.5);
    stats.registerCounter("breaker.trips", "trips").add(3);
    stats.setVector("rack.soc", "per-rack soc", {0.9, 0.8, 0.7});
    auto hist = stats.registerHistogram("step.power_w", "step power",
                                        {0.0, 100.0, 10});
    for (int i = 0; i < 100; ++i)
        hist.record(static_cast<double>(i));
    auto timer = stats.registerTimer("phase.duration", "phase time");
    timer.record(0.5);
    timer.record(1.5);
    return stats;
}

} // namespace

TEST(Prom, SanitizeMapsToMetricCharset)
{
    EXPECT_EQ(promSanitize("rack3.power"), "rack3_power");
    EXPECT_EQ(promSanitize("job0.rack3.udeb_soc"),
              "job0_rack3_udeb_soc");
    EXPECT_EQ(promSanitize("3abc"), "_3abc");
    EXPECT_EQ(promSanitize("weird name-with/stuff"),
              "weird_name_with_stuff");
}

TEST(Prom, RendersEveryStatKindAndValidates)
{
    const sim::StatsRegistry stats = makeRegistry();
    TelemetryHub hub;
    hub.record("rack0.power", 0, 900.5);
    hub.record("rack0.power", kTicksPerSecond, 1100.5);

    const std::string text = PromWriter().render(&stats, &hub);

    EXPECT_NE(text.find("# TYPE pad_attack_survival_sec gauge"),
              std::string::npos);
    EXPECT_NE(text.find("pad_attack_survival_sec 740.5"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE pad_breaker_trips_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("pad_breaker_trips_total 3"),
              std::string::npos);
    EXPECT_NE(text.find("pad_rack_soc{index=\"2\"} 0.7"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE pad_step_power_w summary"),
              std::string::npos);
    EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
    EXPECT_NE(text.find("pad_step_power_w_count 100"),
              std::string::npos);
    EXPECT_NE(text.find("pad_phase_duration_seconds_count 2"),
              std::string::npos);
    EXPECT_NE(text.find("pad_phase_duration_seconds_sum 2"),
              std::string::npos);
    EXPECT_NE(
        text.find("pad_series_last{series=\"rack0.power\"} 1100.5"),
        std::string::npos);
    EXPECT_NE(
        text.find(
            "pad_series_samples_total{series=\"rack0.power\"} 2"),
        std::string::npos);

    std::string error;
    EXPECT_TRUE(validatePromExposition(text, &error)) << error;
}

TEST(Prom, EmptyInputsValidate)
{
    const std::string text = PromWriter().render(nullptr, nullptr);
    std::string error;
    EXPECT_TRUE(validatePromExposition(text, &error)) << error;
}

TEST(Prom, ValidatorRejectsMalformedExpositions)
{
    std::string error;
    // Unknown TYPE.
    EXPECT_FALSE(validatePromExposition("# TYPE foo widget\nfoo 1\n",
                                        &error));
    EXPECT_NE(error.find("line 1"), std::string::npos);
    // Metric name starting with a digit.
    EXPECT_FALSE(validatePromExposition("3foo 1\n", &error));
    // Unparsable value.
    EXPECT_FALSE(validatePromExposition("foo banana\n", &error));
    // TYPE after a sample of the same metric.
    EXPECT_FALSE(validatePromExposition(
        "foo 1\n# TYPE foo gauge\n", &error));
    // Duplicate TYPE.
    EXPECT_FALSE(validatePromExposition(
        "# TYPE foo gauge\n# TYPE foo gauge\n", &error));
    // Unterminated label value.
    EXPECT_FALSE(
        validatePromExposition("foo{bar=\"baz} 1\n", &error));
    // Well-formed corner cases pass.
    EXPECT_TRUE(validatePromExposition("foo NaN\nbar +Inf\n", &error))
        << error;
    EXPECT_TRUE(validatePromExposition("", &error)) << error;
}

TEST(Prom, LabelValuesRoundTripThroughEscaping)
{
    using telemetry::promEscapeLabel;
    using telemetry::promUnescapeLabel;

    const std::string hostile[] = {
        "plain",
        "with \"quotes\"",
        "back\\slash",
        "multi\nline",
        "\\n literal then real\n",
        "\"\\\n",
        "",
    };
    for (const std::string &value : hostile) {
        const std::string escaped = promEscapeLabel(value);
        // Escaped text never contains a raw newline or bare quote.
        EXPECT_EQ(escaped.find('\n'), std::string::npos) << value;
        const auto back = promUnescapeLabel(escaped);
        ASSERT_TRUE(back.has_value()) << value;
        EXPECT_EQ(*back, value);
        // And the escaped value embeds in a valid exposition line.
        std::string error;
        EXPECT_TRUE(validatePromExposition(
            "m{l=\"" + escaped + "\"} 1\n", &error))
            << value << ": " << error;
    }

    // Dangling or unknown escapes are rejected, not guessed at.
    EXPECT_FALSE(promUnescapeLabel("dangling\\").has_value());
    EXPECT_FALSE(promUnescapeLabel("unknown\\t").has_value());
}

TEST(Prom, InvalidPrefixIsRejectedWithAClearError)
{
    sim::StatsRegistry stats;
    stats.registerScalar("x", "").set(1.0);
    std::ostringstream os;

    // A leading digit is not a valid metric-name start.
    EXPECT_THROW(PromWriter(PromWriter::Options{"9bad"})
                     .write(os, &stats, nullptr),
                 std::invalid_argument);
    // Neither is an embedded invalid character.
    try {
        PromWriter(PromWriter::Options{"pad metrics"})
            .write(os, &stats, nullptr);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("' '"),
                  std::string::npos)
            << e.what();
    }

    // Valid and empty prefixes both render cleanly.
    std::string error;
    EXPECT_TRUE(validatePromExposition(
        PromWriter(PromWriter::Options{"ok_prefix"})
            .render(&stats, nullptr),
        &error))
        << error;
    EXPECT_TRUE(validatePromExposition(
        PromWriter(PromWriter::Options{""}).render(&stats, nullptr),
        &error))
        << error;
}

// ---------------------------------------------------------------------
// StatsRegistry histogram quantiles (exposition contract)
// ---------------------------------------------------------------------

TEST(HistogramQuantile, EmptyHistogramReturnsZero)
{
    sim::StatsRegistry::HistogramData data;
    data.spec = {0.0, 100.0, 10};
    data.counts.assign(10, 0);
    EXPECT_DOUBLE_EQ(data.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(data.quantile(0.99), 0.0);
}

TEST(HistogramQuantile, SingleSampleReturnsThatSample)
{
    sim::StatsRegistry stats;
    auto h = stats.registerHistogram("h", "h", {0.0, 100.0, 10});
    h.record(37.0);
    double p50 = 0.0, p99 = 0.0;
    stats.forEachHistogram(
        [&](const std::string &,
            const sim::StatsRegistry::HistogramData &d,
            const std::string &) {
            p50 = d.quantile(0.5);
            p99 = d.quantile(0.99);
        });
    EXPECT_DOUBLE_EQ(p50, 37.0);
    EXPECT_DOUBLE_EQ(p99, 37.0);
}

TEST(HistogramQuantile, AllSamplesInOneBucketStayInsideData)
{
    sim::StatsRegistry stats;
    auto h = stats.registerHistogram("h", "h", {0.0, 100.0, 10});
    // All mass in bucket [30, 40); observed range [33, 36].
    h.record(33.0);
    h.record(34.0);
    h.record(35.0);
    h.record(36.0);
    stats.forEachHistogram(
        [&](const std::string &,
            const sim::StatsRegistry::HistogramData &d,
            const std::string &) {
            for (double q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
                const double v = d.quantile(q);
                EXPECT_GE(v, 33.0) << "q=" << q;
                EXPECT_LE(v, 36.0) << "q=" << q;
            }
            EXPECT_DOUBLE_EQ(d.quantile(0.0), 33.0);
            EXPECT_DOUBLE_EQ(d.quantile(1.0), 36.0);
        });
}

TEST(HistogramQuantile, UniformSpreadInterpolates)
{
    sim::StatsRegistry stats;
    auto h = stats.registerHistogram("h", "h", {0.0, 100.0, 10});
    for (int i = 0; i < 100; ++i)
        h.record(static_cast<double>(i));
    stats.forEachHistogram(
        [&](const std::string &,
            const sim::StatsRegistry::HistogramData &d,
            const std::string &) {
            // Median of 0..99 estimated within its bucket.
            EXPECT_NEAR(d.quantile(0.5), 50.0, 1.0);
            EXPECT_NEAR(d.quantile(0.95), 95.0, 1.0);
            // Quantiles are monotone in q.
            EXPECT_LE(d.quantile(0.5), d.quantile(0.95));
            EXPECT_LE(d.quantile(0.95), d.quantile(0.99));
        });
}

TEST(HistogramQuantile, OverflowMassSitsAtHi)
{
    sim::StatsRegistry stats;
    auto h = stats.registerHistogram("h", "h", {0.0, 10.0, 10});
    h.record(500.0);
    h.record(600.0);
    stats.forEachHistogram(
        [&](const std::string &,
            const sim::StatsRegistry::HistogramData &d,
            const std::string &) {
            // All mass overflowed: the estimate is spec.hi, clamped
            // into the observed range [500, 600].
            EXPECT_DOUBLE_EQ(d.quantile(0.5), 500.0);
        });
}

// ---------------------------------------------------------------------
// MetricsHttpServer
// ---------------------------------------------------------------------

namespace {

/** Minimal HTTP GET against 127.0.0.1:port; returns the raw reply. */
std::string
httpGet(int port, const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return {};
    }
    const std::string req =
        "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
    (void)::send(fd, req.data(), req.size(), 0);
    std::string reply;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        reply.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return reply;
}

} // namespace

TEST(MetricsHttp, ServesRenderedMetricsAndFourOhFour)
{
    MetricsHttpServer server(0, [] {
        return std::string("demo_metric 42\n");
    });
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ASSERT_GT(server.port(), 0);
    EXPECT_TRUE(server.running());

    const std::string ok = httpGet(server.port(), "/metrics");
    EXPECT_NE(ok.find("200 OK"), std::string::npos) << ok;
    EXPECT_NE(ok.find("demo_metric 42"), std::string::npos) << ok;
    EXPECT_NE(ok.find("text/plain"), std::string::npos);

    const std::string root = httpGet(server.port(), "/");
    EXPECT_NE(root.find("200 OK"), std::string::npos);

    const std::string missing = httpGet(server.port(), "/nope");
    EXPECT_NE(missing.find("404"), std::string::npos) << missing;

    server.stop();
    EXPECT_FALSE(server.running());
    server.stop(); // idempotent
}

TEST(MetricsHttp, HealthzAnswersWithoutRenderingMetrics)
{
    // /healthz must stay cheap: a liveness probe cannot pay for a
    // full exposition render, so the handler answers before the
    // renderer runs. A throwing renderer proves it was never called.
    bool rendered = false;
    MetricsHttpServer server(0, [&rendered] {
        rendered = true;
        return std::string("demo_metric 1\n");
    });
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    const std::string health = httpGet(server.port(), "/healthz");
    EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
    EXPECT_NE(health.find("pad_service_up 1"), std::string::npos)
        << health;
    EXPECT_FALSE(rendered);
    server.stop();
}

TEST(MetricsHttp, ContentTypePinsUtf8Charset)
{
    // Prometheus scrapers key on the exact content type; pin it so a
    // refactor cannot silently drop the charset.
    MetricsHttpServer server(0,
                             [] { return std::string("m 1\n"); });
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    const std::string metrics = httpGet(server.port(), "/metrics");
    EXPECT_NE(metrics.find("Content-Type: text/plain; "
                           "version=0.0.4; charset=utf-8"),
              std::string::npos)
        << metrics;
    for (const char *path : {"/healthz", "/nope"}) {
        const std::string reply = httpGet(server.port(), path);
        EXPECT_NE(reply.find(
                      "Content-Type: text/plain; charset=utf-8"),
                  std::string::npos)
            << path << ": " << reply;
    }
    server.stop();
}

TEST(MetricsHttp, ServesLiveHubSnapshot)
{
    TelemetryHub hub;
    MetricsHttpServer server(
        0, [&hub] { return PromWriter().render(nullptr, &hub); });
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    hub.record("policy.level", 0, 1.0);
    const std::string first = httpGet(server.port(), "/metrics");
    EXPECT_NE(
        first.find("pad_series_last{series=\"policy.level\"} 1"),
        std::string::npos)
        << first;

    hub.record("policy.level", kTicksPerSecond, 3.0);
    const std::string second = httpGet(server.port(), "/metrics");
    EXPECT_NE(
        second.find("pad_series_last{series=\"policy.level\"} 3"),
        std::string::npos)
        << second;

    // Grammar-check the exposition body (strip the HTTP headers).
    const auto split = second.find("\r\n\r\n");
    ASSERT_NE(split, std::string::npos);
    std::string verror;
    EXPECT_TRUE(
        validatePromExposition(second.substr(split + 4), &verror))
        << verror;
    server.stop();
}

TEST(MetricsHttp, EphemeralPortsAreDistinct)
{
    // Port 0 asks the kernel for an ephemeral port; two servers must
    // come up side by side on distinct resolved ports.
    MetricsHttpServer a(0, [] { return std::string("a 1\n"); });
    MetricsHttpServer b(0, [] { return std::string("b 2\n"); });
    std::string error;
    ASSERT_TRUE(a.start(&error)) << error;
    ASSERT_TRUE(b.start(&error)) << error;
    ASSERT_GT(a.port(), 0);
    ASSERT_GT(b.port(), 0);
    EXPECT_NE(a.port(), b.port());
    EXPECT_NE(httpGet(a.port(), "/metrics").find("a 1"),
              std::string::npos);
    EXPECT_NE(httpGet(b.port(), "/metrics").find("b 2"),
              std::string::npos);
    a.stop();
    b.stop();
}

TEST(MetricsHttp, BindFailureIsAOneLineError)
{
    MetricsHttpServer first(0, [] { return std::string(); });
    std::string error;
    ASSERT_TRUE(first.start(&error)) << error;

    // A second server on the same port must fail fast with a single
    // diagnostic line — the padd startup contract is one-line error
    // plus nonzero exit, never a silently dead scrape endpoint.
    MetricsHttpServer second(first.port(),
                             [] { return std::string(); });
    EXPECT_FALSE(second.start(&error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(error.find('\n'), std::string::npos) << error;
    EXPECT_FALSE(second.running());
    first.stop();
}

TEST(MetricsHttp, ConcurrentScrapesWhileHubIsWritten)
{
    // The padd data path: the simulation thread records into the hub
    // while scrapers render it. Every render must be a coherent
    // snapshot and the interleaving must be TSan-clean.
    TelemetryHub hub;
    MetricsHttpServer server(
        0, [&hub] { return PromWriter().render(nullptr, &hub); });
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    std::thread writer([&hub] {
        for (int i = 0; i < 400; ++i) {
            hub.record("rack0.power", i * kTicksPerSecond,
                       100.0 + i);
            hub.record("cluster.util", i * kTicksPerSecond,
                       0.5 + 0.001 * i);
        }
    });
    std::vector<std::thread> scrapers;
    std::vector<int> failures(3, 0);
    for (int s = 0; s < 3; ++s)
        scrapers.emplace_back([&, s] {
            for (int i = 0; i < 20; ++i) {
                const std::string reply =
                    httpGet(server.port(), "/metrics");
                if (reply.find("200 OK") == std::string::npos) {
                    ++failures[s];
                    continue;
                }
                const auto split = reply.find("\r\n\r\n");
                std::string verror;
                if (split == std::string::npos ||
                    !validatePromExposition(reply.substr(split + 4),
                                            &verror))
                    ++failures[s];
            }
        });
    writer.join();
    for (auto &t : scrapers)
        t.join();
    for (int s = 0; s < 3; ++s)
        EXPECT_EQ(failures[s], 0) << "scraper " << s;

    // After the writer finished, a final scrape sees its last word.
    const std::string last = httpGet(server.port(), "/metrics");
    EXPECT_NE(
        last.find("pad_series_last{series=\"rack0.power\"} 499"),
        std::string::npos)
        << last;
    server.stop();
}

// ---------------------------------------------------------------------
// Trace reader
// ---------------------------------------------------------------------

TEST(TraceReader, ParsesRecordsAndSkipsCorruptLines)
{
    std::istringstream in(
        "{\"ts\":1000,\"component\":\"policy\","
        "\"name\":\"policy.transition\","
        "\"args\":{\"from\":\"L1-Normal\",\"to\":\"L2-MinorIncident\""
        "}}\n"
        "\n"
        "{\"ts\":2000,\"dur\":500,\"job\":3,\"component\":\"dc\","
        "\"name\":\"attack.window\",\"args\":{\"survival_sec\":7.25}}"
        "\n"
        "{\"this\":\"is json but not a record\"}\n"
        "{\"ts\":3000,\"component\":\"x\",\"name\":\"trunc");
    const TraceLog log = readTraceLog(in);
    ASSERT_EQ(log.records.size(), 2u);
    EXPECT_EQ(log.skipped, 2u);
    EXPECT_EQ(log.lines, 5u);

    const TraceRecord &first = log.records[0];
    EXPECT_EQ(first.ts, 1000);
    EXPECT_EQ(first.dur, 0);
    EXPECT_EQ(first.job, -1);
    EXPECT_EQ(first.component, "policy");
    EXPECT_EQ(first.name, "policy.transition");
    EXPECT_EQ(first.argString("to"), "L2-MinorIncident");
    EXPECT_EQ(first.argString("absent"), "");
    EXPECT_DOUBLE_EQ(first.argNumber("absent", -7.0), -7.0);

    const TraceRecord &second = log.records[1];
    EXPECT_EQ(second.ts, 2000);
    EXPECT_EQ(second.dur, 500);
    EXPECT_EQ(second.job, 3);
    EXPECT_DOUBLE_EQ(second.argNumber("survival_sec"), 7.25);
    EXPECT_NE(second.arg("survival_sec"), nullptr);
    EXPECT_EQ(second.arg("nope"), nullptr);
}

TEST(TraceReader, MissingFileReportsError)
{
    std::string error;
    const auto log =
        readTraceLogFile("/nonexistent/trace.jsonl", &error);
    EXPECT_FALSE(log.has_value());
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------
// Simulator probe
// ---------------------------------------------------------------------

TEST(SimProbe, RecordsEngineHealthSeries)
{
    sim::Simulator sim;
    TelemetryHub hub;
    attachSimulator(sim, hub, kTicksPerSecond);
    sim.run(10 * kTicksPerSecond);

    const TimeSeries *depth = hub.find("sim.queue_depth");
    const TimeSeries *time = hub.find("sim.time_sec");
    ASSERT_NE(depth, nullptr);
    ASSERT_NE(time, nullptr);
    EXPECT_GE(depth->totalSamples(), 5u);
    EXPECT_GE(time->last().value, 1.0);
}
