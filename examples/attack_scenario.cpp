/**
 * @file
 * Walkthrough of the paper's two-phase power attack against a
 * battery-backed cluster, narrated step by step:
 *
 *   1. the adversary places VMs on victim racks and blends in;
 *   2. Phase I: a sustained visible peak drains the DEB while the
 *      performance side channel watches for DVFS throttling;
 *   3. Phase II: hidden spikes against the drained rack;
 *   4. the outcome is priced with the Ponemon outage-cost model.
 *
 * Demonstrates TwoPhaseAttacker, AttackOutcome telemetry series and
 * OutageCostModel.
 */

#include <iostream>

#include "attack/attacker.h"
#include "core/config.h"
#include "core/datacenter.h"
#include "core/outage_cost.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"
#include "util/table.h"

using namespace pad;

int
main()
{
    // A power-constrained facility: rack soft limits at 75% of
    // nameplate, the PDU at 70%.
    trace::SyntheticTraceConfig tc;
    tc.machines = 220;
    tc.days = 2.0;
    trace::SyntheticGoogleTrace gen(tc);
    const auto events = gen.generate();
    trace::Workload workload(events, tc.machines,
                             static_cast<Tick>(tc.days * kTicksPerDay));

    core::DataCenterConfig cfg;
    cfg.scheme = core::SchemeKind::PS; // the undefended state of the art
    cfg.clusterBudgetFraction = 0.70;
    cfg.deb = core::defaultDebConfig(cfg.rackNameplate());
    core::DataCenter dc(cfg, &workload);

    std::cout << "== preparation ==\n"
              << "warming the cluster to 11:00 on day 2; the "
                 "adversary holds 4 nodes in each of 6 racks\n\n";
    dc.runCoarseUntil(kTicksPerDay + 11 * kTicksPerHour);

    attack::AttackerConfig ac;
    ac.controlledNodes = 4;
    ac.kind = attack::VirusKind::CpuIntensive;
    ac.train = attack::SpikeTrain{2.0, 4.0, 1.0, 0.55};
    ac.prepareSec = 60.0;
    ac.maxDrainSec = 600.0;
    attack::TwoPhaseAttacker attacker(ac);

    core::AttackScenario sc;
    sc.targetPolicy = core::TargetPolicy::Fixed;
    sc.targetRack = core::rackByLoadPercentile(
        workload, cfg, dc.now(), dc.now() + kTicksPerHour, 90.0);
    for (double pct : {85.0, 80.0, 75.0, 70.0, 65.0}) {
        const int extra = core::rackByLoadPercentile(
            workload, cfg, dc.now(), dc.now() + kTicksPerHour, pct);
        if (extra != sc.targetRack)
            sc.extraVictimRacks.push_back(extra);
    }
    sc.durationSec = 1500.0;

    const auto out = dc.runAttack(attacker, sc);

    std::cout << "== attack timeline (victim rack " << sc.targetRack
              << ") ==\n";
    TextTable table("");
    table.setHeader({"t(s)", "rack demand (W)", "utility draw (W)",
                     "DEB SOC"});
    const Tick start = out.rackPower.samples().front().when;
    for (Tick t = start; t < start + secondsToTicks(sc.durationSec);
         t += 2 * kTicksPerMinute) {
        table.addRow({formatFixed(ticksToSeconds(t - start), 0),
                      formatFixed(out.rackPower.valueAt(t), 0),
                      formatFixed(out.rackDraw.valueAt(t), 0),
                      formatPercent(out.rackSoc.valueAt(t), 1)});
    }
    table.print(std::cout);

    std::cout << "\n== outcome ==\n";
    if (out.phaseTwoStartSec >= 0.0)
        std::cout << "Phase II began " << formatFixed(
                         out.phaseTwoStartSec, 0)
                  << " s in; " << out.spikesLaunched
                  << " hidden spikes launched\n";
    std::cout << "effective attacks at the victim rack: "
              << out.rack.effectiveAttacks() << "\n"
              << "survival time: " << formatFixed(out.survivalSec, 0)
              << " s (window " << formatFixed(sc.durationSec, 0)
              << " s)\n";

    // Price the incident: a tripped rack needs investigation and
    // remediation (>= 2 h for 75% of surveyed facilities).
    core::OutageCostModel cost;
    if (out.survivalSec < sc.durationSec) {
        const double loss = cost.expectedIncidentLossUsd(5.0);
        std::cout << "expected incident loss (5 min outage + "
                     "remediation): $"
                  << formatFixed(loss, 0) << "\n";
    } else {
        std::cout << "the cluster rode out the attack window\n";
    }
    return 0;
}
