/**
 * @file
 * padsim — configurable command-line driver for the PAD simulator.
 *
 * Runs a two-phase power attack against a synthetic Google-style
 * cluster under a chosen management scheme and prints (optionally
 * CSV-exports) the outcome. All knobs of the paper's evaluation are
 * exposed as flags:
 *
 *   padsim [--config FILE]
 *          [--scheme Conv|PS|PSPC|uDEB|vDEB|PAD]
 *          [--backend baseline|optimized|soa]
 *          [--virus cpu|mem|io] [--style dense|sparse]
 *          [--nodes N] [--racks K] [--duration SEC]
 *          [--budget FRAC] [--cluster-budget FRAC]
 *          [--victim-pct P] [--hour H] [--seed S]
 *          [--csv FILE] [--stats] [--quiet]
 *          [--trace FILE] [--trace-format jsonl|chrome]
 *          [--stats-json FILE] [--manifest FILE]
 *          [--log-level silent|error|warn|info|debug]
 *          [--detector] [--prom FILE]
 *          [--metrics-port N] [--metrics-linger SEC]
 *          [--alerts RULES] [--incidents FILE]
 *          [--incident-html FILE] [--profile-engine]
 *
 * A --config file supplies the same knobs as `key = value` lines
 * (scheme, backend, virus, style, nodes, racks, duration, budget,
 * cluster_budget, victim_pct, hour, seed, csv, stats, quiet, trace,
 * trace_format, stats_json, manifest, log_level, detector, prom,
 * metrics_port, metrics_linger, alerts, incidents, incident_html,
 * profile_engine); command-line flags override it.
 *
 * --backend selects the simulation engine (src/engine): baseline and
 * optimized are the scalar engine with the hot-path switches off/on
 * (bit-identical outputs; optimized is the default), soa is the
 * opt-in structure-of-arrays batch engine (physically equivalent,
 * not bit-identical). --profile is a deprecated alias.
 *
 * Observability: --prom dumps the final stats registry plus telemetry
 * time-series in Prometheus text exposition format; --metrics-port
 * serves the same rendering over HTTP at /metrics on 127.0.0.1 (port
 * 0 picks a free port, printed on startup). --metrics-linger keeps
 * the endpoint alive for SEC seconds after the run so a scraper can
 * collect the final state. Telemetry recording is enabled only when
 * one of the two is requested — otherwise the run is byte-identical
 * to a build without any of this.
 *
 * Profiling: --profile-engine attaches the engine self-profiler
 * (src/obs/prof.h) for the run. Phase timings, cache hit rates and
 * allocation gauges land in the stats registry as engine.* entries,
 * so they flow into --stats, --stats-json, --prom and the manifest
 * automatically; with --trace they additionally appear as Chrome
 * counter tracks. Off by default — a run without the flag is
 * byte-identical to one on a build without the profiler.
 *
 * Alerting: --alerts evaluates a JSON rules file online against the
 * run's telemetry and curated trace events (src/alert); --incidents
 * streams the sealed incident records as JSONL and --incident-html
 * renders the self-contained dashboard. Alerting is observational
 * like telemetry: the simulation outcome and every other artifact
 * stay byte-identical whether or not it is on.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "alert/engine.h"
#include "alert/html.h"
#include "alert/incident.h"
#include "alert/rule.h"
#include "attack/attacker.h"
#include "attack/virus_trace.h"
#include "core/config.h"
#include "core/datacenter.h"
#include "engine/backend.h"
#include "engine/prof_stats.h"
#include "obs/manifest.h"
#include "obs/prof.h"
#include "obs/trace_sink.h"
#include "obs/tracer.h"
#include "sim/stats_registry.h"
#include "telemetry/http.h"
#include "telemetry/hub.h"
#include "telemetry/prom.h"
#include "telemetry/remote_write.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"
#include "util/csv.h"
#include "util/kv_config.h"
#include "util/logging.h"
#include "util/table.h"

using namespace pad;

namespace {

struct Options {
    core::SchemeKind scheme = core::SchemeKind::Pad;
    engine::BackendKind backend = engine::BackendKind::Optimized;
    attack::VirusKind virus = attack::VirusKind::CpuIntensive;
    attack::AttackStyle style = attack::AttackStyle::Dense;
    int nodes = 4;
    int racks = 8;
    double durationSec = 1500.0;
    double budget = 0.75;
    double clusterBudget = 0.70;
    double victimPct = 90.0;
    double hour = 11.0;
    std::uint64_t seed = 42;
    std::string csvPath;
    bool statsDump = false;
    bool quiet = false;
    std::string tracePath;
    std::string traceFormat = "jsonl";
    std::string statsJsonPath;
    std::string manifestPath;
    std::string logLevel;
    bool detector = false;
    std::string promPath;
    int metricsPort = -1; // -1 = no HTTP endpoint; 0 = ephemeral
    double metricsLingerSec = 0.0;
    std::string alertsPath;
    std::string incidentsPath;
    std::string incidentHtmlPath;
    bool profileEngine = false;
    std::string pushTo;             // HOST:PORT; empty = push off
    std::string pushSource = "padsim";
};

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: padsim [--config FILE]\n"
           "              [--scheme Conv|PS|PSPC|uDEB|vDEB|PAD]\n"
           "              [--backend baseline|optimized|soa]\n"
           "              [--virus cpu|mem|io] [--style dense|sparse]\n"
           "              [--nodes N] [--racks K] [--duration SEC]\n"
           "              [--budget FRAC] [--cluster-budget FRAC]\n"
           "              [--victim-pct P] [--hour H] [--seed S]\n"
           "              [--csv FILE] [--stats] [--quiet]\n"
           "              [--trace FILE] [--trace-format jsonl|chrome]\n"
           "              [--stats-json FILE] [--manifest FILE]\n"
           "              [--log-level silent|error|warn|info|debug]\n"
           "              [--detector] [--prom FILE]\n"
           "              [--metrics-port N] [--metrics-linger SEC]\n"
           "              [--alerts RULES] [--incidents FILE]\n"
           "              [--incident-html FILE] [--profile-engine]\n"
           "              [--push-to HOST:PORT] [--push-source NAME]\n";
    std::exit(2);
}

attack::VirusKind parseVirus(const std::string &s);

/**
 * CLI edge of scheme parsing: schemeFromName() itself just returns
 * nullopt for unknown names; turning that into an error message and
 * exit is this binary's job.
 */
core::SchemeKind
requireScheme(const std::string &name)
{
    if (const auto scheme = core::schemeFromName(name))
        return *scheme;
    std::cerr << "padsim: unknown scheme name: " << name << "\n";
    usage();
}

/** Same CLI edge for engine-backend names. */
engine::BackendKind
requireBackend(const std::string &name)
{
    if (const auto kind = engine::backendFromName(name))
        return *kind;
    std::cerr << "padsim: unknown backend name: " << name << "\n";
    usage();
}

/** Apply a key = value config file as option defaults. */
void
applyConfig(Options &opt, const std::string &path)
{
    const KvConfig cfg = KvConfig::fromFile(path);
    if (cfg.has("scheme"))
        opt.scheme = requireScheme(cfg.getString("scheme"));
    if (cfg.has("backend"))
        opt.backend = requireBackend(cfg.getString("backend"));
    if (cfg.has("virus"))
        opt.virus = parseVirus(cfg.getString("virus"));
    if (cfg.has("style"))
        opt.style = cfg.getString("style") == "sparse"
                        ? attack::AttackStyle::Sparse
                        : attack::AttackStyle::Dense;
    opt.nodes = static_cast<int>(cfg.getInt("nodes", opt.nodes));
    opt.racks = static_cast<int>(cfg.getInt("racks", opt.racks));
    opt.durationSec = cfg.getDouble("duration", opt.durationSec);
    opt.budget = cfg.getDouble("budget", opt.budget);
    opt.clusterBudget =
        cfg.getDouble("cluster_budget", opt.clusterBudget);
    opt.victimPct = cfg.getDouble("victim_pct", opt.victimPct);
    opt.hour = cfg.getDouble("hour", opt.hour);
    opt.seed = static_cast<std::uint64_t>(
        cfg.getInt("seed", static_cast<long>(opt.seed)));
    opt.csvPath = cfg.getString("csv", opt.csvPath);
    opt.statsDump = cfg.getBool("stats", opt.statsDump);
    opt.quiet = cfg.getBool("quiet", opt.quiet);
    opt.tracePath = cfg.getString("trace", opt.tracePath);
    opt.traceFormat = cfg.getString("trace_format", opt.traceFormat);
    opt.statsJsonPath = cfg.getString("stats_json", opt.statsJsonPath);
    opt.manifestPath = cfg.getString("manifest", opt.manifestPath);
    opt.logLevel = cfg.getString("log_level", opt.logLevel);
    opt.detector = cfg.getBool("detector", opt.detector);
    opt.promPath = cfg.getString("prom", opt.promPath);
    opt.metricsPort = static_cast<int>(
        cfg.getInt("metrics_port", opt.metricsPort));
    opt.metricsLingerSec =
        cfg.getDouble("metrics_linger", opt.metricsLingerSec);
    opt.alertsPath = cfg.getString("alerts", opt.alertsPath);
    opt.incidentsPath = cfg.getString("incidents", opt.incidentsPath);
    opt.incidentHtmlPath =
        cfg.getString("incident_html", opt.incidentHtmlPath);
    opt.profileEngine =
        cfg.getBool("profile_engine", opt.profileEngine);
    opt.pushTo = cfg.getString("push_to", opt.pushTo);
    opt.pushSource = cfg.getString("push_source", opt.pushSource);
}

attack::VirusKind
parseVirus(const std::string &s)
{
    if (s == "cpu")
        return attack::VirusKind::CpuIntensive;
    if (s == "mem")
        return attack::VirusKind::MemIntensive;
    if (s == "io")
        return attack::VirusKind::IoIntensive;
    usage();
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> std::string {
        if (++i >= argc)
            usage();
        return argv[i];
    };
    // Config file first so explicit flags override it.
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--config")
            applyConfig(opt, argv[i + 1]);
    }
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--config")
            need(i); // already applied
        else if (arg == "--scheme")
            opt.scheme = requireScheme(need(i));
        else if (arg == "--backend")
            opt.backend = requireBackend(need(i));
        else if (arg == "--profile") {
            warn("--profile is deprecated; use --backend "
                 "baseline|optimized|soa");
            opt.backend = requireBackend(need(i));
        }
        else if (arg == "--virus")
            opt.virus = parseVirus(need(i));
        else if (arg == "--style")
            opt.style = need(i) == std::string("sparse")
                            ? attack::AttackStyle::Sparse
                            : attack::AttackStyle::Dense;
        else if (arg == "--nodes")
            opt.nodes = std::atoi(need(i).c_str());
        else if (arg == "--racks")
            opt.racks = std::atoi(need(i).c_str());
        else if (arg == "--duration")
            opt.durationSec = std::atof(need(i).c_str());
        else if (arg == "--budget")
            opt.budget = std::atof(need(i).c_str());
        else if (arg == "--cluster-budget")
            opt.clusterBudget = std::atof(need(i).c_str());
        else if (arg == "--victim-pct")
            opt.victimPct = std::atof(need(i).c_str());
        else if (arg == "--hour")
            opt.hour = std::atof(need(i).c_str());
        else if (arg == "--seed")
            opt.seed = static_cast<std::uint64_t>(
                std::strtoull(need(i).c_str(), nullptr, 10));
        else if (arg == "--csv")
            opt.csvPath = need(i);
        else if (arg == "--stats")
            opt.statsDump = true;
        else if (arg == "--quiet")
            opt.quiet = true;
        else if (arg == "--trace")
            opt.tracePath = need(i);
        else if (arg == "--trace-format")
            opt.traceFormat = need(i);
        else if (arg == "--stats-json")
            opt.statsJsonPath = need(i);
        else if (arg == "--manifest")
            opt.manifestPath = need(i);
        else if (arg == "--log-level")
            opt.logLevel = need(i);
        else if (arg == "--detector")
            opt.detector = true;
        else if (arg == "--prom")
            opt.promPath = need(i);
        else if (arg == "--metrics-port")
            opt.metricsPort = std::atoi(need(i).c_str());
        else if (arg == "--metrics-linger")
            opt.metricsLingerSec = std::atof(need(i).c_str());
        else if (arg == "--alerts")
            opt.alertsPath = need(i);
        else if (arg == "--incidents")
            opt.incidentsPath = need(i);
        else if (arg == "--incident-html")
            opt.incidentHtmlPath = need(i);
        else if (arg == "--profile-engine")
            opt.profileEngine = true;
        else if (arg == "--push-to")
            opt.pushTo = need(i);
        else if (arg == "--push-source") {
            opt.pushSource = need(i);
            if (opt.pushSource.empty())
                usage();
        } else
            usage();
    }
    if (opt.alertsPath.empty() && (!opt.incidentsPath.empty() ||
                                   !opt.incidentHtmlPath.empty())) {
        std::cerr << "padsim: --incidents/--incident-html require "
                     "--alerts\n";
        usage();
    }
    if (opt.nodes < 1 || opt.nodes > 10 || opt.racks < 1 ||
        opt.racks > 22 || opt.durationSec <= 0.0)
        usage();
    if (opt.metricsPort > 65535 || opt.metricsLingerSec < 0.0)
        usage();
    if (!obs::traceFormatFromName(opt.traceFormat)) {
        std::cerr << "padsim: unknown trace format: " << opt.traceFormat
                  << "\n";
        usage();
    }
    if (!opt.logLevel.empty() && !logLevelFromName(opt.logLevel)) {
        std::cerr << "padsim: unknown log level: " << opt.logLevel
                  << "\n";
        usage();
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    initLoggingFromEnvironment();
    const Options opt = parseArgs(argc, argv);
    if (opt.quiet)
        setLogLevel(LogLevel::Warn);
    if (!opt.logLevel.empty())
        setLogLevel(*logLevelFromName(opt.logLevel));

    const auto wallStart = std::chrono::steady_clock::now();
    std::unique_ptr<obs::FileTraceSink> traceSink;
    if (!opt.tracePath.empty()) {
        traceSink = obs::FileTraceSink::open(
            opt.tracePath, *obs::traceFormatFromName(opt.traceFormat));
        if (!traceSink)
            return 1;
    }
    const obs::TraceScope traceScope(traceSink.get());

    // --alerts: parse the rules up front so a bad file fails before
    // the simulation spends any time.
    std::unique_ptr<alert::AlertEngine> alerts;
    if (!opt.alertsPath.empty()) {
        std::string error;
        auto rules = alert::loadRulesFile(opt.alertsPath, &error);
        if (!rules) {
            std::cerr << "padsim: " << error << "\n";
            return 1;
        }
        alerts =
            std::make_unique<alert::AlertEngine>(std::move(*rules));
    }

    trace::SyntheticTraceConfig tc;
    tc.machines = 220;
    tc.days = 2.0;
    tc.seed = opt.seed;
    trace::SyntheticGoogleTrace gen(tc);
    const auto events = gen.generate();
    trace::Workload workload(events, tc.machines,
                             static_cast<Tick>(tc.days * kTicksPerDay));

    core::DataCenterConfig cfg;
    cfg.scheme = opt.scheme;
    cfg.budgetFraction = opt.budget;
    cfg.clusterBudgetFraction = opt.clusterBudget;
    cfg.deb = core::defaultDebConfig(cfg.rackNameplate());
    cfg.seed = opt.seed;
    cfg.detectorResponse = opt.detector;
    const auto enginePtr =
        engine::makeClusterEngine(opt.backend, cfg, &workload);
    engine::ClusterEngine &dc = *enginePtr;

    obs::EngineProfiler prof;
    if (opt.profileEngine)
        dc.setProfiler(&prof);

    // Telemetry is recorded only when something will consume it, so
    // plain runs stay byte-identical to a build without these flags.
    // The alert engine feeds off hub samples, so --alerts activates
    // the hub too (still observational — results never change).
    telemetry::TelemetryHub hub;
    const bool wantTelemetry = !opt.promPath.empty() ||
                               opt.metricsPort >= 0 ||
                               !opt.pushTo.empty();
    if (wantTelemetry || alerts)
        dc.setTelemetry(&hub);
    if (alerts)
        hub.setListener(alerts.get());

    // Curated trace events reach the engine through a sink wrapper
    // bound around the run; the inner sink (possibly null) still
    // receives everything, so --trace output is unaffected.
    std::unique_ptr<alert::AlertTraceSink> alertFeed;
    std::optional<obs::TraceScope> alertScope;
    if (alerts) {
        alertFeed = std::make_unique<alert::AlertTraceSink>(
            *alerts, traceSink.get());
        alertScope.emplace(alertFeed.get());
    }

    // The scrape endpoint renders the live hub during the run; the
    // stats registry joins once the run has finalised it (the atomic
    // pointer flips exactly once, after which the registry is only
    // ever read).
    std::atomic<const sim::StatsRegistry *> scrapeStats{nullptr};
    std::unique_ptr<telemetry::MetricsHttpServer> metrics;
    if (opt.metricsPort >= 0) {
        metrics = std::make_unique<telemetry::MetricsHttpServer>(
            opt.metricsPort, [&hub, &scrapeStats] {
                return telemetry::PromWriter().render(
                    scrapeStats.load(std::memory_order_acquire),
                    &hub);
            });
        std::string error;
        if (!metrics->start(&error)) {
            std::cerr << "padsim: cannot serve metrics: " << error
                      << "\n";
            return 1;
        }
        std::cout << "metrics endpoint: http://127.0.0.1:"
                  << metrics->port() << "/metrics\n";
    }

    dc.runCoarseUntil(kTicksPerDay +
                      static_cast<Tick>(opt.hour * kTicksPerHour));

    attack::AttackerConfig ac;
    ac.controlledNodes = opt.nodes;
    ac.kind = opt.virus;
    ac.train = attack::spikeTrainFor(opt.style, opt.virus);
    ac.prepareSec = 60.0;
    ac.maxDrainSec = 600.0;
    ac.seed = opt.seed;
    attack::TwoPhaseAttacker attacker(ac);

    core::AttackScenario sc;
    sc.targetPolicy = core::TargetPolicy::Fixed;
    sc.targetRack = core::rackByLoadPercentile(
        workload, cfg, dc.now(),
        dc.now() + secondsToTicks(opt.durationSec), opt.victimPct);
    for (int i = 1; i < opt.racks; ++i) {
        const double pct =
            std::max(0.0, opt.victimPct - 5.0 * i);
        const int rack = core::rackByLoadPercentile(
            workload, cfg, dc.now(),
            dc.now() + secondsToTicks(opt.durationSec), pct);
        if (rack != sc.targetRack &&
            std::find(sc.extraVictimRacks.begin(),
                      sc.extraVictimRacks.end(),
                      rack) == sc.extraVictimRacks.end())
            sc.extraVictimRacks.push_back(rack);
    }
    sc.durationSec = opt.durationSec;

    const auto out = dc.runAttack(attacker, sc);

    if (alerts) {
        hub.setListener(nullptr);
        alertScope.reset();
        alerts->finalize(dc.now());
    }

    TextTable table("padsim result");
    table.setHeader({"metric", "value"});
    table.addRow({"scheme", core::schemeName(opt.scheme)});
    table.addRow({"backend", engine::backendName(opt.backend)});
    table.addRow({"virus", attack::virusKindName(opt.virus)});
    table.addRow({"style", attack::attackStyleName(opt.style)});
    table.addRow({"victim rack", std::to_string(sc.targetRack)});
    table.addRow({"attacked racks",
                  std::to_string(1 + sc.extraVictimRacks.size())});
    table.addRow({"survival (s)", formatFixed(out.survivalSec, 1)});
    table.addRow({"effective attacks",
                  std::to_string(out.rack.effectiveAttacks())});
    table.addRow({"spikes launched",
                  std::to_string(out.spikesLaunched)});
    table.addRow({"phase II at (s)",
                  formatFixed(out.phaseTwoStartSec, 1)});
    table.addRow({"throughput", formatFixed(out.throughput, 4)});
    table.addRow({"max shed ratio",
                  formatPercent(out.maxShedRatio, 1)});
    table.print(std::cout);

    if (traceSink)
        traceSink->close();

    sim::StatsRegistry stats;
    dc.exportStats(stats);
    if (opt.profileEngine)
        engine::exportProfilerStats(prof, stats);
    stats
        .registerScalar("attack.survival_sec",
                        "attack start to first overload")
        .set(out.survivalSec);
    stats
        .registerScalar("attack.throughput",
                        "benign throughput over the window")
        .set(out.throughput);
    stats
        .registerCounter("attack.spikes_launched",
                         "hidden spikes launched in Phase II")
        .add(static_cast<std::uint64_t>(
            std::max(0, out.spikesLaunched)));
    scrapeStats.store(&stats, std::memory_order_release);

    std::vector<telemetry::AlertStateSample> alertStates;
    if (alerts)
        alertStates = alerts->ruleStates();

    // --push-to: a batch run ships its whole hub plus the final
    // stats registry as one end-of-run push (DESIGN.md §14). The
    // drain deadline bounds how long a dead receiver can stall the
    // exit; anything undelivered shows up in the printed counters.
    if (!opt.pushTo.empty()) {
        std::string error;
        const auto target =
            telemetry::parseHostPort(opt.pushTo, &error);
        if (!target) {
            std::cerr << "padsim: --push-to: " << error << "\n";
            return 1;
        }
        telemetry::RemoteWriteOptions rw;
        rw.host = target->first;
        rw.port = target->second;
        rw.source = opt.pushSource;
        rw.jitterSeed = opt.seed * 0x9e3779b97f4a7c15ULL + 1;
        telemetry::RemoteWriteShipper shipper(std::move(rw), &hub);
        if (!shipper.start(&error)) {
            std::cerr << "padsim: " << error << "\n";
            return 1;
        }
        shipper.finish(dc.now(), &stats);
        const auto c = shipper.counters();
        std::cout << "\npushed " << c.batchesSent << " batches ("
                  << c.samplesShipped << " samples) to " << opt.pushTo
                  << " as " << opt.pushSource << "\n";
        if (c.batchesDropped > 0)
            warn("padsim: {} push batches dropped (receiver at {} "
                 "unreachable?)",
                 c.batchesDropped, opt.pushTo);
    }

    if (!opt.promPath.empty()) {
        std::ofstream prom(opt.promPath);
        if (!prom) {
            warn("padsim: cannot write Prometheus exposition to {}",
                 opt.promPath);
        } else {
            telemetry::PromWriter().write(
                prom, &stats, &hub, alerts ? &alertStates : nullptr);
            std::cout << "\nPrometheus exposition written to "
                      << opt.promPath << "\n";
        }
    }

    if (!opt.incidentsPath.empty()) {
        std::ofstream os(opt.incidentsPath);
        if (!os) {
            warn("padsim: cannot write incidents to {}",
                 opt.incidentsPath);
        } else {
            alert::writeIncidentsJsonl(os, alerts->incidents());
            std::cout << "\nincidents written to " << opt.incidentsPath
                      << "\n";
        }
    }

    if (!opt.incidentHtmlPath.empty()) {
        std::ofstream os(opt.incidentHtmlPath);
        if (!os) {
            warn("padsim: cannot write incident dashboard to {}",
                 opt.incidentHtmlPath);
        } else {
            alert::writeIncidentDashboard(os, alerts->incidents());
            std::cout << "\nincident dashboard written to "
                      << opt.incidentHtmlPath << "\n";
        }
    }

    if (opt.statsDump) {
        std::cout << "\n";
        dc.dumpStats(std::cout);
    }

    if (!opt.statsJsonPath.empty()) {
        std::ofstream js(opt.statsJsonPath);
        if (!js) {
            warn("padsim: cannot write stats JSON to {}",
                 opt.statsJsonPath);
        } else {
            stats.dumpJson(js);
            js << "\n";
        }
    }

    if (!opt.manifestPath.empty()) {
        obs::RunManifest manifest;
        manifest.tool = "padsim";
        manifest.experiment = core::schemeName(opt.scheme);
        manifest.seed = opt.seed;
        manifest.config = {
            {"scheme", std::string(core::schemeName(opt.scheme))},
            {"backend", std::string(engine::backendName(opt.backend))},
            {"virus", std::string(attack::virusKindName(opt.virus))},
            {"style", std::string(attack::attackStyleName(opt.style))},
            {"nodes", std::to_string(opt.nodes)},
            {"racks", std::to_string(opt.racks)},
            {"duration_sec", formatFixed(opt.durationSec, 1)},
            {"budget", formatFixed(opt.budget, 4)},
            {"cluster_budget", formatFixed(opt.clusterBudget, 4)},
            {"victim_pct", formatFixed(opt.victimPct, 1)},
            {"hour", formatFixed(opt.hour, 2)},
        };
        manifest.argv.assign(argv, argv + argc);
        manifest.traceFile = opt.tracePath;
        if (!opt.tracePath.empty())
            manifest.traceFormat = opt.traceFormat;
        manifest.statsJsonFile = opt.statsJsonPath;
        manifest.pushTarget = opt.pushTo;
        manifest.statsJson = stats.dumpJsonString();
        manifest.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wallStart)
                .count();
        writeManifestFile(opt.manifestPath, manifest);
    }

    if (!opt.csvPath.empty()) {
        CsvWriter csv(opt.csvPath);
        csv.write({"t_seconds", "rack_power_w", "rack_draw_w",
                   "rack_soc", "udeb_soc", "level"});
        const Tick start = out.rackPower.samples().front().when;
        for (const auto &s : out.rackPower.samples()) {
            csv.writeNumbers({ticksToSeconds(s.when - start), s.value,
                              out.rackDraw.valueAt(s.when),
                              out.rackSoc.valueAt(s.when),
                              out.udebSoc.valueAt(s.when),
                              out.level.valueAt(s.when)});
        }
        std::cout << "\ntime series written to " << opt.csvPath
                  << "\n";
    }

    if (metrics) {
        if (opt.metricsLingerSec > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(opt.metricsLingerSec));
        metrics->stop();
    }
    return 0;
}
