/**
 * @file
 * padsim — configurable command-line driver for the PAD simulator.
 *
 * Runs a two-phase power attack against a synthetic Google-style
 * cluster under a chosen management scheme and prints (optionally
 * CSV-exports) the outcome. All knobs of the paper's evaluation are
 * exposed as flags:
 *
 *   padsim [--config FILE]
 *          [--scheme Conv|PS|PSPC|uDEB|vDEB|PAD]
 *          [--virus cpu|mem|io] [--style dense|sparse]
 *          [--nodes N] [--racks K] [--duration SEC]
 *          [--budget FRAC] [--cluster-budget FRAC]
 *          [--victim-pct P] [--hour H] [--seed S]
 *          [--csv FILE] [--stats] [--quiet]
 *
 * A --config file supplies the same knobs as `key = value` lines
 * (scheme, virus, style, nodes, racks, duration, budget,
 * cluster_budget, victim_pct, hour, seed, csv, stats, quiet);
 * command-line flags override it.
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "attack/attacker.h"
#include "attack/virus_trace.h"
#include "core/config.h"
#include "core/datacenter.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"
#include "util/csv.h"
#include "util/kv_config.h"
#include "util/logging.h"
#include "util/table.h"

using namespace pad;

namespace {

struct Options {
    core::SchemeKind scheme = core::SchemeKind::Pad;
    attack::VirusKind virus = attack::VirusKind::CpuIntensive;
    attack::AttackStyle style = attack::AttackStyle::Dense;
    int nodes = 4;
    int racks = 8;
    double durationSec = 1500.0;
    double budget = 0.75;
    double clusterBudget = 0.70;
    double victimPct = 90.0;
    double hour = 11.0;
    std::uint64_t seed = 42;
    std::string csvPath;
    bool statsDump = false;
    bool quiet = false;
};

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: padsim [--config FILE]\n"
           "              [--scheme Conv|PS|PSPC|uDEB|vDEB|PAD]\n"
           "              [--virus cpu|mem|io] [--style dense|sparse]\n"
           "              [--nodes N] [--racks K] [--duration SEC]\n"
           "              [--budget FRAC] [--cluster-budget FRAC]\n"
           "              [--victim-pct P] [--hour H] [--seed S]\n"
           "              [--csv FILE] [--stats] [--quiet]\n";
    std::exit(2);
}

attack::VirusKind parseVirus(const std::string &s);

/**
 * CLI edge of scheme parsing: schemeFromName() itself just returns
 * nullopt for unknown names; turning that into an error message and
 * exit is this binary's job.
 */
core::SchemeKind
requireScheme(const std::string &name)
{
    if (const auto scheme = core::schemeFromName(name))
        return *scheme;
    std::cerr << "padsim: unknown scheme name: " << name << "\n";
    usage();
}

/** Apply a key = value config file as option defaults. */
void
applyConfig(Options &opt, const std::string &path)
{
    const KvConfig cfg = KvConfig::fromFile(path);
    if (cfg.has("scheme"))
        opt.scheme = requireScheme(cfg.getString("scheme"));
    if (cfg.has("virus"))
        opt.virus = parseVirus(cfg.getString("virus"));
    if (cfg.has("style"))
        opt.style = cfg.getString("style") == "sparse"
                        ? attack::AttackStyle::Sparse
                        : attack::AttackStyle::Dense;
    opt.nodes = static_cast<int>(cfg.getInt("nodes", opt.nodes));
    opt.racks = static_cast<int>(cfg.getInt("racks", opt.racks));
    opt.durationSec = cfg.getDouble("duration", opt.durationSec);
    opt.budget = cfg.getDouble("budget", opt.budget);
    opt.clusterBudget =
        cfg.getDouble("cluster_budget", opt.clusterBudget);
    opt.victimPct = cfg.getDouble("victim_pct", opt.victimPct);
    opt.hour = cfg.getDouble("hour", opt.hour);
    opt.seed = static_cast<std::uint64_t>(
        cfg.getInt("seed", static_cast<long>(opt.seed)));
    opt.csvPath = cfg.getString("csv", opt.csvPath);
    opt.statsDump = cfg.getBool("stats", opt.statsDump);
    opt.quiet = cfg.getBool("quiet", opt.quiet);
}

attack::VirusKind
parseVirus(const std::string &s)
{
    if (s == "cpu")
        return attack::VirusKind::CpuIntensive;
    if (s == "mem")
        return attack::VirusKind::MemIntensive;
    if (s == "io")
        return attack::VirusKind::IoIntensive;
    usage();
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> std::string {
        if (++i >= argc)
            usage();
        return argv[i];
    };
    // Config file first so explicit flags override it.
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--config")
            applyConfig(opt, argv[i + 1]);
    }
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--config")
            need(i); // already applied
        else if (arg == "--scheme")
            opt.scheme = requireScheme(need(i));
        else if (arg == "--virus")
            opt.virus = parseVirus(need(i));
        else if (arg == "--style")
            opt.style = need(i) == std::string("sparse")
                            ? attack::AttackStyle::Sparse
                            : attack::AttackStyle::Dense;
        else if (arg == "--nodes")
            opt.nodes = std::atoi(need(i).c_str());
        else if (arg == "--racks")
            opt.racks = std::atoi(need(i).c_str());
        else if (arg == "--duration")
            opt.durationSec = std::atof(need(i).c_str());
        else if (arg == "--budget")
            opt.budget = std::atof(need(i).c_str());
        else if (arg == "--cluster-budget")
            opt.clusterBudget = std::atof(need(i).c_str());
        else if (arg == "--victim-pct")
            opt.victimPct = std::atof(need(i).c_str());
        else if (arg == "--hour")
            opt.hour = std::atof(need(i).c_str());
        else if (arg == "--seed")
            opt.seed = static_cast<std::uint64_t>(
                std::strtoull(need(i).c_str(), nullptr, 10));
        else if (arg == "--csv")
            opt.csvPath = need(i);
        else if (arg == "--stats")
            opt.statsDump = true;
        else if (arg == "--quiet")
            opt.quiet = true;
        else
            usage();
    }
    if (opt.nodes < 1 || opt.nodes > 10 || opt.racks < 1 ||
        opt.racks > 22 || opt.durationSec <= 0.0)
        usage();
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    if (opt.quiet)
        setLogLevel(LogLevel::Warn);

    trace::SyntheticTraceConfig tc;
    tc.machines = 220;
    tc.days = 2.0;
    tc.seed = opt.seed;
    trace::SyntheticGoogleTrace gen(tc);
    const auto events = gen.generate();
    trace::Workload workload(events, tc.machines,
                             static_cast<Tick>(tc.days * kTicksPerDay));

    core::DataCenterConfig cfg;
    cfg.scheme = opt.scheme;
    cfg.budgetFraction = opt.budget;
    cfg.clusterBudgetFraction = opt.clusterBudget;
    cfg.deb = core::defaultDebConfig(cfg.rackNameplate());
    cfg.seed = opt.seed;
    core::DataCenter dc(cfg, &workload);
    dc.runCoarseUntil(kTicksPerDay +
                      static_cast<Tick>(opt.hour * kTicksPerHour));

    attack::AttackerConfig ac;
    ac.controlledNodes = opt.nodes;
    ac.kind = opt.virus;
    ac.train = attack::spikeTrainFor(opt.style, opt.virus);
    ac.prepareSec = 60.0;
    ac.maxDrainSec = 600.0;
    ac.seed = opt.seed;
    attack::TwoPhaseAttacker attacker(ac);

    core::AttackScenario sc;
    sc.targetPolicy = core::TargetPolicy::Fixed;
    sc.targetRack = core::rackByLoadPercentile(
        workload, cfg, dc.now(),
        dc.now() + secondsToTicks(opt.durationSec), opt.victimPct);
    for (int i = 1; i < opt.racks; ++i) {
        const double pct =
            std::max(0.0, opt.victimPct - 5.0 * i);
        const int rack = core::rackByLoadPercentile(
            workload, cfg, dc.now(),
            dc.now() + secondsToTicks(opt.durationSec), pct);
        if (rack != sc.targetRack &&
            std::find(sc.extraVictimRacks.begin(),
                      sc.extraVictimRacks.end(),
                      rack) == sc.extraVictimRacks.end())
            sc.extraVictimRacks.push_back(rack);
    }
    sc.durationSec = opt.durationSec;

    const auto out = dc.runAttack(attacker, sc);

    TextTable table("padsim result");
    table.setHeader({"metric", "value"});
    table.addRow({"scheme", core::schemeName(opt.scheme)});
    table.addRow({"virus", attack::virusKindName(opt.virus)});
    table.addRow({"style", attack::attackStyleName(opt.style)});
    table.addRow({"victim rack", std::to_string(sc.targetRack)});
    table.addRow({"attacked racks",
                  std::to_string(1 + sc.extraVictimRacks.size())});
    table.addRow({"survival (s)", formatFixed(out.survivalSec, 1)});
    table.addRow({"effective attacks",
                  std::to_string(out.rack.effectiveAttacks())});
    table.addRow({"spikes launched",
                  std::to_string(out.spikesLaunched)});
    table.addRow({"phase II at (s)",
                  formatFixed(out.phaseTwoStartSec, 1)});
    table.addRow({"throughput", formatFixed(out.throughput, 4)});
    table.addRow({"max shed ratio",
                  formatPercent(out.maxShedRatio, 1)});
    table.print(std::cout);

    if (opt.statsDump) {
        std::cout << "\n";
        dc.dumpStats(std::cout);
    }

    if (!opt.csvPath.empty()) {
        CsvWriter csv(opt.csvPath);
        csv.write({"t_seconds", "rack_power_w", "rack_draw_w",
                   "rack_soc", "udeb_soc", "level"});
        const Tick start = out.rackPower.samples().front().when;
        for (const auto &s : out.rackPower.samples()) {
            csv.writeNumbers({ticksToSeconds(s.when - start), s.value,
                              out.rackDraw.valueAt(s.when),
                              out.rackSoc.valueAt(s.when),
                              out.udebSoc.valueAt(s.when),
                              out.level.valueAt(s.when)});
        }
        std::cout << "\ntime series written to " << opt.csvPath
                  << "\n";
    }
    return 0;
}
