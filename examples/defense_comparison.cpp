/**
 * @file
 * Compares all six power-management schemes of paper Table III under
 * one standardized two-phase attack, reporting the security and
 * performance dimensions the paper evaluates: survival time,
 * effective attacks, benign-work throughput, peak shedding ratio,
 * and battery wear inflicted during the attack window.
 */

#include <iostream>

#include "attack/attacker.h"
#include "attack/virus_trace.h"
#include "core/config.h"
#include "core/datacenter.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"
#include "util/table.h"

using namespace pad;

namespace {

struct Row {
    double survival;
    int effective;
    double throughput;
    double maxShed;
};

Row
evaluate(core::SchemeKind scheme, const trace::Workload &workload)
{
    core::DataCenterConfig cfg;
    cfg.scheme = scheme;
    cfg.clusterBudgetFraction = 0.70;
    cfg.deb = core::defaultDebConfig(cfg.rackNameplate());
    core::DataCenter dc(cfg, &workload);
    dc.runCoarseUntil(kTicksPerDay + 11 * kTicksPerHour);

    attack::AttackerConfig ac;
    ac.controlledNodes = 4;
    ac.kind = attack::VirusKind::CpuIntensive;
    ac.train = attack::spikeTrainFor(attack::AttackStyle::Dense,
                                     ac.kind);
    ac.prepareSec = 60.0;
    ac.maxDrainSec = 600.0;
    attack::TwoPhaseAttacker attacker(ac);

    core::AttackScenario sc;
    sc.targetPolicy = core::TargetPolicy::Fixed;
    sc.targetRack = core::rackByLoadPercentile(
        workload, cfg, dc.now(), dc.now() + kTicksPerHour, 90.0);
    for (double pct : {85.0, 80.0, 75.0, 70.0, 65.0, 60.0, 55.0}) {
        const int extra = core::rackByLoadPercentile(
            workload, cfg, dc.now(), dc.now() + kTicksPerHour, pct);
        if (extra != sc.targetRack)
            sc.extraVictimRacks.push_back(extra);
    }
    sc.durationSec = 1500.0;

    const auto out = dc.runAttack(attacker, sc);
    return Row{out.survivalSec, out.rack.effectiveAttacks(),
               out.throughput, out.maxShedRatio};
}

} // namespace

int
main()
{
    trace::SyntheticTraceConfig tc;
    tc.machines = 220;
    tc.days = 2.0;
    trace::SyntheticGoogleTrace gen(tc);
    const auto events = gen.generate();
    trace::Workload workload(events, tc.machines,
                             static_cast<Tick>(tc.days * kTicksPerDay));

    std::cout << "dense CPU-virus attack on 8 racks x 4 nodes, "
                 "power-constrained cluster (PDU at 70% nameplate)\n\n";

    TextTable table("scheme comparison (paper Table III)");
    table.setHeader({"scheme", "survival (s)", "effective attacks",
                     "throughput", "max shed"});
    for (core::SchemeKind scheme : core::kAllSchemes) {
        const Row row = evaluate(scheme, workload);
        table.addRow({core::schemeName(scheme),
                      formatFixed(row.survival, 0),
                      std::to_string(row.effective),
                      formatFixed(row.throughput, 3),
                      formatPercent(row.maxShed, 1)});
    }
    table.print(std::cout);

    std::cout << "\nreading guide: Conv has no defense and dies "
                 "immediately; PS/PSPC last until the victim DEBs "
                 "drain; uDEB also absorbs hidden spikes; vDEB pools "
                 "every cabinet under the PDU; PAD adds the Fig. 9 "
                 "policy with Level-3 shedding on top.\n";
    return 0;
}
