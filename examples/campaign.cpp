/**
 * @file
 * A day-long attack campaign: the adversary strikes three times —
 * pre-dawn (batteries full, cluster idle), late morning (load
 * rising) and at the afternoon peak — against a PAD-protected and a
 * PS-protected cluster. Demonstrates the CampaignDriver and how
 * attack timing interacts with the defense ("wait for the best time
 * to attack", paper §III-A).
 */

#include <iostream>

#include "core/campaign.h"
#include "core/config.h"
#include "core/datacenter.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"
#include "util/table.h"

using namespace pad;

namespace {

core::CampaignAttack
strike(Tick at, int nodes)
{
    core::CampaignAttack s;
    s.startAt = at;
    s.attacker.controlledNodes = nodes;
    s.attacker.kind = attack::VirusKind::CpuIntensive;
    s.attacker.train = attack::SpikeTrain{2.0, 4.0, 1.0, 0.55};
    s.attacker.prepareSec = 60.0;
    s.attacker.maxDrainSec = 400.0;
    s.scenario.targetPolicy = core::TargetPolicy::MostVulnerable;
    s.scenario.durationSec = 1200.0;
    return s;
}

} // namespace

int
main()
{
    trace::SyntheticTraceConfig tc;
    tc.machines = 220;
    tc.days = 2.0;
    trace::SyntheticGoogleTrace gen(tc);
    const auto events = gen.generate();
    trace::Workload workload(events, tc.machines, 2 * kTicksPerDay);

    std::cout << "three strikes over day 2: 04:00, 10:00, 14:00 "
                 "(most-vulnerable rack each time)\n\n";

    for (core::SchemeKind scheme :
         {core::SchemeKind::PS, core::SchemeKind::Pad}) {
        core::DataCenterConfig cfg;
        cfg.scheme = scheme;
        cfg.clusterBudgetFraction = 0.70;
        cfg.deb = core::defaultDebConfig(cfg.rackNameplate());
        core::DataCenter dc(cfg, &workload);

        std::vector<core::CampaignAttack> plan{
            strike(kTicksPerDay + 4 * kTicksPerHour, 4),
            strike(kTicksPerDay + 10 * kTicksPerHour, 4),
            strike(kTicksPerDay + 14 * kTicksPerHour, 4),
        };
        core::CampaignDriver driver(dc, std::move(plan));
        const auto report = driver.run(2 * kTicksPerDay);

        TextTable table("campaign against " +
                        core::schemeName(scheme));
        table.setHeader({"strike at", "survival (s)",
                         "effective attacks", "overloaded"});
        for (const auto &s : report.strikes) {
            const double hour =
                ticksToSeconds(s.startedAt - kTicksPerDay) / 3600.0;
            table.addRow({formatFixed(hour, 0) + ":00",
                          formatFixed(s.survivalSec, 0),
                          std::to_string(s.effectiveAttacks),
                          s.overloaded ? "YES" : "no"});
        }
        table.print(std::cout);
        std::cout << "successful strikes: "
                  << report.successfulStrikes << "/"
                  << report.strikes.size()
                  << ", campaign throughput: "
                  << formatFixed(report.overallThroughput, 3)
                  << "\n\n";
    }
    std::cout << "(the pre-dawn strike fails everywhere — batteries "
                 "are full and the cluster has headroom; timing at "
                 "the peak is what makes attacks effective)\n";
    return 0;
}
