/**
 * @file
 * Generate a Google-style cluster trace, persist it to the CSV
 * schema the simulator consumes, reload it, and print workload
 * statistics — the round trip a user follows to substitute their own
 * trace (see DESIGN.md's substitution table).
 */

#include <cstdio>
#include <iostream>

#include "trace/google_trace.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pad;

int
main()
{
    trace::SyntheticTraceConfig tc;
    tc.machines = 220;
    tc.days = 7.0;
    trace::SyntheticGoogleTrace gen(tc);
    const auto events = gen.generate();
    std::cout << "generated " << events.size() << " task events over "
              << tc.days << " days on " << tc.machines
              << " machines\n";

    // Persist and reload through the CSV schema.
    const std::string path = "/tmp/pad_trace_explorer.csv";
    trace::writeTaskTraceCsv(path, events);
    const auto reloaded = trace::readTaskTraceCsv(path);
    std::cout << "round-tripped " << reloaded.size()
              << " events through " << path << "\n\n";

    const Tick horizon = static_cast<Tick>(tc.days * kTicksPerDay);
    trace::Workload w(reloaded, tc.machines, horizon);

    // Task-population statistics.
    RunningStats duration, cpu;
    for (const auto &ev : reloaded) {
        duration.add(ticksToSeconds(ev.duration()));
        cpu.add(ev.cpuRate);
    }
    TextTable tasks("task statistics");
    tasks.setHeader({"metric", "mean", "min", "max"});
    tasks.addRow("duration (s)",
                 {duration.mean(), duration.min(), duration.max()}, 0);
    tasks.addRow("cpu rate", {cpu.mean(), cpu.min(), cpu.max()}, 3);
    tasks.print(std::cout);

    // Diurnal profile of cluster utilization.
    std::cout << "\n";
    TextTable diurnal("cluster utilization by hour of day (day 2)");
    diurnal.setHeader({"hour", "mean util", "bar"});
    for (int h = 0; h < 24; h += 2) {
        const double u =
            w.clusterUtilAt(kTicksPerDay + h * kTicksPerHour);
        diurnal.addRow({std::to_string(h), formatPercent(u, 1),
                        std::string(static_cast<std::size_t>(u * 100),
                                    '#')});
    }
    diurnal.print(std::cout);

    // Machine skew: hottest and coldest machines.
    std::vector<double> means;
    means.reserve(static_cast<std::size_t>(tc.machines));
    for (int m = 0; m < tc.machines; ++m)
        means.push_back(w.machineMeanUtil(m));
    std::cout << "\nmachine skew: p10="
              << formatPercent(percentile(means, 10.0), 1)
              << " p50=" << formatPercent(percentile(means, 50.0), 1)
              << " p90=" << formatPercent(percentile(means, 90.0), 1)
              << " max=" << formatPercent(percentile(means, 100.0), 1)
              << "\noverall mean utilization: "
              << formatPercent(w.overallMeanUtil(), 1) << "\n";

    std::remove(path.c_str());
    return 0;
}
