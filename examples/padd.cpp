/**
 * @file
 * padd — the PAD live service daemon (DESIGN.md §13).
 *
 * Runs the simulated battery-backed data center as a long-lived
 * wall-clock service instead of a batch run: telemetry is scraped
 * while it happens, alert incidents stream out as they seal, and
 * attack scenarios are injected into the live fleet over a local
 * control socket. Every external input is stamped with its sim-time
 * tick into a session record, so any live session — however
 * interactively it was driven — replays deterministically.
 *
 * Daemon mode:
 *
 *   padd [--scheme Conv|PS|PSPC|uDEB|vDEB|PAD]
 *        [--backend baseline|optimized|soa]
 *        [--budget FRAC] [--cluster-budget FRAC]
 *        [--hour H] [--days D] [--duration SEC] [--seed S]
 *        [--detector] [--speed X|max]
 *        [--metrics-port N] [--control-port N] [--port-file FILE]
 *        [--alerts RULES] [--session FILE] [--incidents FILE]
 *        [--stats-json FILE] [--prom FILE] [--manifest FILE]
 *        [--push-to HOST:PORT] [--push-interval-s N]
 *        [--push-spool DIR] [--push-source NAME]
 *        [--quiet] [--log-level L]
 *
 * --speed is sim-seconds per wall-second (default 60, i.e. a sim
 * minute per second; "max" = unpaced). --duration auto-stops after
 * SEC simulated seconds of live service; without it the daemon runs
 * until a shutdown command or SIGINT/SIGTERM. Both ports default to
 * 0 (ephemeral); the resolved endpoints are printed on startup and,
 * with --port-file, written as `control=N` / `metrics=N` lines for
 * scripts. --session records the session; --incidents streams
 * sealed incidents (requires --alerts). --push-to streams tick-
 * stamped telemetry batches to a padrx receiver (DESIGN.md §14);
 * --push-interval-s sets the sim-time snapshot cadence (default
 * 60), --push-spool enables the on-disk WAL for receiver outages,
 * and --push-source names this daemon in the receiver's merged
 * fleet.<source>.* namespace.
 *
 * Replay mode:
 *
 *   padd --replay SESSION [--incidents FILE] [--stats-json FILE]
 *        [--prom FILE] [--push-to HOST:PORT ...]
 *
 * re-executes the recorded session at max speed with no endpoints
 * and writes byte-identical artifacts to the live run's. With
 * --push-to it also re-ships the live run's exact batch stream
 * (batches are cut by sim tick, not wall time).
 *
 * Client mode:
 *
 *   padd --connect PORT --cmd CMD [--cmd CMD ...]
 *
 * sends commands to a running daemon and prints each response line.
 * A CMD starting with '{' is sent verbatim; a bare word W is sent
 * as {"cmd":"W"} — so `--cmd status`, `--cmd pause`, `--cmd
 * '{"cmd":"inject-attack","spec":{"racks":22}}'`.
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/schemes.h"
#include "engine/backend.h"
#include "service/control.h"
#include "service/daemon.h"
#include "service/session.h"
#include "util/logging.h"

using namespace pad;

namespace {

struct Options {
    service::DaemonOptions daemon;
    std::string alertsPath;
    std::string portFilePath;
    std::string replayPath;
    std::string replayIncidentsPath;
    std::string replayStatsJsonPath;
    std::string replayPromPath;
    int connectPort = -1;
    std::vector<std::string> commands;
    bool quiet = false;
    std::string logLevel;
};

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: padd [--scheme Conv|PS|PSPC|uDEB|vDEB|PAD]\n"
           "            [--backend baseline|optimized|soa]\n"
           "            [--budget FRAC] [--cluster-budget FRAC]\n"
           "            [--hour H] [--days D] [--duration SEC]\n"
           "            [--seed S] [--detector] [--speed X|max]\n"
           "            [--metrics-port N] [--control-port N]\n"
           "            [--port-file FILE]\n"
           "            [--alerts RULES] [--session FILE]\n"
           "            [--incidents FILE] [--stats-json FILE]\n"
           "            [--prom FILE] [--manifest FILE]\n"
           "            [--push-to HOST:PORT] [--push-interval-s N]\n"
           "            [--push-spool DIR] [--push-source NAME]\n"
           "            [--quiet] [--log-level L]\n"
           "       padd --replay SESSION [--incidents FILE]\n"
           "            [--stats-json FILE] [--prom FILE]\n"
           "            [--push-to HOST:PORT ...]\n"
           "       padd --connect PORT --cmd CMD [--cmd CMD ...]\n";
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    opt.daemon.speed = 60.0; // a sim minute per wall second
    auto need = [&](int &i) -> std::string {
        if (++i >= argc)
            usage();
        return argv[i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--scheme") {
            const auto scheme = core::schemeFromName(need(i));
            if (!scheme) {
                std::cerr << "padd: unknown scheme name\n";
                usage();
            }
            opt.daemon.config.scheme = *scheme;
        } else if (arg == "--backend") {
            const auto backend = engine::backendFromName(need(i));
            if (!backend) {
                std::cerr << "padd: unknown backend name\n";
                usage();
            }
            opt.daemon.config.backend = *backend;
        } else if (arg == "--budget")
            opt.daemon.config.budget = std::atof(need(i).c_str());
        else if (arg == "--cluster-budget")
            opt.daemon.config.clusterBudget =
                std::atof(need(i).c_str());
        else if (arg == "--hour")
            opt.daemon.config.hour = std::atof(need(i).c_str());
        else if (arg == "--days")
            opt.daemon.config.days = std::atof(need(i).c_str());
        else if (arg == "--duration")
            opt.daemon.config.durationSec =
                std::atof(need(i).c_str());
        else if (arg == "--seed")
            opt.daemon.config.seed = static_cast<std::uint64_t>(
                std::strtoull(need(i).c_str(), nullptr, 10));
        else if (arg == "--detector")
            opt.daemon.config.detector = true;
        else if (arg == "--speed") {
            const std::string value = need(i);
            opt.daemon.speed =
                value == "max" ? 0.0 : std::atof(value.c_str());
            if (value != "max" && opt.daemon.speed <= 0.0)
                usage();
        } else if (arg == "--metrics-port")
            opt.daemon.metricsPort = std::atoi(need(i).c_str());
        else if (arg == "--control-port")
            opt.daemon.controlPort = std::atoi(need(i).c_str());
        else if (arg == "--port-file")
            opt.portFilePath = need(i);
        else if (arg == "--alerts")
            opt.alertsPath = need(i);
        else if (arg == "--session")
            opt.daemon.sessionPath = need(i);
        else if (arg == "--incidents") {
            // shared by daemon and replay mode
            opt.daemon.incidentsPath = need(i);
            opt.replayIncidentsPath = opt.daemon.incidentsPath;
        } else if (arg == "--stats-json") {
            opt.daemon.statsJsonPath = need(i);
            opt.replayStatsJsonPath = opt.daemon.statsJsonPath;
        } else if (arg == "--prom") {
            opt.daemon.promPath = need(i);
            opt.replayPromPath = opt.daemon.promPath;
        } else if (arg == "--manifest")
            opt.daemon.manifestPath = need(i);
        else if (arg == "--push-to")
            opt.daemon.pushTo = need(i);
        else if (arg == "--push-interval-s") {
            opt.daemon.pushIntervalS = std::atof(need(i).c_str());
            if (opt.daemon.pushIntervalS <= 0.0)
                usage();
        } else if (arg == "--push-spool")
            opt.daemon.pushSpoolDir = need(i);
        else if (arg == "--push-source") {
            opt.daemon.pushSource = need(i);
            if (opt.daemon.pushSource.empty())
                usage();
        } else if (arg == "--replay")
            opt.replayPath = need(i);
        else if (arg == "--connect")
            opt.connectPort = std::atoi(need(i).c_str());
        else if (arg == "--cmd")
            opt.commands.push_back(need(i));
        else if (arg == "--quiet")
            opt.quiet = true;
        else if (arg == "--log-level")
            opt.logLevel = need(i);
        else
            usage();
    }
    if (opt.connectPort >= 0 && opt.commands.empty())
        usage();
    if (!opt.commands.empty() && opt.connectPort < 0)
        usage();
    if (!opt.replayPath.empty() && opt.connectPort >= 0)
        usage();
    if (opt.daemon.metricsPort > 65535 ||
        opt.daemon.controlPort > 65535)
        usage();
    if (!opt.daemon.incidentsPath.empty() && opt.replayPath.empty() &&
        opt.alertsPath.empty()) {
        std::cerr << "padd: --incidents requires --alerts\n";
        usage();
    }
    if (!opt.logLevel.empty() && !logLevelFromName(opt.logLevel)) {
        std::cerr << "padd: unknown log level: " << opt.logLevel
                  << "\n";
        usage();
    }
    return opt;
}

void
printSummary(const char *mode, const service::DaemonResult &result)
{
    std::cout << mode << " finished at tick " << result.endTick
              << " (" << ticksToSeconds(result.endTick) / 3600.0
              << " sim hours): " << result.commands << " commands, "
              << result.attacks << " attacks, " << result.incidents
              << " incidents\n";
}

int
runClient(const Options &opt)
{
    service::ControlClient client;
    std::string error;
    if (!client.connect(opt.connectPort, &error)) {
        std::cerr << "padd: " << error << "\n";
        return 1;
    }
    for (const std::string &cmd : opt.commands) {
        const std::string line =
            !cmd.empty() && cmd.front() == '{'
                ? cmd
                : "{\"cmd\":\"" + cmd + "\"}";
        const auto response = client.request(line);
        if (!response) {
            std::cerr << "padd: no response to: " << line << "\n";
            return 1;
        }
        std::cout << *response << "\n";
    }
    return 0;
}

int
runReplay(const Options &opt)
{
    std::string error;
    const auto log =
        service::readSessionFile(opt.replayPath, &error);
    if (!log) {
        std::cerr << "padd: " << error << "\n";
        return 1;
    }
    service::ReplayArtifacts artifacts;
    artifacts.incidentsPath = opt.replayIncidentsPath;
    artifacts.statsJsonPath = opt.replayStatsJsonPath;
    artifacts.promPath = opt.replayPromPath;
    artifacts.pushTo = opt.daemon.pushTo;
    artifacts.pushIntervalS = opt.daemon.pushIntervalS;
    artifacts.pushSpoolDir = opt.daemon.pushSpoolDir;
    artifacts.pushSource = opt.daemon.pushSource;
    service::DaemonResult result;
    if (!service::replaySession(*log, artifacts, &error, &result)) {
        std::cerr << "padd: " << error << "\n";
        return 1;
    }
    printSummary("replay", result);
    return 0;
}

service::ServiceDaemon *g_daemon = nullptr;

void
onSignal(int)
{
    if (g_daemon)
        g_daemon->requestShutdown();
}

int
runDaemon(Options &opt)
{
    if (!opt.alertsPath.empty()) {
        std::ifstream in(opt.alertsPath);
        if (!in) {
            std::cerr << "padd: cannot open rules file: "
                      << opt.alertsPath << "\n";
            return 1;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        opt.daemon.rulesText = buf.str();
    }

    service::ServiceDaemon daemon(std::move(opt.daemon));
    std::string error;
    if (!daemon.start(&error)) {
        std::cerr << "padd: " << error << "\n";
        return 1;
    }

    std::cout << "control endpoint: 127.0.0.1:"
              << daemon.controlPort() << "\n"
              << "metrics endpoint: http://127.0.0.1:"
              << daemon.metricsPort() << "/metrics\n"
              << std::flush;
    if (!opt.portFilePath.empty()) {
        std::ofstream ports(opt.portFilePath);
        if (!ports) {
            std::cerr << "padd: cannot write port file: "
                      << opt.portFilePath << "\n";
            return 1;
        }
        ports << "control=" << daemon.controlPort() << "\n"
              << "metrics=" << daemon.metricsPort() << "\n";
    }

    g_daemon = &daemon;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    daemon.run();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_daemon = nullptr;

    printSummary("session", daemon.result());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    initLoggingFromEnvironment();
    Options opt = parseArgs(argc, argv);
    if (opt.quiet)
        setLogLevel(LogLevel::Warn);
    if (!opt.logLevel.empty())
        setLogLevel(*logLevelFromName(opt.logLevel));

    if (opt.connectPort >= 0)
        return runClient(opt);
    if (!opt.replayPath.empty())
        return runReplay(opt);
    return runDaemon(opt);
}
