/**
 * @file
 * padrx — the fleet telemetry receiver (DESIGN.md §14).
 *
 * Hosts a ReceiverServer that ingests pad-rw-v1 batch streams from
 * any number of `padd --push-to` / `padsim --push-to` shippers,
 * merges every series into one TelemetryHub under `fleet.<source>.`
 * prefixes, and re-exposes the merged state as a single aggregate
 * Prometheus endpoint — one scrape for a whole fleet of daemons.
 * With --alerts the PR-5 alert rules run over the merged stream, so
 * fleet-wide patterns (coordinated attacks across PDUs) fire rules
 * no single daemon's telemetry could.
 *
 *   padrx [--listen-port N] [--metrics-port N] [--port-file FILE]
 *         [--alerts RULES] [--incidents FILE] [--dump FILE]
 *         [--quiet] [--log-level L]
 *
 * Both ports default to 0 (ephemeral); the resolved endpoints are
 * printed on startup and, with --port-file, written as `ingest=N` /
 * `metrics=N` lines for scripts. Runs until SIGINT/SIGTERM, then
 * finalizes alerts, writes the deterministic merged dump (--dump),
 * and prints a summary. Two padrx runs fed the same batch streams
 * (e.g. replays of one recorded session) write byte-identical
 * dumps.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "alert/engine.h"
#include "alert/incident.h"
#include "alert/rule.h"
#include "telemetry/http.h"
#include "telemetry/receiver.h"
#include "util/logging.h"

using namespace pad;

namespace {

struct Options {
    int listenPort = 0;
    int metricsPort = 0;
    std::string portFilePath;
    std::string alertsPath;
    std::string incidentsPath;
    std::string dumpPath;
    bool quiet = false;
    std::string logLevel;
};

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: padrx [--listen-port N] [--metrics-port N]\n"
           "             [--port-file FILE]\n"
           "             [--alerts RULES] [--incidents FILE]\n"
           "             [--dump FILE]\n"
           "             [--quiet] [--log-level L]\n";
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> std::string {
        if (++i >= argc)
            usage();
        return argv[i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--listen-port")
            opt.listenPort = std::atoi(need(i).c_str());
        else if (arg == "--metrics-port")
            opt.metricsPort = std::atoi(need(i).c_str());
        else if (arg == "--port-file")
            opt.portFilePath = need(i);
        else if (arg == "--alerts")
            opt.alertsPath = need(i);
        else if (arg == "--incidents")
            opt.incidentsPath = need(i);
        else if (arg == "--dump")
            opt.dumpPath = need(i);
        else if (arg == "--quiet")
            opt.quiet = true;
        else if (arg == "--log-level")
            opt.logLevel = need(i);
        else
            usage();
    }
    if (opt.listenPort < 0 || opt.listenPort > 65535 ||
        opt.metricsPort > 65535)
        usage();
    if (!opt.incidentsPath.empty() && opt.alertsPath.empty()) {
        std::cerr << "padrx: --incidents requires --alerts\n";
        usage();
    }
    if (!opt.logLevel.empty() && !logLevelFromName(opt.logLevel)) {
        std::cerr << "padrx: unknown log level: " << opt.logLevel
                  << "\n";
        usage();
    }
    return opt;
}

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true, std::memory_order_relaxed);
}

} // namespace

int
main(int argc, char **argv)
{
    initLoggingFromEnvironment();
    const Options opt = parseArgs(argc, argv);
    if (opt.quiet)
        setLogLevel(LogLevel::Warn);
    if (!opt.logLevel.empty())
        setLogLevel(*logLevelFromName(opt.logLevel));

    // Alerts over the merged stream: the receiver's single service
    // thread records every sample, which satisfies the engine's
    // single-recording-thread contract.
    std::unique_ptr<alert::AlertEngine> alerts;
    std::ofstream incidents;
    std::uint64_t sealed = 0;
    if (!opt.alertsPath.empty()) {
        std::string error;
        auto rules = alert::loadRulesFile(opt.alertsPath, &error);
        if (!rules) {
            std::cerr << "padrx: " << error << "\n";
            return 1;
        }
        alerts = std::make_unique<alert::AlertEngine>(
            std::move(*rules));
        if (!opt.incidentsPath.empty()) {
            incidents.open(opt.incidentsPath);
            if (!incidents) {
                std::cerr << "padrx: cannot open incidents file: "
                          << opt.incidentsPath << "\n";
                return 1;
            }
        }
        alerts->setIncidentSink([&](const alert::Incident &inc) {
            ++sealed;
            if (incidents.is_open())
                alert::writeIncidentLine(incidents, inc);
        });
    }

    telemetry::ReceiverServer receiver(opt.listenPort);
    if (alerts)
        receiver.setListener(alerts.get());
    std::string error;
    if (!receiver.start(&error)) {
        std::cerr << "padrx: " << error << "\n";
        return 1;
    }

    std::unique_ptr<telemetry::MetricsHttpServer> metrics;
    if (opt.metricsPort >= 0) {
        metrics = std::make_unique<telemetry::MetricsHttpServer>(
            opt.metricsPort,
            [&receiver] { return receiver.renderMetrics(); });
        if (!metrics->start(&error)) {
            std::cerr << "padrx: cannot serve metrics: " << error
                      << "\n";
            return 1;
        }
    }

    std::cout << "ingest endpoint: 127.0.0.1:" << receiver.port()
              << "\n";
    if (metrics)
        std::cout << "metrics endpoint: http://127.0.0.1:"
                  << metrics->port() << "/metrics\n";
    std::cout << std::flush;
    if (!opt.portFilePath.empty()) {
        std::ofstream ports(opt.portFilePath);
        if (!ports) {
            std::cerr << "padrx: cannot write port file: "
                      << opt.portFilePath << "\n";
            return 1;
        }
        ports << "ingest=" << receiver.port() << "\n"
              << "metrics=" << (metrics ? metrics->port() : -1)
              << "\n";
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!g_stop.load(std::memory_order_relaxed))
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);

    // Shutdown order: stop ingest first so the merged state is
    // frozen, then finalize alerts at the newest merged tick, then
    // write the deterministic dump.
    receiver.stop();
    if (metrics)
        metrics->stop();
    if (alerts) {
        receiver.setListener(nullptr);
        const Tick endTick = receiver.maxTick();
        alerts->finalize(endTick == kTickNever ? 0 : endTick);
    }
    if (!opt.dumpPath.empty()) {
        std::ofstream dump(opt.dumpPath);
        if (!dump) {
            std::cerr << "padrx: cannot write dump file: "
                      << opt.dumpPath << "\n";
            return 1;
        }
        dump << receiver.dumpMerged();
    }

    const auto c = receiver.counters();
    std::cout << "padrx: merged " << c.batches << " batches ("
              << c.samples << " samples) and " << c.statsBatches
              << " stats dumps from " << receiver.sourceCount()
              << " sources; " << c.duplicates << " duplicates, "
              << c.protocolErrors << " protocol errors";
    if (alerts)
        std::cout << "; " << sealed << " incidents";
    std::cout << "\n";
    return 0;
}
