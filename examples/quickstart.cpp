/**
 * @file
 * Quickstart: build a battery-backed cluster from a synthetic
 * Google-style trace, run a day of normal operation, then launch a
 * two-phase power attack against it under two management schemes and
 * compare survival times.
 *
 * Walks through the main public APIs:
 *  - trace::SyntheticGoogleTrace / trace::Workload
 *  - core::DataCenterConfig / core::DataCenter
 *  - attack::TwoPhaseAttacker
 */

#include <iostream>

#include "attack/attacker.h"
#include "core/config.h"
#include "core/datacenter.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"
#include "util/table.h"

using namespace pad;

int
main()
{
    // 1. Generate a Google-style cluster trace: 220 machines, 2 days,
    //    5-minute slots (see DESIGN.md for the substitution note).
    trace::SyntheticTraceConfig tc;
    tc.machines = 220;
    tc.days = 2.0;
    trace::SyntheticGoogleTrace gen(tc);
    const auto events = gen.generate();
    trace::Workload workload(events, tc.machines,
                             static_cast<Tick>(tc.days * kTicksPerDay));
    std::cout << "trace: " << events.size() << " tasks, mean util "
              << formatPercent(workload.overallMeanUtil()) << "\n";

    // 2. Configure the paper's cluster: 22 racks x 10 DL585 G5
    //    servers, one DEB cabinet per rack (50 s at full rack load).
    core::DataCenterConfig base;
    base.deb = core::defaultDebConfig(base.rackNameplate());
    std::cout << "cluster: " << base.racks << " racks, budget "
              << formatFixed(base.clusterBudget() / 1000.0, 1)
              << " kW (" << formatPercent(base.budgetFraction)
              << " of nameplate)\n\n";

    // 3. Attack each scheme after a day of normal operation.
    TextTable table("two-phase CPU-virus attack, 4 malicious nodes");
    table.setHeader({"scheme", "survival (s)", "throughput",
                     "phase-II at (s)"});

    for (core::SchemeKind scheme :
         {core::SchemeKind::Conv, core::SchemeKind::PS,
          core::SchemeKind::Pad}) {
        core::DataCenterConfig cfg = base;
        cfg.scheme = scheme;
        core::DataCenter dc(cfg, &workload);
        dc.runCoarseUntil(kTicksPerDay + 14 * kTicksPerHour);

        attack::AttackerConfig ac;
        ac.controlledNodes = 4;
        ac.kind = attack::VirusKind::CpuIntensive;
        ac.train = attack::SpikeTrain{2.0, 4.0, 1.0};
        attack::TwoPhaseAttacker attacker(ac);

        core::AttackScenario scenario;
        // Attack the same (75th-percentile load) rack under every
        // scheme so survival times are comparable.
        scenario.targetPolicy = core::TargetPolicy::Fixed;
        scenario.targetRack = core::rackByLoadPercentile(
            workload, cfg, dc.now(), dc.now() + kTicksPerHour, 75.0);
        scenario.durationSec = 1500.0;
        const auto outcome = dc.runAttack(attacker, scenario);

        table.addRow(core::schemeName(scheme),
                     {outcome.survivalSec, outcome.throughput,
                      outcome.phaseTwoStartSec});
    }
    table.print(std::cout);
    return 0;
}
