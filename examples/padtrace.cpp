/**
 * @file
 * padtrace — attack-forensics toolkit over padsim JSONL traces.
 *
 * Reads the one-event-per-line trace a `padsim --trace run.jsonl`
 * (or any sweep with --trace) produces and reconstructs the incident
 * from the defender's point of view:
 *
 *   padtrace report   [options] TRACE.jsonl   full incident report
 *   padtrace timeline [options] TRACE.jsonl   chronological key events
 *   padtrace summary  [options] TRACE.jsonl   one-paragraph digest
 *   padtrace incidents [options] INCIDENTS.jsonl
 *                      alert incidents (from padsim/sweep --incidents)
 *
 * Options:
 *   --format md|json|csv   output format (default md)
 *   --out FILE             write to FILE instead of stdout
 *   --job N                only events from sweep job N
 *   --html FILE            (incidents) write the standalone HTML
 *                          dashboard next to the textual output
 *
 * The report covers the attack window (survival time recomputed from
 * the first overload event, cross-checked against the value the
 * simulator recorded), the attacker's phase timeline with the ground
 * truth Phase I -> Phase II boundary, the defender-visible estimate
 * of that boundary (first µDEB engagement or policy escalation),
 * time-to-detection, per-rack security-level transitions, and DEB
 * depletion curves from soc.sample events. `report --format csv`
 * exports the depletion curve rows.
 *
 * Corrupt or truncated trailing lines are skipped with a warning
 * (the count appears in the report and is echoed to stderr);
 * padtrace never refuses a trace just because the run died
 * mid-write. A missing or unreadable input, however, is a hard
 * error: one line on stderr and a nonzero exit.
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "alert/html.h"
#include "alert/incident.h"
#include "telemetry/trace_reader.h"
#include "util/json_writer.h"
#include "util/table.h"
#include "util/types.h"

using namespace pad;

namespace {

struct Options {
    std::string command = "report";
    std::string format = "md";
    std::string outPath;
    std::string htmlPath;
    int job = -1; // -1 = all jobs
    std::string tracePath;
};

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: padtrace [report|timeline|summary]\n"
           "                [--format md|json|csv] [--out FILE]\n"
           "                [--job N] TRACE.jsonl\n"
           "       padtrace incidents [--format md|json]\n"
           "                [--out FILE] [--html FILE]\n"
           "                INCIDENTS.jsonl\n";
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> std::string {
        if (++i >= argc)
            usage();
        return argv[i];
    };
    bool commandSet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--format")
            opt.format = need(i);
        else if (arg == "--out")
            opt.outPath = need(i);
        else if (arg == "--html")
            opt.htmlPath = need(i);
        else if (arg == "--job")
            opt.job = std::atoi(need(i).c_str());
        else if (!commandSet && (arg == "report" || arg == "timeline" ||
                                 arg == "summary" ||
                                 arg == "incidents")) {
            opt.command = arg;
            commandSet = true;
        } else if (!arg.empty() && arg[0] == '-')
            usage();
        else if (opt.tracePath.empty())
            opt.tracePath = arg;
        else
            usage();
    }
    if (opt.tracePath.empty())
        usage();
    if (opt.format != "md" && opt.format != "json" &&
        opt.format != "csv")
        usage();
    if (opt.command == "incidents" && opt.format == "csv")
        usage();
    if (opt.command != "incidents" && !opt.htmlPath.empty())
        usage();
    return opt;
}

/** One attacker phase transition, in file order. */
struct PhaseChange {
    Tick ts = 0;
    std::string from, to, reason;
};

/** One security-policy level transition. */
struct LevelChange {
    Tick ts = 0;
    std::string from, to;
};

/** One soc.sample row (DEB depletion curve point). */
struct SocSample {
    Tick ts = 0;
    int rack = 0;
    double soc = 0.0, udebSoc = 0.0, powerW = 0.0, drawW = 0.0;
    int level = 0;
};

/** Per-rack depletion digest. */
struct RackDepletion {
    std::size_t samples = 0;
    double firstSoc = 1.0, minSoc = 1.0, lastSoc = 1.0;
    double minUdebSoc = 1.0;
    Tick minSocTs = kTickNever;
};

/** Everything the report needs, distilled from one pass. */
struct Forensics {
    std::size_t records = 0, skipped = 0, lines = 0;

    bool hasWindow = false;
    Tick windowStart = 0, windowDur = 0;
    double recordedSurvivalSec = -1.0;
    double throughput = 0.0;
    int spikesRecorded = -1;

    Tick firstOverload = kTickNever;
    std::size_t rackOverloads = 0, clusterOverloads = 0;

    std::vector<PhaseChange> phases;
    double phase2GroundTruthSec = -1.0; // relative to window start
    Tick firstSpikeLaunch = kTickNever;
    std::size_t spikeLaunches = 0, probes = 0;
    double autonomySec = -1.0;
    std::string virusKind;

    std::vector<LevelChange> transitions;
    Tick firstEscalation = kTickNever;
    Tick firstDetection = kTickNever;
    std::size_t detections = 0;
    Tick firstShave = kTickNever;
    std::size_t shaves = 0;

    std::vector<SocSample> socSamples;
    std::map<int, RackDepletion> depletion;

    /** Survival from events; falls back to the recorded value when
     * the run saw no overload (the simulator then reports the full
     * scenario duration, which only it knows exactly). */
    double
    survivalSec() const
    {
        if (hasWindow && firstOverload != kTickNever)
            return ticksToSeconds(firstOverload - windowStart);
        return recordedSurvivalSec;
    }

    /** Absolute sim-seconds of the first detector flag; -1 = never.
     * Comparable bit-for-bit with stats detector.first_flag_sec. */
    double
    timeToDetectionSec() const
    {
        return firstDetection == kTickNever
                   ? -1.0
                   : ticksToSeconds(firstDetection);
    }

    /** Absolute sim-seconds of the first escalation; -1 = never.
     * Comparable with stats policy.first_escalation_sec. */
    double
    firstEscalationSec() const
    {
        return firstEscalation == kTickNever
                   ? -1.0
                   : ticksToSeconds(firstEscalation);
    }

    /**
     * Defender-visible Phase II estimate relative to the window
     * start: the earliest distress signal (µDEB engagement or policy
     * escalation). -1 when neither fired.
     */
    double
    phase2EstimateSec() const
    {
        Tick first = kTickNever;
        for (Tick t : {firstShave, firstEscalation})
            if (t != kTickNever && (first == kTickNever || t < first))
                first = t;
        if (!hasWindow || first == kTickNever)
            return -1.0;
        return ticksToSeconds(first - windowStart);
    }
};

Forensics
analyze(const telemetry::TraceLog &log, int jobFilter)
{
    Forensics fx;
    fx.skipped = log.skipped;
    fx.lines = log.lines;
    for (const auto &rec : log.records) {
        if (jobFilter >= 0 && rec.job != jobFilter)
            continue;
        ++fx.records;
        if (rec.name == "attack.window") {
            fx.hasWindow = true;
            fx.windowStart = rec.ts;
            fx.windowDur = rec.dur;
            fx.recordedSurvivalSec =
                rec.argNumber("survival_sec", -1.0);
            fx.throughput = rec.argNumber("throughput", 0.0);
            fx.spikesRecorded =
                static_cast<int>(rec.argNumber("spikes", -1.0));
        } else if (rec.name == "attack.overload") {
            if (fx.firstOverload == kTickNever ||
                rec.ts < fx.firstOverload)
                fx.firstOverload = rec.ts;
            if (rec.argString("scope") == "cluster")
                ++fx.clusterOverloads;
            else
                ++fx.rackOverloads;
        } else if (rec.name == "attacker.phase") {
            fx.phases.push_back({rec.ts, rec.argString("from"),
                                 rec.argString("to"),
                                 rec.argString("reason")});
        } else if (rec.name == "attack.phase2") {
            fx.phase2GroundTruthSec =
                rec.argNumber("start_sec", -1.0);
        } else if (rec.name == "attacker.spike_launch") {
            ++fx.spikeLaunches;
            if (fx.firstSpikeLaunch == kTickNever ||
                rec.ts < fx.firstSpikeLaunch)
                fx.firstSpikeLaunch = rec.ts;
        } else if (rec.name == "attacker.probe") {
            ++fx.probes;
        } else if (rec.name == "attacker.autonomy") {
            fx.autonomySec = rec.argNumber("autonomy_sec", -1.0);
        } else if (rec.name == "virus.deploy") {
            fx.virusKind = rec.argString("kind");
        } else if (rec.name == "policy.transition") {
            fx.transitions.push_back(
                {rec.ts, rec.argString("from"), rec.argString("to")});
            if (rec.argString("to") != "L1-Normal" &&
                fx.firstEscalation == kTickNever)
                fx.firstEscalation = rec.ts;
        } else if (rec.name == "detector.anomaly") {
            ++fx.detections;
            if (fx.firstDetection == kTickNever)
                fx.firstDetection = rec.ts;
        } else if (rec.name == "udeb.shave") {
            ++fx.shaves;
            if (fx.firstShave == kTickNever)
                fx.firstShave = rec.ts;
        } else if (rec.name == "soc.sample") {
            SocSample s;
            s.ts = rec.ts;
            s.rack = static_cast<int>(rec.argNumber("rack", -1.0));
            s.soc = rec.argNumber("soc", 0.0);
            s.udebSoc = rec.argNumber("udeb_soc", 1.0);
            s.powerW = rec.argNumber("power_w", 0.0);
            s.drawW = rec.argNumber("draw_w", 0.0);
            s.level = static_cast<int>(rec.argNumber("level", 0.0));
            fx.socSamples.push_back(s);
            auto &d = fx.depletion[s.rack];
            if (d.samples == 0)
                d.firstSoc = s.soc;
            ++d.samples;
            if (s.soc < d.minSoc) {
                d.minSoc = s.soc;
                d.minSocTs = s.ts;
            }
            d.minUdebSoc = std::min(d.minUdebSoc, s.udebSoc);
            d.lastSoc = s.soc;
        }
    }
    return fx;
}

std::string
fmtSec(double sec)
{
    return sec < 0.0 ? std::string("n/a") : formatFixed(sec, 1);
}

double
relSec(const Forensics &fx, Tick t)
{
    if (t == kTickNever || !fx.hasWindow)
        return -1.0;
    return ticksToSeconds(t - fx.windowStart);
}

void
reportMarkdown(const Forensics &fx, std::ostream &os)
{
    os << "# padtrace incident report\n\n";
    os << "Events: " << fx.records << " parsed";
    if (fx.skipped > 0)
        os << ", " << fx.skipped << " corrupt line(s) skipped";
    os << ".\n\n";

    os << "## Attack window\n\n";
    if (!fx.hasWindow) {
        os << "No attack.window span found — was the run traced to "
              "completion?\n\n";
    } else {
        TextTable t("attack window");
        t.setHeader({"metric", "value"});
        t.addRow({"window start (s)",
                  formatFixed(ticksToSeconds(fx.windowStart), 1)});
        t.addRow({"window length (s)",
                  formatFixed(ticksToSeconds(fx.windowDur), 1)});
        t.addRow({"survival (s)", fmtSec(fx.survivalSec())});
        t.addRow(
            {"survival (recorded)", fmtSec(fx.recordedSurvivalSec)});
        t.addRow({"rack overloads",
                  std::to_string(fx.rackOverloads)});
        t.addRow({"cluster overloads",
                  std::to_string(fx.clusterOverloads)});
        t.addRow({"throughput", formatFixed(fx.throughput, 4)});
        t.print(os);
        os << "\n";
    }

    os << "## Attacker forensics\n\n";
    {
        TextTable t("attacker");
        t.setHeader({"metric", "value"});
        if (!fx.virusKind.empty())
            t.addRow({"virus", fx.virusKind});
        t.addRow({"phase transitions",
                  std::to_string(fx.phases.size())});
        t.addRow({"side-channel probes", std::to_string(fx.probes)});
        t.addRow({"learned autonomy (s)", fmtSec(fx.autonomySec)});
        t.addRow({"phase II start, ground truth (s)",
                  fmtSec(fx.phase2GroundTruthSec)});
        t.addRow({"phase II start, defender estimate (s)",
                  fmtSec(fx.phase2EstimateSec())});
        t.addRow({"hidden spikes launched",
                  std::to_string(fx.spikeLaunches)});
        t.print(os);
        os << "\n";
    }
    if (!fx.phases.empty()) {
        TextTable t("attacker phase timeline");
        t.setHeader({"t (s)", "from", "to", "reason"});
        for (const auto &p : fx.phases)
            t.addRow({formatFixed(ticksToSeconds(p.ts), 1), p.from,
                      p.to, p.reason});
        t.print(os);
        os << "\n";
    }

    os << "## Defender response\n\n";
    {
        TextTable t("defender");
        t.setHeader({"metric", "value"});
        t.addRow({"time to detection (s, absolute)",
                  fmtSec(fx.timeToDetectionSec())});
        t.addRow({"time to detection (s, in-window)",
                  fmtSec(relSec(fx, fx.firstDetection))});
        t.addRow({"detector flags", std::to_string(fx.detections)});
        t.addRow({"first escalation (s, absolute)",
                  fmtSec(fx.firstEscalationSec())});
        t.addRow({"policy transitions",
                  std::to_string(fx.transitions.size())});
        t.addRow({"µDEB engagements", std::to_string(fx.shaves)});
        t.print(os);
        os << "\n";
    }
    if (!fx.transitions.empty()) {
        TextTable t("policy-level timeline");
        t.setHeader({"t (s)", "from", "to"});
        for (const auto &c : fx.transitions)
            t.addRow({formatFixed(ticksToSeconds(c.ts), 1), c.from,
                      c.to});
        t.print(os);
        os << "\n";
    }

    os << "## DEB depletion\n\n";
    if (fx.depletion.empty()) {
        os << "No soc.sample events (trace predates telemetry or "
              "tracing was off during the attack).\n";
    } else {
        TextTable t("per-rack depletion");
        t.setHeader({"rack", "samples", "soc start", "soc min",
                     "soc min at (s)", "udeb min", "soc end"});
        for (const auto &[rack, d] : fx.depletion)
            t.addRow({std::to_string(rack),
                      std::to_string(d.samples),
                      formatFixed(d.firstSoc, 3),
                      formatFixed(d.minSoc, 3),
                      fmtSec(relSec(fx, d.minSocTs)),
                      formatFixed(d.minUdebSoc, 3),
                      formatFixed(d.lastSoc, 3)});
        t.print(os);
    }
}

void
reportJson(const Forensics &fx, std::ostream &os)
{
    JsonWriter w(os, 2);
    w.beginObject();
    w.key("records").value(static_cast<std::uint64_t>(fx.records));
    w.key("skipped").value(static_cast<std::uint64_t>(fx.skipped));
    w.key("window").beginObject();
    w.key("found").value(fx.hasWindow);
    if (fx.hasWindow) {
        w.key("start_sec").value(ticksToSeconds(fx.windowStart));
        w.key("length_sec").value(ticksToSeconds(fx.windowDur));
    }
    w.key("survival_sec").value(fx.survivalSec());
    w.key("survival_recorded_sec").value(fx.recordedSurvivalSec);
    w.key("rack_overloads")
        .value(static_cast<std::uint64_t>(fx.rackOverloads));
    w.key("cluster_overloads")
        .value(static_cast<std::uint64_t>(fx.clusterOverloads));
    w.key("throughput").value(fx.throughput);
    w.endObject();

    w.key("attacker").beginObject();
    w.key("virus").value(fx.virusKind);
    w.key("phase2_ground_truth_sec").value(fx.phase2GroundTruthSec);
    w.key("phase2_estimate_sec").value(fx.phase2EstimateSec());
    w.key("spike_launches")
        .value(static_cast<std::uint64_t>(fx.spikeLaunches));
    w.key("spikes_recorded").value(fx.spikesRecorded);
    w.key("probes").value(static_cast<std::uint64_t>(fx.probes));
    w.key("autonomy_sec").value(fx.autonomySec);
    w.key("phases").beginArray();
    for (const auto &p : fx.phases) {
        w.beginObject();
        w.key("t_sec").value(ticksToSeconds(p.ts));
        w.key("from").value(p.from);
        w.key("to").value(p.to);
        w.key("reason").value(p.reason);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("defender").beginObject();
    w.key("time_to_detection_sec").value(fx.timeToDetectionSec());
    w.key("time_to_detection_in_window_sec")
        .value(relSec(fx, fx.firstDetection));
    w.key("detector_flags")
        .value(static_cast<std::uint64_t>(fx.detections));
    w.key("first_escalation_sec").value(fx.firstEscalationSec());
    w.key("udeb_engagements")
        .value(static_cast<std::uint64_t>(fx.shaves));
    w.key("transitions").beginArray();
    for (const auto &c : fx.transitions) {
        w.beginObject();
        w.key("t_sec").value(ticksToSeconds(c.ts));
        w.key("from").value(c.from);
        w.key("to").value(c.to);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("depletion").beginArray();
    for (const auto &[rack, d] : fx.depletion) {
        w.beginObject();
        w.key("rack").value(rack);
        w.key("samples").value(static_cast<std::uint64_t>(d.samples));
        w.key("soc_start").value(d.firstSoc);
        w.key("soc_min").value(d.minSoc);
        w.key("soc_min_at_sec").value(relSec(fx, d.minSocTs));
        w.key("udeb_soc_min").value(d.minUdebSoc);
        w.key("soc_end").value(d.lastSoc);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

/** report --format csv: the DEB depletion curve, one sample a row. */
void
reportCsv(const Forensics &fx, std::ostream &os)
{
    os << "t_sec,rack,soc,udeb_soc,power_w,draw_w,level\n";
    for (const auto &s : fx.socSamples) {
        os << JsonWriter::formatDouble(relSec(fx, s.ts)) << ','
           << s.rack << ',' << JsonWriter::formatDouble(s.soc) << ','
           << JsonWriter::formatDouble(s.udebSoc) << ','
           << JsonWriter::formatDouble(s.powerW) << ','
           << JsonWriter::formatDouble(s.drawW) << ',' << s.level
           << "\n";
    }
}

/** A key event for the timeline view. */
struct TimelineRow {
    Tick ts;
    std::string kind, detail;
};

std::vector<TimelineRow>
buildTimeline(const telemetry::TraceLog &log, int jobFilter)
{
    std::vector<TimelineRow> rows;
    for (const auto &rec : log.records) {
        if (jobFilter >= 0 && rec.job != jobFilter)
            continue;
        if (rec.name == "policy.transition")
            rows.push_back({rec.ts, rec.name,
                            rec.argString("from") + " -> " +
                                rec.argString("to")});
        else if (rec.name == "detector.anomaly")
            rows.push_back(
                {rec.ts, rec.name,
                 "rack " + std::to_string(static_cast<int>(
                               rec.argNumber("rack", -1.0)))});
        else if (rec.name == "attacker.phase")
            rows.push_back({rec.ts, rec.name,
                            rec.argString("from") + " -> " +
                                rec.argString("to") + " (" +
                                rec.argString("reason") + ")"});
        else if (rec.name == "attacker.spike_launch")
            rows.push_back(
                {rec.ts, rec.name,
                 "spike #" + std::to_string(static_cast<int>(
                                 rec.argNumber("index", -1.0)))});
        else if (rec.name == "attack.overload")
            rows.push_back(
                {rec.ts, rec.name, rec.argString("scope")});
        else if (rec.name == "attack.phase2")
            rows.push_back({rec.ts, rec.name, "ground truth"});
        else if (rec.name == "udeb.shave")
            rows.push_back({rec.ts, rec.name, rec.component});
        else if (rec.name == "virus.deploy")
            rows.push_back({rec.ts, rec.name,
                            rec.argString("kind")});
        else if (rec.name == "attack.window")
            rows.push_back({rec.ts, rec.name, "attack begins"});
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const TimelineRow &a, const TimelineRow &b) {
                         return a.ts < b.ts;
                     });
    return rows;
}

void
timelineOut(const std::vector<TimelineRow> &rows,
            const std::string &format, std::ostream &os)
{
    if (format == "json") {
        JsonWriter w(os, 2);
        w.beginArray();
        for (const auto &r : rows) {
            w.beginObject();
            w.key("t_sec").value(ticksToSeconds(r.ts));
            w.key("event").value(r.kind);
            w.key("detail").value(r.detail);
            w.endObject();
        }
        w.endArray();
        os << "\n";
    } else if (format == "csv") {
        os << "t_sec,event,detail\n";
        for (const auto &r : rows)
            os << JsonWriter::formatDouble(ticksToSeconds(r.ts))
               << ',' << r.kind << ",\"" << r.detail << "\"\n";
    } else {
        TextTable t("attack timeline");
        t.setHeader({"t (s)", "event", "detail"});
        for (const auto &r : rows)
            t.addRow({formatFixed(ticksToSeconds(r.ts), 1), r.kind,
                      r.detail});
        t.print(os);
    }
}

void
summaryOut(const Forensics &fx, const std::string &format,
           std::ostream &os)
{
    if (format == "json") {
        JsonWriter w(os);
        w.beginObject();
        w.key("records").value(
            static_cast<std::uint64_t>(fx.records));
        w.key("skipped").value(
            static_cast<std::uint64_t>(fx.skipped));
        w.key("survival_sec").value(fx.survivalSec());
        w.key("time_to_detection_sec")
            .value(fx.timeToDetectionSec());
        w.key("first_escalation_sec").value(fx.firstEscalationSec());
        w.key("spike_launches")
            .value(static_cast<std::uint64_t>(fx.spikeLaunches));
        w.key("detector_flags")
            .value(static_cast<std::uint64_t>(fx.detections));
        w.endObject();
        os << "\n";
        return;
    }
    os << "padtrace: " << fx.records << " events";
    if (fx.skipped > 0)
        os << " (" << fx.skipped << " corrupt skipped)";
    os << "; survival " << fmtSec(fx.survivalSec()) << " s"
       << "; detection at " << fmtSec(fx.timeToDetectionSec())
       << " s; escalation at " << fmtSec(fx.firstEscalationSec())
       << " s; " << fx.spikeLaunches << " spikes, " << fx.detections
       << " detector flags.\n";
}

/** `incidents --format md`: summary line plus one row per incident. */
void
incidentsMarkdown(const std::vector<alert::Incident> &incidents,
                  std::ostream &os)
{
    os << "# padtrace incidents\n\n";
    std::size_t unresolved = 0;
    for (const auto &inc : incidents)
        if (inc.resolvedAt == kTickNever)
            ++unresolved;
    os << incidents.size() << " incident(s), " << unresolved
       << " unresolved at end of run.\n\n";
    if (incidents.empty())
        return;
    TextTable t("incidents");
    t.setHeader({"id", "severity", "signal", "fired (s)",
                 "resolved (s)", "trigger", "limit"});
    for (const auto &inc : incidents)
        t.addRow({inc.id(), alert::severityName(inc.severity),
                  inc.signal,
                  formatFixed(ticksToSeconds(inc.firingSince), 1),
                  inc.resolvedAt == kTickNever
                      ? std::string("n/a")
                      : formatFixed(ticksToSeconds(inc.resolvedAt), 1),
                  formatFixed(inc.triggerValue, 4),
                  formatFixed(inc.threshold, 4)});
    t.print(os);
}

/**
 * The `incidents` command: reads an incidents.jsonl (strictly — it
 * is a machine-written artifact, unlike a possibly-truncated trace)
 * and re-renders it as a table, JSONL or the HTML dashboard.
 */
int
runIncidents(const Options &opt, std::ostream &os)
{
    std::string error;
    const auto incidents =
        alert::readIncidentsFile(opt.tracePath, &error);
    if (!incidents) {
        std::cerr << "padtrace: " << error << "\n";
        return 1;
    }
    if (opt.format == "json")
        alert::writeIncidentsJsonl(os, *incidents);
    else
        incidentsMarkdown(*incidents, os);
    if (!opt.htmlPath.empty()) {
        std::ofstream html(opt.htmlPath);
        if (!html) {
            std::cerr << "padtrace: cannot write " << opt.htmlPath
                      << "\n";
            return 1;
        }
        alert::writeIncidentDashboard(html, *incidents);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    std::ofstream file;
    std::ostream *os = &std::cout;
    if (!opt.outPath.empty()) {
        file.open(opt.outPath);
        if (!file) {
            std::cerr << "padtrace: cannot write " << opt.outPath
                      << "\n";
            return 1;
        }
        os = &file;
    }

    if (opt.command == "incidents")
        return runIncidents(opt, *os);

    std::string error;
    const auto log =
        telemetry::readTraceLogFile(opt.tracePath, &error);
    if (!log) {
        std::cerr << "padtrace: " << error << "\n";
        return 1;
    }
    // Echo the corrupt-line tally on stderr too, so it is visible
    // even when --out or a non-report command hides the report body.
    if (log->skipped > 0)
        std::cerr << "padtrace: skipped " << log->skipped
                  << " corrupt line(s) in " << opt.tracePath << "\n";

    const Forensics fx = analyze(*log, opt.job);
    if (opt.command == "timeline")
        timelineOut(buildTimeline(*log, opt.job), opt.format, *os);
    else if (opt.command == "summary")
        summaryOut(fx, opt.format, *os);
    else if (opt.format == "json")
        reportJson(fx, *os);
    else if (opt.format == "csv")
        reportCsv(fx, *os);
    else
        reportMarkdown(fx, *os);
    return 0;
}
