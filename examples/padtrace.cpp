/**
 * @file
 * padtrace — attack-forensics toolkit over padsim JSONL traces.
 *
 * Reads the one-event-per-line trace a `padsim --trace run.jsonl`
 * (or any sweep with --trace) produces and reconstructs the incident
 * from the defender's point of view:
 *
 *   padtrace report   [options] TRACE.jsonl   full incident report
 *   padtrace timeline [options] TRACE.jsonl   chronological key events
 *   padtrace summary  [options] TRACE.jsonl   one-paragraph digest
 *   padtrace incidents [options] INCIDENTS.jsonl
 *                      alert incidents (from padsim/sweep --incidents)
 *   padtrace incidents --follow INCIDENTS.jsonl
 *                      poll-tail a growing incidents stream (padd)
 *   padtrace perf     [options] PROFILE.json
 *                      engine phase breakdown (see below)
 *   padtrace perf --compare OLD.json NEW.json
 *                      flag perf regressions between two runs
 *   padtrace prom     EXPOSITION.txt
 *                      grammar-check a Prometheus exposition (a padd
 *                      /metrics scrape or --prom dump); one line on
 *                      stderr and exit 1 on the first violation
 *   padtrace rw       STREAM
 *                      validate a pad-rw-v1 remote-write stream — a
 *                      framed wire capture or a bare JSONL spool file
 *                      (rw_spool-NNNN.jsonl), auto-detected — and print
 *                      a one-paragraph digest; exit 1 on the first
 *                      malformed record or sequence violation. A
 *                      crash-cut final record is tolerated (reported
 *                      as a truncated tail), matching the shipper's
 *                      spool-replay contract.
 *
 * `prom` and `rw` accept `-` as the input path to read stdin, so CI
 * can pipe a live scrape straight in: `curl .../metrics | padtrace
 * prom -`.
 *
 * Options:
 *   --format md|json|csv   output format (default md)
 *   --out FILE             write to FILE instead of stdout
 *   --job N                only events from sweep job N
 *   --html FILE            (incidents) write the standalone HTML
 *                          dashboard next to the textual output
 *   --follow               (incidents) keep polling the file and
 *                          print each newly sealed incident as one
 *                          markdown line; only complete (newline-
 *                          terminated) records are consumed, so
 *                          tailing a live padd stream never reads a
 *                          torn write
 *   --poll-ms N            (--follow) poll interval, default 500
 *   --idle-exit N          (--follow) stop after N consecutive
 *                          polls with no new incidents; 0 (default)
 *                          = follow until killed
 *
 * The perf command reads either a stats export from a profiled run
 * (`padsim --profile-engine --stats-json run.json`, identified by
 * its engine.phase.* entries) or a perfbench result file
 * (pad-perfbench-v2/-v3, identified by its schema field) and renders
 * the engine phase-breakdown table: sampled seconds, share and lap
 * count per pipeline phase, plus cache hit rates when present. With
 * --compare it diffs two inputs of the same kind — benchmark
 * throughput per backend and phase shares — and flags rows that got
 * more than 5% worse. The comparison is advisory (exit 0; wire it
 * warn-only into CI), but an input with no profiling data at all —
 * a stats export from an unprofiled run, or a v2 bench file asked
 * for a phase table — is a hard error: one line on stderr, exit 1.
 *
 * The report covers the attack window (survival time recomputed from
 * the first overload event, cross-checked against the value the
 * simulator recorded), the attacker's phase timeline with the ground
 * truth Phase I -> Phase II boundary, the defender-visible estimate
 * of that boundary (first µDEB engagement or policy escalation),
 * time-to-detection, per-rack security-level transitions, and DEB
 * depletion curves from soc.sample events. `report --format csv`
 * exports the depletion curve rows.
 *
 * Corrupt or truncated trailing lines are skipped with a warning
 * (the count appears in the report and is echoed to stderr);
 * padtrace never refuses a trace just because the run died
 * mid-write. A missing or unreadable input, however, is a hard
 * error: one line on stderr and a nonzero exit.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "alert/html.h"
#include "alert/incident.h"
#include "telemetry/prom.h"
#include "telemetry/remote_write.h"
#include "telemetry/trace_reader.h"
#include "util/json.h"
#include "util/json_writer.h"
#include "util/table.h"
#include "util/types.h"

using namespace pad;

namespace {

struct Options {
    std::string command = "report";
    std::string format = "md";
    std::string outPath;
    std::string htmlPath;
    int job = -1; // -1 = all jobs
    std::string tracePath;
    std::string secondPath; // perf --compare NEW file
    bool compare = false;
    bool follow = false;    // incidents: poll-tail the file
    int pollMs = 500;       // --follow poll interval
    int idleExit = 0;       // --follow: stop after N idle polls
};

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: padtrace [report|timeline|summary]\n"
           "                [--format md|json|csv] [--out FILE]\n"
           "                [--job N] TRACE.jsonl\n"
           "       padtrace incidents [--format md|json]\n"
           "                [--out FILE] [--html FILE]\n"
           "                INCIDENTS.jsonl\n"
           "       padtrace incidents --follow [--poll-ms N]\n"
           "                [--idle-exit N] INCIDENTS.jsonl\n"
           "       padtrace perf [--format md|json] [--out FILE]\n"
           "                PROFILE.json\n"
           "       padtrace perf --compare OLD.json NEW.json\n"
           "                [--format md|json] [--out FILE]\n"
           "       padtrace prom EXPOSITION.txt|-\n"
           "       padtrace rw STREAM|-\n";
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> std::string {
        if (++i >= argc)
            usage();
        return argv[i];
    };
    bool commandSet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--format")
            opt.format = need(i);
        else if (arg == "--out")
            opt.outPath = need(i);
        else if (arg == "--html")
            opt.htmlPath = need(i);
        else if (arg == "--job")
            opt.job = std::atoi(need(i).c_str());
        else if (arg == "--compare")
            opt.compare = true;
        else if (arg == "--follow")
            opt.follow = true;
        else if (arg == "--poll-ms")
            opt.pollMs = std::atoi(need(i).c_str());
        else if (arg == "--idle-exit")
            opt.idleExit = std::atoi(need(i).c_str());
        else if (!commandSet && (arg == "report" || arg == "timeline" ||
                                 arg == "summary" ||
                                 arg == "incidents" ||
                                 arg == "perf" || arg == "prom" ||
                                 arg == "rw")) {
            opt.command = arg;
            commandSet = true;
        } else if (arg == "-" && opt.tracePath.empty()) {
            opt.tracePath = arg; // stdin (prom/rw only, checked below)
        } else if (!arg.empty() && arg[0] == '-')
            usage();
        else if (opt.tracePath.empty())
            opt.tracePath = arg;
        else if (opt.secondPath.empty())
            opt.secondPath = arg;
        else
            usage();
    }
    if (opt.tracePath.empty())
        usage();
    if (opt.format != "md" && opt.format != "json" &&
        opt.format != "csv")
        usage();
    if (opt.command == "incidents" && opt.format == "csv")
        usage();
    if (opt.command != "incidents" && !opt.htmlPath.empty())
        usage();
    if (opt.compare != !opt.secondPath.empty())
        usage(); // --compare takes exactly two files
    if (opt.command != "perf" && (opt.compare || !opt.secondPath.empty()))
        usage();
    if (opt.command == "perf" && opt.format == "csv")
        usage();
    if ((opt.command == "prom" || opt.command == "rw") &&
        (opt.format != "md" || !opt.outPath.empty() ||
         !opt.htmlPath.empty() || opt.job != -1))
        usage(); // validate-only: no rendering options apply
    if (opt.tracePath == "-" && opt.command != "prom" &&
        opt.command != "rw")
        usage(); // only the validators stream from stdin
    if (opt.follow &&
        (opt.command != "incidents" || opt.format != "md" ||
         !opt.htmlPath.empty()))
        usage();
    if ((opt.pollMs != 500 || opt.idleExit != 0) && !opt.follow)
        usage();
    if (opt.pollMs < 1 || opt.idleExit < 0)
        usage();
    return opt;
}

/** One attacker phase transition, in file order. */
struct PhaseChange {
    Tick ts = 0;
    std::string from, to, reason;
};

/** One security-policy level transition. */
struct LevelChange {
    Tick ts = 0;
    std::string from, to;
};

/** One soc.sample row (DEB depletion curve point). */
struct SocSample {
    Tick ts = 0;
    int rack = 0;
    double soc = 0.0, udebSoc = 0.0, powerW = 0.0, drawW = 0.0;
    int level = 0;
};

/** Per-rack depletion digest. */
struct RackDepletion {
    std::size_t samples = 0;
    double firstSoc = 1.0, minSoc = 1.0, lastSoc = 1.0;
    double minUdebSoc = 1.0;
    Tick minSocTs = kTickNever;
};

/** Everything the report needs, distilled from one pass. */
struct Forensics {
    std::size_t records = 0, skipped = 0, lines = 0;

    bool hasWindow = false;
    Tick windowStart = 0, windowDur = 0;
    double recordedSurvivalSec = -1.0;
    double throughput = 0.0;
    int spikesRecorded = -1;

    Tick firstOverload = kTickNever;
    std::size_t rackOverloads = 0, clusterOverloads = 0;

    std::vector<PhaseChange> phases;
    double phase2GroundTruthSec = -1.0; // relative to window start
    Tick firstSpikeLaunch = kTickNever;
    std::size_t spikeLaunches = 0, probes = 0;
    double autonomySec = -1.0;
    std::string virusKind;

    std::vector<LevelChange> transitions;
    Tick firstEscalation = kTickNever;
    Tick firstDetection = kTickNever;
    std::size_t detections = 0;
    Tick firstShave = kTickNever;
    std::size_t shaves = 0;

    std::vector<SocSample> socSamples;
    std::map<int, RackDepletion> depletion;

    /** Survival from events; falls back to the recorded value when
     * the run saw no overload (the simulator then reports the full
     * scenario duration, which only it knows exactly). */
    double
    survivalSec() const
    {
        if (hasWindow && firstOverload != kTickNever)
            return ticksToSeconds(firstOverload - windowStart);
        return recordedSurvivalSec;
    }

    /** Absolute sim-seconds of the first detector flag; -1 = never.
     * Comparable bit-for-bit with stats detector.first_flag_sec. */
    double
    timeToDetectionSec() const
    {
        return firstDetection == kTickNever
                   ? -1.0
                   : ticksToSeconds(firstDetection);
    }

    /** Absolute sim-seconds of the first escalation; -1 = never.
     * Comparable with stats policy.first_escalation_sec. */
    double
    firstEscalationSec() const
    {
        return firstEscalation == kTickNever
                   ? -1.0
                   : ticksToSeconds(firstEscalation);
    }

    /**
     * Defender-visible Phase II estimate relative to the window
     * start: the earliest distress signal (µDEB engagement or policy
     * escalation). -1 when neither fired.
     */
    double
    phase2EstimateSec() const
    {
        Tick first = kTickNever;
        for (Tick t : {firstShave, firstEscalation})
            if (t != kTickNever && (first == kTickNever || t < first))
                first = t;
        if (!hasWindow || first == kTickNever)
            return -1.0;
        return ticksToSeconds(first - windowStart);
    }
};

Forensics
analyze(const telemetry::TraceLog &log, int jobFilter)
{
    Forensics fx;
    fx.skipped = log.skipped;
    fx.lines = log.lines;
    for (const auto &rec : log.records) {
        if (jobFilter >= 0 && rec.job != jobFilter)
            continue;
        ++fx.records;
        if (rec.name == "attack.window") {
            fx.hasWindow = true;
            fx.windowStart = rec.ts;
            fx.windowDur = rec.dur;
            fx.recordedSurvivalSec =
                rec.argNumber("survival_sec", -1.0);
            fx.throughput = rec.argNumber("throughput", 0.0);
            fx.spikesRecorded =
                static_cast<int>(rec.argNumber("spikes", -1.0));
        } else if (rec.name == "attack.overload") {
            if (fx.firstOverload == kTickNever ||
                rec.ts < fx.firstOverload)
                fx.firstOverload = rec.ts;
            if (rec.argString("scope") == "cluster")
                ++fx.clusterOverloads;
            else
                ++fx.rackOverloads;
        } else if (rec.name == "attacker.phase") {
            fx.phases.push_back({rec.ts, rec.argString("from"),
                                 rec.argString("to"),
                                 rec.argString("reason")});
        } else if (rec.name == "attack.phase2") {
            fx.phase2GroundTruthSec =
                rec.argNumber("start_sec", -1.0);
        } else if (rec.name == "attacker.spike_launch") {
            ++fx.spikeLaunches;
            if (fx.firstSpikeLaunch == kTickNever ||
                rec.ts < fx.firstSpikeLaunch)
                fx.firstSpikeLaunch = rec.ts;
        } else if (rec.name == "attacker.probe") {
            ++fx.probes;
        } else if (rec.name == "attacker.autonomy") {
            fx.autonomySec = rec.argNumber("autonomy_sec", -1.0);
        } else if (rec.name == "virus.deploy") {
            fx.virusKind = rec.argString("kind");
        } else if (rec.name == "policy.transition") {
            fx.transitions.push_back(
                {rec.ts, rec.argString("from"), rec.argString("to")});
            if (rec.argString("to") != "L1-Normal" &&
                fx.firstEscalation == kTickNever)
                fx.firstEscalation = rec.ts;
        } else if (rec.name == "detector.anomaly") {
            ++fx.detections;
            if (fx.firstDetection == kTickNever)
                fx.firstDetection = rec.ts;
        } else if (rec.name == "udeb.shave") {
            ++fx.shaves;
            if (fx.firstShave == kTickNever)
                fx.firstShave = rec.ts;
        } else if (rec.name == "soc.sample") {
            SocSample s;
            s.ts = rec.ts;
            s.rack = static_cast<int>(rec.argNumber("rack", -1.0));
            s.soc = rec.argNumber("soc", 0.0);
            s.udebSoc = rec.argNumber("udeb_soc", 1.0);
            s.powerW = rec.argNumber("power_w", 0.0);
            s.drawW = rec.argNumber("draw_w", 0.0);
            s.level = static_cast<int>(rec.argNumber("level", 0.0));
            fx.socSamples.push_back(s);
            auto &d = fx.depletion[s.rack];
            if (d.samples == 0)
                d.firstSoc = s.soc;
            ++d.samples;
            if (s.soc < d.minSoc) {
                d.minSoc = s.soc;
                d.minSocTs = s.ts;
            }
            d.minUdebSoc = std::min(d.minUdebSoc, s.udebSoc);
            d.lastSoc = s.soc;
        }
    }
    return fx;
}

std::string
fmtSec(double sec)
{
    return sec < 0.0 ? std::string("n/a") : formatFixed(sec, 1);
}

double
relSec(const Forensics &fx, Tick t)
{
    if (t == kTickNever || !fx.hasWindow)
        return -1.0;
    return ticksToSeconds(t - fx.windowStart);
}

void
reportMarkdown(const Forensics &fx, std::ostream &os)
{
    os << "# padtrace incident report\n\n";
    os << "Events: " << fx.records << " parsed";
    if (fx.skipped > 0)
        os << ", " << fx.skipped << " corrupt line(s) skipped";
    os << ".\n\n";

    os << "## Attack window\n\n";
    if (!fx.hasWindow) {
        os << "No attack.window span found — was the run traced to "
              "completion?\n\n";
    } else {
        TextTable t("attack window");
        t.setHeader({"metric", "value"});
        t.addRow({"window start (s)",
                  formatFixed(ticksToSeconds(fx.windowStart), 1)});
        t.addRow({"window length (s)",
                  formatFixed(ticksToSeconds(fx.windowDur), 1)});
        t.addRow({"survival (s)", fmtSec(fx.survivalSec())});
        t.addRow(
            {"survival (recorded)", fmtSec(fx.recordedSurvivalSec)});
        t.addRow({"rack overloads",
                  std::to_string(fx.rackOverloads)});
        t.addRow({"cluster overloads",
                  std::to_string(fx.clusterOverloads)});
        t.addRow({"throughput", formatFixed(fx.throughput, 4)});
        t.print(os);
        os << "\n";
    }

    os << "## Attacker forensics\n\n";
    {
        TextTable t("attacker");
        t.setHeader({"metric", "value"});
        if (!fx.virusKind.empty())
            t.addRow({"virus", fx.virusKind});
        t.addRow({"phase transitions",
                  std::to_string(fx.phases.size())});
        t.addRow({"side-channel probes", std::to_string(fx.probes)});
        t.addRow({"learned autonomy (s)", fmtSec(fx.autonomySec)});
        t.addRow({"phase II start, ground truth (s)",
                  fmtSec(fx.phase2GroundTruthSec)});
        t.addRow({"phase II start, defender estimate (s)",
                  fmtSec(fx.phase2EstimateSec())});
        t.addRow({"hidden spikes launched",
                  std::to_string(fx.spikeLaunches)});
        t.print(os);
        os << "\n";
    }
    if (!fx.phases.empty()) {
        TextTable t("attacker phase timeline");
        t.setHeader({"t (s)", "from", "to", "reason"});
        for (const auto &p : fx.phases)
            t.addRow({formatFixed(ticksToSeconds(p.ts), 1), p.from,
                      p.to, p.reason});
        t.print(os);
        os << "\n";
    }

    os << "## Defender response\n\n";
    {
        TextTable t("defender");
        t.setHeader({"metric", "value"});
        t.addRow({"time to detection (s, absolute)",
                  fmtSec(fx.timeToDetectionSec())});
        t.addRow({"time to detection (s, in-window)",
                  fmtSec(relSec(fx, fx.firstDetection))});
        t.addRow({"detector flags", std::to_string(fx.detections)});
        t.addRow({"first escalation (s, absolute)",
                  fmtSec(fx.firstEscalationSec())});
        t.addRow({"policy transitions",
                  std::to_string(fx.transitions.size())});
        t.addRow({"µDEB engagements", std::to_string(fx.shaves)});
        t.print(os);
        os << "\n";
    }
    if (!fx.transitions.empty()) {
        TextTable t("policy-level timeline");
        t.setHeader({"t (s)", "from", "to"});
        for (const auto &c : fx.transitions)
            t.addRow({formatFixed(ticksToSeconds(c.ts), 1), c.from,
                      c.to});
        t.print(os);
        os << "\n";
    }

    os << "## DEB depletion\n\n";
    if (fx.depletion.empty()) {
        os << "No soc.sample events (trace predates telemetry or "
              "tracing was off during the attack).\n";
    } else {
        TextTable t("per-rack depletion");
        t.setHeader({"rack", "samples", "soc start", "soc min",
                     "soc min at (s)", "udeb min", "soc end"});
        for (const auto &[rack, d] : fx.depletion)
            t.addRow({std::to_string(rack),
                      std::to_string(d.samples),
                      formatFixed(d.firstSoc, 3),
                      formatFixed(d.minSoc, 3),
                      fmtSec(relSec(fx, d.minSocTs)),
                      formatFixed(d.minUdebSoc, 3),
                      formatFixed(d.lastSoc, 3)});
        t.print(os);
    }
}

void
reportJson(const Forensics &fx, std::ostream &os)
{
    JsonWriter w(os, 2);
    w.beginObject();
    w.key("records").value(static_cast<std::uint64_t>(fx.records));
    w.key("skipped").value(static_cast<std::uint64_t>(fx.skipped));
    w.key("window").beginObject();
    w.key("found").value(fx.hasWindow);
    if (fx.hasWindow) {
        w.key("start_sec").value(ticksToSeconds(fx.windowStart));
        w.key("length_sec").value(ticksToSeconds(fx.windowDur));
    }
    w.key("survival_sec").value(fx.survivalSec());
    w.key("survival_recorded_sec").value(fx.recordedSurvivalSec);
    w.key("rack_overloads")
        .value(static_cast<std::uint64_t>(fx.rackOverloads));
    w.key("cluster_overloads")
        .value(static_cast<std::uint64_t>(fx.clusterOverloads));
    w.key("throughput").value(fx.throughput);
    w.endObject();

    w.key("attacker").beginObject();
    w.key("virus").value(fx.virusKind);
    w.key("phase2_ground_truth_sec").value(fx.phase2GroundTruthSec);
    w.key("phase2_estimate_sec").value(fx.phase2EstimateSec());
    w.key("spike_launches")
        .value(static_cast<std::uint64_t>(fx.spikeLaunches));
    w.key("spikes_recorded").value(fx.spikesRecorded);
    w.key("probes").value(static_cast<std::uint64_t>(fx.probes));
    w.key("autonomy_sec").value(fx.autonomySec);
    w.key("phases").beginArray();
    for (const auto &p : fx.phases) {
        w.beginObject();
        w.key("t_sec").value(ticksToSeconds(p.ts));
        w.key("from").value(p.from);
        w.key("to").value(p.to);
        w.key("reason").value(p.reason);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("defender").beginObject();
    w.key("time_to_detection_sec").value(fx.timeToDetectionSec());
    w.key("time_to_detection_in_window_sec")
        .value(relSec(fx, fx.firstDetection));
    w.key("detector_flags")
        .value(static_cast<std::uint64_t>(fx.detections));
    w.key("first_escalation_sec").value(fx.firstEscalationSec());
    w.key("udeb_engagements")
        .value(static_cast<std::uint64_t>(fx.shaves));
    w.key("transitions").beginArray();
    for (const auto &c : fx.transitions) {
        w.beginObject();
        w.key("t_sec").value(ticksToSeconds(c.ts));
        w.key("from").value(c.from);
        w.key("to").value(c.to);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("depletion").beginArray();
    for (const auto &[rack, d] : fx.depletion) {
        w.beginObject();
        w.key("rack").value(rack);
        w.key("samples").value(static_cast<std::uint64_t>(d.samples));
        w.key("soc_start").value(d.firstSoc);
        w.key("soc_min").value(d.minSoc);
        w.key("soc_min_at_sec").value(relSec(fx, d.minSocTs));
        w.key("udeb_soc_min").value(d.minUdebSoc);
        w.key("soc_end").value(d.lastSoc);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

/** report --format csv: the DEB depletion curve, one sample a row. */
void
reportCsv(const Forensics &fx, std::ostream &os)
{
    os << "t_sec,rack,soc,udeb_soc,power_w,draw_w,level\n";
    for (const auto &s : fx.socSamples) {
        os << JsonWriter::formatDouble(relSec(fx, s.ts)) << ','
           << s.rack << ',' << JsonWriter::formatDouble(s.soc) << ','
           << JsonWriter::formatDouble(s.udebSoc) << ','
           << JsonWriter::formatDouble(s.powerW) << ','
           << JsonWriter::formatDouble(s.drawW) << ',' << s.level
           << "\n";
    }
}

/** A key event for the timeline view. */
struct TimelineRow {
    Tick ts;
    std::string kind, detail;
};

std::vector<TimelineRow>
buildTimeline(const telemetry::TraceLog &log, int jobFilter)
{
    std::vector<TimelineRow> rows;
    for (const auto &rec : log.records) {
        if (jobFilter >= 0 && rec.job != jobFilter)
            continue;
        if (rec.name == "policy.transition")
            rows.push_back({rec.ts, rec.name,
                            rec.argString("from") + " -> " +
                                rec.argString("to")});
        else if (rec.name == "detector.anomaly")
            rows.push_back(
                {rec.ts, rec.name,
                 "rack " + std::to_string(static_cast<int>(
                               rec.argNumber("rack", -1.0)))});
        else if (rec.name == "attacker.phase")
            rows.push_back({rec.ts, rec.name,
                            rec.argString("from") + " -> " +
                                rec.argString("to") + " (" +
                                rec.argString("reason") + ")"});
        else if (rec.name == "attacker.spike_launch")
            rows.push_back(
                {rec.ts, rec.name,
                 "spike #" + std::to_string(static_cast<int>(
                                 rec.argNumber("index", -1.0)))});
        else if (rec.name == "attack.overload")
            rows.push_back(
                {rec.ts, rec.name, rec.argString("scope")});
        else if (rec.name == "attack.phase2")
            rows.push_back({rec.ts, rec.name, "ground truth"});
        else if (rec.name == "udeb.shave")
            rows.push_back({rec.ts, rec.name, rec.component});
        else if (rec.name == "virus.deploy")
            rows.push_back({rec.ts, rec.name,
                            rec.argString("kind")});
        else if (rec.name == "attack.window")
            rows.push_back({rec.ts, rec.name, "attack begins"});
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const TimelineRow &a, const TimelineRow &b) {
                         return a.ts < b.ts;
                     });
    return rows;
}

void
timelineOut(const std::vector<TimelineRow> &rows,
            const std::string &format, std::ostream &os)
{
    if (format == "json") {
        JsonWriter w(os, 2);
        w.beginArray();
        for (const auto &r : rows) {
            w.beginObject();
            w.key("t_sec").value(ticksToSeconds(r.ts));
            w.key("event").value(r.kind);
            w.key("detail").value(r.detail);
            w.endObject();
        }
        w.endArray();
        os << "\n";
    } else if (format == "csv") {
        os << "t_sec,event,detail\n";
        for (const auto &r : rows)
            os << JsonWriter::formatDouble(ticksToSeconds(r.ts))
               << ',' << r.kind << ",\"" << r.detail << "\"\n";
    } else {
        TextTable t("attack timeline");
        t.setHeader({"t (s)", "event", "detail"});
        for (const auto &r : rows)
            t.addRow({formatFixed(ticksToSeconds(r.ts), 1), r.kind,
                      r.detail});
        t.print(os);
    }
}

void
summaryOut(const Forensics &fx, const std::string &format,
           std::ostream &os)
{
    if (format == "json") {
        JsonWriter w(os);
        w.beginObject();
        w.key("records").value(
            static_cast<std::uint64_t>(fx.records));
        w.key("skipped").value(
            static_cast<std::uint64_t>(fx.skipped));
        w.key("survival_sec").value(fx.survivalSec());
        w.key("time_to_detection_sec")
            .value(fx.timeToDetectionSec());
        w.key("first_escalation_sec").value(fx.firstEscalationSec());
        w.key("spike_launches")
            .value(static_cast<std::uint64_t>(fx.spikeLaunches));
        w.key("detector_flags")
            .value(static_cast<std::uint64_t>(fx.detections));
        w.endObject();
        os << "\n";
        return;
    }
    os << "padtrace: " << fx.records << " events";
    if (fx.skipped > 0)
        os << " (" << fx.skipped << " corrupt skipped)";
    os << "; survival " << fmtSec(fx.survivalSec()) << " s"
       << "; detection at " << fmtSec(fx.timeToDetectionSec())
       << " s; escalation at " << fmtSec(fx.firstEscalationSec())
       << " s; " << fx.spikeLaunches << " spikes, " << fx.detections
       << " detector flags.\n";
}

/** `incidents --format md`: summary line plus one row per incident. */
void
incidentsMarkdown(const std::vector<alert::Incident> &incidents,
                  std::ostream &os)
{
    os << "# padtrace incidents\n\n";
    std::size_t unresolved = 0;
    for (const auto &inc : incidents)
        if (inc.resolvedAt == kTickNever)
            ++unresolved;
    os << incidents.size() << " incident(s), " << unresolved
       << " unresolved at end of run.\n\n";
    if (incidents.empty())
        return;
    TextTable t("incidents");
    t.setHeader({"id", "severity", "signal", "fired (s)",
                 "resolved (s)", "trigger", "limit"});
    for (const auto &inc : incidents)
        t.addRow({inc.id(), alert::severityName(inc.severity),
                  inc.signal,
                  formatFixed(ticksToSeconds(inc.firingSince), 1),
                  inc.resolvedAt == kTickNever
                      ? std::string("n/a")
                      : formatFixed(ticksToSeconds(inc.resolvedAt), 1),
                  formatFixed(inc.triggerValue, 4),
                  formatFixed(inc.threshold, 4)});
    t.print(os);
}

// ---------------------------------------------------------------------
// perf: engine phase breakdown and run-to-run regression diff
// ---------------------------------------------------------------------

/** One engine pipeline phase, as exported by the profiler. */
struct PhaseRow {
    std::string name;
    double seconds = 0.0;
    std::uint64_t laps = 0;
};

/** One column of phase data (a backend, or a whole profiled run). */
struct PerfColumn {
    std::string label;
    std::vector<PhaseRow> phases;

    double
    totalSeconds() const
    {
        double t = 0.0;
        for (const auto &p : phases)
            t += p.seconds;
        return t;
    }
};

/** One perfbench measurement cell (row x backend). */
struct BenchValue {
    std::string row, backend, unit;
    double value = 0.0;
    bool higherIsBetter = false;
};

/** Everything padtrace perf extracts from one input file. */
struct PerfInput {
    std::string path;
    /** "stats" (padsim --stats-json) or "perfbench" (BENCH_*.json). */
    std::string kind;
    std::vector<PerfColumn> columns;
    std::vector<BenchValue> values;
    std::uint64_t cacheHits = 0, cacheMisses = 0;
    std::uint64_t profSteps = 0, profSampled = 0, profPeriod = 0;
    bool hasCache = false;
};

std::uint64_t
memberCounter(const JsonValue *obj, const std::string &key)
{
    if (!obj)
        return 0;
    const JsonValue *v = obj->find(key);
    return v && v->isNumber() ? static_cast<std::uint64_t>(v->number)
                              : 0;
}

/**
 * Classify and distill one input file. The two producers are told
 * apart structurally: perfbench files carry a "schema" string,
 * stats exports a "scalars"/"counters" object pair. Phase entries
 * are discovered by name prefix rather than a compiled-in list, so
 * the tool keeps working when the engine grows a new phase.
 */
std::optional<PerfInput>
loadPerfInput(const std::string &path, std::string *error)
{
    std::ifstream is(path);
    if (!is) {
        *error = "cannot read " + path;
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string parseError;
    const auto root = parseJson(buf.str(), &parseError);
    if (!root || !root->isObject()) {
        *error = path + ": " +
                 (parseError.empty() ? "not a JSON object" : parseError);
        return std::nullopt;
    }

    PerfInput in;
    in.path = path;
    if (const JsonValue *schema = root->find("schema");
        schema && schema->isString() &&
        schema->str.rfind("pad-perfbench-", 0) == 0) {
        in.kind = "perfbench";
        const JsonValue *rows = root->find("benchmarks");
        if (!rows || !rows->isArray()) {
            *error = path + ": no benchmarks array";
            return std::nullopt;
        }
        for (const JsonValue &row : rows->array) {
            const JsonValue *name = row.find("name");
            const JsonValue *unit = row.find("unit");
            const JsonValue *hib = row.find("higher_is_better");
            if (!name || !name->isString())
                continue;
            for (const char *backend :
                 {"baseline", "optimized", "soa"}) {
                const JsonValue *col = row.find(backend);
                if (!col || !col->isObject())
                    continue;
                BenchValue bv;
                bv.row = name->str;
                bv.backend = backend;
                bv.unit = unit && unit->isString() ? unit->str : "";
                if (const JsonValue *v = col->find("value"))
                    bv.value = v->number;
                bv.higherIsBetter = hib && hib->boolean;
                in.values.push_back(bv);
                const JsonValue *phases = col->find("phases");
                if (!phases || !phases->isObject())
                    continue;
                PerfColumn pc;
                pc.label = name->str + "/" + backend;
                for (const auto &[pname, pval] : phases->members) {
                    PhaseRow pr;
                    pr.name = pname;
                    if (const JsonValue *s = pval.find("seconds"))
                        pr.seconds = s->number;
                    pr.laps = memberCounter(&pval, "laps");
                    pc.phases.push_back(pr);
                }
                in.columns.push_back(std::move(pc));
            }
        }
        return in;
    }

    const JsonValue *scalars = root->find("scalars");
    const JsonValue *counters = root->find("counters");
    if (!scalars && !counters) {
        *error = path + ": neither a perfbench file (no schema) nor "
                        "a stats export (no scalars/counters)";
        return std::nullopt;
    }
    in.kind = "stats";
    PerfColumn pc;
    pc.label = "run";
    const std::string prefix = "engine.phase.";
    const std::string suffix = ".seconds";
    if (scalars) {
        for (const auto &[key, val] : scalars->members) {
            if (key.rfind(prefix, 0) != 0 ||
                key.size() <= prefix.size() + suffix.size() ||
                key.compare(key.size() - suffix.size(), suffix.size(),
                            suffix) != 0)
                continue;
            PhaseRow pr;
            pr.name = key.substr(prefix.size(), key.size() -
                                                    prefix.size() -
                                                    suffix.size());
            pr.seconds = val.number;
            pr.laps = memberCounter(counters,
                                    prefix + pr.name + ".laps");
            pc.phases.push_back(pr);
        }
    }
    if (!pc.phases.empty())
        in.columns.push_back(std::move(pc));
    if (counters && (counters->contains("engine.cache_hits") ||
                     counters->contains("engine.cache_misses"))) {
        in.hasCache = true;
        in.cacheHits = memberCounter(counters, "engine.cache_hits");
        in.cacheMisses = memberCounter(counters, "engine.cache_misses");
    }
    in.profSteps = memberCounter(counters, "engine.prof.steps");
    in.profSampled =
        memberCounter(counters, "engine.prof.sampled_steps");
    // The period is a configuration gauge, so it lives in scalars.
    in.profPeriod =
        memberCounter(scalars, "engine.prof.sample_period");
    return in;
}

std::string
fmtShare(double part, double whole)
{
    return whole > 0.0 ? formatPercent(part / whole, 1)
                       : std::string("n/a");
}

void
perfMarkdown(const PerfInput &in, std::ostream &os)
{
    os << "# padtrace perf — engine phase breakdown\n\n";
    os << "Input: " << in.path << " ("
       << (in.kind == "stats" ? "stats export" : "perfbench")
       << ")\n\n";
    for (const PerfColumn &col : in.columns) {
        const double total = col.totalSeconds();
        TextTable t(col.label);
        t.setHeader({"phase", "seconds", "share", "laps"});
        for (const PhaseRow &p : col.phases)
            t.addRow({p.name, formatFixed(p.seconds, 6),
                      fmtShare(p.seconds, total),
                      std::to_string(p.laps)});
        t.addRow({"total", formatFixed(total, 6), "100.0%", ""});
        t.print(os);
        os << "\n";
    }
    if (in.hasCache) {
        const double lookups =
            static_cast<double>(in.cacheHits + in.cacheMisses);
        os << "Caches: " << in.cacheHits << " hits, "
           << in.cacheMisses << " misses ("
           << fmtShare(static_cast<double>(in.cacheHits), lookups)
           << " hit rate).\n";
    }
    if (in.profSteps > 0)
        os << "Sampling: " << in.profSampled << " of " << in.profSteps
           << " steps timed (period " << in.profPeriod
           << "); phase seconds are sampled sums, shares are "
              "unbiased.\n";
}

void
perfJson(const PerfInput &in, std::ostream &os)
{
    JsonWriter w(os, 2);
    w.beginObject();
    w.key("input").value(in.path);
    w.key("kind").value(in.kind);
    w.key("columns").beginArray();
    for (const PerfColumn &col : in.columns) {
        const double total = col.totalSeconds();
        w.beginObject();
        w.key("label").value(col.label);
        w.key("total_seconds").value(total);
        w.key("phases").beginArray();
        for (const PhaseRow &p : col.phases) {
            w.beginObject();
            w.key("name").value(p.name);
            w.key("seconds").value(p.seconds);
            w.key("share").value(total > 0.0 ? p.seconds / total
                                             : 0.0);
            w.key("laps").value(p.laps);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    if (in.hasCache) {
        w.key("cache").beginObject();
        w.key("hits").value(in.cacheHits);
        w.key("misses").value(in.cacheMisses);
        w.endObject();
    }
    if (in.profSteps > 0) {
        w.key("sampling").beginObject();
        w.key("steps").value(in.profSteps);
        w.key("sampled_steps").value(in.profSampled);
        w.key("sample_period").value(in.profPeriod);
        w.endObject();
    }
    w.endObject();
    os << "\n";
}

/** A row of the --compare output. */
struct CompareRow {
    std::string what, unit;
    double before = 0.0, after = 0.0;
    /** Relative change, positive = got worse. */
    double worse = 0.0;
    bool regressed = false;
};

/** Flag anything more than 5% worse than the old run. */
constexpr double kRegressionThreshold = 0.05;

std::vector<CompareRow>
comparePerf(const PerfInput &before, const PerfInput &after)
{
    std::vector<CompareRow> rows;
    // Benchmark throughput/latency cells, matched by row x backend.
    for (const BenchValue &b : before.values) {
        for (const BenchValue &a : after.values) {
            if (a.row != b.row || a.backend != b.backend)
                continue;
            if (b.value <= 0.0 || a.value <= 0.0)
                continue;
            CompareRow r;
            r.what = b.row + "/" + b.backend;
            r.unit = b.unit;
            r.before = b.value;
            r.after = a.value;
            r.worse = b.higherIsBetter
                          ? (b.value - a.value) / b.value
                          : (a.value - b.value) / b.value;
            r.regressed = r.worse > kRegressionThreshold;
            rows.push_back(r);
        }
    }
    // Phase shares, matched by column label x phase name. Shares
    // rather than raw seconds: two runs of different length still
    // compare, and a phase claiming a bigger slice of the pipeline
    // is the regression signal we care about.
    for (const PerfColumn &bc : before.columns) {
        for (const PerfColumn &ac : after.columns) {
            if (ac.label != bc.label)
                continue;
            const double bTotal = bc.totalSeconds();
            const double aTotal = ac.totalSeconds();
            if (bTotal <= 0.0 || aTotal <= 0.0)
                continue;
            for (const PhaseRow &bp : bc.phases) {
                for (const PhaseRow &ap : ac.phases) {
                    if (ap.name != bp.name)
                        continue;
                    CompareRow r;
                    r.what = bc.label + ":" + bp.name;
                    r.unit = "share";
                    r.before = bp.seconds / bTotal;
                    r.after = ap.seconds / aTotal;
                    r.worse = r.after - r.before;
                    // A share regression is an absolute shift, not
                    // relative: +5 points of pipeline share.
                    r.regressed = r.worse > kRegressionThreshold;
                    rows.push_back(r);
                }
            }
        }
    }
    return rows;
}

void
compareMarkdown(const PerfInput &before, const PerfInput &after,
                const std::vector<CompareRow> &rows, std::ostream &os)
{
    os << "# padtrace perf — comparison\n\n";
    os << "Old: " << before.path << "\nNew: " << after.path << "\n\n";
    std::size_t regressions = 0;
    TextTable t("perf comparison");
    t.setHeader({"metric", "unit", "old", "new", "worse by", "flag"});
    for (const CompareRow &r : rows) {
        if (r.regressed)
            ++regressions;
        t.addRow({r.what, r.unit, formatFixed(r.before, 4),
                  formatFixed(r.after, 4), formatPercent(r.worse, 1),
                  r.regressed ? "REGRESSED" : ""});
    }
    t.print(os);
    os << "\n"
       << regressions << " regression(s) flagged (threshold "
       << formatPercent(kRegressionThreshold, 0) << " worse).\n";
}

void
compareJson(const PerfInput &before, const PerfInput &after,
            const std::vector<CompareRow> &rows, std::ostream &os)
{
    JsonWriter w(os, 2);
    w.beginObject();
    w.key("old").value(before.path);
    w.key("new").value(after.path);
    w.key("threshold").value(kRegressionThreshold);
    std::size_t regressions = 0;
    w.key("rows").beginArray();
    for (const CompareRow &r : rows) {
        if (r.regressed)
            ++regressions;
        w.beginObject();
        w.key("metric").value(r.what);
        w.key("unit").value(r.unit);
        w.key("old").value(r.before);
        w.key("new").value(r.after);
        w.key("worse_by").value(r.worse);
        w.key("regressed").value(r.regressed);
        w.endObject();
    }
    w.endArray();
    w.key("regressions")
        .value(static_cast<std::uint64_t>(regressions));
    w.endObject();
    os << "\n";
}

int
runPerf(const Options &opt, std::ostream &os)
{
    std::string error;
    const auto first = loadPerfInput(opt.tracePath, &error);
    if (!first) {
        std::cerr << "padtrace: " << error << "\n";
        return 1;
    }
    if (!opt.compare) {
        if (first->columns.empty()) {
            std::cerr << "padtrace: no profiling counters in "
                      << opt.tracePath
                      << " (profiled runs need padsim "
                         "--profile-engine; perfbench files need "
                         "schema v3)\n";
            return 1;
        }
        if (opt.format == "json")
            perfJson(*first, os);
        else
            perfMarkdown(*first, os);
        return 0;
    }
    const auto second = loadPerfInput(opt.secondPath, &error);
    if (!second) {
        std::cerr << "padtrace: " << error << "\n";
        return 1;
    }
    for (const PerfInput *in : {&*first, &*second}) {
        if (in->columns.empty() && in->values.empty()) {
            std::cerr << "padtrace: no profiling counters in "
                      << in->path << "\n";
            return 1;
        }
    }
    if (first->kind != second->kind) {
        std::cerr << "padtrace: cannot compare a " << first->kind
                  << " file against a " << second->kind << " file\n";
        return 1;
    }
    const auto rows = comparePerf(*first, *second);
    if (opt.format == "json")
        compareJson(*first, *second, rows, os);
    else
        compareMarkdown(*first, *second, rows, os);
    // Advisory by design: CI wires this in warn-only, so flagged
    // regressions land in the artifact, not the exit code.
    return 0;
}

/** One-line markdown digest of a sealed incident (--follow). */
void
incidentLineMd(const alert::Incident &inc, std::ostream &os)
{
    os << "- [" << alert::severityName(inc.severity) << "] "
       << inc.id() << " signal " << inc.signal << " fired "
       << formatFixed(ticksToSeconds(inc.firingSince), 1)
       << "s resolved "
       << (inc.resolvedAt == kTickNever
               ? std::string("n/a")
               : formatFixed(ticksToSeconds(inc.resolvedAt), 1) + "s")
       << " trigger " << formatFixed(inc.triggerValue, 4)
       << " limit " << formatFixed(inc.threshold, 4) << "\n"
       << std::flush;
}

/**
 * `incidents --follow`: poll-tail a growing incidents.jsonl — the
 * live stream a padd daemon writes — and print each newly sealed
 * incident as one markdown line. Only complete, newline-terminated
 * records are consumed (the writer flushes per line, so a torn read
 * can only ever be the in-progress tail); a missing file or a poll
 * with no new bytes just counts as idle. A shrinking file means the
 * stream was rotated or restarted: follow starts over from the top.
 */
int
followIncidents(const Options &opt, std::ostream &os)
{
    std::size_t offset = 0;
    int idle = 0;
    for (;;) {
        bool gotNew = false;
        std::ifstream in(opt.tracePath, std::ios::binary);
        if (in) {
            in.seekg(0, std::ios::end);
            const auto size =
                static_cast<std::size_t>(in.tellg());
            if (size < offset)
                offset = 0; // rotated/truncated: start over
            if (size > offset) {
                in.seekg(static_cast<std::streamoff>(offset));
                std::string chunk(size - offset, '\0');
                in.read(chunk.data(),
                        static_cast<std::streamsize>(chunk.size()));
                chunk.resize(
                    static_cast<std::size_t>(in.gcount()));
                const auto lastNl = chunk.rfind('\n');
                if (lastNl != std::string::npos) {
                    const std::string_view complete(
                        chunk.data(), lastNl + 1);
                    std::string error;
                    const auto incidents =
                        alert::readIncidentsJsonl(complete, &error);
                    if (!incidents) {
                        std::cerr << "padtrace: " << error << "\n";
                        return 1;
                    }
                    for (const auto &inc : *incidents)
                        incidentLineMd(inc, os);
                    offset += lastNl + 1;
                    gotNew = !incidents->empty();
                }
            }
        }
        if (gotNew)
            idle = 0;
        else if (opt.idleExit > 0 && ++idle >= opt.idleExit)
            return 0;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opt.pollMs));
    }
}

/**
 * The `incidents` command: reads an incidents.jsonl (strictly — it
 * is a machine-written artifact, unlike a possibly-truncated trace)
 * and re-renders it as a table, JSONL or the HTML dashboard.
 */
int
runIncidents(const Options &opt, std::ostream &os)
{
    if (opt.follow)
        return followIncidents(opt, os);
    std::string error;
    const auto incidents =
        alert::readIncidentsFile(opt.tracePath, &error);
    if (!incidents) {
        std::cerr << "padtrace: " << error << "\n";
        return 1;
    }
    if (opt.format == "json")
        alert::writeIncidentsJsonl(os, *incidents);
    else
        incidentsMarkdown(*incidents, os);
    if (!opt.htmlPath.empty()) {
        std::ofstream html(opt.htmlPath);
        if (!html) {
            std::cerr << "padtrace: cannot write " << opt.htmlPath
                      << "\n";
            return 1;
        }
        alert::writeIncidentDashboard(html, *incidents);
    }
    return 0;
}

// ---------------------------------------------------------------------
// prom: exposition grammar check
// ---------------------------------------------------------------------

/** Slurp a validator input: `-` reads stdin (for shell pipelines). */
std::optional<std::string>
readValidatorInput(const std::string &path)
{
    std::stringstream buf;
    if (path == "-") {
        buf << std::cin.rdbuf();
    } else {
        std::ifstream in(path);
        if (!in)
            return std::nullopt;
        buf << in.rdbuf();
    }
    return buf.str();
}

/** Display name for validator messages: stdin has no path. */
std::string
inputName(const std::string &path)
{
    return path == "-" ? std::string("<stdin>") : path;
}

/**
 * Run the in-tree promtool-style grammar validator over a scraped or
 * dumped exposition, so shell pipelines (the CI padd smoke job) get
 * the same check the unit tests apply in-process.
 */
int
runProm(const Options &opt)
{
    const auto text = readValidatorInput(opt.tracePath);
    if (!text) {
        std::cerr << "padtrace: cannot read " << opt.tracePath
                  << "\n";
        return 1;
    }
    std::string error;
    if (!telemetry::validatePromExposition(*text, &error)) {
        std::cerr << "padtrace: " << inputName(opt.tracePath) << ": "
                  << error << "\n";
        return 1;
    }
    const auto lines =
        std::count(text->begin(), text->end(), '\n');
    std::cout << inputName(opt.tracePath)
              << ": valid Prometheus exposition (" << lines
              << " lines)\n";
    return 0;
}

// ---------------------------------------------------------------------
// rw: remote-write stream / spool validator
// ---------------------------------------------------------------------

/**
 * Validate a pad-rw-v1 stream — a framed wire capture or a bare
 * JSONL spool file, auto-detected by the frame header — and print a
 * one-paragraph digest. The checks mirror what the receiver enforces
 * (parseable records, strictly increasing per-source sequence
 * numbers, non-decreasing ticks within a chunk), so a stream that
 * passes here merges cleanly.
 */
int
runRw(const Options &opt)
{
    const auto text = readValidatorInput(opt.tracePath);
    if (!text) {
        std::cerr << "padtrace: cannot read " << opt.tracePath
                  << "\n";
        return 1;
    }
    std::string error;
    telemetry::RwStreamInfo info;
    if (!telemetry::validateRwStream(*text, &error, &info)) {
        std::cerr << "padtrace: " << inputName(opt.tracePath) << ": "
                  << error << "\n";
        return 1;
    }
    std::cout << inputName(opt.tracePath) << ": valid pad-rw-v1 "
              << (info.framed ? "framed stream" : "spool") << "; "
              << info.batches << " batch(es), " << info.statsBatches
              << " stats dump(s), " << info.samples << " samples from "
              << info.sources.size() << " source(s)";
    if (!info.sources.empty()) {
        std::cout << " [";
        for (std::size_t i = 0; i < info.sources.size(); ++i)
            std::cout << (i ? ", " : "") << info.sources[i];
        std::cout << "]";
    }
    if (info.firstTick != kTickNever)
        std::cout << "; ticks "
                  << formatFixed(ticksToSeconds(info.firstTick), 1)
                  << "s.."
                  << formatFixed(ticksToSeconds(info.lastTick), 1)
                  << "s";
    if (info.truncatedTail)
        std::cout << "; truncated tail record ignored (crash-cut)";
    std::cout << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    std::ofstream file;
    std::ostream *os = &std::cout;
    if (!opt.outPath.empty()) {
        file.open(opt.outPath);
        if (!file) {
            std::cerr << "padtrace: cannot write " << opt.outPath
                      << "\n";
            return 1;
        }
        os = &file;
    }

    if (opt.command == "incidents")
        return runIncidents(opt, *os);
    if (opt.command == "perf")
        return runPerf(opt, *os);
    if (opt.command == "prom")
        return runProm(opt);
    if (opt.command == "rw")
        return runRw(opt);

    std::string error;
    const auto log =
        telemetry::readTraceLogFile(opt.tracePath, &error);
    if (!log) {
        std::cerr << "padtrace: " << error << "\n";
        return 1;
    }
    // Echo the corrupt-line tally on stderr too, so it is visible
    // even when --out or a non-report command hides the report body.
    if (log->skipped > 0)
        std::cerr << "padtrace: skipped " << log->skipped
                  << " corrupt line(s) in " << opt.tracePath << "\n";

    const Forensics fx = analyze(*log, opt.job);
    if (opt.command == "timeline")
        timelineOut(buildTimeline(*log, opt.job), opt.format, *os);
    else if (opt.command == "summary")
        summaryOut(fx, opt.format, *os);
    else if (opt.format == "json")
        reportJson(fx, *os);
    else if (opt.format == "csv")
        reportCsv(fx, *os);
    else
        reportMarkdown(fx, *os);
    return 0;
}
