/**
 * @file
 * Reproduces paper Fig. 1: the cumulative distribution of data
 * center power-failure cost (USD per square meter per minute,
 * Ponemon 2013), and the headline dollar figures the introduction
 * quotes: >$10/m^2/min for 40% of facilities, an average of
 * $7,900/min in 2013, and a ~$1M expected loss for an incident with
 * a 2-hour investigation/remediation tail.
 */

#include <iostream>

#include "bench_common.h"

#include "core/outage_cost.h"
#include "util/table.h"

using namespace pad;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    const bench::TraceSession trace(opts);
    std::cout << "=== Fig. 1: CDF of power failure cost ===\n\n";
    core::OutageCostModel model;

    TextTable cdf("cumulative probability vs USD per m^2 per minute");
    cdf.setHeader({"USD/m^2/min", "CDF", "bar"});
    for (double usd : {1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0,
                       100.0}) {
        const double p = model.cdf(usd);
        cdf.addRow({formatFixed(usd, 0), formatPercent(p, 1),
                    std::string(static_cast<std::size_t>(p * 50), '#')});
    }
    cdf.print(std::cout);

    std::cout << "\nfacilities paying over $10/m^2/min: "
              << formatPercent(model.fractionAbove(10.0), 1)
              << "  (paper: 40%)\n"
              << "median cost: $"
              << formatFixed(model.quantile(0.5), 2)
              << "/m^2/min\n"
              << "expected loss, 5-minute outage + 2 h remediation: $"
              << formatFixed(model.expectedIncidentLossUsd(5.0), 0)
              << "  (paper: a successful attack 'can easily cause "
                 "the victim data center to lose one million "
                 "dollars')\n";
    return 0;
}
