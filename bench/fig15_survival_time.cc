/**
 * @file
 * Reproduces paper Fig. 15: "The sustained operation duration of the
 * evaluated Google cluster under various power attacks" — survival
 * time of the six management schemes (Table III) under dense and
 * sparse two-phase attacks built from CPU-, memory- and IO-intensive
 * power viruses.
 *
 * Headline paper numbers: PAD improves sustained time by 10.7x over
 * conventional designs and 1.6x over the state of the art.
 *
 * The (virus x style x scheme) grid is submitted as one batch of
 * independent runner::Experiment jobs; `--jobs N` controls the
 * SweepRunner pool and the printed figure is bit-identical for any N.
 */

#include <iostream>

#include "attack/virus_trace.h"
#include "bench_common.h"
#include "util/table.h"

using namespace pad;

namespace {

constexpr double kHorizonSec = 1600.0;

runner::Experiment
experiment(core::SchemeKind scheme, const bench::ClusterWorkload &cw,
           attack::VirusKind kind, attack::AttackStyle style)
{
    runner::ClusterAttackSpec p;
    p.scheme = scheme;
    p.kind = kind;
    p.train = attack::spikeTrainFor(style, kind);
    p.durationSec = kHorizonSec;
    return runner::Experiment::clusterAttack(p, cw);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    std::cout << "=== Fig. 15: survival time under various power "
                 "attacks (s; horizon "
              << formatFixed(kHorizonSec, 0) << " s) ===\n\n";
    const auto cw = bench::makeClusterWorkload(3.0);

    // One job per (virus, style, scheme) cell, row-major in the
    // paper's presentation order.
    std::vector<runner::Experiment> grid;
    for (attack::VirusKind kind : attack::kAllVirusKinds)
        for (attack::AttackStyle style : attack::kAllAttackStyles)
            for (core::SchemeKind scheme : core::kAllSchemes)
                grid.push_back(experiment(scheme, cw, kind, style));

    const auto report = bench::runSweep("fig15", opts, grid);
    const auto &results = report.results;

    TextTable table("survival time by scheme (seconds)");
    table.setHeader({"attack", "Conv", "PS", "PSPC", "uDEB", "vDEB",
                     "PAD"});

    std::vector<double> sums(6, 0.0);
    int scenarios = 0;
    std::size_t job = 0;
    for (attack::VirusKind kind : attack::kAllVirusKinds) {
        for (attack::AttackStyle style : attack::kAllAttackStyles) {
            std::vector<double> row;
            for (std::size_t i = 0; i < std::size(core::kAllSchemes);
                 ++i) {
                const double s = results[job++].attack().survivalSec;
                row.push_back(s);
                sums[i] += s;
            }
            ++scenarios;
            table.addRow(virusKindName(kind) + " " +
                             attackStyleName(style),
                         row, 0);
        }
    }
    std::vector<double> avg;
    for (double s : sums)
        avg.push_back(s / scenarios);
    table.addRow("Avg.", avg, 0);
    table.print(std::cout);

    // Scheme order in kAllSchemes: Conv, PS, PSPC, uDEB, vDEB, PAD.
    const double conv = avg[0];
    const double bestBaseline = std::max(avg[1], avg[2]);
    const double pad = avg[5];
    std::cout << "\nPAD vs Conv: "
              << formatFixed(pad / std::max(conv, 1e-9), 1)
              << "x (paper: 10.7x)\nPAD vs state-of-the-art "
                 "peak shaving: "
              << formatFixed(pad / std::max(bestBaseline, 1e-9), 1)
              << "x (paper: 1.6x)\n"
              << "(paper trends: CPU viruses are most effective; "
                 "vDEB helps more than uDEB because visible peaks "
                 "dominate the attack period; PAD is best overall)\n";
    return 0;
}
