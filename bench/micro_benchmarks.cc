/**
 * @file
 * Microbenchmarks for the simulator's hot paths: the KiBaM
 * closed-form step, the Algorithm-1 vDEB assignment, the breaker
 * thermal update, event-queue throughput, workload fine sampling, and
 * the server power model.
 *
 * Built on the perfbench timing utilities (perf_timing.h): each
 * benchmark warms up untimed, then reports the median and minimum of
 * repeated timed runs instead of a single-shot wall clock. `--smoke`
 * shrinks iteration counts so the ctest smoke merely asserts the
 * benchmarks run; real numbers belong to Release builds (see README).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "battery/kibam.h"
#include "core/vdeb.h"
#include "power/circuit_breaker.h"
#include "power/server_power_model.h"
#include "sim/event_queue.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"

#include "perf_timing.h"

using namespace pad;
using namespace pad::bench;

namespace {

/** Iteration scale: --smoke divides every op count by this. */
int g_scale = 1;

int
ops(int full)
{
    return std::max(1, full / g_scale);
}

void
report(const char *name, const TimingResult &t, int opsPerRep)
{
    std::printf("%-28s %10.1f ns/op   (median %.6f s, min %.6f s, "
                "%d reps x %d ops)\n",
                name, t.medianSec / opsPerRep * 1e9, t.medianSec,
                t.minSec, t.reps, opsPerRep);
}

void
benchKibamStep()
{
    const int n = ops(200000);
    battery::Kibam model(
        battery::KibamParams{260640.0, 0.625, 4.5e-4});
    const TimingResult t = timeIt(
        [&] {
            double acc = 0.0;
            for (int i = 0; i < n; ++i) {
                acc += model.step(500.0, 0.1);
                if (model.depleted())
                    model.resetFull();
            }
            keep(acc);
        },
        1, 5);
    report("kibam_step", t, n);
}

void
benchKibamMaxSustainable()
{
    const int n = ops(200000);
    battery::Kibam model(
        battery::KibamParams{260640.0, 0.625, 4.5e-4});
    model.setSoc(0.6);
    const TimingResult t = timeIt(
        [&] {
            double acc = 0.0;
            for (int i = 0; i < n; ++i)
                acc += model.maxSustainablePower(1.0);
            keep(acc);
        },
        1, 5);
    report("kibam_max_sustainable", t, n);
}

void
benchVdebAssign(std::size_t racks)
{
    const int n = ops(20000);
    core::VdebController ctl(core::VdebConfig{800.0});
    std::vector<Joules> soc(racks);
    for (std::size_t i = 0; i < racks; ++i)
        soc[i] = 1000.0 + 137.0 * static_cast<double>(i % 17);
    core::VdebAssignment plan;
    const TimingResult t = timeIt(
        [&] {
            double acc = 0.0;
            for (int i = 0; i < n; ++i) {
                ctl.assignInto(soc, 90000.0, 86000.0, plan);
                acc += plan.shaveTarget;
            }
            keep(acc);
        },
        1, 5);
    char name[64];
    std::snprintf(name, sizeof(name), "vdeb_assign/%zu", racks);
    report(name, t, n);
}

void
benchBreakerObserve()
{
    const int n = ops(200000);
    power::CircuitBreakerConfig cfg;
    cfg.ratedPower = 5000.0;
    power::CircuitBreaker cb("bm.cb", cfg);
    const TimingResult t = timeIt(
        [&] {
            int trips = 0;
            for (int i = 0; i < n; ++i) {
                if (cb.observe(5200.0, 0.1))
                    ++trips;
                if (cb.tripped())
                    cb.reset();
            }
            keep(static_cast<double>(trips));
        },
        1, 5);
    report("breaker_observe", t, n);
}

void
benchEventQueue()
{
    const int queues = ops(100);
    const int events = 1000;
    const TimingResult t = timeIt(
        [&] {
            int sink = 0;
            for (int q = 0; q < queues; ++q) {
                sim::EventQueue queue;
                for (int i = 0; i < events; ++i)
                    queue.schedule(i * 7 % 997, [&sink] { ++sink; });
                queue.runUntil(1000);
            }
            keep(static_cast<double>(sink));
        },
        1, 5);
    report("event_queue", t, queues * events);
}

void
benchWorkloadFineSample()
{
    const int n = ops(200000);
    trace::SyntheticTraceConfig tc;
    tc.machines = 220;
    tc.days = 1.0;
    const auto events = trace::SyntheticGoogleTrace(tc).generate();
    trace::Workload w(events, tc.machines, kTicksPerDay);
    const TimingResult t = timeIt(
        [&] {
            double acc = 0.0;
            Tick tk = 0;
            int machine = 0;
            for (int i = 0; i < n; ++i) {
                acc += w.utilFine(machine, tk);
                tk = (tk + 137) % kTicksPerDay;
                machine = (machine + 1) % tc.machines;
            }
            keep(acc);
        },
        1, 5);
    report("workload_fine_sample", t, n);
}

void
benchServerPowerModel()
{
    const int n = ops(200000);
    power::ServerPowerModel model(power::ServerPowerConfig{});
    const TimingResult t = timeIt(
        [&] {
            double acc = 0.0;
            double u = 0.0;
            for (int i = 0; i < n; ++i) {
                acc += model.power(u, 0.9);
                u += 0.001;
                if (u > 1.0)
                    u = 0.0;
            }
            keep(acc);
        },
        1, 5);
    report("server_power_model", t, n);
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            g_scale = 100;
        } else {
            std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
            return 2;
        }
    }

    std::printf("=== micro benchmarks%s ===\n",
                g_scale > 1 ? " (smoke)" : "");
    benchKibamStep();
    benchKibamMaxSustainable();
    benchVdebAssign(22);
    benchVdebAssign(220);
    benchVdebAssign(2200);
    benchBreakerObserve();
    benchEventQueue();
    benchWorkloadFineSample();
    benchServerPowerModel();
    return 0;
}
