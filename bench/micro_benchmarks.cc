/**
 * @file
 * google-benchmark microbenchmarks for the simulator's hot paths:
 * the KiBaM closed-form step, the Algorithm-1 vDEB assignment, the
 * breaker thermal update, event-queue throughput, workload fine
 * sampling, and the server power model.
 */

#include <benchmark/benchmark.h>

#include "battery/kibam.h"
#include "core/vdeb.h"
#include "power/circuit_breaker.h"
#include "power/server_power_model.h"
#include "sim/event_queue.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"

using namespace pad;

namespace {

void
BM_KibamStep(benchmark::State &state)
{
    battery::Kibam model(battery::KibamParams{260640.0, 0.625, 4.5e-4});
    double power = 500.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.step(power, 0.1));
        if (model.depleted()) {
            model.resetFull();
            power = 500.0;
        }
    }
}
BENCHMARK(BM_KibamStep);

void
BM_KibamMaxSustainable(benchmark::State &state)
{
    battery::Kibam model(battery::KibamParams{260640.0, 0.625, 4.5e-4});
    model.setSoc(0.6);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.maxSustainablePower(1.0));
}
BENCHMARK(BM_KibamMaxSustainable);

void
BM_VdebAssign(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    core::VdebController ctl(core::VdebConfig{800.0});
    std::vector<Joules> soc(n);
    for (std::size_t i = 0; i < n; ++i)
        soc[i] = 1000.0 + 137.0 * static_cast<double>(i % 17);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            ctl.assign(soc, 90000.0, 86000.0));
}
BENCHMARK(BM_VdebAssign)->Arg(22)->Arg(220)->Arg(2200);

void
BM_BreakerObserve(benchmark::State &state)
{
    power::CircuitBreakerConfig cfg;
    cfg.ratedPower = 5000.0;
    power::CircuitBreaker cb("bm.cb", cfg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cb.observe(5200.0, 0.1));
        if (cb.tripped())
            cb.reset();
    }
}
BENCHMARK(BM_BreakerObserve);

void
BM_EventQueueScheduleAndRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            q.schedule(i * 7 % 997, [&sink] { ++sink; });
        q.runUntil(1000);
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_EventQueueScheduleAndRun);

void
BM_WorkloadFineSample(benchmark::State &state)
{
    trace::SyntheticTraceConfig tc;
    tc.machines = 220;
    tc.days = 1.0;
    const auto events = trace::SyntheticGoogleTrace(tc).generate();
    trace::Workload w(events, tc.machines, kTicksPerDay);
    Tick t = 0;
    int machine = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(w.utilFine(machine, t));
        t = (t + 137) % kTicksPerDay;
        machine = (machine + 1) % tc.machines;
    }
}
BENCHMARK(BM_WorkloadFineSample);

void
BM_ServerPowerModel(benchmark::State &state)
{
    power::ServerPowerModel model(power::ServerPowerConfig{});
    double u = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.power(u, 0.9));
        u += 0.001;
        if (u > 1.0)
            u = 0.0;
    }
}
BENCHMARK(BM_ServerPowerModel);

} // namespace

BENCHMARK_MAIN();
