/**
 * @file
 * Reproduces paper Fig. 8: "Statistics of effective attacks under
 * various scenarios" over 15-minute windows on the testbed platform.
 *
 *  (A) peak height manipulation: 1-4 malicious nodes x overshoot
 *      {4, 8, 12, 16}% x virus kind;
 *  (B) peak width manipulation: spike width 1-4 s x overshoot x kind;
 *  (C) attack frequency manipulation: {1, 2, 4, 6}/min x power budget
 *      {70, 65, 60, 55}% of nameplate x kind.
 *
 * All 144 mini-rack simulations are independent and run through one
 * SweepRunner batch (`--jobs N`); cell order is fixed so the table
 * is bit-identical for any pool size.
 */

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "util/table.h"

using namespace pad;

namespace {

constexpr double kWindowSec = 15.0 * 60.0;

bench::RackLabConfig
baseCfg(attack::VirusKind kind)
{
    bench::RackLabConfig cfg;
    cfg.servers = 5;
    cfg.budgetFraction = 0.65;
    cfg.normalUtil = 0.35;
    cfg.noiseAmp = 0.30;
    cfg.kind = kind;
    // Low between-spike pressure: the 15-min Phase-II study keeps
    // the rest level well under the limit so only spikes offend.
    cfg.train = attack::SpikeTrain{1.0, 2.0, 1.0, 0.35};
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    std::cout << "=== Fig. 8: effective attacks in 15 minutes ===\n\n";

    // Build the three panels' grids up front, row-major in printing
    // order, and submit them as one batch.
    std::vector<runner::Experiment> grid;
    for (attack::VirusKind kind : attack::kAllVirusKinds) {
        for (int nodes = 1; nodes <= 4; ++nodes) {
            for (double os : {0.04, 0.08, 0.12, 0.16}) {
                auto cfg = baseCfg(kind);
                cfg.maliciousNodes = nodes;
                cfg.overshoot = os;
                grid.push_back(
                    runner::Experiment::rackLab(cfg, kWindowSec));
            }
        }
    }
    for (attack::VirusKind kind : attack::kAllVirusKinds) {
        for (double os : {0.04, 0.08, 0.12, 0.16}) {
            for (double w : {1.0, 2.0, 3.0, 4.0}) {
                auto cfg = baseCfg(kind);
                cfg.maliciousNodes = 2;
                cfg.overshoot = os;
                cfg.train.widthSec = w;
                cfg.train.perMinute = 4.0;
                grid.push_back(
                    runner::Experiment::rackLab(cfg, kWindowSec));
            }
        }
    }
    for (attack::VirusKind kind : attack::kAllVirusKinds) {
        for (double nameplate : {0.70, 0.65, 0.60, 0.55}) {
            for (double freq : {1.0, 2.0, 4.0, 6.0}) {
                auto cfg = baseCfg(kind);
                cfg.maliciousNodes = 2;
                cfg.overshoot = 0.08;
                cfg.budgetFraction = nameplate;
                cfg.train.perMinute = freq;
                grid.push_back(
                    runner::Experiment::rackLab(cfg, kWindowSec));
            }
        }
    }

    const auto report = bench::runSweep("fig08", opts, grid);
    const auto &results = report.results;
    std::size_t job = 0;
    auto nextRow = [&](int cells) {
        std::vector<double> row;
        for (int i = 0; i < cells; ++i)
            row.push_back(results[job++].lab().effectiveAttacks);
        return row;
    };

    // ----------------------------------------------------------------
    // (A) Peak height: number of controlled nodes x overshoot.
    // ----------------------------------------------------------------
    {
        TextTable table("(A) peak height manipulation "
                        "(1 s spikes, 2/min)");
        table.setHeader(
            {"virus x nodes", "4% OS", "8% OS", "12% OS", "16% OS"});
        for (attack::VirusKind kind : attack::kAllVirusKinds)
            for (int nodes = 1; nodes <= 4; ++nodes)
                table.addRow(virusKindName(kind) + " x" +
                                 std::to_string(nodes),
                             nextRow(4), 0);
        table.print(std::cout);
        std::cout << "(paper: more nodes ease the attack; higher "
                     "tolerated overshoot suppresses it; IO viruses "
                     "need more servers)\n\n";
    }

    // ----------------------------------------------------------------
    // (B) Peak width: spike duration sweep.
    // ----------------------------------------------------------------
    {
        TextTable table("(B) peak width manipulation "
                        "(2 nodes, 4/min)");
        table.setHeader(
            {"virus / overshoot", "1 s", "2 s", "3 s", "4 s"});
        for (attack::VirusKind kind : attack::kAllVirusKinds)
            for (double os : {0.04, 0.08, 0.12, 0.16})
                table.addRow(virusKindName(kind) + " " +
                                 formatPercent(os, 0) + " OS",
                             nextRow(4), 0);
        table.print(std::cout);
        std::cout << "(paper: longer spikes greatly increase "
                     "effective attacks — a 4 s CPU virus roughly "
                     "doubles a 3 s one)\n\n";
    }

    // ----------------------------------------------------------------
    // (C) Attack frequency: spikes/min x power budget.
    // ----------------------------------------------------------------
    {
        TextTable table("(C) attack frequency manipulation "
                        "(2 nodes, 1 s spikes, 8% OS)");
        table.setHeader(
            {"virus / budget", "1/min", "2/min", "4/min", "6/min"});
        for (attack::VirusKind kind : attack::kAllVirusKinds)
            for (double nameplate : {0.70, 0.65, 0.60, 0.55})
                table.addRow(virusKindName(kind) + " " +
                                 formatPercent(nameplate, 0) +
                                 " nameplate",
                             nextRow(4), 0);
        table.print(std::cout);
        std::cout << "(paper: effective attacks correlate with "
                     "frequency but not proportionally; IO viruses "
                     "fail when the budget is adequate, e.g. 70% "
                     "nameplate)\n";
    }
    return 0;
}
