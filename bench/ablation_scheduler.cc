/**
 * @file
 * Ablation: task placement policy vs rack power peaks and battery
 * pressure.
 *
 * The paper's vulnerability story starts with the scheduler: rack
 * power allocation is "largely workload-driven and consequently
 * overlooks the pressure the server rack may exert on batteries"
 * (§IV-B.1). This bench re-places the same synthetic job stream
 * under four policies and measures the rack-peak statistics and the
 * resulting battery engagement — power-aware placement flattens the
 * peaks before any battery has to.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "sched/job_scheduler.h"
#include "util/table.h"

using namespace pad;

int
main()
{
    std::cout << "=== ablation: task placement policy vs rack "
                 "peaks ===\n\n";

    // One job stream, re-placed under each policy.
    const auto base = bench::makeClusterWorkload(2.0);
    const auto jobs = sched::jobsFromEvents(base.events);

    TextTable table("placement policy comparison (2 days)");
    table.setHeader({"policy", "hottest rack mean util",
                     "max rack util", "racks ever over budget",
                     "min SOC after day 1 (PS)"});

    auto evaluate = [&](const std::string &name,
                        const std::vector<trace::TaskEvent> &events) {
        trace::Workload workload(events, 220, 2 * kTicksPerDay);

        // Rack utilization statistics over the horizon.
        core::DataCenterConfig cfg =
            bench::clusterConfig(core::SchemeKind::PS);
        power::ServerPowerModel model(cfg.server);
        double hottest = 0.0, maxUtil = 0.0;
        std::vector<bool> everHot(22, false);
        for (int r = 0; r < 22; ++r) {
            double mean = 0.0;
            int samples = 0;
            for (Tick t = 0; t < 2 * kTicksPerDay;
                 t += 15 * kTicksPerMinute) {
                double util = 0.0, powerW = 0.0;
                for (int s = 0; s < 10; ++s) {
                    util += workload.utilAt(r * 10 + s, t);
                    powerW += model.power(
                        workload.utilAt(r * 10 + s, t));
                }
                util /= 10.0;
                mean += util;
                ++samples;
                maxUtil = std::max(maxUtil, util);
                if (powerW > cfg.rackBudget())
                    everHot[static_cast<std::size_t>(r)] = true;
            }
            hottest = std::max(hottest, mean / samples);
        }
        int hotRacks = 0;
        for (bool h : everHot)
            hotRacks += h;

        // Battery pressure after a day of PS operation.
        core::DataCenter dc(cfg, &workload);
        dc.runCoarseUntil(kTicksPerDay + 15 * kTicksPerHour);
        double minSoc = 1.0;
        for (double s : dc.allSocs())
            minSoc = std::min(minSoc, s);

        table.addRow({name, formatPercent(hottest, 1),
                      formatPercent(maxUtil, 1),
                      std::to_string(hotRacks),
                      formatPercent(minSoc, 1)});
    };

    // Baseline: the trace's own (skewed) machine assignment.
    evaluate("trace-native (skewed)", base.events);
    for (sched::PlacementPolicy policy :
         {sched::PlacementPolicy::RoundRobin,
          sched::PlacementPolicy::Random,
          sched::PlacementPolicy::LeastLoaded,
          sched::PlacementPolicy::PowerAware}) {
        sched::JobScheduler scheduler(220, 10, policy);
        evaluate(sched::placementPolicyName(policy),
                 scheduler.schedule(jobs));
    }
    table.print(std::cout);

    std::cout << "\n(trace-skewed and random placement concentrate "
                 "load into hot racks whose DEBs cycle daily — the "
                 "vulnerable targets of Fig. 13; power-aware "
                 "spreading removes the pressure at the source)\n";
    return 0;
}
