/**
 * @file
 * Ablation: task placement policy vs rack power peaks and battery
 * pressure.
 *
 * The paper's vulnerability story starts with the scheduler: rack
 * power allocation is "largely workload-driven and consequently
 * overlooks the pressure the server rack may exert on batteries"
 * (§IV-B.1). This bench re-places the same synthetic job stream
 * under four policies and measures the rack-peak statistics and the
 * resulting battery engagement — power-aware placement flattens the
 * peaks before any battery has to.
 *
 * Placement itself is cheap and stays serial; the five expensive
 * evaluations (utilization scan + a coarse PS day) run on the
 * SweepRunner pool (`--jobs N`).
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "sched/job_scheduler.h"
#include "util/table.h"

using namespace pad;

namespace {

struct PlacementRow {
    double hottest = 0.0;
    double maxUtil = 0.0;
    int hotRacks = 0;
    double minSoc = 1.0;
};

PlacementRow
evaluate(const std::vector<trace::TaskEvent> &events)
{
    trace::Workload workload(events, 220, 2 * kTicksPerDay);
    PlacementRow row;

    // Rack utilization statistics over the horizon.
    core::DataCenterConfig cfg =
        bench::clusterConfig(core::SchemeKind::PS);
    power::ServerPowerModel model(cfg.server);
    std::vector<bool> everHot(22, false);
    for (int r = 0; r < 22; ++r) {
        double mean = 0.0;
        int samples = 0;
        for (Tick t = 0; t < 2 * kTicksPerDay;
             t += 15 * kTicksPerMinute) {
            double util = 0.0, powerW = 0.0;
            for (int s = 0; s < 10; ++s) {
                util += workload.utilAt(r * 10 + s, t);
                powerW += model.power(
                    workload.utilAt(r * 10 + s, t));
            }
            util /= 10.0;
            mean += util;
            ++samples;
            row.maxUtil = std::max(row.maxUtil, util);
            if (powerW > cfg.rackBudget())
                everHot[static_cast<std::size_t>(r)] = true;
        }
        row.hottest = std::max(row.hottest, mean / samples);
    }
    for (bool h : everHot)
        row.hotRacks += h;

    // Battery pressure after a day of PS operation.
    core::DataCenter dc(cfg, &workload);
    dc.runCoarseUntil(kTicksPerDay + 15 * kTicksPerHour);
    for (double s : dc.allSocs())
        row.minSoc = std::min(row.minSoc, s);
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    std::cout << "=== ablation: task placement policy vs rack "
                 "peaks ===\n\n";

    // One job stream, re-placed under each policy.
    const auto base = bench::makeClusterWorkload(2.0);
    const auto jobs = sched::jobsFromEvents(base.events);

    std::vector<std::string> names;
    std::vector<std::vector<trace::TaskEvent>> placements;
    // Baseline: the trace's own (skewed) machine assignment.
    names.push_back("trace-native (skewed)");
    placements.push_back(base.events);
    for (sched::PlacementPolicy policy :
         {sched::PlacementPolicy::RoundRobin,
          sched::PlacementPolicy::Random,
          sched::PlacementPolicy::LeastLoaded,
          sched::PlacementPolicy::PowerAware}) {
        sched::JobScheduler scheduler(220, 10, policy);
        names.push_back(sched::placementPolicyName(policy));
        placements.push_back(scheduler.schedule(jobs));
    }

    const runner::SweepRunner pool(opts.runnerOptions());
    const auto rows = pool.map(placements.size(), [&](std::size_t i) {
        return evaluate(placements[i]);
    });

    TextTable table("placement policy comparison (2 days)");
    table.setHeader({"policy", "hottest rack mean util",
                     "max rack util", "racks ever over budget",
                     "min SOC after day 1 (PS)"});
    for (std::size_t i = 0; i < rows.size(); ++i)
        table.addRow({names[i], formatPercent(rows[i].hottest, 1),
                      formatPercent(rows[i].maxUtil, 1),
                      std::to_string(rows[i].hotRacks),
                      formatPercent(rows[i].minSoc, 1)});
    table.print(std::cout);

    std::cout << "\n(trace-skewed and random placement concentrate "
                 "load into hot racks whose DEBs cycle daily — the "
                 "vulnerable targets of Fig. 13; power-aware "
                 "spreading removes the pressure at the source)\n";
    return 0;
}
