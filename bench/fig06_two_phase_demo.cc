/**
 * @file
 * Reproduces paper Fig. 6: "Demonstration of the two-phase attack
 * model" on the scaled-down testbed (Fig. 11-A).
 *
 * The attacker runs a sustained visible peak (Phase I) that drains
 * the rack battery; once the battery disconnects the platform falls
 * back to DVFS capping, which the attacker observes through its own
 * VM performance and switches to offending hidden spikes (Phase II).
 *
 * Output: one row per 5 s — normal workload (% of peak), malicious
 * load (% of peak), battery capacity (%) — the three series the
 * paper plots.
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "attack/attacker.h"
#include "battery/battery_unit.h"
#include "bench_common.h"
#include "power/server_power_model.h"
#include "util/table.h"

using namespace pad;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    const bench::TraceSession trace(opts);
    std::cout << "=== Fig. 6: two-phase attack demonstration "
                 "(testbed scale) ===\n\n";

    // Testbed: 5 mini servers (1 kW nameplate), 2 under the
    // attacker's control, battery sized for ~20 s at full load.
    power::ServerPowerModel model(
        power::ServerPowerConfig{60.0, 200.0, 0.85});
    const int servers = 5;
    const int malicious = 2;
    const Watts nameplate = 200.0 * servers;
    const Watts budget = 0.60 * nameplate;

    battery::BatteryUnitConfig bc;
    bc.capacityWh = joulesToWattHours(nameplate * 20.0);
    bc.maxDischargePower = nameplate;
    bc.maxChargePower = nameplate * 0.05;
    battery::BatteryUnit deb("fig6.deb", bc);

    attack::AttackerConfig ac;
    ac.controlledNodes = malicious;
    ac.kind = attack::VirusKind::CpuIntensive;
    ac.train = attack::SpikeTrain{2.0, 4.0, 1.0, 0.55};
    ac.prepareSec = 15.0;
    ac.cappingConfirmSec = 5.0;
    attack::TwoPhaseAttacker attacker(ac);

    const double dt = 0.1;
    const double window = 280.0;
    double dvfs = 1.0;

    TextTable table("time series (one row per 5 s, % of peak value)");
    table.setHeader({"t(s)", "normal load", "malicious load",
                     "battery capacity", "phase"});

    double demandAcc = 0.0, execAcc = 0.0;
    for (int i = 0; i * dt < window; ++i) {
        const double t = i * dt;
        attacker.advance(t);
        const double malUtil = attacker.demandedUtil(0, t);
        const double normUtil =
            0.25 * (1.0 + 0.15 * std::sin(t / 7.0) +
                    0.10 * std::sin(t / 2.3));

        Watts rack = 0.0;
        for (int s = 0; s < servers; ++s) {
            const double u = s < malicious ? malUtil : normUtil;
            rack += model.power(u, s < malicious ? dvfs : 1.0);
        }
        // Battery shaves above-budget draw until the LVD trips; then
        // the platform caps the (hot) attacker nodes with DVFS.
        const Watts excess = std::max(0.0, rack - budget);
        if (excess > 0.0)
            deb.discharge(excess, dt);
        else
            deb.rest(dt);
        dvfs = deb.unavailable() ? 0.8 : 1.0;

        // Performance side channel, aggregated once per second.
        demandAcc += malUtil * dt;
        execAcc += model.executed(malUtil, dvfs) * dt;
        if (i % 10 == 9) {
            attacker.observePerformance(
                t, demandAcc > 0 ? execAcc / demandAcc : 1.0, 1.0);
            demandAcc = execAcc = 0.0;
        }

        if (i % 50 == 0) {
            const char *phase =
                attacker.phase() == attack::TwoPhaseAttacker::Phase::Spike
                    ? "II"
                    : (attacker.phase() ==
                               attack::TwoPhaseAttacker::Phase::Drain
                           ? "I"
                           : "prep");
            table.addRow(
                {formatFixed(t, 0),
                 formatFixed(100.0 * model.power(normUtil) / 200.0, 1),
                 formatFixed(100.0 * model.power(malUtil, dvfs) / 200.0,
                             1),
                 formatFixed(100.0 * deb.soc(), 1), phase});
        }
    }
    table.print(std::cout);

    std::cout << "\nbattery ran out (LVD) and capping observed; "
                 "Phase II started at t="
              << formatFixed(attacker.phaseTwoStartSec(), 1)
              << " s; learned autonomy "
              << formatFixed(attacker.learnedAutonomySec(), 1)
              << " s\n(paper Fig. 6: drain completes ~150 s into the "
                 "attack, then hidden spikes begin)\n";
    return 0;
}
