/**
 * @file
 * Ablation: the vDEB controller's ideal discharge cap P_ideal.
 *
 * Algorithm 1 bounds per-unit discharge because unbounded rates
 * accelerate lead-acid aging (paper §IV-B.1). This bench sweeps
 * P_ideal and reports the trade-off it controls:
 *
 *  - balancing quality: SOC spread across racks after a day under
 *    vDEB (smaller = vulnerable racks hidden faster);
 *  - survival under a standard multi-rack attack;
 *  - battery wear: the worst per-unit aging inflicted.
 */

#include <algorithm>
#include <iostream>

#include "attack/virus_trace.h"
#include "bench_common.h"
#include "util/table.h"

using namespace pad;

int
main()
{
    std::cout << "=== ablation: vDEB ideal discharge cap P_ideal ===\n\n";
    const auto cw = bench::makeClusterWorkload(3.0);

    TextTable table("P_ideal sweep (vDEB-only scheme)");
    table.setHeader({"P_ideal (W)", "min rack SOC mid-peak",
                     "SOC stddev (%)", "survival (s)",
                     "max unit wear (x1e-3)"});

    for (double pideal : {100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0}) {
        // Balancing quality over a power-constrained day: the PDU at
        // 70% of nameplate forces the pool to work every peak.
        core::DataCenterConfig cfg =
            bench::clusterConfig(core::SchemeKind::VdebOnly);
        cfg.clusterBudgetFraction = 0.70;
        cfg.vdeb.idealDischargePower = pideal;
        core::DataCenter dc(cfg, cw.workload.get());
        dc.runCoarseUntil(kTicksPerDay + 13 * kTicksPerHour);
        const double spread = dc.socStdDevPercent();
        double minSoc = 1.0;
        for (double s : dc.allSocs())
            minSoc = std::min(minSoc, s);

        // Survival + wear under the standard attack.
        bench::ClusterAttackParams p;
        p.scheme = core::SchemeKind::VdebOnly;
        p.train = attack::spikeTrainFor(attack::AttackStyle::Dense,
                                        p.kind);
        const auto out = bench::runClusterAttack(p, cw);
        (void)out;

        // Wear: drive one DEB at the capped rate for a full drain
        // and report the aging model's verdict (cluster wear data
        // would need per-unit export; the unit-level number shows
        // the rate-stress trend Algorithm 1 is guarding against).
        battery::BatteryUnit unit(
            "ablation.deb",
            core::defaultDebConfig(cfg.rackNameplate()));
        double drained = 0.0;
        while (!unit.unavailable() && drained < 1e7) {
            drained += unit.discharge(pideal, 10.0);
            if (pideal <= 0.0)
                break;
        }
        table.addRow({formatFixed(pideal, 0),
                      formatPercent(minSoc, 1),
                      formatFixed(spread, 2),
                      formatFixed(out.survivalSec, 0),
                      formatFixed(unit.wear() * 1e3, 3)});
    }
    table.print(std::cout);

    std::cout << "\n(low caps balance slowly but stress cells least; "
                 "high caps shave aggressively at an aging cost -- "
                 "the reason Algorithm 1 bounds the assignment)\n";
    return 0;
}
