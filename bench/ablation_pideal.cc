/**
 * @file
 * Ablation: the vDEB controller's ideal discharge cap P_ideal.
 *
 * Algorithm 1 bounds per-unit discharge because unbounded rates
 * accelerate lead-acid aging (paper §IV-B.1). This bench sweeps
 * P_ideal and reports the trade-off it controls:
 *
 *  - balancing quality: SOC spread across racks after a day under
 *    vDEB (smaller = vulnerable racks hidden faster);
 *  - survival under a standard multi-rack attack;
 *  - battery wear: the worst per-unit aging inflicted.
 *
 * Each P_ideal value contributes one coarse balancing run and one
 * attack run — all 2x6 simulations go through one SweepRunner batch.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "attack/virus_trace.h"
#include "bench_common.h"
#include "util/table.h"

using namespace pad;

namespace {

const double kPideals[] = {100.0, 200.0, 400.0,
                           800.0, 1600.0, 3200.0};

core::DataCenterConfig
configFor(double pideal)
{
    core::DataCenterConfig cfg =
        bench::clusterConfig(core::SchemeKind::VdebOnly);
    cfg.clusterBudgetFraction = 0.70;
    cfg.vdeb.idealDischargePower = pideal;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    std::cout << "=== ablation: vDEB ideal discharge cap P_ideal ===\n\n";
    const auto cw = bench::makeClusterWorkload(3.0);

    // Per P_ideal: a coarse balancing run over a power-constrained
    // day (the PDU at 70% of nameplate forces the pool to work every
    // peak), then survival under the standard attack.
    std::vector<runner::Experiment> grid;
    for (double pideal : kPideals) {
        runner::ClusterCoarseSpec coarse;
        coarse.config = configFor(pideal);
        coarse.untilHours = 24.0 + 13.0; // mid-peak on day 2
        grid.push_back(runner::Experiment::clusterCoarse(coarse, cw));

        runner::ClusterAttackSpec p;
        p.config = configFor(pideal);
        p.train = attack::spikeTrainFor(attack::AttackStyle::Dense,
                                        p.kind);
        grid.push_back(runner::Experiment::clusterAttack(p, cw));
    }

    const auto report = bench::runSweep("ablation_pideal", opts, grid);
    const auto &results = report.results;

    TextTable table("P_ideal sweep (vDEB-only scheme)");
    table.setHeader({"P_ideal (W)", "min rack SOC mid-peak",
                     "SOC stddev (%)", "survival (s)",
                     "max unit wear (x1e-3)"});

    for (std::size_t i = 0; i < std::size(kPideals); ++i) {
        const double pideal = kPideals[i];
        const auto &coarse = results[2 * i].cluster();
        const auto &attacked = results[2 * i + 1].attack();
        double minSoc = 1.0;
        for (double s : coarse.socs)
            minSoc = std::min(minSoc, s);

        // Wear: drive one DEB at the capped rate for a full drain
        // and report the aging model's verdict (cluster wear data
        // would need per-unit export; the unit-level number shows
        // the rate-stress trend Algorithm 1 is guarding against).
        battery::BatteryUnit unit(
            "ablation.deb",
            core::defaultDebConfig(
                core::DataCenterConfig{}.rackNameplate()));
        double drained = 0.0;
        while (!unit.unavailable() && drained < 1e7) {
            drained += unit.discharge(pideal, 10.0);
            if (pideal <= 0.0)
                break;
        }
        table.addRow({formatFixed(pideal, 0),
                      formatPercent(minSoc, 1),
                      formatFixed(coarse.socStdDevPercent, 2),
                      formatFixed(attacked.survivalSec, 0),
                      formatFixed(unit.wear() * 1e3, 3)});
    }
    table.print(std::cout);

    std::cout << "\n(low caps balance slowly but stress cells least; "
                 "high caps shave aggressively at an aging cost -- "
                 "the reason Algorithm 1 bounds the assignment)\n";
    return 0;
}
