/**
 * @file
 * Reproduces paper Fig. 7: "Demonstration of effective power attack"
 * — a 60 s window showing the power budget, the normal load, and the
 * load with hidden malicious spikes. Spikes that cross the limit are
 * effective attacks; those that coincide with a normal-load valley
 * are failed attempts.
 */

#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace pad;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    const bench::TraceSession trace(opts);
    std::cout << "=== Fig. 7: effective vs failed power attacks "
                 "(60 s window) ===\n\n";

    bench::RackLabConfig cfg;
    cfg.servers = 5;
    cfg.budgetFraction = 0.55;
    cfg.overshoot = 0.08;
    cfg.normalUtil = 0.22;
    cfg.maliciousNodes = 1;
    cfg.kind = attack::VirusKind::CpuIntensive;
    cfg.train = attack::SpikeTrain{2.0, 6.0, 1.0, 0.55};

    // Baseline: the same rack with no malicious tenant.
    bench::RackLabConfig baseCfg = cfg;
    baseCfg.maliciousNodes = 0;
    // Replace the attacker's slot with a benign server.
    const auto baseline = bench::runRackLab(baseCfg, 60.0);
    const auto attacked = bench::runRackLab(cfg, 60.0);

    TextTable table("rack power draw (W), one row per 2 s");
    table.setHeader({"t(s)", "budget", "limit", "normal load",
                     "with malicious load", "state"});
    for (std::size_t i = 0; i < attacked.drawPerSecond.size(); i += 2) {
        const double draw = attacked.drawPerSecond[i];
        const char *state =
            draw > attacked.limit
                ? "EFFECTIVE ATTACK"
                : (draw > attacked.budget ? "over budget" : "");
        table.addRow({formatFixed(static_cast<double>(i), 0),
                      formatFixed(attacked.budget, 0),
                      formatFixed(attacked.limit, 0),
                      formatFixed(baseline.drawPerSecond[i], 0),
                      formatFixed(draw, 0), state});
    }
    table.print(std::cout);

    std::cout << "\nspikes launched: " << attacked.spikesLaunched
              << ", effective attacks: " << attacked.effectiveAttacks
              << ", failed attempts: "
              << attacked.spikesLaunched - attacked.effectiveAttacks
              << "\n(paper Fig. 7: repeated hidden spikes; some fail "
                 "when normal servers hit a power valley, some "
                 "overload)\n";
    return 0;
}
