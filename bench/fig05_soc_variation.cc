/**
 * @file
 * Reproduces paper Fig. 5: "Uneven utilization of distributed
 * battery system" — the standard deviation of SOC across the rack
 * batteries at each 5-minute timestamp over one month, under online
 * vs offline charging.
 *
 * Paper observation: online charging yields roughly 3-12% capacity
 * variation; offline charging nearly doubles it in many cases.
 */

#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pad;

namespace {

struct SeriesSummary {
    std::vector<double> stddevSeries; // % SOC per coarse step
    RunningStats stats;
};

SeriesSummary
runPolicy(const bench::ClusterWorkload &cw,
          battery::ChargePolicyKind policy, double days)
{
    core::DataCenterConfig cfg =
        bench::clusterConfig(core::SchemeKind::PS);
    cfg.charge.kind = policy;
    core::DataCenter dc(cfg, cw.workload.get());
    dc.setRecordHistory(true);
    dc.runCoarseUntil(static_cast<Tick>(days * kTicksPerDay));

    SeriesSummary out;
    for (const auto &row : dc.socHistory()) {
        RunningStats rowStats;
        for (double s : row)
            rowStats.add(s * 100.0);
        out.stddevSeries.push_back(rowStats.stddev());
        out.stats.add(rowStats.stddev());
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    const bench::TraceSession trace(opts);
    const double days = 30.0;
    std::cout << "=== Fig. 5: SOC standard deviation across rack "
                 "batteries (1 month, 5-min timestamps) ===\n\n";
    const auto cw = bench::makeClusterWorkload(days);

    const auto online =
        runPolicy(cw, battery::ChargePolicyKind::Online, days);
    const auto offline =
        runPolicy(cw, battery::ChargePolicyKind::Offline, days);

    TextTable summary("summary of SOC std-dev (%) over all timestamps");
    summary.setHeader({"charging", "mean", "p50", "p90", "max"});
    auto addRow = [&](const std::string &name, const SeriesSummary &s) {
        summary.addRow(name,
                       {s.stats.mean(),
                        percentile(s.stddevSeries, 50.0),
                        percentile(s.stddevSeries, 90.0),
                        s.stats.max()});
    };
    addRow("online", online);
    addRow("offline", offline);
    summary.print(std::cout);

    std::cout << "\noffline/online mean variation ratio: "
              << formatFixed(offline.stats.mean() /
                                 std::max(online.stats.mean(), 1e-9),
                             2)
              << "x  (paper: offline nearly doubles the variation)\n\n";

    // Figure data series, one sample per 4 hours.
    TextTable series("SOC std-dev series (every 4 h)");
    series.setHeader({"timestamp(x5min)", "online(%)", "offline(%)"});
    for (std::size_t i = 0; i < online.stddevSeries.size(); i += 48) {
        series.addRow(std::to_string(i),
                      {online.stddevSeries[i], offline.stddevSeries[i]});
    }
    series.print(std::cout);
    return 0;
}
