/**
 * @file
 * Reproducible perf benchmark harness (BENCH_*.json).
 *
 * Times the simulator's hot paths at three granularities — component
 * microbenchmarks (KiBaM step, event queue), the fine-grained attack
 * loop (ns/tick), and whole experiments (single-run and sweep
 * throughput) — under every engine backend, so each optimization is
 * measured against the exact pre-PR code path in one binary:
 *
 *   perfbench --backend all --json BENCH_PR6.json
 *
 * The engine-level rows (fine_tick, single_run*, sweep*) run through
 * the explicit engine::EngineBackend API, one column per backend:
 * baseline and optimized are the scalar engine with the tuning
 * switches off/on, soa is the structure-of-arrays batch engine. The
 * component micro-rows (kibam_step, event_queue, alert_eval) measure
 * the scalar tuning switches in isolation — the SoA engine has no
 * equivalent standalone objects — so they report baseline/optimized
 * only, via the deprecated-but-still-measurable ScopedEngineProfile.
 *
 * Results are wall-clock medians over repeated runs (see
 * perf_timing.h). Benchmark only Release builds (see README); the
 * default RelWithDebInfo build is fine for the ctest smoke, which
 * uses --quick to shrink repetitions and only asserts the harness
 * runs.
 *
 * Speedup is reported as baseline-time / optimized-time and soa
 * speedup as optimized-time / soa-time (equivalently the throughput
 * ratios), so > 1 always means the later engine is faster.
 *
 * Schema v3 adds engine self-profiling: the single_run_profiled row
 * re-times the standard attack with the EngineProfiler attached
 * (its delta against single_run is the profiling overhead — the
 * acceptance bar is <= 5%) and each profiled measurement carries a
 * "phases" object with the sampled per-phase seconds and lap counts
 * the run exported. `padtrace perf` renders and diffs these files.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "alert/engine.h"
#include "alert/rule.h"
#include "attack/attacker.h"
#include "battery/kibam.h"
#include "core/datacenter.h"
#include "engine/backend.h"
#include "obs/prof.h"
#include "runner/experiment.h"
#include "runner/sweep_runner.h"
#include "sim/event_queue.h"
#include "sim/stats_registry.h"
#include "telemetry/receiver.h"
#include "telemetry/remote_write.h"
#include "util/engine_tuning.h"
#include "util/json_writer.h"
#include "util/logging.h"

#include "perf_timing.h"

using namespace pad;
using namespace pad::bench;

namespace {

struct PerfOptions {
    bool runBaseline = true;
    bool runOptimized = true;
    bool runSoa = true;
    bool quick = false;
    std::string jsonPath;
};

/** One engine phase's contribution to a profiled measurement. */
struct PhaseBreak {
    std::string name;
    /** Sampled seconds the run spent in the phase. */
    double seconds = 0.0;
    std::uint64_t laps = 0;
};

/** One backend's measurement: raw timing plus the derived value. */
struct ProfileMeasure {
    TimingResult timing;
    /** Value in the benchmark's unit (ns/op or runs/s). */
    double value = 0.0;
    /** Per-phase breakdown; only profiled rows fill this (v3). */
    std::vector<PhaseBreak> phases;
};

struct BenchRow {
    std::string name;
    /** "ns_per_op", "ns_per_event", "ns_per_tick", "runs_per_sec". */
    std::string unit;
    /** True when larger values are better (throughput units). */
    bool higherIsBetter = false;
    std::optional<ProfileMeasure> baseline;
    std::optional<ProfileMeasure> optimized;
    std::optional<ProfileMeasure> soa;

    /** baseline-time / optimized-time; 0 when a column is missing. */
    double
    speedup() const
    {
        return ratio(baseline, optimized);
    }

    /** optimized-time / soa-time; 0 when a column is missing. */
    double
    speedupSoa() const
    {
        return ratio(optimized, soa);
    }

  private:
    double
    ratio(const std::optional<ProfileMeasure> &before,
          const std::optional<ProfileMeasure> &after) const
    {
        if (!before || !after || before->value <= 0.0 ||
            after->value <= 0.0)
            return 0.0;
        return higherIsBetter ? after->value / before->value
                              : before->value / after->value;
    }
};

// ---------------------------------------------------------------------
// Benchmark bodies. The component micro-rows return the measurement
// for the *current* thread's engine profile; their caller sets the
// profile first, and all state that latches tuning flags at
// construction (EventQueue pools) is built inside the body, after
// the profile switch. The engine-level rows instead take an explicit
// engine::BackendKind and never touch the thread profile.
// ---------------------------------------------------------------------

ProfileMeasure
benchKibamStep(const PerfOptions &opt)
{
    const int ops = opt.quick ? 20000 : 200000;
    const int reps = opt.quick ? 3 : 9;
    battery::Kibam model(
        battery::KibamParams{260640.0, 0.625, 4.5e-4});
    ProfileMeasure m;
    m.timing = timeIt(
        [&] {
            double acc = 0.0;
            for (int i = 0; i < ops; ++i) {
                acc += model.step(500.0, 0.1);
                if (model.depleted())
                    model.resetFull();
            }
            keep(acc);
        },
        /*warmup=*/1, reps);
    m.value = m.timing.medianSec / static_cast<double>(ops) * 1e9;
    return m;
}

ProfileMeasure
benchEventQueue(const PerfOptions &opt)
{
    const int queues = opt.quick ? 10 : 100;
    const int events = 1000;
    const int reps = opt.quick ? 3 : 9;
    ProfileMeasure m;
    m.timing = timeIt(
        [&] {
            int sink = 0;
            for (int q = 0; q < queues; ++q) {
                sim::EventQueue queue;
                for (int i = 0; i < events; ++i)
                    queue.schedule(i * 7 % 997, [&sink] { ++sink; });
                queue.runUntil(1000);
            }
            keep(static_cast<double>(sink));
        },
        /*warmup=*/1, reps);
    m.value = m.timing.medianSec /
              static_cast<double>(queues * events) * 1e9;
    return m;
}

/**
 * Fine-grained attack loop, ns per fine tick. Each repetition warms
 * a fresh data center up to the attack hour untimed, then times only
 * DataCenter::runAttack.
 */
ProfileMeasure
benchFineTick(const PerfOptions &opt, const runner::ClusterWorkload &cw,
              engine::BackendKind backend)
{
    const double durationSec = opt.quick ? 30.0 : 120.0;
    const int reps = opt.quick ? 2 : 5;
    const core::DataCenterConfig cfg =
        runner::clusterConfig(core::SchemeKind::Pad);
    const double ticks =
        durationSec / ticksToSeconds(cfg.fineStep);

    std::vector<double> samples;
    for (int i = 0; i < reps; ++i) {
        auto dc = engine::makeClusterEngine(backend, cfg,
                                            cw.workload.get());
        dc->runCoarseUntil(kTicksPerDay +
                           static_cast<Tick>(11.0 * kTicksPerHour));
        attack::AttackerConfig ac;
        ac.controlledNodes = 4;
        attack::TwoPhaseAttacker attacker(ac);
        core::AttackScenario sc;
        sc.targetPolicy = core::TargetPolicy::MostVulnerable;
        sc.durationSec = durationSec;
        const double t0 = nowSec();
        const core::AttackOutcome out = dc->runAttack(attacker, sc);
        samples.push_back(nowSec() - t0);
        keep(out.survivalSec);
    }
    ProfileMeasure m;
    m.timing = summarize(std::move(samples));
    m.value = m.timing.medianSec / ticks * 1e9;
    return m;
}

/** The standard Fig. 15/16 cluster-attack measurement, end to end. */
runner::Experiment
standardAttack(const runner::ClusterWorkload &cw, bool quick)
{
    runner::ClusterAttackSpec spec;
    if (quick)
        spec.durationSec = 60.0;
    return runner::Experiment::clusterAttack(spec, cw);
}

ProfileMeasure
benchSingleRun(const PerfOptions &opt,
               const runner::ClusterWorkload &cw,
               engine::BackendKind backend)
{
    const int reps = opt.quick ? 2 : 9;
    runner::Experiment e = standardAttack(cw, opt.quick);
    e.backend = backend;
    ProfileMeasure m;
    m.timing = timeIt(
        [&] {
            const runner::ExperimentResult r = runner::runExperiment(e);
            keep(static_cast<double>(r.telemetry.detections));
        },
        /*warmup=*/1, reps);
    m.value = 1.0 / m.timing.medianSec;
    return m;
}

/**
 * benchSingleRun with the engine self-profiler attached: the delta
 * against single_run is the cost of profiling an entire run (<= 5%
 * is the acceptance bar). The phase breakdown of the last timed
 * repetition rides along so the JSON doubles as a `padtrace perf`
 * input.
 */
ProfileMeasure
benchSingleRunProfiled(const PerfOptions &opt,
                       const runner::ClusterWorkload &cw,
                       engine::BackendKind backend)
{
    const int reps = opt.quick ? 2 : 9;
    runner::Experiment e = standardAttack(cw, opt.quick);
    e.backend = backend;
    e.profileEngine = true;
    ProfileMeasure m;
    std::shared_ptr<sim::StatsRegistry> last;
    m.timing = timeIt(
        [&] {
            const runner::ExperimentResult r = runner::runExperiment(e);
            keep(static_cast<double>(r.telemetry.detections));
            last = r.stats;
        },
        /*warmup=*/1, reps);
    m.value = 1.0 / m.timing.medianSec;
    if (last) {
        for (std::size_t i = 0; i < obs::EngineProfiler::kPhaseCount;
             ++i) {
            PhaseBreak pb;
            pb.name = obs::EngineProfiler::phaseName(i);
            pb.seconds =
                last->lookup("engine.phase." + pb.name + ".seconds");
            pb.laps = last->lookupCounter("engine.phase." + pb.name +
                                          ".laps");
            m.phases.push_back(std::move(pb));
        }
    }
    return m;
}

/** Shipped default rules, loaded once from the source tree. */
std::shared_ptr<const alert::RuleSet>
defaultRules()
{
    std::string error;
    auto rules = alert::loadRulesFile(
        std::string(PAD_RULES_DIR) + "/pad_default.json", &error);
    if (!rules)
        PAD_FATAL("cannot load default alert rules: {}", error);
    return std::make_shared<const alert::RuleSet>(std::move(*rules));
}

/**
 * Alert-engine dispatch cost, ns per telemetry sample: a synthetic
 * stream cycling through the signal names the default rules watch
 * (plus unmatched ones, the common case) at 100 ms cadence.
 */
ProfileMeasure
benchAlertEval(const PerfOptions &opt)
{
    const int ops = opt.quick ? 20000 : 200000;
    const int reps = opt.quick ? 3 : 9;
    const auto rules = defaultRules();

    // Name table built outside the timed region: per-sample cost is
    // the engine's routing + evaluation, not string formatting.
    std::vector<std::string> names;
    for (int r = 0; r < 22; ++r) {
        names.push_back("rack" + std::to_string(r) + ".soc");
        names.push_back("rack" + std::to_string(r) + ".power");
    }
    names.push_back("pdu.power");
    names.push_back("detector.score");
    names.push_back("policy.level");

    ProfileMeasure m;
    m.timing = timeIt(
        [&] {
            alert::AlertEngine engine(*rules);
            Tick now = 0;
            for (int i = 0; i < ops; ++i) {
                const auto id = static_cast<std::uint32_t>(
                    static_cast<std::size_t>(i) % names.size());
                // The id overload is the hub's steady-state path.
                engine.onSample(id, names[id], now,
                                0.5 + 0.4 * ((i * 37 % 100) / 100.0));
                if (i % 10 == 9)
                    now += 100; // 100 ms sim step
            }
            engine.finalize(now);
            keep(static_cast<double>(engine.incidents().size()));
        },
        /*warmup=*/1, reps);
    m.value = m.timing.medianSec / static_cast<double>(ops) * 1e9;
    return m;
}

/**
 * benchSingleRun with full-resolution telemetry recording on. This
 * is the fair baseline for the alerting overhead claim: enabling
 * alerts necessarily turns the hub on, so the alert-engine cost is
 * single_run_alerts vs single_run_telemetry, not vs the bare run.
 */
ProfileMeasure
benchSingleRunTelemetry(const PerfOptions &opt,
                        const runner::ClusterWorkload &cw,
                        engine::BackendKind backend)
{
    const int reps = opt.quick ? 2 : 9;
    runner::Experiment e = standardAttack(cw, opt.quick);
    e.backend = backend;
    e.telemetryEnabled = true;
    ProfileMeasure m;
    m.timing = timeIt(
        [&] {
            const runner::ExperimentResult r = runner::runExperiment(e);
            keep(static_cast<double>(r.telemetry.detections));
        },
        /*warmup=*/1, reps);
    m.value = 1.0 / m.timing.medianSec;
    return m;
}

/**
 * benchSingleRun with online alerting attached: the delta against
 * single_run_telemetry is the alert-engine overhead (< 3% is the
 * acceptance bar; alerting is off the hot fine-tick path entirely
 * when no rules are loaded).
 */
ProfileMeasure
benchSingleRunAlerts(const PerfOptions &opt,
                     const runner::ClusterWorkload &cw,
                     engine::BackendKind backend)
{
    const int reps = opt.quick ? 2 : 9;
    runner::Experiment e = standardAttack(cw, opt.quick);
    e.backend = backend;
    e.telemetryEnabled = true;
    e.alertRules = defaultRules();
    ProfileMeasure m;
    m.timing = timeIt(
        [&] {
            const runner::ExperimentResult r = runner::runExperiment(e);
            keep(static_cast<double>(r.alerts->incidents().size()));
        },
        /*warmup=*/1, reps);
    m.value = 1.0 / m.timing.medianSec;
    return m;
}

/**
 * benchSingleRunTelemetry plus the push pipeline: every rep ships
 * its whole hub and stats dump to an in-process ReceiverServer over
 * real localhost TCP. The delta against single_run_telemetry is the
 * end-to-end export cost — snapshot, codec, framing, socket round
 * trip and receiver merge. Each rep uses a distinct source label so
 * the receiver's per-source dedup never short-circuits the merge.
 */
ProfileMeasure
benchSingleRunPush(const PerfOptions &opt,
                   const runner::ClusterWorkload &cw,
                   engine::BackendKind backend)
{
    const int reps = opt.quick ? 2 : 9;
    runner::Experiment e = standardAttack(cw, opt.quick);
    e.backend = backend;
    e.telemetryEnabled = true;

    telemetry::ReceiverServer rx(0);
    std::string error;
    if (!rx.start(&error)) {
        std::fprintf(stderr, "perfbench: %s\n", error.c_str());
        std::exit(1);
    }
    int rep = 0;
    ProfileMeasure m;
    m.timing = timeIt(
        [&] {
            const runner::ExperimentResult r = runner::runExperiment(e);
            telemetry::RemoteWriteOptions rw;
            rw.port = rx.port();
            rw.source = "bench" + std::to_string(rep++);
            telemetry::RemoteWriteShipper shipper(std::move(rw),
                                                  r.hub.get());
            if (!shipper.start(&error)) {
                std::fprintf(stderr, "perfbench: %s\n", error.c_str());
                std::exit(1);
            }
            shipper.observe(0);
            shipper.finish(secondsToTicks(e.attack.durationSec),
                           r.stats.get());
            keep(static_cast<double>(
                shipper.counters().samplesShipped));
        },
        /*warmup=*/1, reps);
    rx.stop();
    m.value = 1.0 / m.timing.medianSec;
    return m;
}

ProfileMeasure
benchSweep(const PerfOptions &opt, const runner::ClusterWorkload &cw,
           int jobs, engine::BackendKind backend)
{
    const int n = opt.quick ? 2 : 8;
    const int reps = opt.quick ? 1 : 3;
    std::vector<runner::Experiment> grid;
    grid.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        runner::Experiment e = standardAttack(cw, opt.quick);
        e.seed = static_cast<std::uint64_t>(i + 1);
        e.backend = backend;
        grid.push_back(e);
    }
    runner::SweepRunner runner(runner::SweepRunner::Options{jobs});
    ProfileMeasure m;
    m.timing = timeIt(
        [&] {
            const auto results = runner.run(grid);
            keep(static_cast<double>(results.size()));
        },
        /*warmup=*/opt.quick ? 0 : 1, reps);
    m.value = static_cast<double>(n) / m.timing.medianSec;
    return m;
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

void
printRow(const BenchRow &row)
{
    auto print = [&](const char *label,
                     const std::optional<ProfileMeasure> &pm) {
        if (!pm)
            return;
        std::printf("  %-9s %12.2f %-12s (median %.6f s, min %.6f s, "
                    "%d reps)\n",
                    label, pm->value, row.unit.c_str(),
                    pm->timing.medianSec, pm->timing.minSec,
                    pm->timing.reps);
        if (pm->phases.empty())
            return;
        double total = 0.0;
        for (const PhaseBreak &p : pm->phases)
            total += p.seconds;
        for (const PhaseBreak &p : pm->phases)
            std::printf("    %-16s %10.6f s %5.1f%% (%llu laps)\n",
                        p.name.c_str(), p.seconds,
                        total > 0.0 ? 100.0 * p.seconds / total : 0.0,
                        static_cast<unsigned long long>(p.laps));
    };
    std::printf("%s\n", row.name.c_str());
    print("baseline", row.baseline);
    print("optimized", row.optimized);
    print("soa", row.soa);
    if (row.speedup() > 0.0)
        std::printf("  %-9s %12.2fx (optimized vs baseline)\n",
                    "speedup", row.speedup());
    if (row.speedupSoa() > 0.0)
        std::printf("  %-9s %12.2fx (soa vs optimized)\n",
                    "soa_gain", row.speedupSoa());
    std::fflush(stdout);
}

/**
 * Component micro-row: measures the scalar tuning switches in
 * isolation by flipping the calling thread's profile around the
 * body. The SoA engine has no standalone equivalent of these
 * components, so no soa column is produced.
 */
template <typename Fn>
BenchRow
runScalarRow(const PerfOptions &opt, const std::string &name,
             const std::string &unit, bool higherIsBetter, Fn &&body)
{
    BenchRow row;
    row.name = name;
    row.unit = unit;
    row.higherIsBetter = higherIsBetter;
    if (opt.runBaseline) {
        ScopedEngineProfile scope(EngineProfile::Baseline);
        row.baseline = body();
    }
    if (opt.runOptimized) {
        ScopedEngineProfile scope(EngineProfile::Optimized);
        row.optimized = body();
    }
    printRow(row);
    return row;
}

/**
 * Engine-level row: the body receives an explicit BackendKind and
 * runs once per enabled backend through the engine::EngineBackend
 * API. The thread profile is never touched — each engine pins its
 * own tuning for the run.
 */
template <typename Fn>
BenchRow
runEngineRow(const PerfOptions &opt, const std::string &name,
             const std::string &unit, bool higherIsBetter, Fn &&body)
{
    BenchRow row;
    row.name = name;
    row.unit = unit;
    row.higherIsBetter = higherIsBetter;
    if (opt.runBaseline)
        row.baseline = body(engine::BackendKind::Baseline);
    if (opt.runOptimized)
        row.optimized = body(engine::BackendKind::Optimized);
    if (opt.runSoa)
        row.soa = body(engine::BackendKind::Soa);
    printRow(row);
    return row;
}

void
writeJson(const std::string &path, const PerfOptions &opt,
          const std::vector<BenchRow> &rows)
{
    std::ofstream os(path);
    if (!os)
        PAD_FATAL("cannot open {} for writing", path);
    JsonWriter w(os, 2);
    w.beginObject();
    w.key("schema").value("pad-perfbench-v3");
    w.key("quick").value(opt.quick);
    w.key("benchmarks").beginArray();
    for (const BenchRow &row : rows) {
        w.beginObject();
        w.key("name").value(row.name);
        w.key("unit").value(row.unit);
        w.key("higher_is_better").value(row.higherIsBetter);
        auto profile = [&](const char *key,
                           const std::optional<ProfileMeasure> &pm) {
            if (!pm)
                return;
            w.key(key).beginObject();
            w.key("value").value(pm->value);
            w.key("median_sec").value(pm->timing.medianSec);
            w.key("min_sec").value(pm->timing.minSec);
            w.key("mean_sec").value(pm->timing.meanSec);
            w.key("reps").value(pm->timing.reps);
            if (!pm->phases.empty()) {
                w.key("phases").beginObject();
                for (const PhaseBreak &p : pm->phases) {
                    w.key(p.name).beginObject();
                    w.key("seconds").value(p.seconds);
                    w.key("laps").value(p.laps);
                    w.endObject();
                }
                w.endObject();
            }
            w.endObject();
        };
        profile("baseline", row.baseline);
        profile("optimized", row.optimized);
        profile("soa", row.soa);
        if (row.speedup() > 0.0)
            w.key("speedup").value(row.speedup());
        if (row.speedupSoa() > 0.0)
            w.key("speedup_soa").value(row.speedupSoa());
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    PAD_ASSERT(w.balanced());
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--backend baseline|optimized|soa|all] "
        "[--json FILE] [--quick]\n"
        "  --profile NAME is a deprecated alias for --backend\n"
        "  (accepts the historical value \"both\" = the two scalar\n"
        "  backends)\n",
        argv0);
    std::exit(2);
}

/** Map a --backend/--profile value onto the enabled-column set. */
void
selectBackends(PerfOptions &opt, const std::string &name,
               const char *argv0)
{
    opt.runBaseline = false;
    opt.runOptimized = false;
    opt.runSoa = false;
    if (name == "baseline") {
        opt.runBaseline = true;
    } else if (name == "optimized") {
        opt.runOptimized = true;
    } else if (name == "soa") {
        // SoA speedup is reported against optimized, so asking for
        // the soa column alone still measures the scalar reference.
        opt.runOptimized = true;
        opt.runSoa = true;
    } else if (name == "both") {
        opt.runBaseline = true;
        opt.runOptimized = true;
    } else if (name == "all") {
        opt.runBaseline = true;
        opt.runOptimized = true;
        opt.runSoa = true;
    } else {
        usage(argv0);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    PerfOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--backend" && i + 1 < argc) {
            selectBackends(opt, argv[++i], argv[0]);
        } else if (arg == "--profile" && i + 1 < argc) {
            pad::warn("--profile is deprecated; use --backend "
                      "baseline|optimized|soa|all");
            selectBackends(opt, argv[++i], argv[0]);
        } else if (arg == "--json" && i + 1 < argc) {
            opt.jsonPath = argv[++i];
        } else if (arg == "--quick") {
            opt.quick = true;
        } else {
            usage(argv[0]);
        }
    }

    std::printf("=== perfbench: engine hot-path benchmarks%s ===\n",
                opt.quick ? " (quick)" : "");

    // Shared read-only workload for the cluster benchmarks, built
    // once outside every timed region.
    const runner::ClusterWorkload cw =
        runner::makeClusterWorkload(3.0);

    std::vector<BenchRow> rows;
    rows.push_back(runScalarRow(opt, "kibam_step", "ns_per_op", false,
                                [&] { return benchKibamStep(opt); }));
    rows.push_back(
        runScalarRow(opt, "event_queue", "ns_per_event", false,
                     [&] { return benchEventQueue(opt); }));
    rows.push_back(
        runEngineRow(opt, "fine_tick", "ns_per_tick", false,
                     [&](engine::BackendKind backend) {
                         return benchFineTick(opt, cw, backend);
                     }));
    rows.push_back(runScalarRow(opt, "alert_eval", "ns_per_op", false,
                                [&] { return benchAlertEval(opt); }));
    rows.push_back(
        runEngineRow(opt, "single_run", "runs_per_sec", true,
                     [&](engine::BackendKind backend) {
                         return benchSingleRun(opt, cw, backend);
                     }));
    rows.push_back(runEngineRow(
        opt, "single_run_profiled", "runs_per_sec", true,
        [&](engine::BackendKind backend) {
            return benchSingleRunProfiled(opt, cw, backend);
        }));
    rows.push_back(runEngineRow(
        opt, "single_run_telemetry", "runs_per_sec", true,
        [&](engine::BackendKind backend) {
            return benchSingleRunTelemetry(opt, cw, backend);
        }));
    rows.push_back(runEngineRow(
        opt, "single_run_alerts", "runs_per_sec", true,
        [&](engine::BackendKind backend) {
            return benchSingleRunAlerts(opt, cw, backend);
        }));
    rows.push_back(runEngineRow(
        opt, "single_run_push", "runs_per_sec", true,
        [&](engine::BackendKind backend) {
            return benchSingleRunPush(opt, cw, backend);
        }));
    rows.push_back(
        runEngineRow(opt, "sweep_jobs1", "runs_per_sec", true,
                     [&](engine::BackendKind backend) {
                         return benchSweep(opt, cw, 1, backend);
                     }));
    rows.push_back(
        runEngineRow(opt, "sweep_jobs2", "runs_per_sec", true,
                     [&](engine::BackendKind backend) {
                         return benchSweep(opt, cw, 2, backend);
                     }));

    if (!opt.jsonPath.empty()) {
        writeJson(opt.jsonPath, opt, rows);
        std::printf("wrote %s\n", opt.jsonPath.c_str());
    }
    return 0;
}
