/**
 * @file
 * Reproducible perf benchmark harness (BENCH_*.json).
 *
 * Times the simulator's hot paths at three granularities — component
 * microbenchmarks (KiBaM step, event queue), the fine-grained attack
 * loop (ns/tick), and whole experiments (single-run and sweep
 * throughput) — under both engine profiles, so every optimization
 * gated on EngineTuning is measured against the exact pre-PR code
 * path in one binary:
 *
 *   perfbench --profile both --json BENCH_PR4.json
 *
 * Results are wall-clock medians over repeated runs (see
 * perf_timing.h). Benchmark only Release builds (see README); the
 * default RelWithDebInfo build is fine for the ctest smoke, which
 * uses --quick to shrink repetitions and only asserts the harness
 * runs.
 *
 * Speedup is reported as baseline/optimized time (equivalently
 * optimized/baseline throughput), so > 1 always means the Optimized
 * profile is faster.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "alert/engine.h"
#include "alert/rule.h"
#include "attack/attacker.h"
#include "battery/kibam.h"
#include "core/datacenter.h"
#include "runner/experiment.h"
#include "runner/sweep_runner.h"
#include "sim/event_queue.h"
#include "util/engine_tuning.h"
#include "util/json_writer.h"
#include "util/logging.h"

#include "perf_timing.h"

using namespace pad;
using namespace pad::bench;

namespace {

struct PerfOptions {
    bool runBaseline = true;
    bool runOptimized = true;
    bool quick = false;
    std::string jsonPath;
};

/** One profile's measurement: raw timing plus the derived value. */
struct ProfileMeasure {
    TimingResult timing;
    /** Value in the benchmark's unit (ns/op or runs/s). */
    double value = 0.0;
};

struct BenchRow {
    std::string name;
    /** "ns_per_op", "ns_per_event", "ns_per_tick", "runs_per_sec". */
    std::string unit;
    /** True when larger values are better (throughput units). */
    bool higherIsBetter = false;
    std::optional<ProfileMeasure> baseline;
    std::optional<ProfileMeasure> optimized;

    /** baseline-time / optimized-time; 0 when a profile is missing. */
    double
    speedup() const
    {
        if (!baseline || !optimized || baseline->value <= 0.0 ||
            optimized->value <= 0.0)
            return 0.0;
        return higherIsBetter ? optimized->value / baseline->value
                              : baseline->value / optimized->value;
    }
};

// ---------------------------------------------------------------------
// Benchmark bodies. Each returns the measurement for the *current*
// engine profile; callers set the profile first. All state that
// latches tuning flags at construction (EventQueue pools, DataCenter
// caches) is built inside the body, after the profile switch.
// ---------------------------------------------------------------------

ProfileMeasure
benchKibamStep(const PerfOptions &opt)
{
    const int ops = opt.quick ? 20000 : 200000;
    const int reps = opt.quick ? 3 : 9;
    battery::Kibam model(
        battery::KibamParams{260640.0, 0.625, 4.5e-4});
    ProfileMeasure m;
    m.timing = timeIt(
        [&] {
            double acc = 0.0;
            for (int i = 0; i < ops; ++i) {
                acc += model.step(500.0, 0.1);
                if (model.depleted())
                    model.resetFull();
            }
            keep(acc);
        },
        /*warmup=*/1, reps);
    m.value = m.timing.medianSec / static_cast<double>(ops) * 1e9;
    return m;
}

ProfileMeasure
benchEventQueue(const PerfOptions &opt)
{
    const int queues = opt.quick ? 10 : 100;
    const int events = 1000;
    const int reps = opt.quick ? 3 : 9;
    ProfileMeasure m;
    m.timing = timeIt(
        [&] {
            int sink = 0;
            for (int q = 0; q < queues; ++q) {
                sim::EventQueue queue;
                for (int i = 0; i < events; ++i)
                    queue.schedule(i * 7 % 997, [&sink] { ++sink; });
                queue.runUntil(1000);
            }
            keep(static_cast<double>(sink));
        },
        /*warmup=*/1, reps);
    m.value = m.timing.medianSec /
              static_cast<double>(queues * events) * 1e9;
    return m;
}

/**
 * Fine-grained attack loop, ns per fine tick. Each repetition warms
 * a fresh data center up to the attack hour untimed, then times only
 * DataCenter::runAttack.
 */
ProfileMeasure
benchFineTick(const PerfOptions &opt, const runner::ClusterWorkload &cw)
{
    const double durationSec = opt.quick ? 30.0 : 120.0;
    const int reps = opt.quick ? 2 : 5;
    const core::DataCenterConfig cfg =
        runner::clusterConfig(core::SchemeKind::Pad);
    const double ticks =
        durationSec / ticksToSeconds(cfg.fineStep);

    std::vector<double> samples;
    for (int i = 0; i < reps; ++i) {
        core::DataCenter dc(cfg, cw.workload.get());
        dc.runCoarseUntil(kTicksPerDay +
                          static_cast<Tick>(11.0 * kTicksPerHour));
        attack::AttackerConfig ac;
        ac.controlledNodes = 4;
        attack::TwoPhaseAttacker attacker(ac);
        core::AttackScenario sc;
        sc.targetPolicy = core::TargetPolicy::MostVulnerable;
        sc.durationSec = durationSec;
        const double t0 = nowSec();
        const core::AttackOutcome out = dc.runAttack(attacker, sc);
        samples.push_back(nowSec() - t0);
        keep(out.survivalSec);
    }
    ProfileMeasure m;
    m.timing = summarize(std::move(samples));
    m.value = m.timing.medianSec / ticks * 1e9;
    return m;
}

/** The standard Fig. 15/16 cluster-attack measurement, end to end. */
runner::Experiment
standardAttack(const runner::ClusterWorkload &cw, bool quick)
{
    runner::ClusterAttackSpec spec;
    if (quick)
        spec.durationSec = 60.0;
    return runner::Experiment::clusterAttack(spec, cw);
}

ProfileMeasure
benchSingleRun(const PerfOptions &opt,
               const runner::ClusterWorkload &cw)
{
    const int reps = opt.quick ? 2 : 9;
    const runner::Experiment e = standardAttack(cw, opt.quick);
    ProfileMeasure m;
    m.timing = timeIt(
        [&] {
            const runner::ExperimentResult r = runner::runExperiment(e);
            keep(static_cast<double>(r.telemetry.detections));
        },
        /*warmup=*/1, reps);
    m.value = 1.0 / m.timing.medianSec;
    return m;
}

/** Shipped default rules, loaded once from the source tree. */
std::shared_ptr<const alert::RuleSet>
defaultRules()
{
    std::string error;
    auto rules = alert::loadRulesFile(
        std::string(PAD_RULES_DIR) + "/pad_default.json", &error);
    if (!rules)
        PAD_FATAL("cannot load default alert rules: {}", error);
    return std::make_shared<const alert::RuleSet>(std::move(*rules));
}

/**
 * Alert-engine dispatch cost, ns per telemetry sample: a synthetic
 * stream cycling through the signal names the default rules watch
 * (plus unmatched ones, the common case) at 100 ms cadence.
 */
ProfileMeasure
benchAlertEval(const PerfOptions &opt)
{
    const int ops = opt.quick ? 20000 : 200000;
    const int reps = opt.quick ? 3 : 9;
    const auto rules = defaultRules();

    // Name table built outside the timed region: per-sample cost is
    // the engine's routing + evaluation, not string formatting.
    std::vector<std::string> names;
    for (int r = 0; r < 22; ++r) {
        names.push_back("rack" + std::to_string(r) + ".soc");
        names.push_back("rack" + std::to_string(r) + ".power");
    }
    names.push_back("pdu.power");
    names.push_back("detector.score");
    names.push_back("policy.level");

    ProfileMeasure m;
    m.timing = timeIt(
        [&] {
            alert::AlertEngine engine(*rules);
            Tick now = 0;
            for (int i = 0; i < ops; ++i) {
                const auto id = static_cast<std::uint32_t>(
                    static_cast<std::size_t>(i) % names.size());
                // The id overload is the hub's steady-state path.
                engine.onSample(id, names[id], now,
                                0.5 + 0.4 * ((i * 37 % 100) / 100.0));
                if (i % 10 == 9)
                    now += 100; // 100 ms sim step
            }
            engine.finalize(now);
            keep(static_cast<double>(engine.incidents().size()));
        },
        /*warmup=*/1, reps);
    m.value = m.timing.medianSec / static_cast<double>(ops) * 1e9;
    return m;
}

/**
 * benchSingleRun with full-resolution telemetry recording on. This
 * is the fair baseline for the alerting overhead claim: enabling
 * alerts necessarily turns the hub on, so the alert-engine cost is
 * single_run_alerts vs single_run_telemetry, not vs the bare run.
 */
ProfileMeasure
benchSingleRunTelemetry(const PerfOptions &opt,
                        const runner::ClusterWorkload &cw)
{
    const int reps = opt.quick ? 2 : 9;
    runner::Experiment e = standardAttack(cw, opt.quick);
    e.telemetryEnabled = true;
    ProfileMeasure m;
    m.timing = timeIt(
        [&] {
            const runner::ExperimentResult r = runner::runExperiment(e);
            keep(static_cast<double>(r.telemetry.detections));
        },
        /*warmup=*/1, reps);
    m.value = 1.0 / m.timing.medianSec;
    return m;
}

/**
 * benchSingleRun with online alerting attached: the delta against
 * single_run_telemetry is the alert-engine overhead (< 3% is the
 * acceptance bar; alerting is off the hot fine-tick path entirely
 * when no rules are loaded).
 */
ProfileMeasure
benchSingleRunAlerts(const PerfOptions &opt,
                     const runner::ClusterWorkload &cw)
{
    const int reps = opt.quick ? 2 : 9;
    runner::Experiment e = standardAttack(cw, opt.quick);
    e.telemetryEnabled = true;
    e.alertRules = defaultRules();
    ProfileMeasure m;
    m.timing = timeIt(
        [&] {
            const runner::ExperimentResult r = runner::runExperiment(e);
            keep(static_cast<double>(r.alerts->incidents().size()));
        },
        /*warmup=*/1, reps);
    m.value = 1.0 / m.timing.medianSec;
    return m;
}

ProfileMeasure
benchSweep(const PerfOptions &opt, const runner::ClusterWorkload &cw,
           int jobs)
{
    const int n = opt.quick ? 2 : 8;
    const int reps = opt.quick ? 1 : 3;
    std::vector<runner::Experiment> grid;
    grid.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        runner::Experiment e = standardAttack(cw, opt.quick);
        e.seed = static_cast<std::uint64_t>(i + 1);
        grid.push_back(e);
    }
    runner::SweepRunner runner(runner::SweepRunner::Options{jobs});
    ProfileMeasure m;
    m.timing = timeIt(
        [&] {
            const auto results = runner.run(grid);
            keep(static_cast<double>(results.size()));
        },
        /*warmup=*/opt.quick ? 0 : 1, reps);
    m.value = static_cast<double>(n) / m.timing.medianSec;
    return m;
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

template <typename Fn>
BenchRow
runRow(const PerfOptions &opt, const std::string &name,
       const std::string &unit, bool higherIsBetter, Fn &&body)
{
    BenchRow row;
    row.name = name;
    row.unit = unit;
    row.higherIsBetter = higherIsBetter;
    if (opt.runBaseline) {
        ScopedEngineProfile scope(EngineProfile::Baseline);
        row.baseline = body();
    }
    if (opt.runOptimized) {
        ScopedEngineProfile scope(EngineProfile::Optimized);
        row.optimized = body();
    }

    auto print = [&](const char *label,
                     const std::optional<ProfileMeasure> &pm) {
        if (!pm)
            return;
        std::printf("  %-9s %12.2f %-12s (median %.6f s, min %.6f s, "
                    "%d reps)\n",
                    label, pm->value, unit.c_str(),
                    pm->timing.medianSec, pm->timing.minSec,
                    pm->timing.reps);
    };
    std::printf("%s\n", name.c_str());
    print("baseline", row.baseline);
    print("optimized", row.optimized);
    if (row.speedup() > 0.0)
        std::printf("  %-9s %12.2fx\n", "speedup", row.speedup());
    std::fflush(stdout);
    return row;
}

void
writeJson(const std::string &path, const PerfOptions &opt,
          const std::vector<BenchRow> &rows)
{
    std::ofstream os(path);
    if (!os)
        PAD_FATAL("cannot open {} for writing", path);
    JsonWriter w(os, 2);
    w.beginObject();
    w.key("schema").value("pad-perfbench-v1");
    w.key("quick").value(opt.quick);
    w.key("benchmarks").beginArray();
    for (const BenchRow &row : rows) {
        w.beginObject();
        w.key("name").value(row.name);
        w.key("unit").value(row.unit);
        w.key("higher_is_better").value(row.higherIsBetter);
        auto profile = [&](const char *key,
                           const std::optional<ProfileMeasure> &pm) {
            if (!pm)
                return;
            w.key(key).beginObject();
            w.key("value").value(pm->value);
            w.key("median_sec").value(pm->timing.medianSec);
            w.key("min_sec").value(pm->timing.minSec);
            w.key("mean_sec").value(pm->timing.meanSec);
            w.key("reps").value(pm->timing.reps);
            w.endObject();
        };
        profile("baseline", row.baseline);
        profile("optimized", row.optimized);
        if (row.speedup() > 0.0)
            w.key("speedup").value(row.speedup());
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
    PAD_ASSERT(w.balanced());
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--profile baseline|optimized|both] [--json FILE] "
        "[--quick]\n",
        argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    PerfOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--profile" && i + 1 < argc) {
            const std::string p = argv[++i];
            if (p == "baseline") {
                opt.runOptimized = false;
            } else if (p == "optimized") {
                opt.runBaseline = false;
            } else if (p != "both") {
                usage(argv[0]);
            }
        } else if (arg == "--json" && i + 1 < argc) {
            opt.jsonPath = argv[++i];
        } else if (arg == "--quick") {
            opt.quick = true;
        } else {
            usage(argv[0]);
        }
    }

    std::printf("=== perfbench: engine hot-path benchmarks%s ===\n",
                opt.quick ? " (quick)" : "");

    // Shared read-only workload for the cluster benchmarks, built
    // once outside every timed region.
    const runner::ClusterWorkload cw =
        runner::makeClusterWorkload(3.0);

    std::vector<BenchRow> rows;
    rows.push_back(runRow(opt, "kibam_step", "ns_per_op", false,
                          [&] { return benchKibamStep(opt); }));
    rows.push_back(runRow(opt, "event_queue", "ns_per_event", false,
                          [&] { return benchEventQueue(opt); }));
    rows.push_back(runRow(opt, "fine_tick", "ns_per_tick", false,
                          [&] { return benchFineTick(opt, cw); }));
    rows.push_back(runRow(opt, "alert_eval", "ns_per_op", false,
                          [&] { return benchAlertEval(opt); }));
    rows.push_back(runRow(opt, "single_run", "runs_per_sec", true,
                          [&] { return benchSingleRun(opt, cw); }));
    rows.push_back(
        runRow(opt, "single_run_telemetry", "runs_per_sec", true,
               [&] { return benchSingleRunTelemetry(opt, cw); }));
    rows.push_back(
        runRow(opt, "single_run_alerts", "runs_per_sec", true,
               [&] { return benchSingleRunAlerts(opt, cw); }));
    rows.push_back(runRow(opt, "sweep_jobs1", "runs_per_sec", true,
                          [&] { return benchSweep(opt, cw, 1); }));
    rows.push_back(runRow(opt, "sweep_jobs2", "runs_per_sec", true,
                          [&] { return benchSweep(opt, cw, 2); }));

    if (!opt.jsonPath.empty()) {
        writeJson(opt.jsonPath, opt, rows);
        std::printf("wrote %s\n", opt.jsonPath.c_str());
    }
    return 0;
}
