/**
 * @file
 * Shared scaffolding for the experiment-reproduction benches, now a
 * thin compatibility layer over the canonical Experiment API in
 * src/runner (runner::Experiment + runner::SweepRunner).
 *
 * Two experiment vehicles mirror the paper's methodology (Fig. 11):
 *
 *  - RackLab specs: the scaled-down hardware platform of Fig. 11-A
 *    (a mini rack with a small battery set), simulated at 100 ms
 *    resolution. Drives Figures 6, 7, 8 and Table I.
 *  - makeClusterWorkload()/clusterConfig(): the trace-driven cluster
 *    simulator of Fig. 11-B (22 racks x 10 DL585 G5 servers fed by a
 *    Google-style trace). Drives Figures 5, 13, 14, 15, 16, 17.
 *
 * New benches should build runner::Experiment grids and submit them
 * through a runner::SweepRunner (see fig15_survival_time.cc); the
 * serial wrappers below remain for single-shot callers.
 */

#ifndef PAD_BENCH_BENCH_COMMON_H
#define PAD_BENCH_BENCH_COMMON_H

#include <memory>
#include <string>
#include <vector>

#include "engine/backend.h"
#include "obs/trace_sink.h"
#include "obs/tracer.h"
#include "runner/experiment.h"
#include "runner/sweep_runner.h"

namespace pad::bench {

// Canonical experiment types, re-exported under their historical
// bench names.
using ClusterWorkload = runner::ClusterWorkload;
using RackLabConfig = runner::RackLabSpec;
using RackLabResult = runner::RackLabResult;
using RackLabServerTrace = runner::RackLabServerTrace;
using ClusterAttackParams = runner::ClusterAttackSpec;

using runner::clusterConfig;
using runner::makeClusterWorkload;

/**
 * Simulate a Phase-II hidden-spike attack against the mini rack for
 * @p windowSec seconds and count effective attacks (serial).
 */
inline RackLabResult
runRackLab(const RackLabConfig &cfg, double windowSec)
{
    return runner::runExperiment(
               runner::Experiment::rackLab(cfg, windowSec))
        .lab();
}

/** Render per-malicious-server traces with round-robin spiking. */
inline RackLabServerTrace
runRackLabServers(const RackLabConfig &cfg, double windowSec)
{
    return runner::runExperiment(
               runner::Experiment::rackLabServers(cfg, windowSec))
        .servers();
}

/**
 * Survival-time measurement: warm the data center up to the attack
 * hour, then run a two-phase attack and return the outcome (serial).
 */
inline core::AttackOutcome
runClusterAttack(const ClusterAttackParams &params,
                 const ClusterWorkload &cw)
{
    return runner::runExperiment(
               runner::Experiment::clusterAttack(params, cw))
        .attack();
}

// ---------------------------------------------------------------------
// Bench CLI plumbing
// ---------------------------------------------------------------------

/** Options every sweep bench accepts. */
struct BenchOptions {
    /** Worker threads for SweepRunner; 0 = all hardware threads. */
    int jobs = 0;
    /** --trace FILE: structured event trace of every sweep job. */
    std::string trace;
    /** --trace-format jsonl|chrome (default jsonl). */
    std::string traceFormat = "jsonl";
    /** --stats-json FILE: merged sweep stats as JSON. */
    std::string statsJson;
    /**
     * --prom FILE: merged sweep stats plus per-job telemetry series
     * in Prometheus text exposition format. Turns telemetry
     * recording on for every job (series appear under job<i>.
     * prefixes); job results stay bit-identical either way.
     */
    std::string prom;
    /** --manifest FILE: machine-readable run manifest. */
    std::string manifest;
    /**
     * --alerts RULES: evaluate the alert rules file online in every
     * sweep job (cluster experiment kinds). Like --prom, purely
     * observational: job results stay bit-identical either way.
     */
    std::string alerts;
    /** --incidents FILE: merged incidents.jsonl (needs --alerts). */
    std::string incidents;
    /** --incident-html FILE: HTML dashboard (needs --alerts). */
    std::string incidentHtml;
    /**
     * --backend baseline|optimized|soa: engine backend stamped onto
     * every cluster experiment in the sweep. The default (Optimized)
     * and Baseline are bit-identical, so figure outputs only move
     * when soa is explicitly requested — and then only within the
     * documented physical tolerances.
     */
    engine::BackendKind backend = engine::BackendKind::Optimized;
    /** Raw command line, for the manifest. */
    std::vector<std::string> argv;

    /** SweepRunner options equivalent (tracing wired separately). */
    runner::SweepRunner::Options
    runnerOptions() const
    {
        return runner::SweepRunner::Options{jobs};
    }
};

/**
 * Parse the common bench flags (`--jobs N` / `-j N`, `--trace FILE`,
 * `--trace-format jsonl|chrome`, `--stats-json FILE`, `--prom FILE`,
 * `--manifest FILE`, `--alerts RULES`, `--incidents FILE`,
 * `--incident-html FILE`, `--backend NAME`, `--log-level L`); exits
 * with usage on anything unrecognized. `--profile NAME` is accepted
 * as a deprecated warn-once alias for `--backend`. Also applies the
 * PAD_LOG_LEVEL environment fallback.
 * Sweep output is independent of --jobs by the SweepRunner
 * determinism contract — the flag only changes wall-clock time, and
 * the observability flags never alter results either.
 */
BenchOptions parseBenchArgs(int argc, char **argv);

/**
 * Run @p grid through a SweepRunner honouring every observability
 * flag in @p opts: binds the --trace sink around each job, writes the
 * merged stats registry to --stats-json, and drops a --manifest
 * naming @p tool and the produced artifacts. Results are bit-identical
 * to `SweepRunner(opts.runnerOptions()).run(grid)` for any flag
 * combination.
 */
runner::SweepReport runSweep(const std::string &tool,
                             const BenchOptions &opts,
                             const std::vector<runner::Experiment> &grid);

/**
 * RAII --trace binding for serial (non-sweep) benches: opens the file
 * named by opts.trace, binds it as the calling thread's trace sink,
 * and completes the file on destruction. A no-op when --trace was not
 * given, so wrapping the whole bench body is always safe.
 */
class TraceSession
{
  public:
    explicit TraceSession(const BenchOptions &opts);
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

  private:
    std::unique_ptr<obs::FileTraceSink> sink_;
    obs::TraceScope scope_;
};

} // namespace pad::bench

#endif // PAD_BENCH_BENCH_COMMON_H
