/**
 * @file
 * Shared scaffolding for the experiment-reproduction benches.
 *
 * Two experiment vehicles mirror the paper's methodology (Fig. 11):
 *
 *  - RackAttackLab: the scaled-down hardware platform of Fig. 11-A
 *    (a mini rack with a small battery set), simulated at 100 ms
 *    resolution. Drives Figures 6, 7, 8 and Table I.
 *  - makeClusterWorkload()/clusterConfig(): the trace-driven cluster
 *    simulator of Fig. 11-B (22 racks x 10 DL585 G5 servers fed by a
 *    Google-style trace). Drives Figures 5, 13, 14, 15, 16, 17.
 */

#ifndef PAD_BENCH_BENCH_COMMON_H
#define PAD_BENCH_BENCH_COMMON_H

#include <memory>
#include <utility>
#include <vector>

#include "attack/attacker.h"
#include "attack/power_virus.h"
#include "battery/battery_unit.h"
#include "core/config.h"
#include "core/datacenter.h"
#include "core/udeb.h"
#include "power/server_power_model.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"
#include "util/types.h"

namespace pad::bench {

// ---------------------------------------------------------------------
// Scaled-down testbed (paper Fig. 11-A)
// ---------------------------------------------------------------------

/** Configuration of the mini-rack attack lab. */
struct RackLabConfig {
    /** Servers in the mini rack (paper: a handful of nodes). */
    int servers = 5;
    /** Idle power of one lab server, watts. */
    Watts idlePower = 60.0;
    /** Peak power of one lab server, watts. */
    Watts peakPower = 200.0;
    /** Rack budget as a fraction of nameplate. */
    double budgetFraction = 0.65;
    /** Overload tolerance above the budget. */
    double overshoot = 0.08;
    /** Mean utilization of the benign servers. */
    double normalUtil = 0.35;
    /** Relative per-second noise on benign utilization. */
    double noiseAmp = 0.18;
    /** Nodes the attacker controls. */
    int maliciousNodes = 1;
    /** Virus family. */
    attack::VirusKind kind = attack::VirusKind::CpuIntensive;
    /** Phase-II spike train. */
    attack::SpikeTrain train{1.0, 1.0, 1.0};
    /** Attach a (drained-by-Phase-I) battery? */
    bool batteryCharged = false;
    /** Battery sized for this many seconds at full rack load. */
    double batterySeconds = 50.0;
    /** Attach a µDEB super-cap spike shaver? */
    bool withUdeb = false;
    /** µDEB capacitance, farads. */
    double udebFarads = 2.0;
    /** Simulation step, seconds. */
    double stepSec = 0.1;
    /** Determinism. */
    std::uint64_t seed = 2024;
};

/** Result of one lab run. */
struct RackLabResult {
    /** Effective attacks (overload-limit crossings). */
    int effectiveAttacks = 0;
    /** Spikes the virus launched in the window. */
    int spikesLaunched = 0;
    /** Second-windows of each launched spike (start, end). */
    std::vector<std::pair<double, double>> spikeWindows;
    /** Rack draw sampled once per second, watts. */
    std::vector<double> drawPerSecond;
    /** Seconds until the battery (if any) first ran out; <0 never. */
    double batteryOutSec = -1.0;
    /** Seconds until the first overload; <0 when none occurred. */
    double firstOverloadSec = -1.0;
    /** Rack budget, watts. */
    Watts budget = 0.0;
    /** Overload limit, watts. */
    Watts limit = 0.0;
};

/**
 * Simulate a Phase-II hidden-spike attack against the mini rack for
 * @p windowSec seconds and count effective attacks.
 */
RackLabResult runRackLab(const RackLabConfig &cfg, double windowSec);

/**
 * Per-server draw trace of the attacking node, one sample per
 * @p stepSec, for detection-rate studies (Table I): when the
 * attacker round-robins spikes over several nodes, each node's
 * individual trace carries 1/N of the spikes.
 */
struct RackLabServerTrace {
    /** Power samples of each malicious server, [server][step]. */
    std::vector<std::vector<Watts>> power;
    /** Spike windows attributed to each server, seconds. */
    std::vector<std::vector<std::pair<double, double>>> spikes;
    /** Step length, seconds. */
    double stepSec = 0.1;
    /** Baseline (no-attack) power of one server, watts. */
    Watts baseline = 0.0;
};

/** Render per-malicious-server traces with round-robin spiking. */
RackLabServerTrace runRackLabServers(const RackLabConfig &cfg,
                                     double windowSec);

// ---------------------------------------------------------------------
// Trace-driven cluster (paper Fig. 11-B)
// ---------------------------------------------------------------------

/** Bundled workload (generator output + grid). */
struct ClusterWorkload {
    std::vector<trace::TaskEvent> events;
    std::unique_ptr<trace::Workload> workload;
    trace::SyntheticTraceConfig traceConfig;
};

/**
 * Build the evaluation workload: 220 machines, @p days days,
 * optionally with periodic cluster-wide surges (Fig. 14).
 */
ClusterWorkload makeClusterWorkload(double days,
                                    double surgePeriodHours = 0.0,
                                    std::uint64_t seed = 42);

/** The paper's cluster configuration for a given scheme. */
core::DataCenterConfig clusterConfig(core::SchemeKind scheme);

/** Parameters of one cluster attack measurement. */
struct ClusterAttackParams {
    /** Management scheme under test. */
    core::SchemeKind scheme = core::SchemeKind::Pad;
    /** Virus family. */
    attack::VirusKind kind = attack::VirusKind::CpuIntensive;
    /** Phase-II spike train. */
    attack::SpikeTrain train;
    /** Controlled nodes in each victim rack. */
    int nodes = 4;
    /**
     * Number of racks the attacker holds nodes in ("divide and
     * conquer"): victims are spread across the load distribution
     * below the primary victim's percentile.
     */
    int victimRacks = 12;
    /**
     * Victim rack's load percentile; the same percentile picks the
     * same rack for every scheme, keeping runs comparable.
     */
    double victimPct = 90.0;
    /** Attack window length, seconds. */
    double durationSec = 1500.0;
    /** Attack duty cycle (Fig. 16-A's "attack rate"). */
    double dutyCycle = 1.0;
    /**
     * Per-rack soft-limit fraction of nameplate for the attacked
     * cluster.
     */
    double budgetFraction = 0.75;
    /**
     * Cluster (PDU) budget fraction. The paper's threat model
     * targets heavily power-constrained facilities, so attack
     * studies run the PDU tighter than the rack soft limits.
     */
    double clusterBudgetFraction = 0.70;
    /** Hour of day (on day 2) the attack begins. */
    double attackHour = 11.0;
};

/**
 * Survival-time measurement: warm the data center up to the attack
 * hour, then run a two-phase attack and return the outcome.
 */
core::AttackOutcome runClusterAttack(const ClusterAttackParams &params,
                                     const ClusterWorkload &cw);

} // namespace pad::bench

#endif // PAD_BENCH_BENCH_COMMON_H
