/**
 * @file
 * Shared scaffolding for the experiment-reproduction benches, now a
 * thin compatibility layer over the canonical Experiment API in
 * src/runner (runner::Experiment + runner::SweepRunner).
 *
 * Two experiment vehicles mirror the paper's methodology (Fig. 11):
 *
 *  - RackLab specs: the scaled-down hardware platform of Fig. 11-A
 *    (a mini rack with a small battery set), simulated at 100 ms
 *    resolution. Drives Figures 6, 7, 8 and Table I.
 *  - makeClusterWorkload()/clusterConfig(): the trace-driven cluster
 *    simulator of Fig. 11-B (22 racks x 10 DL585 G5 servers fed by a
 *    Google-style trace). Drives Figures 5, 13, 14, 15, 16, 17.
 *
 * New benches should build runner::Experiment grids and submit them
 * through a runner::SweepRunner (see fig15_survival_time.cc); the
 * serial wrappers below remain for single-shot callers.
 */

#ifndef PAD_BENCH_BENCH_COMMON_H
#define PAD_BENCH_BENCH_COMMON_H

#include "runner/experiment.h"
#include "runner/sweep_runner.h"

namespace pad::bench {

// Canonical experiment types, re-exported under their historical
// bench names.
using ClusterWorkload = runner::ClusterWorkload;
using RackLabConfig = runner::RackLabSpec;
using RackLabResult = runner::RackLabResult;
using RackLabServerTrace = runner::RackLabServerTrace;
using ClusterAttackParams = runner::ClusterAttackSpec;

using runner::clusterConfig;
using runner::makeClusterWorkload;

/**
 * Simulate a Phase-II hidden-spike attack against the mini rack for
 * @p windowSec seconds and count effective attacks (serial).
 */
inline RackLabResult
runRackLab(const RackLabConfig &cfg, double windowSec)
{
    return runner::runExperiment(
               runner::Experiment::rackLab(cfg, windowSec))
        .lab();
}

/** Render per-malicious-server traces with round-robin spiking. */
inline RackLabServerTrace
runRackLabServers(const RackLabConfig &cfg, double windowSec)
{
    return runner::runExperiment(
               runner::Experiment::rackLabServers(cfg, windowSec))
        .servers();
}

/**
 * Survival-time measurement: warm the data center up to the attack
 * hour, then run a two-phase attack and return the outcome (serial).
 */
inline core::AttackOutcome
runClusterAttack(const ClusterAttackParams &params,
                 const ClusterWorkload &cw)
{
    return runner::runExperiment(
               runner::Experiment::clusterAttack(params, cw))
        .attack();
}

// ---------------------------------------------------------------------
// Bench CLI plumbing
// ---------------------------------------------------------------------

/** Options every sweep bench accepts. */
struct BenchOptions {
    /** Worker threads for SweepRunner; 0 = all hardware threads. */
    int jobs = 0;

    /** SweepRunner options equivalent. */
    runner::SweepRunner::Options
    runnerOptions() const
    {
        return runner::SweepRunner::Options{jobs};
    }
};

/**
 * Parse the common bench flags (`--jobs N` / `-j N`); exits with
 * usage on anything unrecognized. Sweep output is independent of
 * --jobs by the SweepRunner determinism contract — the flag only
 * changes wall-clock time.
 */
BenchOptions parseBenchArgs(int argc, char **argv);

} // namespace pad::bench

#endif // PAD_BENCH_BENCH_COMMON_H
