/**
 * @file
 * Reproduces paper Fig. 14: "Shedding less than 3% load could avoid
 * aggressive battery usage" — a workload with periodic data
 * center-wide surges creates massive vulnerable-rack strips under a
 * conventional design; PAD's Level-3 load shedding closes the power
 * shortfall by sleeping a small fraction of servers and flattens the
 * battery usage map.
 */

#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace pad;

namespace {

struct SurgeResult {
    int vulnerableRackSteps = 0;
    double minSoc = 1.0;
    double maxShedRatio = 0.0;
    double meanShedRatio = 0.0;
    std::vector<double> shedSeries;
};

SurgeResult
runScheme(core::SchemeKind scheme, const bench::ClusterWorkload &cw,
          double days)
{
    core::DataCenterConfig cfg = bench::clusterConfig(scheme);
    core::DataCenter dc(cfg, cw.workload.get());
    dc.setRecordHistory(true);
    dc.runCoarseUntil(static_cast<Tick>(days * kTicksPerDay));

    SurgeResult out;
    for (const auto &row : dc.socHistory()) {
        for (double s : row) {
            out.minSoc = std::min(out.minSoc, s);
            out.vulnerableRackSteps += s < 0.30;
        }
    }
    out.shedSeries = dc.shedHistory();
    double acc = 0.0;
    for (double s : out.shedSeries) {
        out.maxShedRatio = std::max(out.maxShedRatio, s);
        acc += s;
    }
    out.meanShedRatio =
        out.shedSeries.empty() ? 0.0 : acc / out.shedSeries.size();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    const bench::TraceSession trace(opts);
    std::cout << "=== Fig. 14: periodic cluster-wide surges and "
                 "Level-3 load shedding ===\n\n";
    const double days = 2.0;
    // Surge every 8 hours, strong enough to exceed the PDU budget.
    const auto cw = bench::makeClusterWorkload(days, 8.0);

    const auto before = runScheme(core::SchemeKind::PS, cw, days);
    const auto after = runScheme(core::SchemeKind::Pad, cw, days);

    TextTable table("battery vulnerability before/after shedding");
    table.setHeader({"scheme", "vulnerable rack-steps", "min SOC",
                     "max shed ratio", "mean shed ratio"});
    table.addRow("before (conventional)",
                 {static_cast<double>(before.vulnerableRackSteps),
                  before.minSoc, before.maxShedRatio,
                  before.meanShedRatio});
    table.addRow("after (PAD shedding)",
                 {static_cast<double>(after.vulnerableRackSteps),
                  after.minSoc, after.maxShedRatio,
                  after.meanShedRatio});
    table.print(std::cout);

    std::cout << "\nshedding episodes (coarse steps with servers "
                 "asleep):\n";
    TextTable series("");
    series.setHeader({"timestamp(x5min)", "shed ratio (%)"});
    int shown = 0;
    for (std::size_t i = 0; i < after.shedSeries.size(); ++i) {
        if (after.shedSeries[i] <= 0.0)
            continue;
        series.addRow(std::to_string(i),
                      {after.shedSeries[i] * 100.0});
        if (++shown >= 24)
            break;
    }
    if (shown == 0)
        series.addRow({"(none)", "-"});
    series.print(std::cout);

    std::cout << "\n(paper: a shedding ratio of about 3% of servers "
                 "achieves a balanced battery usage map, avoiding "
                 "the vulnerable blue strips)\n";
    return 0;
}
