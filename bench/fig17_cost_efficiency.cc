/**
 * @file
 * Reproduces paper Fig. 17: "Cost efficiency analysis" — sweeping
 * the µDEB super-capacitor capacity and reporting (left axis) its
 * capital cost as a percentage of the vDEB battery investment and
 * (right axis) the normalized survival time of a rack defending
 * hidden spikes with that µDEB.
 *
 * Paper headline: growing the µDEB from ~1% to ~15% of the vDEB
 * cost extends emergency handling capability by nearly 40x.
 */

#include <iostream>

#include "bench_common.h"
#include "core/cost_model.h"
#include "util/table.h"

using namespace pad;

namespace {

/** Time a spike-shaving µDEB keeps a drained rack alive. */
double
udebSurvival(double farads)
{
    bench::RackLabConfig cfg;
    cfg.servers = 5;
    cfg.budgetFraction = 0.65;
    cfg.overshoot = 0.08;
    cfg.normalUtil = 0.42;
    cfg.maliciousNodes = 2;
    cfg.kind = attack::VirusKind::CpuIntensive;
    cfg.train = attack::SpikeTrain{2.0, 6.0, 1.0, 0.55};
    cfg.withUdeb = true;
    cfg.udebFarads = farads;
    const auto out = bench::runRackLab(cfg, 3600.0);
    return out.firstOverloadSec < 0.0 ? 3600.0 : out.firstOverloadSec;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    const bench::TraceSession trace(opts);
    std::cout << "=== Fig. 17: cost efficiency of the uDEB ===\n\n";

    core::CostModel cost;
    battery::BatteryUnitConfig deb;
    deb.capacityWh = 72.4; // the per-rack vDEB cabinet

    const double capacities[] = {2,  3,  4,  5,    6,  7.5, 10, 12.5,
                                 15, 17.5, 20, 25, 30, 35,  40, 45,
                                 50, 55, 60, 80};

    double baseSurvival = -1.0;
    TextTable table("uDEB capacity sweep");
    table.setHeader({"capacitance (F)", "usable Wh", "cost ratio "
                     "(uDEB/vDEB)", "survival (s)",
                     "normalized survival"});
    for (double f : capacities) {
        core::MicroDebConfig udeb;
        udeb.cap.capacitanceF = f;
        const double ratio = cost.costRatio(udeb, deb);
        const double surv = udebSurvival(f);
        if (baseSurvival < 0.0)
            baseSurvival = surv;
        battery::SuperCapacitor probe("probe", udeb.cap);
        table.addRow(
            {formatFixed(f, 1),
             formatFixed(joulesToWattHours(probe.usableCapacity()), 2),
             formatPercent(ratio, 1), formatFixed(surv, 0),
             formatFixed(surv / baseSurvival, 1) + "x"});
    }
    table.print(std::cout);

    std::cout << "\n(paper: cost grows roughly linearly with "
                 "capacity; a small increase in uDEB capacity has a "
                 "large impact on survival — 1% to 15% of vDEB cost "
                 "buys ~40x emergency handling capability)\n";
    return 0;
}
