/**
 * @file
 * Ablation: detection-triggered cluster-wide power capping
 * (paper §III-B).
 *
 * "Although the data center can apply cluster-wide power capping to
 * eliminate any hidden power spikes, such security measures may well
 * be overkill and could significantly affect other legitimate
 * service requests." This bench quantifies both halves of that
 * sentence on a PS cluster under a dense CPU-virus attack:
 *
 *  - fine-grained metering (5-10 s) detects spikes and the capping
 *    response buys survival time — at a visible throughput cost;
 *  - coarse metering (Table I's blind regimes) flags nothing, so
 *    the "response" neither costs nor protects anything.
 */

#include <iostream>

#include "attack/attacker.h"
#include "attack/virus_trace.h"
#include "bench_common.h"
#include "util/table.h"

using namespace pad;

namespace {

struct Result {
    double survival;
    double throughput;
    std::uint64_t detections;
};

Result
run(bool response, Tick interval, const bench::ClusterWorkload &cw)
{
    core::DataCenterConfig cfg =
        bench::clusterConfig(core::SchemeKind::PS);
    cfg.clusterBudgetFraction = 0.70;
    cfg.detectorResponse = response;
    cfg.detectorInterval = interval;
    core::DataCenter dc(cfg, cw.workload.get());
    dc.runCoarseUntil(kTicksPerDay + 11 * kTicksPerHour);

    attack::AttackerConfig ac;
    ac.controlledNodes = 4;
    ac.prepareSec = 60.0;
    ac.maxDrainSec = 400.0;
    ac.train = attack::spikeTrainFor(attack::AttackStyle::Dense,
                                     ac.kind);
    attack::TwoPhaseAttacker attacker(ac);

    core::AttackScenario sc;
    sc.targetPolicy = core::TargetPolicy::Fixed;
    sc.targetRack = core::rackByLoadPercentile(
        *cw.workload, cfg, dc.now(), dc.now() + kTicksPerHour, 90.0);
    sc.durationSec = 1500.0;
    const auto out = dc.runAttack(attacker, sc);
    return Result{out.survivalSec, out.throughput,
                  dc.detectionsFlagged()};
}

} // namespace

int
main()
{
    std::cout << "=== ablation: detection-triggered cluster-wide "
                 "capping (PS + detector) ===\n\n";
    const auto cw = bench::makeClusterWorkload(3.0);

    TextTable table("dense CPU attack, single hot victim rack");
    table.setHeader({"metering", "detections", "survival (s)",
                     "throughput"});
    {
        const auto off = run(false, 10 * kTicksPerSecond, cw);
        table.addRow({"(response off)", "-",
                      formatFixed(off.survival, 0),
                      formatFixed(off.throughput, 3)});
    }
    const std::pair<std::string, Tick> intervals[] = {
        {"5s", 5 * kTicksPerSecond},
        {"10s", 10 * kTicksPerSecond},
        {"60s", 60 * kTicksPerSecond},
        {"5m", 5 * kTicksPerMinute},
    };
    for (const auto &[name, ticks] : intervals) {
        const auto r = run(true, ticks, cw);
        table.addRow({name, std::to_string(r.detections),
                      formatFixed(r.survival, 0),
                      formatFixed(r.throughput, 3)});
    }
    table.print(std::cout);

    std::cout << "\n(fine metering + blanket capping buys survival "
                 "at a throughput cost — the paper's 'overkill'; "
                 "coarse metering sees nothing, so the response "
                 "protects nothing)\n";
    return 0;
}
