/**
 * @file
 * Ablation: detection-triggered cluster-wide power capping
 * (paper §III-B).
 *
 * "Although the data center can apply cluster-wide power capping to
 * eliminate any hidden power spikes, such security measures may well
 * be overkill and could significantly affect other legitimate
 * service requests." This bench quantifies both halves of that
 * sentence on a PS cluster under a dense CPU-virus attack:
 *
 *  - fine-grained metering (5-10 s) detects spikes and the capping
 *    response buys survival time — at a visible throughput cost;
 *  - coarse metering (Table I's blind regimes) flags nothing, so
 *    the "response" neither costs nor protects anything.
 *
 * The five (response, interval) runs execute as one SweepRunner
 * batch (`--jobs N`).
 */

#include <iostream>
#include <vector>

#include "attack/attacker.h"
#include "attack/virus_trace.h"
#include "bench_common.h"
#include "util/table.h"

using namespace pad;

namespace {

runner::Experiment
experiment(bool response, Tick interval,
           const bench::ClusterWorkload &cw)
{
    core::DataCenterConfig cfg =
        bench::clusterConfig(core::SchemeKind::PS);
    cfg.clusterBudgetFraction = 0.70;
    cfg.detectorResponse = response;
    cfg.detectorInterval = interval;

    runner::ClusterAttackSpec p;
    p.config = cfg;
    p.nodes = 4;
    p.train = attack::spikeTrainFor(attack::AttackStyle::Dense,
                                    p.kind);
    p.maxDrainSec = 400.0;
    p.victimRacks = 1;
    p.victimPct = 90.0;
    p.rankWindowSec = 3600.0;
    p.durationSec = 1500.0;
    return runner::Experiment::clusterAttack(p, cw);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    std::cout << "=== ablation: detection-triggered cluster-wide "
                 "capping (PS + detector) ===\n\n";
    const auto cw = bench::makeClusterWorkload(3.0);

    const std::pair<std::string, Tick> intervals[] = {
        {"5s", 5 * kTicksPerSecond},
        {"10s", 10 * kTicksPerSecond},
        {"60s", 60 * kTicksPerSecond},
        {"5m", 5 * kTicksPerMinute},
    };

    std::vector<runner::Experiment> grid;
    grid.push_back(experiment(false, 10 * kTicksPerSecond, cw));
    for (const auto &[name, ticks] : intervals)
        grid.push_back(experiment(true, ticks, cw));

    const auto report =
        bench::runSweep("ablation_detection", opts, grid);
    const auto &results = report.results;

    TextTable table("dense CPU attack, single hot victim rack");
    table.setHeader({"metering", "detections", "survival (s)",
                     "throughput"});
    table.addRow({"(response off)", "-",
                  formatFixed(results[0].attack().survivalSec, 0),
                  formatFixed(results[0].attack().throughput, 3)});
    for (std::size_t i = 0; i < std::size(intervals); ++i) {
        const auto &r = results[i + 1];
        table.addRow({intervals[i].first,
                      std::to_string(r.cluster().detections),
                      formatFixed(r.attack().survivalSec, 0),
                      formatFixed(r.attack().throughput, 3)});
    }
    table.print(std::cout);

    std::cout << "\n(fine metering + blanket capping buys survival "
                 "at a throughput cost — the paper's 'overkill'; "
                 "coarse metering sees nothing, so the response "
                 "protects nothing)\n";
    return 0;
}
