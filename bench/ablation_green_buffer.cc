/**
 * @file
 * Ablation: green-datacenter energy buffering as an attack enabler
 * (paper §I).
 *
 * "DEBs have been frequently used as energy buffer in recent green
 * data center designs to handle the power variability ... In both
 * cases, batteries often experience unusual cyclic usage but do not
 * receive timely recharge. Without enough backup energy, racks are
 * left unguarded from malicious loads."
 *
 * The bench emulates renewable-buffer duty by starting the attack at
 * progressively lower fleet SOC (the state a green data center's
 * batteries sit at after smoothing a cloudy morning) and measures
 * how much cheaper the attack becomes. The (SOC x scheme) grid runs
 * as one SweepRunner batch (`--jobs N`).
 */

#include <iostream>
#include <vector>

#include "attack/attacker.h"
#include "attack/virus_trace.h"
#include "bench_common.h"
#include "util/table.h"

using namespace pad;

namespace {

const double kSocs[] = {1.0, 0.8, 0.6, 0.4, 0.25};
const core::SchemeKind kSchemes[] = {core::SchemeKind::PS,
                                     core::SchemeKind::VdebOnly,
                                     core::SchemeKind::Pad};

runner::Experiment
experiment(double initialSoc, core::SchemeKind scheme,
           const bench::ClusterWorkload &cw)
{
    core::DataCenterConfig cfg = bench::clusterConfig(scheme);
    cfg.clusterBudgetFraction = 0.70;

    runner::ClusterAttackSpec p;
    p.config = cfg;
    p.nodes = 4;
    p.train = attack::spikeTrainFor(attack::AttackStyle::Dense,
                                    p.kind);
    // Renewable-buffer duty left the fleet partially discharged.
    p.initialSoc = initialSoc;
    p.victimRacks = 1;
    p.victimPct = 90.0;
    p.rankWindowSec = 3600.0;
    p.durationSec = 1500.0;
    return runner::Experiment::clusterAttack(p, cw);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    std::cout << "=== ablation: battery duty from green-energy "
                 "buffering vs attack cost ===\n\n";
    const auto cw = bench::makeClusterWorkload(3.0);

    std::vector<runner::Experiment> grid;
    for (double soc : kSocs)
        for (core::SchemeKind scheme : kSchemes)
            grid.push_back(experiment(soc, scheme, cw));

    const auto report =
        bench::runSweep("ablation_green_buffer", opts, grid);
    const auto &results = report.results;

    TextTable table("survival (s) vs fleet SOC at attack time");
    table.setHeader({"initial SOC", "PS", "vDEB", "PAD"});
    std::size_t job = 0;
    for (double soc : kSocs) {
        std::vector<double> row;
        for (std::size_t i = 0; i < std::size(kSchemes); ++i)
            row.push_back(results[job++].attack().survivalSec);
        table.addRow(formatPercent(soc, 0), row, 0);
    }
    table.print(std::cout);

    std::cout << "\n(cyclic green-buffer usage hands the attacker a "
                 "pre-drained fleet: Phase I shortens with SOC; PAD "
                 "degrades most gracefully because shedding does not "
                 "depend on stored energy)\n";
    return 0;
}
