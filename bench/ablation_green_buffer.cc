/**
 * @file
 * Ablation: green-datacenter energy buffering as an attack enabler
 * (paper §I).
 *
 * "DEBs have been frequently used as energy buffer in recent green
 * data center designs to handle the power variability ... In both
 * cases, batteries often experience unusual cyclic usage but do not
 * receive timely recharge. Without enough backup energy, racks are
 * left unguarded from malicious loads."
 *
 * The bench emulates renewable-buffer duty by starting the attack at
 * progressively lower fleet SOC (the state a green data center's
 * batteries sit at after smoothing a cloudy morning) and measures
 * how much cheaper the attack becomes.
 */

#include <iostream>

#include "attack/attacker.h"
#include "attack/virus_trace.h"
#include "bench_common.h"
#include "util/table.h"

using namespace pad;

namespace {

double
survivalAtSoc(double initialSoc, core::SchemeKind scheme,
              const bench::ClusterWorkload &cw)
{
    core::DataCenterConfig cfg = bench::clusterConfig(scheme);
    cfg.clusterBudgetFraction = 0.70;
    core::DataCenter dc(cfg, cw.workload.get());
    dc.runCoarseUntil(kTicksPerDay + 11 * kTicksPerHour);
    // Renewable-buffer duty left the fleet partially discharged.
    dc.setAllSoc(initialSoc);

    attack::AttackerConfig ac;
    ac.controlledNodes = 4;
    ac.prepareSec = 60.0;
    ac.maxDrainSec = 600.0;
    ac.train = attack::spikeTrainFor(attack::AttackStyle::Dense,
                                     ac.kind);
    attack::TwoPhaseAttacker attacker(ac);

    core::AttackScenario sc;
    sc.targetPolicy = core::TargetPolicy::Fixed;
    sc.targetRack = core::rackByLoadPercentile(
        *cw.workload, cfg, dc.now(), dc.now() + kTicksPerHour, 90.0);
    sc.durationSec = 1500.0;
    return dc.runAttack(attacker, sc).survivalSec;
}

} // namespace

int
main()
{
    std::cout << "=== ablation: battery duty from green-energy "
                 "buffering vs attack cost ===\n\n";
    const auto cw = bench::makeClusterWorkload(3.0);

    TextTable table("survival (s) vs fleet SOC at attack time");
    table.setHeader({"initial SOC", "PS", "vDEB", "PAD"});
    for (double soc : {1.0, 0.8, 0.6, 0.4, 0.25}) {
        table.addRow(
            formatPercent(soc, 0),
            {survivalAtSoc(soc, core::SchemeKind::PS, cw),
             survivalAtSoc(soc, core::SchemeKind::VdebOnly, cw),
             survivalAtSoc(soc, core::SchemeKind::Pad, cw)},
            0);
    }
    table.print(std::cout);

    std::cout << "\n(cyclic green-buffer usage hands the attacker a "
                 "pre-drained fleet: Phase I shortens with SOC; PAD "
                 "degrades most gracefully because shedding does not "
                 "depend on stored energy)\n";
    return 0;
}
