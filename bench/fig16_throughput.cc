/**
 * @file
 * Reproduces paper Fig. 16: "The overall data center throughput
 * during the attack period" —
 *
 *  (A) normalized throughput vs attack rate (the fraction of the
 *      cluster's racks hosting malicious nodes: 16-50%);
 *  (B) normalized throughput vs attack peak width (0.2-0.6 s).
 *
 * Paper observations: throughput can drop ~10% at a 50% attack rate
 * under existing schemes; width hurts more than rate; PAD stays
 * within ~5% for a 0.6 s spike while PSPC and Conv lose 12% / 17%.
 *
 * Both panels are submitted as one SweepRunner batch; `--jobs N`
 * sets the pool size without changing the printed figure.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace pad;

namespace {

constexpr double kWindowSec = 1500.0;

const core::SchemeKind kSchemes[] = {
    core::SchemeKind::PS, core::SchemeKind::PSPC,
    core::SchemeKind::Conv, core::SchemeKind::Pad};

const double kRates[] = {0.16, 0.20, 0.25, 0.33, 0.50};
const double kWidths[] = {0.2, 0.3, 0.4, 0.5, 0.6};

runner::Experiment
experiment(core::SchemeKind scheme, const bench::ClusterWorkload &cw,
           const attack::SpikeTrain &train, double attackRate)
{
    runner::ClusterAttackSpec p;
    p.scheme = scheme;
    p.train = train;
    p.durationSec = kWindowSec;
    // "Attack rate" = fraction of the cluster's racks hosting
    // malicious nodes (16% ~ 1/6 ... 50% ~ 1/2 of the racks).
    p.victimRacks =
        std::max(1, static_cast<int>(attackRate * 22.0 + 0.5));
    return runner::Experiment::clusterAttack(p, cw);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    std::cout << "=== Fig. 16: data center throughput during the "
                 "attack period ===\n\n";
    const auto cw = bench::makeClusterWorkload(3.0);

    // Panel A rows first, then panel B rows, row-major.
    std::vector<runner::Experiment> grid;
    for (core::SchemeKind scheme : kSchemes)
        for (double rate : kRates)
            grid.push_back(experiment(
                scheme, cw, attack::SpikeTrain{1.0, 4.0, 1.0, 0.55},
                rate));
    for (core::SchemeKind scheme : kSchemes)
        for (double w : kWidths)
            grid.push_back(experiment(
                scheme, cw, attack::SpikeTrain{w, 6.0, 1.0, 0.55},
                0.25));

    const auto report = bench::runSweep("fig16", opts, grid);
    const auto &results = report.results;
    std::size_t job = 0;

    {
        TextTable table("(A) normalized throughput vs attack rate");
        table.setHeader({"scheme", "16%", "20%", "25%", "33%", "50%"});
        for (core::SchemeKind scheme : kSchemes) {
            std::vector<double> row;
            for (std::size_t i = 0; i < std::size(kRates); ++i)
                row.push_back(results[job++].attack().throughput);
            table.addRow(core::schemeName(scheme), row, 3);
        }
        table.print(std::cout);
        std::cout << "(paper: more aggressive attack rates degrade "
                     "existing schemes up to ~10%; PAD avoids "
                     "unnecessary capping)\n\n";
    }

    {
        TextTable table("(B) normalized throughput vs attack width");
        table.setHeader(
            {"scheme", "0.2s", "0.3s", "0.4s", "0.5s", "0.6s"});
        for (core::SchemeKind scheme : kSchemes) {
            std::vector<double> row;
            for (std::size_t i = 0; i < std::size(kWidths); ++i)
                row.push_back(results[job++].attack().throughput);
            table.addRow(core::schemeName(scheme), row, 3);
        }
        table.print(std::cout);
        std::cout << "(paper: peak width has the larger impact; PAD "
                     "keeps the loss under ~5% at 0.6 s where PSPC "
                     "and Conv lose 12% and 17%)\n";
    }
    return 0;
}
