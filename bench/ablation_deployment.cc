/**
 * @file
 * Ablation: the four battery deployment options of paper Fig. 3.
 *
 * Quantifies the background claims that motivate distributed energy
 * backup (paper §I-II): double-conversion losses of centralized UPS
 * vs DC-coupled distributed batteries (Microsoft: up to 15% PUE
 * improvement; Hitachi: >8% efficiency), the single point of failure
 * a central UPS concentrates, and which options can shave peaks for
 * a fraction of servers at a time.
 */

#include <iostream>

#include "bench_common.h"

#include "power/deployment.h"
#include "util/table.h"

using namespace pad;

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    const bench::TraceSession trace(opts);
    std::cout << "=== ablation: battery deployment options "
                 "(paper Fig. 3) ===\n\n";

    const Watts itLoad = 80.0e3; // the evaluated cluster's draw

    TextTable table("deployment comparison at 80 kW IT load");
    table.setHeader({"option", "unit size", "path eff.",
                     "conv. loss (MWh/yr)", "fractional shaving",
                     "P(backup down for >25% of cluster)"});
    for (power::DeploymentOption opt : power::kAllDeployments) {
        const auto spec = power::deploymentSpec(opt);
        table.addRow(
            {spec.name,
             spec.typicalUnitSize >= 1e6
                 ? formatFixed(spec.typicalUnitSize / 1e6, 1) + " MW"
                 : (spec.typicalUnitSize >= 1e3
                        ? formatFixed(spec.typicalUnitSize / 1e3, 0) +
                              " kW"
                        : formatFixed(spec.typicalUnitSize, 0) + " W"),
             formatPercent(spec.pathEfficiency, 1),
             formatFixed(
                 power::annualConversionLoss(opt, itLoad) / 1.0e6, 1),
             spec.fractionalShaving ? "yes" : "no",
             formatPercent(power::probMassOutage(opt, 0.25), 4)});
    }
    table.print(std::cout);

    const double centralLoss = power::annualConversionLoss(
        power::DeploymentOption::CentralizedUps, itLoad);
    const double rackLoss = power::annualConversionLoss(
        power::DeploymentOption::TopOfRackBbu, itLoad);
    std::cout << "\ntop-of-rack BBU saves "
              << formatFixed((centralLoss - rackLoss) / 1.0e6, 1)
              << " MWh/yr over a centralized UPS ("
              << formatPercent(1.0 - rackLoss / centralLoss, 0)
              << " of its conversion loss) and removes the UPS "
                 "single point of failure\n"
              << "(paper §II-A: only distributed DC-coupled options "
                 "can switch a fraction of racks to battery for peak "
                 "shaving)\n";
    return 0;
}
