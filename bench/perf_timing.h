/**
 * @file
 * Wall-clock timing utilities for the perf benches.
 *
 * Every measurement follows the same discipline: run the body a few
 * times untimed to warm caches, branch predictors and lazy
 * allocations, then time a fixed number of repetitions and report the
 * median (robust against scheduler noise) alongside the minimum (the
 * least-disturbed run) and the mean. google-benchmark is deliberately
 * not used here so the perf harness builds identically on machines
 * that lack it and so BENCH_*.json stays under our own schema.
 */

#ifndef PAD_BENCH_PERF_TIMING_H
#define PAD_BENCH_PERF_TIMING_H

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

namespace pad::bench {

/** Monotonic wall-clock timestamp, seconds. */
inline double
nowSec()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/**
 * Compiler sink: forces @p v to be materialized so a timed loop
 * cannot be dead-code-eliminated.
 */
inline void
keep(double v)
{
    volatile double sink = v;
    (void)sink;
}

/** Summary statistics over repeated timed runs, seconds per run. */
struct TimingResult {
    double medianSec = 0.0;
    double minSec = 0.0;
    double meanSec = 0.0;
    int reps = 0;
};

/** Reduce raw per-repetition wall times into a TimingResult. */
inline TimingResult
summarize(std::vector<double> samples)
{
    TimingResult out;
    out.reps = static_cast<int>(samples.size());
    if (samples.empty())
        return out;
    std::sort(samples.begin(), samples.end());
    out.minSec = samples.front();
    const std::size_t n = samples.size();
    out.medianSec = n % 2 == 1
                        ? samples[n / 2]
                        : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
    double sum = 0.0;
    for (double s : samples)
        sum += s;
    out.meanSec = sum / static_cast<double>(n);
    return out;
}

/**
 * Time @p fn: @p warmup untimed calls, then @p reps timed calls.
 * Use this for bodies that can run back-to-back without per-run
 * setup; when each repetition needs fresh state, time the runs by
 * hand with nowSec() and feed the samples to summarize().
 */
template <typename Fn>
TimingResult
timeIt(Fn &&fn, int warmup, int reps)
{
    for (int i = 0; i < warmup; ++i)
        fn();
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        const double t0 = nowSec();
        fn();
        samples.push_back(nowSec() - t0);
    }
    return summarize(std::move(samples));
}

} // namespace pad::bench

#endif // PAD_BENCH_PERF_TIMING_H
