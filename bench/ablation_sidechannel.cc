/**
 * @file
 * Ablation: the performance side channel vDEB is designed to break.
 *
 * Paper §IV-B.1: vDEB "can often frustrate an attacker's efforts to
 * gain critical information such as how long the victim rack's
 * battery can sustain ... adding considerable noise to an attacker's
 * observations in a side-channel attack."
 *
 * The bench runs a multi-round learning attacker (drain, observe
 * DVFS throttling, recover, repeat) against a capping data center
 * with and without vDEB capacity sharing and reports the autonomy
 * estimates the attacker walks away with.
 */

#include <cmath>
#include <iostream>

#include "attack/attacker.h"
#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pad;

namespace {

struct LearnResult {
    std::vector<double> samples;
    int roundsAttempted = 0;
};

LearnResult
learn(bool withVdeb, const bench::ClusterWorkload &cw)
{
    core::DataCenterConfig cfg =
        bench::clusterConfig(core::SchemeKind::PSPC);
    cfg.clusterBudgetFraction = 0.70;
    // Trait override: capping always on (the side channel), sharing
    // toggled by the ablation.
    cfg.overrideTraits = true;
    cfg.traits = core::schemeTraits(core::SchemeKind::PSPC);
    cfg.traits.vdebSharing = withVdeb;
    core::DataCenter dc(cfg, cw.workload.get());
    dc.runCoarseUntil(kTicksPerDay + 10 * kTicksPerHour);

    attack::AttackerConfig ac;
    ac.controlledNodes = 4;
    ac.prepareSec = 30.0;
    ac.maxDrainSec = 1200.0;
    ac.learnRounds = 4;
    ac.recoverSec = 300.0;
    attack::TwoPhaseAttacker attacker(ac);

    core::AttackScenario sc;
    sc.targetPolicy = core::TargetPolicy::Fixed;
    sc.targetRack = core::rackByLoadPercentile(
        *cw.workload, cfg, dc.now(), dc.now() + kTicksPerHour, 85.0);
    sc.durationSec = 3.0 * 3600.0; // room for all learning rounds

    dc.runAttack(attacker, sc);
    return LearnResult{attacker.autonomySamples(),
                       attacker.config().learnRounds};
}

void
report(const std::string &name, const LearnResult &r, TextTable &table)
{
    RunningStats stats;
    for (double s : r.samples)
        stats.add(s);
    const double cv =
        stats.mean() > 0.0 ? stats.stddev() / stats.mean() : 0.0;
    table.addRow(
        {name, std::to_string(r.samples.size()),
         r.samples.empty() ? "-" : formatFixed(stats.mean(), 0),
         r.samples.empty() ? "-" : formatFixed(stats.stddev(), 0),
         r.samples.empty() ? "-" : formatPercent(cv, 1)});
}

} // namespace

int
main()
{
    std::cout << "=== ablation: attacker's Phase-I side-channel "
                 "learning, with and without vDEB ===\n\n";
    const auto cw = bench::makeClusterWorkload(3.0);

    const auto without = learn(false, cw);
    const auto with = learn(true, cw);

    TextTable table("autonomy estimates over 4 learning rounds");
    table.setHeader({"defense", "signals observed", "mean (s)",
                     "stddev (s)", "coeff. of variation"});
    report("capping only", without, table);
    report("capping + vDEB", with, table);
    table.print(std::cout);

    std::cout
        << "\n(without sharing the attacker cleanly measures the "
           "victim cabinet; with vDEB the pool hides the rack, "
           "observations stretch, shrink in number or vanish -- the "
           "paper's 'considerable noise' claim)\n";
    return 0;
}
