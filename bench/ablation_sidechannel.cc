/**
 * @file
 * Ablation: the performance side channel vDEB is designed to break.
 *
 * Paper §IV-B.1: vDEB "can often frustrate an attacker's efforts to
 * gain critical information such as how long the victim rack's
 * battery can sustain ... adding considerable noise to an attacker's
 * observations in a side-channel attack."
 *
 * The bench runs a multi-round learning attacker (drain, observe
 * DVFS throttling, recover, repeat) against a capping data center
 * with and without vDEB capacity sharing and reports the autonomy
 * estimates the attacker walks away with. Both arms run as one
 * SweepRunner batch (`--jobs N`).
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "attack/attacker.h"
#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pad;

namespace {

constexpr int kLearnRounds = 4;

runner::Experiment
experiment(bool withVdeb, const bench::ClusterWorkload &cw)
{
    core::DataCenterConfig cfg =
        bench::clusterConfig(core::SchemeKind::PSPC);
    cfg.clusterBudgetFraction = 0.70;
    // Trait override: capping always on (the side channel), sharing
    // toggled by the ablation.
    cfg.overrideTraits = true;
    cfg.traits = core::schemeTraits(core::SchemeKind::PSPC);
    cfg.traits.vdebSharing = withVdeb;

    runner::ClusterAttackSpec p;
    p.config = cfg;
    p.nodes = 4;
    p.prepareSec = 30.0;
    p.maxDrainSec = 1200.0;
    p.learnRounds = kLearnRounds;
    p.recoverSec = 300.0;
    p.attackHour = 10.0;
    p.victimRacks = 1;
    p.victimPct = 85.0;
    p.rankWindowSec = 3600.0;
    p.durationSec = 3.0 * 3600.0; // room for all learning rounds
    return runner::Experiment::clusterAttack(p, cw);
}

void
report(const std::string &name, const std::vector<double> &samples,
       TextTable &table)
{
    RunningStats stats;
    for (double s : samples)
        stats.add(s);
    const double cv =
        stats.mean() > 0.0 ? stats.stddev() / stats.mean() : 0.0;
    table.addRow(
        {name, std::to_string(samples.size()),
         samples.empty() ? "-" : formatFixed(stats.mean(), 0),
         samples.empty() ? "-" : formatFixed(stats.stddev(), 0),
         samples.empty() ? "-" : formatPercent(cv, 1)});
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    std::cout << "=== ablation: attacker's Phase-I side-channel "
                 "learning, with and without vDEB ===\n\n";
    const auto cw = bench::makeClusterWorkload(3.0);

    const std::vector<runner::Experiment> grid = {
        experiment(false, cw), experiment(true, cw)};
    const auto sweep =
        bench::runSweep("ablation_sidechannel", opts, grid);
    const auto &results = sweep.results;

    TextTable table("autonomy estimates over " +
                    std::to_string(kLearnRounds) +
                    " learning rounds");
    table.setHeader({"defense", "signals observed", "mean (s)",
                     "stddev (s)", "coeff. of variation"});
    report("capping only", results[0].cluster().autonomySamples,
           table);
    report("capping + vDEB", results[1].cluster().autonomySamples,
           table);
    table.print(std::cout);

    std::cout
        << "\n(without sharing the attacker cleanly measures the "
           "victim cabinet; with vDEB the pool hides the rack, "
           "observations stretch, shrink in number or vanish -- the "
           "paper's 'considerable noise' claim)\n";
    return 0;
}
