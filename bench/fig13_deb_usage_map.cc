/**
 * @file
 * Reproduces paper Fig. 13: "A comparison of DEB usage in
 * conventional datacenters and datacenters protected by PAD" — the
 * rack x time battery SOC map over one day, plus the associated
 * survival-time improvement (paper: 1.7x after optimization).
 *
 * Output: an ASCII SOC heat map per scheme ('#' full ... '.' empty),
 * per-rack minimum SOC, a vulnerability count (rack-steps below 30%
 * SOC), and survival times of an attack launched at the peak hour.
 */

#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace pad;

namespace {

char
socGlyph(double soc)
{
    // '#' >= 0.8, '+' >= 0.6, '-' >= 0.4, ':' >= 0.2, '.' < 0.2
    if (soc >= 0.8)
        return '#';
    if (soc >= 0.6)
        return '+';
    if (soc >= 0.4)
        return '-';
    if (soc >= 0.2)
        return ':';
    return '.';
}

struct MapResult {
    std::vector<std::vector<double>> history;
    double minSoc = 1.0;
    int vulnerableRackSteps = 0;
    double survivalSec = 0.0;
};

MapResult
runScheme(core::SchemeKind scheme, const bench::ClusterWorkload &cw)
{
    core::DataCenterConfig cfg = bench::clusterConfig(scheme);
    // Power-constrained PDU so the sharing scheme's balanced (and
    // shallow) pool usage is visible next to the conventional
    // design's deep per-rack strips.
    cfg.clusterBudgetFraction = 0.70;
    core::DataCenter dc(cfg, cw.workload.get());
    dc.setRecordHistory(true);
    dc.runCoarseUntil(kTicksPerDay + 13 * kTicksPerHour);

    MapResult out;
    out.history = dc.socHistory();
    for (const auto &row : out.history) {
        for (double s : row) {
            out.minSoc = std::min(out.minSoc, s);
            out.vulnerableRackSteps += s < 0.30;
        }
    }

    attack::AttackerConfig ac;
    ac.controlledNodes = 4;
    attack::TwoPhaseAttacker attacker(ac);
    core::AttackScenario sc;
    sc.targetPolicy = core::TargetPolicy::MostVulnerable;
    sc.durationSec = 1500.0;
    out.survivalSec = dc.runAttack(attacker, sc).survivalSec;
    return out;
}

void
printMap(const std::string &title, const MapResult &r)
{
    std::cout << title << " (rows: racks, cols: hours; "
              << "'#'>=80% '+'>=60% '-'>=40% ':'>=20% '.'<20%)\n";
    if (r.history.empty())
        return;
    const std::size_t racks = r.history.front().size();
    const std::size_t stepsPerHour =
        static_cast<std::size_t>(kTicksPerHour / (5 * kTicksPerMinute));
    for (std::size_t rack = 0; rack < racks; ++rack) {
        std::cout << (rack < 10 ? " r" : "r") << rack << " ";
        for (std::size_t step = 0; step < r.history.size();
             step += stepsPerHour) {
            // Glyph shows the worst SOC within the hour so that
            // short discharge dips stay visible.
            double low = 1.0;
            for (std::size_t k = step;
                 k < std::min(step + stepsPerHour, r.history.size());
                 ++k)
                low = std::min(low, r.history[k][rack]);
            std::cout << socGlyph(low);
        }
        std::cout << '\n';
    }
    std::cout << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    const bench::TraceSession trace(opts);
    std::cout << "=== Fig. 13: DEB usage map, conventional vs PAD "
                 "(1.5 days) ===\n\n";
    const auto cw = bench::makeClusterWorkload(3.0);

    const auto conv = runScheme(core::SchemeKind::PS, cw);
    const auto pad = runScheme(core::SchemeKind::Pad, cw);

    printMap("conventional (per-rack peak shaving)", conv);
    printMap("PAD optimized (vDEB balancing)", pad);

    TextTable table("summary");
    table.setHeader({"scheme", "min SOC", "vulnerable rack-steps",
                     "survival at peak (s)"});
    table.addRow("conventional",
                 {conv.minSoc, static_cast<double>(
                                   conv.vulnerableRackSteps),
                  conv.survivalSec});
    table.addRow("PAD", {pad.minSoc,
                         static_cast<double>(pad.vulnerableRackSteps),
                         pad.survivalSec});
    table.print(std::cout);

    std::cout << "\nsurvival improvement: "
              << formatFixed(pad.survivalSec /
                                 std::max(conv.survivalSec, 1e-9),
                             2)
              << "x  (paper: 1.7x after PAD optimization; uneven "
                 "usage may still exist but no rack differs "
                 "significantly at any timestamp)\n";
    return 0;
}
