/**
 * @file
 * Reproduces paper Table I: "Detection rate under different power
 * metering schemes" — the fraction of hidden spikes flagged by an
 * interval-averaging meter, swept over metering interval {5 s, 10 s,
 * 30 s, 60 s, 5 m, 10 m, 15 m} x {1, 4} malicious servers x spike
 * width {1 s, 4 s} x frequency {1, 6}/min, over a 15-minute attack.
 *
 * With several controlled servers the attacker round-robins the
 * spikes, so each server's own metered feed carries only 1/N of the
 * schedule — that is why per-server detection *drops* when the
 * attacker owns more machines, while very wide frequent spikes
 * saturate any interval (the 100% cells).
 *
 * The eight (servers, width, frequency) trace renders are submitted
 * once through SweepRunner and shared read-only by all seven
 * metering intervals — the detector pass itself is cheap.
 */

#include <iostream>
#include <vector>

#include "bench_common.h"
#include "metering/detector.h"
#include "util/table.h"

using namespace pad;

namespace {

constexpr double kWindowSec = 15.0 * 60.0;

const int kServers[] = {1, 4};
const double kWidths[] = {1.0, 4.0};
const double kFreqs[] = {1.0, 6.0};

runner::Experiment
traceExperiment(int servers, double widthSec, double perMinute)
{
    bench::RackLabConfig cfg;
    cfg.maliciousNodes = servers;
    cfg.servers = std::max(5, servers);
    cfg.kind = attack::VirusKind::CpuIntensive;
    cfg.train = attack::SpikeTrain{widthSec, perMinute, 1.0, 0.55};
    return runner::Experiment::rackLabServers(cfg, kWindowSec);
}

double
detectionRate(const bench::RackLabServerTrace &traces, int servers,
              Tick interval)
{
    metering::DetectorConfig dc;
    dc.interval = interval;
    dc.relativeMargin = 0.05;

    int detected = 0;
    int total = 0;
    for (int s = 0; s < servers; ++s) {
        metering::SpikeDetector det("t1.det" + std::to_string(s), dc,
                                    traces.baseline);
        const auto &power = traces.power[static_cast<std::size_t>(s)];
        const Tick stepTicks = secondsToTicks(traces.stepSec);
        for (double p : power)
            det.observe(p, stepTicks);
        for (const auto &[start, end] :
             traces.spikes[static_cast<std::size_t>(s)]) {
            std::vector<std::pair<Tick, Tick>> win{
                {secondsToTicks(start), secondsToTicks(end)}};
            detected += det.detectionRate(win) > 0.5 ? 1 : 0;
            ++total;
        }
    }
    return total ? static_cast<double>(detected) / total : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    std::cout << "=== Table I: detection rate under different power "
                 "metering schemes ===\n\n";

    std::vector<runner::Experiment> grid;
    for (int servers : kServers)
        for (double w : kWidths)
            for (double f : kFreqs)
                grid.push_back(traceExperiment(servers, w, f));

    const auto report = bench::runSweep("table1", opts, grid);
    const auto &results = report.results;

    const std::pair<std::string, Tick> intervals[] = {
        {"5s", 5 * kTicksPerSecond},   {"10s", 10 * kTicksPerSecond},
        {"30s", 30 * kTicksPerSecond}, {"60s", 60 * kTicksPerSecond},
        {"5m", 5 * kTicksPerMinute},   {"10m", 10 * kTicksPerMinute},
        {"15m", 15 * kTicksPerMinute},
    };

    TextTable table("detection rate (% of launched spikes flagged)");
    table.setHeader({"interval", "1srv W=1s 1/min", "1srv W=1s 6/min",
                     "1srv W=4s 1/min", "1srv W=4s 6/min",
                     "4srv W=1s 1/min", "4srv W=1s 6/min",
                     "4srv W=4s 1/min", "4srv W=4s 6/min"});
    for (const auto &[name, ticks] : intervals) {
        std::vector<std::string> row{name};
        std::size_t job = 0;
        for (int servers : kServers) {
            for (std::size_t w = 0; w < std::size(kWidths); ++w) {
                for (std::size_t f = 0; f < std::size(kFreqs); ++f) {
                    row.push_back(formatPercent(
                        detectionRate(results[job++].servers(),
                                      servers, ticks),
                        1));
                }
            }
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout
        << "\n(paper Table I trends: fine metering catches about half "
           "of rare narrow spikes;\n coarse metering is blind to them; "
           "wide frequent spikes raise the duty cycle\n enough that "
           "even coarse intervals flag everything; per-server "
           "detection drops\n when the attacker spreads spikes over "
           "more machines)\n";
    return 0;
}
