#include "bench_common.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "alert/html.h"
#include "alert/incident.h"
#include "alert/rule.h"
#include "obs/manifest.h"
#include "obs/trace_sink.h"
#include "telemetry/prom.h"
#include "util/logging.h"

namespace pad::bench {

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--jobs N] [--trace FILE] [--trace-format jsonl|chrome]\n"
        << "       [--stats-json FILE] [--prom FILE] [--manifest FILE]\n"
        << "       [--alerts RULES] [--incidents FILE]\n"
        << "       [--incident-html FILE]\n"
        << "       [--backend baseline|optimized|soa]\n"
        << "       [--log-level silent|error|warn|info|debug]\n"
        << "  --jobs N  worker threads for the sweep (0 = all cores);\n"
        << "            results are bit-identical for every N\n"
        << "  --backend NAME  engine backend for every cluster job\n"
        << "                  (default optimized; baseline is\n"
        << "                  bit-identical, soa is the opt-in batch\n"
        << "                  engine)\n";
    std::exit(2);
}

/** Parse --backend/--profile values; exits with usage on junk. */
engine::BackendKind
parseBackend(const char *argv0, const std::string &name)
{
    if (const auto kind = engine::backendFromName(name))
        return *kind;
    std::cerr << argv0 << ": unknown backend: " << name << "\n";
    usage(argv0);
}

} // namespace

BenchOptions
parseBenchArgs(int argc, char **argv)
{
    initLoggingFromEnvironment();
    BenchOptions opts;
    opts.argv.assign(argv, argv + argc);
    auto need = [&](int &i) -> std::string {
        if (++i >= argc)
            usage(argv[0]);
        return argv[i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" || arg == "-j") {
            opts.jobs = std::atoi(need(i).c_str());
            if (opts.jobs < 0)
                opts.jobs = 0;
        } else if (arg == "--trace") {
            opts.trace = need(i);
        } else if (arg == "--trace-format") {
            opts.traceFormat = need(i);
            if (!obs::traceFormatFromName(opts.traceFormat)) {
                std::cerr << argv[0] << ": unknown trace format: "
                          << opts.traceFormat << "\n";
                usage(argv[0]);
            }
        } else if (arg == "--stats-json") {
            opts.statsJson = need(i);
        } else if (arg == "--prom") {
            opts.prom = need(i);
        } else if (arg == "--manifest") {
            opts.manifest = need(i);
        } else if (arg == "--alerts") {
            opts.alerts = need(i);
        } else if (arg == "--incidents") {
            opts.incidents = need(i);
        } else if (arg == "--incident-html") {
            opts.incidentHtml = need(i);
        } else if (arg == "--backend") {
            opts.backend = parseBackend(argv[0], need(i));
        } else if (arg == "--profile") {
            // Historical spelling from the EngineTuning era; the
            // profile names map 1:1 onto the scalar backends.
            static bool warned = false;
            if (!warned) {
                warned = true;
                warn("--profile is deprecated; use --backend "
                     "baseline|optimized|soa");
            }
            opts.backend = parseBackend(argv[0], need(i));
        } else if (arg == "--log-level") {
            const std::string name = need(i);
            if (const auto level = logLevelFromName(name)) {
                setLogLevel(*level);
            } else {
                std::cerr << argv[0]
                          << ": unknown log level: " << name << "\n";
                usage(argv[0]);
            }
        } else {
            usage(argv[0]);
        }
    }
    if (opts.alerts.empty() &&
        (!opts.incidents.empty() || !opts.incidentHtml.empty())) {
        std::cerr << argv[0]
                  << ": --incidents/--incident-html require --alerts\n";
        usage(argv[0]);
    }
    return opts;
}

runner::SweepReport
runSweep(const std::string &tool, const BenchOptions &opts,
         const std::vector<runner::Experiment> &grid)
{
    std::unique_ptr<obs::FileTraceSink> sink;
    if (!opts.trace.empty()) {
        sink = obs::FileTraceSink::open(
            opts.trace, *obs::traceFormatFromName(opts.traceFormat));
        if (!sink)
            std::exit(1);
    }

    runner::SweepRunner::Options runnerOpts = opts.runnerOptions();
    runnerOpts.trace = sink.get();
    const runner::SweepRunner pool(runnerOpts);

    // --alerts loads the rule file once; every job then evaluates
    // the same shared, read-only RuleSet. A parse error is fatal
    // before any job runs.
    std::shared_ptr<const alert::RuleSet> rules;
    if (!opts.alerts.empty()) {
        std::string error;
        auto loaded = alert::loadRulesFile(opts.alerts, &error);
        if (!loaded) {
            std::cerr << tool << ": " << error << "\n";
            std::exit(1);
        }
        rules = std::make_shared<const alert::RuleSet>(
            std::move(*loaded));
    }

    // --prom needs per-job telemetry hubs, --alerts needs per-job
    // engines, and --backend selects the engine every cluster job
    // runs on; flip all three on a copy of the grid so the caller's
    // experiments stay untouched. Observability never alters results,
    // only records them; the backend does (soa only, and only within
    // the documented tolerances).
    const bool stampBackend =
        opts.backend != engine::BackendKind::Optimized;
    runner::SweepReport report;
    if (!opts.prom.empty() || rules || stampBackend) {
        std::vector<runner::Experiment> observed = grid;
        for (auto &experiment : observed) {
            if (!opts.prom.empty())
                experiment.telemetryEnabled = true;
            experiment.alertRules = rules;
            experiment.backend = opts.backend;
        }
        report = pool.runWithReport(observed);
    } else {
        report = pool.runWithReport(grid);
    }

    if (sink)
        sink->close();

    if (!opts.prom.empty()) {
        std::ofstream prom(opts.prom);
        if (!prom) {
            warn("{}: cannot write Prometheus exposition to {}", tool,
                 opts.prom);
        } else {
            telemetry::PromWriter().write(
                prom, &report.stats, report.telemetry.get(),
                rules ? &report.alertStates : nullptr);
        }
    }

    if (!opts.incidents.empty()) {
        std::ofstream os(opts.incidents);
        if (!os)
            warn("{}: cannot write incidents to {}", tool,
                 opts.incidents);
        else
            alert::writeIncidentsJsonl(os, report.incidents);
    }

    if (!opts.incidentHtml.empty()) {
        std::ofstream os(opts.incidentHtml);
        if (!os)
            warn("{}: cannot write incident dashboard to {}", tool,
                 opts.incidentHtml);
        else
            alert::writeIncidentDashboard(os, report.incidents);
    }

    if (!opts.statsJson.empty()) {
        std::ofstream js(opts.statsJson);
        if (!js) {
            warn("{}: cannot write stats JSON to {}", tool,
                 opts.statsJson);
        } else {
            report.stats.dumpJson(js);
            js << "\n";
        }
    }

    if (!opts.manifest.empty()) {
        obs::RunManifest manifest;
        manifest.tool = tool;
        manifest.experiment = "sweep";
        manifest.config = {
            {"jobs", std::to_string(pool.threadCount())},
            {"grid_size", std::to_string(grid.size())},
            {"backend", engine::backendName(opts.backend)},
        };
        manifest.argv = opts.argv;
        manifest.traceFile = opts.trace;
        if (!opts.trace.empty())
            manifest.traceFormat = opts.traceFormat;
        manifest.statsJsonFile = opts.statsJson;
        manifest.statsJson = report.stats.dumpJsonString();
        manifest.wallSeconds = report.wallSeconds;
        obs::writeManifestFile(opts.manifest, manifest);
    }

    return report;
}

TraceSession::TraceSession(const BenchOptions &opts)
    : sink_(opts.trace.empty()
                ? nullptr
                : obs::FileTraceSink::open(
                      opts.trace,
                      *obs::traceFormatFromName(opts.traceFormat))),
      scope_(sink_.get())
{
    if (!opts.trace.empty() && !sink_)
        std::exit(1);
}

TraceSession::~TraceSession()
{
    if (sink_)
        sink_->close();
}

} // namespace pad::bench
