#include "bench_common.h"

#include <cstdlib>
#include <iostream>
#include <string>

namespace pad::bench {

BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if ((arg == "--jobs" || arg == "-j") && i + 1 < argc) {
            opts.jobs = std::atoi(argv[++i]);
            if (opts.jobs < 0)
                opts.jobs = 0;
        } else {
            std::cerr << "usage: " << argv[0] << " [--jobs N]\n"
                      << "  --jobs N  worker threads for the sweep "
                         "(0 = all cores); results are\n"
                      << "            bit-identical for every N\n";
            std::exit(2);
        }
    }
    return opts;
}

} // namespace pad::bench
