/**
 * @file
 * Ablation: DEB placement granularity (paper Fig. 3, options 3 vs 4).
 *
 * The same total backup capacity deployed as one rack cabinet
 * (Facebook V1) or as per-server BBUs (HP/Quanta). Under a targeted
 * power virus the per-server split is *weaker*: the attacker's own
 * servers exhaust exactly the units backing them and cannot be
 * helped by their neighbors' stranded capacity — a finer-grained
 * version of the fragmentation argument that motivates vDEB pooling.
 *
 * The (scheme x nodes x placement) grid runs as one SweepRunner
 * batch (`--jobs N`).
 */

#include <iostream>
#include <vector>

#include "attack/virus_trace.h"
#include "bench_common.h"
#include "util/table.h"

using namespace pad;

namespace {

const core::SchemeKind kSchemes[] = {core::SchemeKind::PS,
                                     core::SchemeKind::VdebOnly};
const int kNodes[] = {2, 4};
const core::DataCenterConfig::DebPlacement kPlacements[] = {
    core::DataCenterConfig::DebPlacement::RackCabinet,
    core::DataCenterConfig::DebPlacement::PerServer};

runner::Experiment
experiment(core::DataCenterConfig::DebPlacement placement,
           core::SchemeKind scheme, const bench::ClusterWorkload &cw,
           int nodes)
{
    core::DataCenterConfig cfg = bench::clusterConfig(scheme);
    cfg.clusterBudgetFraction = 0.70;
    cfg.debPlacement = placement;

    runner::ClusterAttackSpec p;
    p.config = cfg;
    p.nodes = nodes;
    p.train = attack::spikeTrainFor(attack::AttackStyle::Dense,
                                    p.kind);
    p.victimRacks = 1;
    p.victimPct = 90.0;
    p.rankWindowSec = 3600.0;
    p.durationSec = 1500.0;
    return runner::Experiment::clusterAttack(p, cw);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    std::cout << "=== ablation: DEB placement granularity "
                 "(rack cabinet vs per-server BBU) ===\n\n";
    const auto cw = bench::makeClusterWorkload(3.0);

    std::vector<runner::Experiment> grid;
    for (core::SchemeKind scheme : kSchemes)
        for (int nodes : kNodes)
            for (auto placement : kPlacements)
                grid.push_back(
                    experiment(placement, scheme, cw, nodes));

    const auto report =
        bench::runSweep("ablation_placement", opts, grid);
    const auto &results = report.results;

    TextTable table("survival under a targeted CPU-virus attack "
                    "(same total capacity, seconds)");
    table.setHeader({"scheme / nodes", "rack cabinet",
                     "per-server BBU"});
    std::size_t job = 0;
    for (core::SchemeKind scheme : kSchemes) {
        for (int nodes : kNodes) {
            const double cabinet =
                results[job++].attack().survivalSec;
            const double perServer =
                results[job++].attack().survivalSec;
            table.addRow(core::schemeName(scheme) + " x" +
                             std::to_string(nodes),
                         {cabinet, perServer}, 0);
        }
    }
    table.print(std::cout);

    std::cout
        << "\n(a rack cabinet lets benign servers' stored energy "
           "cover the attacker's spike; per-server BBUs strand that "
           "energy on servers the attack never touches, so the "
           "victim units drain sooner. vDEB pooling recovers the "
           "difference by sharing across the PDU.)\n";
    return 0;
}
