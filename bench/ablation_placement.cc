/**
 * @file
 * Ablation: DEB placement granularity (paper Fig. 3, options 3 vs 4).
 *
 * The same total backup capacity deployed as one rack cabinet
 * (Facebook V1) or as per-server BBUs (HP/Quanta). Under a targeted
 * power virus the per-server split is *weaker*: the attacker's own
 * servers exhaust exactly the units backing them and cannot be
 * helped by their neighbors' stranded capacity — a finer-grained
 * version of the fragmentation argument that motivates vDEB pooling.
 */

#include <iostream>

#include "attack/virus_trace.h"
#include "bench_common.h"
#include "util/table.h"

using namespace pad;

namespace {

double
survival(core::DataCenterConfig::DebPlacement placement,
         core::SchemeKind scheme, const bench::ClusterWorkload &cw,
         int nodes)
{
    core::DataCenterConfig cfg = bench::clusterConfig(scheme);
    cfg.clusterBudgetFraction = 0.70;
    cfg.debPlacement = placement;
    core::DataCenter dc(cfg, cw.workload.get());
    dc.runCoarseUntil(kTicksPerDay + 11 * kTicksPerHour);

    attack::AttackerConfig ac;
    ac.controlledNodes = nodes;
    ac.prepareSec = 60.0;
    ac.maxDrainSec = 600.0;
    ac.train = attack::spikeTrainFor(attack::AttackStyle::Dense,
                                     ac.kind);
    attack::TwoPhaseAttacker attacker(ac);

    core::AttackScenario sc;
    sc.targetPolicy = core::TargetPolicy::Fixed;
    sc.targetRack = core::rackByLoadPercentile(
        *cw.workload, cfg, dc.now(), dc.now() + kTicksPerHour, 90.0);
    sc.durationSec = 1500.0;
    return dc.runAttack(attacker, sc).survivalSec;
}

} // namespace

int
main()
{
    std::cout << "=== ablation: DEB placement granularity "
                 "(rack cabinet vs per-server BBU) ===\n\n";
    const auto cw = bench::makeClusterWorkload(3.0);

    TextTable table("survival under a targeted CPU-virus attack "
                    "(same total capacity, seconds)");
    table.setHeader({"scheme / nodes", "rack cabinet",
                     "per-server BBU"});
    for (core::SchemeKind scheme :
         {core::SchemeKind::PS, core::SchemeKind::VdebOnly}) {
        for (int nodes : {2, 4}) {
            table.addRow(
                core::schemeName(scheme) + " x" +
                    std::to_string(nodes),
                {survival(
                     core::DataCenterConfig::DebPlacement::RackCabinet,
                     scheme, cw, nodes),
                 survival(
                     core::DataCenterConfig::DebPlacement::PerServer,
                     scheme, cw, nodes)},
                0);
        }
    }
    table.print(std::cout);

    std::cout
        << "\n(a rack cabinet lets benign servers' stored energy "
           "cover the attacker's spike; per-server BBUs strand that "
           "energy on servers the attack never touches, so the "
           "victim units drain sooner. vDEB pooling recovers the "
           "difference by sharing across the PDU.)\n";
    return 0;
}
