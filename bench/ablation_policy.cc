/**
 * @file
 * Ablation: the unspecified rows of the Fig. 9 initial-state table
 * and the Level-3 recharge thresholds.
 *
 * The paper leaves the [vDEB>0, µDEB==0] initial state open ("one
 * can use either Level 1 or Level 2, depending on the level of
 * security requirement of the organization"). This bench quantifies
 * the choice: a strict policy spends more time at Level 2 (watchful,
 * collecting load information) while a lenient one stays Normal.
 * It also sweeps the offline-charging restart threshold, the knob
 * behind Fig. 5's vulnerability gap.
 *
 * Both halves run on the SweepRunner pool (`--jobs N`): the policy
 * automata through the generic map() loop, the charging sweep as
 * four ClusterCoarse experiments.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/security_policy.h"
#include "util/random.h"
#include "util/table.h"

using namespace pad;

namespace {

/** Drive a policy automaton through a synthetic input trace. */
struct PolicyStats {
    int atL1 = 0;
    int atL2 = 0;
    int atL3 = 0;
    std::uint64_t transitions = 0;
};

PolicyStats
drive(bool strict, double udebDownProb, std::uint64_t seed)
{
    core::SecurityPolicy policy(strict);
    Rng rng(seed);
    PolicyStats stats;
    bool vdeb = true, udeb = true, vp = false;
    for (int step = 0; step < 20000; ++step) {
        // Random walk over the inputs: the µDEB flickers with the
        // swept probability, the pool and VP change rarely.
        if (rng.chance(udebDownProb))
            udeb = !udeb;
        if (rng.chance(0.002))
            vdeb = !vdeb;
        if (rng.chance(0.01))
            vp = !vp;
        switch (policy.update(core::PolicyInputs{vdeb, udeb, vp})) {
          case core::SecurityLevel::Normal:
            ++stats.atL1;
            break;
          case core::SecurityLevel::MinorIncident:
            ++stats.atL2;
            break;
          case core::SecurityLevel::Emergency:
            ++stats.atL3;
            break;
        }
    }
    stats.transitions = policy.transitions();
    return stats;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseBenchArgs(argc, argv);
    const runner::SweepRunner pool(opts.runnerOptions());
    std::cout << "=== ablation: Fig. 9 policy strictness and "
                 "recharge thresholds ===\n\n";

    {
        const double flickers[] = {0.01, 0.05, 0.15};
        const bool stricts[] = {true, false};
        // Each automaton owns its Rng and stats; the pool runs the
        // grid with the same fixed seed per cell as the serial loop.
        const auto stats = pool.map(
            std::size(flickers) * std::size(stricts),
            [&](std::size_t i) {
                return drive(stricts[i % 2], flickers[i / 2], 7);
            });

        TextTable table("strict vs lenient [vDEB>0, uDEB==0] rows "
                        "(20k control periods, stochastic inputs)");
        table.setHeader({"policy", "uDEB flicker", "% L1", "% L2",
                         "% L3", "transitions"});
        std::size_t job = 0;
        for (double flicker : flickers) {
            for (bool strict : stricts) {
                const auto &s = stats[job++];
                const double total = 20000.0;
                table.addRow(
                    {strict ? "strict (L2)" : "lenient (L1)",
                     formatPercent(flicker, 0),
                     formatPercent(s.atL1 / total, 1),
                     formatPercent(s.atL2 / total, 1),
                     formatPercent(s.atL3 / total, 1),
                     std::to_string(s.transitions)});
            }
        }
        table.print(std::cout);
        std::cout << "(the strict choice buys earlier anomaly "
                     "collection at the cost of more time spent "
                     "watchful)\n\n";
    }

    {
        const auto cw = bench::makeClusterWorkload(3.0);
        const double starts[] = {0.4, 0.55, 0.7, 0.85};

        std::vector<runner::Experiment> grid;
        for (double start : starts) {
            core::DataCenterConfig cfg =
                bench::clusterConfig(core::SchemeKind::PS);
            cfg.charge.kind = battery::ChargePolicyKind::Offline;
            cfg.charge.offlineStartSoc = start;

            runner::ClusterCoarseSpec spec;
            spec.config = cfg;
            spec.untilHours = 48.0;
            spec.recordHistory = true;
            grid.push_back(
                runner::Experiment::clusterCoarse(spec, cw));
        }
        const auto report =
            bench::runSweep("ablation_policy", opts, grid);
        const auto &results = report.results;

        TextTable table("offline-charging restart threshold vs "
                        "battery vulnerability (2 days, PS)");
        table.setHeader({"restart SOC", "mean SOC stddev (%)",
                         "vulnerable rack-steps (<30% SOC)"});
        for (std::size_t i = 0; i < std::size(starts); ++i) {
            const auto &history = results[i].cluster().socHistory;
            double spread = 0.0;
            int vulnerable = 0;
            for (const auto &row : history) {
                double mean = 0.0, var = 0.0;
                for (double s : row)
                    mean += s;
                mean /= row.size();
                for (double s : row) {
                    var += (s - mean) * (s - mean);
                    vulnerable += s < 0.30;
                }
                spread += std::sqrt(var / row.size()) * 100.0;
            }
            spread /= history.size();
            table.addRow({formatPercent(starts[i], 0),
                          formatFixed(spread, 2),
                          std::to_string(vulnerable)});
        }
        table.print(std::cout);
        std::cout << "(late restarts leave shallowly discharged "
                     "cabinets stranded -- the offline-charging "
                     "vulnerability of Fig. 5)\n";
    }
    return 0;
}
