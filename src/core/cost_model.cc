#include "core/cost_model.h"

#include "battery/supercap.h"
#include "util/logging.h"

namespace pad::core {

CostModel::CostModel(const CostModelConfig &config) : config_(config)
{
    PAD_ASSERT(config_.supercapCostPerWh > 0.0);
    PAD_ASSERT(config_.batteryCostPerWh > 0.0);
}

double
CostModel::udebCost(const MicroDebConfig &udeb, int racks) const
{
    battery::SuperCapacitor probe("cost.probe", udeb.cap);
    const WattHours perRack = joulesToWattHours(probe.usableCapacity());
    return perRack * config_.supercapCostPerWh * racks;
}

double
CostModel::vdebCost(const battery::BatteryUnitConfig &deb,
                    int racks) const
{
    return deb.capacityWh * config_.batteryCostPerWh * racks;
}

double
CostModel::costRatio(const MicroDebConfig &udeb,
                     const battery::BatteryUnitConfig &deb) const
{
    return udebCost(udeb, 1) / vdebCost(deb, 1);
}

} // namespace pad::core
