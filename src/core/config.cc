#include "core/config.h"

namespace pad::core {

battery::BatteryUnitConfig
defaultDebConfig(Watts rackNameplate, double seconds)
{
    battery::BatteryUnitConfig cfg;
    // "Sustains `seconds` under full load" is delivered autonomy: at
    // a full-rack draw the available well collapses to the LVD floor
    // when roughly 60% of rated charge has been delivered (KiBaM
    // rate-capacity effect), so the rated capacity is sized up.
    cfg.capacityWh = joulesToWattHours(rackNameplate * seconds / 0.6);
    // The cabinet must carry the full rack when shaving deep peaks,
    // but recharges slowly (trickle charging, ~C/5): the paper's
    // premise that aggressively used batteries "do not receive
    // timely recharge" depends on exactly this asymmetry.
    cfg.maxDischargePower = rackNameplate * 1.2;
    cfg.maxChargePower = rackNameplate * 0.05;
    return cfg;
}

} // namespace pad::core
