/**
 * @file
 * PAD's hierarchical security policy (paper §IV-A, Fig. 9).
 *
 * Three emergency levels drive power management:
 *
 *  - Level 1, Normal: shave visible peaks with vDEB;
 *  - Level 2, Minor Incident: shave hidden spikes with µDEB while
 *    collecting load information;
 *  - Level 3, Emergency: shed or migrate load.
 *
 * The state is a function of three inputs — whether the vDEB pool
 * and the µDEB still hold energy, and whether a visible peak (VP) is
 * currently identified. The figure specifies the initial state for
 * each input combination and four transitions:
 *
 *    L1 --(µDEB == 0)--> L2       L2 --(µDEB recharged)--> L1
 *    L2 --(vDEB == 0)--> L3       L3 --(vDEB recharged)--> L2
 *
 * The [vDEB>0, µDEB==0] rows are deliberately unspecified in the
 * paper ("one can use either Level 1 or Level 2, depending on the
 * level of security requirement"); a strictness knob picks one.
 */

#ifndef PAD_CORE_SECURITY_POLICY_H
#define PAD_CORE_SECURITY_POLICY_H

#include <cstdint>
#include <string>

namespace pad::core {

/** Emergency levels. */
enum class SecurityLevel {
    Normal = 1,        ///< Level 1: shaving visible peaks
    MinorIncident = 2, ///< Level 2: shaving hidden spikes
    Emergency = 3,     ///< Level 3: load shedding / migration
};

/** Human-readable level name. */
std::string securityLevelName(SecurityLevel level);

/** Policy inputs sampled each control period. */
struct PolicyInputs {
    /** vDEB pool holds usable energy. */
    bool vdebAvailable = true;
    /** µDEB holds usable energy. */
    bool udebAvailable = true;
    /** A visible peak is currently identified (VP > 0). */
    bool visiblePeak = false;
};

/**
 * Initial state for an input combination, per the Fig. 9 table.
 *
 * @param in     sampled inputs
 * @param strict pick Level 2 (true) or Level 1 (false) for the
 *               unspecified [vDEB>0, µDEB==0] rows
 */
SecurityLevel initialLevel(const PolicyInputs &in, bool strict);

/**
 * Stateful policy automaton.
 */
class SecurityPolicy
{
  public:
    /**
     * @param strict strictness for the unspecified initial rows
     */
    explicit SecurityPolicy(bool strict = true);

    /**
     * Sample inputs and advance the automaton.
     * @return the level to operate at for the next control period
     */
    SecurityLevel update(const PolicyInputs &in);

    /** Current level without advancing. */
    SecurityLevel level() const { return level_; }

    /** Reset to the initial state for @p in. */
    void reset(const PolicyInputs &in);

    /** Number of transitions into Level 3 so far. */
    std::uint64_t emergencies() const { return emergencies_; }

    /** Total level changes so far. */
    std::uint64_t transitions() const { return transitions_; }

  private:
    void setLevel(SecurityLevel next);

    bool strict_;
    bool started_ = false;
    SecurityLevel level_ = SecurityLevel::Normal;
    std::uint64_t transitions_ = 0;
    std::uint64_t emergencies_ = 0;
};

} // namespace pad::core

#endif // PAD_CORE_SECURITY_POLICY_H
