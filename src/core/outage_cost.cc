#include "core/outage_cost.h"

#include <cmath>

#include "util/logging.h"

namespace pad::core {

namespace {

/** Standard normal CDF. */
double
phi(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

/** Inverse standard normal CDF (Acklam-style rational approx). */
double
phiInverse(double p)
{
    PAD_ASSERT(p > 0.0 && p < 1.0);
    // Beasley-Springer-Moro approximation: accurate to ~1e-9 in the
    // central region, adequate for reporting quantiles.
    static const double a[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};
    const double plow = 0.02425;
    if (p < plow) {
        const double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                 c[4]) *
                    q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > 1.0 - plow) {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                  c[4]) *
                     q +
                 c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) *
                r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) *
                r +
            1.0);
}

} // namespace

OutageCostModel::OutageCostModel(const OutageCostConfig &config)
    : config_(config)
{
    PAD_ASSERT(config_.sigma > 0.0);
    PAD_ASSERT(config_.averageUsdPerMinute > 0.0);
    PAD_ASSERT(config_.remediationHours >= 0.0);
}

double
OutageCostModel::cdf(double usdPerSqmPerMinute) const
{
    if (usdPerSqmPerMinute <= 0.0)
        return 0.0;
    return phi((std::log(usdPerSqmPerMinute) - config_.mu) /
               config_.sigma);
}

double
OutageCostModel::quantile(double p) const
{
    PAD_ASSERT(p > 0.0 && p < 1.0);
    return std::exp(config_.mu + config_.sigma * phiInverse(p));
}

double
OutageCostModel::expectedIncidentLossUsd(double outageMinutes) const
{
    PAD_ASSERT(outageMinutes >= 0.0);
    const double total =
        outageMinutes + config_.remediationHours * 60.0;
    return total * config_.averageUsdPerMinute;
}

double
OutageCostModel::lossUsd(double outageMinutes, double areaSqm,
                         double percentile) const
{
    PAD_ASSERT(outageMinutes >= 0.0 && areaSqm > 0.0);
    return outageMinutes * areaSqm * quantile(percentile);
}

} // namespace pad::core
