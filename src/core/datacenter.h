/**
 * @file
 * Top-level data-center simulation (paper Fig. 11-B).
 *
 * Binds the substrates together: a Workload drives per-server
 * utilization; the ServerPowerModel turns it into electrical power;
 * per-rack DEB units (KiBaM) shave peaks under the configured
 * management scheme; µDEB super-caps absorb hidden spikes; the
 * security policy escalates through L1/L2/L3; breakers, meters and
 * attack statistics observe the outcome.
 *
 * Two time scales are simulated:
 *  - coarse steps at the trace's 5-minute granularity for days/weeks
 *    of normal operation (battery usage maps, SOC variation);
 *  - fine 100 ms steps inside an attack window, where spike shaving
 *    and breaker thermodynamics matter.
 */

#ifndef PAD_CORE_DATACENTER_H
#define PAD_CORE_DATACENTER_H

#include <memory>
#include <optional>
#include <vector>

#include "attack/attack_stats.h"
#include "attack/attacker.h"
#include "battery/battery_unit.h"
#include "battery/charge_policy.h"
#include "core/config.h"
#include "core/security_policy.h"
#include "core/udeb.h"
#include "core/vdeb.h"
#include "obs/prof.h"
#include "power/circuit_breaker.h"
#include "power/power_meter.h"
#include "power/server_power_model.h"
#include "sched/load_shedding.h"
#include "sched/perf_monitor.h"
#include "sim/stats_registry.h"
#include "sim/time_series.h"
#include "telemetry/hub.h"
#include "trace/workload.h"

namespace pad::core {

/** Outcome of one fine-grained attack window. */
struct AttackOutcome {
    /** Overload statistics at the victim rack. */
    attack::AttackStats rack;
    /** Overload statistics at the cluster/PDU level. */
    attack::AttackStats cluster;
    /** Survival time: attack start to first overload, seconds. */
    double survivalSec = 0.0;
    /** Normalized throughput of benign work over the window. */
    double throughput = 1.0;
    /** Hidden spikes launched by the attacker in Phase II. */
    int spikesLaunched = 0;
    /** Absolute tick windows of each launched spike. */
    std::vector<std::pair<Tick, Tick>> spikeWindows;
    /** Victim-rack total power over the window, 1 sample/control. */
    sim::TimeSeries rackPower{"rack_power"};
    /** Victim-rack utility-side draw after shaving. */
    sim::TimeSeries rackDraw{"rack_draw"};
    /** Victim-rack DEB state of charge. */
    sim::TimeSeries rackSoc{"rack_soc"};
    /** Victim-rack µDEB state of charge (all 1.0 without µDEB). */
    sim::TimeSeries udebSoc{"udeb_soc"};
    /** Security level over the window. */
    sim::TimeSeries level{"level"};
    /** Peak fraction of servers shed at any control period. */
    double maxShedRatio = 0.0;
    /** Attacker phase transitions: seconds into window. */
    double phaseTwoStartSec = -1.0;
};

/** How the adversary's VMs land on a victim rack. */
enum class TargetPolicy {
    /** Attacker co-located onto a given rack (targetRack index). */
    Fixed,
    /**
     * Sophisticated adversary: the rack whose DEB currently holds
     * the least energy (identified through Phase-I style probing).
     */
    MostVulnerable,
    /** Median-SOC rack: a typical co-location outcome. */
    Median,
};

/** Parameters of one attack window. */
struct AttackScenario {
    /** Victim selection policy. */
    TargetPolicy targetPolicy = TargetPolicy::Median;
    /** Victim rack index when targetPolicy == Fixed. */
    int targetRack = -1;
    /**
     * Additional racks the attacker also holds nodes in ("divide and
     * conquer", paper §I): the same malicious load runs on the first
     * controlledNodes servers of each listed rack.
     */
    std::vector<int> extraVictimRacks;
    /**
     * Number of servers the attacker controls in each victim rack;
     * filled from the attacker's controlledNodes by runAttack().
     */
    int maliciousNodes = 0;
    /** Window length, seconds. */
    double durationSec = 1500.0;
    /**
     * Attack duty cycle in [0,1]: fraction of each duty period the
     * attacker is active (Fig. 16-A "attack rate"); 1 = continuous.
     */
    double dutyCycle = 1.0;
    /** Duty period, seconds. */
    double dutyPeriodSec = 120.0;
};

/**
 * Pick a victim rack by workload intensity: racks are ranked by
 * their mean demanded power over [from, to) and the rack at the
 * given percentile (0 = coolest, 100 = hottest) is returned. Benches
 * use this to attack the *same* rack across schemes so survival
 * times are comparable.
 */
int rackByLoadPercentile(const trace::Workload &workload,
                         const DataCenterConfig &config, Tick from,
                         Tick to, double percentile);

/**
 * The simulated battery-backed data center.
 */
class DataCenter
{
  public:
    /**
     * @param config   static configuration
     * @param workload utilization timeline (not owned; must outlive
     *                 the DataCenter)
     */
    DataCenter(const DataCenterConfig &config,
               const trace::Workload *workload);

    /** Advance one coarse (trace-slot) step of normal operation. */
    void stepCoarse();

    /** Run coarse steps until tick @p until. */
    void runCoarseUntil(Tick until);

    /** Enable per-step SOC history recording for map figures. */
    void setRecordHistory(bool on) { recordHistory_ = on; }

    /** SOC history: one row per coarse step, one column per rack. */
    const std::vector<std::vector<double>> &socHistory() const
    {
        return socHistory_;
    }

    /** Shed-ratio history aligned with socHistory (coarse steps). */
    const std::vector<double> &shedHistory() const { return shedHistory_; }

    /**
     * Run a fine-grained attack window starting at the current
     * simulation time, using the present battery state.
     *
     * @param attacker the adversary strategy (advanced in place)
     * @param scenario attack parameters
     */
    AttackOutcome runAttack(attack::TwoPhaseAttacker &attacker,
                            const AttackScenario &scenario);

    /** Present SOC of rack @p rack's DEB. */
    double rackSoc(int rack) const;

    /** SOC of every rack. */
    std::vector<double> allSocs() const;

    /** Standard deviation of SOC across racks, in percent. */
    double socStdDevPercent() const;

    /** Rack with the lowest stored backup energy. */
    int mostVulnerableRack() const;

    /** Rack with the median stored backup energy. */
    int medianSocRack() const;

    /** Force every DEB and µDEB to a given SOC (scenario setup). */
    void setAllSoc(double soc);

    /** Present simulation time. */
    Tick now() const { return now_; }

    /** Jump the clock (e.g. to align an attack with a trace peak). */
    void seekTo(Tick t);

    /** Benign-work throughput accounting since construction. */
    const sched::PerfMonitor &perf() const { return perf_; }

    /** The security policy automaton (PAD schemes only). */
    const SecurityPolicy &policy() const { return policy_; }

    /** Static configuration. */
    const DataCenterConfig &config() const { return config_; }

    /** Number of servers currently shed. */
    int sheddedServers() const;

    /** Anomalies flagged by the optional detector response. */
    std::uint64_t detectionsFlagged() const { return detections_; }

    /**
     * Attach a telemetry hub: every control period the data center
     * records per-rack power/draw/SOC/µDEB-SOC, PDU totals, the
     * security level, the shed-server count and the detector score
     * into it. Pass nullptr to detach; the hub is not owned and the
     * default (no hub) costs nothing.
     */
    void setTelemetry(telemetry::TelemetryHub *hub) { telemetry_ = hub; }

    /** The attached telemetry hub, or nullptr. */
    telemetry::TelemetryHub *telemetry() const { return telemetry_; }

    /**
     * Attach an engine self-profiler: phase timers around demand
     * evaluation, the KiBaM battery step, µDEB shaving, the detector
     * and telemetry sampling, plus DemandCache hit/miss counters and
     * the event-queue high-water mark. Pass nullptr to detach; the
     * profiler is not owned and the default (detached) reduces every
     * instrumentation point to one pointer test.
     */
    void setProfiler(obs::EngineProfiler *prof);

    /** The attached profiler, or nullptr. */
    obs::EngineProfiler *profiler() const { return prof_; }

    /** Tick of the first detector anomaly; kTickNever if none. */
    Tick firstDetectionTick() const { return firstDetectionTick_; }

    /** Tick the policy first left L1-Normal; kTickNever if never. */
    Tick firstEscalationTick() const { return firstEscalationTick_; }

    /**
     * Export the full telemetry of the run into @p stats: per-rack
     * battery state, wear, LVD trips, µDEB engagements, breaker
     * trips, shedding, policy transitions and throughput accounting.
     * Registered names are stable; re-exporting into the same
     * registry overwrites the previous snapshot.
     */
    void exportStats(sim::StatsRegistry &stats) const;

    /** exportStats() rendered as a gem5-style text dump. */
    void dumpStats(std::ostream &os) const;

  private:
    /** Per-rack mutable state. */
    struct RackState {
        /**
         * DEB units backing this rack: one cabinet (RackCabinet) or
         * one BBU per server (PerServer). With per-server placement
         * unit i can only offset server i's own draw.
         */
        std::vector<std::unique_ptr<battery::BatteryUnit>> debs;
        std::unique_ptr<MicroDeb> udeb; // null unless scheme uses it
        std::unique_ptr<power::CircuitBreaker> breaker;
        std::unique_ptr<battery::ChargeController> charger;
        double dvfs = 1.0;   ///< capping factor applied this period
        double vpEnergy = 0.0; ///< rolling energy for VP detection
        Tick downUntil = 0;  ///< rack dark after a breaker trip
        /** Interval meter driving the optional detector response. */
        std::unique_ptr<power::PowerMeter> meter;
        std::size_t meterScanned = 0; ///< readings already examined

        /** Total stored energy across the rack's units, joules. */
        Joules stored() const;
        /** Total rated capacity, joules. */
        Joules capacity() const;
        /** Mean state of charge across units. */
        double soc() const;
        /** Deliverable power over the next @p dt seconds. */
        Watts availablePower(double dt) const;
        /** True when no unit can deliver. */
        bool unavailable() const;
        /**
         * Discharge up to @p want watts for @p dtSec, split across
         * units proportionally to stored charge, each unit bounded
         * by @p unitDrawBound (its server's draw with per-server
         * placement, the rack draw for a cabinet).
         * @return power actually delivered, watts
         */
        Watts discharge(Watts want, double dtSec,
                        const std::vector<Watts> &unitDrawBound);
        /** Idle every unit for @p dtSec. */
        void rest(double dtSec);
        /** Recharge the units from @p headroom watts via charger. */
        void recharge(Watts headroom, double dtSec);

        /**
         * Raw unit pointers for the charge controller, built once
         * after construction (debs never changes afterwards) so
         * recharge() does not rebuild the vector every step. Empty
         * under the Baseline engine profile.
         */
        std::vector<battery::BatteryUnit *> unitCache;
    };

    /** Demand/draw snapshot for one step. */
    struct StepPower {
        std::vector<double> rackPower;   ///< total demand per rack
        std::vector<double> rackDraw;    ///< utility draw per rack
        /** Demand power at full frequency (capping trigger input). */
        std::vector<double> rackUncapped;
        /** DEB discharge applied this step per rack, watts. */
        std::vector<double> rackShaved;
        /** Per-server power draw, rack-major (for per-server DEBs). */
        std::vector<double> serverPower;
        double totalPower = 0.0;
        double totalDraw = 0.0;
        /** Power currently suppressed by sleeping shed servers. */
        double shedSuppressed = 0.0;
    };

    int machineId(int rack, int server) const;
    double serverDemand(int rack, int server, Tick t, bool fine) const;

    /**
     * Per-machine demand cache for the step at one tick.
     *
     * The trace slot changes every 5 minutes and the jitter second
     * every 10 fine steps, so the flat per-machine demand array is
     * recombined only on those boundaries instead of hashing and
     * indexing the grid for all servers on every step. Values are
     * bit-identical to Workload::utilAt/utilFine by construction
     * (Workload::combineFine over cached slot bases and jitters).
     */
    struct DemandCache {
        Tick tick = kTickNever; ///< tick `values` is valid for
        bool fine = false;      ///< granularity `values` holds
        std::size_t slot = static_cast<std::size_t>(-1);
        std::uint64_t second = ~std::uint64_t{0};
        std::vector<double> base;   ///< slot averages, per machine
        std::vector<double> values; ///< demand at `tick`, per machine
    };

    /**
     * Refresh demand_ for tick @p t and return its per-machine
     * values; after this, serverDemand(r, s, t, fine) is a cached
     * array read for the same (t, fine).
     */
    const std::vector<double> &refreshDemand(Tick t, bool fine);

    /** Compute demand and apply shaving for one step of dt seconds. */
    void computeStep(StepPower &step, Tick t, double dtSec, bool fine,
                     const attack::TwoPhaseAttacker *attacker,
                     const AttackScenario *scenario,
                     const std::vector<bool> *victimMask,
                     double attackRelSec, bool attackerActive,
                     sched::PerfMonitor *windowPerf);

    /** Apply scheme-specific battery shaving; fills rackDraw. */
    void applyShaving(StepPower &step, double dtSec);

    /**
     * Per-rack overload limits for the current step. Non-sharing
     * schemes use the fixed soft-budget limit; sharing schemes get
     * an iPDU allocation raised by the headroom other racks free.
     */
    std::vector<Watts> rackLimits(const StepPower &step) const;

    /** rackLimits() into a caller-owned vector (hot-path variant). */
    void fillRackLimits(const StepPower &step,
                        std::vector<Watts> &limits) const;

    /** µDEB spike shaving against the current limits (fine only). */
    void applyUdeb(StepPower &step, const std::vector<Watts> &limits,
                   double dtSec);

    /** Recharge DEBs and µDEBs from per-rack headroom. */
    void rechargeAll(const StepPower &step, double dtSec);

    /** Control-period decisions: policy, capping, shedding. */
    void controlDecisions(const StepPower &step, double dtSec);

    /** Record the step's signals into the attached telemetry hub. */
    void telemetrySample(const StepPower &step);

    bool isShed(int rack, int server) const;
    std::size_t serverIndex(int rack, int server) const;

    DataCenterConfig config_;
    SchemeTraits traits_;
    const trace::Workload *workload_;
    power::ServerPowerModel serverModel_;
    VdebController vdeb_;
    SecurityPolicy policy_;
    sched::LoadShedder shedder_;
    sched::PerfMonitor perf_;

    /** Feed the detector meters and trigger the capping response. */
    void detectorStep(const StepPower &step, Tick dt);

    std::vector<RackState> racks_;
    /** Per-server shed flags, rack-major (0/1; uint8_t for a flat
     *  byte array in the per-server hot loop). */
    std::vector<std::uint8_t> shed_;
    std::vector<Watts> assigned_;  ///< last vDEB assignment per rack

    // Hot-path scratch, reused across steps under the Optimized
    // engine profile so the per-tick path is allocation-free. Each
    // vector is (re)filled before use; none carries state between
    // steps.
    StepPower stepScratch_;
    std::vector<Watts> boundsScratch_;  ///< per-unit discharge bounds
    std::vector<Joules> socScratch_;    ///< per-rack stored energy
    std::vector<Watts> limitsScratch_;  ///< per-rack overload limits
    VdebAssignment planScratch_;        ///< vDEB assignment output
    DemandCache demand_;
    bool visiblePeak_ = false;
    SecurityLevel level_ = SecurityLevel::Normal;
    Tick clusterCapUntil_ = 0;     ///< detector-response cap latch
    std::uint64_t detections_ = 0;
    Tick firstDetectionTick_ = kTickNever;
    Tick firstEscalationTick_ = kTickNever;
    /** Refresh the profiler's arena/scratch byte gauges. */
    void profRefreshGauges();

    telemetry::TelemetryHub *telemetry_ = nullptr;
    obs::EngineProfiler *prof_ = nullptr;

    Tick now_ = 0;
    bool recordHistory_ = false;
    std::vector<std::vector<double>> socHistory_;
    std::vector<double> shedHistory_;
};

} // namespace pad::core

#endif // PAD_CORE_DATACENTER_H
