/**
 * @file
 * Attack-campaign driver: orchestrates a timeline of two-phase
 * attacks against one data center using the discrete-event engine.
 *
 * The paper's adversary does not strike once: Phase I itself is a
 * repeated learning process and a determined attacker retries at
 * different hours ("wait for the best time to attack", §III-A). The
 * campaign driver schedules attacks as events, runs normal coarse
 * operation between them, and reports per-attack outcomes plus the
 * day's aggregate damage.
 */

#ifndef PAD_CORE_CAMPAIGN_H
#define PAD_CORE_CAMPAIGN_H

#include <vector>

#include "attack/attacker.h"
#include "core/datacenter.h"
#include "sim/event_queue.h"

namespace pad::core {

/** One scheduled strike in a campaign. */
struct CampaignAttack {
    /** Absolute tick the attack begins (aligned down to a slot). */
    Tick startAt = 0;
    /** Adversary configuration for this strike. */
    attack::AttackerConfig attacker;
    /** Scenario (victim selection, duration, duty cycle). */
    AttackScenario scenario;
};

/** Outcome of one campaign strike. */
struct CampaignStrike {
    Tick startedAt = 0;
    double survivalSec = 0.0;
    int effectiveAttacks = 0;
    double throughput = 1.0;
    bool overloaded = false;
};

/** Aggregate campaign results. */
struct CampaignReport {
    std::vector<CampaignStrike> strikes;
    /** Strikes that produced at least one overload. */
    int successfulStrikes = 0;
    /** Benign throughput across the whole campaign horizon. */
    double overallThroughput = 1.0;
};

/**
 * Runs a timeline of attacks against a DataCenter.
 */
class CampaignDriver
{
  public:
    /**
     * @param dc      the data center under attack (state persists
     *                across strikes — drained batteries stay drained
     *                until recharged)
     * @param attacks strikes, any order; sorted internally
     */
    CampaignDriver(DataCenter &dc, std::vector<CampaignAttack> attacks);

    /**
     * Run normal operation and the scheduled strikes until @p until.
     * Strikes scheduled past the horizon are skipped.
     *
     * Ownership and lifetime: the driver borrows the DataCenter
     * passed to the constructor and mutates it in place — battery
     * state, detector counters and telemetry reflect the campaign
     * after run() returns, and the caller remains the owner. The
     * attack list is copied at construction; later changes to the
     * caller's vector have no effect. run() may be called once per
     * driver: it drives the DataCenter's own simulator forward and
     * never rewinds time. Call with a larger @p until on a fresh
     * driver to continue a campaign.
     */
    CampaignReport run(Tick until);

  private:
    DataCenter &dc_;
    std::vector<CampaignAttack> attacks_;
};

} // namespace pad::core

#endif // PAD_CORE_CAMPAIGN_H
