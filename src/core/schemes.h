/**
 * @file
 * The six power-management schemes evaluated in the paper
 * (Table III): Conv, PS, PSPC, vDEB-only, µDEB-only, and PAD.
 */

#ifndef PAD_CORE_SCHEMES_H
#define PAD_CORE_SCHEMES_H

#include <optional>
#include <string>

namespace pad::core {

/** Evaluated power management schemes (paper Table III). */
enum class SchemeKind {
    /**
     * Conventional design: batteries are emergency backup only and
     * are never discharged dynamically.
     */
    Conv,
    /** State-of-the-art peak shaving with per-rack DEB units. */
    PS,
    /** PS combined with DVFS power capping (20% frequency cut). */
    PSPC,
    /** PS + the vDEB load-sharing mechanism. */
    VdebOnly,
    /** PS + the µDEB rack-level spike shaver. */
    UdebOnly,
    /** The full PAD patch: vDEB + µDEB + hierarchical policy. */
    Pad,
};

/** All schemes in the paper's presentation order. */
inline constexpr SchemeKind kAllSchemes[] = {
    SchemeKind::Conv,     SchemeKind::PS,       SchemeKind::PSPC,
    SchemeKind::UdebOnly, SchemeKind::VdebOnly, SchemeKind::Pad,
};

/** Behaviour switches derived from the scheme. */
struct SchemeTraits {
    /** DEB units discharge dynamically to shave peaks. */
    bool peakShaving = false;
    /** DVFS capping engages when backup energy is exhausted. */
    bool dvfsCapping = false;
    /** vDEB capacity sharing across racks under one PDU. */
    bool vdebSharing = false;
    /** µDEB automatic spike shaving. */
    bool udebSpikes = false;
    /** Level-3 load shedding under the PAD policy. */
    bool shedding = false;
    /** Frequency factor applied when capping (paper: 20% cut). */
    double dvfsFactor = 0.8;
};

/** Traits table for each scheme. */
SchemeTraits schemeTraits(SchemeKind kind);

/** Scheme display name as used in the paper's figures. */
std::string schemeName(SchemeKind kind);

/**
 * Parse a scheme name (case-sensitive, as printed in the paper's
 * figures). Returns std::nullopt for unknown names: parsing is not an
 * error here — the CLI (or other caller) decides how to report it.
 */
std::optional<SchemeKind> schemeFromName(const std::string &name);

} // namespace pad::core

#endif // PAD_CORE_SCHEMES_H
