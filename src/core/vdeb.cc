#include "core/vdeb.h"

#include <algorithm>
#include <numeric>

#include "obs/tracer.h"
#include "util/engine_tuning.h"
#include "util/logging.h"

namespace pad::core {

VdebController::VdebController(const VdebConfig &config) : config_(config)
{
    PAD_ASSERT(config_.idealDischargePower > 0.0);
}

VdebAssignment
VdebController::assign(const std::vector<Joules> &socJoules,
                       Watts totalPower, Watts maxPower) const
{
    VdebAssignment out;
    assignInto(socJoules, totalPower, maxPower, out);
    return out;
}

void
VdebController::assignInto(const std::vector<Joules> &socJoules,
                           Watts totalPower, Watts maxPower,
                           VdebAssignment &out) const
{
    const std::size_t n = socJoules.size();
    PAD_ASSERT(n > 0);

    out.power.assign(n, 0.0);
    out.even = false;
    out.shaveTarget = std::max(0.0, totalPower - maxPower);
    if (out.shaveTarget <= 0.0)
        return;

    const Watts pIdeal = config_.idealDischargePower;
    const Watts shave = out.shaveTarget;

    // Fallback branch: the deficit exceeds what capped assignment
    // could ever deliver, so split evenly (accepting aging risk to
    // avoid an immediate overload).
    if (shave >= pIdeal * static_cast<double>(n)) {
        std::fill(out.power.begin(), out.power.end(),
                  shave / static_cast<double>(n));
        out.even = true;
        if (obs::traceEnabled())
            obs::emit("vdeb", "vdeb.assign",
                      {obs::TraceField::num("shave_w", out.shaveTarget),
                       obs::TraceField::boolean("even", true),
                       obs::TraceField::num(
                           "max_rate_w",
                           shave / static_cast<double>(n))});
        return;
    }

    // Sort rack indices by SOC, descending (Algorithm 1 line 9-10).
    // This runs every step under vDEB sharing; the Optimized profile
    // reuses a sort scratch instead of allocating one per call.
    std::vector<std::size_t> localOrder;
    std::vector<std::size_t> &order =
        engineTuning().stepScratchReuse ? orderScratch_ : localOrder;
    order.resize(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return socJoules[a] > socJoules[b];
                     });

    double socRemaining =
        std::accumulate(socJoules.begin(), socJoules.end(), 0.0);
    Watts shaveRemaining = shave;

    // Pin the highest-SOC racks at P_ideal while their proportional
    // share of the remaining deficit exceeds the cap.
    std::size_t i = 0;
    for (; i < n; ++i) {
        const std::size_t rack = order[i];
        if (socRemaining <= 0.0)
            break;
        const Watts share =
            socJoules[rack] / socRemaining * shaveRemaining;
        if (share <= pIdeal)
            break;
        out.power[rack] = pIdeal;
        socRemaining -= socJoules[rack];
        shaveRemaining -= pIdeal;
        if (shaveRemaining <= 0.0)
            break;
    }

    // Split the remainder SOC-proportionally across the rest
    // (Algorithm 1 lines 16-18). Units with zero SOC get nothing.
    if (shaveRemaining > 0.0 && socRemaining > 0.0) {
        for (std::size_t j = i; j < n; ++j) {
            const std::size_t rack = order[j];
            out.power[rack] =
                socJoules[rack] / socRemaining * shaveRemaining;
        }
    }
    if (obs::traceEnabled())
        obs::emit("vdeb", "vdeb.assign",
                  {obs::TraceField::num("shave_w", out.shaveTarget),
                   obs::TraceField::boolean("even", false),
                   obs::TraceField::num(
                       "max_rate_w",
                       *std::max_element(out.power.begin(),
                                         out.power.end()))});
}

} // namespace pad::core
