/**
 * @file
 * Capital-cost model for the PAD hardware additions (paper §VI-D,
 * Fig. 17). The µDEB super-capacitors cost 10-30 $/Wh (paper
 * §IV-B.2); the vDEB reuses lead-acid cabinets the data center
 * already owns, so only the µDEB is treated as overhead and the
 * figure reports its cost as a percentage of the vDEB investment.
 */

#ifndef PAD_CORE_COST_MODEL_H
#define PAD_CORE_COST_MODEL_H

#include "battery/battery_unit.h"
#include "core/udeb.h"

namespace pad::core {

/** Unit prices. */
struct CostModelConfig {
    /** Super-capacitor cost, $/Wh (paper: 10-30). */
    double supercapCostPerWh = 20.0;
    /** Installed lead-acid cost, $/Wh. */
    double batteryCostPerWh = 4.0;
};

/**
 * Dollar figures for the evaluated deployment.
 */
class CostModel
{
  public:
    explicit CostModel(const CostModelConfig &config = {});

    /** Total µDEB cost for @p racks racks, dollars. */
    double udebCost(const MicroDebConfig &udeb, int racks) const;

    /** Total vDEB (battery cabinet) cost for @p racks racks. */
    double vdebCost(const battery::BatteryUnitConfig &deb,
                    int racks) const;

    /** µDEB cost as a fraction of vDEB cost. */
    double costRatio(const MicroDebConfig &udeb,
                     const battery::BatteryUnitConfig &deb) const;

    /** Static configuration. */
    const CostModelConfig &config() const { return config_; }

  private:
    CostModelConfig config_;
};

} // namespace pad::core

#endif // PAD_CORE_COST_MODEL_H
