#include "core/campaign.h"

#include <algorithm>

#include "util/logging.h"

namespace pad::core {

CampaignDriver::CampaignDriver(DataCenter &dc,
                               std::vector<CampaignAttack> attacks)
    : dc_(dc), attacks_(std::move(attacks))
{
    std::stable_sort(attacks_.begin(), attacks_.end(),
                     [](const CampaignAttack &a,
                        const CampaignAttack &b) {
                         return a.startAt < b.startAt;
                     });
}

CampaignReport
CampaignDriver::run(Tick until)
{
    CampaignReport report;
    const double demandBefore = dc_.perf().demandedWork();
    const double execBefore = dc_.perf().executedWork();

    // Order the strikes through the event queue; between events the
    // data center runs normal coarse operation.
    sim::EventQueue events;
    for (std::size_t i = 0; i < attacks_.size(); ++i) {
        if (attacks_[i].startAt >= dc_.now() &&
            attacks_[i].startAt < until)
            events.schedule(attacks_[i].startAt, [this, i, &report] {
                const CampaignAttack &strike = attacks_[i];
                attack::TwoPhaseAttacker attacker(strike.attacker);
                const AttackOutcome out =
                    dc_.runAttack(attacker, strike.scenario);
                CampaignStrike record;
                record.startedAt = strike.startAt;
                record.survivalSec = out.survivalSec;
                record.effectiveAttacks = out.rack.effectiveAttacks();
                record.throughput = out.throughput;
                record.overloaded =
                    out.survivalSec < strike.scenario.durationSec;
                report.successfulStrikes += record.overloaded;
                report.strikes.push_back(record);
            });
    }

    while (true) {
        const Tick next = events.nextEventTick();
        if (next == kTickNever || next > until)
            break;
        dc_.runCoarseUntil(next);
        events.runUntil(next);
    }
    dc_.runCoarseUntil(until);

    const double demanded = dc_.perf().demandedWork() - demandBefore;
    const double executed = dc_.perf().executedWork() - execBefore;
    report.overallThroughput =
        demanded > 0.0 ? executed / demanded : 1.0;
    return report;
}

} // namespace pad::core
