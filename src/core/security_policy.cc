#include "core/security_policy.h"

#include "obs/tracer.h"
#include "util/logging.h"

namespace pad::core {

std::string
securityLevelName(SecurityLevel level)
{
    switch (level) {
      case SecurityLevel::Normal:
        return "L1-Normal";
      case SecurityLevel::MinorIncident:
        return "L2-MinorIncident";
      case SecurityLevel::Emergency:
        return "L3-Emergency";
    }
    PAD_PANIC("unreachable security level");
}

SecurityLevel
initialLevel(const PolicyInputs &in, bool strict)
{
    // Fig. 9 initial-state table, rows ordered [vDEB, µDEB, VP].
    if (!in.vdebAvailable) {
        if (!in.udebAvailable)
            return SecurityLevel::Emergency; // (0,0,*)
        return in.visiblePeak ? SecurityLevel::Emergency   // (0,1,1)
                              : SecurityLevel::MinorIncident; // (0,1,0)
    }
    if (!in.udebAvailable) {
        // (1,0,*): unspecified in the paper; strictness decides.
        return strict ? SecurityLevel::MinorIncident
                      : SecurityLevel::Normal;
    }
    return SecurityLevel::Normal; // (1,1,*)
}

SecurityPolicy::SecurityPolicy(bool strict) : strict_(strict) {}

void
SecurityPolicy::reset(const PolicyInputs &in)
{
    started_ = true;
    level_ = initialLevel(in, strict_);
    if (level_ == SecurityLevel::Emergency)
        ++emergencies_;
}

void
SecurityPolicy::setLevel(SecurityLevel next)
{
    if (next == level_)
        return;
    if (obs::traceEnabled())
        obs::emit("policy", "policy.transition",
                  {obs::TraceField::str("from",
                                        securityLevelName(level_)),
                   obs::TraceField::str("to", securityLevelName(next)),
                   obs::TraceField::integer(
                       "transitions",
                       static_cast<std::int64_t>(transitions_ + 1))});
    level_ = next;
    ++transitions_;
    if (next == SecurityLevel::Emergency)
        ++emergencies_;
}

SecurityLevel
SecurityPolicy::update(const PolicyInputs &in)
{
    if (!started_) {
        reset(in);
        return level_;
    }

    const SecurityLevel target = initialLevel(in, strict_);

    // The Fig. 9 automaton only has adjacent-level edges
    // (L1 <-> L2 <-> L3), so move one step toward the target per
    // control period.
    const int cur = static_cast<int>(level_);
    const int want = static_cast<int>(target);
    if (want > cur)
        setLevel(static_cast<SecurityLevel>(cur + 1));
    else if (want < cur)
        setLevel(static_cast<SecurityLevel>(cur - 1));
    return level_;
}

} // namespace pad::core
