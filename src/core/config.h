/**
 * @file
 * Top-level configuration of the simulated data center, mirroring
 * the paper's evaluation setup (§V): 22 racks x 10 HP ProLiant
 * DL585 G5 servers, one Facebook-V1-style battery cabinet per rack
 * sized for 50 s at full rack load, KiBaM battery dynamics, and an
 * oversubscribed two-stage power distribution.
 */

#ifndef PAD_CORE_CONFIG_H
#define PAD_CORE_CONFIG_H

#include <cstdint>

#include "battery/battery_unit.h"
#include "battery/charge_policy.h"
#include "core/schemes.h"
#include "core/udeb.h"
#include "core/vdeb.h"
#include "power/circuit_breaker.h"
#include "power/server_power_model.h"
#include "util/types.h"

namespace pad::core {

/** Full data-center configuration. */
struct DataCenterConfig {
    /** Number of racks (paper: 22). */
    int racks = 22;
    /** Servers per rack (paper: 10). */
    int serversPerRack = 10;

    /** Server power behaviour (paper: DL585 G5, 299/521 W). */
    power::ServerPowerConfig server;

    /**
     * Per-rack power budget (soft limit lambda_i) as a fraction of
     * rack nameplate. The paper sweeps 55-70% for attack studies;
     * sustained operation with this server's 57% idle/peak ratio
     * needs ~0.75+.
     */
    double budgetFraction = 0.75;

    /**
     * Cluster (PDU) budget as a fraction of total nameplate; <0
     * follows budgetFraction. Real iPDUs oversubscribe outlets, so
     * the sum of rack soft limits may exceed the PDU budget — this
     * knob sets how power-constrained the facility is overall.
     */
    double clusterBudgetFraction = -1.0;

    /**
     * Overload tolerance: an effective attack is a draw above
     * budget x (1 + overshootTolerance) (paper Fig. 8 sweeps 4-16%).
     */
    double overshootTolerance = 0.08;

    /**
     * Overload tolerance at the PDU when capacity sharing is active:
     * a shared PDU runs at its physical budget with the battery pool
     * absorbing the slack, so little headroom remains above it.
     */
    double clusterOvershootTolerance = 0.02;

    /** Where the DEB capacity physically lives (paper Fig. 3). */
    enum class DebPlacement {
        /** One battery cabinet per rack (option 3, Facebook V1). */
        RackCabinet,
        /** One small BBU inside every server (option 4, HP/Quanta). */
        PerServer,
    };

    /** DEB placement granularity. */
    DebPlacement debPlacement = DebPlacement::RackCabinet;

    /**
     * Per-rack DEB capacity (default ~50 s at full rack load). With
     * PerServer placement the same total capacity is split evenly
     * across the rack's servers, each with its own LVD.
     */
    battery::BatteryUnitConfig deb;

    /** Recharge policy for the DEB fleet. */
    battery::ChargeControllerConfig charge;

    /** Power-management scheme under evaluation. */
    SchemeKind scheme = SchemeKind::Pad;

    /**
     * Ablation hook: replace the scheme's behaviour switches with an
     * explicit combination (e.g. capping + sharing, which no Table
     * III scheme has).
     */
    bool overrideTraits = false;
    /** The traits used when overrideTraits is set. */
    SchemeTraits traits;

    /** vDEB controller parameters. */
    VdebConfig vdeb;

    /** µDEB parameters (used when the scheme has udebSpikes). */
    MicroDebConfig udeb;

    /** Rack breaker characteristics (ratedPower derived). */
    power::CircuitBreakerConfig rackBreaker;

    /**
     * Hard rack circuit rating as a multiple of the rack soft
     * budget; the breaker heats above it.
     */
    double rackBreakerMargin = 1.15;

    /** Coarse simulation step (trace granularity). */
    Tick coarseStep = 5 * kTicksPerMinute;

    /** Fine simulation step for attack windows. */
    Tick fineStep = 100; // 100 ms

    /** Control period for policy/vDEB decisions during attacks. */
    Tick controlPeriod = kTicksPerSecond;

    /**
     * Visible-peak detector: rack power averaged over this window
     * must exceed the rack budget to raise VP.
     */
    Tick vpWindow = 30 * kTicksPerSecond;

    /** Server deep-sleep power when shed, watts. */
    Watts sleepPower = 15.0;

    /**
     * Time a rack stays dark after its breaker trips before service
     * is restored, seconds (detection + restart).
     */
    double outageRecoverySec = 300.0;

    /**
     * Shedding trigger: shed when the cluster-level deficit exceeds
     * this fraction of the cluster budget while backup is exhausted.
     */
    double shedTriggerFraction = 0.02;

    /**
     * Detection-triggered response (paper §III-B): when enabled,
     * interval-averaged per-rack metering flags anomalies and the
     * data center reacts with *cluster-wide* DVFS capping for a hold
     * period — effective against what it can see, but "may well be
     * overkill and could significantly affect other legitimate
     * service requests".
     */
    bool detectorResponse = false;
    /** Metering interval of the detector (Table I's sweep axis). */
    Tick detectorInterval = 10 * kTicksPerSecond;
    /** Relative margin over the rack's rolling average to flag. */
    double detectorMargin = 0.05;
    /** How long a detection keeps the cluster capped, seconds. */
    double detectorCapHoldSec = 120.0;

    /** Deterministic seed for workload jitter etc. */
    std::uint64_t seed = 1234;

    /** Derived: rack nameplate power. */
    Watts
    rackNameplate() const
    {
        return server.peakPower * serversPerRack;
    }

    /** Derived: per-rack soft budget. */
    Watts
    rackBudget() const
    {
        return budgetFraction * rackNameplate();
    }

    /** Derived: cluster (PDU) budget. */
    Watts
    clusterBudget() const
    {
        const double frac = clusterBudgetFraction > 0.0
                                ? clusterBudgetFraction
                                : budgetFraction;
        return frac * rackNameplate() * racks;
    }

    /** Derived: effective-attack limit at rack level. */
    Watts
    rackOverloadLimit() const
    {
        return rackBudget() * (1.0 + overshootTolerance);
    }

    /** Derived: effective-attack limit at cluster level. */
    Watts
    clusterOverloadLimit() const
    {
        return clusterBudget() * (1.0 + overshootTolerance);
    }

    /** Total number of servers. */
    int
    totalServers() const
    {
        return racks * serversPerRack;
    }
};

/**
 * Default DEB sizing helper: capacity for @p seconds at full rack
 * load of @p rackNameplate watts (paper: 50 s, Facebook V1).
 */
battery::BatteryUnitConfig defaultDebConfig(Watts rackNameplate,
                                            double seconds = 50.0);

} // namespace pad::core

#endif // PAD_CORE_CONFIG_H
