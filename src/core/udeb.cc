#include "core/udeb.h"

#include <algorithm>

#include "obs/tracer.h"
#include "util/logging.h"

namespace pad::core {

MicroDeb::MicroDeb(std::string name, const MicroDebConfig &config)
    : name_(std::move(name)), config_(config),
      cap_(name_ + ".cap", config.cap)
{
    PAD_ASSERT(config_.maxEngagementSec > 0.0);
    PAD_ASSERT(config_.rechargePower >= 0.0);
}

Watts
MicroDeb::shave(Watts excess, double dt)
{
    PAD_ASSERT(excess >= 0.0 && dt >= 0.0);
    if (excess <= 0.0 || dt == 0.0) {
        engagedFor_ = 0.0;
        return 0.0;
    }
    // Engagement-duration guard: the ORing backs off when the
    // "spike" turns out to be a sustained peak.
    if (engagedFor_ >= config_.maxEngagementSec)
        return 0.0;
    const double window =
        std::min(dt, config_.maxEngagementSec - engagedFor_);
    const Joules delivered = cap_.discharge(excess, window);
    engagedFor_ += dt;
    const Watts shaved = delivered / dt;
    if (shaved > 0.0 && obs::traceEnabled())
        obs::emit(name_, "udeb.shave",
                  {obs::TraceField::num("excess_w", excess),
                   obs::TraceField::num("shaved_w", shaved),
                   obs::TraceField::num("soc", cap_.soc()),
                   obs::TraceField::num("engaged_sec", engagedFor_)});
    return shaved;
}

Watts
MicroDeb::recharge(Watts headroom, double dt)
{
    PAD_ASSERT(dt >= 0.0);
    engagedFor_ = 0.0;
    if (headroom <= 0.0 || dt == 0.0)
        return 0.0;
    const Watts offer = std::min(headroom, config_.rechargePower);
    const Joules absorbed = cap_.charge(offer, dt);
    return absorbed / dt;
}

void
MicroDeb::setSoc(double soc)
{
    cap_.setSoc(soc);
    engagedFor_ = 0.0;
}

} // namespace pad::core
