#include "core/datacenter.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/tracer.h"
#include "util/engine_tuning.h"
#include "util/logging.h"

namespace pad::core {

namespace {

/** Stable pseudo-random shedding priority for a server id. */
int
shedPriority(std::size_t serverIdx)
{
    return static_cast<int>((serverIdx * 2654435761ULL) % 97);
}

} // namespace

Joules
DataCenter::RackState::stored() const
{
    Joules total = 0.0;
    for (const auto &u : debs)
        total += u->stored();
    return total;
}

Joules
DataCenter::RackState::capacity() const
{
    Joules total = 0.0;
    for (const auto &u : debs)
        total += u->capacity();
    return total;
}

double
DataCenter::RackState::soc() const
{
    return stored() / std::max(capacity(), 1e-9);
}

Watts
DataCenter::RackState::availablePower(double dt) const
{
    Watts total = 0.0;
    for (const auto &u : debs)
        total += u->availablePower(dt);
    return total;
}

bool
DataCenter::RackState::unavailable() const
{
    for (const auto &u : debs)
        if (!u->unavailable())
            return false;
    return true;
}

Watts
DataCenter::RackState::discharge(Watts want, double dtSec,
                                 const std::vector<Watts> &unitDrawBound)
{
    PAD_ASSERT(unitDrawBound.size() == debs.size());
    if (want <= 0.0) {
        rest(dtSec);
        return 0.0;
    }
    const Joules total = stored();
    Watts delivered = 0.0;
    for (std::size_t i = 0; i < debs.size(); ++i) {
        const double share =
            total > 0.0 ? debs[i]->stored() / total : 0.0;
        const Watts ask =
            std::min(want * share, unitDrawBound[i]);
        if (ask > 0.0)
            delivered += debs[i]->discharge(ask, dtSec) / dtSec;
        else
            debs[i]->rest(dtSec);
    }
    return delivered;
}

void
DataCenter::RackState::rest(double dtSec)
{
    for (auto &u : debs)
        u->rest(dtSec);
}

void
DataCenter::RackState::recharge(Watts headroom, double dtSec)
{
    if (!unitCache.empty()) {
        charger->recharge(unitCache, headroom, dtSec);
        return;
    }
    std::vector<battery::BatteryUnit *> units;
    units.reserve(debs.size());
    for (auto &u : debs)
        units.push_back(u.get());
    charger->recharge(units, headroom, dtSec);
}

int
rackByLoadPercentile(const trace::Workload &workload,
                     const DataCenterConfig &config, Tick from, Tick to,
                     double percentile)
{
    PAD_ASSERT(to > from);
    PAD_ASSERT(percentile >= 0.0 && percentile <= 100.0);
    power::ServerPowerModel model(config.server);
    std::vector<std::pair<double, int>> byPower;
    for (int r = 0; r < config.racks; ++r) {
        double acc = 0.0;
        int samples = 0;
        for (Tick t = from; t < to; t += config.coarseStep) {
            for (int s = 0; s < config.serversPerRack; ++s) {
                const int machine = r * config.serversPerRack + s;
                acc += model.power(workload.utilAt(machine, t));
            }
            ++samples;
        }
        byPower.emplace_back(acc / std::max(samples, 1), r);
    }
    std::sort(byPower.begin(), byPower.end());
    const auto idx = static_cast<std::size_t>(
        percentile / 100.0 *
        static_cast<double>(byPower.size() - 1));
    return byPower[idx].second;
}

DataCenter::DataCenter(const DataCenterConfig &config,
                       const trace::Workload *workload)
    : config_(config),
      traits_(config.overrideTraits ? config.traits
                                    : schemeTraits(config.scheme)),
      workload_(workload), serverModel_(config.server),
      vdeb_(config.vdeb), policy_(true)
{
    PAD_ASSERT(workload_ != nullptr);
    PAD_ASSERT(config_.racks > 0 && config_.serversPerRack > 0);
    PAD_ASSERT(workload_->machines() >= config_.totalServers(),
               "workload has fewer machines than the cluster");

    racks_.resize(static_cast<std::size_t>(config_.racks));
    assigned_.assign(racks_.size(), 0.0);
    shed_.assign(static_cast<std::size_t>(config_.totalServers()), 0);

    for (int r = 0; r < config_.racks; ++r) {
        auto &rack = racks_[static_cast<std::size_t>(r)];
        const std::string base = "rack" + std::to_string(r);
        if (config_.debPlacement ==
            DataCenterConfig::DebPlacement::RackCabinet) {
            rack.debs.push_back(std::make_unique<battery::BatteryUnit>(
                base + ".deb", config_.deb));
        } else {
            // Split the cabinet into per-server BBUs, same total
            // capacity, per-unit rate limits scaled down.
            battery::BatteryUnitConfig unit = config_.deb;
            const double n = config_.serversPerRack;
            unit.capacityWh /= n;
            unit.maxDischargePower /= n;
            unit.maxChargePower /= n;
            for (int s = 0; s < config_.serversPerRack; ++s)
                rack.debs.push_back(
                    std::make_unique<battery::BatteryUnit>(
                        base + ".bbu" + std::to_string(s), unit));
        }
        if (traits_.udebSpikes)
            rack.udeb =
                std::make_unique<MicroDeb>(base + ".udeb", config_.udeb);
        // Without sharing, the enforcement point is the rack's soft
        // overload limit: sustained violation trips the circuit.
        // With iPDU sharing, draws up to the wire's hard rating are
        // legitimate, so only that rating is breaker-protected.
        power::CircuitBreakerConfig bc = config_.rackBreaker;
        bc.ratedPower =
            traits_.vdebSharing
                ? config_.rackBudget() * config_.rackBreakerMargin
                : config_.rackOverloadLimit();
        bc.holdRatio = 1.02;
        bc.thermalCapacity = 0.5;
        rack.breaker = std::make_unique<power::CircuitBreaker>(
            base + ".breaker", bc);
        rack.charger = std::make_unique<battery::ChargeController>(
            config_.charge);
        if (config_.detectorResponse)
            rack.meter = std::make_unique<power::PowerMeter>(
                base + ".meter", config_.detectorInterval);
    }

    if (engineTuning().stepScratchReuse) {
        for (auto &rack : racks_) {
            rack.unitCache.reserve(rack.debs.size());
            for (auto &u : rack.debs)
                rack.unitCache.push_back(u.get());
        }
    }
}

void
DataCenter::detectorStep(const StepPower &step, Tick dt)
{
    if (!config_.detectorResponse)
        return;
    for (std::size_t r = 0; r < racks_.size(); ++r) {
        auto &rack = racks_[r];
        rack.meter->observe(step.rackDraw[r], dt);
        const auto &readings = rack.meter->readings();
        for (; rack.meterScanned < readings.size();
             ++rack.meterScanned) {
            const Watts avg = readings[rack.meterScanned].average;
            // Flag when the metered average rises measurably above
            // the rack's rolling expectation.
            if (rack.vpEnergy > 0.0 &&
                avg > rack.vpEnergy * (1.0 + config_.detectorMargin)) {
                ++detections_;
                if (firstDetectionTick_ == kTickNever)
                    firstDetectionTick_ = now_;
                clusterCapUntil_ =
                    now_ + secondsToTicks(config_.detectorCapHoldSec);
                if (obs::traceEnabled())
                    obs::emit("detector", "detector.anomaly",
                              {obs::TraceField::integer(
                                   "rack",
                                   static_cast<std::int64_t>(r)),
                               obs::TraceField::num("avg_w", avg),
                               obs::TraceField::num("expected_w",
                                                    rack.vpEnergy)});
            }
        }
    }
}

int
DataCenter::machineId(int rack, int server) const
{
    return rack * config_.serversPerRack + server;
}

std::size_t
DataCenter::serverIndex(int rack, int server) const
{
    return static_cast<std::size_t>(machineId(rack, server));
}

bool
DataCenter::isShed(int rack, int server) const
{
    return shed_[serverIndex(rack, server)];
}

double
DataCenter::serverDemand(int rack, int server, Tick t, bool fine) const
{
    const int machine = machineId(rack, server);
    if (demand_.tick == t && demand_.fine == fine)
        return demand_.values[static_cast<std::size_t>(machine)];
    return fine ? workload_->utilFine(machine, t)
                : workload_->utilAt(machine, t);
}

const std::vector<double> &
DataCenter::refreshDemand(Tick t, bool fine)
{
    DemandCache &dc = demand_;
    if (dc.tick == t && dc.fine == fine) {
        if (prof_)
            prof_->demandHit();
        return dc.values;
    }
    if (prof_)
        prof_->demandMiss();
    const obs::PhaseScope profScope(
        prof_, obs::EngineProfiler::Phase::DemandEval);

    const auto machines =
        static_cast<std::size_t>(config_.totalServers());
    const std::size_t slot = workload_->slotAt(t);
    if (dc.slot != slot || dc.base.size() != machines) {
        dc.base.resize(machines);
        for (std::size_t m = 0; m < machines; ++m)
            dc.base[m] =
                workload_->utilAtSlot(static_cast<int>(m), slot);
        dc.slot = slot;
        dc.second = ~std::uint64_t{0};
    }
    if (fine) {
        const auto second =
            static_cast<std::uint64_t>(t / kTicksPerSecond);
        if (dc.second != second || dc.values.size() != machines) {
            dc.values.resize(machines);
            for (std::size_t m = 0; m < machines; ++m)
                dc.values[m] = trace::Workload::combineFine(
                    dc.base[m],
                    trace::Workload::jitterAt(static_cast<int>(m),
                                              second),
                    trace::kDefaultFineNoiseAmp);
            dc.second = second;
        }
    } else {
        dc.values = dc.base;
        dc.second = ~std::uint64_t{0}; // values hold no jitter now
    }
    dc.tick = t;
    dc.fine = fine;
    return dc.values;
}

void
DataCenter::computeStep(StepPower &step, Tick t, double dtSec, bool fine,
                        const attack::TwoPhaseAttacker *attacker,
                        const AttackScenario *scenario,
                        const std::vector<bool> *victimMask,
                        double attackRelSec, bool attackerActive,
                        sched::PerfMonitor *windowPerf)
{
    step.rackPower.assign(racks_.size(), 0.0);
    step.rackDraw.assign(racks_.size(), 0.0);
    step.rackUncapped.assign(racks_.size(), 0.0);
    step.serverPower.assign(
        static_cast<std::size_t>(config_.totalServers()), 0.0);
    step.totalPower = 0.0;
    step.totalDraw = 0.0;
    step.shedSuppressed = 0.0;

    // Per-step invariants, hoisted out of the per-server walk.
    const EngineTuning &tuning = engineTuning();
    const bool sharedEval = tuning.serverPowerSharedEval;
    const double *demand =
        tuning.tickDemandCache ? refreshDemand(t, fine).data() : nullptr;
    const std::uint8_t *shedFlags = shed_.data();
    double *serverPower = step.serverPower.data();

    for (int r = 0; r < config_.racks; ++r) {
        auto &rack = racks_[static_cast<std::size_t>(r)];
        const std::size_t rackBase =
            static_cast<std::size_t>(r) *
            static_cast<std::size_t>(config_.serversPerRack);

        // A rack whose breaker tripped is dark until service is
        // restored; its demanded work is lost outright.
        if (t < rack.downUntil) {
            const bool victimRack =
                victimMask &&
                (*victimMask)[static_cast<std::size_t>(r)] && scenario;
            for (int s = 0; s < config_.serversPerRack; ++s) {
                const double demandU =
                    demand ? demand[rackBase +
                                    static_cast<std::size_t>(s)]
                           : serverDemand(r, s, t, fine);
                const bool malicious =
                    victimRack && s < scenario->maliciousNodes;
                if (!malicious) {
                    perf_.recordShed(demandU, dtSec);
                    if (windowPerf)
                        windowPerf->recordShed(demandU, dtSec);
                }
            }
            continue;
        }

        const bool attackedRack =
            attacker && scenario && victimMask &&
            (*victimMask)[static_cast<std::size_t>(r)];
        const double dvfs = rack.dvfs;
        double rackTotal = 0.0;
        double rackUncapped = 0.0;
        for (int s = 0; s < config_.serversPerRack; ++s) {
            const std::size_t idx =
                rackBase + static_cast<std::size_t>(s);
            double demandU = demand ? demand[idx]
                                    : serverDemand(r, s, t, fine);
            bool malicious = false;
            if (attackedRack && s < scenario->maliciousNodes) {
                malicious = true;
                if (attackerActive)
                    demandU = std::max(
                        demandU,
                        attacker->demandedUtil(s, attackRelSec));
            }

            double powerW;
            double executed;
            if (shedFlags[idx]) {
                powerW = config_.sleepPower;
                executed = 0.0;
                step.shedSuppressed +=
                    serverModel_.power(demandU, dvfs) - powerW;
            } else if (sharedEval) {
                // One pow() yields capped power, uncapped power and
                // executed throughput (bit-identical to the scalar
                // accessors below).
                double uncapped;
                serverModel_.evaluate(demandU, dvfs, powerW, uncapped,
                                      executed);
                rackUncapped += uncapped;
            } else {
                powerW = serverModel_.power(demandU, dvfs);
                executed = serverModel_.executed(demandU, dvfs);
                rackUncapped += serverModel_.power(demandU, 1.0);
            }
            serverPower[idx] = powerW;
            rackTotal += powerW;

            if (!malicious) {
                perf_.record(demandU, executed, dtSec);
                if (windowPerf)
                    windowPerf->record(demandU, executed, dtSec);
            }
        }
        step.rackPower[static_cast<std::size_t>(r)] = rackTotal;
        step.rackUncapped[static_cast<std::size_t>(r)] = rackUncapped;
        step.totalPower += rackTotal;
    }
}

void
DataCenter::applyShaving(StepPower &step, double dtSec)
{
    const Watts budget = config_.rackBudget();
    const Watts hardLimit = budget * config_.rackBreakerMargin;
    step.rackShaved.assign(racks_.size(), 0.0);

    const bool perServer =
        config_.debPlacement ==
        DataCenterConfig::DebPlacement::PerServer;

    // Bound on what each unit may offset: its own server's draw with
    // per-server placement, the rack's draw for a cabinet. The
    // Optimized profile reuses one scratch vector across racks.
    const bool reuse = engineTuning().stepScratchReuse;
    std::vector<Watts> localBounds;
    auto unitBounds =
        [&](std::size_t r) -> const std::vector<Watts> & {
        auto &rack = racks_[r];
        std::vector<Watts> &bounds =
            reuse ? boundsScratch_ : localBounds;
        bounds.assign(rack.debs.size(), 0.0);
        if (perServer) {
            for (std::size_t s = 0; s < bounds.size(); ++s)
                bounds[s] = step.serverPower[serverIndex(
                    static_cast<int>(r), static_cast<int>(s))];
        } else {
            bounds[0] = step.rackPower[r];
        }
        return bounds;
    };

    if (traits_.vdebSharing) {
        // Cluster-level assignment (Algorithm 1) against the PDU
        // budget, recomputed from live SOC each step.
        std::vector<Joules> localSoc;
        std::vector<Joules> &soc = reuse ? socScratch_ : localSoc;
        soc.resize(racks_.size());
        for (std::size_t r = 0; r < racks_.size(); ++r)
            soc[r] = racks_[r].stored();
        VdebAssignment localPlan;
        VdebAssignment &plan = reuse ? planScratch_ : localPlan;
        vdeb_.assignInto(soc, step.totalPower,
                         config_.clusterBudget(), plan);
        assigned_ = plan.power;

        for (std::size_t r = 0; r < racks_.size(); ++r) {
            auto &rack = racks_[r];
            const double powerW = step.rackPower[r];
            const auto &bounds = unitBounds(r);
            // A rack cannot offset more than its own draw.
            const Watts want = std::min(plan.power[r], powerW);
            Watts shaved = 0.0;
            if (traits_.peakShaving && want > 0.0)
                shaved = rack.discharge(want, dtSec, bounds);
            else
                rack.rest(dtSec);
            double draw = powerW - shaved;
            // Protect the rack's own wire: extra local discharge if
            // the draw still exceeds the hard circuit rating.
            if (draw > hardLimit) {
                const Watts extra = rack.discharge(
                    draw - hardLimit, dtSec, bounds);
                draw -= extra;
                shaved += extra;
            }
            step.rackDraw[r] = draw;
            step.rackShaved[r] = shaved;
        }
    } else {
        const Watts serverBudget =
            budget / static_cast<double>(config_.serversPerRack);
        for (std::size_t r = 0; r < racks_.size(); ++r) {
            auto &rack = racks_[r];
            const double powerW = step.rackPower[r];
            Watts shaved = 0.0;
            if (!traits_.peakShaving) {
                rack.rest(dtSec);
            } else if (perServer) {
                // Each BBU shaves only its own server's excess over
                // the per-server share of the rack budget.
                for (std::size_t s = 0; s < rack.debs.size(); ++s) {
                    const Watts p = step.serverPower[serverIndex(
                        static_cast<int>(r), static_cast<int>(s))];
                    const Watts excess =
                        std::max(0.0, p - serverBudget);
                    if (excess > 0.0)
                        shaved += rack.debs[s]->discharge(
                                      excess, dtSec) /
                                  dtSec;
                    else
                        rack.debs[s]->rest(dtSec);
                }
            } else {
                const Watts excess = std::max(0.0, powerW - budget);
                if (excess > 0.0)
                    shaved = rack.discharge(excess, dtSec,
                                            unitBounds(r));
                else
                    rack.rest(dtSec);
            }
            step.rackDraw[r] = powerW - shaved;
            step.rackShaved[r] = shaved;
        }
    }

    step.totalDraw = std::accumulate(step.rackDraw.begin(),
                                     step.rackDraw.end(), 0.0);
}

std::vector<Watts>
DataCenter::rackLimits(const StepPower &step) const
{
    std::vector<Watts> limits;
    fillRackLimits(step, limits);
    return limits;
}

void
DataCenter::fillRackLimits(const StepPower &step,
                           std::vector<Watts> &limits) const
{
    const Watts budget = config_.rackBudget();
    const Watts hardLimit = budget * config_.rackBreakerMargin;
    limits.resize(racks_.size());

    if (!traits_.vdebSharing) {
        std::fill(limits.begin(), limits.end(),
                  config_.rackOverloadLimit());
        return;
    }

    // Capacity sharing: the iPDU may raise a rack's soft limit by
    // the headroom the *other* racks actually leave on the PDU
    // (natural slack plus what their batteries freed), never beyond
    // the rack's hard circuit rating.
    Watts totalHeadroom = 0.0;
    for (std::size_t r = 0; r < racks_.size(); ++r)
        totalHeadroom += std::max(0.0, budget - step.rackDraw[r]);
    for (std::size_t r = 0; r < racks_.size(); ++r) {
        const Watts own = std::max(0.0, budget - step.rackDraw[r]);
        const Watts shared = totalHeadroom - own;
        const Watts allocation =
            std::min(hardLimit, budget + shared);
        limits[r] = allocation * (1.0 + config_.overshootTolerance);
    }
}

void
DataCenter::applyUdeb(StepPower &step, const std::vector<Watts> &limits,
                      double dtSec)
{
    // µDEB: automatic ORing response.
    //
    // Without sharing it lets sustained above-budget (but
    // below-limit) operation pass -- those visible peaks belong to
    // peak shaving/capping -- and absorbs only the offending part of
    // hidden spikes.
    //
    // Under vDEB sharing the pool normally holds every rack at its
    // budget, so anything still above budget after shaving is pool
    // shortfall (e.g. a synchronized LVD cascade mid-spike); the
    // µDEB bridges those seconds until the software policy escalates
    // -- the "last line of defense against hidden spikes".
    if (!traits_.udebSpikes)
        return;
    const Watts budget = config_.rackBudget();
    // Under sharing, µDEBs stay out of the pool's way: they engage
    // only while the PDU itself is over budget (pool shortfall).
    const bool poolShortfall =
        step.totalDraw > config_.clusterBudget() + 1e-6;
    for (std::size_t r = 0; r < racks_.size(); ++r) {
        auto &rack = racks_[r];
        if (!rack.udeb)
            continue;
        Watts residual = 0.0;
        if (traits_.vdebSharing) {
            if (poolShortfall)
                residual = std::max(0.0, step.rackDraw[r] - budget);
        } else {
            residual =
                std::max(0.0, step.rackDraw[r] - limits[r] * 0.999);
        }
        // A zero-residual step disengages the ORing and resets its
        // engagement-duration guard.
        const Watts shaved = rack.udeb->shave(residual, dtSec);
        if (shaved > 0.0) {
            step.rackDraw[r] -= shaved;
            step.totalDraw -= shaved;
        }
    }
}

void
DataCenter::rechargeAll(const StepPower &step, double dtSec)
{
    const Watts budget = config_.rackBudget();
    for (std::size_t r = 0; r < racks_.size(); ++r) {
        auto &rack = racks_[r];
        Watts headroom = std::max(0.0, budget - step.rackDraw[r]);
        // µDEB refills first: tiny energy, highest urgency. Called
        // even with zero headroom so an idle step resets the ORing
        // engagement guard.
        if (rack.udeb && step.rackDraw[r] <= budget)
            headroom -= rack.udeb->recharge(headroom, dtSec);
        if (headroom <= 0.0)
            continue;
        // A unit that discharged this step cannot also charge.
        if (step.rackShaved[r] > 0.0)
            continue;
        rack.recharge(headroom, dtSec);
    }
}

void
DataCenter::controlDecisions(const StepPower &step, double dtSec)
{
    const Watts budget = config_.rackBudget();

    // Visible-peak detection: exponential moving average of each
    // rack's power against its budget.
    const double alpha =
        1.0 - std::exp(-dtSec / ticksToSeconds(config_.vpWindow));
    bool vp = false;
    for (std::size_t r = 0; r < racks_.size(); ++r) {
        auto &rack = racks_[r];
        rack.vpEnergy += alpha * (step.rackPower[r] - rack.vpEnergy);
        if (rack.vpEnergy > budget)
            vp = true;
    }
    if (vp != visiblePeak_ && obs::traceEnabled())
        obs::emit("detector", "detector.visible_peak",
                  {obs::TraceField::boolean("active", vp),
                   obs::TraceField::num("budget_w", budget)});
    visiblePeak_ = vp;

    // DVFS capping (PSPC): cap a rack once its DEB's remaining
    // runtime at the present excess falls under a safety window --
    // power managers cap on estimated battery minutes, not on the
    // instant the cabinet dies.
    if (traits_.dvfsCapping) {
        constexpr double kRuntimeWindowSec = 300.0;
        for (std::size_t r = 0; r < racks_.size(); ++r) {
            auto &rack = racks_[r];
            // Trigger on what the rack would draw at full frequency,
            // otherwise the cap un-sets itself every control period.
            const Watts excess = step.rackUncapped[r] - budget;
            const Joules floor = config_.deb.lvdDisconnectSoc *
                                 rack.capacity();
            const Joules usable =
                std::max(0.0, rack.stored() - floor);
            const bool needCap =
                excess > 0.0 && usable < excess * kRuntimeWindowSec;
            rack.dvfs = needCap ? traits_.dvfsFactor : 1.0;
        }
    }

    // Detector-triggered cluster-wide capping (paper §III-B): blunt
    // but immediate once an anomaly is flagged.
    if (config_.detectorResponse) {
        if (now_ < clusterCapUntil_) {
            for (auto &rack : racks_)
                rack.dvfs = traits_.dvfsFactor;
        } else if (!traits_.dvfsCapping) {
            for (auto &rack : racks_)
                rack.dvfs = 1.0;
        }
    }

    // Hierarchical policy + Level-3 shedding (PAD).
    if (traits_.shedding) {
        // The pool is "available" while it can still deliver a
        // meaningful share of the cluster budget; LVD-tripped units
        // hold stranded charge that counts for nothing.
        Watts poolPower = 0.0;
        for (const auto &rack : racks_)
            poolPower += rack.availablePower(1.0);
        bool udebOk = !traits_.udebSpikes;
        for (const auto &rack : racks_)
            if (rack.udeb && !rack.udeb->depleted())
                udebOk = true;

        PolicyInputs in;
        in.vdebAvailable =
            poolPower > 0.01 * config_.clusterBudget();
        in.udebAvailable = udebOk;
        in.visiblePeak = visiblePeak_;
        level_ = policy_.update(in);
        if (level_ != SecurityLevel::Normal &&
            firstEscalationTick_ == kTickNever)
            firstEscalationTick_ = now_;

        // Usable fraction of the pool's charge (above LVD floors).
        Joules usable = 0.0, usableCap = 0.0;
        for (const auto &rack : racks_) {
            const Joules floor = config_.deb.lvdDisconnectSoc *
                                 rack.capacity();
            usable += std::max(0.0, rack.stored() - floor);
            usableCap += rack.capacity() - floor;
        }
        const double poolUsable = usable / std::max(usableCap, 1.0);

        // Shedding engages at Level 3, or proactively during a
        // sustained cluster-wide peak that is aggressively draining
        // the pool ("only in extreme cases when cluster-wide power
        // peaks appear", paper §VI-A). The shortfall is measured on
        // *demand*: while the pool still shaves, the utility draw
        // sits exactly at the budget and would hide it.
        const Watts deficit = step.totalPower - config_.clusterBudget();
        // Once shedding has begun it stays engaged while the visible
        // peak persists, so residual (spike-driven) deficits keep
        // being closed instead of slowly bleeding the pool.
        const bool extreme =
            level_ == SecurityLevel::Emergency ||
            (visiblePeak_ &&
             (poolUsable < 0.5 || sheddedServers() > 0));
        if (extreme && deficit > config_.shedTriggerFraction *
                                     config_.clusterBudget()) {
            std::vector<sched::ShedCandidate> candidates;
            for (int r = 0; r < config_.racks; ++r) {
                for (int s = 0; s < config_.serversPerRack; ++s) {
                    const std::size_t idx = serverIndex(r, s);
                    if (shed_[idx])
                        continue;
                    const double perServer =
                        step.rackPower[static_cast<std::size_t>(r)] /
                        config_.serversPerRack;
                    candidates.push_back(sched::ShedCandidate{
                        static_cast<int>(idx),
                        perServer - config_.sleepPower,
                        shedPriority(idx)});
                }
            }
            const auto decision =
                shedder_.plan(std::move(candidates), deficit);
            for (int id : decision.serversToSleep)
                shed_[static_cast<std::size_t>(id)] = true;
        } else if (step.totalPower + step.shedSuppressed <=
                   config_.clusterBudget() * 0.98) {
            // The un-shed demand would fit again: wake everything.
            std::fill(shed_.begin(), shed_.end(), false);
        }
    }
}

void
DataCenter::setProfiler(obs::EngineProfiler *prof)
{
    prof_ = prof;
    if (prof_)
        profRefreshGauges();
}

void
DataCenter::profRefreshGauges()
{
    const auto bytes = [](const std::vector<double> &v) {
        return v.capacity() * sizeof(double);
    };
    // Scratch: the per-step buffers PR 4's tick restructuring reuses.
    std::size_t scratch = bytes(stepScratch_.rackPower) +
                          bytes(stepScratch_.rackDraw) +
                          bytes(stepScratch_.rackUncapped) +
                          bytes(stepScratch_.rackShaved) +
                          bytes(stepScratch_.serverPower) +
                          boundsScratch_.capacity() * sizeof(Watts) +
                          socScratch_.capacity() * sizeof(Joules) +
                          limitsScratch_.capacity() * sizeof(Watts);
    // Arena: the persistent demand-cache slot/value tables.
    std::size_t arena = bytes(demand_.base) + bytes(demand_.values);
    prof_->setScratchBytes(scratch);
    prof_->setArenaBytes(arena);
}

void
DataCenter::telemetrySample(const StepPower &step)
{
    if (!telemetry_)
        return;
    auto &hub = *telemetry_;
    const Watts budget = config_.rackBudget();
    double score = 0.0;
    for (std::size_t r = 0; r < racks_.size(); ++r) {
        const auto &rack = racks_[r];
        const std::string base = "rack" + std::to_string(r);
        hub.record(base + ".power", now_, step.rackPower[r]);
        hub.record(base + ".draw", now_, step.rackDraw[r]);
        hub.record(base + ".soc", now_, rack.soc());
        hub.record(base + ".udeb_soc", now_,
                   rack.udeb ? rack.udeb->soc() : 1.0);
        if (budget > 0.0)
            score = std::max(score, rack.vpEnergy / budget);
    }
    hub.record("pdu.power", now_, step.totalPower);
    hub.record("pdu.draw", now_, step.totalDraw);
    hub.record("policy.level", now_, static_cast<double>(level_));
    hub.record("shed.servers", now_,
               static_cast<double>(sheddedServers()));
    hub.record("detector.score", now_, score);
}

void
DataCenter::stepCoarse()
{
    // Components without their own clock (policy, µDEBs, breakers)
    // stamp events with the thread-local trace clock.
    obs::setTraceClock(now_);
    if (prof_)
        prof_->beginStep(/*fine=*/false);
    const double dtSec = ticksToSeconds(config_.coarseStep);
    StepPower localStep;
    StepPower &step =
        engineTuning().stepScratchReuse ? stepScratch_ : localStep;
    computeStep(step, now_, dtSec, /*fine=*/false, nullptr, nullptr,
                nullptr, 0.0, false, nullptr);
    {
        const obs::PhaseScope ps(prof_,
                                 obs::EngineProfiler::Phase::KibamBatch);
        applyShaving(step, dtSec);
    }
    {
        const obs::PhaseScope ps(prof_,
                                 obs::EngineProfiler::Phase::Detector);
        detectorStep(step, config_.coarseStep);
    }
    {
        const obs::PhaseScope ps(prof_,
                                 obs::EngineProfiler::Phase::KibamBatch);
        rechargeAll(step, dtSec);
    }
    {
        const obs::PhaseScope ps(prof_,
                                 obs::EngineProfiler::Phase::Detector);
        controlDecisions(step, dtSec);
    }
    {
        const obs::PhaseScope ps(
            prof_, obs::EngineProfiler::Phase::TelemetryFlush);
        telemetrySample(step);
    }
    if (prof_) {
        profRefreshGauges();
        if (obs::traceEnabled())
            prof_->emitTraceCounters();
    }

    if (recordHistory_) {
        socHistory_.push_back(allSocs());
        shedHistory_.push_back(
            static_cast<double>(sheddedServers()) /
            static_cast<double>(config_.totalServers()));
    }
    now_ += config_.coarseStep;
}

void
DataCenter::runCoarseUntil(Tick until)
{
    while (now_ < until)
        stepCoarse();
}

AttackOutcome
DataCenter::runAttack(attack::TwoPhaseAttacker &attacker,
                      const AttackScenario &scenario)
{
    AttackScenario sc = scenario;
    switch (sc.targetPolicy) {
      case TargetPolicy::Fixed:
        break;
      case TargetPolicy::MostVulnerable:
        sc.targetRack = mostVulnerableRack();
        break;
      case TargetPolicy::Median:
        sc.targetRack = medianSocRack();
        break;
    }
    PAD_ASSERT(sc.targetRack >= 0 && sc.targetRack < config_.racks);
    sc.maliciousNodes = attacker.config().controlledNodes;
    PAD_ASSERT(sc.maliciousNodes >= 1 &&
               sc.maliciousNodes <= config_.serversPerRack,
               "attacker controls more nodes than one rack holds");

    AttackOutcome out;
    const Tick start = now_;
    const Tick horizon =
        start + secondsToTicks(sc.durationSec);
    out.rack.setAttackStart(start);
    out.cluster.setAttackStart(start);

    sched::PerfMonitor windowPerf;
    const auto target = static_cast<std::size_t>(sc.targetRack);
    // With capacity sharing the failure domain moves to the PDU,
    // which runs at its physical budget with little slack; without
    // sharing the cluster line keeps the administrative tolerance.
    const Watts clusterLimit =
        config_.clusterBudget() *
        (1.0 + (traits_.vdebSharing
                    ? config_.clusterOvershootTolerance
                    : config_.overshootTolerance));

    std::vector<bool> victimMask(racks_.size(), false);
    victimMask[target] = true;
    for (int r : sc.extraVictimRacks) {
        PAD_ASSERT(r >= 0 && r < config_.racks);
        victimMask[static_cast<std::size_t>(r)] = true;
    }

    Tick nextControl = start;
    double malDemandAccum = 0.0;
    double malExecAccum = 0.0;
    std::size_t rackOnsetsSeen = 0;
    std::size_t clusterOnsetsSeen = 0;

    const bool reuse = engineTuning().stepScratchReuse;
    const double dtSec = ticksToSeconds(config_.fineStep);

    while (now_ < horizon) {
        obs::setTraceClock(now_);
        if (prof_)
            prof_->beginStep(/*fine=*/true);
        const double relSec = ticksToSeconds(now_ - start);
        const bool active =
            sc.dutyCycle >= 1.0 ||
            std::fmod(relSec, sc.dutyPeriodSec) <
                sc.dutyCycle * sc.dutyPeriodSec;

        if (now_ >= nextControl) {
            attacker.advance(relSec);
            if (malDemandAccum > 0.0) {
                attacker.observePerformance(
                    relSec, malExecAccum / malDemandAccum,
                    ticksToSeconds(config_.controlPeriod));
                malDemandAccum = 0.0;
                malExecAccum = 0.0;
            }
            nextControl += config_.controlPeriod;
        }

        StepPower localStep;
        StepPower &step = reuse ? stepScratch_ : localStep;
        computeStep(step, now_, dtSec, /*fine=*/true, &attacker, &sc,
                    &victimMask, relSec, active, &windowPerf);

        // Track the attacker's performance side channel on its own
        // nodes: demanded vs executed under the rack's DVFS factor.
        {
            auto &rack = racks_[target];
            for (int s = 0; s < sc.maliciousNodes; ++s) {
                double demand = serverDemand(sc.targetRack, s, now_, true);
                if (active)
                    demand = std::max(
                        demand, attacker.demandedUtil(s, relSec));
                const double exec =
                    isShed(sc.targetRack, s)
                        ? 0.0
                        : serverModel_.executed(demand, rack.dvfs);
                malDemandAccum += demand * dtSec;
                malExecAccum += exec * dtSec;
            }
        }

        {
            const obs::PhaseScope ps(
                prof_, obs::EngineProfiler::Phase::KibamBatch);
            applyShaving(step, dtSec);
        }
        std::vector<Watts> localLimits;
        std::vector<Watts> &limits = reuse ? limitsScratch_ : localLimits;
        {
            const obs::PhaseScope ps(
                prof_, obs::EngineProfiler::Phase::UdebShave);
            fillRackLimits(step, limits);
            applyUdeb(step, limits, dtSec);
        }
        {
            const obs::PhaseScope ps(
                prof_, obs::EngineProfiler::Phase::Detector);
            detectorStep(step, config_.fineStep);
        }

        // Overload accounting and breaker thermodynamics. A tripped
        // rack goes dark for the recovery period, losing its work.
        bool anyTrip = false;
        for (std::size_t r = 0; r < racks_.size(); ++r) {
            auto &rack = racks_[r];
            if (now_ < rack.downUntil)
                continue;
            if (rack.breaker->observe(step.rackDraw[r], dtSec)) {
                anyTrip = true;
                rack.downUntil =
                    now_ + secondsToTicks(config_.outageRecoverySec);
                rack.breaker->reset();
                if (obs::traceEnabled())
                    obs::emit("datacenter", "rack.down",
                              {obs::TraceField::integer(
                                   "rack",
                                   static_cast<std::int64_t>(r)),
                               obs::TraceField::num(
                                   "recovery_sec",
                                   config_.outageRecoverySec)});
            }
        }
        // The attack succeeds at the worst victim rack: track the
        // highest draw/limit ratio across the racks under attack.
        double worst = 0.0;
        for (std::size_t r = 0; r < racks_.size(); ++r) {
            if (!victimMask[r])
                continue;
            worst = std::max(worst, step.rackDraw[r] / limits[r]);
        }
        out.rack.observe(now_, worst, 1.0, anyTrip);
        out.cluster.observe(now_, step.totalDraw, clusterLimit, false);

        // Instant markers at every overload onset, so forensics can
        // recompute survival time from the event stream alone and
        // match AttackStats tick-for-tick.
        if (obs::traceEnabled()) {
            for (; rackOnsetsSeen < out.rack.overloadOnsets().size();
                 ++rackOnsetsSeen)
                obs::emit(
                    "datacenter", "attack.overload",
                    {obs::TraceField::str("scope", "rack"),
                     obs::TraceField::integer(
                         "onset",
                         static_cast<std::int64_t>(rackOnsetsSeen))});
            for (; clusterOnsetsSeen <
                   out.cluster.overloadOnsets().size();
                 ++clusterOnsetsSeen)
                obs::emit("datacenter", "attack.overload",
                          {obs::TraceField::str("scope", "cluster"),
                           obs::TraceField::integer(
                               "onset", static_cast<std::int64_t>(
                                            clusterOnsetsSeen))});
        }

        {
            const obs::PhaseScope ps(
                prof_, obs::EngineProfiler::Phase::KibamBatch);
            rechargeAll(step, dtSec);
        }

        if (now_ + config_.fineStep >= nextControl) {
            {
                const obs::PhaseScope ps(
                    prof_, obs::EngineProfiler::Phase::Detector);
                controlDecisions(step, dtSec);
            }
            out.rackPower.record(now_, step.rackPower[target]);
            out.rackDraw.record(now_, step.rackDraw[target]);
            out.rackSoc.record(now_, racks_[target].soc());
            out.udebSoc.record(now_, racks_[target].udeb
                                         ? racks_[target].udeb->soc()
                                         : 1.0);
            out.level.record(now_, static_cast<double>(level_));
            out.maxShedRatio = std::max(
                out.maxShedRatio,
                static_cast<double>(sheddedServers()) /
                    static_cast<double>(config_.totalServers()));
            {
                const obs::PhaseScope ps(
                    prof_, obs::EngineProfiler::Phase::TelemetryFlush);
                telemetrySample(step);
            }
            if (prof_) {
                profRefreshGauges();
                if (obs::traceEnabled())
                    prof_->emitTraceCounters();
            }
            // DEB depletion curves for the racks under attack, one
            // event per control period per victim.
            if (obs::traceEnabled()) {
                for (std::size_t r = 0; r < racks_.size(); ++r) {
                    if (!victimMask[r])
                        continue;
                    const auto &rack = racks_[r];
                    obs::emit(
                        "telemetry", "soc.sample",
                        {obs::TraceField::integer(
                             "rack", static_cast<std::int64_t>(r)),
                         obs::TraceField::num("soc", rack.soc()),
                         obs::TraceField::num(
                             "udeb_soc",
                             rack.udeb ? rack.udeb->soc() : 1.0),
                         obs::TraceField::num("power_w",
                                              step.rackPower[r]),
                         obs::TraceField::num("draw_w",
                                              step.rackDraw[r]),
                         obs::TraceField::integer(
                             "level",
                             static_cast<std::int64_t>(level_))});
                }
            }
        }

        now_ += config_.fineStep;
    }

    // Survival: first overload at either scope.
    Tick firstBad = kTickNever;
    for (Tick t : {out.rack.firstOverloadTick(),
                   out.cluster.firstOverloadTick()}) {
        if (t != kTickNever && (firstBad == kTickNever || t < firstBad))
            firstBad = t;
    }
    out.survivalSec = firstBad == kTickNever
                          ? sc.durationSec
                          : ticksToSeconds(firstBad - start);
    out.throughput = windowPerf.normalizedThroughput();
    out.phaseTwoStartSec = attacker.phaseTwoStartSec();

    // Enumerate the Phase-II spikes actually launched in-window.
    if (attacker.phaseTwoStartSec() >= 0.0) {
        const auto &virus = attacker.virus();
        const double p2 = attacker.phaseTwoStartSec();
        for (int i = 0;; ++i) {
            const double s = p2 + virus.spikeStart(i);
            const double e = s + virus.train().widthSec;
            if (e > sc.durationSec)
                break;
            const bool activeAtSpike =
                sc.dutyCycle >= 1.0 ||
                std::fmod(s, sc.dutyPeriodSec) <
                    sc.dutyCycle * sc.dutyPeriodSec;
            if (!activeAtSpike)
                continue;
            out.spikeWindows.emplace_back(start + secondsToTicks(s),
                                          start + secondsToTicks(e));
        }
        out.spikesLaunched =
            static_cast<int>(out.spikeWindows.size());
    }

    if (obs::traceEnabled()) {
        obs::setTraceClock(now_);
        if (out.phaseTwoStartSec >= 0.0)
            obs::emitAt(
                start + secondsToTicks(out.phaseTwoStartSec),
                "attacker", "attack.phase2",
                {obs::TraceField::num("start_sec",
                                      out.phaseTwoStartSec)});
        for (const auto &[s, e] : out.spikeWindows)
            obs::emitSpan(s, e, "attacker", "attack.spike", {});
        obs::emitSpan(
            start, now_, "datacenter", "attack.window",
            {obs::TraceField::num("survival_sec", out.survivalSec),
             obs::TraceField::num("throughput", out.throughput),
             obs::TraceField::integer(
                 "spikes",
                 static_cast<std::int64_t>(out.spikesLaunched))});
    }
    return out;
}

double
DataCenter::rackSoc(int rack) const
{
    PAD_ASSERT(rack >= 0 && rack < config_.racks);
    return racks_[static_cast<std::size_t>(rack)].soc();
}

std::vector<double>
DataCenter::allSocs() const
{
    std::vector<double> socs;
    socs.reserve(racks_.size());
    for (const auto &rack : racks_)
        socs.push_back(rack.soc());
    return socs;
}

double
DataCenter::socStdDevPercent() const
{
    const auto socs = allSocs();
    double mean = 0.0;
    for (double s : socs)
        mean += s;
    mean /= static_cast<double>(socs.size());
    double var = 0.0;
    for (double s : socs)
        var += (s - mean) * (s - mean);
    var /= static_cast<double>(socs.size());
    return std::sqrt(var) * 100.0;
}

int
DataCenter::medianSocRack() const
{
    std::vector<std::pair<Joules, int>> byEnergy;
    byEnergy.reserve(racks_.size());
    for (std::size_t r = 0; r < racks_.size(); ++r)
        byEnergy.emplace_back(racks_[r].stored(),
                              static_cast<int>(r));
    std::sort(byEnergy.begin(), byEnergy.end());
    return byEnergy[byEnergy.size() / 2].second;
}

int
DataCenter::mostVulnerableRack() const
{
    int best = 0;
    Joules lowest = racks_[0].stored();
    for (std::size_t r = 1; r < racks_.size(); ++r) {
        if (racks_[r].stored() < lowest) {
            lowest = racks_[r].stored();
            best = static_cast<int>(r);
        }
    }
    return best;
}

void
DataCenter::setAllSoc(double soc)
{
    for (auto &rack : racks_) {
        for (auto &unit : rack.debs)
            unit->setSoc(soc);
        if (rack.udeb)
            rack.udeb->setSoc(soc > 0.0 ? 1.0 : 0.0);
    }
}

void
DataCenter::seekTo(Tick t)
{
    PAD_ASSERT(t >= now_, "cannot seek backwards");
    now_ = t;
}

int
DataCenter::sheddedServers() const
{
    return static_cast<int>(
        std::count(shed_.begin(), shed_.end(), std::uint8_t{1}));
}

void
DataCenter::exportStats(sim::StatsRegistry &stats) const
{
    auto scalar = [&](const std::string &name, double value,
                      const std::string &desc) {
        stats.registerScalar(name, desc).set(value);
    };

    scalar("sim.seconds", ticksToSeconds(now_),
           "simulated time so far");
    scalar("scheme", static_cast<double>(config_.scheme),
           "SchemeKind under evaluation");
    scalar("perf.demanded_work", perf_.demandedWork(),
           "benign utilization-seconds demanded");
    scalar("perf.executed_work", perf_.executedWork(),
           "benign utilization-seconds executed");
    scalar("perf.throughput", perf_.normalizedThroughput(),
           "executed / demanded");
    scalar("policy.transitions",
           static_cast<double>(policy_.transitions()),
           "security-level changes");
    scalar("policy.emergencies",
           static_cast<double>(policy_.emergencies()),
           "entries into Level 3");
    scalar("shed.total", static_cast<double>(shedder_.totalShed()),
           "lifetime server-shed decisions");
    scalar("shed.active", static_cast<double>(sheddedServers()),
           "servers asleep right now");
    scalar("detector.flags", static_cast<double>(detections_),
           "anomalies flagged by the detector response");
    scalar("detector.first_flag_sec",
           firstDetectionTick_ == kTickNever
               ? -1.0
               : ticksToSeconds(firstDetectionTick_),
           "sim time of the first detector anomaly (-1 = none)");
    scalar("policy.first_escalation_sec",
           firstEscalationTick_ == kTickNever
               ? -1.0
               : ticksToSeconds(firstEscalationTick_),
           "sim time the policy first left L1 (-1 = never)");

    std::vector<double> socs, wear;
    double discharged = 0.0, charged = 0.0;
    int lvdTrips = 0, breakerTrips = 0, udebEngagements = 0;
    for (std::size_t r = 0; r < racks_.size(); ++r) {
        const auto &rack = racks_[r];
        socs.push_back(rack.soc());
        double rackWear = 0.0;
        for (const auto &u : rack.debs) {
            discharged += u->lifetimeDischarged();
            charged += u->lifetimeCharged();
            lvdTrips += u->lvdTrips();
            rackWear = std::max(rackWear, u->wear());
        }
        wear.push_back(rackWear);
        breakerTrips += rack.breaker->tripCount();
        if (rack.udeb)
            udebEngagements += rack.udeb->engagements();
    }
    scalar("deb.discharged_wh", joulesToWattHours(discharged),
           "fleet energy discharged");
    scalar("deb.charged_wh", joulesToWattHours(charged),
           "fleet energy recharged");
    scalar("deb.lvd_trips", lvdTrips, "low-voltage disconnects");
    scalar("breaker.trips", breakerTrips, "rack breaker trips");
    scalar("udeb.engagements", udebEngagements,
           "micro-DEB spike engagements");
    stats.setVector("deb.soc", "state of charge per rack",
                    std::move(socs));
    stats.setVector("deb.wear", "worst unit wear per rack",
                    std::move(wear));
}

void
DataCenter::dumpStats(std::ostream &os) const
{
    sim::StatsRegistry stats;
    exportStats(stats);
    stats.dump(os);
}

} // namespace pad::core
