#include "core/schemes.h"

#include "util/logging.h"

namespace pad::core {

SchemeTraits
schemeTraits(SchemeKind kind)
{
    SchemeTraits t;
    switch (kind) {
      case SchemeKind::Conv:
        // Batteries held in reserve for outages only.
        break;
      case SchemeKind::PS:
        t.peakShaving = true;
        break;
      case SchemeKind::PSPC:
        t.peakShaving = true;
        t.dvfsCapping = true;
        break;
      case SchemeKind::VdebOnly:
        t.peakShaving = true;
        t.vdebSharing = true;
        break;
      case SchemeKind::UdebOnly:
        t.peakShaving = true;
        t.udebSpikes = true;
        break;
      case SchemeKind::Pad:
        t.peakShaving = true;
        t.vdebSharing = true;
        t.udebSpikes = true;
        t.shedding = true;
        break;
    }
    return t;
}

std::string
schemeName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::Conv:
        return "Conv";
      case SchemeKind::PS:
        return "PS";
      case SchemeKind::PSPC:
        return "PSPC";
      case SchemeKind::VdebOnly:
        return "vDEB";
      case SchemeKind::UdebOnly:
        return "uDEB";
      case SchemeKind::Pad:
        return "PAD";
    }
    PAD_PANIC("unreachable scheme kind");
}

std::optional<SchemeKind>
schemeFromName(const std::string &name)
{
    for (SchemeKind k : kAllSchemes)
        if (schemeName(k) == name)
            return k;
    return std::nullopt;
}

} // namespace pad::core
