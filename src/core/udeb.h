/**
 * @file
 * Micro distributed energy backup (µDEB), paper §IV-B.2.
 *
 * A small super-capacitor bank sits in each rack power zone behind
 * an ORing FET on the primary power bus. Because the ORing conducts
 * automatically the instant rack demand exceeds the utility-side
 * allocation, the µDEB shaves *hidden* spikes with no software in
 * the loop — the property that defeats Phase-II attacks which
 * utilization-based monitoring cannot see. It deliberately does NOT
 * serve sustained peaks (efficiency and thermal limits, §IV-B.2);
 * an engagement-duration guard enforces that.
 */

#ifndef PAD_CORE_UDEB_H
#define PAD_CORE_UDEB_H

#include <string>

#include "battery/supercap.h"
#include "util/types.h"

namespace pad::core {

/** µDEB configuration. */
struct MicroDebConfig {
    /** Super-capacitor bank behind the ORing FET. */
    battery::SuperCapConfig cap;
    /**
     * Longest continuous engagement the µDEB will serve, seconds.
     * Sustained peaks beyond it are a vDEB/capping problem, not a
     * spike; the ORing disengages to avoid thermal issues.
     */
    double maxEngagementSec = 8.0;
    /** Recharge power drawn from headroom when idle, watts. */
    Watts rechargePower = 300.0;
};

/**
 * Rack-level automatic spike shaver.
 */
class MicroDeb
{
  public:
    /**
     * @param name   telemetry name, e.g. "rack5.udeb"
     * @param config static configuration
     */
    MicroDeb(std::string name, const MicroDebConfig &config);

    /**
     * Automatic ORing response: shave up to @p excess watts for
     * @p dt seconds.
     *
     * @param excess rack demand above the utility-side allocation
     * @param dt     step length, seconds
     * @return power actually shaved (averaged over the step), watts
     */
    Watts shave(Watts excess, double dt);

    /**
     * Idle step with @p headroom watts available for recharge.
     * @return power actually consumed for recharging, watts
     */
    Watts recharge(Watts headroom, double dt);

    /** Usable energy remaining, joules. */
    Joules usableEnergy() const { return cap_.usableEnergy(); }

    /** State of charge over the usable window. */
    double soc() const { return cap_.soc(); }

    /** True when no usable energy remains. */
    bool depleted() const { return cap_.depleted(); }

    /** Spikes served so far. */
    int engagements() const { return cap_.engagements(); }

    /** Lifetime energy delivered, joules. */
    Joules lifetimeShaved() const { return cap_.lifetimeDischarged(); }

    /** The underlying capacitor bank. */
    const battery::SuperCapacitor &capacitor() const { return cap_; }

    /** Force a state of charge (testing / scenario setup). */
    void setSoc(double soc);

    /** Static configuration. */
    const MicroDebConfig &config() const { return config_; }

  private:
    std::string name_;
    MicroDebConfig config_;
    battery::SuperCapacitor cap_;
    double engagedFor_ = 0.0;
};

} // namespace pad::core

#endif // PAD_CORE_UDEB_H
