/**
 * @file
 * Financial model of data-center power failures (paper Fig. 1 and
 * §I, built on the Ponemon 2013 outage studies [18, 19]):
 *
 *  - unplanned outages cost over $10 per square meter per minute for
 *    40% of benchmarked data centers (Fig. 1's CDF);
 *  - the average 2013 outage loses more than $7,900 per minute (40%
 *    above 2010);
 *  - more than 75% of data centers need at least 2 hours to
 *    investigate and remediate incidents [20], so a successful power
 *    attack "can easily cause the victim data center to lose one
 *    million dollars".
 *
 * The per-minute-per-area cost is modeled as a lognormal calibrated
 * to the published CDF anchor points.
 */

#ifndef PAD_CORE_OUTAGE_COST_H
#define PAD_CORE_OUTAGE_COST_H

namespace pad::core {

/** Calibration of the outage-cost distribution. */
struct OutageCostConfig {
    /** Lognormal location of $/m^2/min (ln dollars). */
    double mu = 1.84;
    /** Lognormal scale. */
    double sigma = 1.80;
    /** Average facility-wide loss per minute, dollars (2013). */
    double averageUsdPerMinute = 7900.0;
    /** Typical incident investigation + remediation time, hours. */
    double remediationHours = 2.0;
};

/**
 * Outage cost distribution and expected-loss helpers.
 */
class OutageCostModel
{
  public:
    explicit OutageCostModel(const OutageCostConfig &config = {});

    /** CDF of the per-minute-per-m^2 cost at @p usd (Fig. 1). */
    double cdf(double usdPerSqmPerMinute) const;

    /** Quantile of the per-minute-per-m^2 cost. */
    double quantile(double p) const;

    /** Fraction of data centers paying more than @p usd /m^2/min. */
    double
    fractionAbove(double usdPerSqmPerMinute) const
    {
        return 1.0 - cdf(usdPerSqmPerMinute);
    }

    /**
     * Expected loss of one incident lasting @p outageMinutes of
     * service interruption plus the configured remediation tail,
     * using the facility-average per-minute cost.
     */
    double expectedIncidentLossUsd(double outageMinutes) const;

    /**
     * Expected loss for a facility of @p areaSqm square meters at
     * the distribution's @p percentile cost level.
     */
    double lossUsd(double outageMinutes, double areaSqm,
                   double percentile) const;

    /** Static configuration. */
    const OutageCostConfig &config() const { return config_; }

  private:
    OutageCostConfig config_;
};

} // namespace pad::core

#endif // PAD_CORE_OUTAGE_COST_H
