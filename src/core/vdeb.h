/**
 * @file
 * The virtual distributed energy backup (vDEB) controller
 * (paper §IV-B.1, Algorithm 1).
 *
 * Instead of each rack shaving its own peak from its own battery,
 * the vDEB controller pools every DEB under one PDU and assigns
 * per-rack discharge rates so that (a) the aggregate utility draw is
 * held at the PDU budget and (b) battery usage stays balanced:
 * discharge is proportional to each unit's state of charge, capped
 * at an ideal safe rate P_ideal to avoid accelerated aging.
 *
 * Note on Algorithm 1 as printed: line 11's loop condition embeds
 * the array bound inside the proportional test and line 14 subtracts
 * "P_ideal / N" from the remaining deficit instead of the power the
 * iteration actually assigned. We implement the evident intent:
 * walk racks in descending SOC; while the SOC-proportional share of
 * the *remaining* deficit would exceed P_ideal, pin that rack at
 * P_ideal and remove its SOC and its assignment from the remainder;
 * split what is left SOC-proportionally. The printed "evenly usage"
 * branch (when the deficit exceeds what capped assignment can meet)
 * assigns the deficit evenly across all units.
 */

#ifndef PAD_CORE_VDEB_H
#define PAD_CORE_VDEB_H

#include <vector>

#include "util/types.h"

namespace pad::core {

/** vDEB controller parameters. */
struct VdebConfig {
    /**
     * Ideal (safe) discharge power per battery unit, watts. The
     * paper bounds discharge to protect battery lifetime (~48 A for
     * a 2 Ah lead-acid cell scales to roughly this at rack size).
     */
    Watts idealDischargePower = 800.0;
};

/** Result of one assignment round. */
struct VdebAssignment {
    /** Discharge power assigned to each unit, watts. */
    std::vector<Watts> power;
    /** True when the fallback even-split branch was taken. */
    bool even = false;
    /** The deficit the controller was asked to cover, watts. */
    Watts shaveTarget = 0.0;
};

/**
 * Pure assignment logic of Algorithm 1; callers apply the assigned
 * discharges to their battery units.
 */
class VdebController
{
  public:
    explicit VdebController(const VdebConfig &config);

    /**
     * Compute per-unit discharge powers.
     *
     * @param socJoules stored energy of each unit, joules (the
     *                  algorithm's socList)
     * @param totalPower aggregate power demand of all racks, watts
     * @param maxPower   PDU budget P_max, watts
     * @return per-unit discharge assignment; all zeros when no
     *         shaving is needed
     */
    VdebAssignment assign(const std::vector<Joules> &socJoules,
                          Watts totalPower, Watts maxPower) const;

    /**
     * Allocation-free variant for the per-step hot path: writes the
     * assignment into @p out, reusing its vector's capacity (and,
     * under the Optimized engine profile, an internal sort scratch).
     * Results are identical to assign(). Not thread-safe across
     * concurrent calls on one controller; the simulator owns one
     * controller per DataCenter, which is single-threaded.
     */
    void assignInto(const std::vector<Joules> &socJoules,
                    Watts totalPower, Watts maxPower,
                    VdebAssignment &out) const;

    /** Static configuration. */
    const VdebConfig &config() const { return config_; }

  private:
    VdebConfig config_;
    mutable std::vector<std::size_t> orderScratch_;
};

} // namespace pad::core

#endif // PAD_CORE_VDEB_H
