/**
 * @file
 * Synthesizer for the measured power-virus traces of paper Fig. 12.
 *
 * The paper collects attack power traces on its scaled-down hardware
 * platform with a precision power analyzer and feeds them into the
 * trace-driven simulator. Lacking that hardware, this synthesizer
 * emits the same two canonical shapes at 1 Hz:
 *
 *  - "dense and extensive": frequent wide spikes, high duty cycle;
 *  - "sparse and light-weighted": occasional narrow spikes.
 *
 * Values are percent-of-peak like the figure's y-axis.
 */

#ifndef PAD_ATTACK_VIRUS_TRACE_H
#define PAD_ATTACK_VIRUS_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "attack/power_virus.h"

namespace pad::attack {

/** The two collected attack styles of Fig. 12. */
enum class AttackStyle {
    /** Frequent, wide, aggressive spikes. */
    Dense,
    /** Occasional, narrow, light spikes. */
    Sparse,
};

/** Human-readable style name. */
std::string attackStyleName(AttackStyle style);

/** All styles, for sweeps. */
inline constexpr AttackStyle kAllAttackStyles[] = {
    AttackStyle::Dense,
    AttackStyle::Sparse,
};

/** Spike-train parameters matching one attack style. */
SpikeTrain spikeTrainFor(AttackStyle style, VirusKind kind);

/**
 * Render a virus power trace (percent of peak, one sample/second).
 *
 * @param kind       virus family
 * @param style      dense or sparse
 * @param seconds    trace length
 * @param seed       determinism
 * @return one utilization-percent sample per second
 */
std::vector<double> synthesizeVirusTrace(VirusKind kind, AttackStyle style,
                                         int seconds,
                                         std::uint64_t seed = 7);

} // namespace pad::attack

#endif // PAD_ATTACK_VIRUS_TRACE_H
