/**
 * @file
 * Power virus models (paper §III).
 *
 * A power virus is a malicious load crafted to manipulate a server's
 * power draw. The paper characterizes three flavours on real
 * hardware (Table II): CPU-intensive (threaded Tachyon ray tracer),
 * memory-intensive (STREAM), and IO-intensive (Apache bench). Their
 * key differences for the attack are the peak power they can reach
 * and how sharply they can modulate it:
 *
 *  - CPU viruses reach essentially nameplate power with sub-second
 *    rise time and therefore make the best hidden spikes;
 *  - Mem viruses reach somewhat lower peaks;
 *  - IO viruses "cannot effectively trigger high spikes in Phase II"
 *    and may fail entirely when the power budget is adequate.
 */

#ifndef PAD_ATTACK_POWER_VIRUS_H
#define PAD_ATTACK_POWER_VIRUS_H

#include <string>

#include "util/types.h"

namespace pad::attack {

/** Benchmark family the virus is built from. */
enum class VirusKind {
    CpuIntensive,
    MemIntensive,
    IoIntensive,
};

/** Human-readable virus kind name. */
std::string virusKindName(VirusKind kind);

/** All virus kinds, for sweeps. */
inline constexpr VirusKind kAllVirusKinds[] = {
    VirusKind::CpuIntensive,
    VirusKind::MemIntensive,
    VirusKind::IoIntensive,
};

/** Power-behaviour signature of a virus kind. */
struct VirusSignature {
    /** Highest utilization the virus can drive (fraction of peak). */
    double maxUtil = 1.0;
    /** 10-90% rise time of a spike, seconds. */
    double riseTimeSec = 0.1;
    /** Relative amplitude jitter between repetitions. */
    double jitter = 0.03;
    /** Low-profile utilization during the Preparation phase. */
    double restUtil = 0.30;
    /**
     * Between-spike utilization in Phase II as a fraction of
     * maxUtil: the attacker keeps pressure on the drained battery so
     * headroom never appears to recharge it ("the attacker first
     * needs to use the visible peak to drain the battery" — and keep
     * it drained, paper §III-A.3).
     */
    double phaseTwoPressure = 0.85;
};

/** Signature table for the three characterized virus kinds. */
VirusSignature virusSignature(VirusKind kind);

/**
 * Spike-train parameters for a Phase-II hidden-spike attack.
 */
struct SpikeTrain {
    /** Spike width (sustained peak duration), seconds. */
    double widthSec = 1.0;
    /** Spikes per minute. */
    double perMinute = 1.0;
    /** Spike height as a fraction of the virus's maxUtil. */
    double height = 1.0;
    /**
     * Between-spike pressure override (fraction of maxUtil); <0
     * keeps the virus signature's default. Cluster attacks keep the
     * default high pressure to starve battery recharge; testbed
     * characterizations (Fig. 12) rest near 55%.
     */
    double pressure = -1.0;

    /** Seconds between consecutive spike starts. */
    double
    periodSec() const
    {
        return 60.0 / perMinute;
    }
};

/**
 * One power virus instance: a kind plus its Phase-II spike train.
 *
 * The virus exposes its demanded utilization as a pure function of
 * time so fine-grained simulations stay deterministic.
 */
class PowerVirus
{
  public:
    /**
     * @param kind  benchmark family
     * @param train Phase-II spike schedule
     * @param seed  per-instance determinism for jitter
     */
    PowerVirus(VirusKind kind, const SpikeTrain &train,
               std::uint64_t seed = 1);

    /**
     * Demanded utilization in Phase I (sustained visible peak used to
     * drain the victim's battery).
     */
    double phaseOneUtil() const;

    /**
     * Demanded utilization at @p sinceStart seconds into Phase II.
     * Produces restUtil between spikes and a trapezoidal spike of the
     * configured width/height at each scheduled firing, with
     * deterministic per-spike jitter.
     */
    double phaseTwoUtil(double sinceStart) const;

    /** Number of spikes launched within @p windowSec of Phase II. */
    int spikesWithin(double windowSec) const;

    /** Start time (seconds into Phase II) of spike @p index. */
    double spikeStart(int index) const;

    /** Virus kind. */
    VirusKind kind() const { return kind_; }

    /** Behaviour signature. */
    const VirusSignature &signature() const { return sig_; }

    /** Spike-train parameters. */
    const SpikeTrain &train() const { return train_; }

  private:
    double spikeAmplitude(int index) const;

    VirusKind kind_;
    VirusSignature sig_;
    SpikeTrain train_;
    std::uint64_t seed_;
};

} // namespace pad::attack

#endif // PAD_ATTACK_POWER_VIRUS_H
