/**
 * @file
 * The two-phase attacker of paper §III-A.
 *
 * 1) Preparation: the adversary has already placed VMs on a small
 *    group of physical machines inside the victim rack (co-location
 *    via [24]); we model the nodes as given.
 * 2) Phase I ("identify vulnerable status"): run a sustained
 *    non-offending visible peak to drain the rack's DEB. The attacker
 *    watches its *own VM performance*: when the DEB runs out the data
 *    center falls back to DVFS capping, which the attacker observes
 *    as throttling — a performance side channel revealing that backup
 *    energy is low, and over repeated rounds, the DEB's autonomy.
 * 3) Phase II ("launch offending spikes"): keep the battery drained
 *    and emit short high spikes that utilization-averaged monitoring
 *    cannot see.
 */

#ifndef PAD_ATTACK_ATTACKER_H
#define PAD_ATTACK_ATTACKER_H

#include <cstdint>
#include <vector>

#include "attack/power_virus.h"

namespace pad::attack {

/** Attacker configuration. */
struct AttackerConfig {
    /** Number of physical nodes under the attacker's control. */
    int controlledNodes = 1;
    /** Virus family deployed on those nodes. */
    VirusKind kind = VirusKind::CpuIntensive;
    /** Phase-II spike train. */
    SpikeTrain train;
    /** Low-profile warm-up before Phase I, seconds. */
    double prepareSec = 10.0;
    /**
     * Consecutive seconds of observed throttling that convince the
     * attacker the backup is exhausted.
     */
    double cappingConfirmSec = 5.0;
    /**
     * Give-up bound: if no throttling is ever observed, switch to
     * Phase II anyway after draining this long (the attacker cannot
     * wait forever; vDEB exploits this).
     */
    double maxDrainSec = 900.0;
    /**
     * Phase-I learning rounds: the paper's adversary drains the
     * victim repeatedly ("after multiple times of learning") to
     * estimate the DEB capacity before striking. Each round after
     * the first is preceded by a recovery pause.
     */
    int learnRounds = 1;
    /** Low-profile pause between learning rounds, seconds. */
    double recoverSec = 600.0;
    /** Determinism seed. */
    std::uint64_t seed = 99;
};

/**
 * Deterministic attacker strategy driven by wall-clock time and the
 * performance side channel.
 */
class TwoPhaseAttacker
{
  public:
    /** Attack progress states. */
    enum class Phase {
        Prepare, ///< blending in at low utilization
        Drain,   ///< Phase I: sustained visible peak
        Recover, ///< pause between Phase-I learning rounds
        Spike,   ///< Phase II: offending hidden spikes
    };

    explicit TwoPhaseAttacker(const AttackerConfig &config);

    /** Human-readable phase name ("Prepare", "Drain", ...). */
    static const char *phaseName(Phase phase);

    /**
     * Utilization the attacker demands on controlled node @p node at
     * @p nowSec seconds since the attack began. Call advance() (or
     * feed observations) before sampling each step.
     */
    double demandedUtil(int node, double nowSec) const;

    /**
     * Feed the performance side channel: @p executedFraction is the
     * ratio of executed to demanded work on the attacker's VMs over
     * the last @p dt seconds (1.0 = no throttling).
     */
    void observePerformance(double nowSec, double executedFraction,
                            double dt);

    /** Move time forward; handles the time-based transitions. */
    void advance(double nowSec);

    /** Current phase. */
    Phase phase() const { return phase_; }

    /** Seconds (attack-relative) when Phase II began; <0 if not yet. */
    double phaseTwoStartSec() const { return spikeStart_; }

    /**
     * Autonomy learned from the side channel: seconds from drain
     * start to confirmed throttling in the last completed round;
     * <0 when never observed.
     */
    double learnedAutonomySec() const { return learnedAutonomy_; }

    /** Autonomy observations from every completed learning round. */
    const std::vector<double> &
    autonomySamples() const
    {
        return samples_;
    }

    /** The deployed virus. */
    const PowerVirus &virus() const { return virus_; }

    /** Static configuration. */
    const AttackerConfig &config() const { return config_; }

  private:
    void enterSpike(double nowSec);
    void finishRound(double nowSec, double autonomy);
    void setPhase(Phase next, double atSec, const char *reason);

    AttackerConfig config_;
    PowerVirus virus_;
    Phase phase_ = Phase::Prepare;
    double drainStart_ = -1.0;
    double recoverStart_ = -1.0;
    double spikeStart_ = -1.0;
    double cappedSince_ = -1.0;
    double learnedAutonomy_ = -1.0;
    int roundsDone_ = 0;
    int spikesEmitted_ = 0;
    std::vector<double> samples_;
};

} // namespace pad::attack

#endif // PAD_ATTACK_ATTACKER_H
