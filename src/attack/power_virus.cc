#include "attack/power_virus.h"

#include <algorithm>
#include <cmath>

#include "obs/tracer.h"
#include "util/logging.h"

namespace pad::attack {

namespace {

/** splitmix64 for deterministic per-spike jitter. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

double
unitHash(std::uint64_t x)
{
    return static_cast<double>(mix(x) >> 11) /
           static_cast<double>(1ULL << 53);
}

} // namespace

std::string
virusKindName(VirusKind kind)
{
    switch (kind) {
      case VirusKind::CpuIntensive:
        return "CPU-Intensive";
      case VirusKind::MemIntensive:
        return "Mem-Intensive";
      case VirusKind::IoIntensive:
        return "IO-Intensive";
    }
    PAD_PANIC("unreachable virus kind");
}

VirusSignature
virusSignature(VirusKind kind)
{
    // Calibrated to the paper's real-system characterization:
    // CPU viruses reach nameplate with sharp edges, Mem viruses a bit
    // less, IO viruses max out well below peak with sluggish, noisy
    // transitions (paper Fig. 8 discussion).
    switch (kind) {
      case VirusKind::CpuIntensive:
        return VirusSignature{1.00, 0.10, 0.03, 0.30, 0.85};
      case VirusKind::MemIntensive:
        return VirusSignature{0.88, 0.20, 0.05, 0.28, 0.85};
      case VirusKind::IoIntensive:
        return VirusSignature{0.66, 0.50, 0.12, 0.25, 0.85};
    }
    PAD_PANIC("unreachable virus kind");
}

PowerVirus::PowerVirus(VirusKind kind, const SpikeTrain &train,
                       std::uint64_t seed)
    : kind_(kind), sig_(virusSignature(kind)), train_(train), seed_(seed)
{
    PAD_ASSERT(train_.widthSec > 0.0);
    PAD_ASSERT(train_.perMinute > 0.0);
    PAD_ASSERT(train_.height > 0.0 && train_.height <= 1.0);

    if (obs::traceEnabled()) {
        const std::string kindName = virusKindName(kind_);
        obs::emit("virus", "virus.deploy",
                  {obs::TraceField::str("kind", kindName),
                   obs::TraceField::num("width_sec", train_.widthSec),
                   obs::TraceField::num("per_minute",
                                        train_.perMinute),
                   obs::TraceField::num("height", train_.height),
                   obs::TraceField::num("max_util", sig_.maxUtil)});
    }
}

double
PowerVirus::phaseOneUtil() const
{
    // Phase I is a sustained "non-offending" visible peak: the virus
    // runs flat out, which the data center reads as a busy tenant.
    return sig_.maxUtil;
}

double
PowerVirus::spikeAmplitude(int index) const
{
    const double jitter =
        1.0 + sig_.jitter * (2.0 * unitHash(seed_ ^
                                            static_cast<std::uint64_t>(
                                                index)) -
                             1.0);
    return std::clamp(train_.height * sig_.maxUtil * jitter, 0.0, 1.0);
}

double
PowerVirus::spikeStart(int index) const
{
    PAD_ASSERT(index >= 0);
    // Small deterministic phase jitter avoids pathological alignment
    // with metering interval boundaries.
    const double base = train_.periodSec() * static_cast<double>(index);
    const double wiggle =
        0.1 * train_.periodSec() *
        unitHash(seed_ ^ 0xabcdULL ^ static_cast<std::uint64_t>(index));
    return base + wiggle;
}

int
PowerVirus::spikesWithin(double windowSec) const
{
    int n = 0;
    while (spikeStart(n) + train_.widthSec <= windowSec)
        ++n;
    return n;
}

double
PowerVirus::phaseTwoUtil(double sinceStart) const
{
    const double pressure = train_.pressure >= 0.0
                                ? train_.pressure
                                : sig_.phaseTwoPressure;
    const double base = pressure * sig_.maxUtil;
    if (sinceStart < 0.0)
        return base;

    // Locate the spike whose window could contain this instant.
    const double period = train_.periodSec();
    int idx = static_cast<int>(sinceStart / period);
    for (int probe = std::max(0, idx - 1); probe <= idx + 1; ++probe) {
        const double start = spikeStart(probe);
        const double rise = sig_.riseTimeSec;
        const double fall = sig_.riseTimeSec;
        const double top = spikeAmplitude(probe);
        const double rel = sinceStart - start;
        if (rel < 0.0 || rel > rise + train_.widthSec + fall)
            continue;
        if (top <= base)
            return base;
        double level;
        if (rel < rise) {
            level = rel / rise; // ramp up
        } else if (rel < rise + train_.widthSec) {
            level = 1.0; // sustained peak
        } else {
            level = 1.0 - (rel - rise - train_.widthSec) / fall;
        }
        return base + (top - base) * level;
    }
    return base;
}

} // namespace pad::attack
