/**
 * @file
 * Bookkeeping for attack outcomes: spikes launched, effective
 * attacks (paper: "power draw exceeds a pre-determined limit"),
 * breaker trips, and survival time.
 */

#ifndef PAD_ATTACK_ATTACK_STATS_H
#define PAD_ATTACK_ATTACK_STATS_H

#include <vector>

#include "util/types.h"

namespace pad::attack {

/**
 * Accumulates attack outcome events during a simulation window.
 *
 * An "effective attack" is a maximal run of consecutive observation
 * steps whose power exceeds the overload limit: crossing into
 * overload counts one effective attack; staying in overload does not
 * count again until the draw first falls back below the limit.
 */
class AttackStats
{
  public:
    /**
     * Observe one fine-grained step.
     *
     * @param now      simulation time at the step start
     * @param power    aggregate rack/cluster draw, watts
     * @param limit    overload limit (budget x (1 + overshoot))
     * @param tripped  whether a breaker tripped during the step
     */
    void observe(Tick now, Watts power, Watts limit, bool tripped);

    /** Mark the attack start time (for survival-time accounting). */
    void setAttackStart(Tick t) { attackStart_ = t; }

    /** Number of effective attacks (overload-crossing events). */
    int effectiveAttacks() const { return effective_; }

    /** Tick of the first overload event; kTickNever when none. */
    Tick firstOverloadTick() const { return firstOverload_; }

    /** Tick of the first breaker trip; kTickNever when none. */
    Tick firstTripTick() const { return firstTrip_; }

    /**
     * Survival time in seconds: attack start to first overload.
     * Returns @p horizonSec when no overload ever happened.
     */
    double survivalSeconds(double horizonSec) const;

    /** Ticks of each effective-attack onset. */
    const std::vector<Tick> &overloadOnsets() const { return onsets_; }

  private:
    int effective_ = 0;
    bool inOverload_ = false;
    Tick attackStart_ = 0;
    Tick firstOverload_ = kTickNever;
    Tick firstTrip_ = kTickNever;
    std::vector<Tick> onsets_;
};

} // namespace pad::attack

#endif // PAD_ATTACK_ATTACK_STATS_H
