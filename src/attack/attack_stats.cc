#include "attack/attack_stats.h"

namespace pad::attack {

void
AttackStats::observe(Tick now, Watts power, Watts limit, bool tripped)
{
    const bool over = power > limit;
    if (over && !inOverload_) {
        ++effective_;
        onsets_.push_back(now);
        if (firstOverload_ == kTickNever)
            firstOverload_ = now;
    }
    inOverload_ = over;
    if (tripped && firstTrip_ == kTickNever)
        firstTrip_ = now;
}

double
AttackStats::survivalSeconds(double horizonSec) const
{
    if (firstOverload_ == kTickNever)
        return horizonSec;
    return ticksToSeconds(firstOverload_ - attackStart_);
}

} // namespace pad::attack
