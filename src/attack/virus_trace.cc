#include "attack/virus_trace.h"

#include "util/logging.h"

namespace pad::attack {

std::string
attackStyleName(AttackStyle style)
{
    return style == AttackStyle::Dense ? "Dense Attack" : "Sparse Attack";
}

SpikeTrain
spikeTrainFor(AttackStyle style, VirusKind kind)
{
    // Dense: ~6 spikes/min, 4 s wide, full height -- the "dense and
    // extensive" trace of Fig. 12. Sparse: ~1 spike/min, 1 s wide,
    // slightly lower height. Both rest near 55% of peak between
    // spikes, matching the measured traces ("do not significantly
    // increase the average utilization"). IO viruses modulate more
    // slowly, so their effective width grows with the sluggish rise
    // time; that is captured by the signature, not the schedule.
    (void)kind;
    switch (style) {
      case AttackStyle::Dense:
        return SpikeTrain{4.0, 6.0, 1.0, 0.55};
      case AttackStyle::Sparse:
        return SpikeTrain{1.0, 1.0, 0.95, 0.55};
    }
    PAD_PANIC("unreachable attack style");
}

std::vector<double>
synthesizeVirusTrace(VirusKind kind, AttackStyle style, int seconds,
                     std::uint64_t seed)
{
    PAD_ASSERT(seconds > 0);
    PowerVirus virus(kind, spikeTrainFor(style, kind), seed);
    std::vector<double> trace;
    trace.reserve(static_cast<std::size_t>(seconds));
    for (int s = 0; s < seconds; ++s)
        trace.push_back(virus.phaseTwoUtil(static_cast<double>(s)) *
                        100.0);
    return trace;
}

} // namespace pad::attack
