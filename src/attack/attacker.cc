#include "attack/attacker.h"

#include "obs/tracer.h"
#include "util/logging.h"

namespace pad::attack {

TwoPhaseAttacker::TwoPhaseAttacker(const AttackerConfig &config)
    : config_(config), virus_(config.kind, config.train, config.seed)
{
    PAD_ASSERT(config_.controlledNodes >= 1);
    PAD_ASSERT(config_.prepareSec >= 0.0);
    PAD_ASSERT(config_.cappingConfirmSec > 0.0);
    PAD_ASSERT(config_.maxDrainSec > 0.0);
    PAD_ASSERT(config_.learnRounds >= 1);
    PAD_ASSERT(config_.recoverSec >= 0.0);
}

const char *
TwoPhaseAttacker::phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Prepare:
        return "Prepare";
      case Phase::Drain:
        return "Drain";
      case Phase::Recover:
        return "Recover";
      case Phase::Spike:
        return "Spike";
    }
    return "?";
}

void
TwoPhaseAttacker::setPhase(Phase next, double atSec, const char *reason)
{
    if (obs::traceEnabled())
        obs::emit("attacker", "attacker.phase",
                  {obs::TraceField::str("from", phaseName(phase_)),
                   obs::TraceField::str("to", phaseName(next)),
                   obs::TraceField::num("at_sec", atSec),
                   obs::TraceField::str("reason", reason)});
    phase_ = next;
}

void
TwoPhaseAttacker::advance(double nowSec)
{
    switch (phase_) {
      case Phase::Prepare:
        if (nowSec >= config_.prepareSec) {
            setPhase(Phase::Drain, nowSec, "prepare done");
            drainStart_ = nowSec;
        }
        break;
      case Phase::Drain:
        // Time-based fallback: the attacker will not drain forever.
        if (nowSec - drainStart_ >= config_.maxDrainSec)
            finishRound(nowSec, -1.0);
        break;
      case Phase::Recover:
        if (nowSec - recoverStart_ >= config_.recoverSec) {
            setPhase(Phase::Drain, nowSec, "recovered");
            drainStart_ = nowSec;
            cappedSince_ = -1.0;
        }
        break;
      case Phase::Spike:
        // Ground-truth markers for every hidden spike whose start has
        // passed, so forensics can validate boundary estimates.
        if (obs::traceEnabled()) {
            while (spikeStart_ + virus_.spikeStart(spikesEmitted_) <=
                   nowSec) {
                obs::emit(
                    "attacker", "attacker.spike_launch",
                    {obs::TraceField::integer(
                         "index",
                         static_cast<std::int64_t>(spikesEmitted_)),
                     obs::TraceField::num(
                         "at_sec",
                         spikeStart_ +
                             virus_.spikeStart(spikesEmitted_))});
                ++spikesEmitted_;
            }
        }
        break;
    }
}

void
TwoPhaseAttacker::observePerformance(double nowSec,
                                     double executedFraction, double dt)
{
    PAD_ASSERT(dt > 0.0);
    if (phase_ != Phase::Drain)
        return;
    const bool capped = executedFraction < 0.97;
    if (obs::traceEnabled())
        obs::emit("attacker", "attacker.probe",
                  {obs::TraceField::num("at_sec", nowSec),
                   obs::TraceField::num("exec_fraction",
                                        executedFraction),
                   obs::TraceField::boolean("capped", capped)});
    if (!capped) {
        cappedSince_ = -1.0;
        return;
    }
    if (cappedSince_ < 0.0)
        cappedSince_ = nowSec;
    if (nowSec + dt - cappedSince_ >= config_.cappingConfirmSec) {
        // Throttling confirmed: the DEB must be exhausted. Record
        // the observed autonomy and end this learning round.
        finishRound(nowSec + dt, cappedSince_ - drainStart_);
    }
}

void
TwoPhaseAttacker::finishRound(double nowSec, double autonomy)
{
    if (autonomy >= 0.0) {
        learnedAutonomy_ = autonomy;
        samples_.push_back(autonomy);
        if (obs::traceEnabled())
            obs::emit(
                "attacker", "attacker.autonomy",
                {obs::TraceField::num("autonomy_sec", autonomy),
                 obs::TraceField::integer(
                     "round",
                     static_cast<std::int64_t>(roundsDone_ + 1))});
    }
    ++roundsDone_;
    if (roundsDone_ >= config_.learnRounds) {
        enterSpike(nowSec);
    } else {
        setPhase(Phase::Recover, nowSec,
                 autonomy >= 0.0 ? "autonomy learned" : "drain timeout");
        recoverStart_ = nowSec;
    }
}

void
TwoPhaseAttacker::enterSpike(double nowSec)
{
    setPhase(Phase::Spike, nowSec,
             learnedAutonomy_ >= 0.0 ? "autonomy learned"
                                     : "drain timeout");
    spikeStart_ = nowSec;
}

double
TwoPhaseAttacker::demandedUtil(int node, double nowSec) const
{
    PAD_ASSERT(node >= 0 && node < config_.controlledNodes);
    switch (phase_) {
      case Phase::Prepare:
      case Phase::Recover:
        return virus_.signature().restUtil;
      case Phase::Drain:
        return virus_.phaseOneUtil();
      case Phase::Spike:
        return virus_.phaseTwoUtil(nowSec - spikeStart_);
    }
    PAD_PANIC("unreachable attacker phase");
}

} // namespace pad::attack
