#include "attack/attacker.h"

#include "util/logging.h"

namespace pad::attack {

TwoPhaseAttacker::TwoPhaseAttacker(const AttackerConfig &config)
    : config_(config), virus_(config.kind, config.train, config.seed)
{
    PAD_ASSERT(config_.controlledNodes >= 1);
    PAD_ASSERT(config_.prepareSec >= 0.0);
    PAD_ASSERT(config_.cappingConfirmSec > 0.0);
    PAD_ASSERT(config_.maxDrainSec > 0.0);
    PAD_ASSERT(config_.learnRounds >= 1);
    PAD_ASSERT(config_.recoverSec >= 0.0);
}

void
TwoPhaseAttacker::advance(double nowSec)
{
    switch (phase_) {
      case Phase::Prepare:
        if (nowSec >= config_.prepareSec) {
            phase_ = Phase::Drain;
            drainStart_ = nowSec;
        }
        break;
      case Phase::Drain:
        // Time-based fallback: the attacker will not drain forever.
        if (nowSec - drainStart_ >= config_.maxDrainSec)
            finishRound(nowSec, -1.0);
        break;
      case Phase::Recover:
        if (nowSec - recoverStart_ >= config_.recoverSec) {
            phase_ = Phase::Drain;
            drainStart_ = nowSec;
            cappedSince_ = -1.0;
        }
        break;
      case Phase::Spike:
        break;
    }
}

void
TwoPhaseAttacker::observePerformance(double nowSec,
                                     double executedFraction, double dt)
{
    PAD_ASSERT(dt > 0.0);
    if (phase_ != Phase::Drain)
        return;
    const bool capped = executedFraction < 0.97;
    if (!capped) {
        cappedSince_ = -1.0;
        return;
    }
    if (cappedSince_ < 0.0)
        cappedSince_ = nowSec;
    if (nowSec + dt - cappedSince_ >= config_.cappingConfirmSec) {
        // Throttling confirmed: the DEB must be exhausted. Record
        // the observed autonomy and end this learning round.
        finishRound(nowSec + dt, cappedSince_ - drainStart_);
    }
}

void
TwoPhaseAttacker::finishRound(double nowSec, double autonomy)
{
    if (autonomy >= 0.0) {
        learnedAutonomy_ = autonomy;
        samples_.push_back(autonomy);
    }
    ++roundsDone_;
    if (roundsDone_ >= config_.learnRounds) {
        enterSpike(nowSec);
    } else {
        phase_ = Phase::Recover;
        recoverStart_ = nowSec;
    }
}

void
TwoPhaseAttacker::enterSpike(double nowSec)
{
    phase_ = Phase::Spike;
    spikeStart_ = nowSec;
}

double
TwoPhaseAttacker::demandedUtil(int node, double nowSec) const
{
    PAD_ASSERT(node >= 0 && node < config_.controlledNodes);
    switch (phase_) {
      case Phase::Prepare:
      case Phase::Recover:
        return virus_.signature().restUtil;
      case Phase::Drain:
        return virus_.phaseOneUtil();
      case Phase::Spike:
        return virus_.phaseTwoUtil(nowSec - spikeStart_);
    }
    PAD_PANIC("unreachable attacker phase");
}

} // namespace pad::attack
