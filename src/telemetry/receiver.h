/**
 * @file
 * ReceiverServer: the aggregation end of the pad-rw-v1 push pipeline.
 *
 * Accepts persistent TCP connections from N RemoteWriteShippers,
 * ingests their length-prefixed batch frames, and merges every
 * sample into one TelemetryHub under `fleet.<source>.` prefixes —
 * the first real fleet-level view across daemons. "stats" batches
 * (final StatsRegistry dumps) merge into name-keyed scalar/counter
 * maps with replace semantics. The merged state re-renders as a
 * single aggregate Prometheus exposition, and a SampleListener (the
 * PR-5 alert engine) can watch the merged stream: all ingest happens
 * on the receiver's one service thread, which satisfies the alert
 * engine's single-recording-thread contract.
 *
 * Delivery is stop-and-wait per connection: every frame is answered
 * with `{"ok":true,"seq":N}`. Frames whose per-source sequence
 * number was already merged are acknowledged but skipped, so shipper
 * resends after a lost ack (or a spool re-replay) cannot
 * double-count.
 */

#ifndef PAD_TELEMETRY_RECEIVER_H
#define PAD_TELEMETRY_RECEIVER_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/hub.h"
#include "telemetry/prom.h"

namespace pad::telemetry {

class ReceiverServer
{
  public:
    /** @p port 0 binds an ephemeral port (see port()). */
    explicit ReceiverServer(int port);
    ~ReceiverServer();

    ReceiverServer(const ReceiverServer &) = delete;
    ReceiverServer &operator=(const ReceiverServer &) = delete;

    /**
     * Bind 127.0.0.1:<port>, resolve the real port, and launch the
     * service thread. Fail-fast: false + one-line @p error when the
     * port is taken. No partial state on failure.
     */
    bool start(std::string *error = nullptr);

    /** Stop the service thread and close every connection. */
    void stop();

    bool running() const { return running_; }

    /** Bound ingest port (the requested one, or the ephemeral pick). */
    int port() const { return port_; }

    /**
     * The merged fleet hub. Thread-safe for summaries/snapshots; a
     * listener attached via setListener() sees every merged sample.
     */
    TelemetryHub &hub() { return hub_; }
    const TelemetryHub &hub() const { return hub_; }

    /** Forwarded to the merged hub (alert engine attach point). */
    void setListener(SampleListener *listener);

    /**
     * Aggregate Prometheus exposition: merged stats scalars/counters
     * and hub series (all `fleet.<source>.` prefixed) plus pad_rx_*
     * self-metrics, with optional alert-state rows. Safe from any
     * thread (a scrape endpoint's renderer).
     */
    std::string
    renderMetrics(const std::vector<AlertStateSample> *alerts =
                      nullptr) const;

    /**
     * Deterministic dump of everything merged so far: sources with
     * their last sequence numbers, per-series digests, and the
     * merged stats. Two receivers fed identical batch streams (e.g.
     * two `padd --replay` runs of one session) dump byte-identically.
     */
    std::string dumpMerged() const;

    /** Self-metrics; rendered as pad_rx_* in the exposition. */
    struct Counters {
        std::uint64_t connections = 0;
        std::uint64_t batches = 0;      ///< merged "batch" frames
        std::uint64_t statsBatches = 0; ///< merged "stats" frames
        std::uint64_t samples = 0;
        std::uint64_t duplicates = 0; ///< acked but already merged
        std::uint64_t protocolErrors = 0;
    };
    Counters counters() const;

    /** Distinct sources seen so far. */
    std::size_t sourceCount() const;

    /** Largest batch tick merged so far (kTickNever before any). */
    Tick maxTick() const;

  private:
    struct Connection {
        int fd = -1;
        std::string buffer;
    };

    void serveLoop();
    /** Consume complete frames from @p conn; false = close it. */
    bool drainFrames(Connection &conn);
    /** Merge one parsed line; returns the ack line to send. */
    std::string handleLine(std::string_view line, bool *ok);

    const int requestedPort_;
    int port_ = -1;
    int listenFd_ = -1;
    std::atomic<bool> stop_{false};
    bool running_ = false;
    std::thread thread_;

    TelemetryHub hub_;
    mutable std::mutex mu_; ///< guards the maps below
    std::map<std::string, std::int64_t> lastSeq_; ///< per source
    std::map<std::string, double> scalars_;
    std::map<std::string, std::uint64_t> counterStats_;
    Tick maxTick_ = kTickNever;

    std::atomic<std::uint64_t> connections_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> statsBatches_{0};
    std::atomic<std::uint64_t> samples_{0};
    std::atomic<std::uint64_t> duplicates_{0};
    std::atomic<std::uint64_t> protocolErrors_{0};
};

} // namespace pad::telemetry

#endif // PAD_TELEMETRY_RECEIVER_H
