#include "telemetry/hub.h"

namespace pad::telemetry {

void
TelemetryHub::record(std::string_view name, Tick when, double value)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = series_.find(name);
    if (it == series_.end())
        it = series_
                 .emplace(std::string(name),
                          Entry{TimeSeries(opts_), nextId_++})
                 .first;
    it->second.series.record(when, value);
    if (listener_)
        listener_->onSample(it->second.id, name, when, value);
}

void
TelemetryHub::setListener(SampleListener *listener)
{
    std::lock_guard<std::mutex> lock(mu_);
    listener_ = listener;
}

const TimeSeries *
TelemetryHub::find(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second.series;
}

std::vector<std::string>
TelemetryHub::names() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto &[name, entry] : series_)
        out.push_back(name);
    return out;
}

std::size_t
TelemetryHub::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return series_.size();
}

std::vector<TelemetryHub::SeriesSummary>
TelemetryHub::summary() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SeriesSummary> out;
    out.reserve(series_.size());
    for (const auto &[name, entry] : series_) {
        const TimeSeries &series = entry.series;
        SeriesSummary s;
        s.name = name;
        s.last = series.last();
        s.count = series.totalSamples();
        s.min = series.overallMin();
        s.max = series.overallMax();
        s.mean = series.overallMean();
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<TelemetryHub::RawSeries>
TelemetryHub::rawSnapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<RawSeries> out;
    out.reserve(series_.size());
    for (const auto &[name, entry] : series_) {
        RawSeries s;
        s.name = name;
        s.id = entry.id;
        s.totalSamples = entry.series.totalSamples();
        s.raw = entry.series.raw();
        out.push_back(std::move(s));
    }
    return out;
}

void
TelemetryHub::mergeFrom(const TelemetryHub &other, const std::string &prefix)
{
    // Copy the source series under its lock first so self-merge and
    // lock-order issues cannot arise.
    std::map<std::string, Entry, std::less<>> copy;
    {
        std::lock_guard<std::mutex> lock(other.mu_);
        copy = other.series_;
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, entry] : copy) {
        // An empty series carries no samples and would only add
        // zero-valued rows to summaries and Prometheus expositions.
        if (entry.series.empty())
            continue;
        // Ids are hub-local: a merged-in series keeps the target's
        // existing id or receives a fresh one, never the source's.
        auto it = series_.find(prefix + name);
        if (it == series_.end())
            series_.emplace(prefix + name,
                            Entry{std::move(entry.series), nextId_++});
        else
            it->second.series = std::move(entry.series);
    }
}

} // namespace pad::telemetry
