/**
 * @file
 * JSONL trace-log reader for forensics tooling.
 *
 * Reads the one-JSON-object-per-line format that JsonlTraceSink
 * writes back into typed TraceRecords. Real trace files get
 * truncated — a run killed mid-write leaves a partial last line —
 * so the reader is deliberately forgiving: a line that fails to
 * parse, or parses but is not a trace record (no "ts"/"name"), is
 * counted and skipped with a warning rather than aborting the load.
 * `padtrace` relies on this to analyse whatever prefix of a run made
 * it to disk.
 */

#ifndef PAD_TELEMETRY_TRACE_READER_H
#define PAD_TELEMETRY_TRACE_READER_H

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"
#include "util/types.h"

namespace pad::telemetry {

/** One parsed trace event. */
struct TraceRecord {
    Tick ts = 0;
    /** Span length; 0 for instants. */
    Tick dur = 0;
    /** Sweep job index; -1 = main thread. */
    int job = -1;
    std::string component;
    std::string name;
    /** The "args" object; Null kind when the event had none. */
    JsonValue args;

    /** Arg by key, or nullptr. */
    const JsonValue *arg(std::string_view key) const;
    /** Numeric arg by key; @p fallback when absent or non-numeric. */
    double argNumber(std::string_view key, double fallback = 0.0) const;
    /** String arg by key; empty when absent or non-string. */
    std::string argString(std::string_view key) const;
};

/** A loaded trace file. */
struct TraceLog {
    /** Records in file order. */
    std::vector<TraceRecord> records;
    /** Lines skipped because they were corrupt or not records. */
    std::size_t skipped = 0;
    /** Total lines visited (records + skipped + blanks). */
    std::size_t lines = 0;
};

/** Read JSONL records from @p in; never fails, see TraceLog. */
TraceLog readTraceLog(std::istream &in);

/**
 * Read a JSONL trace file. Returns nullopt (and fills @p error) only
 * when the file cannot be opened; corrupt content is reported via
 * TraceLog::skipped.
 */
std::optional<TraceLog> readTraceLogFile(const std::string &path,
                                         std::string *error = nullptr);

} // namespace pad::telemetry

#endif // PAD_TELEMETRY_TRACE_READER_H
