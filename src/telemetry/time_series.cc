#include "telemetry/time_series.h"

namespace pad::telemetry {

TimeSeries::TimeSeries(const TimeSeriesOptions &opts)
    : raw_(opts.rawCapacity),
      minute_(kTicksPerMinute, opts.bucketCapacity),
      fiveMinute_(5 * kTicksPerMinute, opts.bucketCapacity)
{
}

void
TimeSeries::Rollup::fold(Tick when, double value)
{
    // Align to the bucket grid; ticks are non-negative in practice
    // but guard the modulo for robustness.
    Tick start = (when / width) * width;
    if (start > when)
        start -= width;

    if (hasOpen && start <= open.start) {
        // Same bucket (or a late sample): fold into the open bucket.
        if (value < open.min)
            open.min = value;
        if (value > open.max)
            open.max = value;
        open.sum += value;
        open.last = value;
        ++open.count;
        return;
    }
    if (hasOpen)
        closed.push(open);
    open = Bucket{};
    open.start = start;
    open.width = width;
    open.min = value;
    open.max = value;
    open.sum = value;
    open.last = value;
    open.count = 1;
    hasOpen = true;
}

std::vector<Bucket>
TimeSeries::Rollup::buckets() const
{
    std::vector<Bucket> out = closed.ordered();
    if (hasOpen)
        out.push_back(open);
    return out;
}

void
TimeSeries::record(Tick when, double value)
{
    raw_.push(Sample{when, value});
    minute_.fold(when, value);
    fiveMinute_.fold(when, value);

    if (total_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }
    sum_ += value;
    ++total_;
    last_ = Sample{when, value};
}

double
TimeSeries::overallMean() const
{
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

std::vector<Sample>
TimeSeries::raw() const
{
    return raw_.ordered();
}

std::vector<Bucket>
TimeSeries::minuteBuckets() const
{
    return minute_.buckets();
}

std::vector<Bucket>
TimeSeries::fiveMinuteBuckets() const
{
    return fiveMinute_.buckets();
}

} // namespace pad::telemetry
