#include "telemetry/trace_reader.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace pad::telemetry {

const JsonValue *
TraceRecord::arg(std::string_view key) const
{
    if (!args.isObject())
        return nullptr;
    return args.find(key);
}

double
TraceRecord::argNumber(std::string_view key, double fallback) const
{
    const JsonValue *v = arg(key);
    if (!v)
        return fallback;
    if (v->isNumber())
        return v->number;
    if (v->isBool())
        return v->boolean ? 1.0 : 0.0;
    return fallback;
}

std::string
TraceRecord::argString(std::string_view key) const
{
    const JsonValue *v = arg(key);
    return v && v->isString() ? v->str : std::string();
}

TraceLog
readTraceLog(std::istream &in)
{
    TraceLog log;
    std::string line;
    while (std::getline(in, line)) {
        ++log.lines;
        if (line.empty())
            continue;

        std::string error;
        auto doc = parseJson(line, &error);
        if (!doc || !doc->isObject()) {
            ++log.skipped;
            warn("trace reader: skipping corrupt line {}: {}",
                 log.lines, doc ? "not an object" : error);
            continue;
        }
        const JsonValue *ts = doc->find("ts");
        const JsonValue *name = doc->find("name");
        if (!ts || !ts->isNumber() || !name || !name->isString()) {
            ++log.skipped;
            warn("trace reader: line {} is not a trace record",
                 log.lines);
            continue;
        }

        TraceRecord rec;
        rec.ts = static_cast<Tick>(std::llround(ts->number));
        rec.name = name->str;
        if (const JsonValue *dur = doc->find("dur");
            dur && dur->isNumber())
            rec.dur = static_cast<Tick>(std::llround(dur->number));
        if (const JsonValue *job = doc->find("job");
            job && job->isNumber())
            rec.job = static_cast<int>(std::llround(job->number));
        if (const JsonValue *component = doc->find("component");
            component && component->isString())
            rec.component = component->str;
        if (const JsonValue *args = doc->find("args"))
            rec.args = *args;
        log.records.push_back(std::move(rec));
    }
    return log;
}

std::optional<TraceLog>
readTraceLogFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return std::nullopt;
    }
    return readTraceLog(in);
}

} // namespace pad::telemetry
