/**
 * @file
 * Push-based telemetry export: the pad-rw-v1 batch codec and the
 * RemoteWriteShipper.
 *
 * The pull-based scrape endpoint (telemetry/http.h) requires a
 * scraper to find every padsim/padd process; a fleet of daemons
 * instead *pushes* its telemetry to one aggregation point. The
 * shipper snapshots a TelemetryHub on a sim-time interval into
 * tick-stamped line-JSON batches ("pad-rw-v1" schema, DESIGN.md
 * §14) and delivers them over a persistent localhost TCP connection
 * with the full robustness envelope:
 *
 *  - bounded in-memory queue with an explicit drop-newest policy
 *    (drops visible as pad_rw_dropped_total self-metrics);
 *  - exponential backoff with deterministic jitter on connect/send
 *    failure;
 *  - optional write-ahead spill to <spool>/rw_spool-*.jsonl while
 *    the peer is down, replayed in order on reconnect (crash-cut
 *    tails tolerated);
 *  - clean drain-on-shutdown with a hard deadline.
 *
 * Batches are stamped with *sim* ticks and cut by the sim thread at
 * step boundaries, so a daemon replayed from a session log produces
 * the exact same batch stream as the live run; only the delivery
 * legwork (connect, retry, spool) happens on the shipper's own
 * background thread, off the sim hot path.
 */

#ifndef PAD_TELEMETRY_REMOTE_WRITE_H
#define PAD_TELEMETRY_REMOTE_WRITE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/hub.h"
#include "telemetry/time_series.h"

namespace pad::sim {
class StatsRegistry;
}

namespace pad::telemetry {

// ---------------------------------------------------------------------------
// pad-rw-v1 codec
// ---------------------------------------------------------------------------

/** One series' new samples inside a batch. */
struct RwSeriesChunk {
    std::string name;
    std::vector<Sample> samples;
};

/**
 * One pad-rw-v1 batch: either a "batch" of time-series samples or a
 * final "stats" dump of StatsRegistry scalars/counters. Rendered as
 * a single JSON line; on the wire each line is length-prefixed with
 * a `pad-rw-v1 <bytes>\n` header so a receiver can frame without
 * scanning, while spool files store the bare lines (plain JSONL,
 * directly inspectable with padtrace rw).
 */
struct RwBatch {
    /** "batch" (samples) or "stats" (registry dump). */
    std::string type = "batch";
    /** Shipper identity; the receiver prefixes series with it. */
    std::string source;
    /** Per-source sequence number, starting at 0, no gaps. */
    std::uint64_t seq = 0;
    /** Sim tick the snapshot was cut at. */
    Tick tick = 0;
    /** type == "batch": new samples per series, name-sorted. */
    std::vector<RwSeriesChunk> series;
    /** type == "stats": registry dump, name-sorted. */
    std::vector<std::pair<std::string, double>> scalars;
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    /** Total sample count across every series chunk. */
    std::uint64_t sampleCount() const;
};

/** Render @p b as one minified JSON line (no trailing newline). */
std::string renderRwBatchLine(const RwBatch &b);

/**
 * Parse one JSON line previously produced by renderRwBatchLine().
 * Returns nullopt (and sets @p error) on malformed input.
 */
std::optional<RwBatch> parseRwBatchLine(std::string_view line,
                                        std::string *error = nullptr);

/**
 * Wrap a rendered batch line in the wire framing:
 * `pad-rw-v1 <N>\n<line>\n` where N counts the line plus its
 * terminating newline.
 */
std::string frameRwLine(const std::string &line);

/** Summary of a validated batch stream (padtrace rw). */
struct RwStreamInfo {
    std::uint64_t batches = 0;      ///< type == "batch" lines
    std::uint64_t statsBatches = 0; ///< type == "stats" lines
    std::uint64_t samples = 0;
    bool framed = false;      ///< wire framing vs bare JSONL spool
    bool truncatedTail = false; ///< crash-cut final record ignored
    std::vector<std::string> sources; ///< sorted unique
    Tick firstTick = kTickNever;
    Tick lastTick = kTickNever;
};

/**
 * Validate a pad-rw-v1 stream: either a framed wire capture or a
 * bare JSONL spool file (auto-detected by the `pad-rw-v1 ` header).
 * Checks every complete record parses, per-source sequence numbers
 * strictly increase, and sample ticks within each chunk are
 * non-decreasing. A crash-cut final record (missing bytes or an
 * unterminated line) is tolerated and reported via
 * RwStreamInfo::truncatedTail, matching the spool-replay contract.
 */
bool validateRwStream(std::string_view text, std::string *error = nullptr,
                      RwStreamInfo *info = nullptr);

/** Split "HOST:PORT" (numeric port 1..65535); nullopt + error on bad input. */
std::optional<std::pair<std::string, int>>
parseHostPort(std::string_view spec, std::string *error = nullptr);

// ---------------------------------------------------------------------------
// Shipper
// ---------------------------------------------------------------------------

struct RemoteWriteOptions {
    /** Receiver address (IPv4 dotted quad or "localhost"). */
    std::string host = "127.0.0.1";
    int port = 0;
    /** Source label; the receiver prefixes series `fleet.<source>.`. */
    std::string source = "pad";
    /** Sim-time snapshot interval in seconds. */
    double intervalS = 60.0;
    /** Max batches held in memory while the sender catches up. */
    std::size_t queueLimit = 64;
    /** Spill directory; empty disables the disk WAL. */
    std::string spoolDir;
    /** Wall-clock budget for the shutdown drain, seconds. */
    double drainDeadlineS = 5.0;
    /** First reconnect delay; doubles per failure up to the cap. */
    int backoffBaseMs = 50;
    int backoffCapMs = 2000;
    /** Seed for the deterministic backoff jitter. */
    std::uint64_t jitterSeed = 1;
    /** Wall-clock budget waiting for one batch acknowledgement. */
    int ackTimeoutMs = 5000;
};

/**
 * Ships TelemetryHub samples (and a final StatsRegistry dump) to a
 * ReceiverServer.
 *
 * Threading contract: start(), observe(), snapshotNow() and
 * finish() are called from the sim thread only; one internal sender
 * thread owns the socket, the backoff timer and the spool files.
 * The two sides meet at a bounded batch queue. counters() is safe
 * from any thread.
 *
 * Delivery is stop-and-wait: each framed batch must be acknowledged
 * (`{"ok":true,"seq":N}`) before the next is sent, and the receiver
 * ignores (but still acks) sequence numbers it has already merged —
 * so a resend after a lost ack cannot double-count.
 */
class RemoteWriteShipper
{
  public:
    /** @p hub not owned; must outlive finish()/destruction. */
    RemoteWriteShipper(RemoteWriteOptions opts, const TelemetryHub *hub);
    ~RemoteWriteShipper();

    RemoteWriteShipper(const RemoteWriteShipper &) = delete;
    RemoteWriteShipper &operator=(const RemoteWriteShipper &) = delete;

    /**
     * Validate options, create the spool directory if configured,
     * and launch the sender thread. Fail-fast: returns false with a
     * one-line @p error on a bad target or unusable spool dir. Does
     * NOT wait for a connection — the receiver may come up later.
     */
    bool start(std::string *error = nullptr);

    /**
     * Sim-thread heartbeat; call once per coarse step with the
     * current tick. The first call anchors the interval clock; each
     * later call cuts a snapshot batch when a full interval has
     * elapsed. Cheap no-op otherwise.
     */
    void observe(Tick now);

    /** Cut a snapshot batch immediately (new samples since last). */
    void snapshotNow(Tick now);

    /**
     * Final flush: cut a last snapshot, append a "stats" batch when
     * @p stats is non-null, then drain the queue to the peer (or
     * spool) within the configured hard deadline and join the
     * sender. Batches still undelivered at the deadline are counted
     * as dropped (or spooled when a spool is configured). Idempotent.
     */
    void finish(Tick now, const sim::StatsRegistry *stats = nullptr);

    bool started() const { return started_; }
    bool finished() const { return finished_; }

    /** Self-metrics; exposed as pad_rw_* by the daemon exposition. */
    struct Counters {
        std::uint64_t batchesEnqueued = 0;
        std::uint64_t batchesSent = 0;
        std::uint64_t batchesDropped = 0;
        std::uint64_t batchesSpooled = 0;
        std::uint64_t spoolReplayed = 0;
        std::uint64_t samplesShipped = 0;
        std::uint64_t samplesLost = 0; ///< evicted from the hub ring
        std::uint64_t reconnects = 0;  ///< successful connects
        std::uint64_t sendFailures = 0;
    };
    Counters counters() const;

    /** Render the pad_rw_* self-metric exposition lines. */
    static std::string renderPromCounters(const Counters &c);

  private:
    void senderLoop();
    bool connectPeer();
    void disconnectPeer();
    bool sendFramed(const std::string &line);
    bool awaitAck();
    bool deliverOrSpool(const std::string &line);
    void spillQueueLocked(std::unique_lock<std::mutex> &lock);
    bool spoolAppend(const std::string &line);
    bool replaySpool();
    std::vector<std::string> spoolFiles() const;
    void backoffWait();
    void enqueue(std::string line, std::uint64_t samples);

    RemoteWriteOptions opts_;
    const TelemetryHub *hub_;

    // Sim-thread-only snapshot state.
    std::map<std::string, std::uint64_t> cursor_; ///< name -> totalSamples
    std::uint64_t nextSeq_ = 0;
    Tick lastSnapTick_ = kTickNever;
    Tick intervalTicks_ = 0;
    bool started_ = false;
    bool finished_ = false;

    // Queue shared between sim thread and sender.
    mutable std::mutex mu_;
    std::condition_variable cv_;      ///< work for the sender
    std::condition_variable doneCv_;  ///< sender progress for finish()
    std::deque<std::pair<std::string, std::uint64_t>> queue_;
    bool draining_ = false;
    bool stop_ = false;
    bool senderDone_ = false;

    // Sender-thread-only state.
    std::thread sender_;
    int fd_ = -1;
    std::string recvBuf_;
    int failureStreak_ = 0;
    std::uint64_t jitterState_ = 0;
    int spoolNext_ = 0;       ///< next spool file index
    std::string spoolOpen_;   ///< file currently appended to
    std::uint64_t spoolOpenBytes_ = 0;

    // Self-metrics (relaxed atomics; any thread may read).
    std::atomic<std::uint64_t> enqueued_{0};
    std::atomic<std::uint64_t> sent_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> spooled_{0};
    std::atomic<std::uint64_t> replayed_{0};
    std::atomic<std::uint64_t> shippedSamples_{0};
    std::atomic<std::uint64_t> lostSamples_{0};
    std::atomic<std::uint64_t> reconnects_{0};
    std::atomic<std::uint64_t> sendFailures_{0};
};

} // namespace pad::telemetry

#endif // PAD_TELEMETRY_REMOTE_WRITE_H
