#include "telemetry/sim_probe.h"

namespace pad::telemetry {

std::size_t
attachSimulator(sim::Simulator &sim, TelemetryHub &hub, Tick period)
{
    sim::Simulator *engine = &sim;
    TelemetryHub *target = &hub;
    return sim.every(period, [engine, target] {
        const Tick t = engine->now();
        target->record("sim.queue_depth", t,
                       static_cast<double>(engine->events().size()));
        target->record("sim.time_sec", t, ticksToSeconds(t));
    });
}

} // namespace pad::telemetry
