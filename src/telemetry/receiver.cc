#include "telemetry/receiver.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "sim/stats_registry.h"
#include "telemetry/remote_write.h"
#include "util/json_writer.h"

namespace pad::telemetry {

namespace {

constexpr std::string_view kFramePrefix = "pad-rw-v1 ";
/** A connection buffering this much without a complete frame is gone. */
constexpr std::size_t kMaxConnBuffer = 16u << 20;

bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

ReceiverServer::ReceiverServer(int port) : requestedPort_(port) {}

ReceiverServer::~ReceiverServer()
{
    stop();
}

bool
ReceiverServer::start(std::string *error)
{
    if (running_)
        return true;

    const auto fail = [&](const char *what) {
        if (error)
            *error = std::string("receiver: ") + what + " 127.0.0.1:" +
                     std::to_string(requestedPort_) + ": " +
                     std::strerror(errno);
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return false;
    };

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("socket");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(requestedPort_));
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        return fail("bind");
    if (::listen(listenFd_, 8) < 0)
        return fail("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) < 0)
        return fail("getsockname");
    port_ = ntohs(addr.sin_port);

    stop_ = false;
    running_ = true;
    thread_ = std::thread(&ReceiverServer::serveLoop, this);
    return true;
}

void
ReceiverServer::stop()
{
    if (!running_)
        return;
    stop_ = true;
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    running_ = false;
}

void
ReceiverServer::setListener(SampleListener *listener)
{
    hub_.setListener(listener);
}

void
ReceiverServer::serveLoop()
{
    std::vector<Connection> conns;
    while (!stop_) {
        std::vector<pollfd> pfds;
        pfds.reserve(conns.size() + 1);
        pfds.push_back(pollfd{listenFd_, POLLIN, 0});
        for (const Connection &conn : conns)
            pfds.push_back(pollfd{conn.fd, POLLIN, 0});

        const int ready =
            ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                   100 /* ms */);
        if (ready <= 0)
            continue;

        if (pfds[0].revents & POLLIN) {
            const int fd = ::accept(listenFd_, nullptr, nullptr);
            if (fd >= 0) {
                conns.push_back(Connection{fd, {}});
                connections_.fetch_add(1, std::memory_order_relaxed);
            }
        }

        // pfds[i + 1] mirrors conns[i]; a freshly accepted conn has
        // no pollfd yet and is simply picked up next iteration.
        for (std::size_t i = 0;
             i < conns.size() && i + 1 < pfds.size(); ++i) {
            if (!(pfds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            Connection &conn = conns[i];
            char chunk[4096];
            const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
            bool keep = n > 0;
            if (keep) {
                conn.buffer.append(chunk,
                                   static_cast<std::size_t>(n));
                keep = drainFrames(conn);
            }
            if (!keep) {
                ::close(conn.fd);
                conn.fd = -1;
            }
        }
        conns.erase(std::remove_if(conns.begin(), conns.end(),
                                   [](const Connection &c) {
                                       return c.fd < 0;
                                   }),
                    conns.end());
    }
    for (Connection &conn : conns)
        ::close(conn.fd);
}

bool
ReceiverServer::drainFrames(Connection &conn)
{
    for (;;) {
        const std::size_t nl = conn.buffer.find('\n');
        if (nl == std::string::npos) {
            if (conn.buffer.size() > kMaxConnBuffer) {
                protocolErrors_.fetch_add(1,
                                          std::memory_order_relaxed);
                return false;
            }
            return true; // need more bytes
        }
        if (conn.buffer.rfind(kFramePrefix, 0) != 0) {
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        std::size_t len = 0;
        for (std::size_t i = kFramePrefix.size(); i < nl; ++i) {
            const char c = conn.buffer[i];
            if (!std::isdigit(static_cast<unsigned char>(c))) {
                protocolErrors_.fetch_add(1,
                                          std::memory_order_relaxed);
                return false;
            }
            len = len * 10 + static_cast<std::size_t>(c - '0');
        }
        if (len == 0 || len > kMaxConnBuffer) {
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        const std::size_t total = nl + 1 + len;
        if (conn.buffer.size() < total)
            return true; // frame not complete yet
        if (conn.buffer[total - 1] != '\n') {
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        const std::string_view line(conn.buffer.data() + nl + 1,
                                    len - 1);
        bool ok = false;
        const std::string ack = handleLine(line, &ok);
        if (!sendAll(conn.fd, ack + "\n"))
            return false;
        if (!ok) {
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        conn.buffer.erase(0, total);
    }
}

std::string
ReceiverServer::handleLine(std::string_view line, bool *ok)
{
    const auto batch = parseRwBatchLine(line);
    if (!batch) {
        *ok = false;
        return "{\"ok\":false}";
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        auto [it, fresh] = lastSeq_.emplace(batch->source, -1);
        (void)fresh;
        if (static_cast<std::int64_t>(batch->seq) <= it->second) {
            // Resend after a lost ack or a spool re-replay: already
            // merged, acknowledge without double-counting.
            duplicates_.fetch_add(1, std::memory_order_relaxed);
        } else {
            it->second = static_cast<std::int64_t>(batch->seq);
            maxTick_ = std::max(maxTick_, batch->tick);
            const std::string prefix = "fleet." + batch->source + ".";
            if (batch->type == "batch") {
                for (const RwSeriesChunk &chunk : batch->series) {
                    const std::string name = prefix + chunk.name;
                    for (const Sample &s : chunk.samples)
                        hub_.record(name, s.when, s.value);
                    samples_.fetch_add(chunk.samples.size(),
                                       std::memory_order_relaxed);
                }
                batches_.fetch_add(1, std::memory_order_relaxed);
            } else {
                for (const auto &[name, value] : batch->scalars)
                    scalars_[prefix + name] = value;
                for (const auto &[name, value] : batch->counters)
                    counterStats_[prefix + name] = value;
                statsBatches_.fetch_add(1,
                                        std::memory_order_relaxed);
            }
        }
    }

    *ok = true;
    return "{\"ok\":true,\"seq\":" + std::to_string(batch->seq) + "}";
}

std::string
ReceiverServer::renderMetrics(
    const std::vector<AlertStateSample> *alerts) const
{
    std::map<std::string, double> scalars;
    std::map<std::string, std::uint64_t> counterStats;
    {
        std::lock_guard<std::mutex> lock(mu_);
        scalars = scalars_;
        counterStats = counterStats_;
    }
    sim::StatsRegistry reg;
    for (const auto &[name, value] : scalars)
        reg.registerScalar(name, "merged fleet stat").add(value);
    for (const auto &[name, value] : counterStats)
        reg.registerCounter(name, "merged fleet counter").add(value);

    std::string out = PromWriter().render(&reg, &hub_, alerts);

    const Counters c = counters();
    std::ostringstream os;
    const auto counterRow = [&os](const char *name, const char *help,
                                  std::uint64_t value) {
        os << "# HELP " << name << ' ' << help << '\n'
           << "# TYPE " << name << " counter\n"
           << name << ' ' << value << '\n';
    };
    counterRow("pad_rx_connections_total",
               "Shipper connections accepted.", c.connections);
    counterRow("pad_rx_batches_total",
               "Sample batches merged into the fleet hub.",
               c.batches);
    counterRow("pad_rx_stats_batches_total",
               "Final stats dumps merged.", c.statsBatches);
    counterRow("pad_rx_samples_total", "Samples merged.", c.samples);
    counterRow("pad_rx_duplicates_total",
               "Frames acknowledged but already merged.",
               c.duplicates);
    counterRow("pad_rx_protocol_errors_total",
               "Connections dropped for malformed frames.",
               c.protocolErrors);
    os << "# HELP pad_rx_sources Distinct sources seen.\n"
       << "# TYPE pad_rx_sources gauge\n"
       << "pad_rx_sources " << sourceCount() << '\n';
    return out + os.str();
}

std::string
ReceiverServer::dumpMerged() const
{
    std::map<std::string, std::int64_t> lastSeq;
    std::map<std::string, double> scalars;
    std::map<std::string, std::uint64_t> counterStats;
    {
        std::lock_guard<std::mutex> lock(mu_);
        lastSeq = lastSeq_;
        scalars = scalars_;
        counterStats = counterStats_;
    }

    // Only merged payload state goes into the dump — transport
    // counters (connections, duplicates) vary with retry timing and
    // would break the replay byte-identity contract.
    std::ostringstream os;
    os << "pad-rx-dump v1\n";
    for (const auto &[source, seq] : lastSeq)
        os << "source " << source << " last_seq " << seq << '\n';
    for (const TelemetryHub::SeriesSummary &s : hub_.summary())
        os << "series " << s.name << " count " << s.count << " min "
           << JsonWriter::formatDouble(s.min) << " max "
           << JsonWriter::formatDouble(s.max) << " mean "
           << JsonWriter::formatDouble(s.mean) << " last_tick "
           << s.last.when << " last_value "
           << JsonWriter::formatDouble(s.last.value) << '\n';
    for (const auto &[name, value] : scalars)
        os << "scalar " << name << ' '
           << JsonWriter::formatDouble(value) << '\n';
    for (const auto &[name, value] : counterStats)
        os << "counter " << name << ' ' << value << '\n';
    return os.str();
}

ReceiverServer::Counters
ReceiverServer::counters() const
{
    Counters c;
    c.connections = connections_.load(std::memory_order_relaxed);
    c.batches = batches_.load(std::memory_order_relaxed);
    c.statsBatches = statsBatches_.load(std::memory_order_relaxed);
    c.samples = samples_.load(std::memory_order_relaxed);
    c.duplicates = duplicates_.load(std::memory_order_relaxed);
    c.protocolErrors = protocolErrors_.load(std::memory_order_relaxed);
    return c;
}

std::size_t
ReceiverServer::sourceCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lastSeq_.size();
}

Tick
ReceiverServer::maxTick() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return maxTick_;
}

} // namespace pad::telemetry
