/**
 * @file
 * Direct Simulator-side telemetry hook.
 *
 * attachSimulator() installs a periodic probe on a sim::Simulator
 * that records engine health series into a TelemetryHub:
 *
 *   sim.queue_depth  - live events in the queue
 *   sim.time_sec     - simulated seconds at each probe firing
 *
 * The probe rides the simulator's own event queue (Simulator::every)
 * so it observes time exactly as components do and costs nothing
 * when no hub is attached anywhere. Returns the periodic id for
 * Simulator::cancelPeriodic().
 */

#ifndef PAD_TELEMETRY_SIM_PROBE_H
#define PAD_TELEMETRY_SIM_PROBE_H

#include <cstddef>

#include "sim/simulator.h"
#include "telemetry/hub.h"

namespace pad::telemetry {

/**
 * Install the probe; @p hub must outlive the simulation run.
 *
 * @param period sampling period in ticks (default one minute)
 */
std::size_t attachSimulator(sim::Simulator &sim, TelemetryHub &hub,
                            Tick period = kTicksPerMinute);

} // namespace pad::telemetry

#endif // PAD_TELEMETRY_SIM_PROBE_H
