/**
 * @file
 * Prometheus text-format exposition (format version 0.0.4).
 *
 * PromWriter renders a StatsRegistry and/or a TelemetryHub as the
 * plain-text scrape format Prometheus and promtool understand:
 *
 *   - scalars   -> gauges
 *   - counters  -> counters, canonical `_total` suffix
 *   - vectors   -> gauges with an `index` label per element
 *   - histograms-> summaries with p50/p95/p99 `quantile` labels
 *                  plus `_sum` / `_count`
 *   - timers    -> `<name>_seconds` summaries (`_sum`/`_count`) with
 *                  `_seconds_min` / `_seconds_max` gauges
 *   - hub series-> `pad_series_{last,min,max,avg}` gauges and a
 *                  `pad_series_samples_total` counter, one labelled
 *                  sample per series
 *
 * Dotted stat names are sanitised to the Prometheus charset and
 * prefixed (default `pad_`). Rendering order is deterministic (name
 * order within each section), so --prom files can be diffed.
 *
 * validatePromExposition() is a promtool-style grammar check used by
 * tests and available to tools; it verifies comment syntax, metric
 * name/label charsets, value parseability, and TYPE placement.
 */

#ifndef PAD_TELEMETRY_PROM_H
#define PAD_TELEMETRY_PROM_H

#include <iosfwd>
#include <string>
#include <string_view>

#include "telemetry/hub.h"

namespace pad::sim {
class StatsRegistry;
}

namespace pad::telemetry {

class PromWriter
{
  public:
    struct Options {
        /** Prepended (with '_') to every metric name. */
        std::string prefix = "pad";
    };

    PromWriter() = default;
    explicit PromWriter(Options opts) : opts_(std::move(opts)) {}

    /** Render @p stats and/or @p hub (either may be null). */
    void write(std::ostream &os, const sim::StatsRegistry *stats,
               const TelemetryHub *hub) const;

    /** write() into a string. */
    std::string render(const sim::StatsRegistry *stats,
                       const TelemetryHub *hub) const;

  private:
    Options opts_;
};

/**
 * Map an arbitrary dotted stat name onto the Prometheus metric-name
 * charset [a-zA-Z0-9_:]: '.' becomes '_', every other invalid byte
 * becomes '_', and a leading digit gains a '_' prefix.
 */
std::string promSanitize(std::string_view name);

/**
 * Grammar-check a text exposition. Returns true when every line is
 * a valid comment, metric sample, or blank, and every # TYPE appears
 * at most once per metric and before that metric's first sample.
 * On failure @p error (when non-null) describes the first offence
 * with its line number.
 */
bool validatePromExposition(std::string_view text,
                            std::string *error = nullptr);

} // namespace pad::telemetry

#endif // PAD_TELEMETRY_PROM_H
