/**
 * @file
 * Prometheus text-format exposition (format version 0.0.4).
 *
 * PromWriter renders a StatsRegistry and/or a TelemetryHub as the
 * plain-text scrape format Prometheus and promtool understand:
 *
 *   - scalars   -> gauges
 *   - counters  -> counters, canonical `_total` suffix
 *   - vectors   -> gauges with an `index` label per element
 *   - histograms-> summaries with p50/p95/p99 `quantile` labels
 *                  plus `_sum` / `_count`
 *   - timers    -> `<name>_seconds` summaries (`_sum`/`_count`) with
 *                  `_seconds_min` / `_seconds_max` gauges
 *   - hub series-> `pad_series_{last,min,max,avg}` gauges and a
 *                  `pad_series_samples_total` counter, one labelled
 *                  sample per series
 *
 * Dotted stat names are sanitised to the Prometheus charset and
 * prefixed (default `pad_`). Rendering order is deterministic (name
 * order within each section), so --prom files can be diffed.
 *
 * validatePromExposition() is a promtool-style grammar check used by
 * tests and available to tools; it verifies comment syntax, metric
 * name/label charsets, value parseability, and TYPE placement.
 */

#ifndef PAD_TELEMETRY_PROM_H
#define PAD_TELEMETRY_PROM_H

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/hub.h"

namespace pad::sim {
class StatsRegistry;
}

namespace pad::telemetry {

/**
 * Exposition snapshot of one alert rule, produced by
 * alert::AlertEngine::ruleStates(). Declared here (plain data, no
 * alert dependency) so PromWriter can render alert gauges without
 * the telemetry library depending on the alert library.
 */
struct AlertStateSample {
    /** Rule name; sweep merges prefix it with "job<i>.". */
    std::string rule;
    /** Lower-case severity name ("info"/"warning"/"critical"). */
    std::string severity;
    /** Lifecycle state: 0 idle, 1 pending, 2 firing. */
    int state = 0;
    /** Incidents the rule has fired so far. */
    std::uint64_t fired = 0;
};

class PromWriter
{
  public:
    struct Options {
        /**
         * Prepended (with '_') to every metric name. Must itself be
         * a valid Prometheus metric name ([a-zA-Z_:][a-zA-Z0-9_:]*)
         * or empty; write() rejects anything else with
         * std::invalid_argument rather than emitting a malformed
         * exposition. (Stat and series names need no such care —
         * they are sanitised automatically.)
         */
        std::string prefix = "pad";
    };

    PromWriter() = default;
    explicit PromWriter(Options opts) : opts_(std::move(opts)) {}

    /**
     * Render @p stats and/or @p hub and/or @p alerts (each may be
     * null). Alert states become `<prefix>_alert_state{rule,
     * severity}` gauges plus `<prefix>_alert_fired_total{rule}`
     * counters.
     */
    void write(std::ostream &os, const sim::StatsRegistry *stats,
               const TelemetryHub *hub,
               const std::vector<AlertStateSample> *alerts =
                   nullptr) const;

    /** write() into a string. */
    std::string render(const sim::StatsRegistry *stats,
                       const TelemetryHub *hub,
                       const std::vector<AlertStateSample> *alerts =
                           nullptr) const;

  private:
    Options opts_;
};

/**
 * Map an arbitrary dotted stat name onto the Prometheus metric-name
 * charset [a-zA-Z0-9_:]: '.' becomes '_', every other invalid byte
 * becomes '_', and a leading digit gains a '_' prefix.
 */
std::string promSanitize(std::string_view name);

/**
 * Escape a label value for the exposition format: '\\' -> "\\\\",
 * newline -> "\\n", '"' -> "\\\"". Everything else passes through.
 */
std::string promEscapeLabel(std::string_view value);

/**
 * Invert promEscapeLabel(). Returns nullopt on a dangling or
 * unknown escape sequence — the round-trip guarantee tests rely on.
 */
std::optional<std::string> promUnescapeLabel(std::string_view value);

/**
 * Grammar-check a text exposition. Returns true when every line is
 * a valid comment, metric sample, or blank, and every # TYPE appears
 * at most once per metric and before that metric's first sample.
 * On failure @p error (when non-null) describes the first offence
 * with its line number.
 */
bool validatePromExposition(std::string_view text,
                            std::string *error = nullptr);

} // namespace pad::telemetry

#endif // PAD_TELEMETRY_PROM_H
