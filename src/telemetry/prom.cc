#include "telemetry/prom.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "sim/stats_registry.h"
#include "util/json_writer.h"

namespace pad::telemetry {

namespace {

std::string
fmtValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    return JsonWriter::formatDouble(v);
}

/** Escape a HELP text or label value per the exposition format. */
std::string
escapeText(std::string_view s, bool label)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else if (label && c == '"')
            out += "\\\"";
        else
            out += c;
    }
    return out;
}

/** Spell out why a prefix is unusable; empty string = fine. */
std::string
prefixProblem(const std::string &prefix)
{
    if (prefix.empty())
        return {};
    auto ok = [](char c, bool first) {
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
            c == ':')
            return true;
        return !first && std::isdigit(static_cast<unsigned char>(c));
    };
    for (std::size_t k = 0; k < prefix.size(); ++k)
        if (!ok(prefix[k], k == 0))
            return "invalid Prometheus metric prefix \"" + prefix +
                   "\": character '" + prefix[k] + "' at position " +
                   std::to_string(k) +
                   " is outside [a-zA-Z0-9_:] (or a leading digit)";
    return {};
}

void
writeHeader(std::ostream &os, const std::string &metric,
            const std::string &desc, const char *type)
{
    if (!desc.empty())
        os << "# HELP " << metric << " " << escapeText(desc, false)
           << "\n";
    os << "# TYPE " << metric << " " << type << "\n";
}

bool
validMetricName(std::string_view name)
{
    if (name.empty())
        return false;
    auto ok = [](char c, bool first) {
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
            c == ':')
            return true;
        return !first && std::isdigit(static_cast<unsigned char>(c));
    };
    if (!ok(name[0], true))
        return false;
    for (std::size_t k = 1; k < name.size(); ++k)
        if (!ok(name[k], false))
            return false;
    return true;
}

bool
validLabelName(std::string_view name)
{
    if (name.empty())
        return false;
    auto ok = [](char c, bool first) {
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
            return true;
        return !first && std::isdigit(static_cast<unsigned char>(c));
    };
    if (!ok(name[0], true))
        return false;
    for (std::size_t k = 1; k < name.size(); ++k)
        if (!ok(name[k], false))
            return false;
    return true;
}

bool
parseSampleValue(std::string_view token)
{
    if (token == "NaN" || token == "+Inf" || token == "-Inf" ||
        token == "Inf")
        return true;
    if (token.empty())
        return false;
    char *end = nullptr;
    const std::string buf(token);
    std::strtod(buf.c_str(), &end);
    return end == buf.c_str() + buf.size();
}

/** Metric a sample name belongs to for TYPE-placement accounting. */
std::string
baseMetric(std::string_view name)
{
    for (const std::string_view suffix :
         {"_sum", "_count", "_bucket"}) {
        if (name.size() > suffix.size() &&
            name.substr(name.size() - suffix.size()) == suffix)
            return std::string(name.substr(0, name.size() -
                                                  suffix.size()));
    }
    return std::string(name);
}

} // namespace

std::string
promSanitize(std::string_view name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (const char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == ':')
            out += c;
        else
            out += '_';
    }
    if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0])))
        out.insert(out.begin(), '_');
    return out;
}

std::string
promEscapeLabel(std::string_view value)
{
    return escapeText(value, true);
}

std::optional<std::string>
promUnescapeLabel(std::string_view value)
{
    std::string out;
    out.reserve(value.size());
    for (std::size_t k = 0; k < value.size(); ++k) {
        if (value[k] != '\\') {
            out += value[k];
            continue;
        }
        if (k + 1 >= value.size())
            return std::nullopt; // dangling escape
        const char e = value[++k];
        if (e == '\\')
            out += '\\';
        else if (e == 'n')
            out += '\n';
        else if (e == '"')
            out += '"';
        else
            return std::nullopt; // unknown escape
    }
    return out;
}

void
PromWriter::write(std::ostream &os, const sim::StatsRegistry *stats,
                  const TelemetryHub *hub,
                  const std::vector<AlertStateSample> *alerts) const
{
    const std::string problem = prefixProblem(opts_.prefix);
    if (!problem.empty())
        throw std::invalid_argument(problem);
    const std::string p =
        opts_.prefix.empty() ? std::string() : opts_.prefix + "_";

    if (stats) {
        stats->forEachScalar([&](const std::string &name, double value,
                                 const std::string &desc) {
            const std::string m = p + promSanitize(name);
            writeHeader(os, m, desc, "gauge");
            os << m << " " << fmtValue(value) << "\n";
        });
        stats->forEachCounter([&](const std::string &name,
                                  std::uint64_t value,
                                  const std::string &desc) {
            const std::string m = p + promSanitize(name) + "_total";
            writeHeader(os, m, desc, "counter");
            os << m << " " << value << "\n";
        });
        stats->forEachVector([&](const std::string &name,
                                 const std::vector<double> &values,
                                 const std::string &desc) {
            const std::string m = p + promSanitize(name);
            writeHeader(os, m, desc, "gauge");
            for (std::size_t k = 0; k < values.size(); ++k)
                os << m << "{index=\"" << k << "\"} "
                   << fmtValue(values[k]) << "\n";
        });
        stats->forEachHistogram(
            [&](const std::string &name,
                const sim::StatsRegistry::HistogramData &data,
                const std::string &desc) {
                const std::string m = p + promSanitize(name);
                writeHeader(os, m, desc, "summary");
                for (const double q : {0.5, 0.95, 0.99})
                    os << m << "{quantile=\"" << fmtValue(q) << "\"} "
                       << fmtValue(data.quantile(q)) << "\n";
                os << m << "_sum " << fmtValue(data.sum) << "\n";
                os << m << "_count " << data.count << "\n";
            });
        stats->forEachTimer(
            [&](const std::string &name,
                const sim::StatsRegistry::TimerData &data,
                const std::string &desc) {
                const std::string m =
                    p + promSanitize(name) + "_seconds";
                writeHeader(os, m, desc, "summary");
                os << m << "_sum " << fmtValue(data.totalSeconds)
                   << "\n";
                os << m << "_count " << data.count << "\n";
                writeHeader(os, m + "_min", desc, "gauge");
                os << m << "_min "
                   << fmtValue(data.count ? data.minSeconds : 0.0)
                   << "\n";
                writeHeader(os, m + "_max", desc, "gauge");
                os << m << "_max "
                   << fmtValue(data.count ? data.maxSeconds : 0.0)
                   << "\n";
            });
    }

    if (hub) {
        const auto digest = hub->summary();
        if (!digest.empty()) {
            struct Section {
                const char *suffix;
                const char *type;
                const char *help;
            };
            const Section sections[] = {
                {"series_last", "gauge",
                 "Newest sample of each telemetry series"},
                {"series_min", "gauge",
                 "Minimum over every recorded sample"},
                {"series_max", "gauge",
                 "Maximum over every recorded sample"},
                {"series_avg", "gauge",
                 "Arithmetic mean over every recorded sample"},
                {"series_samples_total", "counter",
                 "Samples recorded into each telemetry series"},
            };
            for (const Section &sec : sections) {
                const std::string m = p + sec.suffix;
                writeHeader(os, m, sec.help, sec.type);
                for (const auto &s : digest) {
                    os << m << "{series=\""
                       << escapeText(s.name, true) << "\"} ";
                    if (std::string_view(sec.suffix) == "series_last")
                        os << fmtValue(s.last.value);
                    else if (std::string_view(sec.suffix) ==
                             "series_min")
                        os << fmtValue(s.min);
                    else if (std::string_view(sec.suffix) ==
                             "series_max")
                        os << fmtValue(s.max);
                    else if (std::string_view(sec.suffix) ==
                             "series_avg")
                        os << fmtValue(s.mean);
                    else
                        os << s.count;
                    os << "\n";
                }
            }
        }
    }

    if (alerts && !alerts->empty()) {
        const std::string state = p + "alert_state";
        writeHeader(os, state,
                    "Alert-rule lifecycle state: 0 idle, 1 pending, "
                    "2 firing",
                    "gauge");
        for (const AlertStateSample &a : *alerts)
            os << state << "{rule=\"" << escapeText(a.rule, true)
               << "\",severity=\"" << escapeText(a.severity, true)
               << "\"} " << a.state << "\n";
        const std::string fired = p + "alert_fired_total";
        writeHeader(os, fired, "Incidents fired by each alert rule",
                    "counter");
        for (const AlertStateSample &a : *alerts)
            os << fired << "{rule=\"" << escapeText(a.rule, true)
               << "\"} " << a.fired << "\n";
    }
}

std::string
PromWriter::render(const sim::StatsRegistry *stats,
                   const TelemetryHub *hub,
                   const std::vector<AlertStateSample> *alerts) const
{
    std::ostringstream os;
    write(os, stats, hub, alerts);
    return os.str();
}

bool
validatePromExposition(std::string_view text, std::string *error)
{
    auto fail = [&](std::size_t lineNo, const std::string &what) {
        if (error)
            *error = "line " + std::to_string(lineNo) + ": " + what;
        return false;
    };

    std::set<std::string> typedMetrics;
    std::set<std::string> sampledMetrics;

    std::size_t lineNo = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const std::string_view line =
            text.substr(pos, eol == std::string_view::npos
                                 ? std::string_view::npos
                                 : eol - pos);
        pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
        ++lineNo;
        if (line.empty())
            continue;

        if (line[0] == '#') {
            std::istringstream ss{std::string(line)};
            std::string hash, kind, metric;
            ss >> hash >> kind;
            if (kind == "TYPE") {
                std::string type;
                if (!(ss >> metric >> type))
                    return fail(lineNo, "malformed TYPE comment");
                if (!validMetricName(metric))
                    return fail(lineNo,
                                "bad metric name in TYPE: " + metric);
                if (type != "counter" && type != "gauge" &&
                    type != "histogram" && type != "summary" &&
                    type != "untyped")
                    return fail(lineNo, "unknown metric type: " + type);
                if (!typedMetrics.insert(metric).second)
                    return fail(lineNo, "duplicate TYPE for " + metric);
                if (sampledMetrics.count(metric))
                    return fail(lineNo,
                                "TYPE after samples of " + metric);
            } else if (kind == "HELP") {
                if (!(ss >> metric))
                    return fail(lineNo, "malformed HELP comment");
                if (!validMetricName(metric))
                    return fail(lineNo,
                                "bad metric name in HELP: " + metric);
            }
            // Other '#' lines are plain comments.
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        std::size_t k = 0;
        while (k < line.size() && line[k] != '{' && line[k] != ' ')
            ++k;
        const std::string_view name = line.substr(0, k);
        if (!validMetricName(name))
            return fail(lineNo,
                        "bad metric name: " + std::string(name));
        sampledMetrics.insert(baseMetric(name));

        if (k < line.size() && line[k] == '{') {
            ++k;
            bool first = true;
            while (k < line.size() && line[k] != '}') {
                if (!first) {
                    if (line[k] != ',')
                        return fail(lineNo, "expected ',' in labels");
                    ++k;
                }
                first = false;
                std::size_t start = k;
                while (k < line.size() && line[k] != '=')
                    ++k;
                if (k >= line.size())
                    return fail(lineNo, "unterminated label");
                if (!validLabelName(line.substr(start, k - start)))
                    return fail(lineNo, "bad label name");
                ++k; // '='
                if (k >= line.size() || line[k] != '"')
                    return fail(lineNo, "label value not quoted");
                ++k;
                while (k < line.size() && line[k] != '"') {
                    if (line[k] == '\\') {
                        if (k + 1 >= line.size())
                            return fail(lineNo, "dangling escape");
                        const char e = line[k + 1];
                        if (e != '\\' && e != '"' && e != 'n')
                            return fail(lineNo, "bad escape in label");
                        ++k;
                    }
                    ++k;
                }
                if (k >= line.size())
                    return fail(lineNo, "unterminated label value");
                ++k; // closing '"'
            }
            if (k >= line.size())
                return fail(lineNo, "unterminated label set");
            ++k; // '}'
        }

        if (k >= line.size() || line[k] != ' ')
            return fail(lineNo, "missing value");
        while (k < line.size() && line[k] == ' ')
            ++k;
        std::size_t vEnd = k;
        while (vEnd < line.size() && line[vEnd] != ' ')
            ++vEnd;
        if (!parseSampleValue(line.substr(k, vEnd - k)))
            return fail(lineNo,
                        "unparsable value: " +
                            std::string(line.substr(k, vEnd - k)));
        k = vEnd;
        while (k < line.size() && line[k] == ' ')
            ++k;
        if (k < line.size()) {
            // Optional timestamp: integer (milliseconds).
            std::size_t t = k;
            if (line[t] == '-' || line[t] == '+')
                ++t;
            if (t >= line.size())
                return fail(lineNo, "bad timestamp");
            for (; t < line.size(); ++t)
                if (!std::isdigit(static_cast<unsigned char>(line[t])))
                    return fail(lineNo, "bad timestamp");
        }
    }
    return true;
}

} // namespace pad::telemetry
