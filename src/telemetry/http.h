/**
 * @file
 * Minimal single-threaded HTTP endpoint for Prometheus scrapes.
 *
 * Binds 127.0.0.1:<port> and serves `GET /metrics` (and `GET /`)
 * with whatever the caller-supplied renderer returns at request
 * time, plus a constant `GET /healthz` liveness probe (200 with the
 * `pad_service_up 1` sample, no renderer call); every other path is
 * a 404. One background thread accepts
 * and answers one connection at a time — a scrape endpoint for a
 * simulator needs nothing more, and a single thread keeps the
 * determinism story trivial: the renderer is the only code that
 * touches shared state, and it reads through thread-safe snapshots
 * (TelemetryHub::summary(), a mutex-guarded stats copy).
 *
 * Port 0 asks the kernel for a free port; port() reports the real
 * one after start(), so parallel test jobs and daemons can bind
 * without coordinating port numbers. The server never touches the
 * simulation. A failed start() fills the caller's error string with
 * a one-line reason; callers that promised an endpoint (padsim
 * --metrics-port, the padd daemon) must treat it as fatal — print
 * the error and exit nonzero — rather than run with a silently dead
 * endpoint.
 */

#ifndef PAD_TELEMETRY_HTTP_H
#define PAD_TELEMETRY_HTTP_H

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace pad::telemetry {

class MetricsHttpServer
{
  public:
    /** Produces the exposition body; called per request. */
    using Renderer = std::function<std::string()>;

    MetricsHttpServer(int port, Renderer renderer);
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    /**
     * Bind, listen, and spawn the accept thread. Returns false (and
     * fills @p error) when the socket cannot be set up.
     */
    bool start(std::string *error = nullptr);

    /** Signal the accept loop and join the thread. Idempotent. */
    void stop();

    /** True between a successful start() and stop(). */
    bool running() const { return running_; }

    /** Actual bound port (resolves port 0) after start(). */
    int port() const { return port_; }

  private:
    void serveLoop();
    void handleConnection(int fd);

    int requestedPort_;
    Renderer renderer_;
    int listenFd_ = -1;
    int port_ = 0;
    std::atomic<bool> stop_{false};
    bool running_ = false;
    std::thread thread_;
};

} // namespace pad::telemetry

#endif // PAD_TELEMETRY_HTTP_H
