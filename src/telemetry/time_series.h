/**
 * @file
 * Fixed-memory multi-resolution telemetry time series.
 *
 * A telemetry::TimeSeries keeps the most recent raw samples in a
 * fixed-size ring buffer and simultaneously folds every sample into
 * two coarser rollup levels (1-minute and 5-minute buckets, each
 * tracking min/max/sum/last/count). Memory is bounded regardless of
 * run length: once a ring fills, the oldest entries are evicted, but
 * whole-series aggregates (total count, overall min/max/mean, latest
 * sample) remain exact because they are maintained incrementally.
 *
 * This type differs from sim::TimeSeries (an append-only trajectory
 * used by figure benches, which must retain every point): telemetry
 * series are for live inspection and Prometheus exposition at
 * production scale, where unbounded growth is unacceptable.
 *
 * Timestamps are sim Ticks and are expected to be non-decreasing, as
 * produced by the simulator loop; a sample older than the open
 * rollup bucket is folded into that bucket rather than rejected.
 */

#ifndef PAD_TELEMETRY_TIME_SERIES_H
#define PAD_TELEMETRY_TIME_SERIES_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace pad::telemetry {

/** One raw observation. */
struct Sample {
    Tick when = 0;
    double value = 0.0;
};

/** One rollup bucket: aggregate of the samples in [start, start+width). */
struct Bucket {
    /** Inclusive bucket start, aligned to a multiple of width. */
    Tick start = 0;
    /** Bucket width in ticks. */
    Tick width = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    /** Value of the newest sample folded into the bucket. */
    double last = 0.0;
    std::uint64_t count = 0;

    double
    mean() const
    {
        return count ? sum / static_cast<double>(count) : 0.0;
    }
};

/** Capacity knobs; defaults bound a series to a few hundred KiB. */
struct TimeSeriesOptions {
    /** Raw samples retained (newest wins once full). */
    std::size_t rawCapacity = 4096;
    /** Closed rollup buckets retained per resolution level. */
    std::size_t bucketCapacity = 1024;
};

class TimeSeries
{
  public:
    explicit TimeSeries(const TimeSeriesOptions &opts = {});

    /** Record one sample; @p when should be non-decreasing. */
    void record(Tick when, double value);

    /** True when no sample was ever recorded. */
    bool empty() const { return total_ == 0; }

    /** Samples ever recorded, including ones evicted from the ring. */
    std::uint64_t totalSamples() const { return total_; }

    /** Samples currently held in the raw ring. */
    std::size_t rawSize() const { return raw_.size(); }

    /** Newest sample; zero-initialised when empty(). */
    Sample last() const { return last_; }

    /** Exact aggregates over every sample ever recorded. */
    double overallMin() const { return total_ ? min_ : 0.0; }
    double overallMax() const { return total_ ? max_ : 0.0; }
    double overallMean() const;

    /** Raw retained samples in chronological order. */
    std::vector<Sample> raw() const;

    /**
     * Rollup buckets in chronological order, the still-open newest
     * bucket included as the final entry.
     */
    std::vector<Bucket> minuteBuckets() const;
    std::vector<Bucket> fiveMinuteBuckets() const;

  private:
    /** Fixed-capacity ring; push evicts the oldest once full. */
    template <typename T>
    class Ring
    {
      public:
        explicit Ring(std::size_t capacity)
            : capacity_(capacity ? capacity : 1)
        {
        }

        void
        push(const T &v)
        {
            if (buf_.size() < capacity_) {
                buf_.push_back(v);
            } else {
                buf_[head_] = v;
                head_ = (head_ + 1) % capacity_;
            }
        }

        std::size_t size() const { return buf_.size(); }

        std::vector<T>
        ordered() const
        {
            std::vector<T> out;
            out.reserve(buf_.size());
            for (std::size_t k = 0; k < buf_.size(); ++k)
                out.push_back(buf_[(head_ + k) % buf_.size()]);
            return out;
        }

      private:
        std::size_t capacity_;
        std::size_t head_ = 0;
        std::vector<T> buf_;
    };

    struct Rollup {
        Rollup(Tick width, std::size_t capacity)
            : width(width), closed(capacity)
        {
        }

        Tick width;
        Bucket open;
        bool hasOpen = false;
        Ring<Bucket> closed;

        void fold(Tick when, double value);
        std::vector<Bucket> buckets() const;
    };

    Ring<Sample> raw_;
    Rollup minute_;
    Rollup fiveMinute_;

    Sample last_;
    std::uint64_t total_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

} // namespace pad::telemetry

#endif // PAD_TELEMETRY_TIME_SERIES_H
