/**
 * @file
 * TelemetryTraceSink: feed a TelemetryHub from the tracer event flow.
 *
 * The sink sits in the normal obs::TraceSink position (so it works
 * anywhere a trace file sink does, including under SweepRunner job
 * binding) and folds a curated subset of typed events into hub time
 * series while passing every event through to an optional inner sink
 * unchanged. Curation keeps the hub focused on the signals the paper
 * reasons about:
 *
 *   policy.transition      -> policy.level        (numeric L1/L2/L3)
 *   detector.anomaly       -> detector.anomalies  (cumulative count)
 *   udeb.shave             -> <rack>.udeb.soc / <rack>.udeb.shaved_w
 *   attacker.phase         -> attacker.phase      (numeric phase id)
 *   attacker.spike_launch  -> attacker.spikes     (cumulative count)
 *   soc.sample             -> rackN.soc / rackN.udeb_soc /
 *                             rackN.power / rackN.draw
 *
 * Unrecognised events only pass through. Direct DataCenter hooks
 * (DataCenter::setTelemetry) cover the dense per-step power series;
 * this adapter exists for flows where only the event stream is
 * available.
 */

#ifndef PAD_TELEMETRY_TRACE_FEED_H
#define PAD_TELEMETRY_TRACE_FEED_H

#include <atomic>
#include <cstdint>

#include "obs/trace_sink.h"
#include "telemetry/hub.h"

namespace pad::telemetry {

class TelemetryTraceSink : public obs::TraceSink
{
  public:
    /** @p hub must outlive the sink; @p inner may be null. */
    explicit TelemetryTraceSink(TelemetryHub &hub,
                                obs::TraceSink *inner = nullptr)
        : hub_(hub), inner_(inner)
    {
    }

    void write(const obs::TraceEvent &event) override;
    void flush() override;

  private:
    TelemetryHub &hub_;
    obs::TraceSink *inner_;
    std::atomic<std::uint64_t> anomalies_{0};
    std::atomic<std::uint64_t> spikes_{0};
};

/**
 * Numeric value of a security-level name as emitted in
 * policy.transition events ("L1-Normal" -> 1); 0 when unparsable.
 */
int securityLevelFromName(std::string_view name);

/**
 * Numeric id of an attacker phase name as emitted in attacker.phase
 * events (Prepare=0, Drain=1, Recover=2, Spike=3); -1 when unknown.
 */
int attackerPhaseFromName(std::string_view name);

} // namespace pad::telemetry

#endif // PAD_TELEMETRY_TRACE_FEED_H
