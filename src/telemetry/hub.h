/**
 * @file
 * TelemetryHub: a named collection of telemetry time series.
 *
 * The hub owns one telemetry::TimeSeries per dotted metric name
 * ("rack3.power", "policy.level", ...) and is safe to record into
 * from the simulation thread while another thread (the optional
 * metrics HTTP endpoint) renders summaries. Series are created
 * lazily on first record with the hub's capacity options.
 *
 * Hubs from independent sweep jobs combine with mergeFrom(), which
 * copies every series under a caller-supplied name prefix; merging
 * job hubs in submission order is deterministic for any worker
 * count, mirroring the StatsRegistry contract.
 */

#ifndef PAD_TELEMETRY_HUB_H
#define PAD_TELEMETRY_HUB_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/time_series.h"

namespace pad::telemetry {

/**
 * Observer of every sample recorded into a TelemetryHub. The hub
 * invokes the listener synchronously on the recording thread while
 * holding its lock, so implementations must be cheap, must not call
 * back into the hub, and need no synchronisation of their own when
 * samples come from a single simulation thread (the alert engine's
 * contract, DESIGN.md §10).
 */
class SampleListener
{
  public:
    virtual ~SampleListener() = default;

    /** One sample just recorded into series @p name. */
    virtual void onSample(std::string_view name, Tick when,
                          double value) = 0;

    /**
     * The same sample, with the hub's series id: a dense integer
     * assigned at series creation (0, 1, 2, ...), stable for the
     * hub's lifetime. Listeners with per-series state can index by
     * id and skip name lookups on the hot path; the default simply
     * forwards to the by-name overload.
     */
    virtual void
    onSample(std::uint32_t seriesId, std::string_view name, Tick when,
             double value)
    {
        (void)seriesId;
        onSample(name, when, value);
    }
};

class TelemetryHub
{
  public:
    TelemetryHub() = default;
    explicit TelemetryHub(const TimeSeriesOptions &opts) : opts_(opts) {}

    /** Record one sample into the series @p name (created lazily). */
    void record(std::string_view name, Tick when, double value);

    /**
     * Attach @p listener (or detach with nullptr): every subsequent
     * record() also invokes the listener. Not owned; the caller must
     * detach before the listener is destroyed.
     */
    void setListener(SampleListener *listener);

    /**
     * Series by name, or nullptr. The pointer stays valid for the
     * hub's lifetime (map nodes are stable) but reading it while a
     * writer thread records is not synchronised — use summary() for
     * concurrent access, find() for post-run inspection.
     */
    const TimeSeries *find(std::string_view name) const;

    /** Sorted names of every series. */
    std::vector<std::string> names() const;

    std::size_t size() const;
    bool empty() const { return size() == 0; }

    /** Point-in-time digest of one series, safe to take mid-run. */
    struct SeriesSummary {
        std::string name;
        Sample last;
        std::uint64_t count = 0;
        double min = 0.0;
        double max = 0.0;
        double mean = 0.0;
    };

    /** Digest of every series, sorted by name, under the hub lock. */
    std::vector<SeriesSummary> summary() const;

    /**
     * Point-in-time copy of one series' retained raw samples plus
     * the exact total-ever-recorded count, for incremental consumers
     * (the remote-write shipper) that keep a per-series cursor: the
     * newest (totalSamples - cursor) samples of `raw` are the ones
     * not yet seen, and any shortfall beyond the ring's retention is
     * known to be lost rather than silently skipped.
     */
    struct RawSeries {
        std::string name;
        /** Dense hub-local series id (creation order). */
        std::uint32_t id = 0;
        /** Samples ever recorded, including evicted ones. */
        std::uint64_t totalSamples = 0;
        /** Retained ring contents, chronological. */
        std::vector<Sample> raw;
    };

    /** Raw snapshot of every series, sorted by name, under the lock. */
    std::vector<RawSeries> rawSnapshot() const;

    /**
     * Copy every series of @p other into this hub under
     * @p prefix + name. Existing series with colliding names are
     * replaced, keeping the operation idempotent.
     */
    void mergeFrom(const TelemetryHub &other, const std::string &prefix);

  private:
    struct Entry {
        TimeSeries series;
        std::uint32_t id = 0;
    };

    mutable std::mutex mu_;
    TimeSeriesOptions opts_;
    SampleListener *listener_ = nullptr;
    std::map<std::string, Entry, std::less<>> series_;
    std::uint32_t nextId_ = 0;
};

} // namespace pad::telemetry

#endif // PAD_TELEMETRY_HUB_H
