#include "telemetry/http.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace pad::telemetry {

namespace {

void
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent, 0);
        if (n <= 0)
            return;
        sent += static_cast<std::size_t>(n);
    }
}

} // namespace

MetricsHttpServer::MetricsHttpServer(int port, Renderer renderer)
    : requestedPort_(port), renderer_(std::move(renderer))
{
}

MetricsHttpServer::~MetricsHttpServer()
{
    stop();
}

bool
MetricsHttpServer::start(std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what + ": " + std::strerror(errno);
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return false;
    };

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("socket");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(requestedPort_));
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        return fail("bind");
    if (::listen(listenFd_, 4) < 0)
        return fail("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0)
        port_ = ntohs(addr.sin_port);

    stop_ = false;
    thread_ = std::thread([this] { serveLoop(); });
    running_ = true;
    return true;
}

void
MetricsHttpServer::stop()
{
    if (!running_)
        return;
    stop_ = true;
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    running_ = false;
}

void
MetricsHttpServer::serveLoop()
{
    while (!stop_) {
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 100 /* ms */);
        if (ready <= 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        handleConnection(fd);
        ::close(fd);
    }
}

void
MetricsHttpServer::handleConnection(int fd)
{
    // Read until the end of the request headers (or a sane cap);
    // the request body, if any, is irrelevant for GET.
    std::string request;
    char buf[1024];
    while (request.size() < 8192 &&
           request.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        request.append(buf, static_cast<std::size_t>(n));
    }

    const std::size_t lineEnd = request.find("\r\n");
    const std::string firstLine =
        request.substr(0, lineEnd == std::string::npos
                              ? request.size()
                              : lineEnd);

    std::string status = "404 Not Found";
    std::string body = "not found\n";
    std::string contentType = "text/plain; charset=utf-8";
    if (firstLine.rfind("GET /metrics", 0) == 0 ||
        firstLine.rfind("GET / ", 0) == 0) {
        status = "200 OK";
        body = renderer_ ? renderer_() : std::string();
        contentType = "text/plain; version=0.0.4; charset=utf-8";
    } else if (firstLine.rfind("GET /healthz", 0) == 0) {
        // Liveness probe: the accept thread answering at all is the
        // health signal, so the body is a constant — the same
        // pad_service_up sample the full exposition carries, without
        // paying for a renderer pass on every probe.
        status = "200 OK";
        body = "pad_service_up 1\n";
    }

    std::string response = "HTTP/1.1 " + status +
                           "\r\nContent-Type: " + contentType +
                           "\r\nContent-Length: " +
                           std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n" + body;
    sendAll(fd, response);
}

} // namespace pad::telemetry
