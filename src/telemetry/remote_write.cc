#include "telemetry/remote_write.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "sim/stats_registry.h"
#include "util/json.h"
#include "util/json_writer.h"
#include "util/types.h"

namespace pad::telemetry {

namespace {

constexpr std::string_view kFramePrefix = "pad-rw-v1 ";
constexpr std::string_view kSpoolPrefix = "rw_spool-";
constexpr std::string_view kSpoolSuffix = ".jsonl";
/** Rotate the open spool file past this size. */
constexpr std::uint64_t kSpoolRotateBytes = 4u << 20;

bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/** mkdir -p for a relative or absolute path (POSIX, no deps). */
bool
makeDirs(const std::string &path)
{
    std::string cur;
    std::size_t pos = 0;
    while (pos <= path.size()) {
        const std::size_t slash = path.find('/', pos);
        const std::size_t end =
            slash == std::string::npos ? path.size() : slash;
        cur = path.substr(0, end);
        pos = end + 1;
        if (cur.empty() || cur == ".")
            continue;
        if (::mkdir(cur.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
        if (slash == std::string::npos)
            break;
    }
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/** SplitMix64 step: deterministic jitter without <random>. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

std::uint64_t
RwBatch::sampleCount() const
{
    std::uint64_t n = 0;
    for (const auto &chunk : series)
        n += chunk.samples.size();
    return n;
}

std::string
renderRwBatchLine(const RwBatch &b)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.key("v").value(1);
    w.key("type").value(b.type);
    w.key("source").value(b.source);
    w.key("seq").value(static_cast<std::uint64_t>(b.seq));
    w.key("tick").value(static_cast<std::int64_t>(b.tick));
    if (b.type == "batch") {
        w.key("series").beginArray();
        for (const auto &chunk : b.series) {
            w.beginObject();
            w.key("name").value(chunk.name);
            w.key("samples").beginArray();
            for (const Sample &s : chunk.samples) {
                w.beginArray();
                w.value(static_cast<std::int64_t>(s.when));
                w.value(s.value);
                w.endArray();
            }
            w.endArray();
            w.endObject();
        }
        w.endArray();
    } else {
        w.key("scalars").beginObject();
        for (const auto &[name, value] : b.scalars)
            w.key(name).value(value);
        w.endObject();
        w.key("counters").beginObject();
        for (const auto &[name, value] : b.counters)
            w.key(name).value(value);
        w.endObject();
    }
    w.endObject();
    return os.str();
}

std::optional<RwBatch>
parseRwBatchLine(std::string_view line, std::string *error)
{
    const auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return std::nullopt;
    };

    std::string parseError;
    const auto doc = parseJson(line, &parseError);
    if (!doc || !doc->isObject())
        return fail("not a JSON object: " + parseError);

    const JsonValue *v = doc->find("v");
    if (!v || !v->isNumber() || v->number != 1.0)
        return fail("missing or unsupported schema version");

    RwBatch b;
    const JsonValue *type = doc->find("type");
    if (!type || !type->isString() ||
        (type->str != "batch" && type->str != "stats"))
        return fail("type must be \"batch\" or \"stats\"");
    b.type = type->str;

    const JsonValue *source = doc->find("source");
    if (!source || !source->isString() || source->str.empty())
        return fail("missing source");
    b.source = source->str;

    const JsonValue *seq = doc->find("seq");
    if (!seq || !seq->isNumber() || seq->number < 0)
        return fail("missing seq");
    b.seq = static_cast<std::uint64_t>(seq->number);

    const JsonValue *tick = doc->find("tick");
    if (!tick || !tick->isNumber())
        return fail("missing tick");
    b.tick = static_cast<Tick>(tick->number);

    if (b.type == "batch") {
        const JsonValue *series = doc->find("series");
        if (!series || !series->isArray())
            return fail("batch without series array");
        for (const JsonValue &entry : series->array) {
            const JsonValue *name =
                entry.isObject() ? entry.find("name") : nullptr;
            const JsonValue *samples =
                entry.isObject() ? entry.find("samples") : nullptr;
            if (!name || !name->isString() || name->str.empty() ||
                !samples || !samples->isArray())
                return fail("malformed series entry");
            RwSeriesChunk chunk;
            chunk.name = name->str;
            chunk.samples.reserve(samples->array.size());
            for (const JsonValue &pair : samples->array) {
                if (!pair.isArray() || pair.array.size() != 2 ||
                    !pair.array[0].isNumber() ||
                    !pair.array[1].isNumber())
                    return fail("malformed sample in series " +
                                chunk.name);
                chunk.samples.push_back(
                    Sample{static_cast<Tick>(pair.array[0].number),
                           pair.array[1].number});
            }
            b.series.push_back(std::move(chunk));
        }
    } else {
        const JsonValue *scalars = doc->find("scalars");
        const JsonValue *counters = doc->find("counters");
        if (!scalars || !scalars->isObject() || !counters ||
            !counters->isObject())
            return fail("stats without scalars/counters objects");
        for (const auto &[name, value] : scalars->members) {
            if (!value.isNumber())
                return fail("non-numeric scalar " + name);
            b.scalars.emplace_back(name, value.number);
        }
        for (const auto &[name, value] : counters->members) {
            if (!value.isNumber() || value.number < 0)
                return fail("non-numeric counter " + name);
            b.counters.emplace_back(
                name, static_cast<std::uint64_t>(value.number));
        }
    }
    return b;
}

std::string
frameRwLine(const std::string &line)
{
    std::string out(kFramePrefix);
    out += std::to_string(line.size() + 1);
    out += '\n';
    out += line;
    out += '\n';
    return out;
}

bool
validateRwStream(std::string_view text, std::string *error,
                 RwStreamInfo *info)
{
    RwStreamInfo local;
    RwStreamInfo &out = info ? *info : local;
    out = RwStreamInfo{};
    out.framed = text.rfind(kFramePrefix, 0) == 0;

    const auto fail = [&](std::uint64_t record, const std::string &why) {
        if (error)
            *error = "record " + std::to_string(record) + ": " + why;
        return false;
    };

    std::map<std::string, std::int64_t> lastSeq;
    std::size_t pos = 0;
    std::uint64_t record = 0;
    while (pos < text.size()) {
        std::string_view line;
        if (out.framed) {
            const std::size_t nl = text.find('\n', pos);
            if (nl == std::string_view::npos) {
                out.truncatedTail = true; // header cut mid-write
                break;
            }
            const std::string_view header = text.substr(pos, nl - pos);
            if (header.rfind(kFramePrefix, 0) != 0)
                return fail(record + 1, "bad frame header");
            std::size_t len = 0;
            for (const char c :
                 header.substr(kFramePrefix.size())) {
                if (!std::isdigit(static_cast<unsigned char>(c)))
                    return fail(record + 1, "bad frame length");
                len = len * 10 + static_cast<std::size_t>(c - '0');
            }
            if (len == 0)
                return fail(record + 1, "bad frame length");
            const std::size_t start = nl + 1;
            if (start + len > text.size()) {
                out.truncatedTail = true; // payload cut mid-write
                break;
            }
            if (text[start + len - 1] != '\n')
                return fail(record + 1, "frame payload not newline-"
                                        "terminated");
            line = text.substr(start, len - 1);
            pos = start + len;
        } else {
            const std::size_t nl = text.find('\n', pos);
            if (nl == std::string_view::npos) {
                // A spool writer appends whole lines; a line with no
                // terminator is a crash-cut tail, skipped on replay.
                out.truncatedTail = true;
                break;
            }
            line = text.substr(pos, nl - pos);
            pos = nl + 1;
            if (line.empty())
                continue;
        }

        ++record;
        std::string parseError;
        const auto batch = parseRwBatchLine(line, &parseError);
        if (!batch)
            return fail(record, parseError);

        auto [it, fresh] = lastSeq.emplace(batch->source, -1);
        if (static_cast<std::int64_t>(batch->seq) <= it->second)
            return fail(record, "seq " + std::to_string(batch->seq) +
                                    " out of order for source " +
                                    batch->source);
        it->second = static_cast<std::int64_t>(batch->seq);
        if (fresh)
            out.sources.push_back(batch->source);

        for (const auto &chunk : batch->series) {
            Tick prev = kTickNever;
            for (const Sample &s : chunk.samples) {
                if (prev != kTickNever && s.when < prev)
                    return fail(record, "non-monotonic ticks in " +
                                            chunk.name);
                prev = s.when;
            }
        }

        if (batch->type == "batch")
            ++out.batches;
        else
            ++out.statsBatches;
        out.samples += batch->sampleCount();
        if (out.firstTick == kTickNever)
            out.firstTick = batch->tick;
        out.lastTick = batch->tick;
    }
    std::sort(out.sources.begin(), out.sources.end());
    return true;
}

std::optional<std::pair<std::string, int>>
parseHostPort(std::string_view spec, std::string *error)
{
    const auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return std::nullopt;
    };
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string_view::npos || colon == 0)
        return fail("expected HOST:PORT, got \"" + std::string(spec) +
                    "\"");
    const std::string_view portText = spec.substr(colon + 1);
    if (portText.empty())
        return fail("missing port in \"" + std::string(spec) + "\"");
    long port = 0;
    for (const char c : portText) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return fail("non-numeric port in \"" + std::string(spec) +
                        "\"");
        port = port * 10 + (c - '0');
        if (port > 65535)
            return fail("port out of range in \"" + std::string(spec) +
                        "\"");
    }
    if (port < 1)
        return fail("port out of range in \"" + std::string(spec) +
                    "\"");
    return std::make_pair(std::string(spec.substr(0, colon)),
                          static_cast<int>(port));
}

// ---------------------------------------------------------------------------
// Shipper
// ---------------------------------------------------------------------------

RemoteWriteShipper::RemoteWriteShipper(RemoteWriteOptions opts,
                                       const TelemetryHub *hub)
    : opts_(std::move(opts)), hub_(hub)
{
}

RemoteWriteShipper::~RemoteWriteShipper()
{
    // Hard stop without a final snapshot: the owner is expected to
    // call finish(); this path only keeps a forgotten shipper from
    // hanging the process. Leftovers are spooled or dropped by the
    // sender's exit accounting.
    if (started_ && !finished_) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
    }
    if (sender_.joinable())
        sender_.join();
}

bool
RemoteWriteShipper::start(std::string *error)
{
    const auto fail = [error](const std::string &why) {
        if (error)
            *error = "remote-write: " + why;
        return false;
    };
    if (started_)
        return true;
    if (!hub_)
        return fail("no telemetry hub");
    if (opts_.port < 1 || opts_.port > 65535)
        return fail("bad port " + std::to_string(opts_.port));
    if (opts_.source.empty())
        return fail("empty source label");
    if (opts_.intervalS <= 0)
        return fail("push interval must be positive");

    if (opts_.host == "localhost")
        opts_.host = "127.0.0.1";
    in_addr probe{};
    if (::inet_pton(AF_INET, opts_.host.c_str(), &probe) != 1)
        return fail("host must be an IPv4 address or localhost, got "
                    "\"" +
                    opts_.host + "\"");

    if (!opts_.spoolDir.empty()) {
        if (!makeDirs(opts_.spoolDir))
            return fail("cannot create spool dir " + opts_.spoolDir +
                        ": " + std::strerror(errno));
        // Resume numbering after any files a crashed run left behind;
        // they replay (oldest first) on the first successful connect.
        spoolNext_ = 0;
        for (const std::string &path : spoolFiles()) {
            const std::size_t slash = path.rfind('/');
            const std::string name =
                slash == std::string::npos ? path
                                           : path.substr(slash + 1);
            const int index = std::atoi(
                name.substr(kSpoolPrefix.size()).c_str());
            spoolNext_ = std::max(spoolNext_, index + 1);
        }
    }

    intervalTicks_ =
        std::max<Tick>(1, secondsToTicks(opts_.intervalS));
    jitterState_ = opts_.jitterSeed ^ 0x5851f42d4c957f2dULL;
    started_ = true;
    sender_ = std::thread(&RemoteWriteShipper::senderLoop, this);
    return true;
}

void
RemoteWriteShipper::observe(Tick now)
{
    if (!started_ || finished_)
        return;
    if (lastSnapTick_ == kTickNever) {
        lastSnapTick_ = now; // anchor the interval clock
        return;
    }
    if (now - lastSnapTick_ >= intervalTicks_)
        snapshotNow(now);
}

void
RemoteWriteShipper::snapshotNow(Tick now)
{
    if (!started_ || finished_)
        return;
    lastSnapTick_ = now;

    RwBatch b;
    b.type = "batch";
    b.source = opts_.source;
    b.tick = now;

    std::uint64_t lost = 0;
    for (TelemetryHub::RawSeries &s : hub_->rawSnapshot()) {
        std::uint64_t &cursor = cursor_[s.name];
        const std::uint64_t fresh = s.totalSamples - cursor;
        if (fresh == 0)
            continue;
        cursor = s.totalSamples;
        const std::size_t take = static_cast<std::size_t>(
            std::min<std::uint64_t>(fresh, s.raw.size()));
        lost += fresh - take;
        RwSeriesChunk chunk;
        chunk.name = std::move(s.name);
        chunk.samples.assign(s.raw.end() -
                                 static_cast<std::ptrdiff_t>(take),
                             s.raw.end());
        b.series.push_back(std::move(chunk));
    }
    if (lost > 0)
        lostSamples_.fetch_add(lost, std::memory_order_relaxed);
    if (b.series.empty())
        return; // nothing new since the last cut
    b.seq = nextSeq_++;
    enqueue(renderRwBatchLine(b), b.sampleCount());
}

void
RemoteWriteShipper::finish(Tick now, const sim::StatsRegistry *stats)
{
    if (!started_ || finished_)
        return;
    snapshotNow(now);
    if (stats) {
        RwBatch b;
        b.type = "stats";
        b.source = opts_.source;
        b.seq = nextSeq_++;
        b.tick = now;
        stats->forEachScalar([&](const std::string &name, double value,
                                 const std::string &) {
            b.scalars.emplace_back(name, value);
        });
        stats->forEachCounter([&](const std::string &name,
                                  std::uint64_t value,
                                  const std::string &) {
            b.counters.emplace_back(name, value);
        });
        enqueue(renderRwBatchLine(b), 0);
    }
    finished_ = true;

    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(
            static_cast<long>(opts_.drainDeadlineS * 1000.0));
    {
        std::unique_lock<std::mutex> lock(mu_);
        draining_ = true;
        cv_.notify_all();
        doneCv_.wait_until(lock, deadline,
                           [this] { return senderDone_; });
        if (!senderDone_) {
            stop_ = true; // deadline blown: hard stop
            cv_.notify_all();
        }
    }
    if (sender_.joinable())
        sender_.join();
}

RemoteWriteShipper::Counters
RemoteWriteShipper::counters() const
{
    Counters c;
    c.batchesEnqueued = enqueued_.load(std::memory_order_relaxed);
    c.batchesSent = sent_.load(std::memory_order_relaxed);
    c.batchesDropped = dropped_.load(std::memory_order_relaxed);
    c.batchesSpooled = spooled_.load(std::memory_order_relaxed);
    c.spoolReplayed = replayed_.load(std::memory_order_relaxed);
    c.samplesShipped = shippedSamples_.load(std::memory_order_relaxed);
    c.samplesLost = lostSamples_.load(std::memory_order_relaxed);
    c.reconnects = reconnects_.load(std::memory_order_relaxed);
    c.sendFailures = sendFailures_.load(std::memory_order_relaxed);
    return c;
}

std::string
RemoteWriteShipper::renderPromCounters(const Counters &c)
{
    std::ostringstream os;
    const auto row = [&os](const char *name, const char *help,
                           std::uint64_t value) {
        os << "# HELP " << name << ' ' << help << '\n'
           << "# TYPE " << name << " counter\n"
           << name << ' ' << value << '\n';
    };
    row("pad_rw_enqueued_total",
        "Batches handed to the remote-write sender.",
        c.batchesEnqueued);
    row("pad_rw_sent_total",
        "Batches delivered and acknowledged (including spool "
        "replays).",
        c.batchesSent);
    row("pad_rw_dropped_total",
        "Batches discarded by the bounded queue or shutdown "
        "deadline.",
        c.batchesDropped);
    row("pad_rw_spooled_total",
        "Batches spilled to the on-disk spool while the peer was "
        "down.",
        c.batchesSpooled);
    row("pad_rw_spool_replayed_total",
        "Spooled batches replayed to the peer after reconnect.",
        c.spoolReplayed);
    row("pad_rw_samples_total",
        "Telemetry samples shipped inside acknowledged batches.",
        c.samplesShipped);
    row("pad_rw_samples_lost_total",
        "Samples evicted from the hub ring before a snapshot "
        "reached them.",
        c.samplesLost);
    row("pad_rw_reconnects_total",
        "Successful connects to the receiver.", c.reconnects);
    row("pad_rw_send_failures_total",
        "Failed connect or send/ack attempts.", c.sendFailures);
    return os.str();
}

// --------------------------------------------------------------- sender side

void
RemoteWriteShipper::enqueue(std::string line, std::uint64_t samples)
{
    bool notify = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (queue_.size() >= opts_.queueLimit) {
            // Drop-newest: the queue already holds the oldest
            // undelivered history; new cuts are re-coverable from
            // the hub ring by a later snapshot only if samples
            // survive there, so count the loss explicitly.
            dropped_.fetch_add(1, std::memory_order_relaxed);
        } else {
            queue_.emplace_back(std::move(line), samples);
            enqueued_.fetch_add(1, std::memory_order_relaxed);
            notify = true;
        }
    }
    if (notify)
        cv_.notify_one();
}

void
RemoteWriteShipper::senderLoop()
{
    for (;;) {
        std::string line;
        std::uint64_t samples = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] {
                return stop_ || draining_ || !queue_.empty();
            });
            if (stop_)
                break;
            if (queue_.empty()) {
                if (draining_)
                    break; // fully drained
                continue;
            }
            line = std::move(queue_.front().first);
            samples = queue_.front().second;
            queue_.pop_front();
        }
        if (!deliverOrSpool(line)) {
            // Hard stop while this batch was in flight.
            if (!opts_.spoolDir.empty() && spoolAppend(line))
                spooled_.fetch_add(1, std::memory_order_relaxed);
            else
                dropped_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        shippedSamples_.fetch_add(samples, std::memory_order_relaxed);
    }

    // Exit accounting: whatever is still queued at a hard stop is
    // persisted to the spool when one is configured, else dropped.
    {
        std::unique_lock<std::mutex> lock(mu_);
        while (!queue_.empty()) {
            if (!opts_.spoolDir.empty() &&
                spoolAppend(queue_.front().first))
                spooled_.fetch_add(1, std::memory_order_relaxed);
            else
                dropped_.fetch_add(1, std::memory_order_relaxed);
            queue_.pop_front();
        }
        senderDone_ = true;
    }
    doneCv_.notify_all();
    disconnectPeer();
}

/**
 * Deliver one rendered batch line, retrying across reconnects until
 * it is acknowledged, persisted to the spool, or a hard stop lands.
 * Returns false only on hard stop with the line still undelivered.
 */
bool
RemoteWriteShipper::deliverOrSpool(const std::string &line)
{
    for (;;) {
        if (fd_ < 0) {
            if (!connectPeer()) {
                sendFailures_.fetch_add(1, std::memory_order_relaxed);
                ++failureStreak_;
                if (!opts_.spoolDir.empty()) {
                    // Peer down, WAL available: persist instead of
                    // blocking — and spill the backlog too, so the
                    // bounded queue stays empty for fresh batches.
                    // A spool write failure (disk full) downgrades
                    // to a counted drop; the sender stays alive.
                    if (spoolAppend(line))
                        spooled_.fetch_add(1,
                                           std::memory_order_relaxed);
                    else
                        dropped_.fetch_add(1,
                                           std::memory_order_relaxed);
                    std::unique_lock<std::mutex> lock(mu_);
                    spillQueueLocked(lock);
                    return true;
                }
                backoffWait();
                std::lock_guard<std::mutex> lock(mu_);
                if (stop_)
                    return false;
                continue;
            }
            reconnects_.fetch_add(1, std::memory_order_relaxed);
            failureStreak_ = 0;
            if (!replaySpool()) {
                // Lost the peer mid-replay; spool keeps the batches,
                // the next connect replays them again (the receiver
                // dedupes by sequence number).
                disconnectPeer();
                sendFailures_.fetch_add(1, std::memory_order_relaxed);
                ++failureStreak_;
                continue;
            }
        }
        if (sendFramed(line) && awaitAck()) {
            sent_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        sendFailures_.fetch_add(1, std::memory_order_relaxed);
        ++failureStreak_;
        disconnectPeer();
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (stop_)
                return false;
        }
    }
}

bool
RemoteWriteShipper::connectPeer()
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    ::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        disconnectPeer();
        return false;
    }
    return true;
}

void
RemoteWriteShipper::disconnectPeer()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    recvBuf_.clear();
}

bool
RemoteWriteShipper::sendFramed(const std::string &line)
{
    return fd_ >= 0 && sendAll(fd_, frameRwLine(line));
}

bool
RemoteWriteShipper::awaitAck()
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(opts_.ackTimeoutMs);
    std::size_t nl;
    while ((nl = recvBuf_.find('\n')) == std::string::npos) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (stop_)
                return false;
        }
        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 100 /* ms */);
        if (ready < 0)
            return false;
        if (ready == 0)
            continue;
        char chunk[512];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return false;
        recvBuf_.append(chunk, static_cast<std::size_t>(n));
    }
    const std::string ack = recvBuf_.substr(0, nl);
    recvBuf_.erase(0, nl + 1);
    const auto doc = parseJson(ack);
    if (!doc || !doc->isObject())
        return false;
    const JsonValue *ok = doc->find("ok");
    return ok && ok->isBool() && ok->boolean;
}

void
RemoteWriteShipper::spillQueueLocked(std::unique_lock<std::mutex> &)
{
    while (!queue_.empty()) {
        if (spoolAppend(queue_.front().first))
            spooled_.fetch_add(1, std::memory_order_relaxed);
        else
            dropped_.fetch_add(1, std::memory_order_relaxed);
        queue_.pop_front();
    }
}

bool
RemoteWriteShipper::spoolAppend(const std::string &line)
{
    if (opts_.spoolDir.empty())
        return false;
    if (spoolOpen_.empty() || spoolOpenBytes_ >= kSpoolRotateBytes) {
        char name[64];
        std::snprintf(name, sizeof(name), "%s%06d%s",
                      std::string(kSpoolPrefix).c_str(), spoolNext_++,
                      std::string(kSpoolSuffix).c_str());
        spoolOpen_ = opts_.spoolDir + "/" + name;
        spoolOpenBytes_ = 0;
    }
    std::ofstream out(spoolOpen_, std::ios::app | std::ios::binary);
    if (!out)
        return false;
    out << line << '\n';
    out.flush();
    if (!out)
        return false;
    spoolOpenBytes_ += line.size() + 1;
    return true;
}

std::vector<std::string>
RemoteWriteShipper::spoolFiles() const
{
    std::vector<std::string> files;
    DIR *dir = ::opendir(opts_.spoolDir.c_str());
    if (!dir)
        return files;
    while (const dirent *entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name.size() >
                kSpoolPrefix.size() + kSpoolSuffix.size() &&
            name.rfind(kSpoolPrefix, 0) == 0 &&
            name.compare(name.size() - kSpoolSuffix.size(),
                         kSpoolSuffix.size(), kSpoolSuffix) == 0)
            files.push_back(opts_.spoolDir + "/" + name);
    }
    ::closedir(dir);
    // Zero-padded indices: lexicographic order is creation order.
    std::sort(files.begin(), files.end());
    return files;
}

bool
RemoteWriteShipper::replaySpool()
{
    if (opts_.spoolDir.empty())
        return true;
    for (const std::string &path : spoolFiles()) {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            continue;
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            // A crash-cut tail line lost its terminator and usually
            // its closing braces; replay it if it still parses, skip
            // it if it does not.
            if (!parseRwBatchLine(line))
                continue;
            if (!sendFramed(line) || !awaitAck())
                return false; // file kept; re-replayed next connect
            replayed_.fetch_add(1, std::memory_order_relaxed);
            sent_.fetch_add(1, std::memory_order_relaxed);
        }
        ::unlink(path.c_str());
        if (path == spoolOpen_) {
            spoolOpen_.clear();
            spoolOpenBytes_ = 0;
        }
    }
    return true;
}

void
RemoteWriteShipper::backoffWait()
{
    // Exponential backoff with deterministic jitter: delay doubles
    // per consecutive failure up to the cap, then the top half is
    // jittered so a fleet of shippers does not reconnect in phase.
    const int shift = std::min(failureStreak_ - 1, 16);
    long delay = static_cast<long>(opts_.backoffBaseMs) << shift;
    delay = std::min<long>(delay, opts_.backoffCapMs);
    delay = std::max<long>(delay, 1);
    const long jitterSpan = delay / 2;
    if (jitterSpan > 0)
        delay = delay - jitterSpan +
                static_cast<long>(splitMix64(jitterState_) %
                                  static_cast<std::uint64_t>(
                                      jitterSpan + 1));
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::milliseconds(delay),
                 [this] { return stop_; });
}

} // namespace pad::telemetry
