#include "telemetry/trace_feed.h"

#include <string>

namespace pad::telemetry {

namespace {

const obs::TraceField *
findField(const obs::TraceEvent &event, std::string_view key)
{
    for (std::size_t k = 0; k < event.numFields; ++k)
        if (event.fields[k].key == key)
            return &event.fields[k];
    return nullptr;
}

/** Numeric reading of a field regardless of its declared kind. */
double
fieldNumber(const obs::TraceField &f)
{
    switch (f.kind) {
      case obs::TraceField::Kind::Int:
        return static_cast<double>(f.i);
      case obs::TraceField::Kind::Double:
        return f.d;
      case obs::TraceField::Kind::Bool:
        return f.b ? 1.0 : 0.0;
      case obs::TraceField::Kind::Str:
        return 0.0;
    }
    return 0.0;
}

} // namespace

int
securityLevelFromName(std::string_view name)
{
    // Level names render as "L<digit>-<label>"; see securityLevelName.
    if (name.size() >= 2 && name[0] == 'L' && name[1] >= '1' &&
        name[1] <= '9')
        return name[1] - '0';
    return 0;
}

int
attackerPhaseFromName(std::string_view name)
{
    if (name == "Prepare")
        return 0;
    if (name == "Drain")
        return 1;
    if (name == "Recover")
        return 2;
    if (name == "Spike")
        return 3;
    return -1;
}

void
TelemetryTraceSink::write(const obs::TraceEvent &event)
{
    const Tick ts = event.when;
    if (event.name == "policy.transition") {
        if (const auto *to = findField(event, "to"))
            hub_.record("policy.level", ts,
                        securityLevelFromName(to->s));
    } else if (event.name == "detector.anomaly") {
        hub_.record("detector.anomalies", ts,
                    static_cast<double>(
                        anomalies_.fetch_add(1) + 1));
    } else if (event.name == "udeb.shave") {
        // Component is the unit name, e.g. "rack3.udeb".
        const std::string base(event.component);
        if (const auto *soc = findField(event, "soc"))
            hub_.record(base + ".soc", ts, fieldNumber(*soc));
        if (const auto *shaved = findField(event, "shaved_w"))
            hub_.record(base + ".shaved_w", ts, fieldNumber(*shaved));
    } else if (event.name == "attacker.phase") {
        if (const auto *to = findField(event, "to"))
            hub_.record("attacker.phase", ts,
                        attackerPhaseFromName(to->s));
    } else if (event.name == "attacker.spike_launch") {
        hub_.record("attacker.spikes", ts,
                    static_cast<double>(spikes_.fetch_add(1) + 1));
    } else if (event.name == "soc.sample") {
        const auto *rack = findField(event, "rack");
        if (rack) {
            const std::string base =
                "rack" + std::to_string(rack->i);
            if (const auto *soc = findField(event, "soc"))
                hub_.record(base + ".soc", ts, fieldNumber(*soc));
            if (const auto *usoc = findField(event, "udeb_soc"))
                hub_.record(base + ".udeb_soc", ts,
                            fieldNumber(*usoc));
            if (const auto *power = findField(event, "power_w"))
                hub_.record(base + ".power", ts, fieldNumber(*power));
            if (const auto *draw = findField(event, "draw_w"))
                hub_.record(base + ".draw", ts, fieldNumber(*draw));
        }
    }

    if (inner_)
        inner_->write(event);
}

void
TelemetryTraceSink::flush()
{
    if (inner_)
        inner_->flush();
}

} // namespace pad::telemetry
