#include "sim/time_series.h"

#include <algorithm>

#include "util/logging.h"

namespace pad::sim {

void
TimeSeries::record(Tick when, double value)
{
    PAD_ASSERT(samples_.empty() || when >= samples_.back().when,
               "time series must be recorded in order");
    samples_.push_back(Sample{when, value});
}

double
TimeSeries::lastValue() const
{
    PAD_ASSERT(!samples_.empty());
    return samples_.back().value;
}

double
TimeSeries::maxValue() const
{
    double best = 0.0;
    bool first = true;
    for (const auto &s : samples_) {
        if (first || s.value > best) {
            best = s.value;
            first = false;
        }
    }
    return best;
}

double
TimeSeries::minValue() const
{
    double best = 0.0;
    bool first = true;
    for (const auto &s : samples_) {
        if (first || s.value < best) {
            best = s.value;
            first = false;
        }
    }
    return best;
}

double
TimeSeries::timeWeightedMean() const
{
    if (samples_.empty())
        return 0.0;
    if (samples_.size() == 1)
        return samples_.front().value;
    double weighted = 0.0;
    Tick span = 0;
    for (std::size_t i = 0; i + 1 < samples_.size(); ++i) {
        const Tick dt = samples_[i + 1].when - samples_[i].when;
        weighted += samples_[i].value * static_cast<double>(dt);
        span += dt;
    }
    if (span == 0)
        return samples_.back().value;
    return weighted / static_cast<double>(span);
}

double
TimeSeries::valueAt(Tick when) const
{
    PAD_ASSERT(!samples_.empty());
    auto it = std::upper_bound(
        samples_.begin(), samples_.end(), when,
        [](Tick t, const Sample &s) { return t < s.when; });
    if (it == samples_.begin())
        return samples_.front().value;
    return std::prev(it)->value;
}

std::vector<double>
TimeSeries::resample(Tick start, Tick end, Tick window) const
{
    PAD_ASSERT(window > 0 && end > start);
    const auto nwin = static_cast<std::size_t>((end - start) / window);
    std::vector<double> out(nwin, 0.0);
    std::vector<std::size_t> counts(nwin, 0);
    for (const auto &s : samples_) {
        if (s.when < start || s.when >= end)
            continue;
        const auto w = static_cast<std::size_t>((s.when - start) / window);
        out[w] += s.value;
        ++counts[w];
    }
    double prev = samples_.empty() ? 0.0 : samples_.front().value;
    for (std::size_t w = 0; w < nwin; ++w) {
        if (counts[w])
            out[w] /= static_cast<double>(counts[w]);
        else
            out[w] = prev;
        prev = out[w];
    }
    return out;
}

} // namespace pad::sim
