#include "sim/stats_registry.h"

#include <iomanip>
#include <ostream>

#include "util/logging.h"

namespace pad::sim {

StatsRegistry::Scalar
StatsRegistry::registerScalar(const std::string &name,
                              const std::string &desc)
{
    PAD_ASSERT(!name.empty());
    auto [it, inserted] = scalars_.try_emplace(name);
    if (inserted)
        it->second.desc = desc;
    // std::map nodes are stable, so handing out a pointer is safe.
    return Scalar(&it->second.value);
}

void
StatsRegistry::setVector(const std::string &name,
                         const std::string &desc,
                         std::vector<double> values)
{
    PAD_ASSERT(!name.empty());
    auto &entry = vectors_[name];
    entry.desc = desc;
    entry.values = std::move(values);
}

std::size_t
StatsRegistry::size() const
{
    return scalars_.size() + vectors_.size();
}

double
StatsRegistry::lookup(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second.value;
}

bool
StatsRegistry::contains(const std::string &name) const
{
    return scalars_.count(name) > 0 || vectors_.count(name) > 0;
}

void
StatsRegistry::dump(std::ostream &os) const
{
    os << "---------- begin stats ----------\n";
    for (const auto &[name, entry] : scalars_) {
        os << std::left << std::setw(42) << name << " "
           << std::setw(14) << entry.value;
        if (!entry.desc.empty())
            os << " # " << entry.desc;
        os << '\n';
    }
    for (const auto &[name, entry] : vectors_) {
        os << std::left << std::setw(42) << name << " [";
        for (std::size_t i = 0; i < entry.values.size(); ++i) {
            if (i)
                os << ' ';
            os << entry.values[i];
        }
        os << "]";
        if (!entry.desc.empty())
            os << " # " << entry.desc;
        os << '\n';
    }
    os << "---------- end stats ----------\n";
    os.flush();
}

void
StatsRegistry::reset()
{
    for (auto &[name, entry] : scalars_) {
        (void)name;
        entry.value = 0.0;
    }
    for (auto &[name, entry] : vectors_) {
        (void)name;
        entry.values.clear();
    }
}

} // namespace pad::sim
