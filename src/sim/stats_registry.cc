#include "sim/stats_registry.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/json_writer.h"
#include "util/logging.h"

namespace pad::sim {

void
StatsRegistry::HistogramData::record(double v)
{
    if (count == 0) {
        min = max = v;
    } else {
        min = std::min(min, v);
        max = std::max(max, v);
    }
    ++count;
    sum += v;
    if (v < spec.lo) {
        ++underflow;
    } else if (v >= spec.hi) {
        ++overflow;
    } else {
        const double width = (spec.hi - spec.lo) / spec.buckets;
        auto bucket = static_cast<std::size_t>((v - spec.lo) / width);
        // Floating-point division can land exactly on spec.buckets
        // for values just below hi; clamp into the last bucket.
        if (bucket >= spec.buckets)
            bucket = spec.buckets - 1;
        ++counts[bucket];
    }
}

double
StatsRegistry::HistogramData::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    if (q <= 0.0)
        return min;
    if (q >= 1.0)
        return max;

    // Walk the cumulative distribution. Underflow mass sits at
    // spec.lo, overflow mass at spec.hi; in-range mass is uniform
    // within its bucket.
    const double target = q * static_cast<double>(count);
    double seen = static_cast<double>(underflow);
    double result = spec.hi;
    if (seen >= target) {
        result = spec.lo;
    } else {
        const double width = (spec.hi - spec.lo) / spec.buckets;
        bool found = false;
        for (std::size_t b = 0; b < counts.size(); ++b) {
            const double inBucket = static_cast<double>(counts[b]);
            if (inBucket > 0.0 && seen + inBucket >= target) {
                const double frac = (target - seen) / inBucket;
                result = spec.lo + width * (b + frac);
                found = true;
                break;
            }
            seen += inBucket;
        }
        if (!found)
            result = spec.hi; // remaining mass is overflow
    }
    // Clamp to the observed extremes so degenerate shapes (single
    // sample, everything in one bucket) stay inside the data.
    return std::min(std::max(result, min), max);
}

void
StatsRegistry::TimerData::record(double seconds)
{
    if (count == 0) {
        minSeconds = maxSeconds = seconds;
    } else {
        minSeconds = std::min(minSeconds, seconds);
        maxSeconds = std::max(maxSeconds, seconds);
    }
    ++count;
    totalSeconds += seconds;
}

StatsRegistry::Scalar
StatsRegistry::registerScalar(const std::string &name,
                              const std::string &desc)
{
    PAD_ASSERT(!name.empty());
    auto [it, inserted] = scalars_.try_emplace(name);
    if (inserted)
        it->second.desc = desc;
    // std::map nodes are stable, so handing out a pointer is safe.
    return Scalar(&it->second.value);
}

StatsRegistry::Counter
StatsRegistry::registerCounter(const std::string &name,
                               const std::string &desc)
{
    PAD_ASSERT(!name.empty());
    auto [it, inserted] = counters_.try_emplace(name);
    if (inserted)
        it->second.desc = desc;
    return Counter(&it->second.value);
}

StatsRegistry::Histogram
StatsRegistry::registerHistogram(const std::string &name,
                                 const std::string &desc,
                                 const HistogramSpec &spec)
{
    PAD_ASSERT(!name.empty());
    PAD_ASSERT(spec.buckets > 0 && spec.hi > spec.lo,
               "degenerate histogram spec");
    auto [it, inserted] = histograms_.try_emplace(name);
    if (inserted) {
        it->second.desc = desc;
        it->second.data.spec = spec;
        it->second.data.counts.assign(spec.buckets, 0);
    } else {
        PAD_ASSERT(it->second.data.spec == spec,
                   "histogram re-registered with a different spec");
    }
    return Histogram(&it->second.data);
}

StatsRegistry::Timer
StatsRegistry::registerTimer(const std::string &name,
                             const std::string &desc)
{
    PAD_ASSERT(!name.empty());
    auto [it, inserted] = timers_.try_emplace(name);
    if (inserted)
        it->second.desc = desc;
    return Timer(&it->second.data);
}

void
StatsRegistry::setVector(const std::string &name,
                         const std::string &desc,
                         std::vector<double> values)
{
    PAD_ASSERT(!name.empty());
    auto &entry = vectors_[name];
    entry.desc = desc;
    entry.values = std::move(values);
}

std::size_t
StatsRegistry::size() const
{
    return scalars_.size() + vectors_.size() + counters_.size() +
           histograms_.size() + timers_.size();
}

double
StatsRegistry::lookup(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second.value;
}

std::uint64_t
StatsRegistry::lookupCounter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value;
}

bool
StatsRegistry::contains(const std::string &name) const
{
    return scalars_.count(name) > 0 || vectors_.count(name) > 0 ||
           counters_.count(name) > 0 || histograms_.count(name) > 0 ||
           timers_.count(name) > 0;
}

void
StatsRegistry::dump(std::ostream &os) const
{
    os << "---------- begin stats ----------\n";
    for (const auto &[name, entry] : scalars_) {
        os << std::left << std::setw(42) << name << " "
           << std::setw(14) << entry.value;
        if (!entry.desc.empty())
            os << " # " << entry.desc;
        os << '\n';
    }
    for (const auto &[name, entry] : counters_) {
        os << std::left << std::setw(42) << name << " "
           << std::setw(14) << entry.value;
        if (!entry.desc.empty())
            os << " # " << entry.desc;
        os << '\n';
    }
    for (const auto &[name, entry] : vectors_) {
        os << std::left << std::setw(42) << name << " [";
        for (std::size_t i = 0; i < entry.values.size(); ++i) {
            if (i)
                os << ' ';
            os << entry.values[i];
        }
        os << "]";
        if (!entry.desc.empty())
            os << " # " << entry.desc;
        os << '\n';
    }
    for (const auto &[name, entry] : histograms_) {
        const HistogramData &h = entry.data;
        os << std::left << std::setw(42) << name << " count="
           << h.count << " sum=" << h.sum << " under=" << h.underflow
           << " over=" << h.overflow << " [";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (i)
                os << ' ';
            os << h.counts[i];
        }
        os << "]";
        if (!entry.desc.empty())
            os << " # " << entry.desc;
        os << '\n';
    }
    for (const auto &[name, entry] : timers_) {
        const TimerData &t = entry.data;
        os << std::left << std::setw(42) << name << " count="
           << t.count << " total_s=" << t.totalSeconds;
        if (t.count > 0)
            os << " min_s=" << t.minSeconds << " max_s="
               << t.maxSeconds;
        if (!entry.desc.empty())
            os << " # " << entry.desc;
        os << '\n';
    }
    os << "---------- end stats ----------\n";
    os.flush();
}

void
StatsRegistry::dumpJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    if (!scalars_.empty()) {
        w.key("scalars").beginObject();
        for (const auto &[name, entry] : scalars_)
            w.key(name).value(entry.value);
        w.endObject();
    }
    if (!counters_.empty()) {
        w.key("counters").beginObject();
        for (const auto &[name, entry] : counters_)
            w.key(name).value(entry.value);
        w.endObject();
    }
    if (!vectors_.empty()) {
        w.key("vectors").beginObject();
        for (const auto &[name, entry] : vectors_) {
            w.key(name).beginArray();
            for (const double v : entry.values)
                w.value(v);
            w.endArray();
        }
        w.endObject();
    }
    if (!histograms_.empty()) {
        w.key("histograms").beginObject();
        for (const auto &[name, entry] : histograms_) {
            const HistogramData &h = entry.data;
            w.key(name).beginObject();
            w.key("lo").value(h.spec.lo);
            w.key("hi").value(h.spec.hi);
            w.key("count").value(h.count);
            w.key("sum").value(h.sum);
            if (h.count > 0) {
                w.key("min").value(h.min);
                w.key("max").value(h.max);
            }
            w.key("underflow").value(h.underflow);
            w.key("overflow").value(h.overflow);
            w.key("buckets").beginArray();
            for (const std::uint64_t c : h.counts)
                w.value(c);
            w.endArray();
            w.endObject();
        }
        w.endObject();
    }
    if (!timers_.empty()) {
        w.key("timers").beginObject();
        for (const auto &[name, entry] : timers_) {
            const TimerData &t = entry.data;
            w.key(name).beginObject();
            w.key("count").value(t.count);
            w.key("total_seconds").value(t.totalSeconds);
            if (t.count > 0) {
                w.key("min_seconds").value(t.minSeconds);
                w.key("max_seconds").value(t.maxSeconds);
            }
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();
}

std::string
StatsRegistry::dumpJsonString() const
{
    std::ostringstream out;
    dumpJson(out);
    return out.str();
}

void
StatsRegistry::mergeFrom(const StatsRegistry &other)
{
    for (const auto &[name, entry] : other.scalars_) {
        auto [it, inserted] = scalars_.try_emplace(name);
        if (inserted)
            it->second.desc = entry.desc;
        it->second.value += entry.value;
    }
    for (const auto &[name, entry] : other.counters_) {
        auto [it, inserted] = counters_.try_emplace(name);
        if (inserted)
            it->second.desc = entry.desc;
        it->second.value += entry.value;
    }
    for (const auto &[name, entry] : other.vectors_) {
        auto [it, inserted] = vectors_.try_emplace(name);
        if (inserted)
            it->second.desc = entry.desc;
        it->second.values.insert(it->second.values.end(),
                                 entry.values.begin(),
                                 entry.values.end());
    }
    for (const auto &[name, entry] : other.histograms_) {
        auto [it, inserted] = histograms_.try_emplace(name);
        HistogramData &mine = it->second.data;
        const HistogramData &theirs = entry.data;
        if (inserted) {
            it->second.desc = entry.desc;
            mine = theirs;
            continue;
        }
        PAD_ASSERT(mine.spec == theirs.spec,
                   "merging histograms with different specs");
        if (theirs.count > 0) {
            if (mine.count == 0) {
                mine.min = theirs.min;
                mine.max = theirs.max;
            } else {
                mine.min = std::min(mine.min, theirs.min);
                mine.max = std::max(mine.max, theirs.max);
            }
        }
        mine.count += theirs.count;
        mine.sum += theirs.sum;
        mine.underflow += theirs.underflow;
        mine.overflow += theirs.overflow;
        for (std::size_t i = 0; i < mine.counts.size(); ++i)
            mine.counts[i] += theirs.counts[i];
    }
    for (const auto &[name, entry] : other.timers_) {
        auto [it, inserted] = timers_.try_emplace(name);
        TimerData &mine = it->second.data;
        const TimerData &theirs = entry.data;
        if (inserted) {
            it->second.desc = entry.desc;
            mine = theirs;
            continue;
        }
        if (theirs.count > 0) {
            if (mine.count == 0) {
                mine.minSeconds = theirs.minSeconds;
                mine.maxSeconds = theirs.maxSeconds;
            } else {
                mine.minSeconds =
                    std::min(mine.minSeconds, theirs.minSeconds);
                mine.maxSeconds =
                    std::max(mine.maxSeconds, theirs.maxSeconds);
            }
        }
        mine.count += theirs.count;
        mine.totalSeconds += theirs.totalSeconds;
    }
}

void
StatsRegistry::reset()
{
    for (auto &[name, entry] : scalars_) {
        (void)name;
        entry.value = 0.0;
    }
    for (auto &[name, entry] : vectors_) {
        (void)name;
        entry.values.clear();
    }
    for (auto &[name, entry] : counters_) {
        (void)name;
        entry.value = 0;
    }
    for (auto &[name, entry] : histograms_) {
        (void)name;
        HistogramData &h = entry.data;
        h.counts.assign(h.spec.buckets, 0);
        h.underflow = h.overflow = h.count = 0;
        h.sum = h.min = h.max = 0.0;
    }
    for (auto &[name, entry] : timers_) {
        (void)name;
        entry.data = TimerData{};
    }
}

} // namespace pad::sim
