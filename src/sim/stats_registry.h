/**
 * @file
 * gem5-style statistics registry: named scalar/vector statistics
 * owned by simulation components, dumped in a stable text format at
 * the end of a run. Components register stats at construction; the
 * registry renders `group.name value # description` lines so runs
 * can be diffed.
 *
 * Beyond plain scalars and vectors the registry supports counters
 * (integer event tallies), fixed-bucket histograms, and timers
 * (duration accumulators), all with deterministic rendering: the
 * text dump() keeps its historical format, and dumpJson() exports
 * everything as a machine-readable JSON value suitable for
 * --stats-json files and run manifests. Registries from independent
 * sweep jobs combine with mergeFrom(); merging in submission order
 * is deterministic regardless of worker count.
 */

#ifndef PAD_SIM_STATS_REGISTRY_H
#define PAD_SIM_STATS_REGISTRY_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace pad::sim {

/** Bucketing layout for a histogram statistic. */
struct HistogramSpec {
    /** Inclusive lower bound of the first bucket. */
    double lo = 0.0;
    /** Exclusive upper bound of the last bucket. */
    double hi = 1.0;
    /** Number of equal-width buckets between lo and hi. */
    std::size_t buckets = 10;

    bool
    operator==(const HistogramSpec &o) const
    {
        return lo == o.lo && hi == o.hi && buckets == o.buckets;
    }
};

/**
 * A registry of named statistics.
 *
 * Statistics are recorded under a dotted hierarchical name. The
 * registry owns the storage; components update through the returned
 * handles (raw pointers into std::map nodes, stable across inserts
 * and registry moves).
 */
class StatsRegistry
{
  public:
    /** Handle to a registered scalar statistic. */
    class Scalar
    {
      public:
        Scalar() = default;

        /** Set the value. */
        void
        set(double v)
        {
            if (value_)
                *value_ = v;
        }

        /** Add to the value. */
        void
        add(double v)
        {
            if (value_)
                *value_ += v;
        }

        /** Increment by one. */
        void inc() { add(1.0); }

        /** Current value (0 for an unbound handle). */
        double value() const { return value_ ? *value_ : 0.0; }

      private:
        friend class StatsRegistry;
        explicit Scalar(double *value) : value_(value) {}
        double *value_ = nullptr;
    };

    /** Handle to a registered integer event counter. */
    class Counter
    {
      public:
        Counter() = default;

        /** Add @p n events. */
        void
        add(std::uint64_t n)
        {
            if (value_)
                *value_ += n;
        }

        /** Count one event. */
        void inc() { add(1); }

        /** Current count (0 for an unbound handle). */
        std::uint64_t value() const { return value_ ? *value_ : 0; }

      private:
        friend class StatsRegistry;
        explicit Counter(std::uint64_t *value) : value_(value) {}
        std::uint64_t *value_ = nullptr;
    };

    /** Sample distribution state behind a Histogram handle. */
    struct HistogramData {
        HistogramSpec spec;
        /** Per-bucket sample counts; size == spec.buckets. */
        std::vector<std::uint64_t> counts;
        std::uint64_t underflow = 0;
        std::uint64_t overflow = 0;
        std::uint64_t count = 0;
        double sum = 0.0;
        /** Observed extremes; meaningful only when count > 0. */
        double min = 0.0;
        double max = 0.0;

        void record(double v);

        /**
         * Estimate the q-quantile (q in [0, 1]) of the recorded
         * distribution.
         *
         * The estimate is the smallest value v whose cumulative count
         * reaches q * count, linearly interpolated inside the
         * containing equal-width bucket (samples are assumed uniform
         * within a bucket, the usual fixed-bucket convention).
         * Boundary behavior, tested in stats tests:
         *
         *  - empty histogram: returns 0.0;
         *  - underflow mass is treated as sitting at spec.lo and
         *    overflow mass at spec.hi (the recorded extremes are not
         *    kept per-bucket);
         *  - the result is finally clamped to the observed
         *    [min, max], so a single-sample histogram returns that
         *    sample exactly and an all-in-one-bucket histogram never
         *    reports a value outside the data;
         *  - q <= 0 returns min, q >= 1 returns max.
         */
        double quantile(double q) const;
    };

    /** Duration accumulator state behind a Timer handle. */
    struct TimerData {
        std::uint64_t count = 0;
        double totalSeconds = 0.0;
        /** Observed extremes; meaningful only when count > 0. */
        double minSeconds = 0.0;
        double maxSeconds = 0.0;

        void record(double seconds);
    };

    /** Handle to a registered fixed-bucket histogram. */
    class Histogram
    {
      public:
        Histogram() = default;

        /** Record one sample. */
        void
        record(double v)
        {
            if (data_)
                data_->record(v);
        }

        /** Total recorded samples (includes under/overflow). */
        std::uint64_t count() const { return data_ ? data_->count : 0; }

      private:
        friend class StatsRegistry;
        explicit Histogram(HistogramData *data) : data_(data) {}
        HistogramData *data_ = nullptr;
    };

    /** Handle to a registered duration accumulator. */
    class Timer
    {
      public:
        Timer() = default;

        /** Record one duration in seconds. */
        void
        record(double seconds)
        {
            if (data_)
                data_->record(seconds);
        }

        /** Number of recorded durations. */
        std::uint64_t count() const { return data_ ? data_->count : 0; }

        /** Sum of recorded durations in seconds. */
        double
        totalSeconds() const
        {
            return data_ ? data_->totalSeconds : 0.0;
        }

      private:
        friend class StatsRegistry;
        explicit Timer(TimerData *data) : data_(data) {}
        TimerData *data_ = nullptr;
    };

    /**
     * Register a scalar statistic.
     *
     * @param name dotted name, e.g. "rack3.deb.lvd_trips"
     * @param desc one-line description printed with the dump
     */
    Scalar registerScalar(const std::string &name,
                          const std::string &desc);

    /** Register an integer event counter. */
    Counter registerCounter(const std::string &name,
                            const std::string &desc);

    /**
     * Register a histogram with @p spec's fixed bucket layout.
     * Samples below spec.lo / at-or-above spec.hi land in dedicated
     * underflow/overflow counts, so bucketing is deterministic for
     * any input. Re-registering an existing name requires an equal
     * spec.
     */
    Histogram registerHistogram(const std::string &name,
                                const std::string &desc,
                                const HistogramSpec &spec);

    /** Register a duration accumulator. */
    Timer registerTimer(const std::string &name,
                        const std::string &desc);

    /** Register (or overwrite) a vector statistic by value. */
    void setVector(const std::string &name, const std::string &desc,
                   std::vector<double> values);

    /** Number of registered statistics. */
    std::size_t size() const;

    /** Value of a scalar by name; 0 when absent. */
    double lookup(const std::string &name) const;

    /** Value of a counter by name; 0 when absent. */
    std::uint64_t lookupCounter(const std::string &name) const;

    /** True when a statistic with this name exists. */
    bool contains(const std::string &name) const;

    /** Render all statistics, sorted by name. */
    void dump(std::ostream &os) const;

    /** Render all statistics as one minified JSON object. */
    void dumpJson(std::ostream &os) const;

    /** dumpJson() into a string, for splicing into manifests. */
    std::string dumpJsonString() const;

    /**
     * Fold @p other into this registry: scalars and counters add,
     * vectors concatenate (other's values appended), histograms with
     * equal specs add bucket counts, timers combine count/total/
     * min/max. Statistics present only in @p other are created.
     * Merging job registries in submission order yields the same
     * result for any worker count.
     */
    void mergeFrom(const StatsRegistry &other);

    /** Reset every statistic to its freshly-registered state. */
    void reset();

  private:
    struct ScalarEntry {
        double value = 0.0;
        std::string desc;
    };
    struct VectorEntry {
        std::vector<double> values;
        std::string desc;
    };
    struct CounterEntry {
        std::uint64_t value = 0;
        std::string desc;
    };
    struct HistogramEntry {
        HistogramData data;
        std::string desc;
    };
    struct TimerEntry {
        TimerData data;
        std::string desc;
    };

    std::map<std::string, ScalarEntry> scalars_;
    std::map<std::string, VectorEntry> vectors_;
    std::map<std::string, CounterEntry> counters_;
    std::map<std::string, HistogramEntry> histograms_;
    std::map<std::string, TimerEntry> timers_;

  public:
    /**
     * Visit every statistic of one kind in name order. The callbacks
     * receive (name, value-or-data, desc) by const reference; used by
     * exporters (telemetry::PromWriter) that need more than the text
     * dump offers.
     */
    template <typename F>
    void
    forEachScalar(F &&f) const
    {
        for (const auto &[name, e] : scalars_)
            f(name, e.value, e.desc);
    }

    template <typename F>
    void
    forEachCounter(F &&f) const
    {
        for (const auto &[name, e] : counters_)
            f(name, e.value, e.desc);
    }

    template <typename F>
    void
    forEachVector(F &&f) const
    {
        for (const auto &[name, e] : vectors_)
            f(name, e.values, e.desc);
    }

    template <typename F>
    void
    forEachHistogram(F &&f) const
    {
        for (const auto &[name, e] : histograms_)
            f(name, e.data, e.desc);
    }

    template <typename F>
    void
    forEachTimer(F &&f) const
    {
        for (const auto &[name, e] : timers_)
            f(name, e.data, e.desc);
    }

    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;
    // Moving a std::map transfers its nodes, so outstanding handles
    // keep pointing at live entries after a registry move.
    StatsRegistry(StatsRegistry &&) noexcept = default;
    StatsRegistry &operator=(StatsRegistry &&) noexcept = default;
};

} // namespace pad::sim

#endif // PAD_SIM_STATS_REGISTRY_H
