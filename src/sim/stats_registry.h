/**
 * @file
 * gem5-style statistics registry: named scalar/vector statistics
 * owned by simulation components, dumped in a stable text format at
 * the end of a run. Components register stats at construction; the
 * registry renders `group.name value # description` lines so runs
 * can be diffed.
 */

#ifndef PAD_SIM_STATS_REGISTRY_H
#define PAD_SIM_STATS_REGISTRY_H

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace pad::sim {

/**
 * A registry of named statistics.
 *
 * Statistics are plain doubles (scalars) or double vectors, recorded
 * under a dotted hierarchical name. The registry owns the storage;
 * components update through the returned handles.
 */
class StatsRegistry
{
  public:
    /** Handle to a registered scalar statistic. */
    class Scalar
    {
      public:
        Scalar() = default;

        /** Set the value. */
        void
        set(double v)
        {
            if (value_)
                *value_ = v;
        }

        /** Add to the value. */
        void
        add(double v)
        {
            if (value_)
                *value_ += v;
        }

        /** Increment by one. */
        void inc() { add(1.0); }

        /** Current value (0 for an unbound handle). */
        double value() const { return value_ ? *value_ : 0.0; }

      private:
        friend class StatsRegistry;
        explicit Scalar(double *value) : value_(value) {}
        double *value_ = nullptr;
    };

    /**
     * Register a scalar statistic.
     *
     * @param name dotted name, e.g. "rack3.deb.lvd_trips"
     * @param desc one-line description printed with the dump
     */
    Scalar registerScalar(const std::string &name,
                          const std::string &desc);

    /** Register (or overwrite) a vector statistic by value. */
    void setVector(const std::string &name, const std::string &desc,
                   std::vector<double> values);

    /** Number of registered statistics. */
    std::size_t size() const;

    /** Value of a scalar by name; 0 when absent. */
    double lookup(const std::string &name) const;

    /** True when a statistic with this name exists. */
    bool contains(const std::string &name) const;

    /** Render all statistics, sorted by name. */
    void dump(std::ostream &os) const;

    /** Reset every scalar to zero and clear vectors' values. */
    void reset();

  private:
    struct ScalarEntry {
        double value = 0.0;
        std::string desc;
    };
    struct VectorEntry {
        std::vector<double> values;
        std::string desc;
    };

    std::map<std::string, ScalarEntry> scalars_;
    std::map<std::string, VectorEntry> vectors_;

  public:
    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;
};

} // namespace pad::sim

#endif // PAD_SIM_STATS_REGISTRY_H
