/**
 * @file
 * Top-level simulation driver: owns the event queue, registered
 * components, and the run loop.
 */

#ifndef PAD_SIM_SIMULATOR_H
#define PAD_SIM_SIMULATOR_H

#include <memory>
#include <string>
#include <vector>

#include "sim/component.h"
#include "sim/event_queue.h"
#include "util/types.h"

namespace pad::sim {

/**
 * Discrete-event simulator instance.
 *
 * Typical use:
 * @code
 *   Simulator sim;
 *   auto &rack = sim.add<Rack>("rack0", ...);
 *   sim.every(kTicksPerSecond, [&] { rack.tick(); });
 *   sim.run(10 * kTicksPerMinute);
 * @endcode
 */
class Simulator
{
  public:
    Simulator() = default;

    /** Construct and register a component owned by the simulator. */
    template <typename T, typename... Args>
    T &
    add(Args &&...args)
    {
        auto owned = std::make_unique<T>(std::forward<Args>(args)...);
        T &ref = *owned;
        components_.push_back(std::move(owned));
        return ref;
    }

    /** Register an externally owned component (not deleted). */
    void attach(Component &component) { external_.push_back(&component); }

    /** The underlying event queue. */
    EventQueue &events() { return events_; }
    const EventQueue &events() const { return events_; }

    /** Current simulated time. */
    Tick now() const { return events_.now(); }

    /** Whether run() has initialised the registered components. */
    bool initialized() const { return initialized_; }

    /** Number of components owned via add() or attached externally. */
    std::size_t componentCount() const
    {
        return components_.size() + external_.size();
    }

    /** Schedule a one-shot callback @p delay ticks from now. */
    EventHandle
    after(Tick delay, EventQueue::Callback cb,
          EventPriority priority = EventPriority::Control)
    {
        return events_.schedule(now() + delay, std::move(cb), priority);
    }

    /**
     * Schedule @p cb to run every @p period ticks, starting one period
     * from now (or at @p start if given). The callback returns void
     * and repeats until the simulation ends or cancelPeriodic() is
     * called with the returned id.
     *
     * @return id usable with cancelPeriodic()
     */
    std::size_t every(Tick period, std::function<void()> cb,
                      EventPriority priority = EventPriority::Control,
                      Tick start = kTickNever);

    /** Stop a periodic activity created with every(). */
    void cancelPeriodic(std::size_t id);

    /**
     * Run the simulation until tick @p until (inclusive), calling
     * init() on all registered components on the first run.
     */
    void run(Tick until);

    /** Invoke finalize() on all registered components. */
    void finalizeAll();

  private:
    struct Periodic {
        Tick period;
        std::function<void()> cb;
        EventPriority priority;
        bool active;
        EventHandle pending;
    };

    void armPeriodic(std::size_t id, Tick when);

    EventQueue events_;
    std::vector<std::unique_ptr<Component>> components_;
    std::vector<Component *> external_;
    std::vector<Periodic> periodics_;
    bool initialized_ = false;
};

} // namespace pad::sim

#endif // PAD_SIM_SIMULATOR_H
