#include "sim/simulator.h"

#include "obs/tracer.h"
#include "util/logging.h"

namespace pad::sim {

std::size_t
Simulator::every(Tick period, std::function<void()> cb,
                 EventPriority priority, Tick start)
{
    PAD_ASSERT(period > 0, "periodic activity needs a positive period");
    const std::size_t id = periodics_.size();
    periodics_.push_back(
        Periodic{period, std::move(cb), priority, true, EventHandle{}});
    const Tick first = start == kTickNever ? now() + period : start;
    armPeriodic(id, first);
    return id;
}

void
Simulator::armPeriodic(std::size_t id, Tick when)
{
    Periodic &p = periodics_[id];
    p.pending = events_.schedule(
        when,
        [this, id] {
            Periodic &self = periodics_[id];
            if (!self.active)
                return;
            self.cb();
            if (self.active)
                armPeriodic(id, now() + self.period);
        },
        p.priority);
}

void
Simulator::cancelPeriodic(std::size_t id)
{
    PAD_ASSERT(id < periodics_.size());
    Periodic &p = periodics_[id];
    p.active = false;
    events_.cancel(p.pending);
}

void
Simulator::run(Tick until)
{
    if (!initialized_) {
        initialized_ = true;
        for (auto &c : components_)
            c->init(*this);
        for (auto *c : external_)
            c->init(*this);
    }
    const Tick from = now();
    const std::uint64_t before = events_.executed();
    events_.runUntil(until);
    if (obs::traceEnabled()) {
        obs::setTraceClock(now());
        obs::emitSpan(from, now(), "sim", "sim.run",
                      {obs::TraceField::integer(
                          "events", static_cast<std::int64_t>(
                                        events_.executed() - before))});
    }
}

void
Simulator::finalizeAll()
{
    for (auto &c : components_)
        c->finalize();
    for (auto *c : external_)
        c->finalize();
}

} // namespace pad::sim
