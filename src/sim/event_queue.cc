#include "sim/event_queue.h"

#include <algorithm>

#include "obs/tracer.h"
#include "util/engine_tuning.h"
#include "util/logging.h"

namespace pad::sim {

EventQueue::EventQueue(std::size_t capacityHint)
    : pooled_(engineTuning().eventPoolAllocation),
      blockSize_(std::max<std::size_t>(capacityHint, 1))
{
    if (pooled_) {
        heap_.reserve(blockSize_);
        byId_.reserve(blockSize_);
    }
}

EventQueue::~EventQueue()
{
    if (!pooled_) {
        for (Entry *entry : heap_)
            delete entry;
    }
    // Pooled entries live in blocks_ and are freed with them.
}

EventQueue::Entry *
EventQueue::allocEntry()
{
    if (!pooled_)
        return new Entry;
    if (freeList_.empty()) {
        blocks_.push_back(std::make_unique<Entry[]>(blockSize_));
        Entry *block = blocks_.back().get();
        freeList_.reserve(freeList_.size() + blockSize_);
        for (std::size_t i = blockSize_; i > 0; --i)
            freeList_.push_back(&block[i - 1]);
    }
    Entry *entry = freeList_.back();
    freeList_.pop_back();
    return entry;
}

void
EventQueue::releaseEntry(Entry *entry)
{
    if (!pooled_) {
        delete entry;
        return;
    }
    entry->cb = nullptr; // free the callback's captures eagerly
    freeList_.push_back(entry);
}

void
EventQueue::reserve(std::size_t events)
{
    heap_.reserve(events);
    byId_.reserve(events);
    if (!pooled_)
        return;
    while (blocks_.size() * blockSize_ < events) {
        blocks_.push_back(std::make_unique<Entry[]>(blockSize_));
        Entry *block = blocks_.back().get();
        freeList_.reserve(freeList_.size() + blockSize_);
        for (std::size_t i = blockSize_; i > 0; --i)
            freeList_.push_back(&block[i - 1]);
    }
}

void
EventQueue::setMaxLiveEvents(std::size_t bound)
{
    PAD_ASSERT(bound >= live_,
               "live-event bound below current live count");
    maxLive_ = bound;
}

EventHandle
EventQueue::schedule(Tick when, Callback cb, EventPriority priority)
{
    PAD_ASSERT(when >= now_, "event scheduled in the past");
    PAD_ASSERT(live_ < maxLive_,
               "event queue exceeded its live-event bound ({}); "
               "runaway rescheduling? see setMaxLiveEvents()",
               maxLive_);
    Entry *entry = allocEntry();
    entry->when = when;
    entry->priority = static_cast<int>(priority);
    entry->seq = nextSeq_++;
    entry->id = nextId_++;
    entry->cb = std::move(cb);
    entry->cancelled = false;
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), EntryCompare{});
    byId_.emplace(entry->id, entry);
    ++live_;
    return EventHandle(entry->id);
}

void
EventQueue::cancel(EventHandle handle)
{
    if (!handle.valid())
        return;
    auto it = byId_.find(handle.id_);
    if (it == byId_.end())
        return;
    if (!it->second->cancelled) {
        it->second->cancelled = true;
        --live_;
    }
    // The entry stays in the heap and is reclaimed lazily when popped.
    byId_.erase(it);
}

EventQueue::Entry *
EventQueue::popNextLive()
{
    while (!heap_.empty()) {
        std::pop_heap(heap_.begin(), heap_.end(), EntryCompare{});
        Entry *top = heap_.back();
        heap_.pop_back();
        if (top->cancelled) {
            releaseEntry(top);
            continue;
        }
        byId_.erase(top->id);
        --live_;
        return top;
    }
    return nullptr;
}

Tick
EventQueue::nextEventTick() const
{
    // The heap top may be a lazily-cancelled entry; accept the cheap
    // answer when it is live and fall back to scanning the live map
    // otherwise.
    if (heap_.empty() || live_ == 0)
        return kTickNever;
    const Entry *top = heap_.front();
    if (!top->cancelled)
        return top->when;
    Tick best = kTickNever;
    for (const auto &[id, entry] : byId_) {
        (void)id;
        if (best == kTickNever || entry->when < best)
            best = entry->when;
    }
    return best;
}

std::size_t
EventQueue::runUntil(Tick until)
{
    std::size_t ran = 0;
    while (true) {
        const Tick next = nextEventTick();
        if (next == kTickNever || next > until)
            break;
        step();
        ++ran;
    }
    if (now_ < until)
        now_ = until;
    return ran;
}

bool
EventQueue::step()
{
    Entry *entry = popNextLive();
    if (!entry)
        return false;
    PAD_ASSERT(entry->when >= now_);
    now_ = entry->when;
    ++executed_;
    if (obs::traceEnabled()) {
        obs::setTraceClock(now_);
        obs::emit("sim", "sim.dispatch",
                  {obs::TraceField::integer(
                       "seq", static_cast<std::int64_t>(entry->seq)),
                   obs::TraceField::integer(
                       "priority",
                       static_cast<std::int64_t>(entry->priority))});
    }
    Callback cb = std::move(entry->cb);
    releaseEntry(entry);
    cb();
    return true;
}

} // namespace pad::sim
