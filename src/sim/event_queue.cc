#include "sim/event_queue.h"

#include "obs/tracer.h"
#include "util/logging.h"

namespace pad::sim {

EventQueue::~EventQueue()
{
    while (!heap_.empty()) {
        delete heap_.top();
        heap_.pop();
    }
}

EventHandle
EventQueue::schedule(Tick when, Callback cb, EventPriority priority)
{
    PAD_ASSERT(when >= now_, "event scheduled in the past");
    auto *entry = new Entry{when, static_cast<int>(priority), nextSeq_++,
                            nextId_++, std::move(cb)};
    heap_.push(entry);
    byId_.emplace(entry->id, entry);
    ++live_;
    return EventHandle(entry->id);
}

void
EventQueue::cancel(EventHandle handle)
{
    if (!handle.valid())
        return;
    auto it = byId_.find(handle.id_);
    if (it == byId_.end())
        return;
    if (!it->second->cancelled) {
        it->second->cancelled = true;
        --live_;
    }
    // The entry stays in the heap and is reclaimed lazily when popped.
    byId_.erase(it);
}

EventQueue::Entry *
EventQueue::popNextLive()
{
    while (!heap_.empty()) {
        Entry *top = heap_.top();
        heap_.pop();
        if (top->cancelled) {
            delete top;
            continue;
        }
        byId_.erase(top->id);
        --live_;
        return top;
    }
    return nullptr;
}

Tick
EventQueue::nextEventTick() const
{
    // Skim cancelled entries off a copy-free view: the heap top may be
    // cancelled, so do a const-safe scan by copying pointers is too
    // costly; instead accept the cheap answer when the top is live and
    // fall back to a scan of the underlying container otherwise.
    if (heap_.empty() || live_ == 0)
        return kTickNever;
    const Entry *top = heap_.top();
    if (!top->cancelled)
        return top->when;
    Tick best = kTickNever;
    for (const auto &[id, entry] : byId_) {
        (void)id;
        if (best == kTickNever || entry->when < best)
            best = entry->when;
    }
    return best;
}

std::size_t
EventQueue::runUntil(Tick until)
{
    std::size_t ran = 0;
    while (true) {
        const Tick next = nextEventTick();
        if (next == kTickNever || next > until)
            break;
        step();
        ++ran;
    }
    if (now_ < until)
        now_ = until;
    return ran;
}

bool
EventQueue::step()
{
    Entry *entry = popNextLive();
    if (!entry)
        return false;
    PAD_ASSERT(entry->when >= now_);
    now_ = entry->when;
    ++executed_;
    if (obs::traceEnabled()) {
        obs::setTraceClock(now_);
        obs::emit("sim", "sim.dispatch",
                  {obs::TraceField::integer(
                       "seq", static_cast<std::int64_t>(entry->seq)),
                   obs::TraceField::integer(
                       "priority",
                       static_cast<std::int64_t>(entry->priority))});
    }
    Callback cb = std::move(entry->cb);
    delete entry;
    cb();
    return true;
}

} // namespace pad::sim
