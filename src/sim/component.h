/**
 * @file
 * Base class for named simulation components. Components get a
 * pointer to the owning Simulator at attach time and may override the
 * init/finalize hooks to schedule their periodic activity.
 */

#ifndef PAD_SIM_COMPONENT_H
#define PAD_SIM_COMPONENT_H

#include <string>

#include "util/types.h"

namespace pad::sim {

class Simulator;

/**
 * A named participant in the simulation.
 */
class Component
{
  public:
    /** @param name hierarchical dotted name, e.g. "rack3.deb" */
    explicit Component(std::string name) : name_(std::move(name)) {}

    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Hierarchical component name. */
    const std::string &name() const { return name_; }

    /** Called once before the simulation starts running. */
    virtual void init(Simulator &sim) { sim_ = &sim; }

    /** Called once after the simulation finishes. */
    virtual void finalize() {}

  protected:
    /** Owning simulator; valid after init(). */
    Simulator *sim_ = nullptr;

  private:
    std::string name_;
};

} // namespace pad::sim

#endif // PAD_SIM_COMPONENT_H
