/**
 * @file
 * Time-series recorder for simulation signals (power, SOC, levels).
 * Bench binaries use recorded series to print the figure data the
 * paper plots.
 */

#ifndef PAD_SIM_TIME_SERIES_H
#define PAD_SIM_TIME_SERIES_H

#include <string>
#include <vector>

#include "util/types.h"

namespace pad::sim {

/**
 * An append-only (tick, value) series with simple reductions.
 */
class TimeSeries
{
  public:
    /** One recorded sample. */
    struct Sample {
        Tick when;
        double value;
    };

    /** @param name signal name used in CSV headers */
    explicit TimeSeries(std::string name = {}) : name_(std::move(name)) {}

    /** Append a sample; ticks must be non-decreasing. */
    void record(Tick when, double value);

    /** All samples in insertion order. */
    const std::vector<Sample> &samples() const { return samples_; }

    /** Signal name. */
    const std::string &name() const { return name_; }

    /** Number of samples. */
    std::size_t size() const { return samples_.size(); }

    /** True when no samples have been recorded. */
    bool empty() const { return samples_.empty(); }

    /** Last recorded value; requires a non-empty series. */
    double lastValue() const;

    /** Maximum recorded value (0 when empty). */
    double maxValue() const;

    /** Minimum recorded value (0 when empty). */
    double minValue() const;

    /** Time-weighted average over the recorded span. */
    double timeWeightedMean() const;

    /**
     * Value at tick @p when using step ("sample and hold")
     * interpolation; before the first sample returns the first value.
     */
    double valueAt(Tick when) const;

    /**
     * Downsample into fixed windows of @p window ticks covering
     * [start, end), averaging samples in each window (empty windows
     * hold the previous value).
     */
    std::vector<double> resample(Tick start, Tick end, Tick window) const;

  private:
    std::string name_;
    std::vector<Sample> samples_;
};

} // namespace pad::sim

#endif // PAD_SIM_TIME_SERIES_H
