/**
 * @file
 * Discrete-event queue at the heart of the PAD simulator.
 *
 * Events are callbacks scheduled at an absolute Tick. Events at the
 * same tick execute in (priority, insertion-order) order so that the
 * simulation is fully deterministic. Scheduled events can be
 * cancelled through the EventHandle returned at scheduling time.
 */

#ifndef PAD_SIM_EVENT_QUEUE_H
#define PAD_SIM_EVENT_QUEUE_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace pad::sim {

/** Relative ordering of events scheduled at the same tick. */
enum class EventPriority : int {
    /** Power/battery state updates happen first. */
    Physical = 0,
    /** Then control decisions (schemes, policies, attackers). */
    Control = 1,
    /** Then monitoring, metering, statistics. */
    Observe = 2,
    /** Finally bookkeeping (trace logging, checkpoints). */
    Cleanup = 3,
};

/** Opaque handle used to cancel a scheduled event. */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True when the handle refers to a scheduled event. */
    bool valid() const { return id_ != 0; }

  private:
    friend class EventQueue;
    explicit EventHandle(std::uint64_t id) : id_(id) {}
    std::uint64_t id_ = 0;
};

/**
 * Priority queue of timed callbacks.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Schedule @p cb at absolute tick @p when.
     *
     * @param when     absolute tick, must be >= now()
     * @param cb       callback invoked when the event fires
     * @param priority same-tick ordering class
     * @return a handle that can later be passed to cancel()
     */
    EventHandle schedule(Tick when, Callback cb,
                         EventPriority priority = EventPriority::Control);

    /**
     * Cancel a previously scheduled event. Cancelling an event that
     * has already fired (or an invalid handle) is a harmless no-op.
     */
    void cancel(EventHandle handle);

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (scheduled, not cancelled) events. */
    std::size_t size() const { return live_; }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Tick of the next live event, or kTickNever when empty. */
    Tick nextEventTick() const;

    /**
     * Fire all events up to and including tick @p until, advancing
     * now(). Events scheduled by callbacks at ticks <= until also run.
     *
     * @return number of events executed
     */
    std::size_t runUntil(Tick until);

    /**
     * Fire the single next event (advancing now() to its tick).
     * @retval true an event ran; false if the queue was empty
     */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Pre-size the queue for @p events concurrently-live events:
     * reserves the heap vector and id map and, under pooled
     * allocation, pre-allocates enough arena blocks. Purely a
     * performance hint; the queue still grows on demand (up to
     * maxLiveEvents()).
     */
    void reserve(std::size_t events);

    /**
     * Hard bound on concurrently live events; scheduling past it is
     * a fatal error (a runaway self-rescheduling callback otherwise
     * grows the arena without bound). Default 1,048,576.
     */
    std::size_t maxLiveEvents() const { return maxLive_; }

    /** Adjust the live-event bound (must cover current live count). */
    void setMaxLiveEvents(std::size_t bound);

  private:
    struct Entry {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::uint64_t id;
        Callback cb;
        bool cancelled = false;
    };

    struct EntryCompare {
        // Max-heap comparator; inverted for earliest-first popping.
        // (when, priority, seq) is a total order — seq is unique —
        // so the pop sequence is deterministic for any heap layout.
        bool
        operator()(const Entry *a, const Entry *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->priority != b->priority)
                return a->priority > b->priority;
            return a->seq > b->seq;
        }
    };

    Entry *allocEntry();
    void releaseEntry(Entry *entry);
    Entry *popNextLive();

    /** Binary heap over heap_ (std::push_heap/std::pop_heap). */
    std::vector<Entry *> heap_;
    std::unordered_map<std::uint64_t, Entry *> byId_;
    /**
     * Arena blocks and the free list of recycled entries. Entries
     * live in fixed blocks for the queue's lifetime; a released
     * entry drops its callback and returns to freeList_. Unused in
     * heap-allocation mode (pooled_ == false).
     */
    std::vector<std::unique_ptr<Entry[]>> blocks_;
    std::vector<Entry *> freeList_;
    /** Allocation mode, latched from the engine tuning at creation. */
    bool pooled_;
    /** Entries per arena block, latched from the capacity hint. */
    std::size_t blockSize_;
    std::size_t maxLive_ = 1u << 20;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t nextId_ = 1;
    std::uint64_t executed_ = 0;
    std::size_t live_ = 0;

  public:
    /**
     * @param capacityHint expected number of concurrently-live
     *     events; sizes the arena block granularity and the initial
     *     heap/id-map reservations under pooled allocation. Engine
     *     backends surface their per-run sizing through
     *     engine::EnginePlan::eventQueueCapacity. Purely a
     *     performance hint; the queue grows on demand either way.
     */
    explicit EventQueue(std::size_t capacityHint = 256);
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
};

} // namespace pad::sim

#endif // PAD_SIM_EVENT_QUEUE_H
