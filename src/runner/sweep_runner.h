/**
 * @file
 * Parallel sweep engine: executes independent Experiment jobs on a
 * fixed-size thread pool.
 *
 * Threading model and determinism contract (see DESIGN.md §7):
 *
 *  - Jobs are pure values. Each worker pulls the next unclaimed job
 *    index from an atomic counter, executes runExperiment() on it,
 *    and writes the result into that job's own pre-allocated slot.
 *    No job ever observes another job's state, so results are
 *    bit-identical to a serial loop regardless of thread count or
 *    completion order.
 *  - Per-job RNG seeds are a pure function of (base seed, job
 *    index): assignSeeds() stamps jobSeed(base, i) onto job i
 *    *before* execution, and the seed travels with the Experiment
 *    value afterwards. Thread identity and scheduling never enter
 *    seed derivation.
 *  - Shared inputs (the ClusterWorkload a bench builds once) are
 *    referenced read-only by all jobs concurrently.
 */

#ifndef PAD_RUNNER_SWEEP_RUNNER_H
#define PAD_RUNNER_SWEEP_RUNNER_H

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "obs/trace_sink.h"
#include "runner/experiment.h"

namespace pad::runner {

/**
 * Outcome of SweepRunner::runWithReport(): the per-job results plus
 * sweep-level aggregates.
 *
 * `stats` merges every job's registry in submission order, which is
 * deterministic for any worker count (DESIGN.md §8). The wall-clock
 * members are profiling data measured on whatever thread ran the
 * job — they are the one intentionally nondeterministic part and are
 * kept out of `stats` so the deterministic aggregate stays
 * bit-identical across runs.
 */
struct SweepReport {
    /** results[i] is experiments[i]'s outcome (submission order). */
    std::vector<ExperimentResult> results;
    /** Deterministic merge of all per-job stats registries. */
    sim::StatsRegistry stats;
    /**
     * Deterministic merge of every job's telemetry hub (null when no
     * job ran with telemetryEnabled): job i's series appear under a
     * "job<i>." prefix, merged in submission order. A shared_ptr
     * because TelemetryHub owns a mutex and cannot move.
     */
    std::shared_ptr<telemetry::TelemetryHub> telemetry;
    /**
     * Every alerted job's sealed incidents, submission order, each
     * stamped with its job index (so IDs carry the "job<i>." prefix
     * — the same convention as the stats/telemetry merges). Empty
     * when no job ran with alertRules.
     */
    std::vector<alert::Incident> incidents;
    /**
     * Per-rule alert states of every alerted job, submission order,
     * rule names prefixed "job<i>.". Ready for PromWriter.
     */
    std::vector<telemetry::AlertStateSample> alertStates;
    /** Wall-clock seconds each job took (profiling only). */
    std::vector<double> jobWallSeconds;
    /** Wall-clock seconds for the whole sweep (profiling only). */
    double wallSeconds = 0.0;
};

/**
 * Fixed-size thread-pool executor for Experiment sweeps.
 *
 * @code
 *   SweepRunner pool({.jobs = 4});
 *   std::vector<Experiment> grid = ...;
 *   const auto results = pool.run(grid);  // results[i] <-> grid[i]
 * @endcode
 */
class SweepRunner
{
  public:
    struct Options {
        /**
         * Worker threads; 0 (default) uses the hardware concurrency.
         * 1 executes on the calling thread with no pool at all —
         * the reference serial path.
         */
        int jobs = 0;
        /**
         * Trace sink bound around every job (not owned; must be
         * thread-safe, which all obs sinks are). Each job runs under
         * an obs::TraceScope carrying its submission index, so
         * events from concurrent jobs stay attributable. nullptr
         * (default) leaves tracing exactly as the calling thread had
         * it — i.e. disabled on pool workers.
         */
        obs::TraceSink *trace = nullptr;
    };

    SweepRunner() = default;
    explicit SweepRunner(Options options) : options_(options) {}

    /** Resolved worker-thread count (>= 1). */
    int threadCount() const;

    /**
     * Execute every experiment and return results in submission
     * order: results[i] is experiments[i]'s outcome no matter which
     * thread ran it or when it finished.
     */
    std::vector<ExperimentResult>
    run(const std::vector<Experiment> &experiments) const;

    /**
     * run() plus sweep-level aggregation: merges every job's stats
     * registry in submission order and records per-job / total
     * wall-clock timings. The `results` vector is bit-identical to
     * what run() returns for the same experiments.
     */
    SweepReport
    runWithReport(const std::vector<Experiment> &experiments) const;

    /**
     * Derive the RNG seed of job @p jobIndex under @p baseSeed: a
     * splitmix64-style mix of the two, so neighbouring indices get
     * statistically independent streams. Depends on nothing else —
     * in particular not on thread identity or completion order.
     */
    static std::uint64_t jobSeed(std::uint64_t baseSeed,
                                 std::uint64_t jobIndex);

    /**
     * Stamp jobSeed(baseSeed, i) onto experiments[i] for every job
     * whose seed is still kSpecSeed. Seeds become part of the
     * Experiment values, so reordering the list afterwards moves the
     * seeds with the jobs.
     */
    static void assignSeeds(std::vector<Experiment> &experiments,
                            std::uint64_t baseSeed);

    /**
     * Generic deterministic parallel loop: invoke fn(i) for every
     * i in [0, n) across the pool. fn must only write state owned by
     * iteration i. Exceptions are rethrown on the calling thread.
     */
    template <typename Fn>
    void
    forEach(std::size_t n, Fn &&fn) const
    {
        forEachImpl(n, std::function<void(std::size_t)>(
                           std::forward<Fn>(fn)));
    }

    /**
     * Parallel map: returns {fn(0), ..., fn(n-1)} in index order.
     * fn must be callable concurrently from multiple threads.
     */
    template <typename Fn>
    auto
    map(std::size_t n, Fn &&fn) const
        -> std::vector<decltype(fn(std::size_t{0}))>
    {
        std::vector<decltype(fn(std::size_t{0}))> out(n);
        forEach(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    void forEachImpl(std::size_t n,
                     std::function<void(std::size_t)> fn) const;

    Options options_{};
};

} // namespace pad::runner

#endif // PAD_RUNNER_SWEEP_RUNNER_H
