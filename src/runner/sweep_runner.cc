#include "runner/sweep_runner.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/tracer.h"
#include "util/logging.h"

namespace pad::runner {

int
SweepRunner::threadCount() const
{
    if (options_.jobs > 0)
        return options_.jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

std::uint64_t
SweepRunner::jobSeed(std::uint64_t baseSeed, std::uint64_t jobIndex)
{
    // splitmix64 over (base, index): two mixing rounds so that both
    // low-entropy bases (0, 1, 2...) and consecutive indices map to
    // well-separated streams.
    std::uint64_t x = baseSeed + 0x9e3779b97f4a7c15ULL * (jobIndex + 1);
    for (int round = 0; round < 2; ++round) {
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        x ^= x >> 31;
    }
    // Never collide with the kSpecSeed sentinel.
    return x == kSpecSeed ? 0x5eedULL : x;
}

void
SweepRunner::assignSeeds(std::vector<Experiment> &experiments,
                         std::uint64_t baseSeed)
{
    for (std::size_t i = 0; i < experiments.size(); ++i)
        if (experiments[i].seed == kSpecSeed)
            experiments[i].seed = jobSeed(baseSeed, i);
}

std::vector<ExperimentResult>
SweepRunner::run(const std::vector<Experiment> &experiments) const
{
    std::vector<ExperimentResult> results(experiments.size());
    forEach(experiments.size(), [&](std::size_t i) {
        if (options_.trace) {
            // Bind the sweep's sink with this job's index; the scope
            // restores whatever tracing the thread had before.
            const obs::TraceScope scope(options_.trace,
                                        static_cast<int>(i));
            results[i] = runExperiment(experiments[i]);
        } else {
            results[i] = runExperiment(experiments[i]);
        }
    });
    return results;
}

SweepReport
SweepRunner::runWithReport(
    const std::vector<Experiment> &experiments) const
{
    using Clock = std::chrono::steady_clock;
    const auto sweepStart = Clock::now();

    SweepReport report;
    report.results.resize(experiments.size());
    report.jobWallSeconds.assign(experiments.size(), 0.0);
    forEach(experiments.size(), [&](std::size_t i) {
        const auto jobStart = Clock::now();
        if (options_.trace) {
            const obs::TraceScope scope(options_.trace,
                                        static_cast<int>(i));
            report.results[i] = runExperiment(experiments[i]);
        } else {
            report.results[i] = runExperiment(experiments[i]);
        }
        report.jobWallSeconds[i] =
            std::chrono::duration<double>(Clock::now() - jobStart)
                .count();
    });

    // Submission-order merge: the aggregate is a pure function of
    // the experiment list, never of scheduling.
    for (const ExperimentResult &result : report.results)
        if (result.stats)
            report.stats.mergeFrom(*result.stats);
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        if (!report.results[i].hub)
            continue;
        if (!report.telemetry)
            report.telemetry =
                std::make_shared<telemetry::TelemetryHub>();
        report.telemetry->mergeFrom(*report.results[i].hub,
                                    "job" + std::to_string(i) + ".");
    }
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        const auto &alerts = report.results[i].alerts;
        if (!alerts)
            continue;
        const std::string prefix = "job" + std::to_string(i) + ".";
        for (alert::Incident incident : alerts->incidents()) {
            incident.job = static_cast<int>(i);
            report.incidents.push_back(std::move(incident));
        }
        for (telemetry::AlertStateSample state :
             alerts->ruleStates()) {
            state.rule = prefix + state.rule;
            report.alertStates.push_back(std::move(state));
        }
    }

    report.wallSeconds =
        std::chrono::duration<double>(Clock::now() - sweepStart)
            .count();
    return report;
}

void
SweepRunner::forEachImpl(std::size_t n,
                         std::function<void(std::size_t)> fn) const
{
    const int workers =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(threadCount()), n));
    if (workers <= 1) {
        // Reference serial path: same calling thread, same order.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr firstError;
    std::mutex errorLock;
    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            // Tag this worker's log lines with the job it is running
            // so interleaved output stays attributable. The serial
            // path above stays untagged (identical to a plain loop).
            const ScopedLogJob logTag(static_cast<int>(i));
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> hold(errorLock);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace pad::runner
