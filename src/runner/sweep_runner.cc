#include "runner/sweep_runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace pad::runner {

int
SweepRunner::threadCount() const
{
    if (options_.jobs > 0)
        return options_.jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

std::uint64_t
SweepRunner::jobSeed(std::uint64_t baseSeed, std::uint64_t jobIndex)
{
    // splitmix64 over (base, index): two mixing rounds so that both
    // low-entropy bases (0, 1, 2...) and consecutive indices map to
    // well-separated streams.
    std::uint64_t x = baseSeed + 0x9e3779b97f4a7c15ULL * (jobIndex + 1);
    for (int round = 0; round < 2; ++round) {
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        x ^= x >> 31;
    }
    // Never collide with the kSpecSeed sentinel.
    return x == kSpecSeed ? 0x5eedULL : x;
}

void
SweepRunner::assignSeeds(std::vector<Experiment> &experiments,
                         std::uint64_t baseSeed)
{
    for (std::size_t i = 0; i < experiments.size(); ++i)
        if (experiments[i].seed == kSpecSeed)
            experiments[i].seed = jobSeed(baseSeed, i);
}

std::vector<ExperimentResult>
SweepRunner::run(const std::vector<Experiment> &experiments) const
{
    std::vector<ExperimentResult> results(experiments.size());
    forEach(experiments.size(), [&](std::size_t i) {
        results[i] = runExperiment(experiments[i]);
    });
    return results;
}

void
SweepRunner::forEachImpl(std::size_t n,
                         std::function<void(std::size_t)> fn) const
{
    const int workers =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(threadCount()), n));
    if (workers <= 1) {
        // Reference serial path: same calling thread, same order.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr firstError;
    std::mutex errorLock;
    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> hold(errorLock);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace pad::runner
