/**
 * @file
 * The unified Experiment API: every figure/ablation bench describes
 * one independent simulation as an Experiment value and receives an
 * ExperimentResult back, either serially through runExperiment() or
 * in parallel through runner::SweepRunner.
 *
 * Three experiment vehicles mirror the paper's methodology (Fig. 11):
 *
 *  - RackLab / RackLabServers: the scaled-down hardware platform of
 *    Fig. 11-A (a mini rack with a small battery set), simulated at
 *    100 ms resolution. Drives Figures 6, 7, 8 and Table I.
 *  - ClusterAttack: the trace-driven cluster simulator of Fig. 11-B
 *    (22 racks x 10 DL585 G5 servers fed by a Google-style trace)
 *    warmed up and struck by a two-phase attacker. Drives Figures
 *    15, 16 and the attack ablations.
 *  - ClusterCoarse: days of normal coarse-grained cluster operation
 *    with optional SOC/shed history recording. Drives Figures 5, 13
 *    and the balancing ablations.
 *
 * Every Experiment is a pure value: it references shared read-only
 * inputs (the ClusterWorkload) and owns everything else, so any set
 * of experiments may execute concurrently and the results are
 * bit-identical to serial execution.
 */

#ifndef PAD_RUNNER_EXPERIMENT_H
#define PAD_RUNNER_EXPERIMENT_H

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "alert/engine.h"
#include "attack/attacker.h"
#include "attack/power_virus.h"
#include "core/config.h"
#include "core/datacenter.h"
#include "core/schemes.h"
#include "engine/backend.h"
#include "sim/stats_registry.h"
#include "telemetry/hub.h"
#include "trace/synthetic_trace.h"
#include "trace/workload.h"
#include "util/types.h"

namespace pad::runner {

// ---------------------------------------------------------------------
// Shared read-only inputs
// ---------------------------------------------------------------------

/**
 * Bundled trace-driven workload (generator output + utilization
 * grid). Built once per bench and shared *read-only* across all
 * experiments that reference it: Workload exposes only const queries
 * and carries no caches, so concurrent access is safe.
 */
struct ClusterWorkload {
    std::vector<trace::TaskEvent> events;
    std::unique_ptr<trace::Workload> workload;
    trace::SyntheticTraceConfig traceConfig;
};

/**
 * Build the evaluation workload: 220 machines, @p days days,
 * optionally with periodic cluster-wide surges (Fig. 14).
 */
ClusterWorkload makeClusterWorkload(double days,
                                    double surgePeriodHours = 0.0,
                                    std::uint64_t seed = 42);

/** The paper's cluster configuration for a given scheme. */
core::DataCenterConfig clusterConfig(core::SchemeKind scheme);

// ---------------------------------------------------------------------
// Experiment specs
// ---------------------------------------------------------------------

/** Configuration of the mini-rack attack lab (paper Fig. 11-A). */
struct RackLabSpec {
    /** Servers in the mini rack (paper: a handful of nodes). */
    int servers = 5;
    /** Idle power of one lab server, watts. */
    Watts idlePower = 60.0;
    /** Peak power of one lab server, watts. */
    Watts peakPower = 200.0;
    /** Rack budget as a fraction of nameplate. */
    double budgetFraction = 0.65;
    /** Overload tolerance above the budget. */
    double overshoot = 0.08;
    /** Mean utilization of the benign servers. */
    double normalUtil = 0.35;
    /** Relative per-second noise on benign utilization. */
    double noiseAmp = 0.18;
    /** Nodes the attacker controls. */
    int maliciousNodes = 1;
    /** Virus family. */
    attack::VirusKind kind = attack::VirusKind::CpuIntensive;
    /** Phase-II spike train. */
    attack::SpikeTrain train{1.0, 1.0, 1.0};
    /** Attach a (drained-by-Phase-I) battery? */
    bool batteryCharged = false;
    /** Battery sized for this many seconds at full rack load. */
    double batterySeconds = 50.0;
    /** Attach a µDEB super-cap spike shaver? */
    bool withUdeb = false;
    /** µDEB capacitance, farads. */
    double udebFarads = 2.0;
    /** Simulation step, seconds. */
    double stepSec = 0.1;
    /** Determinism. */
    std::uint64_t seed = 2024;
};

/** Result of one lab run. */
struct RackLabResult {
    /** Effective attacks (overload-limit crossings). */
    int effectiveAttacks = 0;
    /** Spikes the virus launched in the window. */
    int spikesLaunched = 0;
    /** Second-windows of each launched spike (start, end). */
    std::vector<std::pair<double, double>> spikeWindows;
    /** Rack draw sampled once per second, watts. */
    std::vector<double> drawPerSecond;
    /** Seconds until the battery (if any) first ran out; <0 never. */
    double batteryOutSec = -1.0;
    /** Seconds until the first overload; <0 when none occurred. */
    double firstOverloadSec = -1.0;
    /** Rack budget, watts. */
    Watts budget = 0.0;
    /** Overload limit, watts. */
    Watts limit = 0.0;
};

/**
 * Per-server draw trace of the attacking node, one sample per
 * stepSec, for detection-rate studies (Table I): when the attacker
 * round-robins spikes over several nodes, each node's individual
 * trace carries 1/N of the spikes.
 */
struct RackLabServerTrace {
    /** Power samples of each malicious server, [server][step]. */
    std::vector<std::vector<Watts>> power;
    /** Spike windows attributed to each server, seconds. */
    std::vector<std::vector<std::pair<double, double>>> spikes;
    /** Step length, seconds. */
    double stepSec = 0.1;
    /** Baseline (no-attack) power of one server, watts. */
    Watts baseline = 0.0;
};

/**
 * Parameters of one cluster attack measurement: warm the data center
 * up to the attack hour, then run a two-phase attack.
 *
 * The spec is a superset of every attack bench's knobs; the defaults
 * reproduce the standard Fig. 15/16 measurement.
 */
struct ClusterAttackSpec {
    /** Management scheme under test (ignored when config is set). */
    core::SchemeKind scheme = core::SchemeKind::Pad;
    /**
     * Full configuration override for ablations that tweak knobs
     * beyond the scheme (detector response, placement, charge
     * policy, trait overrides...). When set it is used verbatim;
     * when empty the config is derived from scheme, budgetFraction
     * and clusterBudgetFraction.
     */
    std::optional<core::DataCenterConfig> config;
    /** Virus family. */
    attack::VirusKind kind = attack::VirusKind::CpuIntensive;
    /** Phase-II spike train. */
    attack::SpikeTrain train;
    /** Controlled nodes in each victim rack. */
    int nodes = 4;
    /**
     * Number of racks the attacker holds nodes in ("divide and
     * conquer"): victims are spread across the load distribution
     * below the primary victim's percentile.
     */
    int victimRacks = 12;
    /**
     * Victim rack's load percentile; the same percentile picks the
     * same rack for every scheme, keeping runs comparable.
     */
    double victimPct = 90.0;
    /** Attack window length, seconds. */
    double durationSec = 1500.0;
    /**
     * Window used to rank racks by load when picking victims;
     * <0 follows durationSec.
     */
    double rankWindowSec = -1.0;
    /** Attack duty cycle (Fig. 16-A's "attack rate"). */
    double dutyCycle = 1.0;
    /**
     * Per-rack soft-limit fraction of nameplate for the attacked
     * cluster (only when config is not set).
     */
    double budgetFraction = 0.75;
    /**
     * Cluster (PDU) budget fraction. The paper's threat model
     * targets heavily power-constrained facilities, so attack
     * studies run the PDU tighter than the rack soft limits.
     * (Only when config is not set.)
     */
    double clusterBudgetFraction = 0.70;
    /** Hour of day (on day 2) the attack begins. */
    double attackHour = 11.0;
    /** Low-profile warm-up before Phase I, seconds. */
    double prepareSec = 60.0;
    /** Phase-I give-up bound, seconds. */
    double maxDrainSec = 600.0;
    /** Phase-I learning rounds (side-channel ablation). */
    int learnRounds = 1;
    /** Pause between learning rounds, seconds. */
    double recoverSec = 600.0;
    /**
     * Force the whole fleet to this SOC right before the strike
     * (green-buffer ablation); <0 keeps the warmed-up state.
     */
    double initialSoc = -1.0;
};

/**
 * Days of coarse-grained normal operation (no attack window):
 * SOC-variation and balancing studies.
 */
struct ClusterCoarseSpec {
    /** Management scheme (ignored when config is set). */
    core::SchemeKind scheme = core::SchemeKind::PS;
    /** Full configuration override (see ClusterAttackSpec::config). */
    std::optional<core::DataCenterConfig> config;
    /** Cluster budget fraction (only when config is not set). */
    double clusterBudgetFraction = -1.0;
    /** Run until this many hours of simulated time. */
    double untilHours = 24.0;
    /** Record per-step SOC/shed history rows. */
    bool recordHistory = false;
};

// ---------------------------------------------------------------------
// Experiment / ExperimentResult
// ---------------------------------------------------------------------

/** What a single experiment simulates. */
enum class ExperimentKind {
    RackLab,        ///< mini-rack overload counting
    RackLabServers, ///< mini-rack per-server trace rendering
    ClusterAttack,  ///< warm-up + two-phase attack window
    ClusterCoarse,  ///< coarse normal operation only
};

/**
 * Sentinel for Experiment::seed: use the seeds embedded in the spec
 * (RackLabSpec::seed, DataCenterConfig::seed, AttackerConfig
 * defaults) unchanged.
 */
inline constexpr std::uint64_t kSpecSeed = ~0ULL;

/**
 * One independent simulation job: spec + shared workload reference +
 * seed. Cheap to copy relative to the simulation itself; safe to
 * move across threads.
 */
struct Experiment {
    ExperimentKind kind = ExperimentKind::RackLab;
    /** Mini-rack spec (RackLab / RackLabServers kinds). */
    RackLabSpec lab;
    /** Lab window length, seconds (RackLab kinds). */
    double windowSec = 900.0;
    /** Cluster attack spec (ClusterAttack kind). */
    ClusterAttackSpec attack;
    /** Coarse-run spec (ClusterCoarse kind). */
    ClusterCoarseSpec coarse;
    /**
     * Shared workload (cluster kinds). Not owned: the bench keeps it
     * alive for the duration of the sweep, and every job reads it
     * concurrently without synchronization (const access only).
     */
    const ClusterWorkload *workload = nullptr;
    /**
     * Experiment seed. kSpecSeed (the default) keeps the seeds the
     * spec carries; any other value deterministically overrides the
     * workload-jitter, attacker and lab seeds — this is what
     * SweepRunner::assignSeeds() fills in for seed sweeps.
     */
    std::uint64_t seed = kSpecSeed;
    /**
     * Attach a telemetry hub to the job's DataCenter (cluster kinds
     * only): per-rack power/SOC, PDU totals, policy level, shed
     * count and detector score land in ExperimentResult::hub. Off by
     * default — the zero-cost-when-disabled contract — and purely
     * additive: enabling it never changes simulation results.
     */
    bool telemetryEnabled = false;
    /**
     * Alert rules evaluated online against the job's telemetry and
     * trace streams (cluster kinds only): each job runs its own
     * alert::AlertEngine and the sealed incidents land in
     * ExperimentResult::alerts. Shared read-only across jobs like
     * the workload. nullptr (default) disables alerting entirely —
     * the same zero-cost-when-disabled contract as telemetry — and
     * enabling it never changes simulation results.
     */
    std::shared_ptr<const alert::RuleSet> alertRules;
    /**
     * Engine backend for the cluster kinds. Replaces the deprecated
     * process-global profile switch: the choice travels with the job,
     * so concurrent sweep workers can mix backends freely. Baseline
     * and Optimized produce bit-identical results; Soa is the opt-in
     * batch engine (physically equivalent, not bit-identical). When
     * the chosen backend cannot run the configuration, the job falls
     * back to Optimized with a warning (see engine::makeClusterEngine).
     */
    engine::BackendKind backend = engine::BackendKind::Optimized;
    /**
     * Attach an engine self-profiler to the job's engine (cluster
     * kinds only): sampled phase timers, cache hit/miss counters,
     * queue depth high-water and arena/scratch footprint land in
     * ExperimentResult::stats under "engine.*" (see
     * engine/prof_stats.h for the names). Off by default — the
     * zero-cost-when-disabled contract — and purely additive:
     * enabling it never changes simulation results.
     */
    bool profileEngine = false;
    /**
     * Replacement wall clock for the profiler's phase timers
     * (tests). nullptr — the default — keeps steady_clock; a
     * deterministic clock makes the full "engine.*" stat set
     * bit-identical between serial and parallel sweeps.
     */
    obs::EngineProfiler::ClockFn profileClock = nullptr;

    /** Make a mini-rack overload-counting experiment. */
    static Experiment rackLab(RackLabSpec spec, double windowSec);
    /** Make a per-server trace-rendering experiment. */
    static Experiment rackLabServers(RackLabSpec spec,
                                     double windowSec);
    /** Make a cluster attack experiment over a shared workload. */
    static Experiment clusterAttack(ClusterAttackSpec spec,
                                    const ClusterWorkload &cw);
    /** Make a coarse normal-operation experiment. */
    static Experiment clusterCoarse(ClusterCoarseSpec spec,
                                    const ClusterWorkload &cw);
};

/** Telemetry shared by the cluster experiment kinds. */
struct ClusterTelemetry {
    /** Anomalies flagged by the optional detector response. */
    std::uint64_t detections = 0;
    /** Phase-I autonomy observations (side-channel ablation). */
    std::vector<double> autonomySamples;
    /** Per-rack SOC after the run. */
    std::vector<double> socs;
    /** SOC spread across racks after the run, percent. */
    double socStdDevPercent = 0.0;
    /** Coarse history (when ClusterCoarseSpec::recordHistory). */
    std::vector<std::vector<double>> socHistory;
    /** Shed-ratio history aligned with socHistory. */
    std::vector<double> shedHistory;
};

/**
 * Result of one experiment. Exactly the member matching the
 * experiment's kind is populated; the accessors assert the kind.
 */
struct ExperimentResult {
    ExperimentKind kind = ExperimentKind::RackLab;
    RackLabResult labResult;
    RackLabServerTrace serverTraces;
    core::AttackOutcome attackOutcome;
    ClusterTelemetry telemetry;
    /**
     * The job's full stats registry (DataCenter::exportStats for
     * cluster kinds, lab summary stats for the rack kinds). Shared
     * pointer because StatsRegistry is move-only while results are
     * copied around freely; derived purely from the experiment value,
     * so it obeys the same determinism contract as every other
     * member.
     */
    std::shared_ptr<sim::StatsRegistry> stats;
    /**
     * The job's telemetry hub; non-null only when the experiment ran
     * with telemetryEnabled (cluster kinds). Shared for the same
     * reason stats is: TelemetryHub is non-copyable while results
     * are copied around freely.
     */
    std::shared_ptr<telemetry::TelemetryHub> hub;
    /**
     * The job's finalized alert engine (incidents + rule states);
     * non-null only when the experiment ran with alertRules set.
     * Shared for the same reason stats is.
     */
    std::shared_ptr<alert::AlertEngine> alerts;

    /** RackLab result (asserts kind). */
    const RackLabResult &lab() const;
    /** RackLabServers traces (asserts kind). */
    const RackLabServerTrace &servers() const;
    /** ClusterAttack outcome (asserts kind). */
    const core::AttackOutcome &attack() const;
    /** Cluster telemetry (asserts a cluster kind). */
    const ClusterTelemetry &cluster() const;
};

/**
 * Execute one experiment on the calling thread. This is the single
 * canonical entry point for launching simulations — SweepRunner runs
 * exactly this function per job, so parallel sweeps are bit-identical
 * to serial loops over runExperiment().
 */
ExperimentResult runExperiment(const Experiment &experiment);

} // namespace pad::runner

#endif // PAD_RUNNER_EXPERIMENT_H
